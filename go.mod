module frugal

go 1.22
