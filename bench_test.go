package frugal

import (
	"io"
	"testing"

	"frugal/internal/bench"
)

// One benchmark per table and figure of the paper. Each iteration
// regenerates the experiment's full data (quick sweep); run with
//
//	go test -bench 'Benchmark(Table|Fig|Exp)' -benchtime=1x .
//
// for a single regeneration pass, or use cmd/frugal-bench for the
// rendered tables at full sweep resolution.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := r.Run(true)
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// BenchmarkTable1GPUCharacteristics regenerates Table 1.
func BenchmarkTable1GPUCharacteristics(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Datasets regenerates Table 2.
func BenchmarkTable2Datasets(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig3aMotivationThroughput regenerates Fig 3a (HugeCTR on A30 vs
// RTX 3090).
func BenchmarkFig3aMotivationThroughput(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3bAllToAllBandwidth regenerates Fig 3b.
func BenchmarkFig3bAllToAllBandwidth(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig3cBreakdown regenerates Fig 3c.
func BenchmarkFig3cBreakdown(b *testing.B) { benchExperiment(b, "fig3c") }

// BenchmarkExp1Microbenchmark regenerates Fig 8 (Exp #1).
func BenchmarkExp1Microbenchmark(b *testing.B) { benchExperiment(b, "exp1") }

// BenchmarkExp2P2FStall regenerates Fig 9 (Exp #2).
func BenchmarkExp2P2FStall(b *testing.B) { benchExperiment(b, "exp2") }

// BenchmarkExp3UVALatency regenerates Fig 10 (Exp #3).
func BenchmarkExp3UVALatency(b *testing.B) { benchExperiment(b, "exp3") }

// BenchmarkExp4TwoLevelPQ regenerates Fig 11 (Exp #4). Wall-clock
// counterparts of the queue contrast live in internal/pq's benchmarks.
func BenchmarkExp4TwoLevelPQ(b *testing.B) { benchExperiment(b, "exp4") }

// BenchmarkExp5Contributions regenerates Fig 12 (Exp #5).
func BenchmarkExp5Contributions(b *testing.B) { benchExperiment(b, "exp5") }

// BenchmarkExp6KG regenerates Fig 13 (Exp #6).
func BenchmarkExp6KG(b *testing.B) { benchExperiment(b, "exp6") }

// BenchmarkExp7REC regenerates Fig 14 (Exp #7).
func BenchmarkExp7REC(b *testing.B) { benchExperiment(b, "exp7") }

// BenchmarkExp8Scalability regenerates Fig 15 (Exp #8).
func BenchmarkExp8Scalability(b *testing.B) { benchExperiment(b, "exp8") }

// BenchmarkExp9CostEfficiency regenerates Fig 16 (Exp #9).
func BenchmarkExp9CostEfficiency(b *testing.B) { benchExperiment(b, "exp9") }

// BenchmarkExp10FlushThreads regenerates Fig 17 (Exp #10).
func BenchmarkExp10FlushThreads(b *testing.B) { benchExperiment(b, "exp10") }

// BenchmarkExp11ModelSensitivity regenerates Fig 18 (Exp #11).
func BenchmarkExp11ModelSensitivity(b *testing.B) { benchExperiment(b, "exp11") }

// ----------------------------------------------------------------------
// Real-runtime benchmarks: wall-clock training throughput of the actual
// concurrent runtime (goroutine GPUs, real P²F machinery), per engine.

func benchRuntime(b *testing.B, engine Engine) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		job, err := New(Config{
			Engine: engine, NumGPUs: 4, Seed: int64(i),
		}, Microbenchmark{Options: MicroOptions{KeySpace: 50_000, Batch: 512, Steps: 50}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SamplesPerSec, "samples/s")
	}
}

// BenchmarkRuntimeFrugal measures the real P²F runtime end to end.
func BenchmarkRuntimeFrugal(b *testing.B) { benchRuntime(b, EngineFrugal) }

// BenchmarkRuntimeFrugalSync measures the write-through runtime.
func BenchmarkRuntimeFrugalSync(b *testing.B) { benchRuntime(b, EngineFrugalSync) }

// BenchmarkRuntimeDirect measures the no-cache runtime.
func BenchmarkRuntimeDirect(b *testing.B) { benchRuntime(b, EngineDirect) }

// BenchmarkRunAllQuick regenerates the whole evaluation in quick mode —
// the one-stop reproduction pass.
func BenchmarkRunAllQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunAllExperiments(io.Discard, true)
	}
}
