// Package frugal is a from-scratch Go implementation of Frugal, the
// embedding-model training system for commodity GPUs from "Frugal:
// Efficient and Economic Embedding Model Training with Commodity GPUs"
// (ASPLOS 2025).
//
// The library trains real embedding models (DLRM for recommendation;
// TransE/DistMult/ComplEx/SimplE for knowledge graphs) on a simulated
// multi-GPU server: each "GPU" is a trainer goroutine with a private
// embedding cache, host memory is a shared parameter slab, and the
// paper's priority-based proactively flushing (P²F) runtime — lookahead
// sample queue, g-entry metadata, two-level concurrent priority queue,
// background flushing threads, and the synchronous-consistency gate —
// runs for real in between. Three engines are available:
//
//   - EngineFrugal:     the paper's system (P²F, UVA-style host reads).
//   - EngineFrugalSync: the write-through Frugal-Sync baseline.
//   - EngineDirect:     a PyTorch-like no-cache baseline.
//
// The paper's evaluation (every table and figure) is reproducible through
// RunExperiment / the cmd/frugal-bench binary, which drive a calibrated
// virtual-time hardware model (PCIe links without P2P, bounced
// collectives, root-complex contention). See DESIGN.md and
// EXPERIMENTS.md.
//
// Quickstart:
//
//	cfg := frugal.Config{NumGPUs: 4, CacheRatio: 0.05}
//	job, err := frugal.New(cfg, frugal.Recommendation{
//		Dataset: frugal.DatasetAvazu,
//		Options: frugal.RECOptions{Scale: 100_000, Batch: 64, Steps: 200},
//	})
//	if err != nil { ... }
//	res, err := job.Run()
package frugal

import (
	"context"
	"fmt"
	"io"

	"frugal/internal/bench"
	"frugal/internal/data"
	"frugal/internal/fault"
	"frugal/internal/model"
	"frugal/internal/obs"
	"frugal/internal/p2f"
	"frugal/internal/pq"
	"frugal/internal/runtime"
)

// Engine selects the training data path.
type Engine = runtime.Engine

// The available engines.
const (
	// EngineFrugal is the paper's system: sharded per-GPU caches, direct
	// (UVA-style) host-memory reads, and updates flushed to host memory
	// proactively, in priority order, by background threads.
	EngineFrugal = runtime.EngineFrugal
	// EngineFrugalSync is the write-through baseline of §4.1.
	EngineFrugalSync = runtime.EngineFrugalSync
	// EngineDirect is a no-cache baseline that reads and writes host
	// memory directly (the PyTorch baseline's data path).
	EngineDirect = runtime.EngineDirect
)

// Config shapes a training job. The zero value selects EngineFrugal on a
// single GPU with the paper's §4.1 defaults (5% cache, lookahead 10,
// 8 flushing threads).
type Config struct {
	// Engine selects the data path (default EngineFrugal).
	Engine Engine
	// NumGPUs is the number of simulated GPUs (trainer goroutines).
	NumGPUs int
	// CacheRatio sizes each GPU's embedding cache as a fraction of the
	// table (default 0.05).
	CacheRatio float64
	// LR is the embedding learning rate (default 0.05).
	LR float32
	// Lookahead is the sample-queue depth L (default 10).
	Lookahead int
	// Prefetch enables the lookahead prefetcher: while a step computes, a
	// background fill stage walks the upcoming batches' key sets, fills
	// predicted cache misses from host memory and window-pins the rows so
	// eviction cannot victimize anything the window will re-touch. Cached
	// engines only (EngineFrugal, EngineFrugalSync).
	Prefetch bool
	// PrefetchDepth bounds how many future batches may be prefetched but
	// not yet trained (default: Lookahead). Requires Prefetch; for
	// EngineFrugal it must not exceed Lookahead (the sample queue is the
	// only source of future key sets).
	PrefetchDepth int
	// FlushThreads is the background flusher count (default 8).
	FlushThreads int
	// DequeueBatch bounds each flushing thread's batched dequeue — the
	// Fig 7 batch size (default 64). EngineFrugal only.
	DequeueBatch int
	// Queue overrides the P²F priority-queue implementation (default: the
	// paper's two-level PQ sized for the step count). NewTreeHeapQueue
	// builds the Exp #4 lock-based baseline. EngineFrugal only.
	Queue PriorityQueue
	// Optimizer selects the embedding optimizer: OptimizerSGD (default)
	// or OptimizerAdagrad (row-wise Adagrad; the accumulator update rides
	// the P²F flush path to host memory).
	Optimizer Optimizer
	// AdagradEps stabilises the Adagrad denominator (default 1e-6).
	// Ignored by OptimizerSGD.
	AdagradEps float32
	// CheckConsistency verifies the §3.3 synchronous-consistency
	// invariant after every gate pass (cheap; on by default in examples).
	CheckConsistency bool
	// FaultPlan injects a deterministic fault schedule into the run —
	// flusher crashes and stalls, trainer straggler delays, transient
	// host-write failures — for resilience testing. Build one with
	// ParseFaultPlan or GenerateFaultPlan; the zero value injects nothing.
	// Result.Recovery and Snapshot report what was injected and healed.
	FaultPlan FaultPlan
	// Recovery tunes the P²F self-healing layer: flusher heartbeats,
	// the respawn budget and backoff, and the gate watchdog's degrade
	// timeout. The zero value enables it with defaults (EngineFrugal
	// only); set Recovery.Disabled to opt out entirely.
	Recovery Recovery
	// Seed drives parameter initialisation and synthetic data.
	Seed int64
	// OnStep, when set, is invoked once per completed global training
	// step by the last trainer to commit it, outside the gate's critical
	// path. It must be fast and non-blocking — a slow callback stalls
	// that trainer's next step (the gate and the flusher pool are never
	// blocked by it). Use it for progress bars, loss curves, or feeding
	// an external metrics pipeline.
	OnStep func(StepStats)
	// ColdTier allocates the embedding table as a frequency-aware tiered
	// slab: a hot head of full-precision f32 rows plus a quantized int8
	// cold tail (per-row affine scale/zero, dequantized on read and
	// requantized on write). Promotion and demotion are driven by decayed
	// access frequency at P²F flush boundaries, so tier moves land at
	// consistency points the gate already covers. Incompatible with Slab.
	ColdTier bool
	// HotFraction sizes the hot head as a fraction of the table (default
	// 0.1). Requires ColdTier; must be in (0, 1].
	HotFraction float64
	// Slab overrides the job's parameter slab with an external row store —
	// typically DialShardSlab over uncoordinated frugal-shard nodes, which
	// places the embedding table on the store tier instead of in-process
	// host memory. The workload's Rows/Dim must match the slab's shape;
	// the slab owns initialisation (Seed does not re-init it), and
	// OptimizerAdagrad is rejected (the accumulator is host-memory state).
	Slab RowStore
	// Observability enables the runtime metrics registry and step-event
	// tracer (see TrainingJob.Snapshot and TrainingJob.WriteTrace). The
	// zero value keeps every instrumentation point a no-op.
	Observability ObsOptions
}

// ObsOptions configures the observability layer of a job.
type ObsOptions struct {
	// Enabled turns on metric counters and step tracing.
	Enabled bool
	// TraceCapacity is the event ring size, rounded up to a power of two
	// (default 65536). The ring keeps the newest events; Snapshot reports
	// how many were overwritten. Negative disables tracing but keeps the
	// metric counters.
	TraceCapacity int
}

// StepStats is the per-step progress report delivered to Config.OnStep:
// step number, global loss, summed gate-stall time, and the flush
// backlog (pending g-entries) at completion time.
type StepStats = runtime.StepStats

// Snapshot is a live copy of a job's observability metrics — cache
// traffic, gate stalls, flush accounting, priority-queue operations and
// step timings. See TrainingJob.Snapshot.
type Snapshot = obs.Snapshot

// ErrCanceled is the typed error RunContext returns when its context is
// canceled: it wraps ctx.Err(), so errors.Is(err, context.Canceled)
// works, and errors.As(err, &target) recovers the wrapper.
type ErrCanceled = runtime.ErrCanceled

// PriorityQueue is the P²F priority-queue contract (Config.Queue). The
// built-in implementations are the paper's two-level PQ (the default) and
// the TreeHeap baseline from NewTreeHeapQueue.
type PriorityQueue = pq.Queue

// NewTreeHeapQueue builds the lock-based binary-heap priority queue the
// paper evaluates against in Exp #4, sized for `hint` expected entries.
// Pass it as Config.Queue to reproduce that comparison on a real job.
func NewTreeHeapQueue(hint int) PriorityQueue { return pq.NewTreeHeap(hint) }

// FaultPlan is a deterministic, reproducible fault schedule
// (Config.FaultPlan): a sorted set of fault events with a canonical
// String() form that ParseFaultPlan round-trips.
type FaultPlan = fault.Plan

// FaultEvent is one scheduled fault in a FaultPlan.
type FaultEvent = fault.Event

// FaultKind enumerates the injectable fault kinds.
type FaultKind = fault.Kind

// The injectable fault kinds.
const (
	// FaultFlusherCrash kills one flushing thread at a dequeue batch
	// (EngineFrugal only; the self-healing pool respawns it).
	FaultFlusherCrash = fault.KindFlusherCrash
	// FaultFlusherStall freezes one flushing thread for a duration
	// (EngineFrugal only; the heartbeat supervisor supersedes it).
	FaultFlusherStall = fault.KindFlusherStall
	// FaultTrainerDelay makes one trainer straggle before a step's gate.
	FaultTrainerDelay = fault.KindTrainerDelay
	// FaultHostWriteFail fails a window of host writes transiently; the
	// writer retries with exponential backoff.
	FaultHostWriteFail = fault.KindHostWriteFail
)

// FaultGenSpec shapes GenerateFaultPlan's random schedules.
type FaultGenSpec = fault.GenSpec

// ParseFaultPlan parses the fault-plan mini-grammar (the cmd/frugal-train
// -fault-plan syntax): semicolon-separated clauses
//
//	crash:flusher=<slot>@batch=<n>
//	stall:flusher=<slot>@batch=<n>,dur=<duration>
//	delay:gpu=<gpu>@step=<s>,dur=<duration>
//	hostfail@write=<ordinal>[,count=<k>]
//
// Errors are typed (*fault.ParseError) and name the offending clause.
func ParseFaultPlan(spec string) (FaultPlan, error) { return fault.Parse(spec) }

// GenerateFaultPlan draws a random-but-reproducible fault schedule: the
// same seed and spec always yield the identical plan.
func GenerateFaultPlan(seed int64, spec FaultGenSpec) FaultPlan { return fault.Generate(seed, spec) }

// Recovery tunes the P²F self-healing layer (Config.Recovery).
type Recovery = p2f.Recovery

// RecoveryStats is the fault/recovery accounting in Result.Recovery.
type RecoveryStats = runtime.RecoveryStats

// RowStore is the parameter-slab surface a training job reads and writes
// (Config.Slab). The default is the job's own in-process host slab;
// DialShardSlab builds one over remote frugal-shard nodes.
type RowStore = runtime.RowStore

// Optimizer selects the embedding optimizer.
type Optimizer = runtime.Optimizer

// The embedding optimizers.
const (
	// OptimizerSGD applies row -= lr·grad.
	OptimizerSGD = runtime.OptSGD
	// OptimizerAdagrad applies row-wise Adagrad (one accumulated
	// squared-gradient scalar per row).
	OptimizerAdagrad = runtime.OptAdagrad
)

func (c Config) runtimeConfig() runtime.Config {
	rc := runtime.Config{
		Engine:           c.Engine,
		Optimizer:        c.Optimizer,
		AdagradEps:       c.AdagradEps,
		NumGPUs:          c.NumGPUs,
		CacheRatio:       c.CacheRatio,
		LR:               c.LR,
		Lookahead:        c.Lookahead,
		Prefetch:         c.Prefetch,
		PrefetchDepth:    c.PrefetchDepth,
		FlushThreads:     c.FlushThreads,
		DequeueBatch:     c.DequeueBatch,
		Queue:            c.Queue,
		CheckConsistency: c.CheckConsistency,
		Seed:             c.Seed,
		OnStep:           c.OnStep,
		Recovery:         c.Recovery,
		ColdTier:         c.ColdTier,
		HotFraction:      c.HotFraction,
		Slab:             c.Slab,
	}
	if !c.FaultPlan.Empty() {
		// Each build gets a fresh injector: the injector is stateful (it
		// tracks fire-once triggers and the host-write ordinal), so two jobs
		// built from one Config must not share one.
		rc.Faults = fault.NewInjector(c.FaultPlan)
	}
	if c.Observability.Enabled {
		// Shard the hot counters so trainers and flusher threads never
		// contend on a cache line.
		shards := c.NumGPUs
		if shards < 1 {
			shards = 1
		}
		if ft := c.FlushThreads; ft <= 0 {
			if shards < 8 {
				shards = 8 // the FlushThreads default
			}
		} else if ft > shards {
			shards = ft
		}
		rc.Observer = obs.New(obs.Options{
			Shards:        shards,
			TraceCapacity: c.Observability.TraceCapacity,
		})
	}
	return rc
}

// Result reports a finished training run: per-step losses, wall time,
// stall time, cache statistics, and flush accounting.
type Result = runtime.Result

// Dataset describes one of the paper's Table 2 datasets (shape parameters
// for the synthetic stand-in generators).
type Dataset = data.Spec

// The Table 2 dataset registry.
var (
	DatasetFB15k    = data.FB15k
	DatasetFreebase = data.Freebase
	DatasetWikiKG   = data.WikiKG
	DatasetAvazu    = data.Avazu
	DatasetCriteo   = data.Criteo
	DatasetCriteoTB = data.CriteoTB
)

// Datasets returns the Table 2 registry.
func Datasets() []Dataset { return data.Specs() }

// DatasetByName resolves a Table 2 dataset by name.
func DatasetByName(name string) (Dataset, error) { return data.SpecByName(name) }

// TrainingJob is a configured training run.
type TrainingJob struct {
	job *runtime.Job
}

// Run executes the job to completion.
func (j *TrainingJob) Run() (Result, error) { return j.job.Run() }

// RunContext executes the job until completion or ctx cancellation. On
// cancellation every trainer goroutine stops cleanly, the P²F epilogue
// drains all committed updates to host memory, the flusher pool shuts
// down, and the partial Result (the fully completed prefix of steps) is
// returned together with a *ErrCanceled wrapping ctx.Err(). An
// already-canceled context returns before any training work starts.
func (j *TrainingJob) RunContext(ctx context.Context) (Result, error) {
	return j.job.RunContext(ctx)
}

// Snapshot returns a live copy of the job's observability metrics. Safe
// to call at any time — before, during, or after a run (serve it from a
// metrics endpoint while training). With Config.Observability disabled it
// returns the zero Snapshot, except the live queue depths.
func (j *TrainingJob) Snapshot() Snapshot { return j.job.Snapshot() }

// WriteTrace dumps the job's step-event trace as JSONL, oldest event
// first — gate passes and blocks, flush enqueue/dequeue/apply, cache
// hits/misses/evictions, collective phases, step completions — for
// offline timeline analysis. Call after the run finishes; it errors when
// Config.Observability was not enabled.
func (j *TrainingJob) WriteTrace(w io.Writer) error { return j.job.WriteTrace(w) }

// HostRow returns a copy of one embedding row from host memory (for
// inspection after training). It is nil under a Config.Slab override —
// read the external store instead.
func (j *TrainingJob) HostRow(key uint64) []float32 {
	if j.job.Host() == nil {
		return nil
	}
	return j.job.Host().Snapshot(key)
}

// SaveCheckpoint writes the embedding table (and optimizer state, when
// Adagrad is in use) to w. Call after Run returns — the P²F epilogue has
// drained every pending update into host memory by then.
func (j *TrainingJob) SaveCheckpoint(w io.Writer) error {
	if j.job.Host() == nil {
		return fmt.Errorf("frugal: checkpoints need the job's own host slab (Config.Slab is set)")
	}
	return j.job.Host().Save(w)
}

// RestoreCheckpoint loads an embedding table saved by SaveCheckpoint,
// warm-starting the job. Call before Run. The checkpoint's shape (rows ×
// dim) must match the job's.
func (j *TrainingJob) RestoreCheckpoint(r io.Reader) error {
	if j.job.Host() == nil {
		return fmt.Errorf("frugal: checkpoints need the job's own host slab (Config.Slab is set)")
	}
	return j.job.Host().Load(r)
}

// RECOptions configures a recommendation (DLRM) job.
type RECOptions struct {
	// Scale divides the dataset's ID space for laptop-scale runs
	// (default 100 000; use 1 for the full published shape).
	Scale int64
	// Batch is the global batch size (default: the dataset's).
	Batch int
	// Steps bounds the run length (default 200).
	Steps int64
	// Hidden overrides the top-MLP hidden sizes (default 512-512-256).
	Hidden []int
}

// KGOptions configures a knowledge-graph embedding job.
type KGOptions struct {
	// Model is one of TransE, DistMult, ComplEx, SimplE (default TransE).
	Model string
	// Gamma is the TransE margin (default 12).
	Gamma float32
	// Scale divides the graph size (default 10 000; 1 = published shape).
	Scale int64
	// Batch is the triples per global batch (default: the dataset's).
	Batch int
	// NegSample is the shared negatives per batch (default 200).
	NegSample int
	// Steps bounds the run length (default 200).
	Steps int64
	// Dim overrides the embedding dimension (default: the dataset's 400;
	// smaller dims make quick runs cheap).
	Dim int
}

// MicroOptions configures an embedding-only microbenchmark job (the
// workload family of Exp #1).
type MicroOptions struct {
	// Distribution is uniform, zipf-0.9 or zipf-0.99 (default zipf-0.9).
	Distribution string
	// KeySpace is the number of distinct keys (default 100 000).
	KeySpace uint64
	// Dim is the embedding dimension (default 32).
	Dim int
	// Batch is keys per step (default 256).
	Batch int
	// Steps bounds the run (default 100).
	Steps int64
}

// GNNOptions configures a graph-learning (GraphSAGE-style link
// prediction) job over a synthetic power-law graph.
type GNNOptions struct {
	// Nodes is the graph size (default 10 000).
	Nodes int
	// Attach is the preferential-attachment degree (default 3).
	Attach int
	// Fanout is the sampled neighbors per node (default 5).
	Fanout int
	// Dim is the node-embedding dimension (default 32).
	Dim int
	// Edges is the positive edges per global step (default 128).
	Edges int
	// Steps bounds the run (default 200).
	Steps int64
}

// KGEval reports link-prediction quality: for each held-out triple the
// true tail is ranked against `Candidates` random entities by the scoring
// function over the trained embeddings.
type KGEval struct {
	// MRR is the mean reciprocal rank of the true tail (1.0 = always
	// first; 1/(Candidates+1) ≈ random).
	MRR float64
	// HitsAt10 is the fraction of triples whose true tail ranks in the
	// top 10.
	HitsAt10 float64
	// Triples and Candidates record the evaluation size.
	Triples    int
	Candidates int
}

// EvaluateKnowledgeGraph measures link-prediction quality of a trained KG
// job on freshly drawn held-out triples (same synthetic distribution,
// disjoint random stream). Pass the same cfg/ds/opt used to build the job
// so the entity/relation spaces line up. Call after Run.
func EvaluateKnowledgeGraph(job *TrainingJob, cfg Config, ds Dataset, opt KGOptions,
	triples, candidates int) (KGEval, error) {

	if ds.Kind != data.KG {
		return KGEval{}, fmt.Errorf("frugal: %s is not a knowledge-graph dataset", ds.Name)
	}
	if opt.Model == "" {
		opt.Model = "TransE"
	}
	if opt.Scale <= 0 {
		opt.Scale = 10_000
	}
	if triples <= 0 {
		triples = 200
	}
	if candidates <= 0 {
		candidates = 50
	}
	tm, err := model.KGModelByName(opt.Model)
	if err != nil {
		return KGEval{}, err
	}
	spec := ds.Scaled(opt.Scale)
	// Held-out triples: a fresh stream far from the training seed.
	stream, err := data.NewKGStream(spec, cfg.Seed+9973, triples, 1, 1)
	if err != nil {
		return KGEval{}, err
	}
	batch, ok := stream.NextBatch()
	if !ok {
		return KGEval{}, fmt.Errorf("frugal: empty evaluation stream")
	}
	negGen := data.NewUniform(cfg.Seed+31337, uint64(spec.Vertices))

	ev := KGEval{Triples: len(batch.Heads), Candidates: candidates}
	for i := range batch.Heads {
		h := job.HostRow(batch.Heads[i])
		r := job.HostRow(batch.Rels[i])
		tRow := job.HostRow(batch.Tails[i])
		trueScore := tm.Score(h, r, tRow)
		rank := 1
		for c := 0; c < candidates; c++ {
			cand := job.HostRow(negGen.Next())
			if tm.Score(h, r, cand) > trueScore {
				rank++
			}
		}
		ev.MRR += 1 / float64(rank)
		if rank <= 10 {
			ev.HitsAt10++
		}
	}
	ev.MRR /= float64(ev.Triples)
	ev.HitsAt10 /= float64(ev.Triples)
	return ev, nil
}

// ReplayOptions configures a trace-replay job.
type ReplayOptions struct {
	// Dim is the embedding dimension (default 32).
	Dim int
	// Rows overrides the table height (default: max key in the trace + 1).
	Rows int64
	// Steps bounds the run (default: the whole trace).
	Steps int64
}

// Experiment identifies one reproducible table or figure of the paper.
type Experiment struct {
	ID    string // e.g. "table1", "fig3b", "exp1" … "exp11"
	Title string
}

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment {
	var out []Experiment
	for _, r := range bench.Runners() {
		out = append(out, Experiment{ID: r.ID, Title: r.Title})
	}
	return out
}

// RunExperiment regenerates one table or figure, writing its rendered
// rows/series to w. quick trades sweep resolution for speed.
func RunExperiment(w io.Writer, id string, quick bool) error {
	r, ok := bench.ByID(id)
	if !ok {
		return fmt.Errorf("frugal: unknown experiment %q (see Experiments())", id)
	}
	fmt.Fprintf(w, "######## %s — %s ########\n\n", r.ID, r.Title)
	_, err := io.WriteString(w, r.Run(quick))
	return err
}

// RunAllExperiments regenerates every table and figure in order.
func RunAllExperiments(w io.Writer, quick bool) { bench.RunAll(w, quick) }

// PerfReport is the serialised perf baseline (BENCH_baseline.json): the
// wall-clock benchmark suite's ns/op, allocs/op and bytes/op per entry,
// plus the environment it was measured in.
type PerfReport = bench.PerfReport

// PerfBench is one benchmark row of a PerfReport.
type PerfBench = bench.PerfBench

// RunPerfSuite executes the fixed perf-baseline suite — tensor kernels,
// the per-engine training step loop, and the priority queue's
// enqueue/drain cycle — and returns the measurements. quick shortens each
// benchmark's window for CI smoke runs (allocs/op stays exact; ns/op gets
// noisier). The caller fills PerfReport.GitSHA.
func RunPerfSuite(quick bool) PerfReport { return bench.RunPerf(quick) }

// WritePerfReport serialises a report as indented JSON.
func WritePerfReport(w io.Writer, rep PerfReport) error { return bench.WritePerf(w, rep) }

// ReadPerfReport parses a report written by WritePerfReport.
func ReadPerfReport(r io.Reader) (PerfReport, error) { return bench.ReadPerf(r) }

// ComparePerfReports diffs current against a committed baseline:
// allocation regressions come back as failures (CI fails on them, they
// are machine-independent); ns/op swings and suite mismatches come back
// as advisory notes.
func ComparePerfReports(current, baseline PerfReport) (failures, notes []string) {
	return bench.ComparePerf(current, baseline)
}
