package frugal

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestNewBuildsEveryWorkload is the acceptance check of the Workload API:
// frugal.New builds (and runs) every built-in workload value.
func TestNewBuildsEveryWorkload(t *testing.T) {
	cfg := Config{NumGPUs: 2, CheckConsistency: true, Seed: 7}
	workloads := []struct {
		w     Workload
		kind  string
		steps int64
	}{
		{Microbenchmark{Options: MicroOptions{KeySpace: 1500, Batch: 32, Steps: 10}},
			"microbenchmark", 10},
		{Recommendation{Dataset: DatasetAvazu, Options: RECOptions{Batch: 16, Steps: 5}},
			"recommendation", 5},
		{KnowledgeGraph{Dataset: DatasetFB15k, Options: KGOptions{Batch: 16, Dim: 8, NegSample: 8, Steps: 5}},
			"knowledge-graph", 5},
		{GraphLearning{Options: GNNOptions{Nodes: 500, Edges: 16, Steps: 5}},
			"graph-learning", 5},
		{Replay{Source: strings.NewReader("1 2 3\n4 5 6\n7 8 9\n"), Options: ReplayOptions{Dim: 4}},
			"replay", 3},
	}
	for _, tc := range workloads {
		if tc.w.Kind() != tc.kind {
			t.Fatalf("Kind() = %q, want %q", tc.w.Kind(), tc.kind)
		}
		if tc.w.Name() == "" {
			t.Fatalf("%s: empty Name()", tc.kind)
		}
		job, err := New(cfg, tc.w)
		if err != nil {
			t.Fatalf("New(%s): %v", tc.kind, err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("run %s: %v", tc.kind, err)
		}
		if res.Steps != tc.steps {
			t.Fatalf("%s: ran %d steps, want %d", tc.kind, res.Steps, tc.steps)
		}
	}
}

func TestNewRejectsNilWorkload(t *testing.T) {
	if _, err := New(Config{}, nil); !errors.Is(err, ErrNilWorkload) {
		t.Fatalf("New(nil) err = %v, want ErrNilWorkload", err)
	}
}

func TestNewSurfacesWorkloadErrors(t *testing.T) {
	if _, err := New(Config{}, Recommendation{Dataset: DatasetFB15k}); err == nil {
		t.Fatal("REC workload accepted a KG dataset")
	}
	if _, err := New(Config{}, Replay{}); err == nil {
		t.Fatal("Replay workload accepted a nil Source")
	}
}

// TestNewIsDeterministic pins the reproducibility contract the removed
// legacy constructors used to be tested against: two jobs built by New
// from identical config and workload values train to identical
// parameters.
func TestNewIsDeterministic(t *testing.T) {
	cfg := Config{NumGPUs: 1, CheckConsistency: true, Seed: 11}
	opt := MicroOptions{KeySpace: 800, Batch: 32, Steps: 15}
	a, err := New(cfg, Microbenchmark{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, Microbenchmark{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 800; k += 37 {
		ra, rb := a.HostRow(k), b.HostRow(k)
		for d := range ra {
			if ra[d] != rb[d] {
				t.Fatalf("identical jobs diverged at key %d dim %d: %v vs %v", k, d, ra[d], rb[d])
			}
		}
	}
}

// TestAdagradEpsPassthrough is the regression test for the Config
// passthrough bug: AdagradEps set on the public Config must reach the
// optimizer (it was silently dropped by runtimeConfig).
func TestAdagradEpsPassthrough(t *testing.T) {
	run := func(eps float32) *TrainingJob {
		job, err := New(Config{
			Optimizer: OptimizerAdagrad, AdagradEps: eps,
			CheckConsistency: true, Seed: 13,
		}, Microbenchmark{Options: MicroOptions{KeySpace: 500, Batch: 32, Steps: 10}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Run(); err != nil {
			t.Fatal(err)
		}
		return job
	}
	tiny, huge := run(1e-6), run(10)
	differs := false
	for k := uint64(0); k < 500 && !differs; k++ {
		a, b := tiny.HostRow(k), huge.HostRow(k)
		for d := range a {
			if a[d] != b[d] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Fatal("AdagradEps had no effect on training: the Config passthrough dropped it")
	}
}

// TestFaultPlanRoundTripAndDeterminism checks the public fault-plan
// helpers: generation is seed-deterministic and Parse(String) is the
// identity.
func TestFaultPlanRoundTripAndDeterminism(t *testing.T) {
	spec := FaultGenSpec{Crashes: 2, Stalls: 2, Delays: 2, HostFails: 2}
	a := GenerateFaultPlan(42, spec)
	b := GenerateFaultPlan(42, spec)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	c := GenerateFaultPlan(43, spec)
	if a.String() == c.String() {
		t.Fatal("different seeds produced the same plan")
	}
	back, err := ParseFaultPlan(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != a.String() {
		t.Fatalf("round trip lost events:\n%s\n%s", a, back)
	}
}

// TestFaultedRunThroughPublicAPI drives the fault layer entirely through
// the public Config: a flusher crash is injected and healed, the recovery
// is reported in Result.Recovery, and the final parameters match the
// fault-free run with the same seed byte for byte (single GPU).
func TestFaultedRunThroughPublicAPI(t *testing.T) {
	micro := Microbenchmark{Options: MicroOptions{KeySpace: 600, Batch: 32, Steps: 20}}
	cfg := Config{CheckConsistency: true, Seed: 17, FlushThreads: 2}

	clean, err := New(cfg, micro)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Run(); err != nil {
		t.Fatal(err)
	}

	plan, err := ParseFaultPlan("crash:flusher=0@batch=1;hostfail@write=5,count=3")
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.FaultPlan = plan
	fcfg.Recovery = Recovery{HeartbeatInterval: time.Millisecond, StallTimeout: 50 * time.Millisecond}
	faulted, err := New(fcfg, micro)
	if err != nil {
		t.Fatal(err)
	}
	res, err := faulted.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 20 {
		t.Fatalf("faulted run completed %d steps, want 20", res.Steps)
	}
	rs := res.Recovery
	if rs.FlusherCrashes != 1 || rs.FlusherRespawns < 1 {
		t.Fatalf("recovery not reported: %+v", rs)
	}
	if rs.HostWriteRetries != 3 {
		t.Fatalf("HostWriteRetries = %d, want 3", rs.HostWriteRetries)
	}
	if rs.Degraded {
		t.Fatalf("healthy recovery must not degrade: %+v", rs)
	}
	for k := uint64(0); k < 600; k++ {
		a, b := clean.HostRow(k), faulted.HostRow(k)
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("faulted slab diverged at key %d dim %d: %v vs %v", k, d, a[d], b[d])
			}
		}
	}
}
