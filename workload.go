package frugal

import (
	"errors"
	"fmt"
	"io"

	"frugal/internal/data"
	"frugal/internal/graph"
	"frugal/internal/model"
	"frugal/internal/runtime"
	"frugal/internal/stream"
)

// Workload is a training workload New can build: one of the built-in
// families (Recommendation, KnowledgeGraph, Microbenchmark, GraphLearning,
// Replay, Streaming), each carrying its own option struct. The interface is sealed —
// build is unexported — so the set of workloads is exactly the set this
// package can train; callers compose behaviour through Config and the
// option structs instead of implementing new workload types.
type Workload interface {
	// Name is the human-readable workload description New* used to print
	// (e.g. "Avazu/DLRM", "FB15k/TransE"), with option defaults applied.
	Name() string
	// Kind is the workload family: "recommendation", "knowledge-graph",
	// "microbenchmark", "graph-learning", "replay" or "streaming".
	Kind() string
	// build constructs the runtime job (sealed).
	build(cfg Config) (*runtime.Job, error)
}

// The built-in workloads satisfy Workload.
var _ = [...]Workload{
	Recommendation{}, KnowledgeGraph{}, Microbenchmark{}, GraphLearning{}, Replay{}, Streaming{},
}

// ErrNilWorkload is returned by New when passed a nil Workload.
var ErrNilWorkload = errors.New("frugal: nil workload")

// New is the single entry point for building a training job: it pairs a
// runtime Config with a Workload value.
//
//	job, err := frugal.New(cfg, frugal.Recommendation{
//		Dataset: frugal.DatasetAvazu,
//		Options: frugal.RECOptions{Steps: 200},
//	})
//
// New replaced the per-workload NewRecommendation / NewKnowledgeGraph /
// NewMicrobenchmark / NewGraphLearning / NewReplay constructors, which
// have been removed; pass the equivalent workload value instead.
func New(cfg Config, w Workload) (*TrainingJob, error) {
	if w == nil {
		return nil, ErrNilWorkload
	}
	job, err := w.build(cfg)
	if err != nil {
		return nil, err
	}
	return &TrainingJob{job: job}, nil
}

// Recommendation is the DLRM workload over a synthetic stand-in for a
// Table 2 REC dataset.
type Recommendation struct {
	// Dataset must be a Table 2 REC dataset (DatasetAvazu, DatasetCriteo,
	// DatasetCriteoTB).
	Dataset Dataset
	Options RECOptions
}

// Name implements Workload.
func (w Recommendation) Name() string { return w.Dataset.Name + "/DLRM" }

// Kind implements Workload.
func (w Recommendation) Kind() string { return "recommendation" }

func (w Recommendation) build(cfg Config) (*runtime.Job, error) {
	ds, opt := w.Dataset, w.Options
	if ds.Kind != data.REC {
		return nil, fmt.Errorf("frugal: %s is not a recommendation dataset", ds.Name)
	}
	if opt.Scale <= 0 {
		opt.Scale = 100_000
	}
	if opt.Steps <= 0 {
		opt.Steps = 200
	}
	spec := ds.Scaled(opt.Scale)
	stream, err := data.NewRECStream(spec, cfg.Seed+1, opt.Batch, opt.Steps)
	if err != nil {
		return nil, err
	}
	return runtime.NewREC(cfg.runtimeConfig(), stream, opt.Hidden, opt.Steps)
}

// KnowledgeGraph is the KG-embedding workload (TransE, DistMult, ComplEx
// or SimplE) over a synthetic stand-in for a Table 2 KG dataset.
type KnowledgeGraph struct {
	// Dataset must be a Table 2 KG dataset (DatasetFB15k, DatasetFreebase,
	// DatasetWikiKG).
	Dataset Dataset
	Options KGOptions
}

// Name implements Workload.
func (w KnowledgeGraph) Name() string {
	m := w.Options.Model
	if m == "" {
		m = "TransE"
	}
	return w.Dataset.Name + "/" + m
}

// Kind implements Workload.
func (w KnowledgeGraph) Kind() string { return "knowledge-graph" }

func (w KnowledgeGraph) build(cfg Config) (*runtime.Job, error) {
	ds, opt := w.Dataset, w.Options
	if ds.Kind != data.KG {
		return nil, fmt.Errorf("frugal: %s is not a knowledge-graph dataset", ds.Name)
	}
	if opt.Model == "" {
		opt.Model = "TransE"
	}
	if opt.Scale <= 0 {
		opt.Scale = 10_000
	}
	if opt.Steps <= 0 {
		opt.Steps = 200
	}
	tm, err := model.KGModelByName(opt.Model)
	if err != nil {
		return nil, err
	}
	if te, ok := tm.(*model.TransE); ok && opt.Gamma > 0 {
		te.Gamma = opt.Gamma
	}
	spec := ds.Scaled(opt.Scale)
	if opt.Dim > 0 {
		spec.EmbDim = opt.Dim
	}
	stream, err := data.NewKGStream(spec, cfg.Seed+1, opt.Batch, opt.NegSample, opt.Steps)
	if err != nil {
		return nil, err
	}
	rc := cfg.runtimeConfig()
	rc.Dim = spec.EmbDim
	return runtime.NewKG(rc, stream, tm, opt.Steps)
}

// Microbenchmark is the embedding-only workload of Exp #1: every key in a
// batch is read, given a synthetic gradient, and written back through the
// engine's update path — the fastest way to exercise the P²F machinery end
// to end.
type Microbenchmark struct {
	Options MicroOptions
}

// Name implements Workload.
func (w Microbenchmark) Name() string {
	d := w.Options.Distribution
	if d == "" {
		d = string(data.DistZipf09)
	}
	keys := w.Options.KeySpace
	if keys == 0 {
		keys = 100_000
	}
	return fmt.Sprintf("microbenchmark (%s, %d keys)", d, keys)
}

// Kind implements Workload.
func (w Microbenchmark) Kind() string { return "microbenchmark" }

func (w Microbenchmark) build(cfg Config) (*runtime.Job, error) {
	opt := w.Options
	if opt.Distribution == "" {
		opt.Distribution = string(data.DistZipf09)
	}
	if opt.KeySpace == 0 {
		opt.KeySpace = 100_000
	}
	if opt.Dim <= 0 {
		opt.Dim = 32
	}
	if opt.Batch <= 0 {
		opt.Batch = 256
	}
	if opt.Steps <= 0 {
		opt.Steps = 100
	}
	gen, err := data.NewGen(data.Distribution(opt.Distribution), cfg.Seed+1, opt.KeySpace)
	if err != nil {
		return nil, err
	}
	trace := data.NewSyntheticTrace(gen, opt.Batch, opt.Steps)
	rc := cfg.runtimeConfig()
	rc.Rows = int64(opt.KeySpace)
	rc.Dim = opt.Dim
	return runtime.NewMicro(rc, trace, opt.Steps)
}

// GraphLearning is the GraphSAGE-style link-prediction workload over a
// synthetic power-law graph — the third application family the paper's
// introduction motivates, where every gradient lands in node embeddings
// and travels the P²F flush path.
type GraphLearning struct {
	Options GNNOptions
}

// Name implements Workload.
func (w GraphLearning) Name() string {
	nodes := w.Options.Nodes
	if nodes <= 0 {
		nodes = 10_000
	}
	return fmt.Sprintf("graph-learning (%d nodes)", nodes)
}

// Kind implements Workload.
func (w GraphLearning) Kind() string { return "graph-learning" }

func (w GraphLearning) build(cfg Config) (*runtime.Job, error) {
	opt := w.Options
	if opt.Nodes <= 0 {
		opt.Nodes = 10_000
	}
	if opt.Attach <= 0 {
		opt.Attach = 3
	}
	if opt.Fanout <= 0 {
		opt.Fanout = 5
	}
	if opt.Dim <= 0 {
		opt.Dim = 32
	}
	if opt.Steps <= 0 {
		opt.Steps = 200
	}
	g, err := graph.Generate(cfg.Seed+1, opt.Nodes, opt.Attach)
	if err != nil {
		return nil, err
	}
	sampler, err := graph.NewSampler(g, cfg.Seed+2, opt.Fanout)
	if err != nil {
		return nil, err
	}
	rc := cfg.runtimeConfig()
	rc.Dim = opt.Dim
	return runtime.NewGNN(rc, g, sampler, opt.Edges, opt.Steps)
}

// Streaming is the continuous online-training workload: an unbounded,
// rate-paced event source drives the step loop through the ordinary
// Workload surface. Built through New it behaves like any other job
// (RunContext to bound it); build it with NewStreamJob instead to get
// the streaming controls — graceful source close, backlog accounting,
// and the delta-checkpoint log (StreamOptions.LogDir is rejected here,
// because only StreamJob manages the log writer's lifecycle).
type Streaming struct {
	Options StreamOptions
}

// Name implements Workload.
func (w Streaming) Name() string {
	opt := w.Options
	opt.normalize()
	if opt.Rate > 0 {
		return fmt.Sprintf("streaming (%s, %d keys, %.0f ev/s)", opt.Distribution, opt.KeySpace, opt.Rate)
	}
	return fmt.Sprintf("streaming (%s, %d keys, unpaced)", opt.Distribution, opt.KeySpace)
}

// Kind implements Workload.
func (w Streaming) Kind() string { return "streaming" }

func (w Streaming) build(cfg Config) (*runtime.Job, error) {
	if w.Options.LogDir != "" {
		return nil, fmt.Errorf("frugal: the delta-checkpoint log needs NewStreamJob (the Workload surface cannot manage the writer's lifecycle)")
	}
	opt := w.Options
	opt.normalize()
	src, err := stream.New(stream.Options{
		Rate:         opt.Rate,
		Batch:        opt.Batch,
		Keys:         opt.KeySpace,
		Distribution: data.Distribution(opt.Distribution),
		Seed:         cfg.Seed + 1,
		Horizon:      opt.Horizon,
	})
	if err != nil {
		return nil, err
	}
	rc := cfg.runtimeConfig()
	rc.Rows = int64(opt.KeySpace)
	rc.Dim = opt.Dim
	return runtime.NewMicro(rc, src, opt.Horizon)
}

// Replay is the trace-replay workload: a microbenchmark-style job driven
// by a recorded key trace (the format cmd/frugal-datagen -trace emits: one
// batch per line, keys space-separated), so recorded production traces can
// drive the real runtime directly.
type Replay struct {
	// Source is the trace to replay. Required.
	Source  io.Reader
	Options ReplayOptions
}

// Name implements Workload.
func (w Replay) Name() string { return "trace replay" }

// Kind implements Workload.
func (w Replay) Kind() string { return "replay" }

func (w Replay) build(cfg Config) (*runtime.Job, error) {
	if w.Source == nil {
		return nil, fmt.Errorf("frugal: Replay.Source is required")
	}
	opt := w.Options
	trace, err := data.ReadKeyTrace(w.Source)
	if err != nil {
		return nil, err
	}
	if opt.Dim <= 0 {
		opt.Dim = 32
	}
	rows := opt.Rows
	if rows <= 0 {
		rows = int64(trace.MaxKey()) + 1
	}
	rc := cfg.runtimeConfig()
	rc.Rows = rows
	rc.Dim = opt.Dim
	return runtime.NewMicro(rc, trace, opt.Steps)
}
