package frugal

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestObservabilityFrugalEngine is the public acceptance check: an
// EngineFrugal job built with Observability enabled must report non-zero
// cache, gate and flush activity, and fire OnStep once per step with a
// consistent flush view.
func TestObservabilityFrugalEngine(t *testing.T) {
	const steps = 30
	var onStepCalls atomic.Int64
	var lastStep atomic.Int64
	job, err := New(Config{
		Engine: EngineFrugal, NumGPUs: 2, CheckConsistency: true, Seed: 4,
		Observability: ObsOptions{Enabled: true},
		OnStep: func(s StepStats) {
			onStepCalls.Add(1)
			lastStep.Store(s.Step)
			if s.FlushBacklog < 0 {
				t.Errorf("negative flush backlog at step %d", s.Step)
			}
		},
	}, Microbenchmark{Options: MicroOptions{KeySpace: 2000, Batch: 64, Steps: steps}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != steps {
		t.Fatalf("steps = %d", res.Steps)
	}
	if got := onStepCalls.Load(); got != steps {
		t.Fatalf("OnStep fired %d times, want %d", got, steps)
	}

	s := job.Snapshot()
	if s.CacheHits == 0 || s.CacheLookups == 0 {
		t.Fatalf("EngineFrugal must see cache traffic: %+v", s)
	}
	if s.CacheLookups != s.CacheHits+s.CacheMisses {
		t.Fatalf("lookups %d != hits %d + misses %d", s.CacheLookups, s.CacheHits, s.CacheMisses)
	}
	if s.GatePasses != steps*2 {
		t.Fatalf("gate passes %d != steps×gpus %d", s.GatePasses, steps*2)
	}
	if s.FlushEnqueued == 0 || s.FlushApplied != s.FlushEnqueued {
		t.Fatalf("flush accounting after drain: enqueued %d applied %d", s.FlushEnqueued, s.FlushApplied)
	}
	if s.StepsCompleted != steps {
		t.Fatalf("steps completed %d", s.StepsCompleted)
	}
	var buf bytes.Buffer
	if err := job.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("trace dump is empty")
	}
}

// TestObservabilityDirectEngine pins the acceptance criterion that the
// no-P²F engine reports zero flush counters.
func TestObservabilityDirectEngine(t *testing.T) {
	const steps = 20
	job, err := New(Config{
		Engine: EngineDirect, NumGPUs: 2, Seed: 4,
		Observability: ObsOptions{Enabled: true},
	}, Microbenchmark{Options: MicroOptions{KeySpace: 2000, Batch: 64, Steps: steps}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	s := job.Snapshot()
	if s.FlushEnqueued != 0 || s.FlushApplied != 0 || s.FlushedEntries != 0 {
		t.Fatalf("EngineDirect must not flush: %+v", s)
	}
	if s.CacheLookups != 0 || s.GatePasses != 0 {
		t.Fatalf("EngineDirect has no cache or gate: %+v", s)
	}
	if s.StepsCompleted != steps {
		t.Fatalf("steps completed %d", s.StepsCompleted)
	}
}

// TestObservabilityDisabled verifies the zero-cost default: no observer,
// zero snapshot, WriteTrace errors.
func TestObservabilityDisabled(t *testing.T) {
	job, err := New(Config{Engine: EngineFrugal, Seed: 4}, Microbenchmark{Options: MicroOptions{KeySpace: 1000, Batch: 32, Steps: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	s := job.Snapshot()
	if s.CacheLookups != 0 || s.StepsCompleted != 0 || s.TraceEvents != 0 {
		t.Fatalf("disabled observability must report zeros: %+v", s)
	}
	if err := job.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace must error when observability is disabled")
	}
}

// TestQueueAndDequeueBatchPassthrough covers the config passthrough fix:
// a Queue override and a custom DequeueBatch must reach the controller —
// the job trains green on the TreeHeap baseline and the queue drains.
func TestQueueAndDequeueBatchPassthrough(t *testing.T) {
	q := NewTreeHeapQueue(1024)
	job, err := New(Config{
		Engine: EngineFrugal, NumGPUs: 2, CheckConsistency: true, Seed: 6,
		Queue: q, DequeueBatch: 16,
		Observability: ObsOptions{Enabled: true},
	}, Microbenchmark{Options: MicroOptions{KeySpace: 2000, Batch: 64, Steps: 25}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 25 {
		t.Fatalf("steps = %d", res.Steps)
	}
	// The override queue (not a fresh default one) carried the traffic…
	if q.Len() != 0 {
		t.Fatalf("override queue not drained: %d entries", q.Len())
	}
	// …and was wired into the observability layer, proving it is the
	// queue the controller used.
	if s := job.Snapshot(); s.PQEnqueues == 0 || s.PQDequeues == 0 {
		t.Fatalf("override queue saw no instrumented traffic: %+v", s)
	}
}

// TestRunContextCancellation covers the public cancellation surface: the
// typed error, the errors.Is bridge, and the fast return.
func TestRunContextCancellation(t *testing.T) {
	job, err := New(Config{Engine: EngineFrugal, NumGPUs: 2, Seed: 8}, Microbenchmark{Options: MicroOptions{KeySpace: 2000, Batch: 64, Steps: 10_000}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := job.RunContext(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var ce *ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("want *ErrCanceled, got %T", err)
	}
	if res.Steps != 0 {
		t.Fatalf("canceled-before-start run made progress: %d steps", res.Steps)
	}
}
