package frugal

import (
	"io"
	"net/http"
	"time"

	"frugal/internal/obs"
	"frugal/internal/runtime"
	"frugal/internal/serve"
	"frugal/internal/serve/loadgen"
)

// ServeLevel is a serving consistency level: ServeStale (read host memory
// as-is), ServeBounded(k) (admit at most k gate steps of flush lag), or
// ServeFresh (force-flush pending updates before every read).
type ServeLevel = serve.Level

// ServeStale returns the zero-coordination level.
func ServeStale() ServeLevel { return serve.Stale() }

// ServeBounded returns the level admitting at most k gate steps of lag.
func ServeBounded(k int64) ServeLevel { return serve.Bounded(k) }

// ServeFresh returns the force-flush-before-read level.
func ServeFresh() ServeLevel { return serve.Fresh() }

// ParseServeLevel parses "stale", "bounded", "bounded(k)" or "fresh".
func ParseServeLevel(s string) (ServeLevel, error) { return serve.ParseLevel(s) }

// ServeRowMeta is the consistency metadata of one served row.
type ServeRowMeta = serve.RowMeta

// ServeCandidate is one top-K similarity result.
type ServeCandidate = serve.Candidate

// ServeMetrics is a snapshot of a server's read-path metrics.
type ServeMetrics = obs.ServeSnapshot

// ErrTooStale is returned by bounded lookups on a RejectStale server when
// the row's flush lag exceeds the bound.
type ErrTooStale = serve.ErrTooStale

// ErrShed is returned when admission control refuses a query: the server
// was at MaxInflight and the bounded admission wait expired. Shed is the
// overload valve — back off for RetryAfter and retry.
type ErrShed = serve.ErrShed

// ServeOptions configures a Server.
type ServeOptions struct {
	// Level is the default consistency level (zero value: stale).
	Level ServeLevel
	// RejectStale refuses bounded lookups that exceed the bound instead
	// of force-flushing the row.
	RejectStale bool
	// MaxTopK caps top-K query sizes (default 128).
	MaxTopK int
	// MaxInflight caps concurrent admitted work in lookup units (a top-K
	// query costs 8 lookups); requests beyond it wait at most AdmitWait
	// and are then shed with *ErrShed. 0 disables admission control.
	MaxInflight int
	// AdmitWait bounds the admission wait (default 5ms when MaxInflight
	// is set).
	AdmitWait time.Duration
	// RequestTimeout is the per-request deadline the HTTP handlers attach
	// to every request (0: none).
	RequestTimeout time.Duration
}

func (o ServeOptions) internal() serve.Options {
	return serve.Options{
		Default: o.Level, RejectStale: o.RejectStale, MaxTopK: o.MaxTopK,
		MaxInflight: o.MaxInflight, AdmitWait: o.AdmitWait, RequestTimeout: o.RequestTimeout,
	}
}

// Server answers embedding lookups and top-K similarity queries from a
// job's host-memory parameter slab (or a loaded checkpoint). Safe for any
// number of concurrent callers, concurrently with the training job it is
// attached to.
type Server struct {
	eng *serve.Engine
}

// Serve attaches a query engine to the job's host slab. Call it at any
// point — before, during, or after Run — and query while training runs;
// the consistency levels govern how far a served row may lag the training
// frontier. For the synchronous engines (direct, frugal-sync) every level
// is trivially fresh, since their updates reach host memory at commit
// time.
func (j *TrainingJob) Serve(opt ServeOptions) (*Server, error) {
	eng, err := serve.New(j.job.Host(), j.job.Controller(), opt.internal())
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// NewServerFromCheckpoint serves a checkpoint written by SaveCheckpoint
// (or frugal-train -checkpoint-out) without constructing a training job.
// The slab is static, so top-K scans use the unlocked batched kernel and
// every consistency level is trivially satisfied.
func NewServerFromCheckpoint(r io.Reader, opt ServeOptions) (*Server, error) {
	host, err := runtime.LoadHost(r)
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewStatic(host, opt.internal())
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// Rows returns the number of servable embedding rows.
func (s *Server) Rows() int64 { return s.eng.Rows() }

// Dim returns the embedding dimension.
func (s *Server) Dim() int { return s.eng.Dim() }

// Lookup copies row `key` into dst (len(dst) == Dim()) at the server's
// default level. Allocation-free.
func (s *Server) Lookup(key uint64, dst []float32) (ServeRowMeta, error) {
	return s.eng.Lookup(key, dst, s.eng.DefaultLevel())
}

// LookupLevel is Lookup at an explicit consistency level.
func (s *Server) LookupLevel(key uint64, dst []float32, lvl ServeLevel) (ServeRowMeta, error) {
	return s.eng.Lookup(key, dst, lvl)
}

// TopK returns the k rows most similar to query by dot product, best
// first, at the server's default level.
func (s *Server) TopK(query []float32, k int) ([]ServeCandidate, error) {
	return s.eng.TopK(query, k, s.eng.DefaultLevel())
}

// TopKLevel is TopK at an explicit consistency level.
func (s *Server) TopKLevel(query []float32, k int, lvl ServeLevel) ([]ServeCandidate, error) {
	return s.eng.TopK(query, k, lvl)
}

// Handler returns the server's HTTP API: /lookup, /topk, /healthz and
// /debug/vars (read-path metrics).
func (s *Server) Handler() http.Handler { return s.eng.Handler() }

// HTTPServer is a gracefully-stoppable HTTP front end: it binds its
// listener up front (so ":0" resolves before serving) and Shutdown drains
// in-flight connections instead of dropping them.
type HTTPServer = serve.HTTPServer

// Listen binds addr and returns an HTTPServer ready to Serve the
// server's Handler. Run Serve in a goroutine and call Shutdown with a
// drain deadline to stop.
func (s *Server) Listen(addr string) (*HTTPServer, error) {
	return serve.NewHTTPServer(addr, s.Handler())
}

// Metrics snapshots the server's query counters and latency histograms.
func (s *Server) Metrics() ServeMetrics { return s.eng.Metrics() }

// LoadGenOptions configures RunLoadGen: worker count, duration, Zipf key
// skew, top-K mix, consistency level, seed — and, with ArrivalRate > 0,
// the open-loop (fixed-arrival-rate) discipline that can drive the
// server past saturation.
type LoadGenOptions = loadgen.Options

// LoadGenReport is a finished load run's summary: throughput, error,
// shed and rejection counts, client-observed latency histograms, and —
// in open-loop mode — offered/dropped arrival accounting.
type LoadGenReport = loadgen.Report

// RunLoadGen drives the server with a Zipf-skewed workload (closed-loop
// by default, open-loop with ArrivalRate set) and returns the aggregate
// report — the serving benchmark.
func (s *Server) RunLoadGen(opt LoadGenOptions) (LoadGenReport, error) {
	return loadgen.Run(s.eng, opt)
}
