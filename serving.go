package frugal

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"frugal/internal/obs"
	"frugal/internal/runtime"
	"frugal/internal/serve"
	"frugal/internal/serve/loadgen"
	"frugal/internal/shard"
	"frugal/internal/store"
)

// ServeLevel is a serving consistency level: ServeStale (read host memory
// as-is), ServeBounded(k) (admit at most k gate steps of flush lag), or
// ServeFresh (force-flush pending updates before every read).
type ServeLevel = serve.Level

// ServeStale returns the zero-coordination level.
func ServeStale() ServeLevel { return serve.Stale() }

// ServeBounded returns the level admitting at most k gate steps of lag.
func ServeBounded(k int64) ServeLevel { return serve.Bounded(k) }

// ServeFresh returns the force-flush-before-read level.
func ServeFresh() ServeLevel { return serve.Fresh() }

// ParseServeLevel parses "stale", "bounded", "bounded(k)" or "fresh".
func ParseServeLevel(s string) (ServeLevel, error) { return serve.ParseLevel(s) }

// ServeRowMeta is the consistency metadata of one served row.
type ServeRowMeta = serve.RowMeta

// ServeCandidate is one top-K similarity result.
type ServeCandidate = serve.Candidate

// ServeRequest is the one query shape Server.Query accepts: Key/Dst for
// a row lookup, Vector/K for a top-K similarity search, plus the
// consistency level and index selection knobs.
type ServeRequest = serve.Request

// ServeResponse is Server.Query's result: Values+Meta for lookups,
// Results for top-K, and the effective level and index kind.
type ServeResponse = serve.Response

// IndexKind selects the top-K scan strategy: IndexFlat (exhaustive,
// exact) or IndexIVF (inverted-file, sublinear). IndexAuto defers to the
// engine configuration.
type IndexKind = serve.IndexKind

// The index kinds, re-exported for ServeOptions and ServeRequest.
const (
	IndexAuto = serve.IndexAuto
	IndexFlat = serve.IndexFlat
	IndexIVF  = serve.IndexIVF
)

// ParseIndexKind parses "auto" (or ""), "flat" or "ivf".
func ParseIndexKind(s string) (IndexKind, error) { return serve.ParseIndexKind(s) }

// IndexStats is a snapshot of a server's IVF maintenance state (repair
// queue depth, oldest unrepaired watermark, repairs applied).
type IndexStats = serve.IndexStats

// ServeMetrics is a snapshot of a server's read-path metrics.
type ServeMetrics = obs.ServeSnapshot

// ErrTooStale is returned by bounded lookups on a RejectStale server when
// the row's flush lag exceeds the bound.
type ErrTooStale = serve.ErrTooStale

// ErrShed is returned when admission control refuses a query: the server
// was at MaxInflight and the bounded admission wait expired. Shed is the
// overload valve — back off for RetryAfter and retry.
type ErrShed = serve.ErrShed

// ServeOptions configures a Server.
type ServeOptions struct {
	// Level is the default consistency level (zero value: stale).
	Level ServeLevel
	// RejectStale refuses bounded lookups that exceed the bound instead
	// of force-flushing the row.
	RejectStale bool
	// MaxTopK caps top-K query sizes (default 128).
	MaxTopK int
	// MaxInflight caps concurrent admitted work in lookup units (a top-K
	// query costs 8 lookups); requests beyond it wait at most AdmitWait
	// and are then shed with *ErrShed. 0 disables admission control.
	MaxInflight int
	// AdmitWait bounds the admission wait (default 5ms when MaxInflight
	// is set).
	AdmitWait time.Duration
	// RequestTimeout is the per-request deadline the HTTP handlers attach
	// to every request (0: none).
	RequestTimeout time.Duration
	// Index selects the top-K scan strategy (default IndexFlat). IndexIVF
	// builds an inverted-file index over the slab at server construction;
	// queries then scan NProbe partitions instead of every row, with
	// index staleness bounded by the same consistency levels as reads.
	Index IndexKind
	// Centroids is the IVF partition count (default ≈ 4·√rows). Only
	// valid with Index: IndexIVF.
	Centroids int
	// NProbe is the number of partitions an IVF query scans (default 8).
	// Only valid with Index: IndexIVF.
	NProbe int
	// ColdTier loads the checkpoint into a frequency-aware tiered host:
	// a hot f32 head plus a quantized int8 cold tail. Top-K scans score
	// cold rows on their codes and rescore the winners from
	// full-precision dequantized reads. NewServerFromCheckpoint only.
	ColdTier bool
	// HotFraction sizes the tiered host's hot head as a fraction of the
	// table (default 0.1). Requires ColdTier; must be in (0, 1].
	HotFraction float64
}

func (o ServeOptions) internal() serve.Options {
	return serve.Options{
		Default: o.Level, RejectStale: o.RejectStale, MaxTopK: o.MaxTopK,
		MaxInflight: o.MaxInflight, AdmitWait: o.AdmitWait, RequestTimeout: o.RequestTimeout,
		Index: o.Index, Centroids: o.Centroids, NProbe: o.NProbe,
	}
}

// Server answers embedding lookups and top-K similarity queries from a
// job's host-memory parameter slab (or a loaded checkpoint). Safe for any
// number of concurrent callers, concurrently with the training job it is
// attached to.
type Server struct {
	eng   *serve.Engine
	owned *store.ShardedStore // non-nil when the server dialled its shards
}

// Serve attaches a query engine to the job's host slab. Call it at any
// point — before, during, or after Run — and query while training runs;
// the consistency levels govern how far a served row may lag the training
// frontier. For the synchronous engines (direct, frugal-sync) every level
// is trivially fresh, since their updates reach host memory at commit
// time.
func (j *TrainingJob) Serve(opt ServeOptions) (*Server, error) {
	if j.job.Host() == nil {
		return nil, fmt.Errorf("frugal: the job trains against an external slab (Config.Slab); serve the store tier directly (NewServerFromShards)")
	}
	eng, err := serve.New(j.job.Host(), j.job.Controller(), opt.internal())
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// NewServerFromCheckpoint serves a checkpoint written by SaveCheckpoint
// (or frugal-train -checkpoint-out) without constructing a training job.
// The slab is static, so top-K scans use the unlocked batched kernel and
// every consistency level is trivially satisfied. With Options.ColdTier
// the checkpoint loads into a tiered host — checkpoints of either flavor
// convert on the way in — trading a quantization error on cold rows for
// a fraction of the resident memory.
func NewServerFromCheckpoint(r io.Reader, opt ServeOptions) (*Server, error) {
	if opt.HotFraction != 0 && !opt.ColdTier {
		return nil, fmt.Errorf("frugal: HotFraction requires ColdTier")
	}
	var host *runtime.Host
	var err error
	if opt.ColdTier {
		hf := opt.HotFraction
		if hf == 0 {
			hf = 0.1
		}
		host, err = runtime.LoadHostTiered(r, hf)
	} else {
		host, err = runtime.LoadHost(r)
	}
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewStatic(host, opt.internal())
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// NewServerFromShards serves a table partitioned across frugal-shard
// nodes: it dials every address, composes the shards behind one sharded
// store (consistent-hash routing, per-shard batched fan-out, global
// watermark = min over shards), and attaches the query engine to it.
// Shard order must match the nodes' -shard indices — key routing uses
// the position in this list. The IVF index is not available on sharded
// servers (each shard scans its own rows instead); request it and
// construction fails.
func NewServerFromShards(addrs []string, opt ServeOptions) (*Server, error) {
	st, err := dialSharded(addrs)
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewFromStore(st, opt.internal())
	if err != nil {
		st.Close()
		return nil, err
	}
	return &Server{eng: eng, owned: st}, nil
}

// dialSharded dials every shard address, validates each node's announced
// topology position against its slot, and composes the sharded store.
func dialSharded(addrs []string) (*store.ShardedStore, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("frugal: no shard addresses")
	}
	shards := make([]store.Store, 0, len(addrs))
	closeAll := func() {
		for _, sh := range shards {
			sh.Close()
		}
	}
	for i, addr := range addrs {
		rs, err := shard.Dial(addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("frugal: shard %d (%s): %w", i, addr, err)
		}
		if got, of := rs.Shard(); got != i || of != len(addrs) {
			closeAll()
			rs.Close()
			return nil, fmt.Errorf("frugal: shard at %s reports position %d/%d, want %d/%d — node and server topologies disagree",
				addr, got, of, i, len(addrs))
		}
		shards = append(shards, rs)
	}
	st, err := store.NewSharded(shards)
	if err != nil {
		closeAll()
		return nil, err
	}
	return st, nil
}

// ErrReplica is returned by a follower server when a consistency demand
// (fresh, or bounded after catching the log up) needs updates only the
// primary holds. The HTTP layer maps it to 503 with code "replica_lag".
type ErrReplica = serve.ErrReplica

// FollowerStats reports a follower server's replication state: role,
// applied segment position and watermark, and the replication apply
// counters.
type FollowerStats = serve.FollowerStats

// FollowOptions shapes a follower server (NewServerFromLog).
type FollowOptions struct {
	// Poll is the log-tail interval of Run (default 50ms).
	Poll time.Duration
	// WaitForLog keeps construction retrying while the log directory has
	// no base yet — a follower booted alongside its primary (default:
	// fail immediately).
	WaitForLog time.Duration
	// PromoteAfter makes Run promote the follower once the log stops
	// growing for this long — the primary is presumed dead (default:
	// never; call Promote explicitly).
	PromoteAfter time.Duration
}

// FollowerServer is a serve replica over a delta-checkpoint log
// (frugal-train -stream-log): it reconstructs the slab from the latest
// base, tails sealed segments into its own memory, and serves reads
// with replication lag reported through the ordinary consistency gate.
// When the primary dies, Promote (or FollowOptions.PromoteAfter) makes
// it authoritative. The embedded Server is the full query surface —
// HTTP handler, load generator, metrics.
type FollowerServer struct {
	*Server
	fl *serve.Follower
}

// NewServerFromLog builds a follower server tailing the delta-checkpoint
// log at dir. The IVF index is not available on followers (its repair
// feed is the primary's flush stream).
func NewServerFromLog(dir string, opt ServeOptions, fo FollowOptions) (*FollowerServer, error) {
	fl, err := serve.NewFollower(dir, serve.FollowerOptions{
		Poll:         fo.Poll,
		WaitForLog:   fo.WaitForLog,
		PromoteAfter: fo.PromoteAfter,
		Engine:       opt.internal(),
	})
	if err != nil {
		return nil, err
	}
	return &FollowerServer{Server: &Server{eng: fl.Engine()}, fl: fl}, nil
}

// Run tails the log until ctx is done, applying newly sealed segments
// every FollowOptions.Poll and — with PromoteAfter set — promoting once
// the log goes quiet. Serve queries concurrently from the embedded
// Server the whole time.
func (f *FollowerServer) Run(ctx context.Context) error { return f.fl.Run(ctx) }

// CatchUp applies every sealed segment the replica has not seen yet.
func (f *FollowerServer) CatchUp() error { return f.fl.CatchUp() }

// Promote makes the replica authoritative: apply everything sealed,
// salvage the complete prefix of an unsealed segment, and flip the role
// to "primary". Reads then serve at staleness 0 against the promoted
// watermark.
func (f *FollowerServer) Promote() error { return f.fl.Promote() }

// Role reports "follower", or "primary" after promotion.
func (f *FollowerServer) Role() string { return f.fl.Role() }

// ReplicaStats snapshots the replication state.
func (f *FollowerServer) ReplicaStats() FollowerStats { return f.fl.Stats() }

// ShardSlab is a training slab over remote shard nodes: set it as
// Config.Slab and the training job's step loop gathers and scatters
// against the store tier instead of in-process host memory. Close it
// after the job finishes.
type ShardSlab struct {
	*store.TrainSlab
	owned *store.ShardedStore
}

// DialShardSlab dials uncoordinated frugal-shard nodes (started with
// -uncoordinated; the step loop is write-through, so a store-side gate
// would double-coordinate every commit) and composes them into a
// Config.Slab. Shard order must match the nodes' -shard indices.
func DialShardSlab(addrs []string) (*ShardSlab, error) {
	st, err := dialSharded(addrs)
	if err != nil {
		return nil, err
	}
	slab, err := store.NewTrainSlab(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	return &ShardSlab{TrainSlab: slab, owned: st}, nil
}

// Close releases the shard connections.
func (s *ShardSlab) Close() error { return s.owned.Close() }

// Close releases resources the server owns (shard connections). Servers
// over in-process slabs hold nothing and Close is a no-op.
func (s *Server) Close() error {
	if s.owned != nil {
		return s.owned.Close()
	}
	return nil
}

// Rows returns the number of servable embedding rows.
func (s *Server) Rows() int64 { return s.eng.Rows() }

// Dim returns the embedding dimension.
func (s *Server) Dim() int { return s.eng.Dim() }

// Query is the unified entrypoint: one request shape for lookups
// (Key/Dst) and top-K searches (Vector/K), with per-request consistency
// level and index selection. Lookups through Query stay allocation-free
// when Dst is supplied.
func (s *Server) Query(ctx context.Context, req ServeRequest) (ServeResponse, error) {
	return s.eng.Query(ctx, req)
}

// Index reports the server's configured top-K scan strategy.
func (s *Server) Index() IndexKind { return s.eng.Index() }

// IndexStats snapshots the IVF maintenance state (zero value on flat
// servers).
func (s *Server) IndexStats() IndexStats { return s.eng.IndexStats() }

// Handler returns the server's HTTP API, versioned under /v1
// (/v1/lookup, /v1/topk — the unversioned paths remain as aliases) plus
// /healthz and /debug/vars (read-path metrics). Errors share one JSON
// envelope {"error","code","retry_after_ms"}.
func (s *Server) Handler() http.Handler { return s.eng.Handler() }

// HTTPServer is a gracefully-stoppable HTTP front end: it binds its
// listener up front (so ":0" resolves before serving) and Shutdown drains
// in-flight connections instead of dropping them.
type HTTPServer = serve.HTTPServer

// Listen binds addr and returns an HTTPServer ready to Serve the
// server's Handler. Run Serve in a goroutine and call Shutdown with a
// drain deadline to stop.
func (s *Server) Listen(addr string) (*HTTPServer, error) {
	return serve.NewHTTPServer(addr, s.Handler())
}

// Metrics snapshots the server's query counters and latency histograms.
func (s *Server) Metrics() ServeMetrics { return s.eng.Metrics() }

// LoadGenOptions configures RunLoadGen: worker count, duration, Zipf key
// skew, top-K mix, consistency level, seed — and, with ArrivalRate > 0,
// the open-loop (fixed-arrival-rate) discipline that can drive the
// server past saturation.
type LoadGenOptions = loadgen.Options

// LoadGenReport is a finished load run's summary: throughput, error,
// shed and rejection counts, client-observed latency histograms, and —
// in open-loop mode — offered/dropped arrival accounting.
type LoadGenReport = loadgen.Report

// RunLoadGen drives the server with a Zipf-skewed workload (closed-loop
// by default, open-loop with ArrivalRate set) and returns the aggregate
// report — the serving benchmark.
func (s *Server) RunLoadGen(opt LoadGenOptions) (LoadGenReport, error) {
	return loadgen.Run(s.eng, opt)
}
