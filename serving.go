package frugal

import (
	"context"
	"io"
	"net/http"
	"time"

	"frugal/internal/obs"
	"frugal/internal/runtime"
	"frugal/internal/serve"
	"frugal/internal/serve/loadgen"
)

// ServeLevel is a serving consistency level: ServeStale (read host memory
// as-is), ServeBounded(k) (admit at most k gate steps of flush lag), or
// ServeFresh (force-flush pending updates before every read).
type ServeLevel = serve.Level

// ServeStale returns the zero-coordination level.
func ServeStale() ServeLevel { return serve.Stale() }

// ServeBounded returns the level admitting at most k gate steps of lag.
func ServeBounded(k int64) ServeLevel { return serve.Bounded(k) }

// ServeFresh returns the force-flush-before-read level.
func ServeFresh() ServeLevel { return serve.Fresh() }

// ParseServeLevel parses "stale", "bounded", "bounded(k)" or "fresh".
func ParseServeLevel(s string) (ServeLevel, error) { return serve.ParseLevel(s) }

// ServeRowMeta is the consistency metadata of one served row.
type ServeRowMeta = serve.RowMeta

// ServeCandidate is one top-K similarity result.
type ServeCandidate = serve.Candidate

// ServeRequest is the one query shape Server.Query accepts: Key/Dst for
// a row lookup, Vector/K for a top-K similarity search, plus the
// consistency level and index selection knobs.
type ServeRequest = serve.Request

// ServeResponse is Server.Query's result: Values+Meta for lookups,
// Results for top-K, and the effective level and index kind.
type ServeResponse = serve.Response

// IndexKind selects the top-K scan strategy: IndexFlat (exhaustive,
// exact) or IndexIVF (inverted-file, sublinear). IndexAuto defers to the
// engine configuration.
type IndexKind = serve.IndexKind

// The index kinds, re-exported for ServeOptions and ServeRequest.
const (
	IndexAuto = serve.IndexAuto
	IndexFlat = serve.IndexFlat
	IndexIVF  = serve.IndexIVF
)

// ParseIndexKind parses "auto" (or ""), "flat" or "ivf".
func ParseIndexKind(s string) (IndexKind, error) { return serve.ParseIndexKind(s) }

// IndexStats is a snapshot of a server's IVF maintenance state (repair
// queue depth, oldest unrepaired watermark, repairs applied).
type IndexStats = serve.IndexStats

// ServeMetrics is a snapshot of a server's read-path metrics.
type ServeMetrics = obs.ServeSnapshot

// ErrTooStale is returned by bounded lookups on a RejectStale server when
// the row's flush lag exceeds the bound.
type ErrTooStale = serve.ErrTooStale

// ErrShed is returned when admission control refuses a query: the server
// was at MaxInflight and the bounded admission wait expired. Shed is the
// overload valve — back off for RetryAfter and retry.
type ErrShed = serve.ErrShed

// ServeOptions configures a Server.
type ServeOptions struct {
	// Level is the default consistency level (zero value: stale).
	Level ServeLevel
	// RejectStale refuses bounded lookups that exceed the bound instead
	// of force-flushing the row.
	RejectStale bool
	// MaxTopK caps top-K query sizes (default 128).
	MaxTopK int
	// MaxInflight caps concurrent admitted work in lookup units (a top-K
	// query costs 8 lookups); requests beyond it wait at most AdmitWait
	// and are then shed with *ErrShed. 0 disables admission control.
	MaxInflight int
	// AdmitWait bounds the admission wait (default 5ms when MaxInflight
	// is set).
	AdmitWait time.Duration
	// RequestTimeout is the per-request deadline the HTTP handlers attach
	// to every request (0: none).
	RequestTimeout time.Duration
	// Index selects the top-K scan strategy (default IndexFlat). IndexIVF
	// builds an inverted-file index over the slab at server construction;
	// queries then scan NProbe partitions instead of every row, with
	// index staleness bounded by the same consistency levels as reads.
	Index IndexKind
	// Centroids is the IVF partition count (default ≈ 4·√rows). Only
	// valid with Index: IndexIVF.
	Centroids int
	// NProbe is the number of partitions an IVF query scans (default 8).
	// Only valid with Index: IndexIVF.
	NProbe int
}

func (o ServeOptions) internal() serve.Options {
	return serve.Options{
		Default: o.Level, RejectStale: o.RejectStale, MaxTopK: o.MaxTopK,
		MaxInflight: o.MaxInflight, AdmitWait: o.AdmitWait, RequestTimeout: o.RequestTimeout,
		Index: o.Index, Centroids: o.Centroids, NProbe: o.NProbe,
	}
}

// Server answers embedding lookups and top-K similarity queries from a
// job's host-memory parameter slab (or a loaded checkpoint). Safe for any
// number of concurrent callers, concurrently with the training job it is
// attached to.
type Server struct {
	eng *serve.Engine
}

// Serve attaches a query engine to the job's host slab. Call it at any
// point — before, during, or after Run — and query while training runs;
// the consistency levels govern how far a served row may lag the training
// frontier. For the synchronous engines (direct, frugal-sync) every level
// is trivially fresh, since their updates reach host memory at commit
// time.
func (j *TrainingJob) Serve(opt ServeOptions) (*Server, error) {
	eng, err := serve.New(j.job.Host(), j.job.Controller(), opt.internal())
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// NewServerFromCheckpoint serves a checkpoint written by SaveCheckpoint
// (or frugal-train -checkpoint-out) without constructing a training job.
// The slab is static, so top-K scans use the unlocked batched kernel and
// every consistency level is trivially satisfied.
func NewServerFromCheckpoint(r io.Reader, opt ServeOptions) (*Server, error) {
	host, err := runtime.LoadHost(r)
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewStatic(host, opt.internal())
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// Rows returns the number of servable embedding rows.
func (s *Server) Rows() int64 { return s.eng.Rows() }

// Dim returns the embedding dimension.
func (s *Server) Dim() int { return s.eng.Dim() }

// Query is the unified entrypoint: one request shape for lookups
// (Key/Dst) and top-K searches (Vector/K), with per-request consistency
// level and index selection. Lookups through Query stay allocation-free
// when Dst is supplied.
func (s *Server) Query(ctx context.Context, req ServeRequest) (ServeResponse, error) {
	return s.eng.Query(ctx, req)
}

// Lookup copies row `key` into dst (len(dst) == Dim()) at the server's
// default level. Allocation-free.
//
// Deprecated: use Query with ServeRequest{Key: key, Dst: dst,
// UseDefault: true}.
func (s *Server) Lookup(key uint64, dst []float32) (ServeRowMeta, error) {
	resp, err := s.eng.Query(context.Background(), ServeRequest{Key: key, Dst: dst, UseDefault: true})
	return resp.Meta, err
}

// LookupLevel is Lookup at an explicit consistency level.
//
// Deprecated: use Query with ServeRequest{Key: key, Dst: dst, Level: lvl}.
func (s *Server) LookupLevel(key uint64, dst []float32, lvl ServeLevel) (ServeRowMeta, error) {
	resp, err := s.eng.Query(context.Background(), ServeRequest{Key: key, Dst: dst, Level: lvl})
	return resp.Meta, err
}

// TopK returns the k rows most similar to query by dot product, best
// first, at the server's default level.
//
// Deprecated: use Query with ServeRequest{Vector: query, K: k,
// UseDefault: true}.
func (s *Server) TopK(query []float32, k int) ([]ServeCandidate, error) {
	resp, err := s.eng.Query(context.Background(), ServeRequest{Vector: query, K: k, UseDefault: true})
	return resp.Results, err
}

// TopKLevel is TopK at an explicit consistency level.
//
// Deprecated: use Query with ServeRequest{Vector: query, K: k, Level: lvl}.
func (s *Server) TopKLevel(query []float32, k int, lvl ServeLevel) ([]ServeCandidate, error) {
	resp, err := s.eng.Query(context.Background(), ServeRequest{Vector: query, K: k, Level: lvl})
	return resp.Results, err
}

// Index reports the server's configured top-K scan strategy.
func (s *Server) Index() IndexKind { return s.eng.Index() }

// IndexStats snapshots the IVF maintenance state (zero value on flat
// servers).
func (s *Server) IndexStats() IndexStats { return s.eng.IndexStats() }

// Handler returns the server's HTTP API, versioned under /v1
// (/v1/lookup, /v1/topk — the unversioned paths remain as aliases) plus
// /healthz and /debug/vars (read-path metrics). Errors share one JSON
// envelope {"error","code","retry_after_ms"}.
func (s *Server) Handler() http.Handler { return s.eng.Handler() }

// HTTPServer is a gracefully-stoppable HTTP front end: it binds its
// listener up front (so ":0" resolves before serving) and Shutdown drains
// in-flight connections instead of dropping them.
type HTTPServer = serve.HTTPServer

// Listen binds addr and returns an HTTPServer ready to Serve the
// server's Handler. Run Serve in a goroutine and call Shutdown with a
// drain deadline to stop.
func (s *Server) Listen(addr string) (*HTTPServer, error) {
	return serve.NewHTTPServer(addr, s.Handler())
}

// Metrics snapshots the server's query counters and latency histograms.
func (s *Server) Metrics() ServeMetrics { return s.eng.Metrics() }

// LoadGenOptions configures RunLoadGen: worker count, duration, Zipf key
// skew, top-K mix, consistency level, seed — and, with ArrivalRate > 0,
// the open-loop (fixed-arrival-rate) discipline that can drive the
// server past saturation.
type LoadGenOptions = loadgen.Options

// LoadGenReport is a finished load run's summary: throughput, error,
// shed and rejection counts, client-observed latency histograms, and —
// in open-loop mode — offered/dropped arrival accounting.
type LoadGenReport = loadgen.Report

// RunLoadGen drives the server with a Zipf-skewed workload (closed-loop
// by default, open-loop with ArrivalRate set) and returns the aggregate
// report — the serving benchmark.
func (s *Server) RunLoadGen(opt LoadGenOptions) (LoadGenReport, error) {
	return loadgen.Run(s.eng, opt)
}
