// Command frugal-datagen materialises the synthetic stand-in datasets to
// disk, for inspection or for feeding other tools: recommendation samples
// as CSV (label, then one categorical ID per feature), knowledge-graph
// triples as TSV (head, relation, tail), and raw key traces as one
// batch per line.
//
// Usage:
//
//	frugal-datagen -dataset Criteo -samples 10000 -o criteo.csv
//	frugal-datagen -dataset FB15k -samples 5000 -o fb15k.tsv
//	frugal-datagen -trace zipf-0.99 -keys 1000000 -batch 1024 -samples 100 -o trace.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"frugal/internal/data"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "Table 2 dataset name (REC → CSV, KG → TSV)")
		trace   = flag.String("trace", "", "emit a raw key trace instead: uniform, zipf-0.9, zipf-0.99")
		keys    = flag.Uint64("keys", 1_000_000, "trace key-space size")
		batch   = flag.Int("batch", 1024, "trace batch size / KG batch size")
		samples = flag.Int64("samples", 10_000, "samples (REC), triples (KG) or batches (trace)")
		scale   = flag.Int64("scale", 100_000, "dataset scale-down factor")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "-", "output path ('-' = stdout)")
	)
	flag.Parse()

	w, closer, err := openOut(*out)
	if err != nil {
		fail(err)
	}
	defer closer()

	switch {
	case *trace != "":
		err = emitTrace(w, data.Distribution(*trace), *seed, *keys, *batch, *samples)
	case *dataset != "":
		err = emitDataset(w, *dataset, *seed, *batch, *samples, *scale)
	default:
		err = fmt.Errorf("need -dataset or -trace; see -h")
	}
	if err != nil {
		fail(err)
	}
}

func openOut(path string) (*bufio.Writer, func(), error) {
	if path == "-" {
		w := bufio.NewWriter(os.Stdout)
		return w, func() { w.Flush() }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return w, func() { w.Flush(); f.Close() }, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func emitTrace(w *bufio.Writer, dist data.Distribution, seed int64, keys uint64, batch int, batches int64) error {
	gen, err := data.NewGen(dist, seed, keys)
	if err != nil {
		return err
	}
	tr := data.NewSyntheticTrace(gen, batch, batches)
	for {
		ks, ok := tr.Next()
		if !ok {
			return nil
		}
		for i, k := range ks {
			if i > 0 {
				w.WriteByte(' ')
			}
			w.WriteString(strconv.FormatUint(k, 10))
		}
		w.WriteByte('\n')
	}
}

func emitDataset(w *bufio.Writer, name string, seed int64, batch int, samples, scale int64) error {
	spec, err := data.SpecByName(name)
	if err != nil {
		return err
	}
	spec = spec.Scaled(scale)
	if spec.Kind == data.KG {
		return emitKG(w, spec, seed, batch, samples)
	}
	return emitREC(w, spec, seed, samples)
}

func emitREC(w *bufio.Writer, spec data.Spec, seed, samples int64) error {
	const per = 256
	steps := (samples + per - 1) / per
	stream, err := data.NewRECStream(spec, seed, per, steps)
	if err != nil {
		return err
	}
	// Header.
	w.WriteString("label")
	for f := 0; f < spec.Features; f++ {
		fmt.Fprintf(w, ",f%d", f)
	}
	w.WriteByte('\n')
	emitted := int64(0)
	for emitted < samples {
		b, ok := stream.NextBatch()
		if !ok {
			return nil
		}
		for i := range b.Labels {
			if emitted >= samples {
				return nil
			}
			fmt.Fprintf(w, "%.0f", b.Labels[i])
			for f := 0; f < b.Features; f++ {
				fmt.Fprintf(w, ",%d", b.Keys[i*b.Features+f])
			}
			w.WriteByte('\n')
			emitted++
		}
	}
	return nil
}

func emitKG(w *bufio.Writer, spec data.Spec, seed int64, batch int, triples int64) error {
	if batch <= 0 {
		batch = 256
	}
	steps := (triples + int64(batch) - 1) / int64(batch)
	stream, err := data.NewKGStream(spec, seed, batch, 1, steps)
	if err != nil {
		return err
	}
	relOffset := uint64(spec.Vertices)
	emitted := int64(0)
	for emitted < triples {
		b, ok := stream.NextBatch()
		if !ok {
			return nil
		}
		for i := range b.Heads {
			if emitted >= triples {
				return nil
			}
			fmt.Fprintf(w, "%d\t%d\t%d\n", b.Heads[i], b.Rels[i]-relOffset, b.Tails[i])
			emitted++
		}
	}
	return nil
}
