package main

import (
	"strings"
	"testing"
	"time"
)

func okOptions() options {
	return options{Engine: "frugal", GPUs: 4, Steps: 200}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	plan, err := validate(okOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty() {
		t.Fatalf("empty -fault-plan parsed to a non-empty plan: %s", plan)
	}
}

func TestValidateParsesFaultPlan(t *testing.T) {
	o := okOptions()
	o.FaultPlan = "crash:flusher=0@batch=3;delay:gpu=1@step=5,dur=2ms"
	plan, err := validate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 2 {
		t.Fatalf("parsed %d events, want 2: %s", len(plan.Events), plan)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		want   string // substring of the usage error
	}{
		{"unknown engine", func(o *options) { o.Engine = "turbo" }, "unknown engine"},
		{"zero gpus", func(o *options) { o.GPUs = 0 }, "-gpus"},
		{"zero steps", func(o *options) { o.Steps = 0 }, "-steps"},
		{"micro and replay", func(o *options) { o.Micro = true; o.Replay = "t.trace" }, "mutually exclusive"},
		{"bad plan syntax", func(o *options) { o.FaultPlan = "explode:flusher=0@batch=1" }, "-fault-plan"},
		{"flusher fault on direct", func(o *options) {
			o.Engine = "direct"
			o.FaultPlan = "crash:flusher=0@batch=1"
		}, "no flusher pool"},
		{"flusher stall on frugal-sync", func(o *options) {
			o.Engine = "frugal-sync"
			o.FaultPlan = "stall:flusher=1@batch=2,dur=5ms"
		}, "no flusher pool"},
		{"gate timeout on direct", func(o *options) {
			o.Engine = "direct"
			o.GateTimeout = time.Second
		}, "no consistency gate"},
		{"max respawns on frugal-sync", func(o *options) {
			o.Engine = "frugal-sync"
			o.MaxRespawns = -1
		}, "-max-respawns"},
	}
	for _, tc := range cases {
		o := okOptions()
		tc.mutate(&o)
		_, err := validate(o)
		if err == nil {
			t.Fatalf("%s: validate accepted invalid flags %+v", tc.name, o)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateAllowsEngineAgnosticFaults pins that delay/hostfail plans —
// meaningful on every engine — pass validation on the write-through ones.
func TestValidateAllowsEngineAgnosticFaults(t *testing.T) {
	for _, engine := range []string{"frugal-sync", "direct"} {
		o := okOptions()
		o.Engine = engine
		o.FaultPlan = "delay:gpu=0@step=3,dur=1ms;hostfail@write=10,count=2"
		if _, err := validate(o); err != nil {
			t.Fatalf("%s rejected an engine-agnostic plan: %v", engine, err)
		}
	}
}
