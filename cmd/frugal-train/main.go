// Command frugal-train runs the real concurrent training runtime on a
// synthetic stand-in for one of the paper's datasets and reports loss,
// throughput, stall time and cache statistics.
//
// Usage:
//
//	frugal-train -dataset Avazu -engine frugal -gpus 4 -steps 200
//	frugal-train -dataset FB15k -model ComplEx -gpus 2
//	frugal-train -micro -dist zipf-0.99 -batch 512
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"frugal"
	"frugal/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		dataset  = flag.String("dataset", "Avazu", "Table 2 dataset name")
		engine   = flag.String("engine", "frugal", "engine: frugal, frugal-sync, direct")
		gpus     = flag.Int("gpus", 4, "number of simulated GPUs")
		steps    = flag.Int64("steps", 200, "training steps")
		batch    = flag.Int("batch", 0, "global batch size (0 = dataset default)")
		scale    = flag.Int64("scale", 0, "dataset scale-down factor (0 = sensible default)")
		cache    = flag.Float64("cache", 0.05, "per-GPU cache ratio")
		lr       = flag.Float64("lr", 0.05, "embedding learning rate")
		threads  = flag.Int("flush-threads", 8, "P2F flushing threads")
		prefetch = flag.Bool("prefetch", false,
			"overlap cache fills with compute: prefetch upcoming batches' rows and window-pin them (cached engines only)")
		prefetchDepth = flag.Int("prefetch-depth", 0,
			"max future batches prefetched but not yet trained (0 = lookahead depth; requires -prefetch)")
		kgModel   = flag.String("model", "TransE", "KG scoring model (KG datasets only)")
		micro     = flag.Bool("micro", false, "run the embedding-only microbenchmark instead of a dataset")
		replay    = flag.String("replay", "", "replay a recorded key trace file (see frugal-datagen -trace)")
		streaming = flag.Bool("stream", false,
			"continuous online training from a rate-paced event stream (uses -dist/-keys/-batch; -steps caps the horizon)")
		streamRate = flag.Float64("stream-rate", 0, "stream event arrivals per second (0 = unpaced; requires -stream)")
		streamLog  = flag.String("stream-log", "",
			"cut a delta-checkpoint log into this empty directory while training (requires -stream; serve it with frugal-serve -follow)")
		duration = flag.Duration("duration", 0,
			"stop the stream gracefully after this long (0 = run to the horizon; requires -stream)")
		dist      = flag.String("dist", "zipf-0.9", "microbenchmark key distribution")
		keySpace  = flag.Uint64("keys", 100_000, "microbenchmark key-space size")
		seed      = flag.Int64("seed", 1, "random seed")
		check     = flag.Bool("check", true, "verify the synchronous-consistency invariant every step")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of text")
		obsOn     = flag.Bool("obs", false, "enable the observability layer (metric counters + step tracing)")
		traceOut  = flag.String("trace-out", "", "write the step-event trace as JSONL to this file after the run (implies -obs)")
		metrics   = flag.String("metrics-addr", "", "serve live metrics at /debug/vars on this address, e.g. :6060 (implies -obs)")
		faultPlan = flag.String("fault-plan", "",
			"deterministic fault schedule, e.g. 'crash:flusher=0@batch=3;delay:gpu=1@step=5,dur=2ms' (empty injects nothing)")
		gateTimeout = flag.Duration("gate-timeout", 0,
			"degrade the frugal engine to write-through after this long with zero flush progress (0 = 5s default, negative disables the watchdog)")
		maxRespawns = flag.Int("max-respawns", 0,
			"flusher respawn budget (0 = 16 default, negative disables self-healing so a dead pool degrades)")
		coldTier = flag.Bool("cold-tier", false,
			"allocate the embedding table as a frequency-aware tiered slab: hot f32 head + quantized int8 cold tail")
		hotFraction = flag.Float64("hot-fraction", 0,
			"hot-head size as a fraction of the table, in (0, 1] (default 0.1; requires -cold-tier)")
		ckptOut    = flag.String("checkpoint-out", "", "save the trained host slab as a checkpoint to this file after the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
	)
	flag.Parse()

	plan, err := validate(options{
		Engine: *engine, GPUs: *gpus, Steps: *steps, Micro: *micro,
		Replay: *replay, Stream: *streaming, StreamRate: *streamRate,
		StreamLog: *streamLog, Duration: *duration,
		FaultPlan: *faultPlan, GateTimeout: *gateTimeout,
		MaxRespawns: *maxRespawns, Prefetch: *prefetch, PrefetchDepth: *prefetchDepth,
		ColdTier: *coldTier, HotFraction: *hotFraction,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frugal-train:", err)
		flag.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	if *traceOut != "" || *metrics != "" {
		*obsOn = true
	}
	cfg := frugal.Config{
		Engine:           frugal.Engine(*engine),
		NumGPUs:          *gpus,
		CacheRatio:       *cache,
		LR:               float32(*lr),
		FlushThreads:     *threads,
		CheckConsistency: *check,
		Prefetch:         *prefetch,
		PrefetchDepth:    *prefetchDepth,
		Seed:             *seed,
		Observability:    frugal.ObsOptions{Enabled: *obsOn},
		ColdTier:         *coldTier,
		HotFraction:      *hotFraction,
		FaultPlan:        plan,
		Recovery:         frugal.Recovery{MaxRespawns: *maxRespawns, GateTimeout: *gateTimeout},
	}

	if *streaming {
		// -steps caps the stream horizon only when given explicitly; the
		// default streaming horizon is the P²F queue's sizing bound.
		horizon := int64(0)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "steps" {
				horizon = *steps
			}
		})
		return runStream(cfg, frugal.StreamOptions{
			Rate:         *streamRate,
			Batch:        *batch,
			KeySpace:     *keySpace,
			Distribution: *dist,
			Horizon:      horizon,
			LogDir:       *streamLog,
		}, *duration, *metrics, *jsonOut, *obsOn)
	}

	job, name, err := buildJob(cfg, *micro, *replay, *dataset, *kgModel, *dist, *keySpace, *batch, *scale, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *metrics != "" {
		// GET /debug/vars on this address returns the live Snapshot under
		// the "frugal" key while the job trains.
		obs.ServeMetrics(*metrics, "frugal", func() any { return job.Snapshot() })
	}
	if !*jsonOut {
		fmt.Printf("training %s with engine=%s gpus=%d steps=%d\n", name, *engine, *gpus, *steps)
	}
	res, err := job.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *traceOut != "" {
		if err := dumpTrace(job, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *ckptOut != "" {
		if err := saveCheckpoint(job, *ckptOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *jsonOut {
		if err := reportJSON(name, *engine, res, job, *obsOn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	report(res)
	if *obsOn {
		reportObs(job.Snapshot())
	}
	return 0
}

// runStream is the -stream mode: continuous online training until
// -duration elapses, the horizon runs out, or the process is
// interrupted — all three end the stream gracefully (the epilogue
// drains, the delta log seals its final segment).
func runStream(cfg frugal.Config, opt frugal.StreamOptions, dur time.Duration,
	metricsAddr string, jsonOut, obsOn bool) int {

	sj, err := frugal.NewStreamJob(cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if metricsAddr != "" {
		obs.ServeMetrics(metricsAddr, "frugal", func() any { return sj.Snapshot() })
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if dur > 0 {
		ctx, cancel = context.WithTimeout(ctx, dur)
		defer cancel()
	}
	if !jsonOut {
		w := frugal.Streaming{Options: opt}
		fmt.Printf("streaming %s with engine=frugal gpus=%d", w.Name(), cfg.NumGPUs)
		if opt.LogDir != "" {
			fmt.Printf(" log=%s", opt.LogDir)
		}
		fmt.Println()
	}
	res, err := sj.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if jsonOut {
		out := map[string]any{
			"workload":      "streaming",
			"steps":         res.Steps,
			"events":        sj.Emitted(),
			"backlog":       sj.Backlog(),
			"wallSeconds":   res.WallTime.Seconds(),
			"samplesPerSec": res.SamplesPerSec,
			"stallSeconds":  res.StallTime.Seconds(),
		}
		if opt.LogDir != "" {
			out["deltaLog"] = sj.LogStats()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	report(res)
	fmt.Printf("stream:           %d events consumed, backlog %d\n", sj.Emitted(), sj.Backlog())
	if opt.LogDir != "" {
		ls := sj.LogStats()
		fmt.Printf("delta log:        %d segments (%d records), %d compactions, base seq %d\n",
			ls.Segments, ls.Records, ls.Compactions, ls.BaseSeq)
	}
	if obsOn {
		reportObs(sj.Snapshot())
	}
	return 0
}

// writeMemProfile dumps the post-run live heap (after a GC pass) to path.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC() // materialise the steady-state live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// saveCheckpoint writes the trained parameters to path.
func saveCheckpoint(job *frugal.TrainingJob, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := job.SaveCheckpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpTrace writes the job's step-event trace to path.
func dumpTrace(job *frugal.TrainingJob, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := job.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportJSON emits a machine-readable run summary.
func reportJSON(name, engine string, res frugal.Result, job *frugal.TrainingJob, obsOn bool) error {
	out := map[string]any{
		"workload":        name,
		"engine":          engine,
		"steps":           res.Steps,
		"firstLoss":       res.Losses[0],
		"lastLoss":        res.Losses[len(res.Losses)-1],
		"wallSeconds":     res.WallTime.Seconds(),
		"samplesPerSec":   res.SamplesPerSec,
		"stallSeconds":    res.StallTime.Seconds(),
		"flushedUpdates":  res.Flushed,
		"deferredEntries": res.Deferred,
		"cacheHitRatio":   res.CacheStats.HitRatio(),
		"trainAUC":        res.TrainAUC,
	}
	if cs := res.CacheStats; cs.PrefetchFills > 0 {
		out["prefetch"] = map[string]any{
			"fills":            cs.PrefetchFills,
			"hitRate":          cs.PrefetchHitRate(),
			"accuracy":         cs.PrefetchAccuracy(),
			"late":             cs.PrefetchLate,
			"wasted":           cs.PrefetchWasted,
			"windowPinRejects": cs.WindowPinRejects,
		}
	}
	if rs := res.Recovery; rs.FaultsInjected > 0 || rs.Degraded {
		out["recovery"] = rs
	}
	if obsOn {
		out["metrics"] = job.Snapshot()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// buildJob resolves the flag set to a Workload and builds it through
// frugal.New — the single construction entry point.
func buildJob(cfg frugal.Config, micro bool, replay, dataset, kgModel, dist string,
	keySpace uint64, batch int, scale, steps int64) (*frugal.TrainingJob, string, error) {

	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		w := frugal.Replay{Source: f, Options: frugal.ReplayOptions{Steps: steps}}
		job, err := frugal.New(cfg, w)
		return job, "replay of " + replay, err
	}
	var w frugal.Workload
	switch {
	case micro:
		w = frugal.Microbenchmark{Options: frugal.MicroOptions{
			Distribution: dist, KeySpace: keySpace, Batch: batch, Steps: steps,
		}}
	default:
		ds, err := frugal.DatasetByName(dataset)
		if err != nil {
			return nil, "", err
		}
		if ds.Kind == "KG" {
			w = frugal.KnowledgeGraph{Dataset: ds, Options: frugal.KGOptions{
				Model: kgModel, Scale: scale, Batch: batch, Steps: steps,
			}}
		} else {
			w = frugal.Recommendation{Dataset: ds, Options: frugal.RECOptions{
				Scale: scale, Batch: batch, Steps: steps,
			}}
		}
	}
	job, err := frugal.New(cfg, w)
	return job, w.Name(), err
}

func report(res frugal.Result) {
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	fmt.Printf("steps:            %d\n", res.Steps)
	fmt.Printf("loss:             %.4f → %.4f\n", first, last)
	fmt.Printf("wall time:        %v\n", res.WallTime)
	fmt.Printf("throughput:       %.0f samples/s\n", res.SamplesPerSec)
	fmt.Printf("gate stall:       %v\n", res.StallTime)
	fmt.Printf("flushed updates:  %d (%d deferred g-entries)\n", res.Flushed, res.Deferred)
	cs := res.CacheStats
	fmt.Printf("cache:            %.1f%% hit (%d hits, %d misses, %d stale, %d evictions)\n",
		100*cs.HitRatio(), cs.Hits, cs.Misses, cs.StaleHits, cs.Evicted)
	if cs.PrefetchFills > 0 {
		fmt.Printf("prefetch:         %d fills, %.1f%% of lookups served prefetched (%d late, %d wasted, %d window-pin rejects)\n",
			cs.PrefetchFills, 100*cs.PrefetchHitRate(), cs.PrefetchLate, cs.PrefetchWasted, cs.WindowPinRejects)
	}
	if rs := res.Recovery; rs.FaultsInjected > 0 || rs.Degraded {
		fmt.Printf("faults:           %d injected (%d crashes, %d stalls detected, %d host-write retries)\n",
			rs.FaultsInjected, rs.FlusherCrashes, rs.StallsDetected, rs.HostWriteRetries)
		fmt.Printf("recovery:         %d respawns, %d entries redistributed\n",
			rs.FlusherRespawns, rs.Redistributed)
		if rs.Degraded {
			fmt.Printf("degraded:         write-through from step %d (gate watchdog)\n", rs.DegradedStep)
		}
	}
}

// reportObs prints the observability-layer breakdown after a -obs run.
func reportObs(s frugal.Snapshot) {
	fmt.Println("-- observability --")
	fmt.Printf("gate:             %d passes, %d blocked (stall mean %v)\n",
		s.GatePasses, s.GateBlocks, s.GateStall.Mean())
	fmt.Printf("flush:            %d updates in %d g-entries (%d deferred, latency mean %v)\n",
		s.FlushApplied, s.FlushedEntries, s.DeferredEntries, s.FlushLatency.Mean())
	fmt.Printf("pq ops:           %d enqueue, %d dequeue, %d adjust, %d stale-pop\n",
		s.PQEnqueues, s.PQDequeues, s.PQAdjusts, s.PQStalePops)
	fmt.Printf("step wall mean:   %v over %d steps\n", s.StepWall.Mean(), s.StepsCompleted)
	if s.TierPromotions+s.TierDemotions+s.TierColdWrites > 0 {
		fmt.Printf("tier:             %d promotions, %d demotions (%d declined), %d cold writes, %d dequant reads\n",
			s.TierPromotions, s.TierDemotions, s.TierDeclined, s.TierColdWrites, s.TierDequantReads)
	}
	fmt.Printf("trace:            %d events (%d overwritten)\n", s.TraceEvents, s.TraceDropped)
}
