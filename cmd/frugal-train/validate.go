package main

import (
	"fmt"
	"time"

	"frugal"
)

// options are the flag values vetted before any training work starts.
type options struct {
	Engine        string
	GPUs          int
	Steps         int64
	Micro         bool
	Replay        string
	Stream        bool
	StreamRate    float64
	StreamLog     string
	Duration      time.Duration
	FaultPlan     string
	GateTimeout   time.Duration
	MaxRespawns   int
	Prefetch      bool
	PrefetchDepth int
	ColdTier      bool
	HotFraction   float64
}

// validate rejects invalid flag combinations up front with a usage error —
// a bad plan spec, or fault machinery requested on an engine that does not
// have it — instead of letting the run silently no-op or fail midway. It
// returns the parsed fault plan (empty for an empty -fault-plan).
func validate(o options) (frugal.FaultPlan, error) {
	engine := frugal.Engine(o.Engine)
	switch engine {
	case frugal.EngineFrugal, frugal.EngineFrugalSync, frugal.EngineDirect:
	default:
		return frugal.FaultPlan{}, fmt.Errorf("unknown engine %q (want frugal, frugal-sync or direct)", o.Engine)
	}
	if o.GPUs < 1 {
		return frugal.FaultPlan{}, fmt.Errorf("-gpus must be at least 1 (got %d)", o.GPUs)
	}
	if o.Steps < 1 {
		return frugal.FaultPlan{}, fmt.Errorf("-steps must be at least 1 (got %d)", o.Steps)
	}
	if o.Micro && o.Replay != "" {
		return frugal.FaultPlan{}, fmt.Errorf("-micro and -replay are mutually exclusive")
	}
	if o.Stream && (o.Micro || o.Replay != "") {
		return frugal.FaultPlan{}, fmt.Errorf("-stream is mutually exclusive with -micro and -replay")
	}
	if o.Stream && engine != frugal.EngineFrugal {
		return frugal.FaultPlan{}, fmt.Errorf("-stream requires -engine frugal (the delta log rides the P²F flush stream)")
	}
	if !o.Stream {
		if o.StreamRate != 0 {
			return frugal.FaultPlan{}, fmt.Errorf("-stream-rate requires -stream")
		}
		if o.StreamLog != "" {
			return frugal.FaultPlan{}, fmt.Errorf("-stream-log requires -stream")
		}
		if o.Duration != 0 {
			return frugal.FaultPlan{}, fmt.Errorf("-duration requires -stream (bounded runs use -steps)")
		}
	}
	if o.StreamRate < 0 {
		return frugal.FaultPlan{}, fmt.Errorf("-stream-rate must be ≥ 0 (got %g)", o.StreamRate)
	}
	if o.Duration < 0 {
		return frugal.FaultPlan{}, fmt.Errorf("-duration must be ≥ 0 (got %v)", o.Duration)
	}
	if o.Prefetch && engine == frugal.EngineDirect {
		return frugal.FaultPlan{}, fmt.Errorf("-prefetch requires a cached engine (direct has no cache to fill)")
	}
	if o.PrefetchDepth < 0 {
		return frugal.FaultPlan{}, fmt.Errorf("-prefetch-depth must be positive (got %d)", o.PrefetchDepth)
	}
	if o.PrefetchDepth > 0 && !o.Prefetch {
		return frugal.FaultPlan{}, fmt.Errorf("-prefetch-depth requires -prefetch")
	}
	if o.HotFraction != 0 && !o.ColdTier {
		return frugal.FaultPlan{}, fmt.Errorf("-hot-fraction requires -cold-tier")
	}
	if o.ColdTier && (o.HotFraction < 0 || o.HotFraction > 1) {
		return frugal.FaultPlan{}, fmt.Errorf("-hot-fraction must be in (0, 1] (got %g)", o.HotFraction)
	}
	plan, err := frugal.ParseFaultPlan(o.FaultPlan)
	if err != nil {
		return frugal.FaultPlan{}, fmt.Errorf("-fault-plan: %w", err)
	}
	if engine != frugal.EngineFrugal {
		if o.GateTimeout != 0 {
			return frugal.FaultPlan{}, fmt.Errorf("-gate-timeout requires -engine frugal (%s has no consistency gate)", engine)
		}
		if o.MaxRespawns != 0 {
			return frugal.FaultPlan{}, fmt.Errorf("-max-respawns requires -engine frugal (%s has no flusher pool)", engine)
		}
		for _, e := range plan.Events {
			if e.Kind == frugal.FaultFlusherCrash || e.Kind == frugal.FaultFlusherStall {
				return frugal.FaultPlan{}, fmt.Errorf(
					"-fault-plan clause %q requires -engine frugal (%s has no flusher pool)", e, engine)
			}
		}
	}
	return plan, nil
}
