package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// good returns a valid flag set; tests break one field at a time.
func good() options {
	return options{
		Addr: ":8080", Checkpoint: "x.ckpt", Level: "stale", MaxTopK: 128,
		Workers: 4, Zipf: 0.9, TopKFrac: 0.05, K: 10,
		statFile: func(string) error { return nil },
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []func(*options){
		func(o *options) {},
		func(o *options) { o.Level = "fresh" },
		func(o *options) { o.Level = "bounded" },
		func(o *options) { o.Level = "bounded(3)" },
		func(o *options) { o.LoadGen = time.Second },
		func(o *options) { o.LoadGen = time.Second; o.Addr = "" },
		func(o *options) { o.MaxInflight = 0 }, // 0 = admission control off
		func(o *options) { o.MaxInflight = 8 },
		func(o *options) { o.RequestTimeout = 2 * time.Second; o.Drain = 5 * time.Second },
		func(o *options) { o.LoadGen = time.Second; o.Rate = 5000 },
		func(o *options) { o.Index = "ivf" },
		func(o *options) { o.Index = "ivf"; o.Centroids = 512; o.NProbe = 8 },
		func(o *options) { o.Index = "flat" },
		func(o *options) { o.Checkpoint = ""; o.Shards = "127.0.0.1:7101,127.0.0.1:7102" },
		func(o *options) { o.Checkpoint = ""; o.Shards = "h:1"; o.LoadGen = time.Second },
	}
	for i, mod := range cases {
		o := good()
		mod(&o)
		if _, _, err := validate(o); err != nil {
			t.Errorf("case %d: unexpected error: %v", i, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*options)
		want string
	}{
		{"bad level", func(o *options) { o.Level = "eventual" }, "-level"},
		{"negative bound", func(o *options) { o.Level = "bounded(-1)" }, "-level"},
		{"garbage bound", func(o *options) { o.Level = "bounded(x)" }, "-level"},
		{"no checkpoint", func(o *options) { o.Checkpoint = "" }, "-checkpoint"},
		{"checkpoint and shards", func(o *options) { o.Shards = "h:1" }, "mutually exclusive"},
		{"blank shards list", func(o *options) { o.Checkpoint = ""; o.Shards = " , " }, "-shards"},
		{"ivf over shards", func(o *options) { o.Checkpoint = ""; o.Shards = "h:1"; o.Index = "ivf" }, "-index=ivf"},
		{"stat failure", func(o *options) { o.statFile = func(string) error { return os.ErrNotExist } }, "-checkpoint"},
		{"bad max-topk", func(o *options) { o.MaxTopK = 0 }, "-max-topk"},
		{"negative loadgen", func(o *options) { o.LoadGen = -time.Second }, "-loadgen"},
		{"no addr no loadgen", func(o *options) { o.Addr = "" }, "-addr"},
		{"bad workers", func(o *options) { o.LoadGen = time.Second; o.Workers = 0 }, "-workers"},
		{"bad zipf", func(o *options) { o.LoadGen = time.Second; o.Zipf = 1.5 }, "-zipf"},
		{"bad topk-frac", func(o *options) { o.LoadGen = time.Second; o.TopKFrac = 2 }, "-topk-frac"},
		{"k over max", func(o *options) { o.LoadGen = time.Second; o.K = 500 }, "-k"},
		{"negative max-inflight", func(o *options) { o.MaxInflight = -1 }, "-max-inflight"},
		{"max-inflight under topk weight", func(o *options) { o.MaxInflight = 4 }, "-max-inflight"},
		{"negative request-timeout", func(o *options) { o.RequestTimeout = -time.Second }, "-request-timeout"},
		{"negative drain", func(o *options) { o.Drain = -time.Second }, "-drain"},
		{"negative rate", func(o *options) { o.LoadGen = time.Second; o.Rate = -1 }, "-rate"},
		{"rate without loadgen", func(o *options) { o.Rate = 100 }, "-rate"},
		{"bad index", func(o *options) { o.Index = "hnsw" }, "-index"},
		{"negative centroids", func(o *options) { o.Index = "ivf"; o.Centroids = -1 }, "-centroids"},
		{"negative nprobe", func(o *options) { o.Index = "ivf"; o.NProbe = -1 }, "-nprobe"},
		{"centroids without ivf", func(o *options) { o.Centroids = 64 }, "-index=ivf"},
		{"nprobe without ivf", func(o *options) { o.Index = "flat"; o.NProbe = 4 }, "-index=ivf"},
	}
	for _, tc := range cases {
		o := good()
		tc.mod(&o)
		_, _, err := validate(o)
		if err == nil {
			t.Errorf("%s: validate accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateMissingCheckpoint uses the real os.Stat path: a file that
// exists passes, one that does not is rejected before anything is opened.
func TestValidateMissingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	present := filepath.Join(dir, "ok.ckpt")
	if err := os.WriteFile(present, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := good()
	o.statFile = nil
	o.Checkpoint = present
	if _, _, err := validate(o); err != nil {
		t.Fatalf("existing checkpoint rejected: %v", err)
	}
	o.Checkpoint = filepath.Join(dir, "absent.ckpt")
	if _, _, err := validate(o); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestValidateLevelValue(t *testing.T) {
	o := good()
	o.Level = "bounded(7)"
	lvl, _, err := validate(o)
	if err != nil {
		t.Fatal(err)
	}
	if lvl.String() != "bounded(7)" {
		t.Fatalf("level = %s, want bounded(7)", lvl)
	}
}
