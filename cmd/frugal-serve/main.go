// Command frugal-serve answers embedding lookups and top-K similarity
// queries over HTTP from a checkpoint trained by frugal-train — the
// host-memory slab as a serving store (§3's freshest-copy property, put
// to work).
//
// Usage:
//
//	frugal-train -micro -steps 200 -checkpoint-out demo.ckpt
//	frugal-serve -checkpoint demo.ckpt -addr :8080
//	curl 'localhost:8080/lookup?key=42&level=bounded(2)'
//	curl 'localhost:8080/topk?q=0.1,0.2,0.3&k=5'
//
// With -loadgen it runs the closed-loop load generator against the
// checkpoint instead and prints a latency report (`make serve-demo`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"frugal"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		checkpoint  = flag.String("checkpoint", "", "checkpoint to serve (from frugal-train -checkpoint-out)")
		level       = flag.String("level", "stale", "default consistency level: stale, bounded(k), fresh")
		rejectStale = flag.Bool("reject-stale", false, "refuse bounded lookups over the bound instead of force-flushing")
		maxTopK     = flag.Int("max-topk", 128, "largest accepted top-K query size")
		loadGen     = flag.Duration("loadgen", 0, "run the closed-loop load generator for this long and exit (0 = serve HTTP)")
		workers     = flag.Int("workers", 4, "load-generator closed-loop workers")
		zipf        = flag.Float64("zipf", 0.9, "load-generator Zipf key-skew exponent θ")
		topkFrac    = flag.Float64("topk-frac", 0.05, "load-generator fraction of top-K queries")
		k           = flag.Int("k", 10, "load-generator top-K size")
		seed        = flag.Int64("seed", 1, "load-generator random seed")
		jsonOut     = flag.Bool("json", false, "emit the load-generator report as JSON")
	)
	flag.Parse()

	lvl, err := validate(options{
		Addr: *addr, Checkpoint: *checkpoint, Level: *level, MaxTopK: *maxTopK,
		LoadGen: *loadGen, Workers: *workers, Zipf: *zipf, TopKFrac: *topkFrac, K: *k,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frugal-serve:", err)
		flag.Usage()
		return 2
	}

	f, err := os.Open(*checkpoint)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv, err := frugal.NewServerFromCheckpoint(f, frugal.ServeOptions{
		Level: lvl, RejectStale: *rejectStale, MaxTopK: *maxTopK,
	})
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *loadGen > 0 {
		rep, err := srv.RunLoadGen(frugal.LoadGenOptions{
			Workers: *workers, Duration: *loadGen, Zipf: *zipf,
			TopKFraction: *topkFrac, K: *k, Level: lvl, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		}
		report(rep)
		return 0
	}

	fmt.Printf("serving %d rows × dim %d at %s (level %s)\n", srv.Rows(), srv.Dim(), *addr, lvl)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func report(rep frugal.LoadGenReport) {
	fmt.Printf("level:            %s\n", rep.Level)
	fmt.Printf("workers:          %d\n", rep.Workers)
	fmt.Printf("elapsed:          %v\n", rep.Elapsed)
	fmt.Printf("throughput:       %.0f queries/s\n", rep.QPS)
	fmt.Printf("lookups:          %d (mean %v)\n", rep.Lookups, rep.LookupLatency.Mean())
	fmt.Printf("topk queries:     %d (mean %v)\n", rep.TopKs, rep.TopKLatency.Mean())
	if rep.Rejected > 0 {
		fmt.Printf("rejected:         %d (staleness bound)\n", rep.Rejected)
	}
	if rep.Errors > 0 {
		fmt.Printf("errors:           %d\n", rep.Errors)
	}
}
