// Command frugal-serve answers embedding lookups and top-K similarity
// queries over HTTP from a checkpoint trained by frugal-train — the
// host-memory slab as a serving store (§3's freshest-copy property, put
// to work).
//
// Usage:
//
//	frugal-train -micro -steps 200 -checkpoint-out demo.ckpt
//	frugal-serve -checkpoint demo.ckpt -addr :8080
//	curl 'localhost:8080/v1/lookup?key=42&level=bounded(2)'
//	curl 'localhost:8080/v1/topk?q=0.1,0.2,0.3&k=5'
//
// With -shards the server fronts a partitioned table instead of a local
// checkpoint: it dials the listed frugal-shard nodes (in -shard index
// order), fans each top-K out per shard, and composes bounded-staleness
// reads over the cross-shard minimum watermark:
//
//	frugal-serve -shards 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103
//
// With -index=ivf the server builds an inverted-file index at startup
// and answers top-K queries by scanning only the -nprobe nearest of
// -centroids partitions — sublinear in the row count; per-query
// overrides ride on the request (&index=flat, &nprobe=16).
//
// The server sheds load past -max-inflight (429 + Retry-After), bounds
// every request by -request-timeout, and drains connections for up to
// -drain on SIGINT/SIGTERM before exiting.
//
// With -loadgen it runs the load generator against the checkpoint
// instead and prints a latency report (`make serve-demo`) — closed-loop
// by default, open-loop at a fixed arrival rate with -rate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"frugal"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		checkpoint  = flag.String("checkpoint", "", "checkpoint to serve (from frugal-train -checkpoint-out)")
		shards      = flag.String("shards", "", "comma-separated frugal-shard addresses to serve from, in -shard index order (instead of -checkpoint)")
		follow      = flag.String("follow", "", "delta-checkpoint log directory to tail as a serve replica (from frugal-train -stream-log; instead of -checkpoint)")
		poll        = flag.Duration("poll", 0, "follower log-tail interval (0 = 50ms default; requires -follow)")
		promote     = flag.Duration("promote-after", 0, "self-promote once the log stops growing for this long (0 = never; requires -follow)")
		waitForLog  = flag.Duration("wait-for-log", 0, "keep retrying this long when the log directory has no base yet (requires -follow)")
		level       = flag.String("level", "stale", "default consistency level: stale, bounded(k), fresh")
		rejectStale = flag.Bool("reject-stale", false, "refuse bounded lookups over the bound instead of force-flushing")
		maxTopK     = flag.Int("max-topk", 128, "largest accepted top-K query size")
		maxInflight = flag.Int("max-inflight", 256, "admission-control capacity in lookup units (0 = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", 2*time.Second, "per-request deadline (0 = none)")
		drain       = flag.Duration("drain", 5*time.Second, "connection-drain budget on shutdown")
		loadGen     = flag.Duration("loadgen", 0, "run the load generator for this long and exit (0 = serve HTTP)")
		rate        = flag.Float64("rate", 0, "load-generator open-loop arrival rate, queries/s (0 = closed loop)")
		workers     = flag.Int("workers", 4, "load-generator workers")
		zipf        = flag.Float64("zipf", 0.9, "load-generator Zipf key-skew exponent θ")
		topkFrac    = flag.Float64("topk-frac", 0.05, "load-generator fraction of top-K queries")
		k           = flag.Int("k", 10, "load-generator top-K size")
		seed        = flag.Int64("seed", 1, "load-generator random seed")
		jsonOut     = flag.Bool("json", false, "emit the load-generator report as JSON")
		index       = flag.String("index", "flat", "top-K scan strategy: flat (exhaustive) or ivf (sublinear inverted file)")
		centroids   = flag.Int("centroids", 0, "IVF partition count (0 = default, about 4 times the square root of the row count)")
		nprobe      = flag.Int("nprobe", 0, "IVF partitions scanned per query (0 = default 8)")
		coldTier    = flag.Bool("cold-tier", false,
			"serve the checkpoint from a tiered slab: hot f32 head + quantized int8 cold tail (requires -checkpoint)")
		hotFraction = flag.Float64("hot-fraction", 0,
			"tiered hot-head size as a fraction of the table, in (0, 1] (default 0.1; requires -cold-tier)")
	)
	flag.Parse()

	lvl, kind, err := validate(options{
		Addr: *addr, Checkpoint: *checkpoint, Shards: *shards,
		Follow: *follow, Poll: *poll, PromoteAfter: *promote, WaitForLog: *waitForLog,
		Level: *level, MaxTopK: *maxTopK,
		MaxInflight: *maxInflight, RequestTimeout: *reqTimeout, Drain: *drain,
		LoadGen: *loadGen, Rate: *rate, Workers: *workers, Zipf: *zipf, TopKFrac: *topkFrac, K: *k,
		Index: *index, Centroids: *centroids, NProbe: *nprobe,
		ColdTier: *coldTier, HotFraction: *hotFraction,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frugal-serve:", err)
		flag.Usage()
		return 2
	}

	opt := frugal.ServeOptions{
		Level: lvl, RejectStale: *rejectStale, MaxTopK: *maxTopK,
		MaxInflight: *maxInflight, RequestTimeout: *reqTimeout,
		Index: kind, Centroids: *centroids, NProbe: *nprobe,
		ColdTier: *coldTier, HotFraction: *hotFraction,
	}
	var srv *frugal.Server
	var fsrv *frugal.FollowerServer
	role := "static"
	switch {
	case *shards != "":
		role = "sharded"
		srv, err = frugal.NewServerFromShards(splitAddrs(*shards), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
	case *follow != "":
		fsrv, err = frugal.NewServerFromLog(*follow, opt, frugal.FollowOptions{
			Poll: *poll, WaitForLog: *waitForLog, PromoteAfter: *promote,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		srv = fsrv.Server
		role = fsrv.Role()
		// Tail the log for the whole process lifetime, whichever mode runs.
		tailCtx, stopTail := context.WithCancel(context.Background())
		defer stopTail()
		go func() {
			if err := fsrv.Run(tailCtx); err != nil && tailCtx.Err() == nil {
				fmt.Fprintln(os.Stderr, "frugal-serve: log tail:", err)
			}
		}()
	default:
		f, err := os.Open(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		srv, err = frugal.NewServerFromCheckpoint(f, opt)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	// The resolved level and role are load-bearing operational facts —
	// log them up front in every mode.
	fmt.Printf("frugal-serve: level=%s role=%s rows=%d dim=%d\n", lvl, role, srv.Rows(), srv.Dim())

	if *loadGen > 0 {
		rep, err := srv.RunLoadGen(frugal.LoadGenOptions{
			Workers: *workers, Duration: *loadGen, Zipf: *zipf,
			TopKFraction: *topkFrac, K: *k, Level: lvl, Seed: *seed,
			ArrivalRate: *rate,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		}
		report(rep)
		return 0
	}

	hs, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("serving %d rows × dim %d at %s (level %s, index %s, max-inflight %d)\n",
		srv.Rows(), srv.Dim(), hs.Addr(), lvl, srv.Index(), *maxInflight)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve() }()
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Printf("shutting down, draining connections (up to %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "drain incomplete:", err)
		return 1
	}
	return 0
}

func report(rep frugal.LoadGenReport) {
	fmt.Printf("mode:             %s\n", rep.Mode)
	fmt.Printf("level:            %s\n", rep.Level)
	fmt.Printf("workers:          %d\n", rep.Workers)
	fmt.Printf("elapsed:          %v\n", rep.Elapsed)
	fmt.Printf("throughput:       %.0f queries/s\n", rep.QPS)
	fmt.Printf("lookups:          %d (mean %v, p99 %v)\n",
		rep.Lookups, rep.LookupLatency.Mean(), rep.LookupLatency.Quantile(0.99))
	fmt.Printf("topk queries:     %d (mean %v, p99 %v)\n",
		rep.TopKs, rep.TopKLatency.Mean(), rep.TopKLatency.Quantile(0.99))
	if rep.Mode == "open" {
		fmt.Printf("offered:          %d (dropped %d at the client queue)\n", rep.Offered, rep.Dropped)
	}
	if rep.Shed > 0 {
		fmt.Printf("shed:             %d (admission control)\n", rep.Shed)
	}
	if rep.Rejected > 0 {
		fmt.Printf("rejected:         %d (staleness bound)\n", rep.Rejected)
	}
	if rep.Errors > 0 {
		fmt.Printf("errors:           %d\n", rep.Errors)
	}
	if rep.Aborted {
		fmt.Printf("aborted:          run stopped on persistent errors: %s\n", rep.FirstError)
	}
}
