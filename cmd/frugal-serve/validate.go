package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"frugal"
)

// splitAddrs parses the -shards comma list, dropping blanks.
func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// options are the flag values vetted before any serving work starts.
type options struct {
	Addr           string
	Checkpoint     string
	Shards         string
	Follow         string
	Poll           time.Duration
	PromoteAfter   time.Duration
	WaitForLog     time.Duration
	Level          string
	MaxTopK        int
	MaxInflight    int
	RequestTimeout time.Duration
	Drain          time.Duration
	LoadGen        time.Duration
	Rate           float64
	Workers        int
	Zipf           float64
	TopKFrac       float64
	K              int
	Index          string
	Centroids      int
	NProbe         int
	ColdTier       bool
	HotFraction    float64
	statFile       func(string) error // test seam; nil = os.Stat
}

// validate rejects invalid flag combinations up front with a usage error —
// a bad consistency level, a negative staleness bound, a missing
// checkpoint — instead of failing after the slab is half-loaded or the
// load run has started. It returns the parsed default consistency level
// and top-K index kind.
func validate(o options) (frugal.ServeLevel, frugal.IndexKind, error) {
	fail := func(err error) (frugal.ServeLevel, frugal.IndexKind, error) {
		return frugal.ServeLevel{}, frugal.IndexAuto, err
	}
	lvl, err := frugal.ParseServeLevel(o.Level)
	if err != nil {
		return fail(fmt.Errorf("-level: %w", err))
	}
	kind, err := frugal.ParseIndexKind(o.Index)
	if err != nil {
		return fail(fmt.Errorf("-index: %w", err))
	}
	if o.Centroids < 0 {
		return fail(fmt.Errorf("-centroids must not be negative (got %d; 0 picks the default)", o.Centroids))
	}
	if o.NProbe < 0 {
		return fail(fmt.Errorf("-nprobe must not be negative (got %d; 0 picks the default)", o.NProbe))
	}
	if kind != frugal.IndexIVF && (o.Centroids > 0 || o.NProbe > 0) {
		return fail(fmt.Errorf("-centroids/-nprobe need -index=ivf (got -index=%s)", kind))
	}
	sources := 0
	for _, set := range []bool{o.Checkpoint != "", o.Shards != "", o.Follow != ""} {
		if set {
			sources++
		}
	}
	if sources == 0 {
		return fail(fmt.Errorf("-checkpoint, -shards or -follow is required (train a checkpoint with frugal-train -checkpoint-out, start frugal-shard nodes, or tail a -stream-log directory)"))
	}
	if sources > 1 {
		return fail(fmt.Errorf("-checkpoint, -shards and -follow are mutually exclusive (one slab per server)"))
	}
	if o.Follow == "" {
		if o.Poll != 0 {
			return fail(fmt.Errorf("-poll requires -follow"))
		}
		if o.PromoteAfter != 0 {
			return fail(fmt.Errorf("-promote-after requires -follow"))
		}
		if o.WaitForLog != 0 {
			return fail(fmt.Errorf("-wait-for-log requires -follow"))
		}
	} else {
		if o.Poll < 0 {
			return fail(fmt.Errorf("-poll must not be negative (got %v)", o.Poll))
		}
		if o.PromoteAfter < 0 {
			return fail(fmt.Errorf("-promote-after must not be negative (got %v; 0 never auto-promotes)", o.PromoteAfter))
		}
		if o.WaitForLog < 0 {
			return fail(fmt.Errorf("-wait-for-log must not be negative (got %v)", o.WaitForLog))
		}
		if kind == frugal.IndexIVF {
			return fail(fmt.Errorf("-index=ivf is not available on followers (the IVF repair feed is the primary's flush stream)"))
		}
	}
	if o.Shards != "" {
		if len(splitAddrs(o.Shards)) == 0 {
			return fail(fmt.Errorf("-shards lists no addresses (got %q)", o.Shards))
		}
		if kind == frugal.IndexIVF {
			return fail(fmt.Errorf("-index=ivf needs an in-process slab (-checkpoint); sharded servers scan per shard"))
		}
	}
	if o.HotFraction != 0 && !o.ColdTier {
		return fail(fmt.Errorf("-hot-fraction requires -cold-tier"))
	}
	if o.ColdTier {
		if o.Checkpoint == "" {
			return fail(fmt.Errorf("-cold-tier needs an in-process checkpoint slab (-checkpoint)"))
		}
		if o.HotFraction < 0 || o.HotFraction > 1 {
			return fail(fmt.Errorf("-hot-fraction must be in (0, 1] (got %g)", o.HotFraction))
		}
	}
	if o.Checkpoint != "" {
		stat := o.statFile
		if stat == nil {
			stat = func(path string) error {
				_, err := os.Stat(path)
				return err
			}
		}
		if err := stat(o.Checkpoint); err != nil {
			return fail(fmt.Errorf("-checkpoint: %w", err))
		}
	}
	if o.MaxTopK < 1 {
		return fail(fmt.Errorf("-max-topk must be at least 1 (got %d)", o.MaxTopK))
	}
	if o.MaxInflight < 0 {
		return fail(fmt.Errorf("-max-inflight must not be negative (got %d; 0 disables admission control)", o.MaxInflight))
	}
	if o.MaxInflight > 0 && o.MaxInflight < 8 {
		// The engine charges a top-K query 8 lookup units; a smaller pool
		// could never admit one.
		return fail(fmt.Errorf("-max-inflight must be 0 or at least 8 (got %d; a top-K query costs 8 units)", o.MaxInflight))
	}
	if o.RequestTimeout < 0 {
		return fail(fmt.Errorf("-request-timeout must not be negative (got %v)", o.RequestTimeout))
	}
	if o.Drain < 0 {
		return fail(fmt.Errorf("-drain must not be negative (got %v)", o.Drain))
	}
	if o.LoadGen < 0 {
		return fail(fmt.Errorf("-loadgen must not be negative (got %v)", o.LoadGen))
	}
	if o.Rate < 0 {
		return fail(fmt.Errorf("-rate must not be negative (got %v; 0 keeps the closed loop)", o.Rate))
	}
	if o.Rate > 0 && o.LoadGen == 0 {
		return fail(fmt.Errorf("-rate needs -loadgen (the open loop is a load-generator mode)"))
	}
	if o.LoadGen == 0 && o.Addr == "" {
		return fail(fmt.Errorf("-addr must not be empty without -loadgen (nothing to do)"))
	}
	if o.LoadGen > 0 {
		if o.Workers < 1 {
			return fail(fmt.Errorf("-workers must be at least 1 (got %d)", o.Workers))
		}
		if o.Zipf <= 0 || o.Zipf >= 1 {
			return fail(fmt.Errorf("-zipf must be in (0, 1) (got %v)", o.Zipf))
		}
		if o.TopKFrac < 0 || o.TopKFrac > 1 {
			return fail(fmt.Errorf("-topk-frac must be in [0, 1] (got %v)", o.TopKFrac))
		}
		if o.K < 1 || o.K > o.MaxTopK {
			return fail(fmt.Errorf("-k must be in [1, -max-topk] (got %d, max-topk %d)", o.K, o.MaxTopK))
		}
	}
	return lvl, kind, nil
}
