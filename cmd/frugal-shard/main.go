// Command frugal-shard runs one shard of a partitioned embedding table —
// a compact host-memory slab holding the rows its consistent-hash slot
// owns, fronted by this shard's own P²F flusher pool and committed-step
// watermark, exported over the length-prefixed binary wire protocol.
//
// Start one process per shard with matching -rows/-dim/-of and distinct
// -shard indices, then point a query tier at all of them:
//
//	frugal-shard -addr 127.0.0.1:7101 -rows 10000 -dim 32 -shard 0 -of 3 &
//	frugal-shard -addr 127.0.0.1:7102 -rows 10000 -dim 32 -shard 1 -of 3 &
//	frugal-shard -addr 127.0.0.1:7103 -rows 10000 -dim 32 -shard 2 -of 3 &
//	frugal-serve -shards 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103
//
// With -connect the binary is a driver instead of a node: it dials the
// listed shards, composes them behind the sharded store, and runs the
// synchronous gather→compute→scatter training loop against the composed
// table (`make shard-demo` wires both halves together). Scatters reach
// every shard each step — an empty scatter is the commit signal that
// keeps the cross-shard minimum watermark advancing — so bounded-
// staleness reads stay meaningful while training runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"frugal/internal/shard"
	"frugal/internal/store"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7101", "shard listen address (node mode)")
		rows     = flag.Int64("rows", 0, "GLOBAL table height (required in node mode)")
		dim      = flag.Int("dim", 0, "embedding dimension (required in node mode)")
		shardIdx = flag.Int("shard", 0, "this node's shard index in [0, -of)")
		of       = flag.Int("of", 1, "total shard count")
		flushers = flag.Int("flushers", 4, "P²F flusher-pool size")
		trainers = flag.Int("trainers", 1, "trainer clients per step (the watermark advances when all have committed)")
		maxStep  = flag.Int64("max-step", 1<<16, "largest accepted step number (sizes the priority queue)")
		uncoord  = flag.Bool("uncoordinated", false, "skip the P²F gate: write-through scatters, no watermark (required for training slabs)")
		seed     = flag.Int64("seed", 1, "row-initialisation seed (keyed per global row, identical across shards)")
		connect  = flag.String("connect", "", "driver mode: comma-separated shard addresses to train against")
		steps    = flag.Int64("steps", 200, "driver mode: training steps")
		batch    = flag.Int("batch", 0, "driver mode: keys per step (0 = full table sweep)")
		lr       = flag.Float64("lr", 0.05, "driver mode: learning rate")
		report   = flag.Duration("report", time.Second, "driver mode: progress-report interval (0 = silent)")
	)
	flag.Parse()

	o := options{
		Addr: *addr, Rows: *rows, Dim: *dim, Shard: *shardIdx, Of: *of,
		Flushers: *flushers, Trainers: *trainers, MaxStep: *maxStep,
		Connect: *connect, Steps: *steps, Batch: *batch, LR: *lr,
	}
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "frugal-shard:", err)
		flag.Usage()
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *connect != "" {
		return runDriver(ctx, splitAddrs(*connect), *steps, *batch, float32(*lr), uint64(*seed), *report)
	}
	return runNode(ctx, o, *uncoord, *seed)
}

// runNode builds the shard node and serves it until a signal arrives.
func runNode(ctx context.Context, o options, uncoordinated bool, seed int64) int {
	node, err := shard.NewNode(shard.NodeOptions{
		Rows: o.Rows, Dim: o.Dim, Shard: o.Shard, Of: o.Of,
		Flushers: o.Flushers, Trainers: o.Trainers, MaxStep: o.MaxStep,
		Uncoordinated: uncoordinated,
		Init:          rowInit(seed, o.Dim),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer node.Close()
	srv, err := shard.NewServer(o.Addr, node)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer srv.Close()
	mode := "coordinated"
	if uncoordinated {
		mode = "uncoordinated"
	}
	fmt.Printf("shard %d/%d at %s: %d of %d rows × dim %d (%s, %d flushers, %d trainers)\n",
		o.Shard, o.Of, srv.Addr(), node.KeyMap().Owned(), o.Rows, o.Dim, mode, o.Flushers, o.Trainers)
	<-ctx.Done()
	fmt.Println("shutting down")
	return 0
}

// runDriver dials the shards and runs the store-level training loop.
func runDriver(ctx context.Context, addrs []string, steps int64, batch int, lr float32, seed uint64, report time.Duration) int {
	shards := make([]store.Store, 0, len(addrs))
	defer func() {
		for _, s := range shards {
			s.Close()
		}
	}()
	for i, a := range addrs {
		rs, err := shard.Dial(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard %d (%s): %v\n", i, a, err)
			return 1
		}
		if got, total := rs.Shard(); got != i || total != len(addrs) {
			rs.Close()
			fmt.Fprintf(os.Stderr, "shard at %s reports position %d/%d, want %d/%d\n", a, got, total, i, len(addrs))
			return 1
		}
		shards = append(shards, rs)
	}
	st, err := store.NewSharded(shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	shards = nil // st owns them now
	defer st.Close()

	fmt.Printf("training %d rows × dim %d across %d shards: %d steps, batch %d, lr %g\n",
		st.Rows(), st.Dim(), st.NumShards(), steps, batch, lr)
	start := time.Now()
	last := start
	err = store.RunTrainer(ctx, st, store.TrainerConfig{
		Steps: steps, BatchSize: batch, LR: lr, Seed: seed,
		OnStep: func(step int64) {
			if report <= 0 || time.Since(last) < report {
				return
			}
			last = time.Now()
			fmt.Printf("  step %d/%d, watermark %d, %.0f steps/s\n",
				step+1, steps, st.Watermark(), float64(step+1)/time.Since(start).Seconds())
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	elapsed := time.Since(start)
	fmt.Printf("done: %d steps in %v (%.0f steps/s), final watermark %d\n",
		steps, elapsed.Round(time.Millisecond), float64(steps)/elapsed.Seconds(), st.Watermark())
	return 0
}

// rowInit returns the deterministic per-global-key initialiser: the
// standard 1/√dim uniform bound, drawn from a splitmix stream keyed on
// (seed, key) so every shard of one table — whatever its -of — fills its
// owned rows with identical values.
func rowInit(seed int64, dim int) func(key uint64, row []float32) {
	bound := float32(1 / math.Sqrt(float64(dim)))
	return func(key uint64, row []float32) {
		h := uint64(seed)*0x9e3779b97f4a7c15 + key*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
		for j := range row {
			h ^= h >> 30
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
			h *= 0x94d049bb133111eb
			h ^= h >> 31
			// Map to [-bound, bound).
			row[j] = bound * float32(int64(h%(1<<20))-(1<<19)) / (1 << 19)
		}
	}
}

// splitAddrs parses the -connect / -shards comma list.
func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
