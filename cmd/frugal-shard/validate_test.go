package main

import (
	"strings"
	"testing"
)

func nodeOpts() options {
	return options{
		Addr: "127.0.0.1:7101", Rows: 1000, Dim: 16, Shard: 0, Of: 3,
		Flushers: 4, Trainers: 1, MaxStep: 1 << 16,
	}
}

func TestValidateNodeMode(t *testing.T) {
	if err := nodeOpts().validate(); err != nil {
		t.Fatalf("valid node options rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"empty addr", func(o *options) { o.Addr = " " }, "-addr"},
		{"missing rows", func(o *options) { o.Rows = 0 }, "-rows"},
		{"missing dim", func(o *options) { o.Dim = 0 }, "-rows"},
		{"zero of", func(o *options) { o.Of = 0 }, "-of"},
		{"shard out of range", func(o *options) { o.Shard = 3 }, "-shard"},
		{"negative shard", func(o *options) { o.Shard = -1 }, "-shard"},
		{"zero flushers", func(o *options) { o.Flushers = 0 }, "-flushers"},
		{"zero trainers", func(o *options) { o.Trainers = 0 }, "-trainers"},
		{"zero max-step", func(o *options) { o.MaxStep = 0 }, "-max-step"},
	}
	for _, tc := range cases {
		o := nodeOpts()
		tc.mut(&o)
		err := o.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
}

func TestValidateDriverMode(t *testing.T) {
	good := options{Connect: "127.0.0.1:7101, 127.0.0.1:7102", Steps: 100, LR: 0.05}
	if err := good.validate(); err != nil {
		t.Fatalf("valid driver options rejected: %v", err)
	}
	// Driver mode ignores the node-shape flags entirely.
	ignored := good
	ignored.Rows, ignored.Dim, ignored.Of = 0, 0, 0
	if err := ignored.validate(); err != nil {
		t.Fatalf("driver mode should ignore node flags: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"blank connect list", func(o *options) { o.Connect = " , " }, "-connect"},
		{"zero steps", func(o *options) { o.Steps = 0 }, "-steps"},
		{"negative batch", func(o *options) { o.Batch = -1 }, "-batch"},
		{"zero lr", func(o *options) { o.LR = 0 }, "-lr"},
	}
	for _, tc := range cases {
		o := good
		tc.mut(&o)
		err := o.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("splitAddrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitAddrs = %v, want %v", got, want)
		}
	}
}
