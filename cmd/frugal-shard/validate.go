package main

import (
	"fmt"
	"strings"
)

// options are the flag values vetted before the node binds its listener
// or the driver dials anything.
type options struct {
	Addr     string
	Rows     int64
	Dim      int
	Shard    int
	Of       int
	Flushers int
	Trainers int
	MaxStep  int64
	Connect  string
	Steps    int64
	Batch    int
	LR       float64
}

// validate rejects invalid flag combinations up front with a usage
// error. Node mode needs a shape and a coherent topology slot; driver
// mode needs addresses and a positive step budget.
func (o options) validate() error {
	if o.Connect != "" {
		if len(splitAddrs(o.Connect)) == 0 {
			return fmt.Errorf("-connect lists no addresses (got %q)", o.Connect)
		}
		if o.Steps <= 0 {
			return fmt.Errorf("-steps must be positive (got %d)", o.Steps)
		}
		if o.Batch < 0 {
			return fmt.Errorf("-batch must not be negative (got %d; 0 sweeps the full table)", o.Batch)
		}
		if o.LR <= 0 {
			return fmt.Errorf("-lr must be positive (got %g)", o.LR)
		}
		return nil
	}
	if strings.TrimSpace(o.Addr) == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if o.Rows <= 0 || o.Dim <= 0 {
		return fmt.Errorf("-rows and -dim are required in node mode (got %d, %d)", o.Rows, o.Dim)
	}
	if o.Of <= 0 {
		return fmt.Errorf("-of must be positive (got %d)", o.Of)
	}
	if o.Shard < 0 || o.Shard >= o.Of {
		return fmt.Errorf("-shard must be in [0, %d) (got %d)", o.Of, o.Shard)
	}
	if o.Flushers <= 0 {
		return fmt.Errorf("-flushers must be positive (got %d)", o.Flushers)
	}
	if o.Trainers <= 0 {
		return fmt.Errorf("-trainers must be positive (got %d)", o.Trainers)
	}
	if o.MaxStep <= 0 {
		return fmt.Errorf("-max-step must be positive (got %d)", o.MaxStep)
	}
	return nil
}
