// Command frugal-bench regenerates the paper's evaluation: every table
// and figure, rendered as text tables with the paper's expected bands
// annotated. It also maintains the repo's perf baseline (-perf).
//
// Usage:
//
//	frugal-bench                 # run everything at full sweep resolution
//	frugal-bench -quick          # faster, coarser sweeps
//	frugal-bench -exp exp1       # one experiment
//	frugal-bench -list           # list experiment ids
//
//	frugal-bench -perf -perf-out BENCH_baseline.json
//	    # run the wall-clock benchmark suite (kernels, step loop, PQ) and
//	    # write the JSON baseline
//	frugal-bench -perf -quick -perf-against BENCH_baseline.json
//	    # re-run and diff: exits 1 on an allocs/op regression (ns/op is
//	    # advisory — CI machines vary)
//
// -cpuprofile/-memprofile write pprof profiles of whatever mode ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"

	"frugal"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		exp         = flag.String("exp", "all", "experiment id (table1, table2, fig3a-c, exp1-11, or 'all')")
		quick       = flag.Bool("quick", false, "coarser sweeps and fewer simulated steps; with -perf, shorter measurement windows")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		perf        = flag.Bool("perf", false, "run the perf-baseline benchmark suite instead of the paper experiments")
		perfOut     = flag.String("perf-out", "", "write the perf report JSON to this file (default stdout)")
		perfAgainst = flag.String("perf-against", "", "compare the perf run against this baseline JSON; exit 1 on allocs/op regression")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	switch {
	case *list:
		for _, e := range frugal.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *perf:
		return runPerf(*quick, *perfOut, *perfAgainst)
	case *exp == "all":
		frugal.RunAllExperiments(os.Stdout, *quick)
	default:
		if err := frugal.RunExperiment(os.Stdout, *exp, *quick); err != nil {
			return fail(err)
		}
	}
	return 0
}

func runPerf(quick bool, out, against string) int {
	rep := frugal.RunPerfSuite(quick)
	rep.GitSHA = gitSHA()

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := frugal.WritePerfReport(w, rep); err != nil {
		return fail(err)
	}

	if against == "" {
		return 0
	}
	bf, err := os.Open(against)
	if err != nil {
		return fail(err)
	}
	baseline, err := frugal.ReadPerfReport(bf)
	bf.Close()
	if err != nil {
		return fail(fmt.Errorf("parsing %s: %w", against, err))
	}
	failures, notes := frugal.ComparePerfReports(rep, baseline)
	for _, n := range notes {
		fmt.Fprintln(os.Stderr, "note:", n)
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "PERF REGRESSION vs", against)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  FAIL:", f)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "perf: no allocs/op regressions vs %s (%d benchmarks)\n",
		against, len(rep.Benchmarks))
	return 0
}

// gitSHA best-effort resolves the working tree's commit for the report.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC() // materialise the steady-state live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}
