// Command frugal-bench regenerates the paper's evaluation: every table
// and figure, rendered as text tables with the paper's expected bands
// annotated.
//
// Usage:
//
//	frugal-bench                 # run everything at full sweep resolution
//	frugal-bench -quick          # faster, coarser sweeps
//	frugal-bench -exp exp1       # one experiment
//	frugal-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"frugal"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (table1, table2, fig3a-c, exp1-11, or 'all')")
		quick = flag.Bool("quick", false, "coarser sweeps and fewer simulated steps")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range frugal.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "all" {
		frugal.RunAllExperiments(os.Stdout, *quick)
		return
	}
	if err := frugal.RunExperiment(os.Stdout, *exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
