package frugal

import (
	"context"
	"fmt"
	"time"

	"frugal/internal/ckpt"
	"frugal/internal/data"
	"frugal/internal/p2f"
	"frugal/internal/runtime"
	"frugal/internal/stream"
)

// StreamOptions configures continuous online training (NewStreamJob and
// the Streaming workload): an unbounded, rate-paced event source drives
// the ordinary step loop, and — when LogDir is set — a delta-checkpoint
// log is cut continuously off the P²F flush stream, with no
// stop-the-world pause, for incremental recovery and serve followers
// (frugal-serve -follow).
type StreamOptions struct {
	// Rate is the event arrival rate per second. The arrival process is
	// open-loop: events accumulate at this rate regardless of how fast
	// the trainer consumes them. ≤ 0 removes the pacing (train at full
	// speed — tests, benchmarks, backfill).
	Rate float64
	// Batch is the events per global training step (default 256).
	Batch int
	// KeySpace is the number of distinct keys (default 100 000).
	KeySpace uint64
	// Distribution draws event keys: uniform, zipf-0.9 or zipf-0.99
	// (default zipf-0.9).
	Distribution string
	// Dim is the embedding dimension (default 32).
	Dim int
	// Horizon caps the stream's length in steps (default 1<<20). The P²F
	// priority queue is sized for the step horizon up front, so a
	// continuous job runs in bounded horizons; restart the job to renew.
	Horizon int64

	// LogDir, when set, enables the delta-checkpoint log: an empty (or
	// missing) directory that receives the initial base checkpoint,
	// watermark-tagged delta segments, and periodic compactions.
	LogDir string
	// SweepInterval is the delta-log sweep cadence (default 50ms) — the
	// follower's steady-state replication lag.
	SweepInterval time.Duration
	// SweepRecords triggers an early sweep at this many dirty keys
	// (default 8192).
	SweepRecords int
	// CompactEvery folds the log into a fresh base after this many
	// sealed segments (default 16; negative disables compaction).
	CompactEvery int
}

func (o *StreamOptions) normalize() {
	if o.Batch <= 0 {
		o.Batch = 256
	}
	if o.KeySpace == 0 {
		o.KeySpace = 100_000
	}
	if o.Distribution == "" {
		o.Distribution = string(data.DistZipf09)
	}
	if o.Dim <= 0 {
		o.Dim = 32
	}
	if o.Horizon <= 0 {
		o.Horizon = 1 << 20
	}
	switch {
	case o.CompactEvery == 0:
		o.CompactEvery = 16
	case o.CompactEvery < 0:
		o.CompactEvery = 0 // the ckpt layer's "disabled"
	}
}

// DeltaLogStats is the delta-checkpoint log's accounting (segments
// sealed, row images logged, compactions folded, current base, dirty
// depth).
type DeltaLogStats = ckpt.WriterStats

// StreamJob is a continuous online-training run: training, incremental
// checkpointing and serving happen at once, with no phase split. Build
// it with NewStreamJob; end it by canceling Run's context (or letting
// the horizon run out) — the job then winds down through the normal
// epilogue, draining every committed update to host memory and sealing
// the log's final segment, so the log reconstructs the exact final
// state.
type StreamJob struct {
	job *runtime.Job
	src *stream.Source
	w   *ckpt.Writer // nil without LogDir
}

// NewStreamJob builds a continuous training job over a rate-paced event
// source. It requires EngineFrugal (the delta log rides the P²F flush
// stream) and the job's own host slab (no Config.Slab override).
func NewStreamJob(cfg Config, opt StreamOptions) (*StreamJob, error) {
	if cfg.Engine == "" {
		cfg.Engine = EngineFrugal // the Config default
	}
	if cfg.Engine != EngineFrugal {
		return nil, fmt.Errorf("frugal: streaming requires EngineFrugal (the delta log rides the P²F flush stream)")
	}
	if cfg.Slab != nil {
		return nil, fmt.Errorf("frugal: streaming requires the job's own host slab (Config.Slab is set)")
	}
	opt.normalize()
	src, err := stream.New(stream.Options{
		Rate:         opt.Rate,
		Batch:        opt.Batch,
		Keys:         opt.KeySpace,
		Distribution: data.Distribution(opt.Distribution),
		Seed:         cfg.Seed + 1,
		Horizon:      opt.Horizon,
	})
	if err != nil {
		return nil, err
	}
	rc := cfg.runtimeConfig()
	rc.Rows = int64(opt.KeySpace)
	rc.Dim = opt.Dim
	job, err := runtime.NewMicro(rc, src, opt.Horizon)
	if err != nil {
		return nil, err
	}
	s := &StreamJob{job: job, src: src}
	if opt.LogDir != "" {
		w, err := ckpt.NewWriter(job.Host(), job.Controller(), ckpt.Options{
			Dir:           opt.LogDir,
			SweepInterval: opt.SweepInterval,
			SweepRecords:  opt.SweepRecords,
			CompactEvery:  opt.CompactEvery,
		})
		if err != nil {
			return nil, err
		}
		// Every flush path — flusher pool, force-flush, degraded commits —
		// feeds the log.
		job.Controller().AddFlushHook(w.OnFlush)
		s.w = w
	}
	return s, nil
}

// Run trains until ctx is done or the horizon runs out. Cancellation is
// graceful — it closes the event source, so the job finishes in-flight
// steps, drains every committed update to host memory, seals the log's
// final segment, and returns the Result normally (not ErrCanceled).
func (s *StreamJob) Run(ctx context.Context) (Result, error) {
	watcherDone := make(chan struct{})
	runDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			s.src.Close()
		case <-runDone:
		}
	}()
	res, err := s.job.Run()
	close(runDone)
	<-watcherDone
	if s.w != nil {
		// The epilogue has drained: the writer's final sweep captures the
		// exact final state before the sweeper stops.
		if cerr := s.w.Close(); err == nil {
			err = cerr
		}
	}
	return res, err
}

// Stop ends the stream without canceling a context: the next batch
// request returns end-of-stream and Run winds down gracefully.
// Idempotent, safe from any goroutine.
func (s *StreamJob) Stop() { s.src.Close() }

// Host exposes the live slab (serve an Engine over it while training).
func (s *StreamJob) Host() *runtime.Host { return s.job.Host() }

// Controller exposes the live P²F controller (the consistency gate a
// serving engine coordinates with).
func (s *StreamJob) Controller() *p2f.Controller { return s.job.Controller() }

// Snapshot returns the job's observability metrics (see
// TrainingJob.Snapshot).
func (s *StreamJob) Snapshot() Snapshot { return s.job.Snapshot() }

// Emitted reports events handed to the trainer so far.
func (s *StreamJob) Emitted() int64 { return s.src.Emitted() }

// Backlog estimates the open-loop arrival backlog in events: arrived by
// wall clock, not yet consumed (0 for unpaced streams).
func (s *StreamJob) Backlog() int64 { return s.src.Backlog() }

// LogStats snapshots the delta-checkpoint log accounting (zero without
// LogDir).
func (s *StreamJob) LogStats() DeltaLogStats {
	if s.w == nil {
		return DeltaLogStats{}
	}
	return s.w.Stats()
}

// ReconstructLog rebuilds the slab a delta-checkpoint log directory
// describes — the highest base with every later segment replayed over
// it — and returns it as a quiescent host (serve it with
// serve.NewStatic, or diff it against a SaveCheckpoint stream). After a
// graceful Run the reconstruction is bit-identical to the final state.
func ReconstructLog(dir string) (*runtime.Host, error) { return ckpt.Reconstruct(dir) }
