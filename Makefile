GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark (sanity, not measurement).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

check: build vet test race
