GO ?= go

.PHONY: build vet test race race-core bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy packages only — the CI race job.
race-core:
	$(GO) test -race ./internal/runtime/... ./internal/p2f/... ./internal/fault/... ./internal/pq/... ./internal/lfht/...

# One pass over every benchmark (sanity, not measurement).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Fast correctness pass (CI job 1); the race jobs run separately.
check: build vet test
