GO ?= go

.PHONY: build vet test race race-core serve-stress prefetch-stress tier-stress serve-demo shard-demo stream-demo tier-demo bench bench-baseline bench-check check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy packages only — the CI race job. The serve tree
# is spelled out so the load generator stays covered even if the packages
# are ever reorganised.
race-core:
	$(GO) test -race ./internal/runtime/... ./internal/cache ./internal/p2f/... ./internal/fault/... ./internal/pq/... ./internal/lfht/... ./internal/serve ./internal/serve/loadgen ./internal/store ./internal/shard ./internal/stream ./internal/ckpt

# The lookahead-prefetch suite under the race detector: window-pin
# blockades with 4 trainers, 4 prefetchers and the flusher pool running
# concurrently, prefetch on/off determinism, and the pin bookkeeping in
# the cache package.
prefetch-stress:
	$(GO) test -race -count=1 -v \
		-run 'TestPrefetch|TestWindowPin|TestEpochAndWindowPins' \
		./internal/runtime ./internal/cache

# The tiered-slab suite under the race detector: a cold-tier training
# run with concurrent readers and the gate invariant checked every step,
# plus the tier round-trip and delta-log reconstruction tests.
tier-stress:
	$(GO) test -race -count=1 -v \
		-run 'TestTier|TestColdTier|TestCaptureRestoreRow|TestFollowerTieredLog' \
		./internal/runtime ./internal/ckpt ./internal/serve

# The overload-control suite under the race detector: open-loop shedding,
# the hot-key refresh storm, admission semantics, and the server
# shutdown goroutine-leak check.
serve-stress:
	$(GO) test -race -count=1 -v \
		-run 'TestOpenLoopOverloadSheds|TestRefreshStormCoalesces|TestEngineShedsUnderHeldCapacity|TestAdmission|TestHTTPServerShutdownNoLeak|TestFlushKeySharedCoalesces' \
		./internal/serve ./internal/serve/loadgen ./internal/p2f

# Train a small checkpoint, then hammer it with the serving load
# generator for 5s and print the latency report.
serve-demo: build
	$(GO) run ./cmd/frugal-train -micro -gpus 2 -steps 300 -keys 20000 -checkpoint-out /tmp/frugal-demo.ckpt
	$(GO) run ./cmd/frugal-serve -checkpoint /tmp/frugal-demo.ckpt -loadgen 5s -level 'bounded(2)'

# Spin a 3-shard loopback cluster, drive 150 training steps through the
# sharded store from a frugal-shard driver, then serve the cluster and
# hammer it with the load generator for 5s. The trap tears the nodes
# down however the demo exits.
shard-demo:
	@set -e; \
	$(GO) build -o /tmp/frugal-shard-demo ./cmd/frugal-shard; \
	/tmp/frugal-shard-demo -addr 127.0.0.1:7101 -rows 20000 -dim 32 -shard 0 -of 3 & P0=$$!; \
	/tmp/frugal-shard-demo -addr 127.0.0.1:7102 -rows 20000 -dim 32 -shard 1 -of 3 & P1=$$!; \
	/tmp/frugal-shard-demo -addr 127.0.0.1:7103 -rows 20000 -dim 32 -shard 2 -of 3 & P2=$$!; \
	trap 'kill $$P0 $$P1 $$P2 2>/dev/null; wait $$P0 $$P1 $$P2 2>/dev/null' EXIT; \
	sleep 1; \
	/tmp/frugal-shard-demo -connect 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 -steps 150; \
	$(GO) run ./cmd/frugal-serve -shards 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 -loadgen 5s -level 'bounded(4)'

# Continuous training with HA serving: a streaming primary cuts the
# delta-checkpoint log while a fault plan kills a flusher mid-run; a
# follower tails the log and is hammered by the serving load generator;
# after the primary exits, the follower self-promotes on log idleness and
# answers a fresh read as the new authority.
stream-demo:
	@set -e; \
	rm -rf /tmp/frugal-stream-log; \
	$(GO) build -o /tmp/frugal-train-demo ./cmd/frugal-train; \
	$(GO) build -o /tmp/frugal-serve-demo ./cmd/frugal-serve; \
	/tmp/frugal-train-demo -stream -stream-rate 20000 -stream-log /tmp/frugal-stream-log \
		-gpus 2 -keys 20000 -batch 64 -duration 8s -fault-plan 'crash:flusher=0@batch=50' & TP=$$!; \
	trap 'kill $$TP 2>/dev/null || true; wait $$TP 2>/dev/null || true' EXIT; \
	/tmp/frugal-serve-demo -follow /tmp/frugal-stream-log -wait-for-log 10s \
		-loadgen 6s -level 'bounded(8)'; \
	wait $$TP; \
	/tmp/frugal-serve-demo -follow /tmp/frugal-stream-log -promote-after 200ms -loadgen 2s -level 'bounded(8)'

# The frequency-aware tiered slab end to end: train on a cold-tier table
# (2% hot head, int8 cold tail) with the gate invariant checked every
# step, checkpoint it, then serve the same checkpoint through the tiered
# store and hammer it with the load generator — the top-K path scans
# quantized codes and rescores winners at full precision.
tier-demo: build
	$(GO) run ./cmd/frugal-train -micro -gpus 2 -steps 300 -keys 20000 \
		-cold-tier -hot-fraction 0.02 -obs -checkpoint-out /tmp/frugal-tier-demo.ckpt
	$(GO) run ./cmd/frugal-serve -checkpoint /tmp/frugal-tier-demo.ckpt \
		-cold-tier -hot-fraction 0.02 -loadgen 5s

# One pass over every benchmark (sanity, not measurement).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Re-measure the perf suite (tensor kernels, per-engine step loop, PQ
# enqueue/drain) with full 1s windows and overwrite the committed
# baseline. Run on a quiet machine, then commit BENCH_baseline.json.
bench-baseline:
	$(GO) run ./cmd/frugal-bench -perf -perf-out BENCH_baseline.json

# CI perf gate: quick re-run of the same suite diffed against the
# committed baseline. Fails only on allocs/op regressions (deterministic
# across machines); ns/op differences are advisory notes.
bench-check:
	$(GO) run ./cmd/frugal-bench -perf -quick -perf-out BENCH_current.json -perf-against BENCH_baseline.json

# Fast correctness pass (CI job 1); the race jobs run separately.
check: build vet test
