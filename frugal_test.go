package frugal

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasetsRegistry(t *testing.T) {
	if len(Datasets()) != 6 {
		t.Fatalf("Datasets() = %d entries, want 6", len(Datasets()))
	}
	ds, err := DatasetByName("Avazu")
	if err != nil || ds.Name != "Avazu" {
		t.Fatalf("DatasetByName: %v", err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestMicrobenchmarkAllEngines(t *testing.T) {
	for _, engine := range []Engine{EngineFrugal, EngineFrugalSync, EngineDirect} {
		job, err := New(Config{
			Engine: engine, NumGPUs: 2, CheckConsistency: true, Seed: 1,
		}, Microbenchmark{Options: MicroOptions{KeySpace: 2000, Batch: 64, Steps: 30}})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if res.Steps != 30 {
			t.Fatalf("%s: steps = %d", engine, res.Steps)
		}
		if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
			t.Fatalf("%s: loss did not drop", engine)
		}
	}
}

func TestRecommendationJob(t *testing.T) {
	job, err := New(Config{NumGPUs: 2, CheckConsistency: true, Seed: 2}, Recommendation{Dataset: DatasetAvazu, Options: RECOptions{Scale: 1_000_000, Batch: 16, Steps: 40, Hidden: []int{16}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushed == 0 {
		t.Fatal("Frugal engine must flush updates")
	}
	// A trained row must be retrievable.
	if row := job.HostRow(0); len(row) != DatasetAvazu.EmbDim {
		t.Fatalf("HostRow dim = %d", len(row))
	}
}

func TestRecommendationRejectsKGDataset(t *testing.T) {
	if _, err := New(Config{}, Recommendation{Dataset: DatasetFB15k, Options: RECOptions{}}); err == nil {
		t.Fatal("KG dataset must be rejected")
	}
}

func TestKnowledgeGraphJobAllModels(t *testing.T) {
	for _, m := range []string{"TransE", "DistMult", "ComplEx", "SimplE"} {
		job, err := New(Config{NumGPUs: 2, CheckConsistency: true, Seed: 3}, KnowledgeGraph{Dataset: DatasetFB15k, Options: KGOptions{Model: m, Scale: 100, Batch: 8, NegSample: 4, Steps: 15, Dim: 8}})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if _, err := job.Run(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestKnowledgeGraphRejectsBadInput(t *testing.T) {
	if _, err := New(Config{}, KnowledgeGraph{Dataset: DatasetAvazu, Options: KGOptions{}}); err == nil {
		t.Fatal("REC dataset must be rejected")
	}
	if _, err := New(Config{}, KnowledgeGraph{Dataset: DatasetFB15k, Options: KGOptions{Model: "RotatE"}}); err == nil {
		t.Fatal("unknown model must be rejected")
	}
}

func TestMicrobenchmarkRejectsBadDistribution(t *testing.T) {
	if _, err := New(Config{}, Microbenchmark{Options: MicroOptions{Distribution: "pareto"}}); err == nil {
		t.Fatal("unknown distribution must be rejected")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 19 { // table1, table2, fig3a-c, exp1-11, ext1-3
		t.Fatalf("Experiments() = %d entries, want 19", len(exps))
	}
	var sb strings.Builder
	if err := RunExperiment(&sb, "table1", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "RTX 4090") {
		t.Fatal("table1 output missing GPU names")
	}
	if err := RunExperiment(&sb, "bogus", true); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestReplayJob(t *testing.T) {
	trace := "1 2 3 4\n5 6 7 8\n1 2 5 6\n" // 3 batches over keys 1..8
	job, err := New(Config{NumGPUs: 2, CheckConsistency: true}, Replay{Source: strings.NewReader(trace), Options: ReplayOptions{Dim: 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3", res.Steps)
	}
	if _, err := New(Config{}, Replay{Source: strings.NewReader(""), Options: ReplayOptions{}}); err == nil {
		t.Fatal("empty trace must error")
	}
}

func TestCheckpointThroughPublicAPI(t *testing.T) {
	mk := func() *TrainingJob {
		job, err := New(Config{NumGPUs: 2, Seed: 5, Optimizer: OptimizerAdagrad}, Microbenchmark{Options: MicroOptions{KeySpace: 1000, Batch: 32, Steps: 20}})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	first := mk()
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	second := mk()
	if err := second.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Run(); err != nil {
		t.Fatal(err)
	}
	row := second.HostRow(0)
	if len(row) != 32 {
		t.Fatalf("HostRow dim = %d", len(row))
	}
}

// TestKGEvaluation: training must lift link-prediction quality well above
// an untrained model's.
func TestKGEvaluation(t *testing.T) {
	cfg := Config{NumGPUs: 2, LR: 0.5, Seed: 19, CheckConsistency: true}
	opt := KGOptions{Model: "TransE", Scale: 400, Batch: 128, NegSample: 64, Steps: 1500, Dim: 16}

	untrainedJob, err := New(cfg, KnowledgeGraph{Dataset: DatasetFB15k, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate without running: random embeddings.
	base, err := EvaluateKnowledgeGraph(untrainedJob, cfg, DatasetFB15k, opt, 300, 50)
	if err != nil {
		t.Fatal(err)
	}

	trainedJob, err := New(cfg, KnowledgeGraph{Dataset: DatasetFB15k, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainedJob.Run(); err != nil {
		t.Fatal(err)
	}
	trained, err := EvaluateKnowledgeGraph(trainedJob, cfg, DatasetFB15k, opt, 300, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The lift bound is modest: concurrent flush ordering makes float
	// accumulation (hence the long trajectory) run-dependent, so the
	// trained MRR varies a little around ~1.4x the untrained baseline.
	if trained.MRR <= base.MRR*1.2 {
		t.Fatalf("training should lift MRR: untrained %.3f, trained %.3f", base.MRR, trained.MRR)
	}
	if trained.Triples != 300 || trained.Candidates != 50 {
		t.Fatalf("eval size wrong: %+v", trained)
	}
	if _, err := EvaluateKnowledgeGraph(trainedJob, cfg, DatasetAvazu, opt, 10, 10); err == nil {
		t.Fatal("REC dataset must be rejected")
	}
}

func TestGraphLearningJob(t *testing.T) {
	job, err := New(Config{NumGPUs: 2, LR: 0.2, Seed: 61, CheckConsistency: true}, GraphLearning{Options: GNNOptions{Nodes: 1500, Fanout: 3, Dim: 16, Edges: 48, Steps: 60}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatal("graph-learning loss did not drop")
	}
}
