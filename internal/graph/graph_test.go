package graph

import (
	"testing"
	"testing/quick"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, 1, 1); err == nil {
		t.Fatal("1 node must error")
	}
	if _, err := Generate(1, 10, 0); err == nil {
		t.Fatal("attach=0 must error")
	}
	if _, err := Generate(1, 5, 5); err == nil {
		t.Fatal("attach ≥ nodes must error")
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := Generate(7, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 2000 {
		t.Fatalf("Nodes = %d", g.Nodes())
	}
	// Edges: clique(4)=6 + 3 per remaining node.
	want := int64(6 + 3*(2000-4))
	if g.Edges() != want {
		t.Fatalf("Edges = %d, want %d", g.Edges(), want)
	}
	// Every node connected.
	for u := uint64(0); u < 2000; u++ {
		if g.Degree(u) == 0 {
			t.Fatalf("node %d isolated", u)
		}
	}
	// Handshake lemma.
	sum := 0
	for u := uint64(0); u < 2000; u++ {
		sum += g.Degree(u)
	}
	if int64(sum) != 2*g.Edges() {
		t.Fatalf("degree sum %d != 2×edges %d", sum, 2*g.Edges())
	}
}

func TestGeneratePowerLaw(t *testing.T) {
	g, err := Generate(3, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Preferential attachment: the max degree must dwarf the mean.
	mean := float64(2*g.Edges()) / float64(g.Nodes())
	if float64(g.MaxDegree()) < 8*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestSampler(t *testing.T) {
	g, _ := Generate(5, 500, 3)
	s, err := NewSampler(g, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampler(g, 1, 0); err == nil {
		t.Fatal("fanout=0 must error")
	}
	if s.Fanout() != 4 {
		t.Fatal("fanout accessor wrong")
	}
	// Sampled edges must exist.
	for i := 0; i < 200; i++ {
		u, v := s.SampleEdge()
		found := false
		for _, n := range g.Neighbors(u) {
			if n == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled non-edge (%d,%d)", u, v)
		}
	}
	// Sampled neighbors are actual neighbors.
	nbrs := s.SampleNeighbors(7, nil)
	if len(nbrs) != 4 {
		t.Fatalf("neighbor sample len = %d", len(nbrs))
	}
	adj := map[uint64]bool{}
	for _, n := range g.Neighbors(7) {
		adj[n] = true
	}
	for _, n := range nbrs {
		if !adj[n] {
			t.Fatalf("sampled non-neighbor %d of 7", n)
		}
	}
}

func TestSampleBatchShape(t *testing.T) {
	g, _ := Generate(5, 300, 2)
	s, _ := NewSampler(g, 2, 3)
	b := s.SampleBatch(16)
	if len(b.U) != 16 || len(b.V) != 16 || len(b.Neg) != 16 {
		t.Fatalf("endpoint lens: %d %d %d", len(b.U), len(b.V), len(b.Neg))
	}
	if len(b.UNbrs) != 48 || len(b.VNbrs) != 48 || len(b.NegNbrs) != 48 {
		t.Fatal("neighbor lens wrong")
	}
	keys := b.AllKeys(nil)
	if len(keys) != 16*3+48*3 {
		t.Fatalf("AllKeys len = %d", len(keys))
	}
	for _, k := range keys {
		if k >= uint64(g.Nodes()) {
			t.Fatalf("key %d out of node range", k)
		}
	}
}

// Property: for any valid (nodes, attach), generation yields a connected-
// enough graph with the right edge count and all keys in range.
func TestGenerateProperty(t *testing.T) {
	f := func(rawNodes uint16, rawAttach uint8, seed int64) bool {
		nodes := int(rawNodes%500) + 10
		attach := int(rawAttach%3) + 1
		g, err := Generate(seed, nodes, attach)
		if err != nil {
			return false
		}
		sum := 0
		for u := 0; u < nodes; u++ {
			if g.Degree(uint64(u)) == 0 {
				return false
			}
			sum += g.Degree(uint64(u))
		}
		return int64(sum) == 2*g.Edges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
