// Package graph provides the graph-learning substrate the paper's
// introduction motivates (node/edge-ID embeddings, GraphSAGE-style
// training [21]): synthetic power-law graphs and the neighbor sampling
// that turns them into embedding-lookup batches. Together with
// model.GNNScorer and runtime.NewGNN it forms the third application
// family next to recommendation and knowledge-graph embedding.
package graph

import (
	"fmt"
	"math/rand"
)

// Graph is an undirected graph over nodes 0..N-1 with adjacency lists.
type Graph struct {
	adj   [][]uint64
	edges int64
}

// Generate builds a synthetic power-law graph by preferential attachment
// (Barabási-Albert): each new node attaches to `attach` existing nodes
// sampled proportionally to degree, giving the heavy-tailed degree
// distribution real graphs (and the paper's datasets) exhibit.
func Generate(seed int64, nodes int, attach int) (*Graph, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("graph: need at least 2 nodes, got %d", nodes)
	}
	if attach < 1 {
		return nil, fmt.Errorf("graph: attach must be ≥ 1, got %d", attach)
	}
	if attach >= nodes {
		return nil, fmt.Errorf("graph: attach %d must be below nodes %d", attach, nodes)
	}
	g := &Graph{adj: make([][]uint64, nodes)}
	rng := rand.New(rand.NewSource(seed))
	// endpoints holds every edge endpoint; sampling uniformly from it is
	// sampling nodes proportionally to degree.
	endpoints := make([]uint64, 0, 2*nodes*attach)
	// Seed clique over the first attach+1 nodes.
	for i := 0; i <= attach; i++ {
		for j := i + 1; j <= attach; j++ {
			g.addEdge(uint64(i), uint64(j))
			endpoints = append(endpoints, uint64(i), uint64(j))
		}
	}
	for v := attach + 1; v < nodes; v++ {
		seen := make(map[uint64]bool, attach)
		for len(seen) < attach {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == uint64(v) || seen[u] {
				// Fall back to uniform to guarantee progress on tiny graphs.
				u = uint64(rng.Intn(v))
				if u == uint64(v) || seen[u] {
					continue
				}
			}
			seen[u] = true
			g.addEdge(uint64(v), u)
			endpoints = append(endpoints, uint64(v), u)
		}
	}
	return g, nil
}

func (g *Graph) addEdge(u, v uint64) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return len(g.adj) }

// Edges returns the undirected edge count.
func (g *Graph) Edges() int64 { return g.edges }

// Degree returns a node's degree.
func (g *Graph) Degree(u uint64) int { return len(g.adj[u]) }

// Neighbors returns a node's adjacency list (shared storage; do not
// mutate).
func (g *Graph) Neighbors(u uint64) []uint64 { return g.adj[u] }

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, ns := range g.adj {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// Sampler draws training batches from a graph: positive edges with
// sampled neighborhoods (GraphSAGE-style fixed fan-out) plus uniform
// negative nodes.
type Sampler struct {
	g      *Graph
	rng    *rand.Rand
	fanout int
}

// NewSampler builds a sampler with the given neighbor fan-out.
func NewSampler(g *Graph, seed int64, fanout int) (*Sampler, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("graph: fanout must be ≥ 1, got %d", fanout)
	}
	return &Sampler{g: g, rng: rand.New(rand.NewSource(seed)), fanout: fanout}, nil
}

// Fanout returns the per-node neighbor sample size.
func (s *Sampler) Fanout() int { return s.fanout }

// SampleEdge draws one existing edge uniformly by degree-weighted endpoint
// choice (endpoint u picked ∝ degree, then a uniform incident edge — which
// is exactly uniform over edge slots).
func (s *Sampler) SampleEdge() (u, v uint64) {
	for {
		u = uint64(s.rng.Intn(s.g.Nodes()))
		ns := s.g.adj[u]
		if len(ns) > 0 {
			return u, ns[s.rng.Intn(len(ns))]
		}
	}
}

// SampleNeighbors appends up to fanout sampled neighbors of u to dst
// (with replacement, the GraphSAGE convention; isolated nodes contribute
// themselves so shapes stay rectangular).
func (s *Sampler) SampleNeighbors(u uint64, dst []uint64) []uint64 {
	ns := s.g.adj[u]
	for i := 0; i < s.fanout; i++ {
		if len(ns) == 0 {
			dst = append(dst, u)
			continue
		}
		dst = append(dst, ns[s.rng.Intn(len(ns))])
	}
	return dst
}

// Batch is one GNN training batch: Edges positive (u, v) pairs, one
// uniform negative node per positive, and fanout sampled neighbors per
// endpoint and per negative.
type Batch struct {
	U, V, Neg             []uint64
	UNbrs, VNbrs, NegNbrs []uint64 // len = Edges × fanout each
	Fanout                int
}

// SampleBatch draws a batch of `edges` positives with negatives and
// neighborhoods.
func (s *Sampler) SampleBatch(edges int) Batch {
	b := Batch{Fanout: s.fanout}
	for i := 0; i < edges; i++ {
		u, v := s.SampleEdge()
		neg := uint64(s.rng.Intn(s.g.Nodes()))
		b.U = append(b.U, u)
		b.V = append(b.V, v)
		b.Neg = append(b.Neg, neg)
		b.UNbrs = s.SampleNeighbors(u, b.UNbrs)
		b.VNbrs = s.SampleNeighbors(v, b.VNbrs)
		b.NegNbrs = s.SampleNeighbors(neg, b.NegNbrs)
	}
	return b
}

// AllKeys appends every embedding key the batch touches to dst.
func (b Batch) AllKeys(dst []uint64) []uint64 {
	dst = append(dst, b.U...)
	dst = append(dst, b.V...)
	dst = append(dst, b.Neg...)
	dst = append(dst, b.UNbrs...)
	dst = append(dst, b.VNbrs...)
	dst = append(dst, b.NegNbrs...)
	return dst
}
