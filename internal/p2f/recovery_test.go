package p2f

import (
	"testing"
	"time"

	"frugal/internal/fault"
)

// chainBatches builds a read-after-write dependency chain: the same key
// is read and updated at every step, so the gate for step s+1 cannot open
// until step s's update is flushed — the workload where a dead flusher
// pool deadlocks an unprotected controller.
func chainBatches(key uint64, steps int) [][]uint64 {
	b := make([][]uint64, steps)
	for i := range b {
		b[i] = []uint64{key}
	}
	return b
}

func mustPlan(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fault.NewInjector(p)
}

func TestFlusherCrashRecovery(t *testing.T) {
	// Kill one of two flushers on its first dequeue batch. The supervisor
	// must respawn it and the run must complete with every update flushed
	// exactly once — the same accounting a fault-free run produces.
	const steps = 60
	sink := newRecordSink()
	src := &sliceSource{batches: chainBatches(7, steps)}
	c := newTestController(t, Options{
		MaxStep: steps, FlushThreads: 2, Sink: sink, Source: src,
		Faults: mustPlan(t, "crash:flusher=0@batch=1"),
		Recovery: Recovery{
			HeartbeatInterval: time.Millisecond,
			StallTimeout:      50 * time.Millisecond,
		},
	})
	if got := runTrace(t, c, 1); got != steps {
		t.Fatalf("trained %d steps, want %d", got, steps)
	}
	if got := sink.sum(7); got != steps {
		t.Fatalf("flushed sum = %v, want %d", got, steps)
	}
	rs := c.RecoveryStats()
	if rs.FlusherCrashes != 1 {
		t.Fatalf("FlusherCrashes = %d, want 1", rs.FlusherCrashes)
	}
	if rs.Respawns < 1 {
		t.Fatalf("crashed flusher was never respawned: %+v", rs)
	}
	if rs.Degraded {
		t.Fatalf("healthy recovery must not degrade: %+v", rs)
	}
}

func TestFlusherStallSuperseded(t *testing.T) {
	// The pool's only flusher stalls for far longer than StallTimeout.
	// The supervisor must detect the stale heartbeat, supersede the
	// generation, and respawn — the run completes long before the stalled
	// thread would have woken on its own.
	const steps = 40
	sink := newRecordSink()
	src := &sliceSource{batches: chainBatches(3, steps)}
	c := newTestController(t, Options{
		MaxStep: steps, FlushThreads: 1, Sink: sink, Source: src,
		Faults: mustPlan(t, "stall:flusher=0@batch=1,dur=30s"),
		Recovery: Recovery{
			HeartbeatInterval: time.Millisecond,
			StallTimeout:      20 * time.Millisecond,
		},
	})
	start := time.Now()
	if got := runTrace(t, c, 1); got != steps {
		t.Fatalf("trained %d steps, want %d", got, steps)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("run took %v — the stalled thread was never superseded", took)
	}
	rs := c.RecoveryStats()
	if rs.StallsDetected < 1 || rs.Respawns < 1 {
		t.Fatalf("stall not detected/healed: %+v", rs)
	}
	if got := sink.sum(3); got != steps {
		t.Fatalf("flushed sum = %v, want %d", got, steps)
	}
}

func TestWholePoolKilledDegradesToWriteThrough(t *testing.T) {
	// Every flusher dies and respawning is disabled: without the watchdog
	// the gate would block forever on the read-after-write chain. The
	// watchdog must degrade the run to write-through within GateTimeout,
	// after which it completes with all updates on the sink.
	const steps = 50
	sink := newRecordSink()
	src := &sliceSource{batches: chainBatches(9, steps)}
	c := newTestController(t, Options{
		MaxStep: steps, FlushThreads: 2, Sink: sink, Source: src,
		Faults: mustPlan(t, "crash:flusher=0@batch=1;crash:flusher=1@batch=1"),
		Recovery: Recovery{
			HeartbeatInterval: time.Millisecond,
			MaxRespawns:       -1, // no healing: force the watchdog path
			GateTimeout:       100 * time.Millisecond,
		},
	})
	done := make(chan int, 1)
	go func() { done <- runTrace(t, c, 1) }()
	select {
	case got := <-done:
		if got != steps {
			t.Fatalf("trained %d steps, want %d", got, steps)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run deadlocked: watchdog never degraded the gate")
	}
	rs := c.RecoveryStats()
	if !rs.Degraded {
		t.Fatalf("expected degradation, got %+v", rs)
	}
	if rs.DegradedStep < 0 {
		t.Fatalf("DegradedStep not recorded: %+v", rs)
	}
	if rs.FlusherCrashes != 2 || rs.Respawns != 0 {
		t.Fatalf("unexpected recovery accounting: %+v", rs)
	}
	if got := sink.sum(9); got != steps {
		t.Fatalf("flushed sum = %v, want %d", got, steps)
	}
	if c.Queue().Len() != 0 {
		t.Fatalf("queue not drained after degraded run: %d", c.Queue().Len())
	}
}

func TestCrashRedistributesInFlightBatch(t *testing.T) {
	// Hold the pool's only flusher in an injected stall while the trainer
	// commits step 0 of a read-after-write chain and blocks at the gate,
	// then crash the flusher on its next dequeue batch: the dying thread
	// must re-enqueue (not lose) the pending entry, and the respawned
	// replacement must flush it so the gate opens and the run completes.
	const steps = 40
	sink := newRecordSink()
	src := &sliceSource{batches: chainBatches(5, steps)}
	c := newTestController(t, Options{
		MaxStep: steps, FlushThreads: 1, DequeueBatchSize: 4, Sink: sink, Source: src,
		Faults: mustPlan(t, "stall:flusher=0@batch=1,dur=250ms;crash:flusher=0@batch=2"),
		Recovery: Recovery{
			HeartbeatInterval: time.Millisecond,
			StallTimeout:      10 * time.Second, // don't supersede the stall: let it reach the crash
		},
	})
	if got := runTrace(t, c, 1); got != steps {
		t.Fatalf("trained %d steps, want %d", got, steps)
	}
	if got := sink.sum(5); got != steps {
		t.Fatalf("flushed sum = %v, want %d (updates lost in the crash)", got, steps)
	}
	rs := c.RecoveryStats()
	if rs.FlusherCrashes != 1 {
		t.Fatalf("FlusherCrashes = %d, want 1", rs.FlusherCrashes)
	}
	if rs.Redistributed < 1 {
		t.Fatalf("dying flusher redistributed nothing: %+v", rs)
	}
}

func TestRecoveryDisabledKeepsLegacyBehaviour(t *testing.T) {
	// With the layer off entirely, a fault-free run behaves exactly as
	// before: no supervisor, no respawns, zero recovery stats.
	const steps = 20
	sink := newRecordSink()
	src := &sliceSource{batches: chainBatches(1, steps)}
	c := newTestController(t, Options{
		MaxStep: steps, FlushThreads: 2, Sink: sink, Source: src,
		Recovery: Recovery{Disabled: true},
	})
	if got := runTrace(t, c, 1); got != steps {
		t.Fatalf("trained %d steps, want %d", got, steps)
	}
	if rs := c.RecoveryStats(); rs != (RecoveryStats{DegradedStep: -1}) {
		t.Fatalf("recovery stats on a disabled layer: %+v", rs)
	}
}

func TestRecoveryDefaults(t *testing.T) {
	var r Recovery
	r.normalize()
	if r.HeartbeatInterval != time.Millisecond || r.StallTimeout != 250*time.Millisecond ||
		r.MaxRespawns != 16 || r.RespawnBackoff != time.Millisecond || r.GateTimeout != 5*time.Second {
		t.Fatalf("defaults wrong: %+v", r)
	}
	neg := Recovery{MaxRespawns: -1, GateTimeout: -1}
	neg.normalize()
	if neg.MaxRespawns != -1 || neg.GateTimeout != -1 {
		t.Fatalf("negative opt-outs must survive normalize: %+v", neg)
	}
}
