package p2f

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frugal/internal/pq"
)

// TestFlushKeySharedCoalesces releases a pack of concurrent refreshers at
// one hot key with pending writes and a deliberately slow sink: exactly
// one of them must run the flush, the rest must piggyback on it. The
// controller is never Start()ed, so no flusher pool races the serving
// path — every sink call below is FlushKeyShared traffic.
func TestFlushKeySharedCoalesces(t *testing.T) {
	const key, readers = uint64(7), 16
	var flushes atomic.Int64
	sink := FlushSinkFunc(func(k uint64, updates []pq.Update) {
		if k == key {
			flushes.Add(1)
		}
		// Hold the flush open long enough that every reader released below
		// arrives while it is in flight.
		time.Sleep(50 * time.Millisecond)
	})
	src := &sliceSource{batches: [][]uint64{{key}}}
	c, err := NewController(Options{MaxStep: 1, Sink: sink, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	c.CommitStep(0, []KeyDelta{{Key: key, Delta: []float32{1}}})

	start := make(chan struct{})
	var wg sync.WaitGroup
	var reportedFlushed atomic.Int64
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if c.FlushKeyShared(key) {
				reportedFlushed.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	// One CommitStep means one non-empty write set: however the readers
	// interleave, the sink must see exactly one flush of the hot key.
	if got := flushes.Load(); got != 1 {
		t.Fatalf("sink flushes = %d, want 1 (refresh storm not coalesced)", got)
	}
	// Followers inherit the leader's outcome, so piggybacked callers also
	// report flushed=true.
	if got := reportedFlushed.Load(); got < 1 {
		t.Fatalf("no caller reported a flush")
	}
	co := c.Stats().CoalescedFlushes
	if co < 1 || co > readers-1 {
		t.Fatalf("CoalescedFlushes = %d, want in [1, %d]", co, readers-1)
	}
	// The storm is over and the entry drained: the next shared flush finds
	// nothing and says so.
	if c.FlushKeyShared(key) {
		t.Fatal("drained key reported another flush")
	}
}

// TestFlushKeySharedUntouchedKey pins the trivial path: a key the
// training trace never touched has no g-entry and nothing to flush.
func TestFlushKeySharedUntouchedKey(t *testing.T) {
	c, err := NewController(Options{
		MaxStep: 1,
		Sink:    FlushSinkFunc(func(uint64, []pq.Update) { t.Error("sink called for untouched key") }),
		Source:  &sliceSource{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.FlushKeyShared(42) {
		t.Fatal("untouched key reported a flush")
	}
	if co := c.Stats().CoalescedFlushes; co != 0 {
		t.Fatalf("CoalescedFlushes = %d, want 0", co)
	}
}
