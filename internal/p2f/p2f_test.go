package p2f

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"frugal/internal/pq"
)

// sliceSource replays a fixed list of batches.
type sliceSource struct {
	mu      sync.Mutex
	batches [][]uint64
	next    int
}

func (s *sliceSource) Next() ([]uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.batches) {
		return nil, false
	}
	b := s.batches[s.next]
	s.next++
	return b, true
}

// recordSink records every flushed update and sums deltas per key.
type recordSink struct {
	mu      sync.Mutex
	flushes int
	updates int
	sums    map[uint64]float32
	steps   map[uint64][]int64
}

func newRecordSink() *recordSink {
	return &recordSink{sums: make(map[uint64]float32), steps: make(map[uint64][]int64)}
}

func (s *recordSink) Flush(key uint64, updates []pq.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	s.updates += len(updates)
	for _, u := range updates {
		s.sums[key] += u.Delta[0]
		s.steps[key] = append(s.steps[key], u.Step)
	}
}

func (s *recordSink) sum(key uint64) float32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sums[key]
}

// barrier is a reusable synchronisation barrier for n parties.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	gen     int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func newTestController(t *testing.T, opt Options) *Controller {
	t.Helper()
	c, err := NewController(opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestOptionsValidation(t *testing.T) {
	sink := newRecordSink()
	src := &sliceSource{}
	for name, opt := range map[string]Options{
		"no-maxstep": {Sink: sink, Source: src},
		"no-sink":    {MaxStep: 10, Source: src},
		"no-source":  {MaxStep: 10, Sink: sink},
	} {
		if _, err := NewController(opt); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	opt := Options{MaxStep: 5, Sink: newRecordSink(), Source: &sliceSource{}}
	if err := opt.normalize(); err != nil {
		t.Fatal(err)
	}
	if opt.Lookahead != 10 || opt.FlushThreads != 8 || opt.Trainers != 1 || opt.DequeueBatchSize != 64 {
		t.Fatalf("defaults wrong: %+v", opt)
	}
}

// runTrace drives a full single-trainer training loop over the given
// batches: gate → invariant check → commit, with unit deltas.
func runTrace(t *testing.T, c *Controller, delta float32) int {
	t.Helper()
	steps := 0
	for {
		b, ok := c.NextBatch()
		if !ok {
			break
		}
		c.WaitForStep(b.Step)
		if err := c.CheckInvariant(b.Step, b.Keys); err != nil {
			t.Fatal(err)
		}
		upd := make([]KeyDelta, len(b.Keys))
		for i, k := range b.Keys {
			upd[i] = KeyDelta{Key: k, Delta: []float32{delta}}
		}
		c.CommitStep(b.Step, upd)
		steps++
	}
	c.DrainAll()
	return steps
}

func TestFig6Example(t *testing.T) {
	// The walkthrough of Fig 6: L=2, batches k2k3k1 / k2 / k1. k3's update
	// from step 0 is never read again, so P²F defers it (∞ priority) while
	// k2 (read at step 1) and k1 (read at step 2) must flush urgently.
	const k1, k2, k3 = 1, 2, 3
	sink := newRecordSink()
	src := &sliceSource{batches: [][]uint64{{k2, k3, k1}, {k2}, {k1}}}
	c := newTestController(t, Options{
		MaxStep: 3, Lookahead: 2, FlushThreads: 2, Sink: sink, Source: src,
	})
	if got := runTrace(t, c, 1); got != 3 {
		t.Fatalf("trained %d steps, want 3", got)
	}
	// Every update flushed exactly once: k1 and k2 updated at 2 steps each,
	// k3 at one step.
	for key, want := range map[uint64]float32{k1: 2, k2: 2, k3: 1} {
		if got := sink.sum(key); got != want {
			t.Fatalf("key %d flushed sum = %v, want %v", key, got, want)
		}
	}
	st := c.Stats()
	if st.FlushedUpdates != 5 {
		t.Fatalf("FlushedUpdates = %d, want 5", st.FlushedUpdates)
	}
	if st.CommittedSteps != 3 {
		t.Fatalf("CommittedSteps = %d, want 3", st.CommittedSteps)
	}
	if st.DeferredFlushes == 0 {
		t.Fatal("expected at least one deferred (∞ priority) flush — the k₃ case")
	}
}

func TestGateBlocksUntilFlushed(t *testing.T) {
	// With zero flusher threads started manually we can't easily hold the
	// flushers back; instead use a slow sink to widen the window and check
	// that WaitForStep actually reports stall time when the same key is
	// read every step (write-read dependency chain).
	key := uint64(7)
	var batches [][]uint64
	const steps = 50
	for i := 0; i < steps; i++ {
		batches = append(batches, []uint64{key})
	}
	slow := FlushSinkFunc(func(k uint64, u []pq.Update) {
		time.Sleep(200 * time.Microsecond)
	})
	src := &sliceSource{batches: batches}
	c := newTestController(t, Options{
		MaxStep: steps, Lookahead: 4, FlushThreads: 1, Sink: slow, Source: src,
	})
	if got := runTrace(t, c, 1); got != steps {
		t.Fatalf("trained %d steps, want %d", got, steps)
	}
	st := c.Stats()
	if st.Stalls == 0 || st.StallTime == 0 {
		t.Fatalf("a read-after-write chain with a slow sink must stall: %+v", st)
	}
	if st.FlushedUpdates != steps {
		t.Fatalf("FlushedUpdates = %d, want %d", st.FlushedUpdates, steps)
	}
}

func TestInvariantHoldsUnderRandomTraces(t *testing.T) {
	// Property: for random traces (hot keys, random batch sizes) the
	// synchronous-consistency invariant (2) holds at every step, and every
	// committed update is flushed exactly once by DrainAll.
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		const steps = 120
		const keySpace = 40 // small space → heavy write-read conflicts
		batches := make([][]uint64, steps)
		committed := make(map[uint64]int)
		for i := range batches {
			n := 1 + rng.Intn(6)
			seen := map[uint64]bool{}
			for len(batches[i]) < n {
				k := uint64(rng.Intn(keySpace))
				if !seen[k] {
					seen[k] = true
					batches[i] = append(batches[i], k)
					committed[k]++
				}
			}
		}
		sink := newRecordSink()
		src := &sliceSource{batches: batches}
		c := newTestController(t, Options{
			MaxStep: steps, Lookahead: 10, FlushThreads: 4, Sink: sink, Source: src,
		})
		if got := runTrace(t, c, 1); got != steps {
			t.Fatalf("trial %d: trained %d steps, want %d", trial, got, steps)
		}
		for k, want := range committed {
			if got := sink.sum(k); got != float32(want) {
				t.Fatalf("trial %d: key %d flushed sum %v, want %d", trial, k, got, want)
			}
		}
	}
}

func TestMultiTrainerCommits(t *testing.T) {
	// Two trainers share each step; the gate must wait for both commits of
	// step s-1 before opening step s.
	const steps = 30
	const trainers = 2
	var batches [][]uint64
	for i := 0; i < steps; i++ {
		batches = append(batches, []uint64{uint64(i % 5), uint64(5 + i%3)})
	}
	sink := newRecordSink()
	src := &sliceSource{batches: batches}
	c := newTestController(t, Options{
		MaxStep: steps, Trainers: trainers, FlushThreads: 2, Sink: sink, Source: src,
	})

	// readBarrier enforces the synchronous-training contract: no trainer
	// may commit step s until every trainer has finished reading it (the
	// runtime's step barrier plays this role).
	readBarrier := newBarrier(trainers)

	var wg sync.WaitGroup
	work := make([]chan Batch, trainers)
	for w := range work {
		work[w] = make(chan Batch)
	}
	for w := 0; w < trainers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := range work[w] {
				c.WaitForStep(b.Step)
				if err := c.CheckInvariant(b.Step, b.Keys); err != nil {
					t.Error(err)
					return
				}
				readBarrier.wait()
				// Each trainer updates its half of the batch.
				var upd []KeyDelta
				for i, k := range b.Keys {
					if i%trainers == w {
						upd = append(upd, KeyDelta{Key: k, Delta: []float32{1}})
					}
				}
				c.CommitStep(b.Step, upd)
			}
		}(w)
	}
	for {
		b, ok := c.NextBatch()
		if !ok {
			break
		}
		// Broadcast the same batch to both trainers (synchronous step).
		for w := range work {
			work[w] <- b
		}
	}
	for w := range work {
		close(work[w])
	}
	wg.Wait()
	c.DrainAll()
	st := c.Stats()
	if st.CommittedSteps != steps {
		t.Fatalf("CommittedSteps = %d, want %d", st.CommittedSteps, steps)
	}
	if st.FlushedUpdates != steps*2 {
		t.Fatalf("FlushedUpdates = %d, want %d", st.FlushedUpdates, steps*2)
	}
}

func TestTreeHeapBackendEquivalence(t *testing.T) {
	// The P²F controller must behave identically (same flushed sums, same
	// invariant) on the TreeHeap backend — Exp #4 swaps queues like this.
	rng := rand.New(rand.NewSource(99))
	const steps = 80
	batches := make([][]uint64, steps)
	committed := make(map[uint64]int)
	for i := range batches {
		for j := 0; j < 3; j++ {
			k := uint64(rng.Intn(20)*3 + j) // unique within batch
			batches[i] = append(batches[i], k)
			committed[k]++
		}
	}
	sink := newRecordSink()
	src := &sliceSource{batches: batches}
	c := newTestController(t, Options{
		MaxStep: steps, FlushThreads: 3, Sink: sink, Source: src,
		Queue: pq.NewTreeHeap(1024),
	})
	if got := runTrace(t, c, 1); got != steps {
		t.Fatalf("trained %d steps, want %d", got, steps)
	}
	for k, want := range committed {
		if got := sink.sum(k); got != float32(want) {
			t.Fatalf("key %d flushed sum %v, want %d", k, got, want)
		}
	}
}

func TestReadDone(t *testing.T) {
	// A read-only pass must clear read sets so deferred updates stay ∞.
	sink := newRecordSink()
	src := &sliceSource{batches: [][]uint64{{1}, {1}}}
	c := newTestController(t, Options{MaxStep: 2, FlushThreads: 1, Sink: sink, Source: src})
	b, _ := c.NextBatch()
	c.WaitForStep(b.Step)
	c.CommitStep(b.Step, []KeyDelta{{Key: 1, Delta: []float32{1}}})
	b2, _ := c.NextBatch()
	c.WaitForStep(b2.Step)
	// Read-only step: no update, just retire the read.
	c.ReadDone(b2.Step, b2.Keys)
	c.mu.Lock()
	c.commits[b2.Step] = 0 // nothing to commit
	c.committedStep = b2.Step
	c.gate.Broadcast()
	c.mu.Unlock()
	c.DrainAll()
	g, ok := c.Entry(1)
	if !ok {
		t.Fatal("entry missing")
	}
	g.Mu.Lock()
	defer g.Mu.Unlock()
	if len(g.R) != 0 || len(g.W) != 0 {
		t.Fatalf("entry not fully retired: %v", g)
	}
}

func TestStopIsIdempotentAndUnblocks(t *testing.T) {
	sink := newRecordSink()
	src := &sliceSource{batches: [][]uint64{{1}, {1}, {1}}}
	c, err := NewController(Options{MaxStep: 3, FlushThreads: 1, Sink: sink, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Stop()
	c.Stop() // idempotent
	// WaitForStep after stop must not hang.
	done := make(chan struct{})
	go func() {
		c.WaitForStep(2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitForStep hung after Stop")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	sink := newRecordSink()
	src := &sliceSource{batches: nil}
	c, err := NewController(Options{MaxStep: 1, Sink: sink, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Start")
		}
	}()
	c.Start()
}

func TestStatsSnapshot(t *testing.T) {
	sink := newRecordSink()
	src := &sliceSource{batches: [][]uint64{{1, 2}, {2, 3}}}
	c := newTestController(t, Options{MaxStep: 2, FlushThreads: 2, Sink: sink, Source: src})
	runTrace(t, c, 1)
	st := c.Stats()
	if st.PrefetchedSteps != 2 || st.CommittedSteps != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FlushedUpdates != 4 {
		t.Fatalf("FlushedUpdates = %d, want 4", st.FlushedUpdates)
	}
	if st.UrgentFlushes+st.DeferredFlushes == 0 {
		t.Fatal("flush counters not incremented")
	}
}

// TestGatePropertyQuick drives randomly shaped traces (testing/quick
// supplies the shape parameters) through a full gate/commit/flush cycle
// and checks the global P²F accounting: every committed update is flushed
// exactly once, the invariant holds at every gate, and the queue drains.
func TestGatePropertyQuick(t *testing.T) {
	f := func(seed int64, rawKeys uint8, rawBatch uint8, rawThreads uint8) bool {
		keySpace := int(rawKeys%30) + 2
		batch := int(rawBatch%5) + 1
		if batch > keySpace {
			batch = keySpace // unique keys per batch cannot exceed the space
		}
		threads := int(rawThreads%3) + 1
		const steps = 40
		rng := rand.New(rand.NewSource(seed))
		batches := make([][]uint64, steps)
		total := 0
		for i := range batches {
			seen := map[uint64]bool{}
			for len(batches[i]) < batch {
				k := uint64(rng.Intn(keySpace))
				if !seen[k] {
					seen[k] = true
					batches[i] = append(batches[i], k)
					total++
				}
			}
		}
		sink := newRecordSink()
		c, err := NewController(Options{
			MaxStep: steps, Lookahead: 3, FlushThreads: threads,
			Sink: sink, Source: &sliceSource{batches: batches},
		})
		if err != nil {
			return false
		}
		c.Start()
		defer c.Stop()
		for {
			b, ok := c.NextBatch()
			if !ok {
				break
			}
			c.WaitForStep(b.Step)
			if err := c.CheckInvariant(b.Step, b.Keys); err != nil {
				t.Log(err)
				return false
			}
			upd := make([]KeyDelta, len(b.Keys))
			for i, k := range b.Keys {
				upd[i] = KeyDelta{Key: k, Delta: []float32{1}}
			}
			c.CommitStep(b.Step, upd)
		}
		c.DrainAll()
		st := c.Stats()
		if st.FlushedUpdates != int64(total) {
			t.Logf("flushed %d, want %d", st.FlushedUpdates, total)
			return false
		}
		return c.Queue().Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
