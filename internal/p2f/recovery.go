package p2f

import (
	"sync/atomic"
	"time"

	"frugal/internal/pq"
)

// Recovery configures the controller's self-healing layer: heartbeat
// monitoring of the flusher pool, respawning of dead or stalled threads,
// and the gate watchdog that degrades EngineFrugal to write-through
// rather than letting trainers deadlock on a gate no flusher can open.
type Recovery struct {
	// Disabled turns the whole layer off: no supervisor goroutine, no
	// heartbeats, no watchdog. Crash/stall faults then shrink the pool
	// permanently (the pre-recovery behaviour, kept for experiments).
	Disabled bool
	// HeartbeatInterval is the supervisor's scan period (default 1ms).
	HeartbeatInterval time.Duration
	// StallTimeout is how stale a flusher's heartbeat may grow before the
	// supervisor declares it stalled and supersedes it (default 250ms).
	StallTimeout time.Duration
	// MaxRespawns is the pool-wide respawn budget (default 16; negative
	// disables respawning while keeping the watchdog).
	MaxRespawns int
	// RespawnBackoff is the initial per-slot delay before a respawn; it
	// doubles on every subsequent respawn of the same slot (default 1ms).
	RespawnBackoff time.Duration
	// GateTimeout is how long the gate may stay blocked with a non-empty
	// queue and zero flush progress before the watchdog degrades the run
	// to write-through (default 5s; negative disables the watchdog).
	GateTimeout time.Duration
}

func (r *Recovery) normalize() {
	if r.HeartbeatInterval <= 0 {
		r.HeartbeatInterval = time.Millisecond
	}
	if r.StallTimeout <= 0 {
		r.StallTimeout = 250 * time.Millisecond
	}
	if r.MaxRespawns == 0 {
		r.MaxRespawns = 16
	}
	if r.RespawnBackoff <= 0 {
		r.RespawnBackoff = time.Millisecond
	}
	if r.GateTimeout == 0 {
		r.GateTimeout = 5 * time.Second
	}
}

// RecoveryStats reports what the self-healing layer did during a run.
type RecoveryStats struct {
	// FlusherCrashes counts flushing threads that died (injected faults).
	FlusherCrashes int64 `json:"flusherCrashes"`
	// StallsDetected counts stalled threads the supervisor superseded.
	StallsDetected int64 `json:"stallsDetected"`
	// Respawns counts replacement flushing threads launched.
	Respawns int64 `json:"respawns"`
	// Redistributed counts g-entries a dying flusher re-enqueued from its
	// in-flight dequeue batch.
	Redistributed int64 `json:"redistributed"`
	// Degraded reports whether the gate watchdog switched the run to
	// write-through; DegradedStep is the committed watermark at the
	// transition (-1 when not degraded).
	Degraded     bool  `json:"degraded"`
	DegradedStep int64 `json:"degradedStep"`
}

// flusherSlot is the supervisor's view of one flusher-pool position. The
// goroutine occupying the slot is identified by its generation: bumping
// gen supersedes it (it exits at its next loop check), which is how both
// respawn-after-crash and stall takeover work. batches is the lifetime
// dequeue-batch ordinal — it survives respawns so a fault plan can
// target a replacement thread too.
type flusherSlot struct {
	gen       atomic.Int64
	heartbeat atomic.Int64 // UnixNano of the last loop iteration
	dead      atomic.Bool
	batches   atomic.Int64

	// Respawn pacing; touched only by the supervisor goroutine.
	backoff   time.Duration
	respawnAt int64 // UnixNano before which the slot must not respawn
}

// crashFlusher implements an injected flusher-thread death. The §3.3
// invariant forbids dying with claimed-but-unapplied updates — the gate
// reads Top(), so an update invisible to the queue could let a step read
// a stale host row. The thread therefore goes down "mid-batch" in a
// controlled way: it dequeues its next batch and, inside each g-entry's
// critical section, claims the entry and immediately re-enqueues it at
// its current priority, so a live queue node exists at every instant and
// any surviving (or respawned) flusher picks the work up. Then it marks
// its slot dead for the supervisor and exits.
func (c *Controller) crashFlusher(id int, slot *flusherSlot) {
	redistributed := 0
	c.queue.ProcessBatch(c.opt.DequeueBatchSize, func(g *pq.GEntry, slotPriority int64) bool {
		if !g.InQueue || g.Priority != slotPriority {
			return false // residue; the visit culls it
		}
		g.InQueue = false
		c.queue.Enqueue(g, g.ComputePriority())
		redistributed++
		return true
	})
	c.redistributed.Add(int64(redistributed))
	c.crashes.Add(1)
	c.faultObs.Redistributed(id, redistributed)
	slot.dead.Store(true)
	c.broadcast()
}

// supervisorLoop is the self-healing monitor: it scans the pool's
// heartbeats, respawns dead or stalled flushers with exponential per-slot
// backoff under a pool-wide budget, and runs the gate watchdog. Once the
// run is degraded, it also acts as drainer of last resort so write-through
// progress never depends on a pool that may be entirely dead.
func (c *Controller) supervisorLoop() {
	defer c.wg.Done()
	r := c.opt.Recovery
	ticker := time.NewTicker(r.HeartbeatInterval)
	defer ticker.Stop()
	lastFlushed := c.flushedUpdates.Load()
	lastProgress := time.Now()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		if r.MaxRespawns >= 0 {
			c.healPool(now, r)
		}
		// Watchdog: "progress" is any flush reaching the sink; an empty
		// queue or an unblocked gate also counts (nothing is owed).
		if f := c.flushedUpdates.Load(); f != lastFlushed || c.queue.Len() == 0 || c.waiters.Load() == 0 {
			lastFlushed = f
			lastProgress = now
		}
		if c.degraded.Load() {
			c.drainSync(-1)
		} else if r.GateTimeout > 0 && now.Sub(lastProgress) > r.GateTimeout {
			c.degrade()
		}
	}
}

// healPool respawns dead flushers and supersedes stalled ones. Only the
// supervisor calls it.
func (c *Controller) healPool(now time.Time, r Recovery) {
	for id, slot := range c.slots {
		stale := now.Sub(time.Unix(0, slot.heartbeat.Load())) > r.StallTimeout
		if !slot.dead.Load() && !stale {
			continue
		}
		if c.respawns.Load() >= int64(r.MaxRespawns) {
			continue // budget exhausted; the slot stays down
		}
		if now.UnixNano() < slot.respawnAt {
			continue // backing off
		}
		if !slot.dead.Load() {
			// Stalled, not dead: bumping gen below makes the sleeping
			// thread exit when it wakes instead of racing its replacement.
			c.stallsDetected.Add(1)
		}
		gen := slot.gen.Add(1)
		slot.dead.Store(false)
		slot.heartbeat.Store(now.UnixNano())
		if slot.backoff <= 0 {
			slot.backoff = r.RespawnBackoff
		} else {
			slot.backoff *= 2
		}
		slot.respawnAt = now.Add(slot.backoff).UnixNano()
		total := c.respawns.Add(1)
		c.faultObs.Respawned(id, total)
		c.wg.Add(1)
		go c.flusherLoop(id, gen)
	}
}

// degrade switches the run to write-through (Frugal-Sync semantics):
// CommitStep starts applying updates directly through the sink, and the
// backlog the dead pool left behind is drained cooperatively so the gate
// opens. Idempotent; records the committed watermark at the transition.
func (c *Controller) degrade() {
	if c.degraded.Swap(true) {
		return
	}
	c.mu.Lock()
	step := c.committedStep
	c.mu.Unlock()
	c.degradedStep.Store(step)
	c.faultObs.Degraded(step)
	c.drainSync(-1)
}

// drainSync drains the priority queue from the caller's goroutine until
// it is empty, applying pending writes through the sink. It is the shared
// engine of DrainAll (the end-of-training epilogue), the degraded-mode
// gate path, and the supervisor's drainer-of-last-resort tick; safe for
// concurrent callers. id identifies the drainer to the observability
// layer (-1 for non-pool drainers).
func (c *Controller) drainSync(id int) {
	flush := func(g *pq.GEntry, slotPriority int64) bool {
		return c.flushEntry(id, g, slotPriority)
	}
	for !c.stopping.Load() && c.queue.Len() > 0 {
		if c.queue.ProcessBatch(c.opt.DequeueBatchSize, flush) == 0 {
			// Remaining entries are mid-visit in a concurrent drainer's
			// batch; yield until they land.
			time.Sleep(5 * time.Microsecond)
		}
	}
	c.broadcast()
}

// commitDegraded is CommitStep's write-through path (Frugal-Sync
// semantics, §4 baseline): updates go straight to host memory instead of
// the priority queue. Any backlog a key still carries from before the
// degradation is flushed first inside the same critical section, which
// preserves per-key step order. Entries stay out of the queue, so the
// gate's Top() check is trivially satisfied once the old backlog drains.
func (c *Controller) commitDegraded(s int64, updates []KeyDelta) {
	for _, kd := range updates {
		g, _ := c.dir.GetOrInsert(kd.Key, func() *pq.GEntry { return pq.NewGEntry(kd.Key) })
		g.Mu.Lock()
		g.RemoveRead(s)
		g.AddWriteState(s, kd.Delta, kd.StateDelta)
		w := g.TakeWrites()
		c.sinkFlush(g.Key, w, false)
		c.notifyFlush(g.Key)
		c.flushedUpdates.Add(int64(len(w)))
		g.FlushedWrites(w) // Mu held throughout; sink does not retain w
		g.Mu.Unlock()
	}
	c.mu.Lock()
	c.commits[s]++
	if c.commits[s] == c.opt.Trainers {
		delete(c.commits, s)
		if s > c.committedStep {
			c.committedStep = s
			c.watermark.Store(s)
		}
	}
	c.gate.Broadcast()
	c.mu.Unlock()
}

// RecoveryStats snapshots what the self-healing layer has done so far.
func (c *Controller) RecoveryStats() RecoveryStats {
	return RecoveryStats{
		FlusherCrashes: c.crashes.Load(),
		StallsDetected: c.stallsDetected.Load(),
		Respawns:       c.respawns.Load(),
		Redistributed:  c.redistributed.Load(),
		Degraded:       c.degraded.Load(),
		DegradedStep:   c.degradedStep.Load(),
	}
}

// Degraded reports whether the watchdog has switched the run to
// write-through.
func (c *Controller) Degraded() bool { return c.degraded.Load() }

// sleepFault sleeps for an injected stall/delay duration, returning early
// if the controller stops.
func (c *Controller) sleepFault(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.stop:
	}
}
