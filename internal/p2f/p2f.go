// Package p2f implements Frugal's priority-based proactively flushing
// algorithm (§3.3) and the controller process around it (§3.2, Fig 5): the
// sample (lookahead) queue, the update staging path, the per-parameter
// g-entry directory, background flushing threads, and the synchronous-
// consistency gate that blocks a training step s until the front of the
// priority queue is strictly greater than s.
//
// The package is hardware-agnostic: it drives real goroutines and real
// data structures, and delegates the actual application of updates to a
// FlushSink (the runtime applies them to the host-memory parameter slab;
// the simulator charges virtual time for them).
package p2f

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"frugal/internal/fault"
	"frugal/internal/lfht"
	"frugal/internal/obs"
	"frugal/internal/pq"
)

// KeyDelta is one parameter update produced by a trainer's backward pass.
// StateDelta carries the optimizer-state increment alongside the row delta
// (0 under plain SGD).
type KeyDelta struct {
	Key        uint64
	Delta      []float32
	StateDelta float32
}

// Batch is one prefetched global training batch from the sample queue.
type Batch struct {
	Step int64
	Keys []uint64
}

// FlushSink receives the pending updates of one parameter when a flushing
// thread drains its g-entry. Implementations apply them to host memory.
// Flush is called with the g-entry lock held, serialising flushes per key.
// The updates slice is owned by the controller and reused after Flush
// returns: implementations must not retain it (retaining the Delta buffers
// is equally off-limits — the runtime pools them).
type FlushSink interface {
	Flush(key uint64, updates []pq.Update)
}

// FlushSinkFunc adapts a function to the FlushSink interface.
type FlushSinkFunc func(key uint64, updates []pq.Update)

// Flush calls f.
func (f FlushSinkFunc) Flush(key uint64, updates []pq.Update) { f(key, updates) }

// TierSink is an optional FlushSink extension for sinks that manage a
// tiered parameter store. When the sink implements it, the controller
// routes every flush through FlushTiered instead of Flush, passing
// whether the flush was deferred — drained from the ∞ slot with no
// reader waiting inside the lookahead window — or urgent. Urgency is
// evidence of heat, so tier maintenance weighs the two differently.
// The same retention rules as Flush apply.
type TierSink interface {
	FlushSink
	FlushTiered(key uint64, updates []pq.Update, deferred bool)
}

// TraceSource provides the upcoming global batches, in training order.
// Implementations must be safe for use by the single prefetch goroutine.
type TraceSource interface {
	// Next returns the keys of the next global batch, or ok=false when the
	// trace is exhausted.
	Next() (keys []uint64, ok bool)
}

// Options configures a Controller.
type Options struct {
	// MaxStep is the number of training steps; step numbers are
	// 0 … MaxStep-1. Required.
	MaxStep int64
	// Lookahead is L, the prefetch depth of the sample queue (§3.2;
	// default 10).
	Lookahead int
	// FlushThreads is the number of background flushing threads
	// (default 8, the paper's evaluation default).
	FlushThreads int
	// Trainers is the number of training processes that commit updates
	// each step (one per GPU; default 1).
	Trainers int
	// Sink applies flushed updates to host memory. Required.
	Sink FlushSink
	// Source supplies the batch trace. Required.
	Source TraceSource
	// OnPrefetch, when non-nil, is invoked by the prefetch goroutine for
	// every batch it pulls from the trace, after the batch's future reads
	// are registered in the g-entry directory and before the batch is
	// published on the sample queue. The runtime's lookahead prefetcher
	// rides this hook to learn which keys batches S+1..S+L will touch.
	// The callback must not retain keys past its return (the slice is the
	// trace's) and must be fast — it runs on the prefetch goroutine and
	// backpressures the lookahead window.
	OnPrefetch func(step int64, keys []uint64)
	// Queue overrides the priority queue implementation (default: a
	// TwoLevelPQ sized for MaxStep). Exp #4 passes a TreeHeap here.
	Queue pq.Queue
	// DequeueBatchSize bounds each flusher's batched dequeue (default 64).
	DequeueBatchSize int
	// DirectoryHint sizes the g-entry directory (expected distinct hot
	// keys; default 1<<16).
	DirectoryHint int
	// Obs attaches the job's observability layer (nil = no-op): the
	// flusher pool reports dequeue/apply events and latency, the sample
	// queue its depth, and the priority queue its operation counts.
	Obs *obs.Observer
	// Faults is the deterministic fault injector consulted on the flusher
	// path (nil = no faults, the default).
	Faults *fault.Injector
	// Recovery configures the self-healing layer (heartbeats, respawns,
	// gate watchdog). The zero value enables it with defaults.
	Recovery Recovery
}

func (o *Options) normalize() error {
	if o.MaxStep <= 0 {
		return fmt.Errorf("p2f: MaxStep must be positive, got %d", o.MaxStep)
	}
	if o.Sink == nil {
		return errors.New("p2f: Sink is required")
	}
	if o.Source == nil {
		return errors.New("p2f: Source is required")
	}
	if o.Lookahead <= 0 {
		o.Lookahead = 10
	}
	if o.FlushThreads <= 0 {
		o.FlushThreads = 8
	}
	if o.Trainers <= 0 {
		o.Trainers = 1
	}
	if o.DequeueBatchSize <= 0 {
		o.DequeueBatchSize = 64
	}
	if o.DirectoryHint <= 0 {
		o.DirectoryHint = 1 << 16
	}
	o.Recovery.normalize()
	return nil
}

// Stats aggregates observable behaviour of the controller, for the
// experiment harness and tests.
type Stats struct {
	// StallTime is the total time trainers spent blocked in WaitForStep.
	StallTime time.Duration
	// Stalls counts WaitForStep calls that actually blocked.
	Stalls int64
	// FlushedUpdates counts individual ⟨step, Δ⟩ updates flushed.
	FlushedUpdates int64
	// DeferredFlushes counts g-entries that were flushed from the ∞
	// priority slot — updates P²F successfully pushed off the critical
	// path (the k₃ case of Fig 6).
	DeferredFlushes int64
	// UrgentFlushes counts g-entries flushed with a finite priority.
	UrgentFlushes int64
	// PrefetchedSteps is the number of batches registered in read sets.
	PrefetchedSteps int64
	// CommittedSteps is the number of fully committed steps.
	CommittedSteps int64
	// CoalescedFlushes counts FlushKeyShared callers that piggybacked on
	// another caller's in-flight flush instead of running their own —
	// refresh-storm pressure the singleflight layer absorbed.
	CoalescedFlushes int64
}

// Controller orchestrates P²F: it owns the g-entry directory, the priority
// queue, the prefetch goroutine filling the sample queue, and the flusher
// pool. One Controller serves all training processes of a job.
type Controller struct {
	opt   Options
	queue pq.Queue
	dir   *lfht.Map[*pq.GEntry]

	// tierSink caches the Sink's TierSink extension (nil when the sink
	// implements only Flush), so the flush hot path pays a nil check
	// instead of a per-flush type assertion.
	tierSink TierSink

	sample chan Batch // the sample queue: capacity = Lookahead

	mu            sync.Mutex
	gate          *sync.Cond
	commits       map[int64]int
	committedStep int64 // all trainers have committed steps ≤ this

	// watermark mirrors committedStep for lock-free readers (the serving
	// layer checks it on every bounded-staleness read; taking c.mu there
	// would contend with the gate). Updated under c.mu, so it is monotone.
	watermark atomic.Int64

	stopping atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool

	stallNanos      atomic.Int64
	stalls          atomic.Int64
	flushedUpdates  atomic.Int64
	deferredFlushes atomic.Int64
	urgentFlushes   atomic.Int64
	prefetchedSteps atomic.Int64

	// Singleflight state for FlushKeyShared: at most one serving-triggered
	// flush per key is in flight; concurrent requesters wait on it.
	flightMu  sync.Mutex
	flight    map[uint64]*flushCall
	coalesced atomic.Int64

	// flushHooks holds the registered flush observers ([]func(uint64)),
	// copy-on-write so notifyFlush stays lock-free. See AddFlushHook.
	flushHooks atomic.Value
	hookMu     sync.Mutex

	// Self-healing state (see recovery.go). waiters counts trainers
	// currently blocked in WaitForStep — the watchdog's "someone is owed
	// progress" signal. degraded flips once, to write-through mode.
	slots          []*flusherSlot
	waiters        atomic.Int64
	degraded       atomic.Bool
	degradedStep   atomic.Int64
	crashes        atomic.Int64
	stallsDetected atomic.Int64
	respawns       atomic.Int64
	redistributed  atomic.Int64

	// Observability sinks (nil = no-op, the default).
	fl       *obs.FlushObs
	tracer   *obs.Tracer
	faultObs *obs.FaultObs
}

// NewController validates opt and builds a controller. Call Start to launch
// the prefetch and flusher goroutines.
func NewController(opt Options) (*Controller, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	q := opt.Queue
	if q == nil {
		var err error
		q, err = pq.NewTwoLevelPQ(pq.TwoLevelOptions{
			MaxStep:   opt.MaxStep,
			TableHint: opt.DirectoryHint / 16,
		})
		if err != nil {
			return nil, err
		}
	}
	c := &Controller{
		opt:           opt,
		queue:         q,
		dir:           lfht.NewWithHint[*pq.GEntry](opt.DirectoryHint),
		sample:        make(chan Batch, opt.Lookahead),
		commits:       make(map[int64]int),
		flight:        make(map[uint64]*flushCall),
		committedStep: -1,
		stop:          make(chan struct{}),
		fl:            opt.Obs.FlushSink(),
		tracer:        opt.Obs.TraceSink(),
		faultObs:      opt.Obs.FaultSink(),
	}
	c.tierSink, _ = opt.Sink.(TierSink)
	c.watermark.Store(-1)
	c.degradedStep.Store(-1)
	c.slots = make([]*flusherSlot, opt.FlushThreads)
	for i := range c.slots {
		c.slots[i] = &flusherSlot{}
	}
	if po := opt.Obs.PQSink(); po != nil {
		if qo, ok := q.(interface{ SetObserver(*obs.PQObs) }); ok {
			qo.SetObserver(po)
		}
	}
	c.gate = sync.NewCond(&c.mu)
	return c, nil
}

// Queue exposes the controller's priority queue (tests, harness).
func (c *Controller) Queue() pq.Queue { return c.queue }

// Start launches the prefetch goroutine and the flusher pool.
func (c *Controller) Start() {
	if c.started {
		panic("p2f: Controller started twice")
	}
	c.started = true
	c.wg.Add(1)
	go c.prefetchLoop()
	now := time.Now().UnixNano()
	for i := 0; i < c.opt.FlushThreads; i++ {
		c.slots[i].heartbeat.Store(now)
		c.wg.Add(1)
		go c.flusherLoop(i, 0)
	}
	if !c.opt.Recovery.Disabled {
		c.wg.Add(1)
		go c.supervisorLoop()
	}
}

// Stop terminates the background goroutines. Pending (deferred) updates
// that were never drained stay in the queue; call DrainAll first to flush
// everything, as the paper's epilogue does ("after training, the system
// waits for flushing threads to write all deferred parameter updates").
func (c *Controller) Stop() {
	if c.stopping.Swap(true) {
		return
	}
	close(c.stop)
	c.broadcast()
	c.wg.Wait()
}

func (c *Controller) broadcast() {
	c.mu.Lock()
	c.gate.Broadcast()
	c.mu.Unlock()
}

// ----------------------------------------------------------------------
// Prefetch (sample queue)

// prefetchLoop pulls batches from the trace source, registers their keys'
// future reads in the g-entry directory, and publishes the batch on the
// sample queue. The channel's capacity is the lookahead depth L, so the
// loop naturally stays exactly L steps ahead of training.
func (c *Controller) prefetchLoop() {
	defer c.wg.Done()
	defer close(c.sample)
	for step := int64(0); step < c.opt.MaxStep; step++ {
		if c.stopping.Load() {
			return
		}
		keys, ok := c.opt.Source.Next()
		if !ok {
			return
		}
		c.registerReads(step, keys)
		if c.opt.OnPrefetch != nil {
			// After registerReads: by the time the runtime's prefetcher sees
			// the keys, their future reads are already visible to the gate.
			c.opt.OnPrefetch(step, keys)
		}
		c.prefetchedSteps.Add(1)
		select {
		case c.sample <- Batch{Step: step, Keys: keys}:
			c.fl.SampleDepth(len(c.sample))
		case <-c.stop:
			return
		}
	}
}

// registerReads inserts step into the read set of every key's g-entry and
// adjusts queued priorities (an entry with pending writes becomes more
// urgent when an upcoming read is discovered).
func (c *Controller) registerReads(step int64, keys []uint64) {
	for _, k := range keys {
		g, _ := c.dir.GetOrInsert(k, func() *pq.GEntry { return pq.NewGEntry(k) })
		g.Mu.Lock()
		g.AddRead(step)
		newP := g.ComputePriority()
		switch {
		case g.InQueue:
			if newP != g.Priority {
				c.queue.AdjustPriority(g, g.Priority, newP)
			}
		case len(g.W) > 0:
			// The entry is checked out by a flusher (claimed but not yet
			// flushed). The new read makes its pending write urgent again;
			// re-enqueueing keeps it visible to the consistency gate —
			// without this, a read registered in the claim→flush window
			// could slip past Top() and observe a stale host row. The
			// flusher's eventual TakeWrites leaves a benign empty residue.
			c.queue.Enqueue(g, newP)
		}
		g.Mu.Unlock()
	}
}

// NextBatch pops the next prefetched batch from the sample queue. ok=false
// when the trace is exhausted (or the controller is stopping).
func (c *Controller) NextBatch() (Batch, bool) {
	b, ok := <-c.sample
	return b, ok
}

// NextBatchCtx is NextBatch with cancellation: ok=false as soon as ctx is
// done, even if the prefetcher still has batches in flight.
func (c *Controller) NextBatchCtx(ctx context.Context) (Batch, bool) {
	select {
	case b, ok := <-c.sample:
		return b, ok
	case <-ctx.Done():
		return Batch{}, false
	}
}

// SampleDepth reports the current fill of the sample (lookahead) queue.
func (c *Controller) SampleDepth() int { return len(c.sample) }

// ----------------------------------------------------------------------
// Consistency gate

// WaitForStep blocks until training step s may start: all trainers have
// committed step s-1 (so every pending update is visible to the queue) and
// the priority at the front of the queue is strictly greater than s
// (invariant (2) of §3.3 — no g-entry has both a pending write and an
// upcoming read at a step ≤ s). It returns the time spent blocked.
func (c *Controller) WaitForStep(s int64) time.Duration {
	c.waiters.Add(1)
	defer c.waiters.Add(-1)
	var stalled time.Duration
	c.mu.Lock()
	for !c.stepReady(s) && !c.stopping.Load() {
		if c.degraded.Load() {
			// Write-through mode: no pool is owed this work anymore.
			// Drain the backlog from this trainer's own goroutine, then
			// re-evaluate (commits still arrive via commitDegraded).
			c.mu.Unlock()
			c.drainSync(-1)
			c.mu.Lock()
			if c.stepReady(s) || c.stopping.Load() {
				break
			}
		}
		start := time.Now()
		c.gate.Wait()
		stalled += time.Since(start)
	}
	c.mu.Unlock()
	if stalled > 0 {
		c.stallNanos.Add(int64(stalled))
		c.stalls.Add(1)
	}
	// Scan-range compression: once the gate for s passes, no g-entry can
	// carry a finite priority below s+1 anymore (§3.4).
	if r, ok := c.queue.(interface{ RaiseLowerBound(int64) }); ok {
		r.RaiseLowerBound(s + 1)
	}
	return stalled
}

// stepReady evaluates the gate condition. Caller holds c.mu.
func (c *Controller) stepReady(s int64) bool {
	if c.committedStep < s-1 {
		return false
	}
	return c.queue.Top() > s
}

// ----------------------------------------------------------------------
// Update staging (commit path)

// CommitStep records one trainer's parameter updates for step s: each
// key's read set drops s, the gradient joins the write set, and the
// g-entry is (re-)queued under its new priority. When all trainers have
// committed s the committed watermark advances and gate waiters wake.
//
// Synchronous training contract: all trainers must have finished *reading*
// step s before any trainer commits it (the runtime enforces this with its
// step barrier).
//
// The updates slice itself is not retained — callers may reuse it for the
// next step. The Delta buffers inside it ARE retained (they join the write
// sets) until a flushing thread hands them to the FlushSink; a pooling
// caller gets them back through its sink.
func (c *Controller) CommitStep(s int64, updates []KeyDelta) {
	if c.degraded.Load() {
		c.commitDegraded(s, updates)
		return
	}
	for _, kd := range updates {
		g, _ := c.dir.GetOrInsert(kd.Key, func() *pq.GEntry { return pq.NewGEntry(kd.Key) })
		g.Mu.Lock()
		g.RemoveRead(s)
		g.AddWriteState(s, kd.Delta, kd.StateDelta)
		newP := g.ComputePriority()
		if g.InQueue {
			if newP != g.Priority {
				c.queue.AdjustPriority(g, g.Priority, newP)
			}
		} else {
			c.queue.Enqueue(g, newP)
		}
		g.Mu.Unlock()
	}
	c.mu.Lock()
	c.commits[s]++
	if c.commits[s] == c.opt.Trainers {
		delete(c.commits, s)
		if s > c.committedStep {
			c.committedStep = s
			c.watermark.Store(s)
		}
	}
	c.gate.Broadcast()
	c.mu.Unlock()
}

// ReadDone removes step s from the read sets of keys that were read but
// not updated at step s (e.g. an inference-only pass). Updated keys are
// handled by CommitStep.
func (c *Controller) ReadDone(s int64, keys []uint64) {
	for _, k := range keys {
		g, ok := c.dir.Get(k)
		if !ok {
			continue
		}
		g.Mu.Lock()
		if g.RemoveRead(s) && g.InQueue {
			if newP := g.ComputePriority(); newP != g.Priority {
				c.queue.AdjustPriority(g, g.Priority, newP)
			}
		}
		g.Mu.Unlock()
	}
}

// ----------------------------------------------------------------------
// Serving support (internal/serve)
//
// The serving layer reads parameters straight from host memory while
// training runs. Host memory lags the logical training state by whatever
// the flusher pool has not applied yet, so these three primitives expose
// the freshness bound: the committed-step watermark, a per-key flush lag
// against it, and a synchronous force-flush for reads that cannot
// tolerate any lag.

// AddFlushHook registers fn to be called with the key of every write set
// the controller pushes through its sink — the flusher pool, FlushKey,
// and the degraded write-through path alike. It is the index-maintenance
// feed: a hook pairs the key with the watermark current at notification
// time to bound how far a derived structure (e.g. the serving layer's IVF
// index) lags host memory.
//
// Contract: fn runs on the flushing goroutine with the key's g-entry lock
// held, so it must be cheap and non-blocking (enqueue work, never flush,
// query, or take slow locks). Hooks cannot be removed; register before
// serving traffic starts.
func (c *Controller) AddFlushHook(fn func(key uint64)) {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	var hooks []func(uint64)
	if v := c.flushHooks.Load(); v != nil {
		old := v.([]func(uint64))
		hooks = make([]func(uint64), len(old), len(old)+1)
		copy(hooks, old)
	}
	c.flushHooks.Store(append(hooks, fn))
}

// notifyFlush invokes the registered flush hooks. Called with g.Mu held
// at every Sink.Flush site; lock-free for the common no-hook case.
func (c *Controller) notifyFlush(key uint64) {
	v := c.flushHooks.Load()
	if v == nil {
		return
	}
	for _, fn := range v.([]func(uint64)) {
		fn(key)
	}
}

// Watermark returns the committed-step watermark: every trainer has
// committed all steps ≤ the returned value (-1 before the first step
// completes). Together with RowStaleness it bounds how far a host row can
// lag the training frontier. Lock-free; safe from any goroutine.
func (c *Controller) Watermark() int64 { return c.watermark.Load() }

// RowStaleness reports how many gate steps the host copy of key may lag
// the committed watermark. lag = 0 means every committed update of the
// key has been flushed to host memory; lag = n > 0 means updates from the
// n most recent committed steps may still be pending in the key's write
// set. The watermark is loaded *before* the write set is inspected, so
// the guarantee is one-sided in the safe direction: the host row is
// missing at most `lag` committed steps relative to the returned
// watermark (commits that land after the call can only make the row
// fresher, never staler than reported).
func (c *Controller) RowStaleness(key uint64) (lag, watermark int64) {
	wm := c.watermark.Load()
	g, ok := c.dir.Get(key)
	if !ok {
		return 0, wm // never touched by training: host copy is authoritative
	}
	oldest := int64(-1)
	g.Mu.Lock()
	if len(g.W) > 0 {
		oldest = g.W[0].Step // W is appended in commit order: oldest first
	}
	g.Mu.Unlock()
	if oldest < 0 {
		return 0, wm
	}
	if lag = wm - oldest + 1; lag < 0 {
		lag = 0 // pending write from an uncommitted (in-flight) step only
	}
	return lag, wm
}

// FlushKey synchronously drains key's pending write set through the sink,
// making the host row reflect every update committed so far. It reports
// whether anything was flushed. This is the `fresh` serve level's
// mechanism: the inline flush mirrors commitDegraded's write-through
// critical section (g.Mu held across TakeWrites → Sink.Flush →
// FlushedWrites, which also excludes the flusher pool — ProcessBatch runs
// its visit under the same lock), and the emptied entry then rides the
// AdjustPriority path to the ∞ slot so the consistency gate's Top() scan
// stops charging it for work that is already on the host. The residue
// node left in the queue is culled by the next flusher visit, exactly
// like a crash-redistributed entry.
func (c *Controller) FlushKey(key uint64) bool {
	g, ok := c.dir.Get(key)
	if !ok {
		return false
	}
	g.Mu.Lock()
	if len(g.W) == 0 {
		g.Mu.Unlock()
		return false
	}
	w := g.TakeWrites()
	c.sinkFlush(g.Key, w, false)
	c.notifyFlush(g.Key)
	c.flushedUpdates.Add(int64(len(w)))
	c.urgentFlushes.Add(1)
	g.FlushedWrites(w) // Mu held throughout; sink does not retain w
	if g.InQueue && g.Priority != pq.Inf {
		c.queue.AdjustPriority(g, g.Priority, pq.Inf)
	}
	g.Mu.Unlock()
	c.broadcast() // the gate may have been waiting on exactly this entry
	return true
}

// sinkFlush hands a drained write set to the sink, routing through the
// TierSink extension when the sink implements it.
func (c *Controller) sinkFlush(key uint64, w []pq.Update, deferred bool) {
	if c.tierSink != nil {
		c.tierSink.FlushTiered(key, w, deferred)
		return
	}
	c.opt.Sink.Flush(key, w)
}

// flushCall is one in-flight FlushKeyShared execution. wm is the
// committed-step watermark loaded by the leader *before* its TakeWrites:
// every update committed at or before wm is covered by this flush, so a
// waiter that only needs freshness up to wm may safely piggyback.
type flushCall struct {
	done    chan struct{}
	wm      int64
	flushed bool
}

// FlushKeyShared is FlushKey with singleflight coalescing: when N
// concurrent readers of one hot stale key all demand a refresh, one of
// them runs the flush and the rest wait on it — one urgent flush instead
// of N goroutines hammering the g-entry lock (and, through broadcast, the
// controller mutex the trainers' gate sleeps on). This is the serving
// layer's refresh path for `fresh` and over-bound `bounded(k)` reads.
//
// Coalescing preserves the freshness contract: a waiter joins an
// in-flight call only if that call's watermark (loaded before its
// TakeWrites) covers the watermark current at the waiter's own entry.
// Otherwise the in-flight flush may predate commits the waiter must
// observe, and the waiter retries after it completes — at most one extra
// flush, never a stale admit.
func (c *Controller) FlushKeyShared(key uint64) bool {
	need := c.watermark.Load()
	for {
		c.flightMu.Lock()
		if call, ok := c.flight[key]; ok {
			joinable := call.wm >= need
			c.flightMu.Unlock()
			<-call.done
			if joinable {
				c.coalesced.Add(1)
				return call.flushed
			}
			continue // the in-flight flush started before our watermark
		}
		call := &flushCall{done: make(chan struct{}), wm: c.watermark.Load()}
		c.flight[key] = call
		c.flightMu.Unlock()

		call.flushed = c.FlushKey(key)

		c.flightMu.Lock()
		delete(c.flight, key)
		c.flightMu.Unlock()
		close(call.done)
		return call.flushed
	}
}

// ----------------------------------------------------------------------
// Flusher pool

// flusherLoop is one background flushing thread (§3.2 component 4): it
// processes the highest-priority g-entries in batches, applying their
// pending updates through the sink. ProcessBatch runs flushEntry while
// the entry is still visible to the queue, so the consistency gate never
// opens for a step whose parameters are mid-flush.
//
// gen is the slot generation this goroutine was spawned under: the loop
// exits as soon as the supervisor bumps the slot's generation (a stalled
// thread that wakes up finds itself superseded by its replacement). Each
// iteration heartbeats, then consults the fault injector with the slot's
// lifetime dequeue-batch ordinal.
func (c *Controller) flusherLoop(id int, gen int64) {
	defer c.wg.Done()
	slot := c.slots[id]
	flush := func(g *pq.GEntry, slotPriority int64) bool {
		return c.flushEntry(id, g, slotPriority)
	}
	for {
		if c.stopping.Load() || slot.gen.Load() != gen {
			return
		}
		slot.heartbeat.Store(time.Now().UnixNano())
		batch := slot.batches.Add(1)
		if act, dur := c.opt.Faults.Flusher(id, batch); act != fault.ActNone {
			c.faultObs.Injected(id, batch, int64(actionKind(act)))
			if act == fault.ActCrash {
				c.crashFlusher(id, slot)
				return
			}
			// Stall: sleep without heartbeating. If the stall outlives
			// StallTimeout the supervisor supersedes this generation.
			c.sleepFault(dur)
			continue
		}
		n := c.queue.ProcessBatch(c.opt.DequeueBatchSize, flush)
		if n > 0 {
			// Flushes applied or residues culled: the gate may be open.
			c.broadcast()
			continue
		}
		time.Sleep(30 * time.Microsecond)
	}
}

// actionKind maps a flusher-path injector action to its fault kind code
// for the trace.
func actionKind(a fault.Action) fault.Kind {
	if a == fault.ActCrash {
		return fault.KindFlusherCrash
	}
	return fault.KindFlusherStall
}

// flushEntry drains one g-entry's write set through the sink. Called by
// ProcessBatch with g.Mu held; reports whether the entry was claimed.
// flusher identifies the calling thread for the observability layer.
func (c *Controller) flushEntry(flusher int, g *pq.GEntry, slotPriority int64) bool {
	if !g.InQueue || g.Priority != slotPriority {
		return false // stale residue, or a duplicate concurrent visit
	}
	g.InQueue = false
	w := g.TakeWrites()
	if len(w) == 0 {
		return true // residue of a commit that re-queued a claimed entry
	}
	deferred := slotPriority == pq.Inf
	if deferred {
		c.deferredFlushes.Add(1)
	} else {
		c.urgentFlushes.Add(1)
	}
	var start time.Time
	if c.fl != nil {
		c.fl.Dequeued(flusher, g.Key, len(w))
		start = time.Now()
	}
	c.sinkFlush(g.Key, w, deferred)
	c.notifyFlush(g.Key)
	c.flushedUpdates.Add(int64(len(w)))
	// g.Mu has been held since TakeWrites and the sink is done with the
	// slice (FlushSink must not retain it), so the entry can reuse its
	// capacity for the next write burst.
	g.FlushedWrites(w)
	if c.fl != nil {
		c.fl.Applied(flusher, g.Key, len(w), deferred, time.Since(start))
	}
	return true
}

// DrainAll blocks until every pending update has been flushed to the sink
// — the end-of-training epilogue. It must not be called concurrently with
// new CommitStep activity. The drain is cooperative: the caller flushes
// alongside the pool, so the epilogue completes even if every flushing
// thread has died and the respawn budget is spent.
func (c *Controller) DrainAll() {
	c.drainSync(-1)
}

// ----------------------------------------------------------------------
// Introspection

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	committed := c.committedStep + 1
	c.mu.Unlock()
	return Stats{
		StallTime:        time.Duration(c.stallNanos.Load()),
		Stalls:           c.stalls.Load(),
		FlushedUpdates:   c.flushedUpdates.Load(),
		DeferredFlushes:  c.deferredFlushes.Load(),
		UrgentFlushes:    c.urgentFlushes.Load(),
		PrefetchedSteps:  c.prefetchedSteps.Load(),
		CommittedSteps:   committed,
		CoalescedFlushes: c.coalesced.Load(),
	}
}

// Entry returns the g-entry for key if one exists (tests, invariants).
func (c *Controller) Entry(key uint64) (*pq.GEntry, bool) { return c.dir.Get(key) }

// CheckInvariant verifies invariant (2) of §3.3 for step s over the given
// keys: no key that step s is about to read may still have a pending
// (unflushed) write. It returns an error naming the first violating key.
// The runtime calls this after the gate in tests and debug builds; it
// must observe no violation, ever — that is the formal guarantee of P²F.
func (c *Controller) CheckInvariant(s int64, keys []uint64) error {
	for _, k := range keys {
		g, ok := c.dir.Get(k)
		if !ok {
			continue
		}
		g.Mu.Lock()
		bad := len(g.W) > 0
		detail := ""
		if bad {
			detail = g.String()
			for _, u := range g.W {
				detail += fmt.Sprintf(" w@%d", u.Step)
			}
			detail += fmt.Sprintf(" inQ=%v top=%d", g.InQueue, c.queue.Top())
		}
		g.Mu.Unlock()
		if bad {
			return fmt.Errorf("p2f: consistency violation at step %d: key %d: %s", s, k, detail)
		}
	}
	return nil
}
