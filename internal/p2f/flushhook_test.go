package p2f

import (
	"sync"
	"testing"

	"frugal/internal/pq"
)

// TestFlushHookFiresOnEveryFlushPath checks the index-maintenance feed:
// every path that pushes a write set through the sink — the flusher pool,
// the serving layer's FlushKey, and the degraded write-through commit —
// notifies each registered hook with the flushed key, after the sink has
// applied the writes.
func TestFlushHookFiresOnEveryFlushPath(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[uint64]int)
	sinkApplied := make(map[uint64]int)
	sink := FlushSinkFunc(func(k uint64, updates []pq.Update) {
		mu.Lock()
		sinkApplied[k]++
		mu.Unlock()
	})
	c, err := NewController(Options{MaxStep: 4, Sink: sink, Source: &sliceSource{}})
	if err != nil {
		t.Fatal(err)
	}
	hook := func(k uint64) {
		mu.Lock()
		// Ordering contract: by the time the hook fires the sink has
		// already applied this flush.
		if sinkApplied[k] <= seen[k] {
			t.Errorf("hook for key %d fired before its sink flush", k)
		}
		seen[k]++
		mu.Unlock()
	}
	c.AddFlushHook(hook)
	c.AddFlushHook(func(uint64) {}) // a second hook must not displace the first

	// Path 1: synchronous FlushKey (the fresh-read path).
	c.CommitStep(0, []KeyDelta{{Key: 1, Delta: []float32{1}}})
	if !c.FlushKey(1) {
		t.Fatal("FlushKey(1) flushed nothing")
	}
	// Path 2: drainSync / flushEntry (the flusher-pool path).
	c.CommitStep(1, []KeyDelta{{Key: 2, Delta: []float32{1}}})
	c.DrainAll()

	mu.Lock()
	defer mu.Unlock()
	if seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("hook notifications = %v, want keys 1 and 2 once each", seen)
	}
}
