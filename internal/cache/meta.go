package cache

import (
	"fmt"

	"frugal/internal/obs"
)

// Meta is the bookkeeping half of the embedding cache: the set-associative
// directory with frequency-aware eviction and version-based freshness, but
// no row storage. The performance simulator uses it to track hit rates
// over key spaces far too large to materialise (CriteoTB's 882 M rows);
// Cache composes it with a row slab for the real runtime.
type Meta struct {
	sets     int
	slots    []slot
	hits     int64
	misses   int64
	stale    int64
	inserted int64
	evicted  int64
	// epoch implements slot pinning (see BeginEpoch). 0 means pinning is
	// disabled — the simulator's Meta-only users never call BeginEpoch and
	// keep the historical always-evictable behaviour.
	epoch uint64
	// pinRejects counts fill calls rejected because every unblocked slot of
	// the set was pinned by the current epoch; winPinRejects counts fills
	// where at least one slot was blocked purely by a window pin (the
	// lookahead prefetcher's reservation). The split tells capacity pressure
	// from this step's gathers apart from pressure from future batches.
	pinRejects    int64
	winPinRejects int64
	// Prefetch accounting: fills issued by the lookahead prefetcher, and
	// their fate — hit (served at least one demand lookup), late (went stale
	// before any use), wasted (evicted before any use).
	prefFills, prefHits, prefLate, prefWasted int64
	// fillsSinceAge schedules frequency aging: every time it reaches the
	// directory capacity (one full turnover's worth of fills), every slot's
	// freq is halved. Without decay, frequencies only ever rise, so after a
	// distribution shift the stale-hot residents are effectively
	// unevictable — a new key enters with freq 1 and is always the next
	// victim, thrashing against its own working set. Deliberately separate
	// from the resettable `inserted` stat so ResetStats cannot perturb the
	// aging cadence. agings counts completed halving passes (tests, Stats).
	fillsSinceAge int64
	agings        int64

	// obs mirrors the counters into the job's observability layer so a
	// live Snapshot can read them race-free while the owning trainer runs
	// (the plain int64 fields above are single-owner). gpu identifies the
	// owning trainer's counter shard. nil obs (the default) is a no-op.
	obs *obs.CacheObs
	gpu int
}

// NewMeta builds a directory with room for at least `rows` entries.
func NewMeta(rows int) (*Meta, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("cache: rows must be positive, got %d", rows)
	}
	sets := (rows + Ways - 1) / Ways
	m := &Meta{sets: sets, slots: make([]slot, sets*Ways)}
	for i := range m.slots {
		m.slots[i].key = emptyKey
	}
	return m, nil
}

// MustNewMeta is NewMeta for static configurations.
func MustNewMeta(rows int) *Meta {
	m, err := NewMeta(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the directory capacity in entries.
func (m *Meta) Rows() int { return m.sets * Ways }

// SetObserver attaches an observability sink (nil detaches) and the GPU
// id used as its counter shard. Call before the cache sees traffic.
func (m *Meta) SetObserver(o *obs.CacheObs, gpu int) {
	m.obs = o
	m.gpu = gpu
}

func (m *Meta) set(key uint64) int {
	h := key
	h ^= h >> 33
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return int(h % uint64(m.sets))
}

// BeginEpoch starts a new pinning epoch. The runtime calls it once per
// training step, before the gather phase: every slot the epoch touches
// (hit or fill) is pinned — exempt from eviction — until the next
// BeginEpoch, so the gather phase may hand out rows that alias cache
// storage without a later insert in the same step reusing them. Callers
// that never BeginEpoch (the simulator's Meta-only hit-rate tracking) get
// the historical always-evictable behaviour.
func (m *Meta) BeginEpoch() {
	m.epoch++
	if m.epoch == 0 { // uint64 wrap: re-arm rather than disable
		m.epoch = 1
		for i := range m.slots {
			m.slots[i].epoch = 0
		}
	}
}

// pinned reports whether slot storage may be aliased by the current epoch.
func (m *Meta) pinned(s *slot) bool {
	return m.epoch != 0 && s.epoch == m.epoch
}

// blocked reports whether a slot is exempt from eviction: pinned by the
// current epoch (its storage may be aliased by this step's gathers) or
// window-pinned (a batch inside the lookahead window still needs it).
func (m *Meta) blocked(s *slot) bool {
	return s.win > 0 || m.pinned(s)
}

// probe returns the slot index of a live, fresh entry for key, or -1.
// Present-but-stale entries are invalidated and counted; their slot keeps
// its pin (the storage may still be aliased by this epoch's earlier hits).
func (m *Meta) probe(key uint64, wantVersion uint64) int {
	base := m.set(key) * Ways
	for i := base; i < base+Ways; i++ {
		s := &m.slots[i]
		if s.key != key {
			continue
		}
		if s.version < wantVersion {
			s.key = emptyKey
			if s.pf && !s.pfUsed {
				// A prefetched row invalidated before any demand use: the
				// fill lost the race with a flush — late, not wasted.
				m.prefLate++
				m.obs.PrefetchLate(m.gpu)
			}
			s.pf = false
			m.stale++
			m.misses++
			m.obs.Miss(m.gpu, key, true)
			return -1
		}
		bumpFreq(s)
		s.epoch = m.epoch
		if s.pf {
			s.pfUsed = true
			m.prefHits++
			m.obs.PrefetchHit(m.gpu)
		}
		m.hits++
		m.obs.Hit(m.gpu, key)
		return i
	}
	m.misses++
	m.obs.Miss(m.gpu, key, false)
	return -1
}

// Probe reports whether key is cached at a version ≥ wantVersion,
// updating hit/miss statistics.
func (m *Meta) Probe(key uint64, wantVersion uint64) bool {
	return m.probe(key, wantVersion) >= 0
}

// Contains reports presence at any version without touching statistics.
func (m *Meta) Contains(key uint64) bool {
	base := m.set(key) * Ways
	for i := base; i < base+Ways; i++ {
		if m.slots[i].key == key {
			return true
		}
	}
	return false
}

// fill claims a slot for key at version, evicting the least-frequently
// used entry of the set when necessary, and returns the slot index plus
// eviction info. Slots pinned by the current epoch — including
// invalidated-but-pinned ones, whose storage may still be aliased — and
// window-pinned slots (needed by a batch inside the lookahead window) are
// never chosen; when the whole set is blocked, fill returns slotIdx -1 and
// the caller must fall back to private scratch storage. prefetch marks a
// fill issued by the lookahead prefetcher: the claimed slot is tagged pf
// and NOT epoch-pinned (the prefetcher hands out no aliases; window pins
// are its protection).
func (m *Meta) fill(key uint64, version uint64, prefetch bool) (slotIdx int, evicted uint64, wasEviction bool) {
	base := m.set(key) * Ways
	victim := -1
	var victimFreq uint32 = ^uint32(0)
	winBlocked := false
	for i := base; i < base+Ways; i++ {
		s := &m.slots[i]
		if s.key == key {
			s.version = version
			bumpFreq(s)
			if !prefetch {
				s.epoch = m.epoch
			}
			return i, 0, false
		}
		if m.blocked(s) {
			if s.win > 0 && !m.pinned(s) {
				winBlocked = true
			}
			continue // storage aliased by this epoch's gathers, or reserved by the window
		}
		if s.key == emptyKey {
			if victim == -1 || m.slots[victim].key != emptyKey {
				victim = i
				victimFreq = 0
			}
			continue
		}
		if victim != -1 && m.slots[victim].key == emptyKey {
			continue // prefer empty slots over any eviction
		}
		if victim == -1 || s.freq < victimFreq {
			victim = i
			victimFreq = s.freq
		}
	}
	if victim == -1 {
		if winBlocked {
			m.winPinRejects++
		} else {
			m.pinRejects++
		}
		return -1, 0, false
	}
	s := &m.slots[victim]
	wasEviction = s.key != emptyKey
	evicted = s.key
	if wasEviction && s.pf && !s.pfUsed {
		// A prefetched row evicted before any demand use: a wasted fill.
		m.prefWasted++
		m.obs.PrefetchWasted(m.gpu)
	}
	s.key = key
	s.version = version
	s.freq = 1
	if prefetch {
		s.epoch = 0
	} else {
		s.epoch = m.epoch
	}
	// A freshly claimed slot is not (yet) a prefetched row: the prefetch
	// path sets pf via MarkPrefetched once the bytes have been copied.
	s.pf = false
	s.pfUsed = false
	m.inserted++
	if wasEviction {
		m.evicted++
	}
	m.obs.Insert(m.gpu, key, evicted, wasEviction)
	if m.fillsSinceAge++; m.fillsSinceAge >= int64(len(m.slots)) {
		m.fillsSinceAge = 0
		m.age()
	}
	return victim, evicted, wasEviction
}

// bumpFreq is the saturating frequency increment: a counter that wrapped
// to 0 would turn the hottest slot of its set into the next eviction
// victim, so the top value sticks (aging halves it back into range).
func bumpFreq(s *slot) {
	if s.freq != ^uint32(0) {
		s.freq++
	}
}

// age halves every slot's frequency — the periodic decay that lets a
// post-shift working set outcompete stale-hot residents. Scheduled by
// fill after every capacity's worth of inserts, so the amortised cost is
// O(1) per insert and a static workload (no fills) never pays it; the
// relative LFU order within a set is preserved across a pass.
func (m *Meta) age() {
	for i := range m.slots {
		m.slots[i].freq >>= 1
	}
	m.agings++
}

// Agings reports how many frequency-halving passes have run (tests and
// diagnostics; see age).
func (m *Meta) Agings() int64 { return m.agings }

// Fill records key at version (the slab-less insert used by the
// simulator). It returns the evicted key, if any. With every slot of the
// set pinned (possible only after BeginEpoch) the fill is dropped.
func (m *Meta) Fill(key uint64, version uint64) (evicted uint64, wasEviction bool) {
	_, ev, was := m.fill(key, version, false)
	return ev, was
}

// PinRejects reports how many fills were dropped because every eligible
// slot of the set was pinned by the current epoch (cache-bypass events;
// tests and diagnostics). Fills blocked by window pins are counted
// separately — see WindowPinRejects.
func (m *Meta) PinRejects() int64 { return m.pinRejects }

// WindowPinRejects reports how many fills were dropped with at least one
// slot of the set blocked purely by a window pin (a lookahead-window
// reservation rather than this step's own gathers).
func (m *Meta) WindowPinRejects() int64 { return m.winPinRejects }

// ----------------------------------------------------------------------
// Lookahead-prefetch surface (window pinning). All methods are
// single-threaded like the rest of Meta; the runtime serialises the
// prefetch stage against the gather/apply phases with its own lock.

// PeekSlot locates key's slot without touching the hit/miss statistics —
// the prefetcher's probe, which must not pollute demand-miss accounting.
// Returns the slot index, or -1 when the key is not resident (any version).
func (m *Meta) PeekSlot(key uint64) int {
	base := m.set(key) * Ways
	for i := base; i < base+Ways; i++ {
		if m.slots[i].key == key {
			return i
		}
	}
	return -1
}

// SlotVersion returns the version tag of a slot located by PeekSlot.
func (m *Meta) SlotVersion(i int) uint64 { return m.slots[i].version }

// SlotEpochPinned reports whether the slot's storage may be aliased by the
// current epoch's gathers — if so, the prefetcher must not rewrite its
// bytes in place.
func (m *Meta) SlotEpochPinned(i int) bool { return m.pinned(&m.slots[i]) }

// WindowPin increments the slot's window refcount: one more batch inside
// the lookahead window needs it. While the count is nonzero the slot is
// exempt from eviction.
func (m *Meta) WindowPin(i int) { m.slots[i].win++ }

// WindowUnpin decrements the slot's window refcount (a batch that needed
// the slot has retired). Pin/unpin calls are balanced by the prefetcher's
// per-batch pin ring, so the count cannot underflow; the guard keeps a
// bookkeeping bug from turning into a permanently pinned set.
func (m *Meta) WindowUnpin(i int) {
	if s := &m.slots[i]; s.win > 0 {
		s.win--
	}
}

// MarkPrefetched records a completed prefetch fill (or in-place refill) of
// slot i at the given version: the row bytes were just copied from the
// host slab under its row lock, so version is exact — never ahead of the
// content. A previous unused prefetch fill of the same slot counts as late
// (its bytes were refreshed before any use, so the earlier read bought
// nothing).
func (m *Meta) MarkPrefetched(i int, version uint64) {
	s := &m.slots[i]
	if s.pf && !s.pfUsed {
		m.prefLate++
		m.obs.PrefetchLate(m.gpu)
	}
	s.version = version
	s.pf = true
	s.pfUsed = false
	m.prefFills++
	m.obs.PrefetchFill(m.gpu)
}

// Bump updates the stored version of a cached key; reports presence.
func (m *Meta) Bump(key uint64, version uint64) bool {
	base := m.set(key) * Ways
	for i := base; i < base+Ways; i++ {
		if m.slots[i].key == key {
			m.slots[i].version = version
			return true
		}
	}
	return false
}

// Invalidate drops key if present.
func (m *Meta) Invalidate(key uint64) bool {
	base := m.set(key) * Ways
	for i := base; i < base+Ways; i++ {
		if m.slots[i].key == key {
			m.slots[i].key = emptyKey
			return true
		}
	}
	return false
}

// Stats returns a snapshot of the counters.
func (m *Meta) Stats() Stats {
	return Stats{Hits: m.hits, Misses: m.misses, StaleHits: m.stale,
		Inserted: m.inserted, Evicted: m.evicted,
		PrefetchFills: m.prefFills, PrefetchHits: m.prefHits,
		PrefetchLate: m.prefLate, PrefetchWasted: m.prefWasted,
		PinRejects: m.pinRejects, WindowPinRejects: m.winPinRejects}
}

// ResetStats clears the counters.
func (m *Meta) ResetStats() {
	m.hits, m.misses, m.stale, m.inserted, m.evicted = 0, 0, 0, 0, 0
	m.prefFills, m.prefHits, m.prefLate, m.prefWasted = 0, 0, 0, 0
	m.pinRejects, m.winPinRejects = 0, 0
}
