package cache

import "testing"

// keysInOneSet returns n distinct keys that all map to the same set of m,
// plus one extra key from the same set (the n+1'th).
func keysInOneSet(m *Meta, n int) []uint64 {
	target := m.set(0)
	keys := []uint64{0}
	for k := uint64(1); len(keys) < n; k++ {
		if m.set(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

// Without BeginEpoch (epoch 0) pinning is disabled and fill always finds a
// victim — the historical simulator behaviour.
func TestEpochZeroNeverRejects(t *testing.T) {
	m := MustNewMeta(Ways) // one set
	keys := keysInOneSet(m, Ways+4)
	for _, k := range keys {
		if _, ok := m.Fill(k, 1); false && ok {
			t.Fatal("unreachable")
		}
	}
	if got := m.PinRejects(); got != 0 {
		t.Fatalf("PinRejects = %d without BeginEpoch, want 0", got)
	}
}

// With every way of a set pinned by the current epoch, Insert must reject
// (dst == nil) instead of reusing storage a gather may still alias.
func TestInsertRejectsWhenSetFullyPinned(t *testing.T) {
	c := MustNew(Ways, 4) // one set
	keys := keysInOneSet(c.Meta, Ways+1)

	c.BeginEpoch()
	for _, k := range keys[:Ways] {
		dst, _, _ := c.Insert(k, 1)
		if dst == nil {
			t.Fatalf("Insert(%d) rejected with free ways available", k)
		}
	}
	if dst, _, _ := c.Insert(keys[Ways], 1); dst != nil {
		t.Fatal("Insert succeeded with every way pinned by the current epoch")
	}
	if got := c.PinRejects(); got != 1 {
		t.Fatalf("PinRejects = %d, want 1", got)
	}

	// The next epoch unpins: the same insert now evicts normally.
	c.BeginEpoch()
	if dst, _, was := c.Insert(keys[Ways], 1); dst == nil || !was {
		t.Fatalf("Insert after next BeginEpoch: dst=%v wasEviction=%v, want fill+eviction", dst, was)
	}
}

// A row handed out by Lookup must stay valid (same backing storage, same
// contents) for the rest of the epoch, even when later fills pressure the
// same set.
func TestLookupPinSurvivesFillPressure(t *testing.T) {
	c := MustNew(Ways, 4)
	keys := keysInOneSet(c.Meta, 3*Ways)

	c.BeginEpoch()
	dst, _, _ := c.Insert(keys[0], 1)
	if dst == nil {
		t.Fatal("first insert rejected")
	}
	dst[0] = 42

	c.BeginEpoch()
	row, hit := c.Lookup(keys[0], 1)
	if !hit {
		t.Fatal("lookup missed a just-inserted key")
	}
	for _, k := range keys[1:] {
		c.Insert(k, 1)
	}
	if row[0] != 42 {
		t.Fatalf("pinned row was overwritten by fill pressure: got %v", row[0])
	}
	if got, hit := c.Lookup(keys[0], 1); !hit || &got[0] != &row[0] {
		t.Fatal("pinned key was evicted within its epoch")
	}
}

// A stale-invalidated slot keeps its pin: the storage may still be aliased
// by a gather earlier in the step, so fill must not reuse it until the
// next epoch.
func TestStaleInvalidateKeepsPin(t *testing.T) {
	c := MustNew(Ways, 4) // one set
	keys := keysInOneSet(c.Meta, Ways+1)

	c.BeginEpoch()
	for _, k := range keys[:Ways] {
		if dst, _, _ := c.Insert(k, 1); dst == nil {
			t.Fatalf("Insert(%d) rejected", k)
		}
	}
	// keys[0] is now stale for version 2: the lookup invalidates it but the
	// slot stays pinned.
	if _, hit := c.Lookup(keys[0], 2); hit {
		t.Fatal("stale lookup hit")
	}
	if dst, _, _ := c.Insert(keys[Ways], 1); dst != nil {
		t.Fatal("fill reused an invalidated-but-pinned slot within the epoch")
	}
}
