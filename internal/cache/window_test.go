package cache

import "testing"

// A window-pinned slot is exempt from eviction: fill pressure against its
// set must pick other victims, and a fully window-pinned set rejects the
// fill (counted separately from epoch-pin rejects) rather than alias
// reserved storage.
func TestWindowPinBlocksEviction(t *testing.T) {
	c := MustNew(Ways, 4) // one set
	keys := keysInOneSet(c.Meta, 3*Ways)

	i, dst := c.InsertPrefetch(keys[0])
	if i < 0 {
		t.Fatal("InsertPrefetch rejected on an empty cache")
	}
	dst[0] = 42
	c.MarkPrefetched(i, 1)
	c.WindowPin(i)

	// Flood the set: every other way may be evicted, the pinned one not.
	for _, k := range keys[1:] {
		c.Insert(k, 1)
	}
	row, hit := c.Lookup(keys[0], 1)
	if !hit || row[0] != 42 {
		t.Fatalf("window-pinned row was evicted or rewritten (hit=%v)", hit)
	}

	c.WindowUnpin(i)
	for _, k := range keys[1:] {
		c.Insert(k, 2)
		c.Insert(k, 3)
	}
	if _, hit := c.Lookup(keys[0], 1); hit {
		t.Fatal("unpinned cold row survived sustained fill pressure")
	}
}

// Epoch pins and window pins composing to cover a full set: fill must
// reject (never alias pinned storage) and classify the reject as a
// window-pin reject when at least one blocker is purely window-pinned,
// as a plain pin reject when the epoch alone is responsible.
func TestEpochAndWindowPinsCoverFullSet(t *testing.T) {
	c := MustNew(Ways, 4) // one set
	keys := keysInOneSet(c.Meta, Ways+2)

	c.BeginEpoch()
	// Epoch-pin all but one way through demand inserts.
	var rows [][]float32
	for _, k := range keys[:Ways-1] {
		dst, _, _ := c.Insert(k, 1)
		if dst == nil {
			t.Fatalf("Insert(%d) rejected with free ways", k)
		}
		dst[0] = float32(k) + 0.5
		rows = append(rows, dst)
	}
	// Window-pin the last way through a prefetch fill (no epoch pin).
	pi, pdst := c.InsertPrefetch(keys[Ways-1])
	if pi < 0 {
		t.Fatal("InsertPrefetch rejected with a free way")
	}
	pdst[0] = -1
	c.MarkPrefetched(pi, 1)
	c.WindowPin(pi)

	// The set is now fully blocked: Ways-1 epoch pins + 1 window pin.
	if dst, _, _ := c.Insert(keys[Ways], 1); dst != nil {
		t.Fatal("Insert succeeded with every way epoch- or window-pinned")
	}
	if got := c.WindowPinRejects(); got != 1 {
		t.Fatalf("WindowPinRejects = %d, want 1 (a window pin completed the blockade)", got)
	}
	if got := c.PinRejects(); got != 0 {
		t.Fatalf("PinRejects = %d, want 0", got)
	}
	for i, r := range rows {
		if r[0] != float32(keys[i])+0.5 {
			t.Fatalf("epoch-pinned row %d was rewritten", i)
		}
	}
	if pdst[0] != -1 {
		t.Fatal("window-pinned row was rewritten")
	}

	// Next epoch releases the epoch pins but not the window pin: the fill
	// now finds victims again.
	c.BeginEpoch()
	dst, _, _ := c.Insert(keys[Ways], 1)
	if dst == nil {
		t.Fatal("Insert rejected after the epoch pins lapsed")
	}
	if &dst[0] == &pdst[0] {
		t.Fatal("fill aliased the still-window-pinned slot")
	}

	// An all-epoch blockade (no window pin involved) counts as PinRejects.
	c.BeginEpoch()
	for _, k := range keysInOneSet(c.Meta, Ways)[:Ways] {
		c.Lookup(k, 0) // touch to pin whatever is resident
		c.Insert(k, 2)
	}
	c.WindowUnpin(pi)
	before := c.PinRejects()
	if dst, _, _ := c.Insert(keys[Ways+1], 1); dst != nil {
		t.Fatal("Insert succeeded with every way epoch-pinned")
	}
	if got := c.PinRejects(); got != before+1 {
		t.Fatalf("PinRejects = %d, want %d", got, before+1)
	}
}

// The window refcount is slot-scoped: it survives stale invalidation, so
// the slot stays reserved until the batch that needed it retires — and a
// balanced unpin by index then releases it regardless of what key the
// directory shows.
func TestWindowPinSurvivesInvalidation(t *testing.T) {
	c := MustNew(Ways, 4) // one set
	keys := keysInOneSet(c.Meta, Ways+1)

	i, _ := c.InsertPrefetch(keys[0])
	c.MarkPrefetched(i, 1)
	c.WindowPin(i)

	// A stale lookup invalidates the entry; the reservation must hold.
	if _, hit := c.Lookup(keys[0], 2); hit {
		t.Fatal("stale lookup hit")
	}
	for _, k := range keys[1:Ways] {
		c.Insert(k, 1)
		c.Insert(k, 2)
	}
	if got := c.Stats().Evicted; got != 0 {
		// Ways-1 other keys fit the Ways-1 unreserved slots: with the
		// invalidated slot still reserved, refills never evict.
		t.Fatalf("evictions = %d with the only contested slot window-pinned", got)
	}

	c.WindowUnpin(i)
	if dst, _, _ := c.Insert(keys[Ways], 1); dst == nil {
		t.Fatal("Insert rejected after the window pin was released")
	}
}

// Prefetch fate accounting: used fills count as hits, refilled-before-use
// as late, evicted-before-use as wasted — and the ratio accessors never
// divide by zero.
func TestPrefetchFateAccounting(t *testing.T) {
	var zero Stats
	for name, v := range map[string]float64{
		"HitRatio":         zero.HitRatio(),
		"MissRate":         zero.MissRate(),
		"PrefetchHitRate":  zero.PrefetchHitRate(),
		"PrefetchAccuracy": zero.PrefetchAccuracy(),
	} {
		if v != 0 {
			t.Fatalf("%s on zero Stats = %v, want 0", name, v)
		}
	}

	c := MustNew(Ways, 4)
	keys := keysInOneSet(c.Meta, Ways+1)

	// Fill 1: used by a demand lookup → PrefetchHits.
	i, _ := c.InsertPrefetch(keys[0])
	c.MarkPrefetched(i, 1)
	if _, hit := c.Lookup(keys[0], 1); !hit {
		t.Fatal("demand lookup missed a prefetched row")
	}

	// Fill 2: goes stale before use → PrefetchLate.
	i2, _ := c.InsertPrefetch(keys[1])
	c.MarkPrefetched(i2, 1)
	if _, hit := c.Lookup(keys[1], 5); hit {
		t.Fatal("stale prefetched row was served")
	}

	// Fill 3: evicted before use → PrefetchWasted. Freeze every other way
	// with high frequency so the unused prefetch row is the LFU victim.
	i3, _ := c.InsertPrefetch(keys[2])
	c.MarkPrefetched(i3, 1)
	for _, k := range keys[3 : Ways+1] {
		dst, _, _ := c.Insert(k, 1)
		if dst == nil {
			t.Fatalf("Insert(%d) rejected", k)
		}
		for n := 0; n < 8; n++ {
			c.Lookup(k, 1)
		}
	}
	c.Lookup(keys[0], 1) // keep fill 1 warmer than fill 3
	evKey := keysInOneSet(c.Meta, 2*Ways)[2*Ways-1]
	if dst, _, _ := c.Insert(evKey, 1); dst == nil {
		t.Fatal("eviction insert rejected")
	}

	s := c.Stats()
	// PrefetchHits counts every demand lookup served from a prefetched row
	// (pf is sticky until refill/eviction), so fill 1's two lookups give 2.
	if s.PrefetchFills != 3 || s.PrefetchHits != 2 || s.PrefetchLate != 1 || s.PrefetchWasted != 1 {
		t.Fatalf("fills/hits/late/wasted = %d/%d/%d/%d, want 3/2/1/1",
			s.PrefetchFills, s.PrefetchHits, s.PrefetchLate, s.PrefetchWasted)
	}
	if acc := s.PrefetchAccuracy(); acc <= 0.3 || acc >= 0.4 {
		t.Fatalf("PrefetchAccuracy = %v, want 1/3", acc)
	}
	if s.PrefetchHitRate() <= 0 {
		t.Fatal("PrefetchHitRate = 0 after a served prefetch")
	}
}
