package cache

import (
	"math/rand"
	"testing"
)

func TestMetaValidation(t *testing.T) {
	if _, err := NewMeta(0); err == nil {
		t.Fatal("rows=0 must error")
	}
	m := MustNewMeta(3)
	if m.Rows() < 3 || m.Rows()%Ways != 0 {
		t.Fatalf("Rows = %d", m.Rows())
	}
}

func TestMetaProbeFillRoundtrip(t *testing.T) {
	m := MustNewMeta(64)
	if m.Probe(42, 0) {
		t.Fatal("empty directory must miss")
	}
	if _, was := m.Fill(42, 1); was {
		t.Fatal("fill into empty set must not evict")
	}
	if !m.Probe(42, 1) {
		t.Fatal("expected hit")
	}
	if !m.Contains(42) {
		t.Fatal("Contains should see the key")
	}
	// Stale version invalidates.
	if m.Probe(42, 2) {
		t.Fatal("newer wanted version must miss")
	}
	if m.Contains(42) {
		t.Fatal("stale entry must be invalidated")
	}
	st := m.Stats()
	if st.Hits != 1 || st.StaleHits != 1 || st.Inserted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMetaBumpInvalidate(t *testing.T) {
	m := MustNewMeta(64)
	m.Fill(7, 1)
	if !m.Bump(7, 5) || m.Bump(8, 5) {
		t.Fatal("Bump presence semantics wrong")
	}
	if !m.Probe(7, 5) {
		t.Fatal("bumped entry should hit at new version")
	}
	if !m.Invalidate(7) || m.Invalidate(7) {
		t.Fatal("Invalidate semantics wrong")
	}
}

func TestMetaEvictionLFU(t *testing.T) {
	m := MustNewMeta(Ways) // one set
	for k := uint64(0); k < Ways; k++ {
		m.Fill(k, 0)
	}
	hot := uint64(2)
	for i := 0; i < 5; i++ {
		m.Probe(hot, 0)
	}
	evicted, was := m.Fill(99, 0)
	if !was || evicted == hot {
		t.Fatalf("eviction wrong: evicted=%d was=%v", evicted, was)
	}
	if !m.Contains(hot) {
		t.Fatal("hot key must survive")
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats failed")
	}
}

func TestMetaAndCacheAgree(t *testing.T) {
	// The Cache's bookkeeping is exactly its embedded Meta's: the same
	// access pattern on both must produce identical statistics.
	meta := MustNewMeta(32)
	c := MustNew(32, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(100))
		v := uint64(rng.Intn(3))
		if meta.Probe(k, v) != func() bool { _, hit := c.Lookup(k, v); return hit }() {
			t.Fatalf("probe/lookup diverged at op %d (key %d v %d)", i, k, v)
		}
		if !meta.Contains(k) {
			meta.Fill(k, v)
			c.Insert(k, v)
		}
	}
	if meta.Stats() != c.Stats() {
		t.Fatalf("stats diverged: meta=%+v cache=%+v", meta.Stats(), c.Stats())
	}
}

func TestLFUFreqSaturates(t *testing.T) {
	// A wrapped counter would turn the hottest slot of its set into the
	// next eviction victim; the increment must stick at the ceiling.
	s := slot{freq: ^uint32(0) - 1}
	bumpFreq(&s)
	if s.freq != ^uint32(0) {
		t.Fatalf("freq = %d, want max", s.freq)
	}
	bumpFreq(&s)
	if s.freq != ^uint32(0) {
		t.Fatalf("freq wrapped to %d", s.freq)
	}
}

// TestLFUAgingDistributionShift is the regression test for the
// ever-growing-frequency pathology: entrench working set A, then shift
// the distribution to a disjoint working set B of the same size. Without
// periodic aging A's frequencies are unreachable — every B insert
// enters at freq 1 and is always the set's next victim, so B thrashes
// through one slot per set (~1/Ways residency) while stale-hot A squats
// on the rest forever. With aging, A decays and B wins residency.
func TestLFUAgingDistributionShift(t *testing.T) {
	m := MustNewMeta(256)
	capacity := uint64(m.Rows())

	// Phase 1: A = [0, capacity) fills the directory and runs hot.
	for k := uint64(0); k < capacity; k++ {
		m.Fill(k, 0)
	}
	for r := 0; r < 64; r++ {
		for k := uint64(0); k < capacity; k++ {
			m.Probe(k, 0)
		}
	}

	// Phase 2: the shift — only B = [capacity, 2·capacity) is accessed.
	for r := 0; r < 100; r++ {
		for k := capacity; k < 2*capacity; k++ {
			if !m.Probe(k, 0) {
				m.Fill(k, 0)
			}
		}
	}

	resident := 0
	for k := capacity; k < 2*capacity; k++ {
		if m.Contains(k) {
			resident++
		}
	}
	if got := float64(resident) / float64(capacity); got < 0.5 {
		t.Fatalf("new-hot working set holds %.0f%% of the directory after the shift, want ≥ 50%% (stale-hot squatting — frequency aging broken)", got*100)
	}
	if m.Agings() == 0 {
		t.Fatal("aging never ran during a full-capacity churn")
	}
}
