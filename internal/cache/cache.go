// Package cache implements the per-GPU embedding cache used by Frugal and
// the HugeCTR-style baseline (§2.1, Fig 2b): a set-associative,
// frequency-aware table of hot embedding rows held in (simulated) device
// memory.
//
// Frugal uses a sharding placement — key k is cached only on its owner GPU
// — and keeps the cache consistent with host memory through versioning:
// every flushed update bumps the key's global version, and a cached row
// whose fill version is older counts as a miss, falling back to the
// (gate-protected, therefore fresh) host row. DESIGN.md records this as
// our completion of the paper's design for remote partial gradients.
//
// The package has two layers: Meta (the directory — all placement,
// eviction, versioning and statistics logic, no storage) and Cache (Meta
// plus the float32 row slab). Neither is safe for concurrent use; device
// caches in the paper are private per training process too.
package cache

import "fmt"

// Ways is the set associativity of the cache.
const Ways = 8

const emptyKey = ^uint64(0)

type slot struct {
	key     uint64
	version uint64
	freq    uint32
	// win is the window-pin refcount: how many batches inside the lookahead
	// window still need this slot (BagPipe's oracle-cache invariant). While
	// win > 0 the slot is exempt from eviction, exactly like an epoch pin.
	// The count is slot-scoped, not key-scoped: it survives invalidation, and
	// the prefetcher unpins by slot index, so a stale-invalidated slot cannot
	// leak its reservation.
	win uint32
	// epoch is the Meta epoch in which this slot was last touched (hit,
	// filled, or bumped). While it equals the current epoch the slot is
	// *pinned*: fill will not reuse its storage, so rows handed out during
	// the epoch stay valid. Slots keep their epoch even when invalidated —
	// the row storage may still be aliased by an earlier gather this step.
	epoch uint64
	// pf marks a row whose bytes were filled by the lookahead prefetcher;
	// pfUsed marks that at least one demand lookup has been served from it.
	// Together they classify every prefetch fill as hit (used), late (went
	// stale before use) or wasted (evicted before use).
	pf, pfUsed bool
}

// Cache is one GPU's embedding cache: a Meta directory plus row storage
// for `Rows()` embeddings of dimension dim in a contiguous slab.
type Cache struct {
	*Meta
	dim  int
	slab []float32
}

// New builds a cache with room for at least `rows` embedding rows of
// dimension dim. rows is rounded up to a multiple of the associativity; a
// rows value < Ways still yields one full set.
func New(rows, dim int) (*Cache, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("cache: dim must be positive, got %d", dim)
	}
	meta, err := NewMeta(rows)
	if err != nil {
		return nil, err
	}
	return &Cache{
		Meta: meta,
		dim:  dim,
		slab: make([]float32, meta.Rows()*dim),
	}, nil
}

// MustNew is New for static configurations.
func MustNew(rows, dim int) *Cache {
	c, err := New(rows, dim)
	if err != nil {
		panic(err)
	}
	return c
}

// Dim returns the embedding dimension.
func (c *Cache) Dim() int { return c.dim }

func (c *Cache) row(slotIdx int) []float32 {
	return c.slab[slotIdx*c.dim : (slotIdx+1)*c.dim]
}

// Lookup returns the cached row for key when present AND at least as new
// as wantVersion. A present-but-stale row counts as a miss (and is
// invalidated) because host memory holds newer flushed updates.
// The returned slice aliases cache storage; callers may mutate it in place
// (that is how local updates are applied). Without epoch pinning it must
// not be retained across a subsequent Insert, which may reuse the slot;
// under BeginEpoch the hit pins the slot, so the row stays valid until the
// next epoch — the runtime's gather phase relies on this to hand the slab
// row to the compute phase without a copy.
func (c *Cache) Lookup(key uint64, wantVersion uint64) ([]float32, bool) {
	i := c.probe(key, wantVersion)
	if i < 0 {
		return nil, false
	}
	return c.row(i), true
}

// Insert fills the row for key at the given version, evicting the
// least-frequently-used slot of the set when full (HugeCTR-style
// frequency admission). It returns the slice the caller must copy the row
// into, plus the evicted key (or wasEviction=false when no eviction
// happened). With epoch pinning active, a set whose slots are all pinned
// by the current epoch rejects the insert with dst == nil; the caller must
// fall back to private storage for this access.
func (c *Cache) Insert(key uint64, version uint64) (dst []float32, evicted uint64, wasEviction bool) {
	i, ev, was := c.fill(key, version, false)
	if i < 0 {
		return nil, 0, false
	}
	return c.row(i), ev, was
}

// InsertPrefetch claims a slot for key on behalf of the lookahead
// prefetcher and returns the slot index plus the destination row, or
// (-1, nil) when every eligible slot of the set is blocked (epoch- or
// window-pinned) — the reject is counted and the prefetcher simply skips
// the key, leaving it to demand fill. Unlike Insert, the claimed slot is
// not epoch-pinned: the prefetcher hands out no aliases, and the window
// pin the caller takes afterwards is what protects the row. The caller
// must copy the row bytes into dst and then call MarkPrefetched with the
// version actually read.
func (c *Cache) InsertPrefetch(key uint64) (slotIdx int, dst []float32) {
	i, _, _ := c.fill(key, 0, true)
	if i < 0 {
		return -1, nil
	}
	return i, c.row(i)
}

// SlotRow returns the storage of a slot located by PeekSlot. The
// prefetcher uses it to refill a stale resident row in place (only when
// the slot is not epoch-pinned, so no live gather aliases the bytes).
func (c *Cache) SlotRow(slotIdx int) []float32 { return c.row(slotIdx) }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits, Misses, StaleHits, Inserted, Evicted int64
	// Lookahead-prefetch counters. PrefetchFills is rows filled by the
	// prefetcher; PrefetchHits is demand lookups served from a prefetched
	// row; PrefetchLate is prefetched rows invalidated or refilled before
	// any use; PrefetchWasted is prefetched rows evicted before any use.
	PrefetchFills, PrefetchHits, PrefetchLate, PrefetchWasted int64
	// PinRejects / WindowPinRejects split fill rejections by blocker kind:
	// the current epoch's own pins vs. lookahead-window reservations.
	PinRejects, WindowPinRejects int64
}

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// MissRate returns misses/(hits+misses), or 0 before any access — the
// guard keeps /debug/vars from emitting NaN before the first step.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// PrefetchHitRate returns the share of demand lookups served from
// prefetched rows, hits_prefetched/(hits+misses); 0 before any access.
func (s Stats) PrefetchHitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(total)
}

// PrefetchAccuracy returns the share of prefetch fills that served at
// least one demand lookup before going stale or being evicted; 0 before
// any fill.
func (s Stats) PrefetchAccuracy() float64 {
	if s.PrefetchFills == 0 {
		return 0
	}
	used := s.PrefetchFills - s.PrefetchLate - s.PrefetchWasted
	if used < 0 {
		used = 0
	}
	return float64(used) / float64(s.PrefetchFills)
}
