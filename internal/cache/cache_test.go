package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Fatal("rows=0 should error")
	}
	if _, err := New(8, 0); err == nil {
		t.Fatal("dim=0 should error")
	}
	c := MustNew(3, 4)
	if c.Rows() < 3 || c.Rows()%Ways != 0 {
		t.Fatalf("Rows = %d", c.Rows())
	}
	if c.Dim() != 4 {
		t.Fatalf("Dim = %d", c.Dim())
	}
}

func TestInsertLookupRoundtrip(t *testing.T) {
	c := MustNew(64, 4)
	dst, _, ev := c.Insert(42, 1)
	if ev {
		t.Fatal("insert into empty cache should not evict")
	}
	copy(dst, []float32{1, 2, 3, 4})
	row, hit := c.Lookup(42, 1)
	if !hit {
		t.Fatal("expected hit")
	}
	for i, want := range []float32{1, 2, 3, 4} {
		if row[i] != want {
			t.Fatalf("row[%d] = %v, want %v", i, row[i], want)
		}
	}
	if _, hit := c.Lookup(43, 0); hit {
		t.Fatal("expected miss for absent key")
	}
}

func TestStaleVersionIsMiss(t *testing.T) {
	c := MustNew(64, 2)
	dst, _, _ := c.Insert(7, 3)
	copy(dst, []float32{1, 1})
	if _, hit := c.Lookup(7, 3); !hit {
		t.Fatal("same version should hit")
	}
	// Host moved to version 5: the cached copy is outdated and must be
	// invalidated, not returned.
	if _, hit := c.Lookup(7, 5); hit {
		t.Fatal("stale version must miss")
	}
	if c.Contains(7) {
		t.Fatal("stale entry should be invalidated")
	}
	st := c.Stats()
	if st.StaleHits != 1 {
		t.Fatalf("StaleHits = %d, want 1", st.StaleHits)
	}
}

func TestBump(t *testing.T) {
	c := MustNew(64, 2)
	c.Insert(7, 1)
	if !c.Bump(7, 9) {
		t.Fatal("Bump of present key should succeed")
	}
	if _, hit := c.Lookup(7, 9); !hit {
		t.Fatal("bumped entry should hit at new version")
	}
	if c.Bump(8, 1) {
		t.Fatal("Bump of absent key should fail")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(64, 2)
	c.Insert(7, 1)
	if !c.Invalidate(7) {
		t.Fatal("Invalidate of present key should succeed")
	}
	if c.Invalidate(7) {
		t.Fatal("second Invalidate should fail")
	}
	if _, hit := c.Lookup(7, 0); hit {
		t.Fatal("invalidated key must miss")
	}
}

func TestInsertRefreshInPlace(t *testing.T) {
	c := MustNew(64, 2)
	d1, _, _ := c.Insert(7, 1)
	copy(d1, []float32{1, 2})
	d2, _, ev := c.Insert(7, 2)
	if ev {
		t.Fatal("re-insert must refresh, not evict")
	}
	copy(d2, []float32{3, 4})
	row, hit := c.Lookup(7, 2)
	if !hit || row[0] != 3 {
		t.Fatalf("refresh lost: hit=%v row=%v", hit, row)
	}
	if st := c.Stats(); st.Inserted != 1 {
		t.Fatalf("Inserted = %d, want 1 (refresh is not an insert)", st.Inserted)
	}
}

func TestEvictionPrefersColdKeys(t *testing.T) {
	// One set of Ways slots: fill it, make one key hot, add one more key;
	// the hot key must survive.
	c := MustNew(Ways, 2) // exactly one set
	for k := uint64(0); k < Ways; k++ {
		c.Insert(k, 1)
	}
	hot := uint64(3)
	for i := 0; i < 10; i++ {
		c.Lookup(hot, 1)
	}
	_, evicted, was := c.Insert(100, 1)
	if !was {
		t.Fatal("full set must evict")
	}
	if evicted == hot {
		t.Fatal("LFU must not evict the hot key")
	}
	if !c.Contains(hot) || !c.Contains(100) {
		t.Fatal("hot and new keys must both be present")
	}
}

func TestEvictionFillsEmptySlotsFirst(t *testing.T) {
	c := MustNew(Ways, 2)
	for k := uint64(0); k < Ways-1; k++ {
		c.Insert(k, 1)
	}
	_, _, was := c.Insert(99, 1)
	if was {
		t.Fatal("insert with an empty slot available must not evict")
	}
	if st := c.Stats(); st.Evicted != 0 {
		t.Fatalf("Evicted = %d, want 0", st.Evicted)
	}
}

func TestHitRatioStats(t *testing.T) {
	c := MustNew(64, 2)
	c.Insert(1, 0)
	c.Lookup(1, 0) // hit
	c.Lookup(2, 0) // miss
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.HitRatio(); r != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", r)
	}
	c.ResetStats()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("ResetStats failed: %+v", st)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty HitRatio should be 0")
	}
}

func TestZipfWorkloadHitRatio(t *testing.T) {
	// A 10%-capacity cache over a Zipf-skewed trace must achieve a high
	// hit ratio — the premise of multi-GPU embedding caching (§2.1).
	const keys = 10000
	c := MustNew(keys/10, 8)
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.3, 1, keys-1)
	warm := func(n int) {
		for i := 0; i < n; i++ {
			k := z.Uint64()
			if _, hit := c.Lookup(k, 0); !hit {
				c.Insert(k, 0)
			}
		}
	}
	warm(20000)
	c.ResetStats()
	warm(20000)
	if r := c.Stats().HitRatio(); r < 0.5 {
		t.Fatalf("zipf hit ratio = %.3f, want > 0.5", r)
	}
}

// Property: after inserting any sequence of keys, a Lookup hit always
// returns the most recently written row content.
func TestLookupReturnsLatestWriteProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		c := MustNew(32, 1)
		latest := make(map[uint64]float32)
		for i, kraw := range keys {
			k := uint64(kraw % 16)
			v := float32(i)
			if row, hit := c.Lookup(k, 0); hit {
				row[0] = v
			} else {
				dst, _, _ := c.Insert(k, 0)
				dst[0] = v
			}
			latest[k] = v
			// Immediate readback must observe the write.
			row, hit := c.Lookup(k, 0)
			if !hit || row[0] != v {
				return false
			}
		}
		// All still-cached keys must hold their latest value.
		for k, v := range latest {
			if row, hit := c.Lookup(k, 0); hit && row[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
