package lfht

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	m := New[int]()
	m.Insert(1, 10)
	m.Insert(2, 20)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %v,%v", v, ok)
	}
	if v, ok := m.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = %v,%v", v, ok)
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("Get(3) should miss")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestDelete(t *testing.T) {
	m := New[string]()
	m.Insert(7, "x")
	if !m.Delete(7) {
		t.Fatal("Delete(7) should succeed")
	}
	if m.Delete(7) {
		t.Fatal("second Delete(7) should fail")
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("Get after delete should miss")
	}
	if !m.Empty() {
		t.Fatal("map should be empty")
	}
}

func TestPopAnyDrainsAll(t *testing.T) {
	m := New[uint64]()
	const n = 1000
	for i := uint64(0); i < n; i++ {
		m.Insert(i, i*3)
	}
	seen := make(map[uint64]uint64)
	for {
		k, v, ok := m.PopAny()
		if !ok {
			break
		}
		if _, dup := seen[k]; dup {
			t.Fatalf("key %d popped twice", k)
		}
		seen[k] = v
	}
	if len(seen) != n {
		t.Fatalf("popped %d entries, want %d", len(seen), n)
	}
	for k, v := range seen {
		if v != k*3 {
			t.Fatalf("key %d has value %d, want %d", k, v, k*3)
		}
	}
}

func TestPopAnyEmpty(t *testing.T) {
	m := New[int]()
	if _, _, ok := m.PopAny(); ok {
		t.Fatal("PopAny on empty map should fail")
	}
}

func TestPopBatch(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Insert(uint64(i), i)
	}
	got := m.PopBatch(nil, 30)
	if len(got) != 30 {
		t.Fatalf("PopBatch returned %d, want 30", len(got))
	}
	if m.Len() != 70 {
		t.Fatalf("Len after batch = %d, want 70", m.Len())
	}
	rest := m.PopBatch(nil, 1000)
	if len(rest) != 70 {
		t.Fatalf("second PopBatch returned %d, want 70", len(rest))
	}
	if got = m.PopBatch(got[:0], 5); len(got) != 0 {
		t.Fatal("PopBatch on empty map should return nothing")
	}
	if got = m.PopBatch(nil, 0); len(got) != 0 {
		t.Fatal("PopBatch with max=0 should return nothing")
	}
}

func TestRange(t *testing.T) {
	m := New[int]()
	for i := 0; i < 50; i++ {
		m.Insert(uint64(i), i)
	}
	m.Delete(10)
	sum, count := 0, 0
	m.Range(func(k uint64, v int) bool {
		sum += v
		count++
		return true
	})
	if count != 49 {
		t.Fatalf("Range visited %d, want 49", count)
	}
	want := 49*50/2 - 10
	if sum != want {
		t.Fatalf("Range sum = %d, want %d", sum, want)
	}
	// Early termination.
	visited := 0
	m.Range(func(k uint64, v int) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Fatalf("early-exit Range visited %d, want 1", visited)
	}
}

func TestNewWithHintClamps(t *testing.T) {
	small := NewWithHint[int](0)
	if len(small.segments) < 16 {
		t.Fatalf("hint 0 → %d segments, want ≥16", len(small.segments))
	}
	big := NewWithHint[int](1 << 30)
	if len(big.segments) > 1<<18 {
		t.Fatalf("huge hint → %d segments, want ≤ 2^18", len(big.segments))
	}
	// Power of two.
	for _, m := range []*Map[int]{small, big, NewWithHint[int](1000)} {
		if n := len(m.segments); n&(n-1) != 0 {
			t.Fatalf("segment count %d is not a power of two", n)
		}
	}
}

func TestConcurrentInsertPop(t *testing.T) {
	m := NewWithHint[uint64](1 << 14)
	const (
		writers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	var popped atomic.Int64
	stop := make(chan struct{})
	// Concurrent poppers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, _, ok := m.PopAny(); ok {
					popped.Add(1)
					continue
				}
				select {
				case <-stop:
					// Final drain after writers finish.
					for {
						if _, _, ok := m.PopAny(); !ok {
							return
						}
						popped.Add(1)
					}
				default:
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perW; i++ {
				m.Insert(uint64(w*perW+i), uint64(i))
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	if got := popped.Load(); got != writers*perW {
		t.Fatalf("popped %d entries, want %d", got, writers*perW)
	}
	if !m.Empty() {
		t.Fatalf("map should be drained, Len=%d", m.Len())
	}
}

func TestConcurrentDeleteExactlyOnce(t *testing.T) {
	m := New[int]()
	const n = 500
	for i := 0; i < n; i++ {
		m.Insert(uint64(i), i)
	}
	var deleted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if m.Delete(uint64(i)) {
					deleted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := deleted.Load(); got != n {
		t.Fatalf("deleted %d times, want exactly %d", got, n)
	}
}

// Property: a random interleaving of inserts and deletes leaves exactly the
// keys that were inserted and not deleted.
func TestInsertDeleteProperty(t *testing.T) {
	f := func(keys []uint64, deletes []uint64) bool {
		m := New[uint64]()
		want := make(map[uint64]bool)
		for _, k := range keys {
			if !want[k] { // the table is used with unique live keys per P²F
				m.Insert(k, k+1)
				want[k] = true
			}
		}
		for _, d := range deletes {
			if want[d] {
				if !m.Delete(d) {
					return false
				}
				delete(want, d)
			} else if m.Delete(d) && !want[d] {
				return false
			}
		}
		if m.Len() != len(want) {
			return false
		}
		for k := range want {
			if v, ok := m.Get(k); !ok || v != k+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	m := NewWithHint[int](b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(uint64(i), i)
	}
}

func BenchmarkInsertParallel(b *testing.B) {
	m := NewWithHint[int](b.N)
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Insert(ctr.Add(1), 1)
		}
	})
}

func BenchmarkPopAnyParallel(b *testing.B) {
	m := NewWithHint[int](b.N)
	for i := 0; i < b.N; i++ {
		m.Insert(uint64(i), i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.PopAny()
		}
	})
}

func TestGetOrInsert(t *testing.T) {
	m := New[*int]()
	mk := func() *int { v := 42; return &v }
	v1, loaded := m.GetOrInsert(5, mk)
	if loaded || *v1 != 42 {
		t.Fatalf("first GetOrInsert = (%v,%v)", *v1, loaded)
	}
	v2, loaded := m.GetOrInsert(5, func() *int { v := 99; return &v })
	if !loaded || v2 != v1 {
		t.Fatal("second GetOrInsert must return the existing value")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestGetOrInsertConcurrentSingleWinner(t *testing.T) {
	m := NewWithHint[*int](1 << 12)
	const keys = 200
	var wg sync.WaitGroup
	results := make([][]*int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]*int, keys)
			for k := 0; k < keys; k++ {
				v, _ := m.GetOrInsert(uint64(k), func() *int { x := k; return &x })
				results[g][k] = v
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for g := 1; g < 8; g++ {
			if results[g][k] != results[0][k] {
				t.Fatalf("key %d: goroutines observed different values", k)
			}
		}
	}
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
}
