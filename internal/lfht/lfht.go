// Package lfht implements the lock-free hash table used as the second
// level of Frugal's two-level priority queue (§3.4). Each priority slot of
// the queue owns one table holding the g-entries that currently carry that
// priority; enqueue inserts here, adjustPriority moves entries between two
// tables, and the flusher threads pop arbitrary entries concurrently.
//
// The paper builds on a write-optimized dynamic hash table (FAST '19 [34]).
// This implementation keeps the properties that matter for the P²F
// algorithm — lock-free inserts/deletes/pops with O(1) expected cost and no
// central point of contention — using a segmented design: a fixed directory
// of 2^k segments (sized from a capacity hint), each an atomic singly
// linked list with logical deletion. Capacity is dynamic because the lists
// grow and shrink with the population; the directory spreads contention so
// that concurrent operations on different keys rarely touch the same cache
// line. Nodes are claimed from a chunked append-only arena (one heap
// allocation per chunkNodes inserts) and never recycled; see chunk for why
// reuse is off the table.
package lfht

import (
	"math/bits"
	"sync/atomic"
)

// node is one key/value cell. A node is logically deleted by CAS-ing
// state from live to dead; physical unlinking happens opportunistically
// during later traversals. Values are immutable once inserted (the P²F
// controller mutates the *GEntry a value points to, never the mapping).
type node[V any] struct {
	key   uint64
	val   V
	next  atomic.Pointer[node[V]]
	state atomic.Int32 // 0 = live, 1 = logically deleted
}

func (n *node[V]) live() bool { return n.state.Load() == 0 }

// kill logically deletes the node; reports whether this caller won the race.
func (n *node[V]) kill() bool { return n.state.CompareAndSwap(0, 1) }

// chunkNodes is the arena granularity: one heap allocation per chunkNodes
// node claims instead of one per insert.
const chunkNodes = 256

// chunk is an append-only node arena block. Claiming is a single atomic
// increment; nodes are NEVER recycled — a logically deleted node may still
// be traversed by a concurrent reader, so returning it to a free list would
// reintroduce the ABA/lost-entry hazards that safe memory reclamation
// exists to solve (out of scope per DESIGN.md §5d). The chunk stays
// reachable (and thus alive) while any of its nodes is linked in a segment;
// dead prefixes are unlinked opportunistically, after which the GC collects
// whole chunks.
type chunk[V any] struct {
	next  atomic.Uint32
	nodes [chunkNodes]node[V]
}

// newNode claims a zeroed node from the current arena chunk, publishing a
// fresh chunk when the current one is exhausted. Lock-free: a claim is one
// fetch-add; losing the publish CAS still yields a valid node (slot 0 of
// the loser's private chunk — slightly wasteful, never wrong).
func (m *Map[V]) newNode() *node[V] {
	for {
		c := m.arena.Load()
		if c != nil {
			if i := c.next.Add(1); i <= chunkNodes {
				return &c.nodes[i-1]
			}
		}
		fresh := &chunk[V]{}
		fresh.next.Store(1)
		m.arena.CompareAndSwap(c, fresh)
		return &fresh.nodes[0]
	}
}

// Map is a concurrent hash map from uint64 keys to values of type V.
// The zero value is not usable; construct with New or NewWithHint.
type Map[V any] struct {
	segments []atomic.Pointer[node[V]]
	mask     uint64
	count    atomic.Int64
	cursor   atomic.Uint64 // rotating start segment for PopAny fairness
	arena    atomic.Pointer[chunk[V]]
}

// DefaultSegments is the directory size used by New.
const DefaultSegments = 256

// New returns an empty map with the default directory size.
func New[V any]() *Map[V] { return NewWithHint[V](DefaultSegments * 4) }

// NewWithHint returns an empty map sized for roughly `hint` resident
// entries (directory of ~hint/4 segments, clamped to [16, 1<<18], rounded
// up to a power of two).
func NewWithHint[V any](hint int) *Map[V] {
	segs := hint / 4
	if segs < 16 {
		segs = 16
	}
	if segs > 1<<18 {
		segs = 1 << 18
	}
	segs = 1 << bits.Len(uint(segs-1)) // next power of two
	return &Map[V]{
		segments: make([]atomic.Pointer[node[V]], segs),
		mask:     uint64(segs - 1),
	}
}

// hash mixes the key (fibonacci hashing) so sequential embedding keys
// spread across segments.
func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func (m *Map[V]) segment(key uint64) *atomic.Pointer[node[V]] {
	return &m.segments[hash(key)&m.mask]
}

// Insert adds key→val. If a live node with the same key already exists the
// insert still succeeds (the table is a multiset over keys); the P²F layer
// guarantees one live mapping per key per table. Lock-free: a single CAS
// at the segment head.
func (m *Map[V]) Insert(key uint64, val V) {
	n := m.newNode()
	n.key, n.val = key, val
	head := m.segment(key)
	for {
		old := head.Load()
		n.next.Store(old)
		if head.CompareAndSwap(old, n) {
			m.count.Add(1)
			return
		}
	}
}

// GetOrInsert returns the value mapped to key, creating it with mk when
// absent. The second result reports whether the value already existed.
// Lock-free: inserts happen only at a segment head, so a successful CAS on
// an unchanged head proves no concurrent insert of the same key slipped in.
// mk may be called and its result discarded when the CAS loop retries.
func (m *Map[V]) GetOrInsert(key uint64, mk func() V) (V, bool) {
	head := m.segment(key)
	var n *node[V] // claimed lazily, reused across CAS retries (unpublished)
	for {
		top := head.Load()
		for c := top; c != nil; c = c.next.Load() {
			if c.key == key && c.live() {
				return c.val, true
			}
		}
		if n == nil {
			n = m.newNode()
			n.key = key
		}
		n.val = mk()
		n.next.Store(top)
		if head.CompareAndSwap(top, n) {
			m.count.Add(1)
			return n.val, false
		}
	}
}

// Get returns the value of the first live node with the given key.
func (m *Map[V]) Get(key uint64) (V, bool) {
	for n := m.segment(key).Load(); n != nil; n = n.next.Load() {
		if n.key == key && n.live() {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Delete logically removes one live node with the given key and reports
// whether a node was removed.
func (m *Map[V]) Delete(key uint64) bool {
	head := m.segment(key)
	for n := head.Load(); n != nil; n = n.next.Load() {
		if n.key == key && n.kill() {
			m.count.Add(-1)
			m.unlink(head)
			return true
		}
	}
	return false
}

// unlink opportunistically removes a prefix of dead nodes from a segment.
// Only head-prefix unlinking is attempted: it needs a single CAS and keeps
// the traversal wait-free for readers.
func (m *Map[V]) unlink(head *atomic.Pointer[node[V]]) {
	for {
		first := head.Load()
		if first == nil || first.live() {
			return
		}
		next := first.next.Load()
		if !head.CompareAndSwap(first, next) {
			return // someone else is maintaining this segment
		}
	}
}

// PopAny removes and returns an arbitrary live entry, or ok=false when the
// table is (momentarily) empty. Concurrent poppers start at a rotating
// cursor so they drain different segments — this is what gives the
// two-level PQ its dequeue scalability.
func (m *Map[V]) PopAny() (key uint64, val V, ok bool) {
	if m.count.Load() == 0 {
		var zero V
		return 0, zero, false
	}
	segs := uint64(len(m.segments))
	start := m.cursor.Add(1)
	for i := uint64(0); i < segs; i++ {
		head := &m.segments[(start+i)&m.mask]
		for n := head.Load(); n != nil; n = n.next.Load() {
			if n.kill() {
				m.count.Add(-1)
				m.unlink(head)
				return n.key, n.val, true
			}
		}
	}
	var zero V
	return 0, zero, false
}

// PopBatch removes up to max live entries, appending their values to dst
// and returning the extended slice. Batching amortises the segment scan —
// the "batched Dequeue" optimisation of Fig 7.
func (m *Map[V]) PopBatch(dst []V, max int) []V {
	if max <= 0 || m.count.Load() == 0 {
		return dst
	}
	segs := uint64(len(m.segments))
	start := m.cursor.Add(1)
	taken := 0
	for i := uint64(0); i < segs && taken < max; i++ {
		head := &m.segments[(start+i)&m.mask]
		for n := head.Load(); n != nil && taken < max; n = n.next.Load() {
			if n.kill() {
				m.count.Add(-1)
				dst = append(dst, n.val)
				taken++
			}
		}
		m.unlink(head)
	}
	return dst
}

// DrainN visits up to max live entries, invoking fn on each BEFORE the
// node is removed, then kills the node (exactly once across concurrent
// callers; the count reflects only successful kills). The visit-then-kill
// order is what keeps an entry visible to observers until fn has finished
// with it — the property Frugal's consistency gate relies on. Concurrent
// callers may invoke fn twice for one node; fn must be idempotent.
func (m *Map[V]) DrainN(max int, fn func(key uint64, val V)) int {
	if max <= 0 || m.count.Load() == 0 {
		return 0
	}
	segs := uint64(len(m.segments))
	start := m.cursor.Add(1)
	done := 0
	for i := uint64(0); i < segs && done < max; i++ {
		head := &m.segments[(start+i)&m.mask]
		for n := head.Load(); n != nil && done < max; n = n.next.Load() {
			if !n.live() {
				continue
			}
			fn(n.key, n.val)
			if n.kill() {
				m.count.Add(-1)
				done++
			}
		}
		m.unlink(head)
	}
	return done
}

// Len returns the number of live entries (exact in quiescence, approximate
// under concurrency).
func (m *Map[V]) Len() int { return int(m.count.Load()) }

// Empty reports whether the table holds no live entries.
func (m *Map[V]) Empty() bool { return m.count.Load() == 0 }

// Range calls fn for every live entry until fn returns false. The snapshot
// is weakly consistent: entries inserted or deleted concurrently may or may
// not be observed.
func (m *Map[V]) Range(fn func(key uint64, val V) bool) {
	for i := range m.segments {
		for n := m.segments[i].Load(); n != nil; n = n.next.Load() {
			if n.live() && !fn(n.key, n.val) {
				return
			}
		}
	}
}
