package sim

import (
	"fmt"
	"math"

	"frugal/internal/cache"
	"frugal/internal/comm"
	"frugal/internal/hw"
	"frugal/internal/pq"
	"frugal/internal/stats"
)

// SystemKind names a training system of the evaluation.
type SystemKind string

// The competitor systems of §4.1.
const (
	SysPyTorch    SystemKind = "PyTorch"     // no cache, CPU-involved host access
	SysHugeCTR    SystemKind = "HugeCTR"     // sharded multi-GPU cache + all_to_all
	SysFrugalSync SystemKind = "Frugal-Sync" // Frugal data path, write-through flushing
	SysFrugal     SystemKind = "Frugal"      // priority-based proactive flushing
	SysUVM        SystemKind = "PyTorch-UVM" // unified-virtual-memory baseline
	// SysUnified is a WholeGraph/torch-quiver-style unified-address system
	// (§5: "unified address-based" related work): GPUs load/store peer
	// caches directly. It requires full UVA (datacenter parts only) and
	// serves as the strongest existing datacenter baseline in Exp #9.
	SysUnified SystemKind = "Unified-Address"
)

// KGLabel translates a system kind to its knowledge-graph counterpart
// (DGL-KE is PyTorch-based, per §4.1).
func KGLabel(k SystemKind) string {
	switch k {
	case SysPyTorch:
		return "DGL-KE"
	case SysHugeCTR:
		return "DGL-KE-cached"
	default:
		return string(k)
	}
}

// Tuning holds the calibration constants of the software-side cost model
// (hardware constants live in hw.Params). Defaults reproduce the paper's
// ratios; experiments never change them except where noted.
type Tuning struct {
	// Fixed per-iteration framework overhead (optimizer step, kernel
	// launches, Python/host orchestration) per system family.
	PyTorchFixed float64
	HugeCTRFixed float64
	FrugalFixed  float64

	// HostRowCost is the full-framework per-row cost of the CPU-involved
	// no-cache path (lookup + pinned-host gather + optimizer scatter) on
	// top of raw byte movement.
	HostRowCost float64
	// CacheSoftwarePerKey is the CPU cost per key of the message-based
	// cache path (bucketing, request marshalling, reorder — Fig 2b ➊/➎).
	CacheSoftwarePerKey float64
	// DatacenterSWFactor scales the CPU-side cache software and miss path
	// down on P2P/UVA-capable datacenter parts (HugeCTR's GPU-direct
	// paths), per §2.4's analysis of where the commodity gap comes from.
	DatacenterSWFactor float64
	// GEntryOpTwoLevel is the per-key commit cost of the two-level PQ
	// (enqueue/adjustPriority, O(1)).
	GEntryOpTwoLevel float64
	// GEntryOpTreeHeapBase is multiplied by log₂(queue population) for the
	// TreeHeap baseline's per-key commit cost.
	GEntryOpTreeHeapBase float64
	// FlushRowCost is one flusher thread's cost to dequeue and apply one
	// update with the two-level PQ.
	FlushRowCost float64
	// TreeFlushRowBase is multiplied by log₂(population) for a TreeHeap
	// dequeue+apply; near-root contention serialises the pool, so thread
	// count barely helps (TreeHeapParallelism caps it).
	TreeFlushRowBase    float64
	TreeHeapParallelism float64
	// SyncFlushRowCost is the per-row cost of the write-through policy
	// (unbatched D2H + immediate DRAM read-modify-write on the critical
	// path).
	SyncFlushRowCost float64
	// AsyncCommFraction is the residual fraction of the update D2H
	// transfer that Frugal cannot hide from the critical path.
	AsyncCommFraction float64
	// FlushOverlap is the fraction of an iteration during which the
	// flusher pool overlaps foreground training.
	FlushOverlap float64
	// GateTailOverlap is the (small) fraction of an iteration between the
	// last commit and the next gate in which urgent entries can flush.
	GateTailOverlap float64
	// GateFixed is the fixed software cost of one gate synchronisation
	// (priority-index scans, condition-variable wakeups).
	GateFixed float64
	// CPUCores bounds useful flushing threads; beyond it they steal
	// compute from training (Exp #10's downslope).
	CPUCores              int
	CPUDiversionPerThread float64
	// DenseSyncBytes approximates the dense-parameter gradient exchange
	// per iteration when the model has a DNN part.
	DenseSyncBytes int64
	// UnifiedFixed is the per-iteration framework overhead of the
	// unified-address datacenter baseline; PeerRandomBWGBps its achievable
	// fine-grained P2P bandwidth.
	UnifiedFixed     float64
	PeerRandomBWGBps float64
}

// DefaultTuning returns the calibrated constants.
func DefaultTuning() Tuning {
	return Tuning{
		PyTorchFixed:          1.2e-3,
		HugeCTRFixed:          1.6e-3,
		FrugalFixed:           3.4e-3,
		HostRowCost:           2.4e-6,
		CacheSoftwarePerKey:   3.6e-6,
		GEntryOpTwoLevel:      0.35e-6,
		GEntryOpTreeHeapBase:  0.028e-6,
		FlushRowCost:          0.6e-6,
		TreeFlushRowBase:      1.2e-6,
		TreeHeapParallelism:   1.3,
		SyncFlushRowCost:      3.0e-6,
		AsyncCommFraction:     0.15,
		FlushOverlap:          0.55,
		GateTailOverlap:       0.012,
		GateFixed:             120e-6,
		CPUCores:              32,
		CPUDiversionPerThread: 0.035,
		DatacenterSWFactor:    1.0,
		DenseSyncBytes:        512 << 10,
		UnifiedFixed:          3.4e-3,
		PeerRandomBWGBps:      4.5,
	}
}

// System configures one simulated training system instance.
type System struct {
	Kind         SystemKind
	GPU          hw.GPUSpec
	NumGPUs      int
	CacheRatio   float64
	FlushThreads int
	Lookahead    int
	// TreeHeap swaps the two-level PQ for the Exp #4 baseline.
	TreeHeap bool
	// Tune overrides DefaultTuning when non-nil.
	Tune *Tuning
}

func (s *System) normalize() error {
	if s.NumGPUs <= 0 {
		return fmt.Errorf("sim: NumGPUs must be positive, got %d", s.NumGPUs)
	}
	if s.GPU.Name == "" {
		s.GPU = hw.RTX3090
	}
	switch s.Kind {
	case SysPyTorch, SysHugeCTR, SysFrugalSync, SysFrugal, SysUVM:
	case SysUnified:
		if !s.GPU.UVAToPeer {
			return fmt.Errorf("sim: %s requires UVA to peer GPUs (%s is a commodity part)", s.Kind, s.GPU.Name)
		}
	default:
		return fmt.Errorf("sim: unknown system %q", s.Kind)
	}
	if s.CacheRatio <= 0 {
		s.CacheRatio = 0.05
	}
	if s.FlushThreads <= 0 {
		s.FlushThreads = 8
	}
	if s.Lookahead <= 0 {
		s.Lookahead = 10
	}
	return nil
}

// StepCost is the virtual time of one training iteration.
type StepCost struct {
	stats.Breakdown
	// Stall is the time the foreground trainers spent blocked on
	// flushing (included in Breakdown.HostDRAM).
	Stall float64
}

// Summary aggregates a measured run.
type Summary struct {
	System     SystemKind
	Workload   string
	Iter       StepCost // mean per measured iteration
	Throughput float64  // samples per second
	HitRatio   float64
	// GEntryBatchTime is the mean time to complete one batch's g-entry
	// updates (Exp #4a; Frugal systems only).
	GEntryBatchTime float64
}

// Simulator drives one system over one workload in virtual time.
type Simulator struct {
	sys  System
	w    Workload
	tune Tuning
	topo *hw.Topology
	tr   *trace

	// future holds the upcoming batches: future[0] is the next step to
	// train; its length is lookahead+1 (the sample queue).
	future []batchInfo
	step   int64

	cache0   *cache.Meta       // representative GPU 0's cache directory
	versions map[uint64]uint64 // per-key global update counter
	pend     *pendingSet       // unflushed updates (Frugal)
	credit   float64           // background flush capacity carried over
}

// batchInfo precomputes the sharding of one global batch.
type batchInfo struct {
	keys      []uint64
	keySet    map[uint64]struct{}
	shard0    []uint64 // GPU 0's sample keys + shared keys
	shard0Set map[uint64]struct{}
	// multi marks shard-0 keys that another GPU also updates this step
	// (shared negatives, or keys drawn by other GPUs' samples).
	multi map[uint64]bool
}

// NewSimulator validates the configuration and pre-fills the lookahead
// window.
func NewSimulator(sys System, w Workload) (*Simulator, error) {
	if err := sys.normalize(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	tune := DefaultTuning()
	if sys.Tune != nil {
		tune = *sys.Tune
	}
	topo, err := hw.NewTopology(sys.GPU, sys.NumGPUs, hw.DefaultParams())
	if err != nil {
		return nil, err
	}
	tr, err := newTrace(&w)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		sys: sys, w: w, tune: tune, topo: topo, tr: tr,
		versions: make(map[uint64]uint64),
		pend:     newPendingSet(),
	}
	if sys.Kind != SysPyTorch && sys.Kind != SysUVM {
		rows := int(float64(w.KeySpace) * sys.CacheRatio / float64(sys.NumGPUs))
		if rows < cache.Ways {
			rows = cache.Ways
		}
		s.cache0 = cache.MustNewMeta(rows)
	}
	for i := 0; i <= sys.Lookahead; i++ {
		s.pushBatch()
	}
	return s, nil
}

// pushBatch generates one future batch, precomputes its sharding, and —
// like the prefetch thread — promotes pending deferred updates that the
// new batch will read.
func (s *Simulator) pushBatch() {
	keys := s.tr.next()
	b := batchInfo{
		keys:      keys,
		keySet:    make(map[uint64]struct{}, len(keys)),
		shard0Set: make(map[uint64]struct{}),
	}
	n := s.sys.NumGPUs
	kps := s.w.KeysPerSample
	samples := s.w.Batch
	globalCount := make(map[uint64]int, len(keys))
	shard0Count := make(map[uint64]int)
	for i := 0; i < samples; i++ {
		sample := keys[i*kps : (i+1)*kps]
		for _, k := range sample {
			globalCount[k]++
		}
		if i%n == 0 {
			b.shard0 = append(b.shard0, sample...)
			for _, k := range sample {
				shard0Count[k]++
			}
		}
	}
	// Shared keys (KG negatives) are read — and updated — by every GPU.
	shared := keys[samples*kps:]
	b.shard0 = append(b.shard0, shared...)
	sharedSet := make(map[uint64]struct{}, len(shared))
	for _, k := range shared {
		sharedSet[k] = struct{}{}
	}
	for _, k := range keys {
		b.keySet[k] = struct{}{}
	}
	b.multi = make(map[uint64]bool, len(b.shard0))
	for _, k := range b.shard0 {
		b.shard0Set[k] = struct{}{}
		_, isShared := sharedSet[k]
		b.multi[k] = isShared || globalCount[k] > shard0Count[k]
	}
	step := s.step + int64(len(s.future))
	if s.sys.Kind == SysFrugal {
		for k := range b.keySet {
			s.pend.adjust(k, step)
		}
	}
	s.future = append(s.future, b)
}

// nextOccurrence returns the first step in (s.step, s.step+L] at which key
// is read again, or pq.Inf — Equation (1)'s priority for a fresh update.
// It is evaluated at commit time of step s.step, when future[i] holds the
// batch of step s.step+1+i.
func (s *Simulator) nextOccurrence(key uint64) int64 {
	for i := 0; i < len(s.future); i++ {
		if _, ok := s.future[i].keySet[key]; ok {
			return s.step + 1 + int64(i)
		}
	}
	return pq.Inf
}

// flushRate returns the flusher pool's drain rate in rows/second.
func (s *Simulator) flushRate() float64 {
	if s.sys.TreeHeap {
		pop := float64(s.pend.len() + 2)
		perRow := s.tune.TreeFlushRowBase * math.Log2(pop)
		// Near-root contention: threads serialise almost completely.
		par := math.Min(float64(s.sys.FlushThreads), s.tune.TreeHeapParallelism)
		return par / perRow
	}
	rate := float64(s.sys.FlushThreads) / s.tune.FlushRowCost
	// DRAM random-access bound.
	dramRows := s.topo.P.HostMemGBps * 1e9 * 0.6 / float64(s.w.RowBytes()*2)
	return math.Min(rate, dramRows)
}

// gEntryOpCost returns the per-key commit-path cost (enqueue/adjust).
func (s *Simulator) gEntryOpCost() float64 {
	if s.sys.TreeHeap {
		pop := float64(s.pend.len() + 2)
		return s.tune.GEntryOpTreeHeapBase * math.Log2(pop)
	}
	return s.tune.GEntryOpTwoLevel
}

// Step simulates one training iteration and returns its virtual cost.
func (s *Simulator) Step() StepCost {
	b := s.future[0]
	s.future = s.future[1:]

	var cost StepCost
	switch s.sys.Kind {
	case SysPyTorch:
		cost = s.stepPyTorch(b)
	case SysUVM:
		cost = s.stepUVM(b)
	case SysHugeCTR:
		cost = s.stepHugeCTR(b)
	case SysFrugalSync:
		cost = s.stepFrugalLike(b, true)
	case SysFrugal:
		cost = s.stepFrugalLike(b, false)
	case SysUnified:
		cost = s.stepUnified(b)
	}

	// Version bump: every globally updated key advances (all systems keep
	// synchronous consistency, so updates land each step).
	for k := range b.keySet {
		s.versions[k]++
	}
	s.step++
	s.pushBatch()
	return cost
}

// uniqueCount deduplicates a key list.
func uniqueCount(keys []uint64) int {
	set := make(map[uint64]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return len(set)
}

// denseComm prices the dense-gradient synchronisation of DNN-bearing
// models.
func (s *Simulator) denseComm() float64 {
	if s.w.DNNFlopsPerSample <= 0 || s.sys.NumGPUs == 1 {
		return 0
	}
	return s.topo.AllToAll(s.tune.DenseSyncBytes)
}

// otherCost prices the non-embedding work of one iteration.
func (s *Simulator) otherCost(fixed float64) float64 {
	perGPU := float64(s.w.Batch) / float64(s.sys.NumGPUs)
	t := fixed + s.w.CPUPerSample*perGPU
	if s.w.DNNFlopsPerSample > 0 {
		t += s.topo.Compute(s.w.DNNFlopsPerSample * perGPU)
	}
	// Exp #10: flushing threads beyond the core budget steal CPU from the
	// training processes.
	if s.sys.Kind == SysFrugal || s.sys.Kind == SysFrugalSync {
		over := s.sys.FlushThreads + s.sys.NumGPUs*2 - s.tune.CPUCores
		if over > 0 {
			t *= 1 + s.tune.CPUDiversionPerThread*float64(over)
		}
	}
	return t
}

// hostRowPath prices the CPU-involved no-cache path for `rows` rows. The
// per-row software cost is served by the host CPU, a resource shared by
// every GPU's gather/scatter requests: past ~4 concurrent GPUs the CPU
// side saturates (together with the root complex, the Exp #8 knee for
// no-cache systems).
func (s *Simulator) hostRowPath(rows int) float64 {
	raw := s.topo.CPUGather(rows, s.w.RowBytes(), s.sys.NumGPUs)
	contention := 1.0
	if f := float64(s.sys.NumGPUs) / 4; f > 1 {
		// Contention is load-dependent: small per-GPU batches leave the
		// CPU unsaturated.
		load := float64(rows) / 2000
		if load > 1 {
			load = 1
		}
		contention = 1 + (f-1)*load
	}
	return raw + float64(rows)*s.tune.HostRowCost*contention
}

func (s *Simulator) stepPyTorch(b batchInfo) StepCost {
	u0 := uniqueCount(b.shard0)
	var c StepCost
	c.HostDRAM = s.hostRowPath(u0) * 2 // gather fwd + scatter bwd
	c.Comm = s.denseComm()
	c.Other = s.otherCost(s.tune.PyTorchFixed)
	return c
}

func (s *Simulator) stepUVM(b batchInfo) StepCost {
	u0 := uniqueCount(b.shard0)
	var c StepCost
	c.HostDRAM = s.topo.UVMFetch(u0, s.w.RowBytes(), s.sys.NumGPUs) * 2
	c.Comm = s.denseComm()
	c.Other = s.otherCost(s.tune.PyTorchFixed)
	return c
}

func (s *Simulator) stepHugeCTR(b batchInfo) StepCost {
	n := s.sys.NumGPUs
	u0 := uniqueCount(b.shard0)
	// Requests arriving at GPU 0's shard cache. Each GPU deduplicates its
	// own batch shard but not against the other ranks (Fig 2b buckets per
	// rank), so the owner serves every rank's copy: by symmetry the
	// request count is ≈ n × |shard₀ ∩ owned₀|. Hit bookkeeping runs over
	// the global owned set; the cache is single-writer (gradients route
	// to the owner), so lookups need no version check.
	hits, misses := 0, 0
	ownedShard := 0
	for k := range b.keySet {
		if comm.Owner(k, n) != 0 {
			continue
		}
		if s.cache0.Probe(k, 0) {
			hits++
		} else {
			s.cache0.Fill(k, 0)
			misses++
		}
	}
	foreign := 0
	for k := range b.shard0Set {
		if comm.Owner(k, n) != 0 {
			foreign++
		} else {
			ownedShard++
		}
	}
	requests := ownedShard * n
	if requests < hits+misses {
		requests = hits + misses
	}

	var c StepCost
	// Fig 2b: ➋ all_to_all keys, ➍ all_to_all embeddings (and the mirror
	// gradient exchange in backward).
	c.Comm = s.topo.AllToAll(int64(u0)*8) +
		2*s.topo.AllToAll(int64(foreign)*s.w.RowBytes()) +
		s.denseComm()
	// ➊ bucket keys / ➎ reorder + shard cache query & update. On
	// datacenter parts the message path uses P2P/UVA directly and skips
	// most of the CPU software (§2.4).
	sw := s.tune.CacheSoftwarePerKey
	if s.sys.GPU.PCIeP2P {
		sw *= s.tune.DatacenterSWFactor
	}
	c.Cache = s.topo.CacheAccess(requests, s.w.RowBytes())*2 +
		float64(u0)*2*sw
	// Cache misses fetch from host memory (read + write-back): the
	// CPU-involved path on commodity parts, the UVA zero-copy path on
	// datacenter parts.
	if s.sys.GPU.PCIeP2P {
		uva, err := s.topo.UVAGather(misses, s.w.RowBytes(), n)
		if err != nil {
			panic(err)
		}
		c.HostDRAM = uva * 1.5
	} else {
		c.HostDRAM = s.hostRowPath(misses) * 1.5
	}
	c.Other = s.otherCost(s.tune.HugeCTRFixed)
	return c
}

// stepUnified simulates a unified-address datacenter system (WholeGraph /
// torch-quiver style, §5): every GPU load/stores peer caches directly over
// P2P, eliminating collectives and CPU software from the access path.
// Structurally it is Frugal without the gate (peer stores keep owner
// caches coherent directly), with fine-grained P2P traffic instead of
// host bounces. Only legal on full-UVA (datacenter) parts.
func (s *Simulator) stepUnified(b batchInfo) StepCost {
	n := s.sys.NumGPUs
	u0 := uniqueCount(b.shard0)
	hits, misses, foreign := 0, 0, 0
	for k := range b.shard0Set {
		if comm.Owner(k, n) != 0 {
			foreign++
			continue
		}
		// Peer stores keep the owner's cache fresh: no version checks.
		if s.cache0.Probe(k, 0) {
			hits++
		} else {
			s.cache0.Fill(k, 0)
			misses++
		}
	}
	var c StepCost
	// Foreign reads and the mirror gradient stores are fine-grained P2P
	// accesses at random-access efficiency, plus aggregate hot-set misses
	// falling through to host UVA.
	peerBytes := float64(foreign) * float64(s.w.RowBytes()) * 2
	peerBW := s.tune.PeerRandomBWGBps * 1e9
	c.Comm = 2*s.topo.P.UVALatency + peerBytes/peerBW + s.denseComm()
	uva, err := s.topo.UVAGather(misses, s.w.RowBytes(), n)
	if err != nil {
		panic(err)
	}
	c.HostDRAM = uva
	c.Cache = s.topo.CacheAccess(hits, s.w.RowBytes()) +
		s.topo.CacheAccess(u0, s.w.RowBytes())
	c.Other = s.otherCost(s.tune.UnifiedFixed)
	return c
}

// stepFrugalLike simulates Frugal and Frugal-Sync: sharded local cache,
// UVA host reads, and either write-through (sync) or P²F flushing.
func (s *Simulator) stepFrugalLike(b batchInfo, writeThrough bool) StepCost {
	n := s.sys.NumGPUs
	u0 := uniqueCount(b.shard0)

	// GPU 0 reads its own shard: owned keys via the local cache
	// (version-checked: a row another GPU updated since the last fill is
	// stale), foreign keys via UVA from host memory.
	hits, misses, foreign := 0, 0, 0
	for k := range b.shard0Set {
		if comm.Owner(k, n) != 0 {
			foreign++
			continue
		}
		if s.cache0.Probe(k, s.versions[k]) {
			hits++
		} else {
			s.cache0.Fill(k, s.versions[k])
			misses++
		}
	}
	// The owner's own update keeps its cached copy fresh unless another
	// GPU also updates the key this step (then the version check will
	// refresh it on next use). Keys only this shard touches stay valid.
	for k := range b.shard0Set {
		if comm.Owner(k, n) == 0 && !b.multi[k] {
			s.cache0.Bump(k, s.versions[k]+1)
		}
	}

	var c StepCost
	uva, err := s.topo.UVAGather(misses+foreign, s.w.RowBytes(), n)
	if err != nil {
		// Catalog parts all support UVA-to-host; reaching here means a
		// miswired spec.
		panic(err)
	}
	c.HostDRAM = uva
	c.Cache = s.topo.CacheAccess(hits, s.w.RowBytes()) +
		s.topo.CacheAccess(u0, s.w.RowBytes()) // local cache update in backward

	if writeThrough {
		// Write-through: every update crosses to host memory on the
		// critical path, one by one.
		stall := float64(u0) * s.tune.SyncFlushRowCost
		c.Stall = stall
		c.HostDRAM += stall
		c.Comm = s.topo.DMA(int64(u0)*s.w.RowBytes(), n) + s.denseComm()
		c.Other = s.otherCost(s.tune.FrugalFixed)
		return c
	}

	// P²F: commit g-entries (cache bucket: metadata ops), ship updates
	// D2H asynchronously (mostly hidden), and pay a stall only when the
	// flusher pool has not yet drained the entries this step reads.
	c.Cache += float64(u0) * s.gEntryOpCost()
	bytes := float64(int64(u0) * s.w.RowBytes())
	c.Comm = s.topo.P.DMALatency + s.tune.AsyncCommFraction*bytes/(s.topo.GPU.LinkGBps*1e9*0.85) + s.denseComm()
	c.Other = s.otherCost(s.tune.FrugalFixed)

	rate := s.flushRate()
	// 1. Gate for this step. The urgent entries (pending writes this step
	// reads) were mostly committed at the very end of the previous
	// iteration; only the short commit→gate tail (optimizer epilogue,
	// straggler GPUs) was available to flush them, so the remainder
	// stalls the foreground — Exp #2's P²F stall.
	tailCredit := rate * c.Total() * s.tune.GateTailOverlap
	urgent := float64(s.pend.countUpTo(s.step)) - tailCredit
	stall := s.tune.GateFixed * 0.3 // gate bookkeeping (PQ scans, wakeups)
	if urgent > 0 {
		stall = urgent/rate + s.tune.GateFixed
	}
	c.Stall = stall
	c.HostDRAM += stall
	s.pend.drainUpTo(s.step)

	// 2. Background drain during this iteration: the flushers work
	// through the older pending entries in priority order (the most
	// urgent — the next steps' reads — first, deferred ∞ entries last).
	s.credit += c.Total() * rate * s.tune.FlushOverlap
	drained := s.pend.drain(int(s.credit))
	s.credit -= float64(drained)
	if s.credit > float64(s.w.KeysPerBatch()) {
		// Idle flushers do not bank unbounded credit; cap the carry-over
		// at roughly one batch of updates.
		s.credit = float64(s.w.KeysPerBatch())
	}

	// 3. Commit: every key the global batch updated becomes pending at
	// its next-occurrence priority (the Fig 6 deferral is this line: keys
	// with no upcoming read go to ∞). These land after this iteration's
	// drain window — the next gate sees whatever the tail cannot cover.
	for k := range b.keySet {
		s.pend.add(k, s.nextOccurrence(k))
	}
	return c
}

// Run simulates warmup+measure iterations and returns the mean cost.
func (s *Simulator) Run(warmup, measure int) Summary {
	for i := 0; i < warmup; i++ {
		s.Step()
	}
	if s.cache0 != nil {
		s.cache0.ResetStats()
	}
	var sum StepCost
	for i := 0; i < measure; i++ {
		c := s.Step()
		sum.Breakdown = sum.Breakdown.Add(c.Breakdown)
		sum.Stall += c.Stall
	}
	inv := 1 / float64(measure)
	out := Summary{
		System:   s.sys.Kind,
		Workload: s.w.Name,
		Iter:     StepCost{Breakdown: sum.Breakdown.Scale(inv), Stall: sum.Stall * inv},
	}
	out.Throughput = stats.Throughput(s.w.Batch, out.Iter.Total())
	if s.cache0 != nil {
		out.HitRatio = s.cache0.Stats().HitRatio()
	}
	if s.sys.Kind == SysFrugal {
		out.GEntryBatchTime = float64(uniqueCount(s.future[0].shard0)) * s.gEntryOpCost()
	}
	return out
}
