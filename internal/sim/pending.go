package sim

import "frugal/internal/pq"

// pendingSet models the population of the P²F priority queue in virtual
// time: every unflushed parameter update, bucketed by priority (the step
// that will next read it, or ∞ for deferred updates). The fluid flusher
// pool drains it lowest-priority-first between training events.
type pendingSet struct {
	byPrio map[int64]map[uint64]struct{}
	prioOf map[uint64]int64
}

func newPendingSet() *pendingSet {
	return &pendingSet{
		byPrio: make(map[int64]map[uint64]struct{}),
		prioOf: make(map[uint64]int64),
	}
}

// add registers an unflushed update for key at the given priority,
// replacing any previous pending priority for the key (one g-entry per
// key; its write set grows, its priority follows Equation (1)).
func (p *pendingSet) add(key uint64, prio int64) {
	if old, ok := p.prioOf[key]; ok {
		if old == prio {
			return
		}
		delete(p.byPrio[old], key)
		if len(p.byPrio[old]) == 0 {
			delete(p.byPrio, old)
		}
	}
	b := p.byPrio[prio]
	if b == nil {
		b = make(map[uint64]struct{})
		p.byPrio[prio] = b
	}
	b[key] = struct{}{}
	p.prioOf[key] = prio
}

// adjust moves an already-pending key to a new priority (the prefetch
// thread discovering an upcoming read of a deferred update). No-op when
// the key is not pending.
func (p *pendingSet) adjust(key uint64, prio int64) {
	if _, ok := p.prioOf[key]; ok {
		p.add(key, prio)
	}
}

// pending reports whether key has an unflushed update.
func (p *pendingSet) pending(key uint64) bool {
	_, ok := p.prioOf[key]
	return ok
}

// len returns the total pending population.
func (p *pendingSet) len() int { return len(p.prioOf) }

// countUpTo returns how many pending entries have priority ≤ s.
func (p *pendingSet) countUpTo(s int64) int {
	n := 0
	for prio, b := range p.byPrio {
		if prio != pq.Inf && prio <= s {
			n += len(b)
		}
	}
	return n
}

// drain removes up to capacity entries in ascending priority order
// (∞ last) and returns how many were removed — the fluid flusher pool.
func (p *pendingSet) drain(capacity int) int {
	if capacity <= 0 || len(p.prioOf) == 0 {
		return 0
	}
	removed := 0
	for removed < capacity && len(p.prioOf) > 0 {
		// Find the lowest-priority non-empty bucket. Bucket count is
		// bounded by the lookahead depth plus one (∞), so the scan is
		// cheap.
		best := pq.Inf
		found := false
		for prio, b := range p.byPrio {
			if len(b) == 0 {
				continue
			}
			if !found || prio < best {
				best, found = prio, true
			}
		}
		if !found {
			return removed
		}
		b := p.byPrio[best]
		for key := range b {
			delete(b, key)
			delete(p.prioOf, key)
			removed++
			if removed >= capacity {
				break
			}
		}
		if len(b) == 0 {
			delete(p.byPrio, best)
		}
	}
	return removed
}

// drainUpTo removes every pending entry with priority ≤ s and returns the
// count (the gate's mandatory flush work).
func (p *pendingSet) drainUpTo(s int64) int {
	removed := 0
	for prio, b := range p.byPrio {
		if prio == pq.Inf || prio > s {
			continue
		}
		removed += len(b)
		for key := range b {
			delete(p.prioOf, key)
		}
		delete(p.byPrio, prio)
	}
	return removed
}
