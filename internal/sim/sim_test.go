package sim

import (
	"testing"

	"frugal/internal/data"
	"frugal/internal/hw"
	"frugal/internal/pq"
)

func run(t *testing.T, sys System, w Workload) Summary {
	t.Helper()
	s, err := NewSimulator(sys, w)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(6, 10)
}

func micro(batch int) Workload { return MicroWorkload(data.DistZipf09, batch) }

func TestSystemValidation(t *testing.T) {
	w := micro(256)
	if _, err := NewSimulator(System{Kind: "CUDA", NumGPUs: 4}, w); err == nil {
		t.Fatal("unknown system should error")
	}
	if _, err := NewSimulator(System{Kind: SysFrugal, NumGPUs: 0}, w); err == nil {
		t.Fatal("0 GPUs should error")
	}
	if _, err := NewSimulator(System{Kind: SysFrugal, NumGPUs: 4}, Workload{}); err == nil {
		t.Fatal("empty workload should error")
	}
	// Unified-address systems require full UVA — commodity parts refuse.
	if _, err := NewSimulator(System{Kind: SysUnified, GPU: hw.RTX3090, NumGPUs: 4}, w); err == nil {
		t.Fatal("unified system on a commodity part should error")
	}
	if _, err := NewSimulator(System{Kind: SysUnified, GPU: hw.A30, NumGPUs: 4}, w); err != nil {
		t.Fatalf("unified on A30: %v", err)
	}
}

func TestKGLabel(t *testing.T) {
	if KGLabel(SysPyTorch) != "DGL-KE" || KGLabel(SysHugeCTR) != "DGL-KE-cached" || KGLabel(SysFrugal) != "Frugal" {
		t.Fatal("KG labels wrong")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	m := MicroWorkload(data.DistZipf099, 512)
	if m.Batch != 512 || m.KeySpace != 10_000_000 || m.Dim != 32 {
		t.Fatalf("micro workload: %+v", m)
	}
	r := RECWorkload(data.Avazu, 0, 0)
	if r.Batch != data.Avazu.DefaultBatch || r.KeysPerSample != 22 || r.DNNFlopsPerSample <= 0 {
		t.Fatalf("rec workload: %+v", r)
	}
	k := KGWorkload(data.FB15k, 0, 0)
	if k.KeysPerSample != 3 || k.SharedKeys != 200 || k.Dim != 400 {
		t.Fatalf("kg workload: %+v", k)
	}
	deeper := RECWorkload(data.Avazu, 0, 6)
	if deeper.DNNFlopsPerSample <= r.DNNFlopsPerSample {
		t.Fatal("deeper DNN must cost more flops")
	}
}

// TestExp1Shape asserts the headline microbenchmark relationships at a
// representative point (zipf-0.9, 5% cache, batch 2048, 8 GPUs).
func TestExp1Shape(t *testing.T) {
	w := micro(2048)
	tput := map[SystemKind]float64{}
	for _, kind := range []SystemKind{SysPyTorch, SysHugeCTR, SysFrugalSync, SysFrugal, SysUVM} {
		tput[kind] = run(t, System{Kind: kind, NumGPUs: 8}, w).Throughput
	}
	if r := tput[SysFrugal] / tput[SysPyTorch]; r < 1.5 || r > 10.2 {
		t.Fatalf("Frugal/PyTorch = %.2f, paper band 1.5-10.2", r)
	}
	if r := tput[SysFrugal] / tput[SysHugeCTR]; r < 3.5 || r > 12 {
		t.Fatalf("Frugal/HugeCTR = %.2f, paper band 4.3-11.3", r)
	}
	if r := tput[SysFrugal] / tput[SysFrugalSync]; r < 2.5 || r > 6 {
		t.Fatalf("Frugal/Frugal-Sync = %.2f, paper band 3.3-5.1", r)
	}
	if tput[SysUVM]*20 > tput[SysFrugal] {
		t.Fatalf("UVM (%v) must be orders of magnitude below Frugal (%v)",
			tput[SysUVM], tput[SysFrugal])
	}
}

// TestExp1SmallBatchInversion: at batch 128 the cache-enabled systems lose
// to PyTorch (Fig 8 insets).
func TestExp1SmallBatchInversion(t *testing.T) {
	w := micro(128)
	pt := run(t, System{Kind: SysPyTorch, NumGPUs: 8}, w).Throughput
	// The collective-bound systems clearly lose; Frugal (no collectives)
	// is allowed rough parity at tiny batches.
	for _, kind := range []SystemKind{SysHugeCTR, SysFrugalSync} {
		if got := run(t, System{Kind: kind, NumGPUs: 8}, w).Throughput; got > pt*1.02 {
			t.Fatalf("%s (%.0f) should not beat PyTorch (%.0f) at batch 128", kind, got, pt)
		}
	}
	if got := run(t, System{Kind: SysFrugal, NumGPUs: 8}, w).Throughput; got > pt*1.35 {
		t.Fatalf("Frugal (%.0f) should be near PyTorch (%.0f) at batch 128, not far above", got, pt)
	}
}

// TestExp2StallShape: P²F stalls are 1-2 orders of magnitude below the
// write-through policy's, and both grow with batch size.
func TestExp2StallShape(t *testing.T) {
	var lastSync, lastP2F float64
	for _, b := range []int{512, 2048} {
		w := micro(b)
		sync := run(t, System{Kind: SysFrugalSync, NumGPUs: 8, CacheRatio: 0.01}, w).Iter.Stall
		p2f := run(t, System{Kind: SysFrugal, NumGPUs: 8, CacheRatio: 0.01}, w).Iter.Stall
		if p2f <= 0 || sync <= 0 {
			t.Fatalf("batch %d: zero stalls (sync=%v p2f=%v)", b, sync, p2f)
		}
		ratio := sync / p2f
		if ratio < 15 || ratio > 300 {
			t.Fatalf("batch %d: stall reduction %.0fx out of plausible band", b, ratio)
		}
		if sync < lastSync || p2f < lastP2F {
			t.Fatalf("stalls should grow with batch")
		}
		lastSync, lastP2F = sync, p2f
	}
}

// TestExp4Shape: the TreeHeap backend commits slower and stalls far more.
func TestExp4Shape(t *testing.T) {
	w := KGWorkload(data.Freebase, 0, 0)
	tree := run(t, System{Kind: SysFrugal, NumGPUs: 8, TreeHeap: true}, w)
	two := run(t, System{Kind: SysFrugal, NumGPUs: 8}, w)
	if tree.GEntryBatchTime <= two.GEntryBatchTime {
		t.Fatal("TreeHeap g-entry updates should be slower")
	}
	if tree.Iter.Stall < 10*two.Iter.Stall {
		t.Fatalf("TreeHeap stall (%v) should dwarf two-level (%v)", tree.Iter.Stall, two.Iter.Stall)
	}
	if tree.Throughput >= two.Throughput {
		t.Fatal("two-level PQ should win end-to-end")
	}
}

// TestExp8RootComplexKnee: the no-cache system stops scaling past 4 GPUs
// while Frugal keeps most of its slope.
func TestExp8RootComplexKnee(t *testing.T) {
	w := RECWorkload(data.Avazu, 0, 0)
	pt4 := run(t, System{Kind: SysPyTorch, NumGPUs: 4}, w).Throughput
	pt8 := run(t, System{Kind: SysPyTorch, NumGPUs: 8}, w).Throughput
	if pt8 > pt4*1.5 {
		t.Fatalf("PyTorch should flatten 4→8 GPUs: %v → %v", pt4, pt8)
	}
	f2 := run(t, System{Kind: SysFrugal, NumGPUs: 2}, w).Throughput
	f8 := run(t, System{Kind: SysFrugal, NumGPUs: 8}, w).Throughput
	if f8 < f2 {
		t.Fatalf("Frugal should not regress 2→8 GPUs: %v → %v", f2, f8)
	}
}

// TestExp10ThreadSensitivity: too few flushing threads hurt; the optimum
// is in the paper's 8-12 region; far too many threads hurt again.
func TestExp10ThreadSensitivity(t *testing.T) {
	w := RECWorkload(data.Avazu, 0, 0)
	at := func(threads int) float64 {
		return run(t, System{Kind: SysFrugal, NumGPUs: 8, FlushThreads: threads}, w).Throughput
	}
	t2, t8, t12, t30 := at(2), at(8), at(12), at(30)
	if t2 >= t8 {
		t.Fatalf("2 threads (%v) should underperform 8 (%v)", t2, t8)
	}
	peak := t8
	if t12 > peak {
		peak = t12
	}
	if t30 >= peak {
		t.Fatalf("30 threads (%v) should underperform the 8-12 peak (%v)", t30, peak)
	}
}

// TestFrugalDefersColdUpdates: with a skewed trace, a meaningful share of
// flushes happen at ∞ priority (the Fig 6 k₃ deferral).
func TestFrugalDefersColdUpdates(t *testing.T) {
	s, err := NewSimulator(System{Kind: SysFrugal, NumGPUs: 8}, micro(1024))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5, 10)
	// After warm-up the pending set must contain deferred entries.
	if n := s.pend.len(); n == 0 {
		t.Fatal("no deferred pending updates — the P²F deferral is not happening")
	}
	if c := s.pend.countUpTo(s.step + int64(s.sys.Lookahead)); c >= s.pend.len() {
		t.Fatal("all pending updates urgent — expected an ∞ tail")
	}
}

func TestPendingSet(t *testing.T) {
	p := newPendingSet()
	p.add(1, 5)
	p.add(2, 7)
	p.add(3, pq.Inf)
	if p.len() != 3 || !p.pending(1) || p.pending(9) {
		t.Fatal("population wrong")
	}
	if got := p.countUpTo(6); got != 1 {
		t.Fatalf("countUpTo(6) = %d", got)
	}
	// add replaces priority.
	p.add(2, 4)
	if got := p.countUpTo(6); got != 2 {
		t.Fatalf("countUpTo(6) after re-add = %d", got)
	}
	// adjust only touches pending keys.
	p.adjust(3, 6)
	p.adjust(42, 1)
	if got := p.countUpTo(6); got != 3 {
		t.Fatalf("countUpTo(6) after adjust = %d", got)
	}
	// drain removes lowest priority first.
	if got := p.drain(1); got != 1 {
		t.Fatalf("drain(1) = %d", got)
	}
	if p.pending(2) { // key 2 had priority 4, the minimum
		t.Fatal("drain should remove the lowest-priority entry")
	}
	if got := p.drainUpTo(5); got != 1 {
		t.Fatalf("drainUpTo(5) = %d", got)
	}
	if got := p.drain(10); got != 1 {
		t.Fatalf("final drain = %d", got)
	}
	if p.len() != 0 {
		t.Fatal("set should be empty")
	}
	if p.drain(5) != 0 || p.drainUpTo(100) != 0 {
		t.Fatal("empty drains should return 0")
	}
}

// TestDeterminism: the same configuration yields identical summaries.
func TestDeterminism(t *testing.T) {
	a := run(t, System{Kind: SysFrugal, NumGPUs: 8}, micro(512))
	b := run(t, System{Kind: SysFrugal, NumGPUs: 8}, micro(512))
	if a.Throughput != b.Throughput || a.Iter.Stall != b.Iter.Stall {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}
