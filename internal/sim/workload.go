// Package sim is the virtual-time performance model that regenerates the
// paper's tables and figures. It co-simulates one training iteration at a
// time: real per-GPU cache structures and a real lookahead window drive
// hit rates and P²F flush priorities, while the hw package prices every
// transfer, kernel and CPU software path in simulated seconds. Absolute
// numbers are calibrated, but the relative behaviour — who wins, by what
// factor, where the knees are — emerges from the modelled mechanisms
// (no PCIe P2P, bounced collectives, root-complex contention, UVA reads,
// priority-ordered background flushing).
package sim

import (
	"fmt"

	"frugal/internal/data"
)

// Workload describes the embedding traffic of one training job.
type Workload struct {
	// Name labels result tables.
	Name string
	// Batch is the global batch size in samples.
	Batch int
	// KeysPerSample is the number of embedding lookups per sample
	// (features for REC, 3 for a KG triple).
	KeysPerSample int
	// SharedKeys are additional per-batch lookups shared by all samples
	// (KG negative samples).
	SharedKeys int
	// Dim is the embedding dimension.
	Dim int
	// KeySpace is the number of distinct embedding keys.
	KeySpace uint64
	// Distribution selects the key skew.
	Distribution data.Distribution
	// DNNFlopsPerSample is the dense forward+backward work per sample.
	DNNFlopsPerSample float64
	// CPUPerSample is CPU-side preprocessing per sample (graph sampling
	// for KG, feature parsing), charged to the "other" bucket.
	CPUPerSample float64
	// Seed makes traces reproducible.
	Seed int64
}

// Validate checks the workload shape.
func (w *Workload) Validate() error {
	if w.Batch <= 0 || w.KeysPerSample <= 0 || w.Dim <= 0 || w.KeySpace == 0 {
		return fmt.Errorf("sim: incomplete workload %+v", w)
	}
	if w.Distribution == "" {
		w.Distribution = data.DistZipf09
	}
	return nil
}

// RowBytes is the embedding row footprint.
func (w *Workload) RowBytes() int64 { return int64(w.Dim) * 4 }

// KeysPerBatch is the total lookups per global batch.
func (w *Workload) KeysPerBatch() int { return w.Batch*w.KeysPerSample + w.SharedKeys }

// MicroWorkload is the Exp #1 synthetic workload: 10 M keys, dim 32, no
// DNN, DLRM-like 26 lookups per sample.
func MicroWorkload(dist data.Distribution, batch int) Workload {
	return Workload{
		Name:          fmt.Sprintf("micro-%s", dist),
		Batch:         batch,
		KeysPerSample: 26,
		Dim:           32,
		KeySpace:      10_000_000,
		Distribution:  dist,
		Seed:          1,
	}
}

// RECWorkload derives the DLRM workload of a Table 2 dataset. layers sets
// the top-MLP depth (Exp #11 sweeps it; 0 → the paper's 512-512-256-1).
func RECWorkload(spec data.Spec, batch, layers int) Workload {
	if batch <= 0 {
		batch = spec.DefaultBatch
	}
	if layers <= 0 {
		layers = 4
	}
	// 512-512-256-1-ish top net: ≈6 flops per weight forward+backward.
	flops := float64(spec.EmbDim)*512*6 + 512*256*6 + 256*6
	flops += float64(layers-3) * 512 * 512 * 6
	return Workload{
		Name:              spec.Name,
		Batch:             batch,
		KeysPerSample:     spec.Features,
		Dim:               spec.EmbDim,
		KeySpace:          spec.KeySpace(),
		Distribution:      data.DistZipf09,
		DNNFlopsPerSample: flops,
		CPUPerSample:      40e-9,
		Seed:              2,
	}
}

// KGWorkload derives the TransE-style workload of a Table 2 KG dataset.
// scoreFlopsPerDim lets Exp #11 distinguish the four scoring functions
// (0 → TransE's ~8 flops per dimension per candidate).
func KGWorkload(spec data.Spec, batch int, scoreFlopsPerDim float64) Workload {
	if batch <= 0 {
		batch = spec.DefaultBatch
	}
	if scoreFlopsPerDim <= 0 {
		scoreFlopsPerDim = 8
	}
	const negSample = 200
	// Each positive scores against 200 shared negatives.
	flops := scoreFlopsPerDim * float64(spec.EmbDim) * float64(1+negSample)
	return Workload{
		Name:              spec.Name,
		Batch:             batch,
		KeysPerSample:     3,
		SharedKeys:        negSample,
		Dim:               spec.EmbDim,
		KeySpace:          spec.KeySpace(),
		Distribution:      data.DistZipf09,
		DNNFlopsPerSample: flops,
		CPUPerSample:      450e-9, // graph sampling is CPU-heavy
		Seed:              3,
	}
}

// trace generates the batch-key stream of a workload.
type trace struct {
	w      *Workload
	perKey data.KeyGen
	negs   data.KeyGen
}

func newTrace(w *Workload) (*trace, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	gen, err := data.NewGen(w.Distribution, w.Seed, w.KeySpace)
	if err != nil {
		return nil, err
	}
	t := &trace{w: w, perKey: gen}
	if w.SharedKeys > 0 {
		t.negs = data.NewUniform(w.Seed+17, w.KeySpace)
	}
	return t, nil
}

// next produces one global batch of keys.
func (t *trace) next() []uint64 {
	keys := make([]uint64, 0, t.w.KeysPerBatch())
	for i := 0; i < t.w.Batch*t.w.KeysPerSample; i++ {
		keys = append(keys, t.perKey.Next())
	}
	for i := 0; i < t.w.SharedKeys; i++ {
		keys = append(keys, t.negs.Next())
	}
	return keys
}
