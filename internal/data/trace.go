package data

import (
	"fmt"
	"sync"
)

// SyntheticTrace is the Exp #1 microbenchmark workload: `Steps` batches of
// `Batch` keys drawn from a key distribution, exercising only the
// embedding path (no DNN). It implements the p2f TraceSource contract.
type SyntheticTrace struct {
	gen   KeyGen
	batch int
	steps int64
	next  int64
	mu    sync.Mutex
}

// NewSyntheticTrace builds a trace of `steps` batches of `batch` keys.
func NewSyntheticTrace(gen KeyGen, batch int, steps int64) *SyntheticTrace {
	if batch <= 0 || steps <= 0 {
		panic(fmt.Sprintf("data: invalid trace shape batch=%d steps=%d", batch, steps))
	}
	return &SyntheticTrace{gen: gen, batch: batch, steps: steps}
}

// Next returns the next batch of keys, or ok=false past the last step.
func (t *SyntheticTrace) Next() ([]uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next >= t.steps {
		return nil, false
	}
	t.next++
	keys := make([]uint64, t.batch)
	for i := range keys {
		keys[i] = t.gen.Next()
	}
	return keys, true
}

// Steps returns the total number of batches in the trace.
func (t *SyntheticTrace) Steps() int64 { return t.steps }

// Batch returns the keys per batch.
func (t *SyntheticTrace) Batch() int { return t.batch }

// ----------------------------------------------------------------------
// REC workload (DLRM-style)

// RECBatch is one global batch of a recommendation workload: per sample,
// one categorical ID per feature plus a binary click label.
type RECBatch struct {
	// Keys holds BatchSize × Features embedding keys, sample-major.
	Keys []uint64
	// Labels holds BatchSize click labels ∈ {0, 1}.
	Labels []float32
	// Features is the per-sample key width.
	Features int
}

// RECStream synthesises an Avazu/Criteo-like trace from a Spec: each
// feature owns a contiguous slice of the ID space and is sampled with the
// dataset's Zipf skew. Labels carry a learnable signal: the click
// probability is a logistic function of hidden per-key weights, so a model
// that learns good embeddings drives the loss down — which is how the
// tests verify the runtime really trains.
type RECStream struct {
	spec    Spec
	batch   int
	steps   int64
	next    int64
	gens    []KeyGen
	offsets []uint64
	mu      sync.Mutex
}

// NewRECStream builds a stream of `steps` batches of `batch` samples.
// Pass batch=0 to use the spec's default batch size.
func NewRECStream(spec Spec, seed int64, batch int, steps int64) (*RECStream, error) {
	if spec.Kind != REC {
		return nil, fmt.Errorf("data: %s is not a REC dataset", spec.Name)
	}
	if batch <= 0 {
		batch = spec.DefaultBatch
	}
	if steps <= 0 {
		return nil, fmt.Errorf("data: steps must be positive, got %d", steps)
	}
	per := uint64(spec.IDs) / uint64(spec.Features)
	if per == 0 {
		per = 1
	}
	s := &RECStream{spec: spec, batch: batch, steps: steps}
	for f := 0; f < spec.Features; f++ {
		s.gens = append(s.gens, NewScrambledZipf(seed+int64(f)*7919, per, spec.Skew))
		s.offsets = append(s.offsets, uint64(f)*per)
	}
	return s, nil
}

// hiddenWeight derives a stable per-key latent weight in [-1, 1] from the
// key itself — the ground truth the labels are generated from.
func hiddenWeight(key uint64) float32 {
	h := key * 0x2545f4914f6cdd1d
	h ^= h >> 32
	return float32(int32(uint32(h))) / float32(1<<31)
}

// NextBatch returns the next typed batch, or ok=false past the last step.
func (s *RECStream) NextBatch() (RECBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= s.steps {
		return RECBatch{}, false
	}
	s.next++
	b := RECBatch{
		Keys:     make([]uint64, 0, s.batch*s.spec.Features),
		Labels:   make([]float32, 0, s.batch),
		Features: s.spec.Features,
	}
	for i := 0; i < s.batch; i++ {
		var score float32
		for f := 0; f < s.spec.Features; f++ {
			k := s.offsets[f] + s.gens[f].Next()
			b.Keys = append(b.Keys, k)
			score += hiddenWeight(k)
		}
		// Deterministic threshold on the latent score → learnable labels.
		if score > 0 {
			b.Labels = append(b.Labels, 1)
		} else {
			b.Labels = append(b.Labels, 0)
		}
	}
	return b, true
}

// Steps returns the stream length.
func (s *RECStream) Steps() int64 { return s.steps }

// Batch returns the samples per batch.
func (s *RECStream) Batch() int { return s.batch }

// Spec returns the dataset spec of the stream.
func (s *RECStream) Spec() Spec { return s.spec }

// ----------------------------------------------------------------------
// KG workload (TransE-style triples)

// KGBatch is one global batch of knowledge-graph triples with shared
// negative samples (the DGL-KE training regime of §4.1).
type KGBatch struct {
	Heads, Rels, Tails []uint64 // BatchSize triples; Rels are key-space offsets already applied
	Negs               []uint64 // NegSample negative entity keys shared across the batch
}

// AllKeys appends every embedding key the batch touches to dst.
func (b KGBatch) AllKeys(dst []uint64) []uint64 {
	dst = append(dst, b.Heads...)
	dst = append(dst, b.Rels...)
	dst = append(dst, b.Tails...)
	dst = append(dst, b.Negs...)
	return dst
}

// KGClusters is the number of latent entity types in synthetic graphs:
// entity e belongs to cluster e mod KGClusters, and relation r draws its
// tails from cluster r mod KGClusters (relations determine their object
// type, as in real knowledge graphs). This gives the stream the learnable
// regularity link-prediction metrics need; degree skew still follows the
// dataset's Zipf exponent.
const KGClusters = 16

// KGStream synthesises an FB15k/Freebase-like triple stream: head
// entities follow the graph's power-law degree distribution (Zipf), the
// relation is uniform, the tail is drawn from the relation's target type
// cluster, and each batch carries `NegSample` shared negative entities
// (dimensioned per the DGL-KE settings in §4.1).
type KGStream struct {
	spec      Spec
	batch     int
	negSample int
	steps     int64
	next      int64
	entities  KeyGen
	relations KeyGen
	tails     KeyGen
	negGen    KeyGen
	mu        sync.Mutex
}

// NewKGStream builds a stream of `steps` batches of `batch` triples with
// `negSample` shared negatives (0 → the paper's 200).
func NewKGStream(spec Spec, seed int64, batch, negSample int, steps int64) (*KGStream, error) {
	if spec.Kind != KG {
		return nil, fmt.Errorf("data: %s is not a KG dataset", spec.Name)
	}
	if batch <= 0 {
		batch = spec.DefaultBatch
	}
	if negSample <= 0 {
		negSample = 200
	}
	if steps <= 0 {
		return nil, fmt.Errorf("data: steps must be positive, got %d", steps)
	}
	return &KGStream{
		spec: spec, batch: batch, negSample: negSample, steps: steps,
		entities:  NewScrambledZipf(seed, uint64(spec.Vertices), spec.Skew),
		relations: NewUniform(seed+1, uint64(spec.Relations)),
		tails:     NewUniform(seed+3, uint64(spec.Vertices)),
		negGen:    NewUniform(seed+2, uint64(spec.Vertices)),
	}, nil
}

// TailFor draws a tail entity consistent with the latent type structure:
// uniform within the cluster relation `rel` maps head's cluster to.
// Exported so evaluation code can reuse the ground-truth rule.
func (s *KGStream) TailFor(head, rel uint64) uint64 {
	return ClusterTail(head, rel, uint64(s.spec.Vertices), s.tails.Next())
}

// ClusterTail maps a raw uniform draw into the target cluster of
// (head, rel) under the KGClusters block structure.
func ClusterTail(head, rel, vertices, draw uint64) uint64 {
	_ = head // tails are typed by the relation alone
	target := rel % KGClusters
	// Snap the draw onto the stride-KGClusters lattice of the target
	// cluster, staying within the entity range.
	t := draw - draw%KGClusters + target
	if t >= vertices {
		t -= KGClusters
	}
	return t
}

// NextBatch returns the next typed batch, or ok=false past the last step.
func (s *KGStream) NextBatch() (KGBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= s.steps {
		return KGBatch{}, false
	}
	s.next++
	relOffset := uint64(s.spec.Vertices)
	b := KGBatch{
		Heads: make([]uint64, s.batch),
		Rels:  make([]uint64, s.batch),
		Tails: make([]uint64, s.batch),
		Negs:  make([]uint64, s.negSample),
	}
	for i := 0; i < s.batch; i++ {
		b.Heads[i] = s.entities.Next()
		rel := s.relations.Next()
		b.Rels[i] = relOffset + rel
		b.Tails[i] = s.TailFor(b.Heads[i], rel)
	}
	for i := range b.Negs {
		b.Negs[i] = s.negGen.Next()
	}
	return b, true
}

// Steps returns the stream length.
func (s *KGStream) Steps() int64 { return s.steps }

// Batch returns the triples per batch.
func (s *KGStream) Batch() int { return s.batch }

// Spec returns the dataset spec of the stream.
func (s *KGStream) Spec() Spec { return s.spec }

// ----------------------------------------------------------------------
// Payload bridging to the controller's sample queue

// PayloadTrace adapts a typed batch stream to the p2f TraceSource
// contract while retaining each step's typed payload until the runtime
// consumes it with Take. The controller's prefetch depth bounds the number
// of outstanding payloads to L, so memory stays constant.
type PayloadTrace[T any] struct {
	gen      func() (payload T, keys []uint64, ok bool)
	mu       sync.Mutex
	payloads map[int64]T
	next     int64
}

// NewPayloadTrace wraps a generator that yields (payload, keys) pairs.
func NewPayloadTrace[T any](gen func() (T, []uint64, bool)) *PayloadTrace[T] {
	return &PayloadTrace[T]{gen: gen, payloads: make(map[int64]T)}
}

// Next implements the TraceSource contract for the controller's prefetch
// goroutine.
func (p *PayloadTrace[T]) Next() ([]uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	payload, keys, ok := p.gen()
	if !ok {
		return nil, false
	}
	p.payloads[p.next] = payload
	p.next++
	return keys, true
}

// Take removes and returns the typed payload of a step. It panics when the
// step was never generated or was already taken — both are runtime bugs.
func (p *PayloadTrace[T]) Take(step int64) T {
	p.mu.Lock()
	defer p.mu.Unlock()
	payload, ok := p.payloads[step]
	if !ok {
		panic(fmt.Sprintf("data: payload for step %d missing (double Take or never generated)", step))
	}
	delete(p.payloads, step)
	return payload
}

// Outstanding returns how many generated payloads have not been taken.
func (p *PayloadTrace[T]) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.payloads)
}
