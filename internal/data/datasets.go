package data

import "fmt"

// Kind distinguishes the two application families of the evaluation.
type Kind string

// Dataset kinds.
const (
	KG  Kind = "KG"  // knowledge-graph embedding (DGL-KE territory)
	REC Kind = "REC" // recommendation models (HugeCTR territory)
)

// Spec describes one dataset of Table 2. The published shape numbers are
// kept verbatim for the Table 2 reproduction; synthetic generators scale
// them down with ScaleFactor while preserving shape (feature count, skew,
// IDs-per-sample).
type Spec struct {
	Name string
	Kind Kind

	// KG shape (Table 2 top half).
	Vertices  int64
	Edges     int64
	Relations int64

	// REC shape (Table 2 bottom half).
	Features int
	IDs      int64
	Samples  int64

	// ModelSizeBytes is the published model size.
	ModelSizeBytes int64

	// EmbDim and DefaultBatch follow §4.1 (dim 400 for KG/TransE, dim 32
	// for REC/DLRM; batch 1200/2000 for KG, 1024 for REC).
	EmbDim       int
	DefaultBatch int

	// Skew is the Zipf exponent used by the synthetic stand-in trace.
	// Real CTR datasets are heavily skewed; graphs follow power-law
	// degree distributions.
	Skew float64
}

const (
	mb  = int64(1) << 20
	gbi = int64(1) << 30
)

// The Table 2 registry. Numbers are the paper's.
var (
	FB15k = Spec{
		Name: "FB15k", Kind: KG,
		Vertices: 592_000, Edges: 15_000, Relations: 1_300,
		ModelSizeBytes: 52 * mb,
		EmbDim:         400, DefaultBatch: 1200, Skew: 0.9,
	}
	Freebase = Spec{
		Name: "Freebase", Kind: KG,
		Vertices: 338_000_000, Edges: 86_100_000, Relations: 14_800,
		ModelSizeBytes: 688 * gbi / 10,
		EmbDim:         400, DefaultBatch: 2000, Skew: 0.9,
	}
	WikiKG = Spec{
		Name: "WikiKG", Kind: KG,
		Vertices: 87_000_000, Edges: 504_000_000, Relations: 1_300,
		ModelSizeBytes: 34 * gbi,
		EmbDim:         400, DefaultBatch: 2000, Skew: 0.9,
	}
	Avazu = Spec{
		Name: "Avazu", Kind: REC,
		Features: 22, IDs: 49_000_000, Samples: 40_000_000,
		ModelSizeBytes: 58 * gbi / 10,
		EmbDim:         32, DefaultBatch: 1024, Skew: 0.95,
	}
	Criteo = Spec{
		Name: "Criteo", Kind: REC,
		Features: 26, IDs: 34_000_000, Samples: 45_000_000,
		ModelSizeBytes: 41 * gbi / 10,
		EmbDim:         32, DefaultBatch: 1024, Skew: 0.95,
	}
	CriteoTB = Spec{
		Name: "CriteoTB", Kind: REC,
		Features: 26, IDs: 882_000_000, Samples: 4_370_000_000,
		ModelSizeBytes: 1103 * gbi / 10,
		EmbDim:         32, DefaultBatch: 1024, Skew: 0.95,
	}
)

// Specs returns the Table 2 registry in publication order.
func Specs() []Spec { return []Spec{FB15k, Freebase, WikiKG, Avazu, Criteo, CriteoTB} }

// SpecByName looks a dataset up by name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("data: unknown dataset %q", name)
}

// KeySpace returns the total embedding-key space of the dataset: entities
// plus relations for KG (relation keys live above the entity range), or
// the ID-space size for REC.
func (s Spec) KeySpace() uint64 {
	if s.Kind == KG {
		return uint64(s.Vertices + s.Relations)
	}
	return uint64(s.IDs)
}

// Scaled returns a copy with ID spaces and sample counts divided by
// factor (≥ 1), preserving feature counts, dims, batch sizes and skew —
// the laptop-scale stand-in recorded in DESIGN.md. Populations never drop
// below a floor that keeps the workload meaningful.
func (s Spec) Scaled(factor int64) Spec {
	if factor <= 1 {
		return s
	}
	out := s
	div := func(v, floor int64) int64 {
		v /= factor
		if v < floor {
			return floor
		}
		return v
	}
	if s.Kind == KG {
		out.Vertices = div(s.Vertices, 10_000)
		out.Edges = div(s.Edges, 10_000)
		out.Relations = div(s.Relations, 100)
	} else {
		out.IDs = div(s.IDs, 100_000)
		out.Samples = div(s.Samples, 100_000)
	}
	out.ModelSizeBytes = int64(out.KeySpace()) * int64(s.EmbDim) * 4
	return out
}

// RowBytes returns the size of one embedding row.
func (s Spec) RowBytes() int64 { return int64(s.EmbDim) * 4 }

// KeysPerSample returns how many embedding lookups one training sample
// performs: one per categorical feature for REC; head + relation + tail
// for a KG triple (negative samples are accounted separately).
func (s Spec) KeysPerSample() int {
	if s.Kind == KG {
		return 3
	}
	return s.Features
}
