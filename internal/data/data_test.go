package data

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

func TestUniformRange(t *testing.T) {
	u := NewUniform(1, 100)
	if u.N() != 100 {
		t.Fatalf("N = %d", u.N())
	}
	for i := 0; i < 10000; i++ {
		if k := u.Next(); k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	const n = 100000
	z := NewZipf(1, n, 0.99)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 must be by far the hottest key under theta=0.99.
	if counts[0] < draws/100 {
		t.Fatalf("rank 0 drawn %d times of %d — not skewed", counts[0], draws)
	}
	// The top-1% of keys must absorb the majority of accesses.
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	limit := n / 100
	for i := 0; i < limit && i < len(freqs); i++ {
		top += freqs[i]
	}
	if float64(top)/draws < 0.5 {
		t.Fatalf("top-1%% keys take %.2f of traffic, want > 0.5", float64(top)/draws)
	}
}

func TestZipfLowerThetaLessSkewed(t *testing.T) {
	mass := func(theta float64) float64 {
		z := NewZipf(7, 100000, theta)
		hot := 0
		const draws = 100000
		for i := 0; i < draws; i++ {
			if z.Next() < 100 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	if m09, m099 := mass(0.9), mass(0.99); m09 >= m099 {
		t.Fatalf("theta 0.9 mass %.3f should be below theta 0.99 mass %.3f", m09, m099)
	}
}

func TestScrambledZipfSpreadsHotKeys(t *testing.T) {
	z := NewScrambledZipf(1, 1000000, 0.9)
	low := 0
	for i := 0; i < 10000; i++ {
		if z.Next() < 1000 {
			low++
		}
	}
	// Unscrambled zipf would put ~most draws below 1000; scrambled must not.
	if low > 1000 {
		t.Fatalf("%d of 10000 draws in the lowest 0.1%% of key space — not scrambled", low)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(1, 0, 0.9) },
		func() { NewZipf(1, 10, 0) },
		func() { NewZipf(1, 10, 1) },
		func() { NewUniform(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZetaTailApproximation(t *testing.T) {
	// The integral tail must be close to the true sum for a case we can
	// afford to compute directly.
	direct := 0.0
	const n = 20_000_000
	for i := 1; i <= n; i++ {
		direct += 1 / math.Pow(float64(i), 0.9)
	}
	approx := zeta(n, 0.9)
	if rel := math.Abs(approx-direct) / direct; rel > 0.01 {
		t.Fatalf("zeta tail approximation off by %.4f", rel)
	}
}

func TestNewGen(t *testing.T) {
	for _, d := range Distributions() {
		g, err := NewGen(d, 1, 1000)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if g.N() != 1000 {
			t.Fatalf("%s: N = %d", d, g.N())
		}
	}
	if _, err := NewGen("bogus", 1, 10); err == nil {
		t.Fatal("unknown distribution should error")
	}
}

func TestTable2Registry(t *testing.T) {
	specs := Specs()
	if len(specs) != 6 {
		t.Fatalf("registry has %d datasets, want 6", len(specs))
	}
	for _, s := range specs {
		got, err := SpecByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Fatalf("SpecByName(%s): %v", s.Name, err)
		}
		if s.KeySpace() == 0 || s.ModelSizeBytes == 0 || s.EmbDim == 0 {
			t.Fatalf("%s: incomplete spec %+v", s.Name, s)
		}
	}
	if _, err := SpecByName("MovieLens"); err == nil {
		t.Fatal("unknown dataset should error")
	}
	// Table 2 headline shapes.
	if Avazu.Features != 22 || Criteo.Features != 26 || CriteoTB.IDs != 882_000_000 {
		t.Fatal("REC shapes disagree with Table 2")
	}
	if Freebase.Relations != 14_800 || WikiKG.Relations != 1_300 {
		t.Fatal("KG shapes disagree with Table 2")
	}
}

func TestSpecScaled(t *testing.T) {
	s := CriteoTB.Scaled(10000)
	if s.IDs >= CriteoTB.IDs || s.IDs < 100_000 {
		t.Fatalf("scaled IDs = %d", s.IDs)
	}
	if s.Features != CriteoTB.Features || s.EmbDim != CriteoTB.EmbDim {
		t.Fatal("scaling must preserve shape")
	}
	if s.ModelSizeBytes != int64(s.KeySpace())*int64(s.EmbDim)*4 {
		t.Fatal("scaled model size not recomputed")
	}
	if got := FB15k.Scaled(1); got != FB15k {
		t.Fatal("factor 1 must be identity")
	}
	kg := Freebase.Scaled(1 << 40)
	if kg.Vertices < 10_000 || kg.Relations < 100 {
		t.Fatalf("scaling floor violated: %+v", kg)
	}
}

func TestSyntheticTrace(t *testing.T) {
	tr := NewSyntheticTrace(NewUniform(1, 100), 16, 3)
	seen := 0
	for {
		keys, ok := tr.Next()
		if !ok {
			break
		}
		if len(keys) != 16 {
			t.Fatalf("batch len = %d", len(keys))
		}
		seen++
	}
	if seen != 3 || tr.Steps() != 3 {
		t.Fatalf("trace yielded %d steps", seen)
	}
}

func TestRECStream(t *testing.T) {
	spec := Avazu.Scaled(1000)
	s, err := NewRECStream(spec, 1, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec().Name != "Avazu" || s.Steps() != 5 {
		t.Fatal("stream metadata wrong")
	}
	ones := 0
	total := 0
	for {
		b, ok := s.NextBatch()
		if !ok {
			break
		}
		if len(b.Keys) != 8*spec.Features || len(b.Labels) != 8 {
			t.Fatalf("batch shape: keys=%d labels=%d", len(b.Keys), len(b.Labels))
		}
		for _, k := range b.Keys {
			if k >= uint64(spec.IDs) {
				t.Fatalf("key %d out of ID space %d", k, spec.IDs)
			}
		}
		for _, l := range b.Labels {
			if l != 0 && l != 1 {
				t.Fatalf("label %v not binary", l)
			}
			if l == 1 {
				ones++
			}
			total++
		}
	}
	if ones == 0 || ones == total {
		t.Fatalf("labels degenerate: %d/%d positive", ones, total)
	}
}

func TestRECStreamValidation(t *testing.T) {
	if _, err := NewRECStream(FB15k, 1, 8, 5); err == nil {
		t.Fatal("KG spec must be rejected")
	}
	if _, err := NewRECStream(Avazu, 1, 8, 0); err == nil {
		t.Fatal("steps=0 must be rejected")
	}
}

func TestKGStream(t *testing.T) {
	spec := FB15k.Scaled(10)
	s, err := NewKGStream(spec, 1, 4, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := s.NextBatch()
	if !ok {
		t.Fatal("empty stream")
	}
	if len(b.Heads) != 4 || len(b.Rels) != 4 || len(b.Tails) != 4 || len(b.Negs) != 16 {
		t.Fatalf("batch shape wrong: %+v", b)
	}
	ents := uint64(spec.Vertices)
	for i := range b.Heads {
		if b.Heads[i] >= ents || b.Tails[i] >= ents {
			t.Fatal("entity key out of range")
		}
		if b.Rels[i] < ents || b.Rels[i] >= ents+uint64(spec.Relations) {
			t.Fatalf("relation key %d outside relation range", b.Rels[i])
		}
	}
	keys := b.AllKeys(nil)
	if len(keys) != 4*3+16 {
		t.Fatalf("AllKeys len = %d", len(keys))
	}
}

func TestKGStreamValidation(t *testing.T) {
	if _, err := NewKGStream(Avazu, 1, 4, 4, 3); err == nil {
		t.Fatal("REC spec must be rejected")
	}
	if _, err := NewKGStream(FB15k, 1, 4, 4, 0); err == nil {
		t.Fatal("steps=0 must be rejected")
	}
}

func TestPayloadTrace(t *testing.T) {
	n := 0
	tr := NewPayloadTrace(func() (string, []uint64, bool) {
		if n >= 3 {
			return "", nil, false
		}
		n++
		return string(rune('a' + n - 1)), []uint64{uint64(n)}, true
	})
	for i := 0; i < 3; i++ {
		keys, ok := tr.Next()
		if !ok || keys[0] != uint64(i+1) {
			t.Fatalf("Next %d = %v,%v", i, keys, ok)
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("exhausted trace should report done")
	}
	if tr.Outstanding() != 3 {
		t.Fatalf("Outstanding = %d", tr.Outstanding())
	}
	if got := tr.Take(1); got != "b" {
		t.Fatalf("Take(1) = %q", got)
	}
	if tr.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d", tr.Outstanding())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Take must panic")
		}
	}()
	tr.Take(1)
}

func TestReadKeyTrace(t *testing.T) {
	in := "1 2 3\n\n4 5 6\n7 8 9\n"
	tr, err := ReadKeyTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 3 || tr.Batch() != 3 {
		t.Fatalf("shape: steps=%d batch=%d", tr.Steps(), tr.Batch())
	}
	if tr.MaxKey() != 9 {
		t.Fatalf("MaxKey = %d", tr.MaxKey())
	}
	b1, ok := tr.Next()
	if !ok || b1[0] != 1 || b1[2] != 3 {
		t.Fatalf("first batch = %v", b1)
	}
	tr.Next()
	tr.Next()
	if _, ok := tr.Next(); ok {
		t.Fatal("exhausted trace should report done")
	}
	tr.Rewind()
	if b, ok := tr.Next(); !ok || b[0] != 1 {
		t.Fatal("Rewind failed")
	}
}

func TestReadKeyTraceErrors(t *testing.T) {
	if _, err := ReadKeyTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty trace must error")
	}
	if _, err := ReadKeyTrace(strings.NewReader("1 x 3\n")); err == nil {
		t.Fatal("malformed key must error")
	}
}

// TestTraceRoundtrip: a synthetic trace written in the datagen format and
// read back must replay identically.
func TestTraceRoundtrip(t *testing.T) {
	gen := NewSyntheticTrace(NewUniform(3, 500), 8, 5)
	var sb strings.Builder
	var recorded [][]uint64
	for {
		keys, ok := gen.Next()
		if !ok {
			break
		}
		recorded = append(recorded, keys)
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", k)
		}
		sb.WriteByte('\n')
	}
	tr, err := ReadKeyTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range recorded {
		got, ok := tr.Next()
		if !ok || len(got) != len(want) {
			t.Fatal("replay shape mismatch")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("replay content mismatch")
			}
		}
	}
}
