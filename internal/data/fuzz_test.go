package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadKeyTrace: arbitrary input must either parse into a replayable
// trace or fail cleanly — never panic, never mis-parse.
func FuzzReadKeyTrace(f *testing.F) {
	f.Add("1 2 3\n4 5 6\n")
	f.Add("")
	f.Add("18446744073709551615\n")
	f.Add("1 x\n")
	f.Add("  7  \n\n8\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadKeyTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		// A successful parse must replay exactly Steps() non-empty batches.
		n := int64(0)
		for {
			b, ok := tr.Next()
			if !ok {
				break
			}
			if len(b) == 0 {
				t.Fatal("parsed an empty batch")
			}
			n++
		}
		if n != tr.Steps() {
			t.Fatalf("replayed %d batches, Steps() = %d", n, tr.Steps())
		}
	})
}

// FuzzRoundtrip: any well-formed batch list survives a write→parse cycle.
func FuzzTraceRoundtrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		var sb bytes.Buffer
		var want [][]uint64
		for i := 0; i < len(raw); i += 4 {
			end := i + 4
			if end > len(raw) {
				end = len(raw)
			}
			var batch []uint64
			for j, b := range raw[i:end] {
				if j > 0 {
					sb.WriteByte(' ')
				}
				k := uint64(b)
				batch = append(batch, k)
				sb.WriteString(strings.TrimSpace(strings.Repeat(" ", 0) + itoa(k)))
			}
			sb.WriteByte('\n')
			want = append(want, batch)
		}
		tr, err := ReadKeyTrace(&sb)
		if err != nil {
			t.Fatalf("well-formed trace rejected: %v", err)
		}
		for _, wb := range want {
			got, ok := tr.Next()
			if !ok || len(got) != len(wb) {
				t.Fatal("replay shape mismatch")
			}
			for i := range wb {
				if got[i] != wb[i] {
					t.Fatal("replay content mismatch")
				}
			}
		}
	})
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
