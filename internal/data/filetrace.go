package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// FileTrace replays a recorded key trace (one batch per line, keys
// space-separated — the format cmd/frugal-datagen emits with -trace).
// It implements the p2f TraceSource contract, so recorded production
// traces can drive the runtime and the simulator alike.
type FileTrace struct {
	batches [][]uint64
	mu      sync.Mutex
	next    int
}

// ReadKeyTrace parses a key trace. Blank lines are skipped; any malformed
// token aborts with a line-numbered error.
func ReadKeyTrace(r io.Reader) (*FileTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	t := &FileTrace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		batch := make([]uint64, len(fields))
		for i, f := range fields {
			k, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("data: trace line %d: bad key %q: %w", line, f, err)
			}
			batch[i] = k
		}
		t.batches = append(t.batches, batch)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading trace: %w", err)
	}
	if len(t.batches) == 0 {
		return nil, fmt.Errorf("data: trace is empty")
	}
	return t, nil
}

// Next returns the next recorded batch, or ok=false at end of trace.
func (t *FileTrace) Next() ([]uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next >= len(t.batches) {
		return nil, false
	}
	b := t.batches[t.next]
	t.next++
	return b, true
}

// Steps returns the number of recorded batches.
func (t *FileTrace) Steps() int64 { return int64(len(t.batches)) }

// Batch returns the first batch's key count (recorded traces are usually
// rectangular; heterogeneous batches are allowed and replayed verbatim).
func (t *FileTrace) Batch() int {
	if len(t.batches) == 0 {
		return 0
	}
	return len(t.batches[0])
}

// MaxKey returns the largest key in the trace — callers size their
// embedding tables as MaxKey()+1.
func (t *FileTrace) MaxKey() uint64 {
	var max uint64
	for _, b := range t.batches {
		for _, k := range b {
			if k > max {
				max = k
			}
		}
	}
	return max
}

// Rewind resets the replay cursor (for multi-epoch replays).
func (t *FileTrace) Rewind() {
	t.mu.Lock()
	t.next = 0
	t.mu.Unlock()
}
