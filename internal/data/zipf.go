// Package data provides the workloads of the paper's evaluation (§4.1):
// synthetic key traces under uniform and Zipfian distributions, and
// synthetic stand-ins for the six real-world datasets of Table 2 with the
// published shape parameters (feature counts, ID-space sizes, skew).
package data

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// KeyGen produces embedding keys from some distribution over [0, N).
type KeyGen interface {
	Next() uint64
	// N returns the key-space size.
	N() uint64
}

// Uniform draws keys uniformly from [0, n).
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

// NewUniform builds a uniform generator over [0, n).
func NewUniform(seed int64, n uint64) *Uniform {
	if n == 0 {
		panic("data: uniform key space must be non-empty")
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next returns the next key.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// N returns the key-space size.
func (u *Uniform) N() uint64 { return u.n }

// Zipf draws keys from a Zipfian distribution with exponent theta ∈ (0, 1)
// over [0, n) — the skew regime of the paper's microbenchmarks (0.9 and
// 0.99), which the standard library's rand.Zipf (s > 1) cannot produce.
// The implementation follows the Gray et al. quantile approximation used
// by YCSB. Rank 0 is the hottest key; use NewScrambledZipf to spread hot
// keys across the key space.
type Zipf struct {
	rng               *rand.Rand
	n                 uint64
	theta             float64
	alpha, zetan, eta float64
	scramble          bool
}

// NewZipf builds a Zipfian generator with exponent theta over [0, n).
func NewZipf(seed int64, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("data: zipf key space must be non-empty")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("data: zipf theta must be in (0,1), got %v", theta))
	}
	z := &Zipf{rng: rand.New(rand.NewSource(seed)), n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// NewScrambledZipf is NewZipf with hot ranks scrambled over the key space,
// so that the hottest keys do not cluster at the low end (matching how hot
// IDs are spread in real tables, and keeping cache shards balanced).
func NewScrambledZipf(seed int64, n uint64, theta float64) *Zipf {
	z := NewZipf(seed, n, theta)
	z.scramble = true
	return z
}

// zetaCache memoises zeta values: experiment sweeps build many generators
// over the same (large) key spaces.
var zetaCache sync.Map // [2]float64{n, theta} → float64

// zeta computes the generalised harmonic number H_{n,theta}. For the key
// spaces of the paper (≤ 10⁹) the direct sum is computed once per
// (n, theta) pair; beyond 10⁷ terms the tail is integral-approximated.
func zeta(n uint64, theta float64) float64 {
	key := [2]float64{float64(n), theta}
	if v, ok := zetaCache.Load(key); ok {
		return v.(float64)
	}
	v := zetaDirect(n, theta)
	zetaCache.Store(key, v)
	return v
}

func zetaDirect(n uint64, theta float64) float64 {
	const direct = 10_000_000
	var sum float64
	limit := n
	if limit > direct {
		limit = direct
	}
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > limit {
		// ∫ x^-θ dx from `limit` to n approximates the remaining tail.
		a := 1 - theta
		sum += (math.Pow(float64(n), a) - math.Pow(float64(limit), a)) / a
	}
	return sum
}

// Next returns the next key.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if !z.scramble {
		return rank
	}
	// Mix rank into the key space with an invertible hash.
	h := rank
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h % z.n
}

// N returns the key-space size.
func (z *Zipf) N() uint64 { return z.n }

// Distribution names a key distribution of the microbenchmark (Fig 8).
type Distribution string

// The three microbenchmark distributions of Exp #1.
const (
	DistUniform Distribution = "uniform"
	DistZipf09  Distribution = "zipf-0.9"
	DistZipf099 Distribution = "zipf-0.99"
)

// NewGen builds the generator for a named distribution.
func NewGen(d Distribution, seed int64, n uint64) (KeyGen, error) {
	switch d {
	case DistUniform:
		return NewUniform(seed, n), nil
	case DistZipf09:
		return NewScrambledZipf(seed, n, 0.9), nil
	case DistZipf099:
		return NewScrambledZipf(seed, n, 0.99), nil
	default:
		return nil, fmt.Errorf("data: unknown distribution %q", d)
	}
}

// Distributions returns the Exp #1 sweep order.
func Distributions() []Distribution {
	return []Distribution{DistUniform, DistZipf09, DistZipf099}
}
