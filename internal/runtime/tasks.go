package runtime

import (
	"fmt"
	"math/rand"

	"frugal/internal/data"
	"frugal/internal/graph"
	"frugal/internal/model"
)

// NewREC builds a recommendation training job: DLRM (one top-MLP replica
// per GPU, as data-parallel trainers keep theirs) over a REC stream. The
// embedding table is the host slab; Config.Rows must cover the stream's
// ID space.
func NewREC(cfg Config, stream *data.RECStream, hidden []int, steps int64) (*Job, error) {
	spec := stream.Spec()
	if cfg.Rows == 0 {
		cfg.Rows = int64(spec.KeySpace())
	}
	if cfg.Dim == 0 {
		cfg.Dim = spec.EmbDim
	}
	if cfg.Rows < int64(spec.KeySpace()) {
		return nil, fmt.Errorf("runtime: Rows %d smaller than %s key space %d", cfg.Rows, spec.Name, spec.KeySpace())
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	models := make([]*model.DLRM, cfg.NumGPUs)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for w := range models {
		m, err := model.NewDLRM(rng, spec.Features, cfg.Dim, hidden)
		if err != nil {
			return nil, err
		}
		models[w] = m
	}

	n := cfg.NumGPUs
	features := spec.Features
	lr := cfg.LR
	jobRef := &jobHandle{}
	gen := func() (stepPayload, []uint64, bool) {
		b, ok := stream.NextBatch()
		if !ok {
			return stepPayload{}, nil, false
		}
		samples := len(b.Labels)
		payload := stepPayload{work: make([]shardWork, n)}
		for w := 0; w < n; w++ {
			var keys []uint64
			var labels []float32
			for s := w; s < samples; s += n {
				keys = append(keys, b.Keys[s*features:(s+1)*features]...)
				labels = append(labels, b.Labels[s])
			}
			m := models[w]
			payload.work[w] = shardWork{
				keys: keys,
				compute: func(rows [][]float32, grads [][]float32) float32 {
					preds := make([]float32, len(labels))
					loss, err := m.TrainBatch(rows, labels, grads, preds, lr)
					if err != nil {
						panic(err) // shapes are constructed above; a mismatch is a bug
					}
					jobRef.recordPreds(preds, labels)
					return loss * float32(len(labels))
				},
			}
		}
		return payload, b.Keys, true
	}
	job, err := newJob(cfg, clampSteps(steps, stream.Steps()), stream.Batch(), gen)
	if err != nil {
		return nil, err
	}
	jobRef.j = job
	return job, nil
}

// jobHandle late-binds the job pointer into payload closures that are
// constructed before the job itself.
type jobHandle struct{ j *Job }

func (h *jobHandle) recordPreds(preds, labels []float32) {
	if h.j != nil {
		h.j.recordPreds(preds, labels)
	}
}

// NewKG builds a knowledge-graph training job: the given triple model over
// a KG stream, with the DGL-KE negative-sampling objective. All workers
// share the batch's negative entities (and contribute partial gradients
// to them — the P²F commit path aggregates the partials on host memory).
func NewKG(cfg Config, stream *data.KGStream, tm model.TripleModel, steps int64) (*Job, error) {
	spec := stream.Spec()
	if cfg.Rows == 0 {
		cfg.Rows = int64(spec.KeySpace())
	}
	if cfg.Dim == 0 {
		cfg.Dim = spec.EmbDim
	}
	if cfg.Rows < int64(spec.KeySpace()) {
		return nil, fmt.Errorf("runtime: Rows %d smaller than %s key space %d", cfg.Rows, spec.Name, spec.KeySpace())
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	n := cfg.NumGPUs
	gen := func() (stepPayload, []uint64, bool) {
		b, ok := stream.NextBatch()
		if !ok {
			return stepPayload{}, nil, false
		}
		triples := len(b.Heads)
		negs := len(b.Negs)
		payload := stepPayload{work: make([]shardWork, n)}
		for w := 0; w < n; w++ {
			var mine []int
			for t := w; t < triples; t += n {
				mine = append(mine, t)
			}
			keys := make([]uint64, 0, len(mine)*3+negs)
			for _, t := range mine {
				keys = append(keys, b.Heads[t], b.Rels[t], b.Tails[t])
			}
			keys = append(keys, b.Negs...)
			count := len(mine)
			payload.work[w] = shardWork{
				keys: keys,
				compute: func(rows [][]float32, grads [][]float32) float32 {
					negRows := rows[count*3:]
					negGrads := grads[count*3:]
					var loss float32
					for t := 0; t < count; t++ {
						loss += model.TrainTriple(tm,
							rows[t*3], rows[t*3+1], rows[t*3+2], negRows,
							grads[t*3], grads[t*3+1], grads[t*3+2], negGrads)
					}
					return loss
				},
			}
		}
		return payload, b.AllKeys(nil), true
	}
	return newJob(cfg, clampSteps(steps, stream.Steps()), stream.Batch(), gen)
}

// clampSteps resolves the requested step count against the stream length
// (0 or negative → the whole stream).
func clampSteps(requested, available int64) int64 {
	if requested <= 0 || requested > available {
		return available
	}
	return requested
}

// KeyTrace is any replayable batch-of-keys source: synthetic generators
// (data.SyntheticTrace) or recorded traces (data.FileTrace).
type KeyTrace interface {
	Next() ([]uint64, bool)
	Steps() int64
	Batch() int
}

// NewMicro builds the Exp #1 microbenchmark job: pure embedding traffic
// (gather + optimizer update with a synthetic gradient), no DNN. Every
// key in the batch receives a gradient pushing its first component
// towards the key's parity — enough signal for tests to verify updates
// land.
func NewMicro(cfg Config, trace KeyTrace, steps int64) (*Job, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := cfg.NumGPUs
	gen := func() (stepPayload, []uint64, bool) {
		keys, ok := trace.Next()
		if !ok {
			return stepPayload{}, nil, false
		}
		payload := stepPayload{work: make([]shardWork, n)}
		for w := 0; w < n; w++ {
			var mine []uint64
			for i := w; i < len(keys); i += n {
				mine = append(mine, keys[i])
			}
			shardKeys := mine
			payload.work[w] = shardWork{
				keys: shardKeys,
				compute: func(rows [][]float32, grads [][]float32) float32 {
					var loss float32
					for i, row := range rows {
						// Pull row[0] towards ±1 by key parity: grad =
						// row[0] − target (quadratic loss).
						target := float32(1)
						if shardKeys[i]%2 == 1 {
							target = -1
						}
						diff := row[0] - target
						grads[i][0] = diff
						loss += diff * diff / 2
					}
					return loss
				},
			}
		}
		return payload, keys, true
	}
	return newJob(cfg, clampSteps(steps, trace.Steps()), trace.Batch(), gen)
}

// NewGNN builds a graph-learning job: GraphSAGE-style link prediction over
// a synthetic power-law graph (the third application family the paper's
// introduction motivates). Each global step samples `edges` positive
// edges; every positive trains against one uniform negative, with
// `sampler.Fanout()` sampled neighbors per node. All gradients land in
// node embeddings and travel the same P²F commit path as the other tasks.
func NewGNN(cfg Config, g *graph.Graph, sampler *graph.Sampler, edges int, steps int64) (*Job, error) {
	if cfg.Rows == 0 {
		cfg.Rows = int64(g.Nodes())
	}
	if cfg.Dim == 0 {
		cfg.Dim = 32
	}
	if cfg.Rows < int64(g.Nodes()) {
		return nil, fmt.Errorf("runtime: Rows %d smaller than graph node count %d", cfg.Rows, g.Nodes())
	}
	if edges <= 0 {
		edges = 128
	}
	if steps <= 0 {
		return nil, fmt.Errorf("runtime: steps must be positive, got %d", steps)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	scorers := make([]*model.GNNScorer, cfg.NumGPUs)
	for w := range scorers {
		sc, err := model.NewGNNScorer(cfg.Dim, sampler.Fanout())
		if err != nil {
			return nil, err
		}
		scorers[w] = sc
	}

	n := cfg.NumGPUs
	fan := sampler.Fanout()
	// Per-positive key block: u, v, neg, then the three neighbor groups.
	block := 3 + 3*fan
	gen := func() (stepPayload, []uint64, bool) {
		b := sampler.SampleBatch(edges)
		payload := stepPayload{work: make([]shardWork, n)}
		for w := 0; w < n; w++ {
			var keys []uint64
			var mine []int
			for e := w; e < edges; e += n {
				mine = append(mine, e)
				keys = append(keys, b.U[e], b.V[e], b.Neg[e])
				keys = append(keys, b.UNbrs[e*fan:(e+1)*fan]...)
				keys = append(keys, b.VNbrs[e*fan:(e+1)*fan]...)
				keys = append(keys, b.NegNbrs[e*fan:(e+1)*fan]...)
			}
			sc := scorers[w]
			count := len(mine)
			payload.work[w] = shardWork{
				keys: keys,
				compute: func(rows [][]float32, grads [][]float32) float32 {
					var loss float32
					for i := 0; i < count; i++ {
						o := i * block
						u, v, neg := rows[o], rows[o+1], rows[o+2]
						uN := rows[o+3 : o+3+fan]
						vN := rows[o+3+fan : o+3+2*fan]
						negN := rows[o+3+2*fan : o+3+3*fan]
						gu, gv, gneg := grads[o], grads[o+1], grads[o+2]
						guN := grads[o+3 : o+3+fan]
						gvN := grads[o+3+fan : o+3+2*fan]
						gnegN := grads[o+3+2*fan : o+3+3*fan]
						loss += sc.TrainPair(1, u, uN, v, vN, gu, guN, gv, gvN)
						loss += sc.TrainPair(0, u, uN, neg, negN, gu, guN, gneg, gnegN)
					}
					return loss
				},
			}
		}
		return payload, b.AllKeys(nil), true
	}
	return newJob(cfg, steps, edges, gen)
}
