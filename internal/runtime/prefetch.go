package runtime

import (
	"sync"

	"frugal/internal/cache"
	"frugal/internal/comm"
)

// This file implements the BagPipe-style lookahead prefetcher (see
// DESIGN.md §5i). The P²F controller already walks the sample trace L
// steps ahead of training to register future reads; the prefetcher rides
// the same stream to make the cache *oracle-fed*: while step S computes,
// it pulls the key sets of batches S+1..S+depth, fills predicted misses
// from host memory, and window-pins every slot those batches will touch so
// eviction cannot victimize a row the window is about to re-request. The
// gather at S+1 then finds its rows resident and keeps the PR-3 zero-copy,
// zero-alloc fast path.
//
// Concurrency model. The cache directory is single-threaded by design, so
// each worker's prefetcher owns a mutex (mu) that serialises every
// directory access: the prefetcher's fill pass, the worker's gather phase,
// and the commit phase's applyLocal writes all hold it. The compute phase
// deliberately does NOT — it only reads row storage of slots that are
// epoch-pinned (gathered this step), and the prefetcher never rewrites the
// bytes of an epoch-pinned slot, so compute overlaps with prefetch I/O,
// which is the point of the whole exercise.
//
// Flush-race safety. A prefetched row may be rewritten by a concurrent
// flush between its fill and its use. Fills read through RowStore.ReadRow,
// which returns the exact version read under the row's stripe lock, and
// that version becomes the slot's tag — so the tag never overstates the
// content. A row that goes stale after the fill simply misses its version
// check at gather (counted PrefetchLate) and is refilled from the
// gate-protected host row; a stale prefetch is never served.

// pfBatch is one future batch buffered in the prefetcher's ring: the step
// it belongs to, a private copy of its key set, and the slots it
// window-pinned. All three slices recycle their capacity across laps, so
// the steady-state prefetch path allocates nothing.
type pfBatch struct {
	step int64
	keys []uint64 // guarded by fmu (written at feed, read by the fill pass)
	// pinned lists the slot indices this batch window-pinned, to unpin at
	// retire. Guarded by mu (the cache guard), like the pins themselves.
	pinned []int32
}

// prefetcher runs the lookahead fill stage for one worker's cache.
type prefetcher struct {
	id      int
	numGPUs int
	c       *cache.Cache
	slab    RowStore
	depth   int

	// mu serialises all access to the cache directory and to in-place row
	// refills: prefetch fill pass vs. the worker's gather and applyLocal.
	mu sync.Mutex

	// fmu guards the feed/processing/retire counters and the ring slots'
	// step/keys fields; cond multiplexes all three wait conditions (ring
	// space for feed, work for loop, completion for waitFor).
	fmu     sync.Mutex
	cond    *sync.Cond
	ring    []pfBatch
	fed     int64 // batches received from the trace feed
	done    int64 // batches whose fill pass completed
	retired int64 // batches whose step has committed (pins released)
	stopped bool
	wg      sync.WaitGroup
}

// newPrefetcher builds the prefetcher for worker id. lookahead is the
// controller's L (bounds how far ahead the feed can run), depth how many
// filled batches may be outstanding at once.
func newPrefetcher(id, numGPUs int, c *cache.Cache, slab RowStore, depth, lookahead int) *prefetcher {
	p := &prefetcher{
		id:      id,
		numGPUs: numGPUs,
		c:       c,
		slab:    slab,
		depth:   depth,
		// The ring must absorb the deepest natural in-flight window —
		// depth unprocessed batches plus up to L fed-but-unretired ones —
		// without blocking the feed; slack on top costs only metadata.
		ring: make([]pfBatch, depth+lookahead+4),
	}
	p.cond = sync.NewCond(&p.fmu)
	return p
}

func (p *prefetcher) start() {
	p.wg.Add(1)
	go p.loop()
}

// stop wakes every waiter and joins the fill goroutine. Idempotent; safe
// while feeds, waits and retires are still arriving (they all bail out on
// the stopped flag).
func (p *prefetcher) stop() {
	p.fmu.Lock()
	if p.stopped {
		p.fmu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	p.cond.Broadcast()
	p.fmu.Unlock()
	p.wg.Wait()
}

// feed hands the prefetcher the key set of one future batch. Batches must
// arrive in step order starting at 0 (both feeds — the P²F prefetch hook
// and the write-through dispatcher's read-ahead — enumerate steps
// sequentially, so batch k is step k). The keys slice is copied; the
// caller may reuse it. Blocks for ring space, which backpressures the
// controller's prefetch goroutine exactly like a full sample queue.
func (p *prefetcher) feed(step int64, keys []uint64) {
	p.fmu.Lock()
	for !p.stopped && p.fed-p.retired >= int64(len(p.ring)) {
		p.cond.Wait()
	}
	if p.stopped {
		p.fmu.Unlock()
		return
	}
	b := &p.ring[p.fed%int64(len(p.ring))]
	b.step = step
	b.keys = append(b.keys[:0], keys...)
	p.fed++
	p.cond.Broadcast()
	p.fmu.Unlock()
}

// waitFor blocks until the fill pass for step has completed, so the
// worker's gather finds its rows resident and window-pinned. Returns
// immediately on stop (the gather then simply pays demand misses).
// Progress is guaranteed with depth ≥ 1: when the worker asks for step S
// it has retired S batches, so done may advance to at least S+1.
func (p *prefetcher) waitFor(step int64) {
	p.fmu.Lock()
	for !p.stopped && p.done <= step {
		p.cond.Wait()
	}
	p.fmu.Unlock()
}

// retire releases the window pins of the oldest outstanding batch (the one
// the worker just committed), letting eviction reclaim slots no future
// batch in the window needs and opening the depth budget for the next fill.
func (p *prefetcher) retire(step int64) {
	p.fmu.Lock()
	if p.retired >= p.done {
		// Stopped mid-window: the batch was never filled, nothing pinned.
		if p.retired < p.fed {
			p.retired++
		}
		p.cond.Broadcast()
		p.fmu.Unlock()
		return
	}
	b := &p.ring[p.retired%int64(len(p.ring))]
	p.fmu.Unlock()

	p.mu.Lock()
	for _, i := range b.pinned {
		p.c.WindowUnpin(int(i))
	}
	b.pinned = b.pinned[:0]
	p.mu.Unlock()

	p.fmu.Lock()
	p.retired++
	p.cond.Broadcast()
	p.fmu.Unlock()
}

// loop is the fill goroutine: process fed batches in order, at most depth
// ahead of the retire frontier.
func (p *prefetcher) loop() {
	defer p.wg.Done()
	for {
		p.fmu.Lock()
		for !p.stopped && (p.done >= p.fed || p.done-p.retired >= int64(p.depth)) {
			p.cond.Wait()
		}
		if p.stopped {
			p.fmu.Unlock()
			return
		}
		b := &p.ring[p.done%int64(len(p.ring))]
		p.fmu.Unlock()

		p.fill(b)

		p.fmu.Lock()
		p.done++
		p.cond.Broadcast()
		p.fmu.Unlock()
	}
}

// fill makes every owned key of the batch resident and window-pins its
// slot. Three cases per key: fresh resident — pin only; stale resident —
// refill in place (unless the slot is epoch-pinned, whose bytes a live
// gather may alias — then leave it to demand fill); absent — claim a slot
// through InsertPrefetch and fill it (a fully blocked set rejects the
// claim, which the cache counts, and demand gather falls back to scratch).
func (p *prefetcher) fill(b *pfBatch) {
	// The guard is released every fillChunk keys: holding it across a whole
	// batch would stall a concurrent gather (an earlier step's, already past
	// its waitFor) behind hundreds of fills, serialising exactly the phases
	// the prefetcher exists to overlap. Partial fills are safe — waitFor
	// orders a step's gather after its ENTIRE fill pass, so chunk boundaries
	// are only ever observed by other steps' directory work.
	const fillChunk = 64
	for off := 0; off < len(b.keys); off += fillChunk {
		end := off + fillChunk
		if end > len(b.keys) {
			end = len(b.keys)
		}
		p.fillChunk(b, b.keys[off:end])
	}
}

func (p *prefetcher) fillChunk(b *pfBatch, keys []uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, k := range keys {
		if comm.Owner(k, p.numGPUs) != p.id {
			continue
		}
		if i := p.c.PeekSlot(k); i >= 0 {
			if p.c.SlotVersion(i) >= p.slab.Version(k) {
				p.c.WindowPin(i)
				b.pinned = append(b.pinned, int32(i))
				continue
			}
			if p.c.SlotEpochPinned(i) {
				continue
			}
			ver := p.slab.ReadRow(k, p.c.SlotRow(i))
			p.c.MarkPrefetched(i, ver)
			p.c.WindowPin(i)
			b.pinned = append(b.pinned, int32(i))
			continue
		}
		i, dst := p.c.InsertPrefetch(k)
		if i < 0 {
			continue
		}
		ver := p.slab.ReadRow(k, dst)
		p.c.MarkPrefetched(i, ver)
		p.c.WindowPin(i)
		b.pinned = append(b.pinned, int32(i))
	}
}

// feedPrefetch fans one future batch's key set out to every worker's
// prefetcher (each fills only the keys it owns). For EngineFrugal it is
// the controller's OnPrefetch hook; for EngineFrugalSync the dispatcher
// calls it from its read-ahead loop.
func (j *Job) feedPrefetch(step int64, keys []uint64) {
	for _, p := range j.prefetchers {
		p.feed(step, keys)
	}
}

func (j *Job) startPrefetchers() {
	for _, p := range j.prefetchers {
		p.start()
	}
}

func (j *Job) stopPrefetchers() {
	for _, p := range j.prefetchers {
		p.stop()
	}
}
