package runtime

import (
	"testing"

	"frugal/internal/data"
)

// BenchmarkStepLoop measures the steady-state cost of one global training
// step of the microbenchmark workload (pure embedding traffic), per engine.
// One benchmark op == one training step. cmd/frugal-bench -perf runs the
// same shape through testing.Benchmark and records it in the perf baseline.
func BenchmarkStepLoop(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"frugal-sgd-g1", Config{Engine: EngineFrugal, NumGPUs: 1}},
		{"frugal-adagrad-g1", Config{Engine: EngineFrugal, NumGPUs: 1, Optimizer: OptAdagrad}},
		{"frugal-sync-g1", Config{Engine: EngineFrugalSync, NumGPUs: 1}},
		{"direct-g1", Config{Engine: EngineDirect, NumGPUs: 1}},
		{"frugal-sgd-g4", Config{Engine: EngineFrugal, NumGPUs: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := tc.cfg
			cfg.Rows = 50_000
			cfg.Dim = 64
			cfg.CacheRatio = 0.1
			cfg.Seed = 7
			trace := data.NewSyntheticTrace(
				data.NewScrambledZipf(7, uint64(cfg.Rows), 0.9), 512, int64(b.N))
			job, err := NewMicro(cfg, trace, int64(b.N))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			res, err := job.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if res.Steps != int64(b.N) {
				b.Fatalf("ran %d steps, want %d", res.Steps, b.N)
			}
		})
	}
}
