package runtime

import (
	"math"
	"testing"

	"frugal/internal/data"
	"frugal/internal/graph"
	"frugal/internal/model"
	"frugal/internal/pq"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Engine: "cuda", Rows: 10, Dim: 4},
		{Rows: 0, Dim: 4},
		{Rows: 10, Dim: 0},
		{Rows: 10, Dim: 4, CacheRatio: 2},
	}
	for i, cfg := range bad {
		if err := cfg.normalize(); err == nil {
			t.Fatalf("config %d should be invalid: %+v", i, cfg)
		}
	}
	good := Config{Rows: 10, Dim: 4}
	if err := good.normalize(); err != nil {
		t.Fatal(err)
	}
	if good.Engine != EngineFrugal || good.NumGPUs != 1 || good.FlushThreads != 8 ||
		good.Lookahead != 10 || good.CacheRatio != 0.05 {
		t.Fatalf("defaults wrong: %+v", good)
	}
	if len(Engines()) != 3 {
		t.Fatal("three engines expected")
	}
}

func TestHostValidationAndRoundtrip(t *testing.T) {
	if _, err := NewHost(0, 4); err == nil {
		t.Fatal("rows=0 must error")
	}
	if _, err := NewHost(1<<40, 1024); err == nil {
		t.Fatal("oversized slab must error")
	}
	h, err := NewHost(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 10 || h.Dim() != 4 {
		t.Fatal("shape accessors wrong")
	}
	h.Init(func(k uint64, row []float32) { row[0] = float32(k) })
	buf := make([]float32, 4)
	h.ReadRow(3, buf)
	if buf[0] != 3 {
		t.Fatalf("row 3 = %v", buf)
	}
	h.ApplyDelta(3, []float32{1, 0, 0, 0}, 0)
	if h.Version(3) != 1 {
		t.Fatalf("version = %d", h.Version(3))
	}
	h.ReadRowLocked(3, buf)
	if buf[0] != 4 {
		t.Fatalf("row 3 after delta = %v", buf)
	}
	h.ApplyUpdates(3, []pq.Update{{Delta: []float32{1, 0, 0, 0}}, {Delta: []float32{1, 0, 0, 0}}})
	if h.Version(3) != 3 || h.Applied() != 3 {
		t.Fatalf("version=%d applied=%d", h.Version(3), h.Applied())
	}
	if got := h.Snapshot(3); got[0] != 6 {
		t.Fatalf("snapshot = %v", got)
	}
	h.ApplyUpdates(3, nil) // no-op
	if h.Version(3) != 3 {
		t.Fatal("empty ApplyUpdates must not bump version")
	}
}

func microJob(t *testing.T, engine Engine, gpus int, seed int64) Result {
	t.Helper()
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(seed, 500, 0.9), 64, 40)
	job, err := NewMicro(Config{
		Engine: engine, NumGPUs: gpus, Rows: 500, Dim: 4,
		CacheRatio: 0.1, LR: 0.3, Seed: seed, CheckConsistency: true,
		FlushThreads: 4,
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMicroAllEnginesTrain(t *testing.T) {
	for _, engine := range Engines() {
		for _, gpus := range []int{1, 4} {
			res := microJob(t, engine, gpus, 7)
			if res.Steps != 40 {
				t.Fatalf("%s/%d: steps = %d", engine, gpus, res.Steps)
			}
			first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
			if last >= first {
				t.Fatalf("%s/%d: loss did not drop (%v → %v)", engine, gpus, first, last)
			}
		}
	}
}

// TestEngineEquivalence is the end-to-end synchronous-consistency check:
// all three engines, at any GPU count, must produce (numerically almost)
// identical final host parameters for the same trace — because they all
// guarantee reads never observe stale parameters, the gradient sequence
// is identical. A versioning or flushing bug shows up as divergence here.
func TestEngineEquivalence(t *testing.T) {
	type run struct {
		engine Engine
		gpus   int
	}
	runs := []run{
		{EngineDirect, 1},
		{EngineDirect, 4},
		{EngineFrugal, 1},
		{EngineFrugal, 4},
		{EngineFrugalSync, 4},
	}
	hosts := make([]*Host, len(runs))
	for i, r := range runs {
		trace := data.NewSyntheticTrace(data.NewScrambledZipf(11, 300, 0.9), 48, 30)
		job, err := NewMicro(Config{
			Engine: r.engine, NumGPUs: r.gpus, Rows: 300, Dim: 4,
			CacheRatio: 0.2, LR: 0.3, Seed: 11, CheckConsistency: true,
			FlushThreads: 3,
		}, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Run(); err != nil {
			t.Fatal(err)
		}
		hosts[i] = job.Host()
	}
	ref := hosts[0]
	for i := 1; i < len(hosts); i++ {
		for k := uint64(0); k < 300; k++ {
			a, b := ref.Snapshot(k), hosts[i].Snapshot(k)
			for d := range a {
				if math.Abs(float64(a[d]-b[d])) > 1e-3 {
					t.Fatalf("%s/%d diverged from direct/1 at key %d dim %d: %v vs %v",
						runs[i].engine, runs[i].gpus, k, d, b[d], a[d])
				}
			}
		}
	}
}

func TestFrugalFlushAccounting(t *testing.T) {
	res := microJob(t, EngineFrugal, 2, 3)
	if res.Flushed == 0 {
		t.Fatal("no updates flushed")
	}
	if res.Flushed < res.Deferred {
		t.Fatalf("deferred (%d) cannot exceed flushed (%d)", res.Deferred, res.Flushed)
	}
	// Every committed update must eventually reach host memory.
	if res.CacheStats.Hits+res.CacheStats.Misses == 0 {
		t.Fatal("cache never consulted")
	}
}

func TestFrugalWithTreeHeapQueue(t *testing.T) {
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(5, 200, 0.9), 32, 20)
	job, err := NewMicro(Config{
		Engine: EngineFrugal, NumGPUs: 2, Rows: 200, Dim: 4,
		LR: 0.3, Seed: 5, CheckConsistency: true,
		Queue: pq.NewTreeHeap(1024),
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatal("TreeHeap-backed job did not train")
	}
}

func TestRECJobTrains(t *testing.T) {
	spec := data.Avazu.Scaled(100_000)
	stream, err := data.NewRECStream(spec, 21, 32, 60)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewREC(Config{
		Engine: EngineFrugal, NumGPUs: 2, CacheRatio: 0.05,
		LR: 0.1, Seed: 21, CheckConsistency: true,
	}, stream, []int{32, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 60 {
		t.Fatalf("steps = %d", res.Steps)
	}
	early := avg(res.Losses[:10])
	late := avg(res.Losses[len(res.Losses)-10:])
	if late >= early {
		t.Fatalf("REC loss did not drop: early=%v late=%v", early, late)
	}
	if res.SamplesPerSec <= 0 {
		t.Fatal("throughput not reported")
	}
	// The labels carry a learnable signal, so progressive-validation AUC
	// must exceed chance.
	if res.TrainAUC <= 0.52 {
		t.Fatalf("TrainAUC = %v, want > 0.52", res.TrainAUC)
	}
}

func TestRECRowsTooSmall(t *testing.T) {
	spec := data.Avazu.Scaled(100_000)
	stream, _ := data.NewRECStream(spec, 1, 8, 5)
	if _, err := NewREC(Config{Rows: 10, Dim: 8}, stream, nil, 0); err == nil {
		t.Fatal("undersized Rows must error")
	}
}

func TestKGJobTrains(t *testing.T) {
	spec := data.FB15k.Scaled(50)
	stream, err := data.NewKGStream(spec, 31, 24, 8, 50)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewKG(Config{
		Engine: EngineFrugal, NumGPUs: 2, Dim: 16, CacheRatio: 0.05,
		LR: 0.05, Seed: 31, CheckConsistency: true,
	}, stream, model.NewTransE(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	early := avg(res.Losses[:10])
	late := avg(res.Losses[len(res.Losses)-10:])
	if late >= early {
		t.Fatalf("KG loss did not drop: early=%v late=%v", early, late)
	}
}

func TestKGAllModelsRun(t *testing.T) {
	for _, tm := range model.KGModels(4) {
		spec := data.FB15k.Scaled(100)
		stream, _ := data.NewKGStream(spec, 41, 8, 4, 10)
		job, err := NewKG(Config{
			Engine: EngineFrugal, NumGPUs: 2, Dim: 8,
			LR: 0.05, Seed: 41, CheckConsistency: true,
		}, stream, tm, 0)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name(), err)
		}
		if _, err := job.Run(); err != nil {
			t.Fatalf("%s: %v", tm.Name(), err)
		}
	}
}

func TestBarrier(t *testing.T) {
	b := NewBarrier(3)
	done := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			b.Wait()
			done <- i
		}(i)
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[<-done] = true
	}
	if len(seen) != 3 {
		t.Fatal("barrier lost a party")
	}
	// Reusable.
	go func() { b.Wait(); done <- 10 }()
	go func() { b.Wait(); done <- 11 }()
	go func() { b.Wait(); done <- 12 }()
	for i := 0; i < 3; i++ {
		<-done
	}
}

func avg(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s / float32(len(xs))
}

// TestAdagradEquivalence extends the engine-equivalence guarantee to the
// Adagrad optimizer: the row-wise accumulator rides the flush path, and
// all engines must still converge to identical parameters AND identical
// optimizer state for the same trace.
func TestAdagradEquivalence(t *testing.T) {
	mk := func(engine Engine, gpus int) *Host {
		trace := data.NewSyntheticTrace(data.NewScrambledZipf(13, 200, 0.9), 32, 25)
		job, err := NewMicro(Config{
			Engine: engine, NumGPUs: gpus, Rows: 200, Dim: 4,
			CacheRatio: 0.2, LR: 0.3, Seed: 13, CheckConsistency: true,
			Optimizer: OptAdagrad,
		}, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Run(); err != nil {
			t.Fatal(err)
		}
		return job.Host()
	}
	// Note: unlike SGD, Adagrad is partition-dependent (squared partial
	// gradients are not additive), so equivalence holds per GPU count —
	// exactly as in real data-parallel systems.
	ref := mk(EngineDirect, 4)
	for _, r := range []struct {
		engine Engine
		gpus   int
	}{{EngineFrugal, 4}, {EngineFrugalSync, 4}} {
		h := mk(r.engine, r.gpus)
		for k := uint64(0); k < 200; k++ {
			a, b := ref.Snapshot(k), h.Snapshot(k)
			for d := range a {
				if math.Abs(float64(a[d]-b[d])) > 1e-3 {
					t.Fatalf("%s/%d adagrad diverged at key %d dim %d: %v vs %v",
						r.engine, r.gpus, k, d, b[d], a[d])
				}
			}
			if ga, gb := ref.OptState(k), h.OptState(k); math.Abs(float64(ga-gb)) > 1e-3 {
				t.Fatalf("%s/%d optimizer state diverged at key %d: %v vs %v",
					r.engine, r.gpus, k, gb, ga)
			}
		}
	}
}

func TestAdagradTrainsAndAccumulates(t *testing.T) {
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(17, 300, 0.9), 64, 40)
	job, err := NewMicro(Config{
		Engine: EngineFrugal, NumGPUs: 2, Rows: 300, Dim: 4,
		LR: 0.5, Seed: 17, CheckConsistency: true, Optimizer: OptAdagrad,
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatal("adagrad loss did not drop")
	}
	// Some hot key must have accumulated squared-gradient state.
	any := false
	for k := uint64(0); k < 300; k++ {
		if job.Host().OptState(k) > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("no optimizer state accumulated")
	}
}

func TestUnknownOptimizerRejected(t *testing.T) {
	cfg := Config{Rows: 10, Dim: 4, Optimizer: "adam"}
	if err := cfg.normalize(); err == nil {
		t.Fatal("unknown optimizer must be rejected")
	}
	cfg = Config{Rows: 10, Dim: 4}
	if err := cfg.normalize(); err != nil || cfg.Optimizer != OptSGD || cfg.AdagradEps <= 0 {
		t.Fatalf("optimizer defaults wrong: %+v (%v)", cfg, err)
	}
}

// TestAsyncEngineDiverges demonstrates the paper's §3 premise: without the
// synchronous-consistency machinery, free-running workers read parameters
// that miss other workers' updates, so the final model differs from the
// synchronous engines' reproducible result.
func TestAsyncEngineDiverges(t *testing.T) {
	run := func(engine Engine) *Host {
		trace := data.NewSyntheticTrace(data.NewScrambledZipf(29, 300, 0.9), 64, 60)
		job, err := NewMicro(Config{
			Engine: engine, NumGPUs: 4, Rows: 300, Dim: 4,
			LR: 0.1, Seed: 29,
		}, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Run(); err != nil {
			t.Fatal(err)
		}
		return job.Host()
	}
	sync := run(EngineDirect)
	async := run(EngineAsync)
	var maxDiff float64
	for k := uint64(0); k < 300; k++ {
		a, b := sync.Snapshot(k), async.Snapshot(k)
		for d := range a {
			if diff := math.Abs(float64(a[d] - b[d])); diff > maxDiff {
				maxDiff = diff
			}
		}
	}
	// The async run still trains (loss falls — free-running SGD converges
	// on this toy task) but is NOT parameter-equivalent. Tolerate the rare
	// scheduling where workers happen to stay in lockstep by requiring
	// only that divergence is *permitted*; in practice it is large.
	t.Logf("max parameter divergence sync vs async: %v", maxDiff)
	// Sanity: the synchronous engines agree to 1e-3 (TestEngineEquivalence),
	// so any divergence beyond that is the async effect.
	if maxDiff == 0 {
		t.Skip("async run happened to serialise; divergence not observable this run")
	}
	if maxDiff < 1e-3 {
		t.Logf("note: divergence %v below the sync tolerance this run", maxDiff)
	}
}

func TestGNNJobTrains(t *testing.T) {
	g, err := graph.Generate(51, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := graph.NewSampler(g, 52, 3)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewGNN(Config{
		Engine: EngineFrugal, NumGPUs: 2, Dim: 16,
		LR: 0.2, Seed: 53, CheckConsistency: true,
	}, g, sampler, 64, 80)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	early := avg(res.Losses[:10])
	late := avg(res.Losses[len(res.Losses)-10:])
	if late >= early {
		t.Fatalf("GNN loss did not drop: early=%v late=%v", early, late)
	}
	if res.Flushed == 0 {
		t.Fatal("GNN updates must flow through the flush path")
	}
}

func TestGNNJobValidation(t *testing.T) {
	g, _ := graph.Generate(51, 100, 2)
	s, _ := graph.NewSampler(g, 1, 2)
	if _, err := NewGNN(Config{Rows: 10, Dim: 8}, g, s, 8, 10); err == nil {
		t.Fatal("undersized Rows must error")
	}
	if _, err := NewGNN(Config{}, g, s, 8, 0); err == nil {
		t.Fatal("steps=0 must error")
	}
}

// TestHostReadRows pins the block-read iteration primitive: the copied
// block matches per-row ReadRow output, and partial ranges land at the
// right offsets.
func TestHostReadRows(t *testing.T) {
	h, err := NewHost(17, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) {
		for d := range row {
			row[d] = float32(key)*100 + float32(d)
		}
	})
	block := make([]float32, 6*5)
	h.ReadRows(7, block)
	one := make([]float32, 5)
	for i := 0; i < 6; i++ {
		h.ReadRow(uint64(7+i), one)
		for d := 0; d < 5; d++ {
			if block[i*5+d] != one[d] {
				t.Fatalf("row %d dim %d: block %v, ReadRow %v", 7+i, d, block[i*5+d], one[d])
			}
		}
	}
}
