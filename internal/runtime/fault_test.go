package runtime

import (
	"math"
	"testing"
	"time"

	"frugal/internal/data"
	"frugal/internal/fault"
	"frugal/internal/obs"
	"frugal/internal/p2f"
)

func mustInjector(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fault.NewInjector(p)
}

// faultMicroJob runs the standard micro workload with an optional fault
// plan and recovery config, returning the job for slab inspection.
func faultMicroJob(t *testing.T, engine Engine, gpus int, inj *fault.Injector, rec p2f.Recovery) (*Job, Result) {
	t.Helper()
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(23, 300, 0.9), 48, 30)
	job, err := NewMicro(Config{
		Engine: engine, NumGPUs: gpus, Rows: 300, Dim: 4,
		CacheRatio: 0.2, LR: 0.3, Seed: 23, CheckConsistency: true,
		FlushThreads: 3, Faults: inj, Recovery: rec,
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	return job, res
}

// compareSlabs checks the two hosts' final parameters. exact demands
// byte-identity (single-GPU runs apply every row's updates in step order,
// so fault schedules must not change the result at all); otherwise the
// engine-equivalence tolerance applies (multi-GPU same-step partials land
// in nondeterministic relative order even fault-free).
func compareSlabs(t *testing.T, name string, a, b *Host, rows uint64, exact bool) {
	t.Helper()
	for k := uint64(0); k < rows; k++ {
		ra, rb := a.Snapshot(k), b.Snapshot(k)
		for d := range ra {
			if exact {
				if ra[d] != rb[d] {
					t.Fatalf("%s: slab diverged at key %d dim %d: %v vs %v", name, k, d, ra[d], rb[d])
				}
			} else if math.Abs(float64(ra[d]-rb[d])) > 1e-3 {
				t.Fatalf("%s: slab diverged at key %d dim %d: %v vs %v", name, k, d, ra[d], rb[d])
			}
		}
	}
}

// TestFaultedRunMatchesFaultFree is the acceptance check of the fault
// layer: for every engine, a run with injected faults (and recovery
// healing them) must converge to the same host slab as the fault-free run
// of the same seed. Single-GPU runs must match byte-for-byte.
func TestFaultedRunMatchesFaultFree(t *testing.T) {
	plans := map[Engine]string{
		// The full menu for Frugal: a flusher dies, another stalls, a
		// trainer straggles, and a window of host writes fails.
		EngineFrugal: "crash:flusher=0@batch=1;stall:flusher=1@batch=2,dur=5ms;" +
			"delay:gpu=0@step=3,dur=2ms;hostfail@write=10,count=4",
		// The write-through engines have no flusher pool; stragglers and
		// host-write failures are their fault surface.
		EngineFrugalSync: "delay:gpu=0@step=3,dur=2ms;hostfail@write=10,count=4",
		EngineDirect:     "delay:gpu=0@step=3,dur=2ms;hostfail@write=10,count=4",
	}
	for _, engine := range Engines() {
		clean, cleanRes := faultMicroJob(t, engine, 1, nil, p2f.Recovery{})
		if cleanRes.Recovery.FaultsInjected != 0 {
			t.Fatalf("%s: fault-free run reports injected faults: %+v", engine, cleanRes.Recovery)
		}
		faulted, res := faultMicroJob(t, engine, 1, mustInjector(t, plans[engine]), p2f.Recovery{
			HeartbeatInterval: time.Millisecond,
			StallTimeout:      50 * time.Millisecond,
		})
		if res.Steps != 30 {
			t.Fatalf("%s: faulted run completed %d steps, want 30", engine, res.Steps)
		}
		if res.Recovery.FaultsInjected == 0 {
			t.Fatalf("%s: plan injected nothing: %+v", engine, res.Recovery)
		}
		if res.Recovery.HostWriteRetries != 4 {
			t.Fatalf("%s: HostWriteRetries = %d, want 4", engine, res.Recovery.HostWriteRetries)
		}
		if engine == EngineFrugal {
			if res.Recovery.FlusherCrashes != 1 {
				t.Fatalf("FlusherCrashes = %d, want 1: %+v", res.Recovery.FlusherCrashes, res.Recovery)
			}
			if res.Recovery.FlusherRespawns < 1 {
				t.Fatalf("crashed flusher never respawned: %+v", res.Recovery)
			}
			if res.Recovery.Degraded {
				t.Fatalf("healthy recovery must not degrade: %+v", res.Recovery)
			}
		}
		compareSlabs(t, string(engine), clean.Host(), faulted.Host(), 300, true)
	}
}

// TestFaultedMultiGPUWithinTolerance extends the check to a 4-GPU Frugal
// run: same-step partial updates land in nondeterministic relative order
// even without faults, so the comparison uses the engine-equivalence
// tolerance rather than byte-identity.
func TestFaultedMultiGPUWithinTolerance(t *testing.T) {
	clean, _ := faultMicroJob(t, EngineFrugal, 4, nil, p2f.Recovery{})
	faulted, res := faultMicroJob(t, EngineFrugal, 4,
		mustInjector(t, "crash:flusher=1@batch=1;delay:gpu=2@step=5,dur=1ms"),
		p2f.Recovery{HeartbeatInterval: time.Millisecond, StallTimeout: 50 * time.Millisecond})
	if res.Recovery.FlusherCrashes != 1 {
		t.Fatalf("FlusherCrashes = %d, want 1", res.Recovery.FlusherCrashes)
	}
	compareSlabs(t, "frugal/4 faulted", clean.Host(), faulted.Host(), 300, false)
}

// TestWholePoolKilledDegradesNotDeadlocks kills every flusher with
// respawning disabled: the gate watchdog must switch the run to
// write-through within GateTimeout, the run must complete all steps with
// CheckConsistency on, and (single GPU) the slab must still match the
// fault-free run byte-for-byte — degraded commits apply in step order.
func TestWholePoolKilledDegradesNotDeadlocks(t *testing.T) {
	clean, _ := faultMicroJob(t, EngineFrugal, 1, nil, p2f.Recovery{})
	done := make(chan struct{})
	var faulted *Job
	var res Result
	go func() {
		defer close(done)
		faulted, res = faultMicroJob(t, EngineFrugal, 1,
			mustInjector(t, "crash:flusher=0@batch=1;crash:flusher=1@batch=1;crash:flusher=2@batch=1"),
			p2f.Recovery{
				HeartbeatInterval: time.Millisecond,
				MaxRespawns:       -1,
				GateTimeout:       100 * time.Millisecond,
			})
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("whole-pool kill deadlocked the gate: watchdog never fired")
	}
	if res.Steps != 30 {
		t.Fatalf("degraded run completed %d steps, want 30", res.Steps)
	}
	if !res.Recovery.Degraded {
		t.Fatalf("expected degradation: %+v", res.Recovery)
	}
	if res.Recovery.DegradedStep < 0 {
		t.Fatalf("DegradedStep not recorded: %+v", res.Recovery)
	}
	if res.Recovery.FlusherCrashes != 3 || res.Recovery.FlusherRespawns != 0 {
		t.Fatalf("unexpected recovery accounting: %+v", res.Recovery)
	}
	compareSlabs(t, "degraded", clean.Host(), faulted.Host(), 300, true)
}

// TestFaultSnapshotAccounting checks the observability wiring: the fault
// counters surface in the job's obs.Snapshot and in the trace event
// stream.
func TestFaultSnapshotAccounting(t *testing.T) {
	ob := obs.New(obs.Options{})
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(3, 200, 0.9), 32, 20)
	job, err := NewMicro(Config{
		Engine: EngineFrugal, NumGPUs: 1, Rows: 200, Dim: 4,
		CacheRatio: 0.2, LR: 0.3, Seed: 3, CheckConsistency: true,
		FlushThreads: 2, Observer: ob,
		Faults: mustInjector(t, "crash:flusher=0@batch=1;delay:gpu=0@step=2,dur=1ms;hostfail@write=5,count=2"),
		Recovery: p2f.Recovery{
			HeartbeatInterval: time.Millisecond,
			StallTimeout:      50 * time.Millisecond,
		},
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	s := job.Snapshot()
	if s.FaultsInjected == 0 {
		t.Fatalf("snapshot missed injected faults: %+v", s)
	}
	if s.FlusherRespawns == 0 {
		t.Fatalf("snapshot missed respawns: %+v", s)
	}
	if s.HostWriteRetries != 2 {
		t.Fatalf("snapshot HostWriteRetries = %d, want 2", s.HostWriteRetries)
	}
	var sawInject, sawRespawn bool
	for _, e := range ob.TraceSink().Events() {
		switch e.Type {
		case obs.EvFaultInject:
			sawInject = true
		case obs.EvFlusherRespawn:
			sawRespawn = true
		}
	}
	if !sawInject || !sawRespawn {
		t.Fatalf("trace missing fault events: inject=%v respawn=%v", sawInject, sawRespawn)
	}
}

// TestHostWriteRetryBackoff unit-tests the host-level retry loop: a
// window of transient failures must be retried through, never dropped.
func TestHostWriteRetryBackoff(t *testing.T) {
	h, err := NewHost(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	inj := mustInjector(t, "hostfail@write=0,count=3")
	h.SetWriteFault(inj.HostWriteFail)
	h.ApplyDelta(1, []float32{1, 1}, 0)
	if h.WriteRetries() != 3 {
		t.Fatalf("WriteRetries = %d, want 3", h.WriteRetries())
	}
	if got := h.Snapshot(1); got[0] != 1 || got[1] != 1 {
		t.Fatalf("delta lost across retries: %v", got)
	}
	h.ApplyDelta(1, []float32{1, 1}, 0) // window passed: no more retries
	if h.WriteRetries() != 3 {
		t.Fatalf("retried outside the window: %d", h.WriteRetries())
	}
}
