package runtime

import (
	"math"
	"strings"
	"testing"

	"frugal/internal/data"
)

func TestPrefetchConfigValidation(t *testing.T) {
	trace := func() KeyTrace {
		return data.NewSyntheticTrace(data.NewScrambledZipf(1, 100, 0.9), 16, 4)
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"direct", Config{Engine: EngineDirect, Rows: 100, Dim: 4, Prefetch: true},
			"cached engine"},
		{"async", Config{Engine: EngineAsync, Rows: 100, Dim: 4, Prefetch: true},
			"cached engine"},
		{"depth-without-prefetch", Config{Engine: EngineFrugal, Rows: 100, Dim: 4, PrefetchDepth: 4},
			"requires Prefetch"},
		{"negative-depth", Config{Engine: EngineFrugal, Rows: 100, Dim: 4, Prefetch: true, PrefetchDepth: -1},
			"must be positive"},
		{"depth-beyond-lookahead", Config{Engine: EngineFrugal, Rows: 100, Dim: 4,
			Prefetch: true, Lookahead: 5, PrefetchDepth: 6},
			"exceeds Lookahead"},
	}
	for _, tc := range cases {
		_, err := NewMicro(tc.cfg, trace(), 0)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// The write-through engine has no lookahead queue, so its depth is not
	// bounded by Lookahead.
	if _, err := NewMicro(Config{Engine: EngineFrugalSync, Rows: 100, Dim: 4,
		Prefetch: true, PrefetchDepth: 32}, trace(), 0); err != nil {
		t.Fatalf("frugal-sync deep prefetch rejected: %v", err)
	}
}

// Prefetch must be a pure latency optimization: training with it on and
// off produces bit-identical final host parameters at 1 GPU (a cached row
// is only ever served at its exact content version, so the gradient
// sequence cannot change). At 4 GPUs the comparison is tolerance-based —
// multi-writer keys receive their partial deltas in flush-arrival order,
// which reorders float additions run to run with or without prefetch (the
// TestEngineEquivalence tolerance), so bitwise identity is not available
// to diff against.
func TestPrefetchDeterminism(t *testing.T) {
	type variant struct {
		engine Engine
		gpus   int
	}
	for _, v := range []variant{
		{EngineFrugal, 1}, {EngineFrugal, 4},
		{EngineFrugalSync, 1}, {EngineFrugalSync, 4},
	} {
		run := func(prefetch bool) *Host {
			trace := data.NewSyntheticTrace(data.NewScrambledZipf(13, 400, 0.9), 48, 30)
			job, err := NewMicro(Config{
				Engine: v.engine, NumGPUs: v.gpus, Rows: 400, Dim: 4,
				CacheRatio: 0.1, LR: 0.3, Seed: 13, CheckConsistency: true,
				FlushThreads: 3, Prefetch: prefetch,
			}, trace, 0)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps != 30 {
				t.Fatalf("%s/%d: steps = %d", v.engine, v.gpus, res.Steps)
			}
			if prefetch && res.CacheStats.PrefetchFills == 0 {
				t.Fatalf("%s/%d: prefetch enabled but no fills recorded", v.engine, v.gpus)
			}
			return job.Host()
		}
		off, on := run(false), run(true)
		for k := uint64(0); k < 400; k++ {
			a, b := off.Snapshot(k), on.Snapshot(k)
			for d := range a {
				if v.gpus == 1 && a[d] != b[d] {
					t.Fatalf("%s/%d: row %d dim %d diverged: off=%v on=%v",
						v.engine, v.gpus, k, d, a[d], b[d])
				}
				if math.Abs(float64(a[d]-b[d])) > 1e-3 {
					t.Fatalf("%s/%d: row %d dim %d diverged beyond tolerance: off=%v on=%v",
						v.engine, v.gpus, k, d, a[d], b[d])
				}
			}
		}
	}
}

// The point of the exercise: on a Zipf trace the lookahead window covers
// every upcoming batch before its gather runs, so demand misses collapse
// to pin-reject and stale-race residue — at least a 50% reduction.
func TestPrefetchReducesDemandMisses(t *testing.T) {
	run := func(engine Engine, prefetch bool) Result {
		trace := data.NewSyntheticTrace(data.NewScrambledZipf(7, 5000, 0.9), 128, 60)
		// The cache must hold the lookahead window's working set for
		// window pinning to pay off: 1000 slots against ~700 distinct keys
		// per 10-batch window. (At CacheRatio 0.1 the window saturates the
		// sets and the reduction shrinks to ~55%.)
		job, err := NewMicro(Config{
			Engine: engine, NumGPUs: 1, Rows: 5000, Dim: 16,
			CacheRatio: 0.2, Seed: 7, CheckConsistency: true,
			Prefetch: prefetch,
		}, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, engine := range []Engine{EngineFrugal, EngineFrugalSync} {
		off, on := run(engine, false), run(engine, true)
		offRate, onRate := off.CacheStats.MissRate(), on.CacheStats.MissRate()
		if offRate == 0 {
			t.Fatalf("%s: prefetch-off run had no misses; test is vacuous", engine)
		}
		if onRate > offRate/2 {
			t.Errorf("%s: demand miss rate %.4f with prefetch, %.4f without — want ≥50%% reduction",
				engine, onRate, offRate)
		}
		if on.CacheStats.PrefetchHits == 0 {
			t.Errorf("%s: no demand lookups served from prefetched rows", engine)
		}
	}
}

// Pin-pressure stress for the race detector: one-set caches (rowsPerGPU
// clamps to Ways) keep every set near-fully pinned by epoch pins and
// window pins at once, exercising the spill/reject paths while 4 trainers,
// the flusher pool and 4 prefetchers run concurrently. The consistency
// check and the race detector are the assertions that matter; the explicit
// checks confirm the blockade actually happened.
func TestPrefetchPinStressFullSets(t *testing.T) {
	for _, engine := range []Engine{EngineFrugal, EngineFrugalSync} {
		trace := data.NewSyntheticTrace(data.NewScrambledZipf(5, 300, 0.9), 64, 25)
		// LR stays small: a hot Zipf key occurring m times in a batch takes
		// m gradient steps per global step, and m·LR > 2 makes the
		// quadratic toy loss diverge — an SGD property, not a cache one.
		job, err := NewMicro(Config{
			Engine: engine, NumGPUs: 4, Rows: 300, Dim: 4,
			CacheRatio: 0.01, // 3 rows → clamped to one Ways-wide set per GPU
			LR:         0.02, Seed: 5, CheckConsistency: true, FlushThreads: 3,
			Prefetch: true, PrefetchDepth: 4,
		}, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != 25 {
			t.Fatalf("%s: steps = %d", engine, res.Steps)
		}
		if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
			t.Fatalf("%s: loss did not drop under pin pressure", engine)
		}
		cs := res.CacheStats
		if cs.PinRejects+cs.WindowPinRejects == 0 {
			t.Fatalf("%s: one-set caches never rejected a fill — blockade not exercised", engine)
		}
	}
}
