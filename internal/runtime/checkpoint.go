package runtime

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"frugal/internal/tensor"
)

// Checkpoint format: a small binary header followed by the body and
// (optionally) the optimizer-state slab, all little-endian.
//
// Version 1 (untiered hosts): the body is the raw rows×dim float32 slab.
//
// Version 2 (tiered hosts): an int64 hot-slot capacity follows the
// header, then one record per row in key order — a tier tag byte, then
// either the 4·dim-byte float32 image (hot) or the (scale, zero) pair
// and dim int8 codes (cold). The serialization is canonical: it carries
// no slot numbers, so two hosts holding the same rows at the same tiers
// save identical bytes regardless of how their hot pools are laid out,
// and cold rows round-trip their codes verbatim (no requantize). Either
// version loads into either host flavor: a v1 body quantizes the cold
// tail on the way into a tiered host, and a v2 body dequantizes cold
// rows into an untiered slab.
//
// Row versions and access frequencies are transient cache-coherence and
// placement state and are not persisted; caches start cold and the tier
// split re-adapts after a restore, which is always safe.
const (
	checkpointMagic         = uint32(0xF21A6A10)
	checkpointVersion       = uint32(1)
	checkpointVersionTiered = uint32(2)
)

// Tier tags in a v2 body.
const (
	rowTagCold = byte(0)
	rowTagHot  = byte(1)
)

type checkpointHeader struct {
	Magic    uint32
	Version  uint32
	Rows     int64
	Dim      int32
	HasState int32
}

// Save writes the host parameter slab (and optimizer state, if enabled)
// as a checkpoint. Call only when no training is in flight — after Run
// returns, every flushed update is in the slab (DrainAll runs in Run's
// epilogue).
func (h *Host) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := checkpointHeader{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		Rows:    h.rows,
		Dim:     int32(h.dim),
	}
	if h.tier != nil {
		hdr.Version = checkpointVersionTiered
	}
	if h.state != nil {
		hdr.HasState = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("runtime: checkpoint header: %w", err)
	}
	if t := h.tier; t != nil {
		if err := binary.Write(bw, binary.LittleEndian, int64(t.hotCap)); err != nil {
			return fmt.Errorf("runtime: checkpoint hot capacity: %w", err)
		}
		if err := h.saveTieredRows(bw); err != nil {
			return err
		}
	} else if err := writeFloats(bw, h.slab); err != nil {
		return err
	}
	if h.state != nil {
		if err := writeFloats(bw, h.state); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// tierRecordBuf sizes a scratch buffer that fits either record flavor:
// 4·dim bytes for a hot image, 8+dim for a cold one (larger at dim < 3).
func tierRecordBuf(dim int) []byte {
	n := 4 * dim
	if 8+dim > n {
		n = 8 + dim
	}
	return make([]byte, n)
}

// saveTieredRows writes the v2 per-row body.
func (h *Host) saveTieredRows(bw *bufio.Writer) error {
	t := h.tier
	buf := tierRecordBuf(t.dim)
	for key := uint64(0); key < uint64(h.rows); key++ {
		if slot := t.tier[key].Load(); slot > 0 {
			if err := bw.WriteByte(rowTagHot); err != nil {
				return fmt.Errorf("runtime: checkpoint write: %w", err)
			}
			for i, v := range t.slotRow(slot - 1) {
				binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
			}
			if _, err := bw.Write(buf[:4*t.dim]); err != nil {
				return fmt.Errorf("runtime: checkpoint write: %w", err)
			}
			continue
		}
		if err := bw.WriteByte(rowTagCold); err != nil {
			return fmt.Errorf("runtime: checkpoint write: %w", err)
		}
		binary.LittleEndian.PutUint32(buf[0:], math.Float32bits(t.qscale[key]))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(t.qzero[key]))
		for i, c := range t.qrow(key) {
			buf[8+i] = byte(c)
		}
		if _, err := bw.Write(buf[:8+t.dim]); err != nil {
			return fmt.Errorf("runtime: checkpoint write: %w", err)
		}
	}
	return nil
}

// readCheckpointHeader reads and validates the fixed header, plus the
// v2 hot-capacity sub-header (hotCap is 0 for v1).
func readCheckpointHeader(r io.Reader) (hdr checkpointHeader, hotCap int64, err error) {
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return hdr, 0, fmt.Errorf("runtime: checkpoint header: %w", err)
	}
	if hdr.Magic != checkpointMagic {
		return hdr, 0, fmt.Errorf("runtime: not a frugal checkpoint (magic %#x)", hdr.Magic)
	}
	switch hdr.Version {
	case checkpointVersion:
	case checkpointVersionTiered:
		if err := binary.Read(r, binary.LittleEndian, &hotCap); err != nil {
			return hdr, 0, fmt.Errorf("runtime: checkpoint hot capacity: %w", err)
		}
		if hotCap < 1 || hotCap > hdr.Rows {
			return hdr, 0, fmt.Errorf("runtime: checkpoint hot capacity %d outside [1, %d]", hotCap, hdr.Rows)
		}
	default:
		return hdr, 0, fmt.Errorf("runtime: unsupported checkpoint version %d", hdr.Version)
	}
	return hdr, hotCap, nil
}

// loadBody fills the host's storage from the checkpoint body, bridging
// between untiered (v1) and tiered (v2) layouts in either direction.
func (h *Host) loadBody(r io.Reader, hdr checkpointHeader) error {
	var err error
	switch {
	case hdr.Version == checkpointVersion && h.tier == nil:
		err = readFloats(r, h.slab)
	case hdr.Version == checkpointVersion:
		err = h.loadFlatRowsTiered(r)
	default:
		err = h.loadTieredRows(r)
	}
	if err != nil {
		return err
	}
	if hdr.HasState == 1 {
		h.EnableOptimizerState()
		return readFloats(r, h.state)
	}
	return nil
}

// loadFlatRowsTiered streams a v1 float32 body into a tiered host: the
// default head-hot split stands, and every cold row quantizes on entry.
func (h *Host) loadFlatRowsTiered(r io.Reader) error {
	t := h.tier
	buf := make([]byte, 4*t.dim)
	row := make([]float32, t.dim)
	for key := uint64(0); key < uint64(h.rows); key++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("runtime: checkpoint read: %w", err)
		}
		for i := range row {
			row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		t.writeRow(key, row)
	}
	return nil
}

// loadTieredRows reads a v2 per-row body. On a tiered host the file's
// tier tags dictate placement: the hot pool is reset and slots are
// handed out in key order (hot rows beyond this host's capacity — only
// possible when loading into a smaller hot pool than the file's —
// degrade to cold with a quantize). On an untiered host every row lands
// in the slab, cold ones dequantized.
func (h *Host) loadTieredRows(r io.Reader) error {
	t := h.tier
	dim := h.dim
	buf := tierRecordBuf(dim)
	row := make([]float32, dim)
	qbuf := make([]int8, dim)
	if t != nil {
		t.resetCold()
	}
	for key := uint64(0); key < uint64(h.rows); key++ {
		if _, err := io.ReadFull(r, buf[:1]); err != nil {
			return fmt.Errorf("runtime: checkpoint read: %w", err)
		}
		switch buf[0] {
		case rowTagHot:
			if _, err := io.ReadFull(r, buf[:4*dim]); err != nil {
				return fmt.Errorf("runtime: checkpoint read: %w", err)
			}
			for i := range row {
				row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
			}
			switch {
			case t == nil:
				copy(h.row(key), row)
			case len(t.free) > 0:
				slot := t.free[len(t.free)-1]
				t.free = t.free[:len(t.free)-1]
				copy(t.slotRow(slot), row)
				t.tier[key].Store(slot + 1)
				t.owner[slot] = key
			default:
				t.qscale[key], t.qzero[key] = tensor.QuantizeRow(row, t.qrow(key))
			}
		case rowTagCold:
			if _, err := io.ReadFull(r, buf[:8+dim]); err != nil {
				return fmt.Errorf("runtime: checkpoint read: %w", err)
			}
			scale := math.Float32frombits(binary.LittleEndian.Uint32(buf[0:]))
			zero := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))
			if t == nil {
				for i := 0; i < dim; i++ {
					qbuf[i] = int8(buf[8+i])
				}
				tensor.DequantizeRow(qbuf, scale, zero, h.row(key))
				continue
			}
			codes := t.qrow(key)
			for i := 0; i < dim; i++ {
				codes[i] = int8(buf[8+i])
			}
			t.qscale[key], t.qzero[key] = scale, zero
		default:
			return fmt.Errorf("runtime: checkpoint row %d: invalid tier tag %d", key, buf[0])
		}
	}
	return nil
}

// Load restores a checkpoint into the host slab. The checkpoint's shape
// must match exactly; a checkpoint with optimizer state enables the
// state slab. Call before Run.
func (h *Host) Load(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr, _, err := readCheckpointHeader(br)
	if err != nil {
		return err
	}
	if hdr.Rows != h.rows || int(hdr.Dim) != h.dim {
		return fmt.Errorf("runtime: checkpoint shape %dx%d does not match host %dx%d",
			hdr.Rows, hdr.Dim, h.rows, h.dim)
	}
	return h.loadBody(br, hdr)
}

// LoadHost reads a checkpoint and returns a freshly allocated Host shaped
// by its header — checkpoint-only serving, where no training Config
// exists to dictate the shape. A v2 (tiered) checkpoint reproduces a
// tiered host with the file's hot capacity and placement.
func LoadHost(r io.Reader) (*Host, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr, hotCap, err := readCheckpointHeader(br)
	if err != nil {
		return nil, err
	}
	var h *Host
	if hdr.Version == checkpointVersionTiered {
		h, err = newTieredHost(hdr.Rows, int(hdr.Dim), int(hotCap))
	} else {
		h, err = NewHost(hdr.Rows, int(hdr.Dim))
	}
	if err != nil {
		return nil, fmt.Errorf("runtime: checkpoint shape: %w", err)
	}
	if err := h.loadBody(br, hdr); err != nil {
		return nil, err
	}
	return h, nil
}

// LoadHostTiered reads a checkpoint of either version into a freshly
// allocated tiered host with the given hot fraction — checkpoint-only
// serving on a memory budget, where the caller wants the quantized cold
// tail regardless of how the table was trained. A v1 body quantizes its
// cold tail on entry (head-hot split); a v2 body keeps the file's tier
// tags, with hot rows beyond this host's capacity degrading to cold.
func LoadHostTiered(r io.Reader, hotFraction float64) (*Host, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr, _, err := readCheckpointHeader(br)
	if err != nil {
		return nil, err
	}
	h, err := NewTieredHost(hdr.Rows, int(hdr.Dim), hotFraction)
	if err != nil {
		return nil, fmt.Errorf("runtime: checkpoint shape: %w", err)
	}
	if err := h.loadBody(br, hdr); err != nil {
		return nil, err
	}
	return h, nil
}

func writeFloats(w io.Writer, xs []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(xs); off += 4096 {
		end := off + 4096
		if end > len(xs) {
			end = len(xs)
		}
		chunk := xs[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:len(chunk)*4]); err != nil {
			return fmt.Errorf("runtime: checkpoint write: %w", err)
		}
	}
	return nil
}

func readFloats(r io.Reader, xs []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(xs); off += 4096 {
		end := off + 4096
		if end > len(xs) {
			end = len(xs)
		}
		n := (end - off) * 4
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return fmt.Errorf("runtime: checkpoint read: %w", err)
		}
		for i := off; i < end; i++ {
			xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[(i-off)*4:]))
		}
	}
	return nil
}
