package runtime

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format: a small binary header followed by the raw row slab
// and (optionally) the optimizer-state slab, all little-endian float32.
// Row versions are transient cache-coherence state and are not persisted;
// caches start cold after a restore, which is always safe (a cold cache
// merely misses).
const (
	checkpointMagic   = uint32(0xF21A6A10)
	checkpointVersion = uint32(1)
)

type checkpointHeader struct {
	Magic    uint32
	Version  uint32
	Rows     int64
	Dim      int32
	HasState int32
}

// Save writes the host parameter slab (and optimizer state, if enabled)
// as a checkpoint. Call only when no training is in flight — after Run
// returns, every flushed update is in the slab (DrainAll runs in Run's
// epilogue).
func (h *Host) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := checkpointHeader{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		Rows:    h.rows,
		Dim:     int32(h.dim),
	}
	if h.state != nil {
		hdr.HasState = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("runtime: checkpoint header: %w", err)
	}
	if err := writeFloats(bw, h.slab); err != nil {
		return err
	}
	if h.state != nil {
		if err := writeFloats(bw, h.state); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readCheckpointHeader reads and validates the fixed header.
func readCheckpointHeader(r io.Reader) (checkpointHeader, error) {
	var hdr checkpointHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return hdr, fmt.Errorf("runtime: checkpoint header: %w", err)
	}
	if hdr.Magic != checkpointMagic {
		return hdr, fmt.Errorf("runtime: not a frugal checkpoint (magic %#x)", hdr.Magic)
	}
	if hdr.Version != checkpointVersion {
		return hdr, fmt.Errorf("runtime: unsupported checkpoint version %d", hdr.Version)
	}
	return hdr, nil
}

// loadBody fills the host's slabs from the checkpoint body.
func (h *Host) loadBody(r io.Reader, hdr checkpointHeader) error {
	if err := readFloats(r, h.slab); err != nil {
		return err
	}
	if hdr.HasState == 1 {
		h.EnableOptimizerState()
		return readFloats(r, h.state)
	}
	return nil
}

// Load restores a checkpoint into the host slab. The checkpoint's shape
// must match exactly; a checkpoint with optimizer state enables the
// state slab. Call before Run.
func (h *Host) Load(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr, err := readCheckpointHeader(br)
	if err != nil {
		return err
	}
	if hdr.Rows != h.rows || int(hdr.Dim) != h.dim {
		return fmt.Errorf("runtime: checkpoint shape %dx%d does not match host %dx%d",
			hdr.Rows, hdr.Dim, h.rows, h.dim)
	}
	return h.loadBody(br, hdr)
}

// LoadHost reads a checkpoint and returns a freshly allocated Host shaped
// by its header — checkpoint-only serving, where no training Config
// exists to dictate the shape.
func LoadHost(r io.Reader) (*Host, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr, err := readCheckpointHeader(br)
	if err != nil {
		return nil, err
	}
	h, err := NewHost(hdr.Rows, int(hdr.Dim))
	if err != nil {
		return nil, fmt.Errorf("runtime: checkpoint shape: %w", err)
	}
	if err := h.loadBody(br, hdr); err != nil {
		return nil, err
	}
	return h, nil
}

func writeFloats(w io.Writer, xs []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(xs); off += 4096 {
		end := off + 4096
		if end > len(xs) {
			end = len(xs)
		}
		chunk := xs[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:len(chunk)*4]); err != nil {
			return fmt.Errorf("runtime: checkpoint write: %w", err)
		}
	}
	return nil
}

func readFloats(r io.Reader, xs []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(xs); off += 4096 {
		end := off + 4096
		if end > len(xs) {
			end = len(xs)
		}
		n := (end - off) * 4
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return fmt.Errorf("runtime: checkpoint read: %w", err)
		}
		for i := off; i < end; i++ {
			xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[(i-off)*4:]))
		}
	}
	return nil
}
