// Package runtime is Frugal's real concurrent training runtime: one
// goroutine per simulated GPU, a shared host-memory parameter slab, the
// P²F controller with its flusher pool, and per-GPU embedding caches. It
// trains real models (internal/model) on real traces (internal/data) with
// genuine concurrency — the consistency guarantees of §3.3 are enforced
// (and race-detectable) here, while wall-clock performance figures come
// from internal/sim.
//
// Three engines are implemented:
//
//   - EngineFrugal: the paper's system — sharded per-GPU caches, UVA-style
//     direct host reads, updates committed through the P²F controller and
//     flushed to host memory by background threads in priority order.
//   - EngineFrugalSync: the Frugal-Sync baseline of §4 — same data path
//     but a write-through policy that applies every update to host memory
//     synchronously at commit time.
//   - EngineDirect: the PyTorch baseline — no caches; reads and writes go
//     straight to host memory.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"frugal/internal/pq"
	"frugal/internal/tensor"
)

// Host is the host-memory side of the two-tier parameter hierarchy
// (§3, Fig 5): the complete set of embedding rows, a per-row version
// counter used for cache-freshness checks, and striped row locks for the
// synchronous write paths.
type Host struct {
	rows     int64
	dim      int
	slab     []float32 // full-precision rows; nil when the cold tier owns storage
	tier     *coldTier // frequency-aware tiered storage (NewTieredHost); nil = all-f32
	state    []float32 // per-row optimizer state (Adagrad accumulator); nil for SGD
	versions []atomic.Uint64
	locks    []sync.Mutex // striped by key
	applied  atomic.Int64 // updates applied (all paths)

	// writeFault, when set, is consulted once per host-write attempt and
	// reports whether that attempt fails transiently (fault injection).
	// The writer retries with exponential backoff; writeRetries counts the
	// retried attempts.
	writeFault   func() bool
	writeRetries atomic.Int64
}

const lockStripes = 1024

// NewHost allocates a zero-initialised host slab for `rows` embeddings of
// dimension dim. Use Init to fill it.
func NewHost(rows int64, dim int) (*Host, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("runtime: invalid host shape rows=%d dim=%d", rows, dim)
	}
	const maxSlab = 1 << 33 // 8 GiB of float32s — sanity bound for tests
	if rows*int64(dim) > maxSlab {
		return nil, fmt.Errorf("runtime: host slab %d floats exceeds bound; use a Scaled() spec", rows*int64(dim))
	}
	return &Host{
		rows:     rows,
		dim:      dim,
		slab:     make([]float32, rows*int64(dim)),
		versions: make([]atomic.Uint64, rows),
		locks:    make([]sync.Mutex, lockStripes),
	}, nil
}

// Rows returns the row count.
func (h *Host) Rows() int64 { return h.rows }

// Dim returns the embedding dimension.
func (h *Host) Dim() int { return h.dim }

// Init fills every row using fill(key, row) — e.g. Xavier initialisation.
// On a tiered host the fill lands in each row's tier (cold rows are
// quantized immediately); Init is single-threaded, called before traffic.
func (h *Host) Init(fill func(key uint64, row []float32)) {
	if t := h.tier; t != nil {
		scratch := make([]float32, h.dim)
		for k := int64(0); k < h.rows; k++ {
			fill(uint64(k), scratch)
			t.writeRow(uint64(k), scratch)
		}
		return
	}
	for k := int64(0); k < h.rows; k++ {
		fill(uint64(k), h.row(uint64(k)))
	}
}

func (h *Host) row(key uint64) []float32 {
	i := int64(key) * int64(h.dim)
	return h.slab[i : i+int64(h.dim)]
}

func (h *Host) lock(key uint64) *sync.Mutex { return &h.locks[key%lockStripes] }

// ReadRowDirect copies row `key` into dst — the UVA zero-copy gather of
// §3.1. Safe without locking only when the caller holds the P²F gate
// guarantee (no pending writes for this key); every other reader uses
// ReadRow. On a tiered host the read takes the stripe lock anyway: the
// gate covers flusher writes, but a demotion can rewrite any row's
// authoritative bytes at a flush boundary, so lock-free reads are only
// sound when storage never moves.
func (h *Host) ReadRowDirect(key uint64, dst []float32) {
	if t := h.tier; t != nil {
		l := h.lock(key)
		l.Lock()
		t.readRow(key, dst)
		l.Unlock()
		return
	}
	tensor.Copy(dst, h.row(key))
}

// ReadRow copies row `key` into dst under the row lock and returns the
// row version observed with the copy. This is the allocation-free serve
// read primitive: the version is read inside the same critical section as
// the copy, so it identifies exactly the state dst holds (versions only
// grow — one increment per applied update).
func (h *Host) ReadRow(key uint64, dst []float32) uint64 {
	l := h.lock(key)
	l.Lock()
	if t := h.tier; t != nil {
		t.readRow(key, dst)
	} else {
		tensor.Copy(dst, h.row(key))
	}
	v := h.versions[key].Load()
	l.Unlock()
	return v
}

// ReadRowLocked copies row `key` into dst under the row lock.
func (h *Host) ReadRowLocked(key uint64, dst []float32) {
	h.ReadRow(key, dst)
}

// Version returns the row's update counter.
func (h *Host) Version(key uint64) uint64 { return h.versions[key].Load() }

// ReadRowState copies row `key` into dst under the row lock and returns
// the row version and the optimizer-state accumulator observed with the
// copy (0 when no state slab is enabled). The delta-checkpoint writer
// uses it to capture a torn-free (row, state, version) triple in one
// critical section.
func (h *Host) ReadRowState(key uint64, dst []float32) (uint64, float32) {
	l := h.lock(key)
	l.Lock()
	if t := h.tier; t != nil {
		t.readRow(key, dst)
	} else {
		tensor.Copy(dst, h.row(key))
	}
	v := h.versions[key].Load()
	var s float32
	if h.state != nil {
		s = h.state[key]
	}
	l.Unlock()
	return v, s
}

// SetRow replaces row `key` with a full row image at the given version —
// the replica apply path, where updates arrive as recorded row states
// rather than deltas. The write is skipped when the stored version is
// already past `version` (a late or duplicate log record: newer content
// wins); replaying records in log order is therefore idempotent. state
// replaces the optimizer accumulator when one is enabled.
func (h *Host) SetRow(key uint64, row []float32, version uint64, state float32) {
	l := h.lock(key)
	l.Lock()
	if h.versions[key].Load() <= version {
		if t := h.tier; t != nil {
			t.writeRow(key, row)
		} else {
			tensor.Copy(h.row(key), row)
		}
		if h.state != nil {
			h.state[key] = state
		}
		h.versions[key].Store(version)
	}
	l.Unlock()
}

// SetVersion restores a row's version counter — replica bootstrap only
// (a compacted base carries its version vector in a sidecar; the slab
// codec itself never persists versions). Call before serving starts.
func (h *Host) SetVersion(key uint64, v uint64) { h.versions[key].Store(v) }

// HasOptState reports whether the optimizer-state slab is enabled.
func (h *Host) HasOptState() bool { return h.state != nil }

// EnableOptimizerState allocates the per-row optimizer accumulator slab
// (row-wise Adagrad). Must be called before training starts.
func (h *Host) EnableOptimizerState() {
	if h.state == nil {
		h.state = make([]float32, h.rows)
	}
}

// OptState returns the row's optimizer accumulator. Like ReadRow, it is
// safe without locking only under the gate's no-pending-writes guarantee.
func (h *Host) OptState(key uint64) float32 {
	if h.state == nil {
		return 0
	}
	return h.state[key]
}

// SetWriteFault installs the transient host-write fault hook. Must be
// called before training starts (the field is read without a lock).
func (h *Host) SetWriteFault(hook func() bool) { h.writeFault = hook }

// WriteRetries reports how many host-write attempts failed transiently
// and were retried.
func (h *Host) WriteRetries() int64 { return h.writeRetries.Load() }

// admitWrite blocks until the injected transient write fault (if any)
// clears, backing off exponentially between retries. Called before the
// row lock so a failing writer never stalls other keys in its stripe.
func (h *Host) admitWrite() {
	if h.writeFault == nil {
		return
	}
	backoff := time.Microsecond
	for h.writeFault() {
		h.writeRetries.Add(1)
		time.Sleep(backoff)
		if backoff < 512*time.Microsecond {
			backoff *= 2
		}
	}
}

// ApplyDelta adds delta into row `key` (and stateDelta into its optimizer
// accumulator) under the row lock and bumps the version — used by flusher
// sinks and the write-through engines.
func (h *Host) ApplyDelta(key uint64, delta []float32, stateDelta float32) {
	h.admitWrite()
	l := h.lock(key)
	l.Lock()
	if t := h.tier; t != nil {
		row, cold := t.mutableRow(key)
		tensor.Axpy(1, delta, row)
		t.commitRow(key, row, cold)
	} else {
		tensor.Axpy(1, delta, h.row(key))
	}
	if h.state != nil {
		h.state[key] += stateDelta
	}
	h.versions[key].Add(1)
	l.Unlock()
	h.applied.Add(1)
	// Write-through engines have no flush boundary of their own: the
	// commit IS the flush, so tier maintenance rides it here.
	h.TierMaintain(key, false)
}

// ApplyUpdates applies a g-entry's whole write set to one row under a
// single lock acquisition (the flusher path).
func (h *Host) ApplyUpdates(key uint64, updates []pq.Update) {
	if len(updates) == 0 {
		return
	}
	h.admitWrite()
	l := h.lock(key)
	l.Lock()
	var row []float32
	var cold bool
	if t := h.tier; t != nil {
		row, cold = t.mutableRow(key)
	} else {
		row = h.row(key)
	}
	for _, u := range updates {
		tensor.Axpy(1, u.Delta, row)
		if h.state != nil {
			h.state[key] += u.StateDelta
		}
	}
	if t := h.tier; t != nil {
		t.commitRow(key, row, cold)
	}
	h.versions[key].Add(uint64(len(updates)))
	l.Unlock()
	h.applied.Add(int64(len(updates)))
}

// Applied returns the total number of updates applied to the slab.
func (h *Host) Applied() int64 { return h.applied.Load() }

// Snapshot copies row `key` (test helper).
func (h *Host) Snapshot(key uint64) []float32 {
	out := make([]float32, h.dim)
	h.ReadRow(key, out)
	return out
}

// ReadRows copies the n = len(dst)/Dim() consecutive rows starting at
// `from` into dst, each row under its stripe lock — the block-iteration
// primitive index build and repair use to walk a live slab. Row copies
// are individually consistent (never half an update) but the block as a
// whole is not a point-in-time snapshot; writers that land mid-walk are
// reconciled by the index's flush-repair queue. Panics if dst is not a
// whole number of rows or the range exceeds the slab.
func (h *Host) ReadRows(from int64, dst []float32) {
	d := h.dim
	if len(dst)%d != 0 {
		panic(fmt.Sprintf("runtime: ReadRows dst %d not a multiple of dim %d", len(dst), d))
	}
	n := int64(len(dst) / d)
	if from < 0 || from+n > h.rows {
		panic(fmt.Sprintf("runtime: ReadRows range [%d,%d) outside %d rows", from, from+n, h.rows))
	}
	for i := int64(0); i < n; i++ {
		key := uint64(from + i)
		l := h.lock(key)
		l.Lock()
		if t := h.tier; t != nil {
			t.readRow(key, dst[i*int64(d):(i+1)*int64(d)])
		} else {
			tensor.Copy(dst[i*int64(d):(i+1)*int64(d)], h.row(key))
		}
		l.Unlock()
	}
}

// ScoreRows computes out[i] = query · row(from+i) for len(out) consecutive
// rows in one batched matrix-vector kernel over the contiguous slab. It
// takes no locks: callers must guarantee the range is quiescent (a loaded
// checkpoint, or a finished job). Live serving uses ScoreRowsLocked.
func (h *Host) ScoreRows(query []float32, from int64, out []float32) {
	if t := h.tier; t != nil {
		// No contiguous f32 slab to hand the batched kernel: score per
		// row, cold rows through the quantized dot (no materialization).
		for i := range out {
			out[i] = t.score(query, uint64(from+int64(i)))
		}
		return
	}
	d := int64(h.dim)
	m := tensor.Matrix{Rows: len(out), Cols: h.dim, Data: h.slab[from*d : (from+int64(len(out)))*d]}
	m.MulVec(query, out)
}

// ScoreRowsLocked is ScoreRows for a slab with live writers: each row is
// scored under its stripe lock, so a score never mixes halves of two
// updates (the same isolation the flusher write path provides).
func (h *Host) ScoreRowsLocked(query []float32, from int64, out []float32) {
	t := h.tier
	for i := range out {
		key := uint64(from + int64(i))
		l := h.lock(key)
		l.Lock()
		if t != nil {
			out[i] = t.score(query, key)
		} else {
			out[i] = tensor.Dot(query, h.row(key))
		}
		l.Unlock()
	}
}
