package runtime

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"frugal/internal/cache"
	"frugal/internal/data"
	"frugal/internal/fault"
	"frugal/internal/obs"
	"frugal/internal/p2f"
	"frugal/internal/pq"
	"frugal/internal/stats"
	"frugal/internal/tensor"
)

// Engine selects the training data path.
type Engine string

// The runtime's engines (see the package comment).
const (
	EngineFrugal     Engine = "frugal"
	EngineFrugalSync Engine = "frugal-sync"
	EngineDirect     Engine = "direct"
	// EngineAsync is a deliberately inconsistent baseline: workers
	// free-run with no gate and no step barriers, so reads can observe
	// parameters missing other workers' updates. It exists to demonstrate
	// what §3 of the paper argues — asynchronous training forfeits the
	// reproducible-parameter guarantee the other engines share (the
	// divergence test measures it). Not part of the paper's evaluation.
	EngineAsync Engine = "async"
)

// Engines lists the synchronous engines (the paper's systems).
func Engines() []Engine { return []Engine{EngineFrugal, EngineFrugalSync, EngineDirect} }

// Config shapes a training job.
type Config struct {
	// Engine selects the data path (default EngineFrugal).
	Engine Engine
	// NumGPUs is the number of trainer goroutines (default 1).
	NumGPUs int
	// Rows is the embedding-table height (key space). Required.
	Rows int64
	// Dim is the embedding dimension. Required.
	Dim int
	// CacheRatio sizes each GPU's cache as a fraction of Rows (§4.1
	// default 0.05). Ignored by EngineDirect.
	CacheRatio float64
	// LR is the embedding learning rate (default 0.05).
	LR float32
	// Lookahead, FlushThreads and DequeueBatch configure the P²F
	// controller (defaults 10 / 8 / 64). EngineFrugal only.
	Lookahead    int
	FlushThreads int
	DequeueBatch int
	// Queue overrides the controller's priority queue (Exp #4).
	Queue pq.Queue
	// Prefetch enables the lookahead prefetcher: while step S computes, a
	// per-worker fill stage walks the key sets of batches S+1..S+depth,
	// fills predicted cache misses from host memory, and window-pins every
	// slot those batches will touch so eviction never victimizes a row the
	// window will re-request. Requires a cached engine (EngineFrugal or
	// EngineFrugalSync).
	Prefetch bool
	// PrefetchDepth is how many future batches the prefetcher keeps filled
	// and pinned ahead of training (default: Lookahead). Requires
	// Prefetch; for EngineFrugal it cannot exceed Lookahead — the
	// controller's sample queue only ever runs L batches ahead.
	PrefetchDepth int
	// Optimizer selects the embedding optimizer: OptSGD (default) or
	// OptAdagrad (row-wise Adagrad; the flushing threads apply the
	// accumulator on host memory alongside the row delta).
	Optimizer Optimizer
	// AdagradEps stabilises the Adagrad denominator (default 1e-6).
	AdagradEps float32
	// CheckConsistency verifies invariant (2) after every gate pass and
	// fails the job on violation. Tests enable it; it is cheap enough to
	// leave on in examples too.
	CheckConsistency bool
	// Seed drives parameter initialisation.
	Seed int64
	// Observer attaches the observability layer (internal/obs): live
	// metric counters threaded through the gate, the caches, the priority
	// queue and the flusher pool, plus the step-event tracer. nil (the
	// default) keeps every instrumentation point a no-op.
	Observer *obs.Observer
	// OnStep, when set, is invoked once per globally completed training
	// step — by the last trainer to commit it, outside the gate's critical
	// path. The callback must be fast and non-blocking: it runs on a
	// trainer goroutine, and a slow callback stalls that trainer's next
	// step (never the gate or the flusher pool).
	OnStep func(StepStats)
	// Faults is the deterministic fault injector (internal/fault) driving
	// flusher crashes/stalls, trainer straggler delays, and transient
	// host-write failures. nil (the default) injects nothing.
	Faults *fault.Injector
	// Recovery configures the P²F self-healing layer: flusher heartbeats,
	// respawn budget/backoff, and the gate watchdog's degrade timeout.
	// The zero value enables it with defaults. EngineFrugal only.
	Recovery p2f.Recovery
	// ColdTier allocates the job's host slab as a frequency-aware tiered
	// store: a hot head of full-precision f32 slots plus a quantized int8
	// cold tail (per-row affine scale/zero). Promotion and demotion ride
	// the P²F flush path, so tier moves land at consistency points the
	// gate already covers. Incompatible with Config.Slab (the external
	// store owns its representation).
	ColdTier bool
	// HotFraction sizes the hot head as a fraction of Rows (default 0.1).
	// Requires ColdTier; must be in (0, 1].
	HotFraction float64
	// Slab, when set, overrides the job's parameter slab with an external
	// row store — e.g. store.TrainSlab over a sharded deployment — and the
	// step loop reads and writes it instead of allocating host memory.
	// Rows/Dim must match the store's shape. The store owns initialisation
	// (Seed-based init is skipped), Host() returns nil (no checkpoints),
	// and OptAdagrad is rejected (the optimizer accumulator is host-memory
	// state the RowStore surface does not read back).
	Slab RowStore
}

// StepStats is the per-step progress report delivered to Config.OnStep.
type StepStats struct {
	// Step is the completed global step number.
	Step int64
	// Loss is the step's global training loss (summed over trainers).
	Loss float32
	// GateStall is the time trainers spent blocked at the consistency
	// gate for this step, summed over trainers (0 for gate-less engines).
	GateStall time.Duration
	// FlushBacklog is the number of g-entries pending in the priority
	// queue when the step completed (0 for non-Frugal engines).
	FlushBacklog int
}

// ErrCanceled reports a job stopped by context cancellation before
// completing all its steps. It wraps the context's error, so both
// errors.Is(err, context.Canceled) and errors.As(err, &ErrCanceled{})
// style checks work. The partial Result returned alongside it covers the
// steps that fully committed; the P²F epilogue has still drained every
// pending update of those steps to host memory.
type ErrCanceled struct {
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error implements error.
func (e *ErrCanceled) Error() string { return "runtime: job canceled: " + e.Cause.Error() }

// Unwrap exposes the context error to errors.Is/As.
func (e *ErrCanceled) Unwrap() error { return e.Cause }

func (c *Config) normalize() error {
	if c.Engine == "" {
		c.Engine = EngineFrugal
	}
	switch c.Engine {
	case EngineFrugal, EngineFrugalSync, EngineDirect, EngineAsync:
	default:
		return fmt.Errorf("runtime: unknown engine %q", c.Engine)
	}
	if c.NumGPUs <= 0 {
		c.NumGPUs = 1
	}
	if c.Rows <= 0 || c.Dim <= 0 {
		return fmt.Errorf("runtime: Rows and Dim are required (got %d, %d)", c.Rows, c.Dim)
	}
	if c.CacheRatio <= 0 {
		c.CacheRatio = 0.05
	}
	if c.CacheRatio > 1 {
		return fmt.Errorf("runtime: CacheRatio %v > 1", c.CacheRatio)
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 10
	}
	if c.FlushThreads <= 0 {
		c.FlushThreads = 8
	}
	if c.DequeueBatch <= 0 {
		c.DequeueBatch = 64
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("runtime: PrefetchDepth must be positive, got %d", c.PrefetchDepth)
	}
	if c.PrefetchDepth > 0 && !c.Prefetch {
		return errors.New("runtime: PrefetchDepth requires Prefetch")
	}
	if c.Prefetch {
		switch c.Engine {
		case EngineDirect, EngineAsync:
			return fmt.Errorf("runtime: Prefetch requires a cached engine, not %q", c.Engine)
		}
		if c.PrefetchDepth == 0 {
			c.PrefetchDepth = c.Lookahead
		}
		if c.Engine == EngineFrugal && c.PrefetchDepth > c.Lookahead {
			return fmt.Errorf("runtime: PrefetchDepth %d exceeds Lookahead %d (the sample queue never runs further ahead)",
				c.PrefetchDepth, c.Lookahead)
		}
	}
	if c.HotFraction != 0 && !c.ColdTier {
		return errors.New("runtime: HotFraction requires ColdTier")
	}
	if c.ColdTier {
		if c.Slab != nil {
			return errors.New("runtime: ColdTier is incompatible with Config.Slab (the external store owns its representation)")
		}
		if c.HotFraction == 0 {
			c.HotFraction = 0.1
		}
		if c.HotFraction < 0 || c.HotFraction > 1 {
			return fmt.Errorf("runtime: HotFraction must be in (0, 1], got %g", c.HotFraction)
		}
	}
	switch c.Optimizer {
	case "":
		c.Optimizer = OptSGD
	case OptSGD, OptAdagrad:
	default:
		return fmt.Errorf("runtime: unknown optimizer %q", c.Optimizer)
	}
	if c.AdagradEps <= 0 {
		c.AdagradEps = 1e-6
	}
	return nil
}

// Optimizer names an embedding optimizer.
type Optimizer string

// The embedding optimizers.
const (
	// OptSGD applies rows -= lr·grad.
	OptSGD Optimizer = "sgd"
	// OptAdagrad applies row-wise Adagrad: each row keeps one accumulated
	// squared-gradient scalar G (mean over dimensions, the DLRM
	// convention) and steps by lr/√(G+ε).
	OptAdagrad Optimizer = "adagrad"
)

// shardWork is one worker's slice of a global step: the embedding keys it
// reads (occurrence order, duplicates allowed) and the compute callback
// that consumes the gathered rows and fills per-occurrence gradients,
// returning the shard loss.
type shardWork struct {
	keys    []uint64
	compute func(rows [][]float32, grads [][]float32) float32
}

// stepPayload carries all workers' shards for one global step.
type stepPayload struct {
	work []shardWork
}

// Result aggregates a finished job.
type Result struct {
	Steps      int64
	Losses     []float32
	WallTime   time.Duration
	StallTime  time.Duration
	CacheStats cache.Stats
	Flushed    int64
	Deferred   int64
	// SamplesPerSec is wall-clock training throughput in global samples
	// per second (the caller supplies samples per step).
	SamplesPerSec float64
	// TrainAUC is the area under the ROC curve of the training-time
	// predictions (REC jobs only; 0 when the task produces none). Because
	// predictions are made before each sample's update, this is an honest
	// progressive-validation metric.
	TrainAUC float64
	// Recovery reports what the fault-injection and self-healing layers
	// did during the run (all-zero on fault-free, healthy runs).
	Recovery RecoveryStats
}

// RecoveryStats aggregates the run's fault and recovery accounting
// across the injector, the P²F self-healing layer, and the host slab.
type RecoveryStats struct {
	// FaultsInjected counts scheduled faults that fired (all kinds).
	FaultsInjected int64 `json:"faultsInjected"`
	// FlusherCrashes / StallsDetected / FlusherRespawns / Redistributed
	// mirror the controller's RecoveryStats (see internal/p2f).
	FlusherCrashes  int64 `json:"flusherCrashes"`
	StallsDetected  int64 `json:"stallsDetected"`
	FlusherRespawns int64 `json:"flusherRespawns"`
	Redistributed   int64 `json:"redistributed"`
	// HostWriteRetries counts transient host-write failures retried.
	HostWriteRetries int64 `json:"hostWriteRetries"`
	// Degraded reports the gate watchdog switching the run to
	// write-through; DegradedStep is the committed watermark at the
	// transition (-1 when not degraded).
	Degraded     bool  `json:"degraded"`
	DegradedStep int64 `json:"degradedStep"`
}

// Job is a configured training run over a generic payload stream.
type Job struct {
	cfg Config
	// slab is the parameter store the step loop reads and writes — the
	// job's own *Host unless Config.Slab overrode it.
	slab   RowStore
	host   *Host // job-owned host slab; nil under a Config.Slab override
	caches []*cache.Cache
	// prefetchers is the per-worker lookahead fill stage (prefetch.go);
	// nil unless Config.Prefetch.
	prefetchers []*prefetcher
	ctrl        *p2f.Controller
	trace       *data.PayloadTrace[stepPayload]
	barrier     *Barrier
	steps       int64
	samples     int // per global step, for throughput accounting
	// rowPool recycles per-key delta rows across steps (DESIGN.md §5d).
	// Shared by all trainers; EngineFrugal's flush sink returns buffers here
	// after the host apply.
	rowPool *rowPool

	// Observability sinks, cached off cfg.Observer (all nil-safe no-ops
	// when observability is off).
	gateObs  *obs.GateObs
	stepObs  *obs.StepObs
	flObs    *obs.FlushObs
	faultObs *obs.FaultObs
	tracer   *obs.Tracer

	mu        sync.Mutex
	losses    []float32
	pending   map[int64]stepAgg // per-step completion accounting
	completed int64             // fully committed steps (prefix property)
	preds     []float64         // progressive-validation reservoir (scores)
	labels    []float64
}

// stepAgg accumulates one step's per-trainer contributions until the last
// trainer commits it.
type stepAgg struct {
	done  int
	stall time.Duration
}

// predReservoir bounds the AUC sample memory.
const predReservoir = 1 << 16

// recordPreds appends training-time predictions for the TrainAUC metric.
func (j *Job) recordPreds(preds, labels []float32) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range preds {
		if len(j.preds) >= predReservoir {
			return
		}
		j.preds = append(j.preds, float64(preds[i]))
		j.labels = append(j.labels, float64(labels[i]))
	}
}

// newJob wires the shared machinery. gen produces one stepPayload per
// global step along with the union of keys the step touches.
func newJob(cfg Config, steps int64, samplesPerStep int,
	gen func() (stepPayload, []uint64, bool)) (*Job, error) {

	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if steps <= 0 {
		return nil, errors.New("runtime: steps must be positive")
	}
	var (
		host *Host
		slab RowStore
	)
	if cfg.Slab != nil {
		if cfg.Optimizer == OptAdagrad {
			return nil, errors.New("runtime: OptAdagrad requires the job's own host slab (Config.Slab is set)")
		}
		if cfg.Slab.Rows() != cfg.Rows || cfg.Slab.Dim() != cfg.Dim {
			return nil, fmt.Errorf("runtime: Config.Slab shape %dx%d, want Rows=%d Dim=%d",
				cfg.Slab.Rows(), cfg.Slab.Dim(), cfg.Rows, cfg.Dim)
		}
		slab = cfg.Slab
	} else {
		var err error
		if cfg.ColdTier {
			host, err = NewTieredHost(cfg.Rows, cfg.Dim, cfg.HotFraction)
			if err == nil {
				host.SetTierObserver(cfg.Observer.TierSink())
			}
		} else {
			host, err = NewHost(cfg.Rows, cfg.Dim)
		}
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		// Embedding rows use the standard 1/√dim uniform init (independent of
		// table height — Xavier over the row count would vanish for large
		// tables and stall multiplicative KG scorers).
		bound := float32(1 / math.Sqrt(float64(cfg.Dim)))
		host.Init(func(_ uint64, row []float32) {
			tensor.UniformInit(rng, row, bound)
		})
		slab = host
	}

	j := &Job{
		cfg:      cfg,
		slab:     slab,
		host:     host,
		rowPool:  newRowPool(cfg.Dim),
		trace:    data.NewPayloadTrace(gen),
		barrier:  NewBarrier(cfg.NumGPUs),
		steps:    steps,
		samples:  samplesPerStep,
		gateObs:  cfg.Observer.GateSink(),
		stepObs:  cfg.Observer.StepSink(),
		flObs:    cfg.Observer.FlushSink(),
		faultObs: cfg.Observer.FaultSink(),
		tracer:   cfg.Observer.TraceSink(),
		pending:  make(map[int64]stepAgg),
	}
	if cfg.Faults != nil && host != nil {
		faultObs := j.faultObs
		host.SetWriteFault(func() bool {
			if !cfg.Faults.HostWriteFail() {
				return false
			}
			faultObs.WriteRetry(0)
			return true
		})
	}
	if cfg.Optimizer == OptAdagrad {
		host.EnableOptimizerState()
	}
	if cfg.Engine != EngineDirect && cfg.Engine != EngineAsync {
		rowsPerGPU := int(float64(cfg.Rows) * cfg.CacheRatio)
		if rowsPerGPU < cache.Ways {
			rowsPerGPU = cache.Ways
		}
		for g := 0; g < cfg.NumGPUs; g++ {
			c := cache.MustNew(rowsPerGPU, cfg.Dim)
			c.SetObserver(cfg.Observer.CacheSink(), g)
			j.caches = append(j.caches, c)
		}
		if cfg.Prefetch {
			for g := 0; g < cfg.NumGPUs; g++ {
				j.prefetchers = append(j.prefetchers,
					newPrefetcher(g, cfg.NumGPUs, j.caches[g], slab, cfg.PrefetchDepth, cfg.Lookahead))
			}
		}
	}
	if cfg.Engine == EngineFrugal {
		var onPrefetch func(int64, []uint64)
		if j.prefetchers != nil {
			onPrefetch = j.feedPrefetch
		}
		ctrl, err := p2f.NewController(p2f.Options{
			MaxStep:          steps,
			Lookahead:        cfg.Lookahead,
			FlushThreads:     cfg.FlushThreads,
			Trainers:         cfg.NumGPUs,
			DequeueBatchSize: cfg.DequeueBatch,
			Queue:            cfg.Queue,
			Obs:              cfg.Observer,
			Faults:           cfg.Faults,
			Recovery:         cfg.Recovery,
			OnPrefetch:       onPrefetch,
			Sink:             &frugalSink{job: j, tier: tierHost(host)},
			Source:           j.trace,
		})
		if err != nil {
			return nil, err
		}
		j.ctrl = ctrl
	}
	return j, nil
}

// frugalSink is the P²F flush sink for the Frugal engine: it applies a
// drained write set to the parameter store and recycles the delta
// buffers (the gate guarantees no reader still needs them once
// applied). On a tiered host it also feeds the tier maintainer the
// flush-boundary access signal — promotion and demotion ride the flush
// path, so tier moves land at a consistency point the gate already
// covers, with deferred (∞-slot) flushes counting as colder evidence
// than urgent ones.
type frugalSink struct {
	job  *Job
	tier *Host // non-nil only when the job's own host is tiered
}

// tierHost returns h when it is tiered, else nil — the sink's guard for
// Config.Slab overrides and untiered hosts alike.
func tierHost(h *Host) *Host {
	if h != nil && h.Tiered() {
		return h
	}
	return nil
}

func (s *frugalSink) Flush(key uint64, updates []pq.Update) {
	s.FlushTiered(key, updates, false)
}

func (s *frugalSink) FlushTiered(key uint64, updates []pq.Update, deferred bool) {
	s.job.slab.ApplyUpdates(key, updates)
	s.job.rowPool.PutUpdates(updates)
	if s.tier != nil {
		s.tier.TierMaintain(key, deferred)
	}
}

// Host exposes the job-owned parameter slab (tests, examples,
// checkpoints). It is nil when Config.Slab overrode the slab with an
// external store — use Slab then.
func (j *Job) Host() *Host { return j.host }

// Slab exposes the parameter store the step loop trains against: the
// job's own host slab, or the Config.Slab override.
func (j *Job) Slab() RowStore { return j.slab }

// Controller exposes the P²F controller, or nil for non-Frugal engines.
func (j *Job) Controller() *p2f.Controller { return j.ctrl }

// Run executes the job to completion and returns aggregate results.
func (j *Job) Run() (Result, error) { return j.RunContext(context.Background()) }

// RunContext executes the job until completion or ctx cancellation.
//
// Cancellation is step-synchronized: the dispatcher is the single
// decision point, so every trainer sees exactly the same set of steps and
// the read/step barriers stay balanced — no goroutine is ever stranded in
// a barrier or at the gate. On cancellation the in-flight steps finish,
// the P²F epilogue drains every committed update to host memory, the
// flusher pool stops, and RunContext returns the partial Result for the
// completed prefix of steps together with a *ErrCanceled wrapping
// ctx.Err(). An already-canceled ctx returns before any goroutine starts.
func (j *Job) RunContext(ctx context.Context) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, &ErrCanceled{Cause: err}
	}
	start := time.Now()
	if j.ctrl != nil {
		j.ctrl.Start()
		defer j.ctrl.Stop()
	}
	if j.prefetchers != nil {
		j.startPrefetchers()
		// Deferred after ctrl.Stop, so it runs first (LIFO): a stopping
		// prefetcher unblocks any feed the controller's prefetch goroutine
		// is parked in, letting ctrl.Stop join it.
		defer j.stopPrefetchers()
	}
	j.losses = make([]float32, j.steps)

	chans := make([]chan stepMsg, j.cfg.NumGPUs)
	for w := range chans {
		chans[w] = make(chan stepMsg, 1)
	}
	go j.dispatch(ctx, chans)

	var wg sync.WaitGroup
	for w := 0; w < j.cfg.NumGPUs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			j.workerLoop(w, chans[w])
		}(w)
	}
	wg.Wait()
	// Stop the prefetchers before reading cache stats below — their fill
	// goroutines would otherwise still be mutating the directories.
	j.stopPrefetchers()

	var res Result
	res.Recovery.DegradedStep = -1
	if j.ctrl != nil {
		j.ctrl.DrainAll()
		st := j.ctrl.Stats()
		res.StallTime = st.StallTime
		res.Flushed = st.FlushedUpdates
		res.Deferred = st.DeferredFlushes
		rs := j.ctrl.RecoveryStats()
		res.Recovery.FlusherCrashes = rs.FlusherCrashes
		res.Recovery.StallsDetected = rs.StallsDetected
		res.Recovery.FlusherRespawns = rs.Respawns
		res.Recovery.Redistributed = rs.Redistributed
		res.Recovery.Degraded = rs.Degraded
		res.Recovery.DegradedStep = rs.DegradedStep
	}
	res.Recovery.FaultsInjected = j.cfg.Faults.Stats().Injected
	res.Recovery.HostWriteRetries = j.slab.WriteRetries()
	j.mu.Lock()
	completed := j.completed
	j.mu.Unlock()
	res.WallTime = time.Since(start)
	res.Steps = completed
	res.Losses = j.losses[:completed]
	for _, c := range j.caches {
		s := c.Stats()
		res.CacheStats.Hits += s.Hits
		res.CacheStats.Misses += s.Misses
		res.CacheStats.StaleHits += s.StaleHits
		res.CacheStats.Inserted += s.Inserted
		res.CacheStats.Evicted += s.Evicted
		res.CacheStats.PrefetchFills += s.PrefetchFills
		res.CacheStats.PrefetchHits += s.PrefetchHits
		res.CacheStats.PrefetchLate += s.PrefetchLate
		res.CacheStats.PrefetchWasted += s.PrefetchWasted
		res.CacheStats.PinRejects += s.PinRejects
		res.CacheStats.WindowPinRejects += s.WindowPinRejects
	}
	res.SamplesPerSec = float64(j.samples) * float64(completed) / res.WallTime.Seconds()
	if len(j.preds) > 0 {
		res.TrainAUC = stats.AUC(j.preds, j.labels)
	}
	if err := ctx.Err(); err != nil {
		return res, &ErrCanceled{Cause: err}
	}
	return res, nil
}

func (j *Job) addLoss(step int64, loss float32) {
	j.mu.Lock()
	j.losses[step] += loss
	j.mu.Unlock()
}

// finishStep records one trainer completing its shard of a step; the last
// trainer to arrive marks the step globally complete, feeds the step
// observability counters, and fires Config.OnStep. Runs after commit, off
// the gate's critical path.
func (j *Job) finishStep(gpu int, step int64, stall, wall time.Duration) {
	j.stepObs.WorkerStep(gpu, step, wall)
	j.mu.Lock()
	agg := j.pending[step]
	agg.done++
	agg.stall += stall
	if agg.done < j.cfg.NumGPUs {
		j.pending[step] = agg
		j.mu.Unlock()
		return
	}
	delete(j.pending, step)
	j.completed++
	loss := j.losses[step]
	j.mu.Unlock()
	j.stepObs.Completed()
	if j.cfg.OnStep != nil {
		backlog := 0
		if j.ctrl != nil {
			backlog = j.ctrl.Queue().Len()
		}
		j.cfg.OnStep(StepStats{Step: step, Loss: loss, GateStall: agg.stall, FlushBacklog: backlog})
	}
}

// Snapshot returns a live copy of the job's observability metrics, plus
// the current flush backlog and sample-queue depth. Safe to call at any
// time, including concurrently with RunContext; with observability
// disabled it returns the zero Snapshot (live depths included — they need
// no observer).
func (j *Job) Snapshot() obs.Snapshot {
	s := j.cfg.Observer.Snapshot()
	if j.ctrl != nil {
		s.FlushBacklog = int64(j.ctrl.Queue().Len())
		s.SampleQueueDepth = int64(j.ctrl.SampleDepth())
	}
	return s
}

// WriteTrace dumps the step-event trace as JSONL (one event per line; see
// internal/obs for the schema). Call after RunContext returns — a dump
// concurrent with a running job can observe torn events. It errors when
// the job was built without observability.
func (j *Job) WriteTrace(w io.Writer) error {
	t := j.cfg.Observer.TraceSink()
	if t == nil {
		return errors.New("runtime: observability is not enabled on this job")
	}
	return t.DumpJSONL(w)
}

// Barrier is a reusable synchronisation barrier for the trainers' step
// phases (read barrier before commits; step barrier before the next gate).
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	gen     uint64
}

// NewBarrier builds a barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have arrived.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
