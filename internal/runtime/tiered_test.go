package runtime

import (
	"sync"

	"bytes"
	"frugal/internal/data"
	"math"
	"testing"
)

// quantBound is the per-element reconstruction bound for a row with the
// given dynamic range: scale/2 plus a little fp slack.
func quantBound(lo, hi float32) float64 {
	return float64(hi-lo)/510*(1+1e-4) + 1e-7
}

func fillRow(k uint64, row []float32) {
	for i := range row {
		row[i] = float32(k)*0.01 + float32(i)*0.1
	}
}

func newTieredTestHost(t *testing.T, rows int64, dim int, hotFrac float64) *Host {
	t.Helper()
	h, err := NewTieredHost(rows, dim, hotFrac)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(fillRow)
	return h
}

func TestTieredHostReadWrite(t *testing.T) {
	const rows, dim = 200, 16
	h := newTieredTestHost(t, rows, dim, 0.1)
	if !h.Tiered() {
		t.Fatal("host should report tiered")
	}
	if got := h.HotFraction(); got != 0.1 {
		t.Fatalf("hot fraction %v, want 0.1", got)
	}
	want := make([]float32, dim)
	got := make([]float32, dim)
	for k := uint64(0); k < rows; k++ {
		fillRow(k, want)
		h.ReadRow(k, got)
		bound := 0.0 // head of the ID space starts hot: exact
		if k >= 20 {
			bound = quantBound(want[0], want[dim-1])
		}
		for i := range want {
			if err := math.Abs(float64(want[i] - got[i])); err > bound {
				t.Fatalf("row %d[%d]: |%v − %v| = %v > %v", k, i, want[i], got[i], err, bound)
			}
		}
	}

	// SetRow into a cold row requantizes; the new content must read back
	// within the new row's bound.
	repl := make([]float32, dim)
	for i := range repl {
		repl[i] = -1 + float32(i)*0.25
	}
	h.SetRow(150, repl, 7, 0)
	if v := h.ReadRow(150, got); v != 7 {
		t.Fatalf("version %d, want 7", v)
	}
	bound := quantBound(repl[0], repl[dim-1])
	for i := range repl {
		if err := math.Abs(float64(repl[i] - got[i])); err > bound {
			t.Fatalf("replaced row[%d]: error %v > %v", i, err, bound)
		}
	}
}

func TestTieredApplyDelta(t *testing.T) {
	const rows, dim = 100, 8
	h := newTieredTestHost(t, rows, dim, 0.05) // 5 hot slots
	delta := make([]float32, dim)
	for i := range delta {
		delta[i] = 0.5
	}

	// Hot row: exact accumulation.
	before := h.Snapshot(2)
	h.ApplyDelta(2, delta, 0)
	after := h.Snapshot(2)
	for i := range after {
		if after[i] != before[i]+0.5 {
			t.Fatalf("hot apply[%d]: %v, want %v", i, after[i], before[i]+0.5)
		}
	}
	if h.Version(2) != 1 {
		t.Fatalf("version %d, want 1", h.Version(2))
	}

	// Cold row: dequantize → accumulate → requantize, bounded error.
	before = h.Snapshot(50)
	h.ApplyDelta(50, delta, 0)
	after = h.Snapshot(50)
	lo, hi := before[0]+0.5, before[dim-1]+0.5
	bound := quantBound(lo, hi) * 2 // input was already one quantize deep
	for i := range after {
		if err := math.Abs(float64(after[i] - (before[i] + 0.5))); err > bound {
			t.Fatalf("cold apply[%d]: error %v > %v", i, err, bound)
		}
	}
	if h.TierStats().ColdWrites == 0 {
		t.Fatal("cold apply should count a cold write")
	}
}

func TestTierPromotionDemotion(t *testing.T) {
	const rows, dim = 64, 8
	h := newTieredTestHost(t, rows, dim, 0.1) // 6 hot slots, rows 0–5
	tr := h.tier

	// A cold row hammered at the flush boundary must be promoted, and a
	// head row (never accessed) demoted to make room.
	key := uint64(40)
	before := h.Snapshot(key)
	for i := 0; i < 4 && tr.tier[key].Load() == 0; i++ {
		h.TierMaintain(key, false)
	}
	if tr.tier[key].Load() == 0 {
		t.Fatal("hot key was not promoted")
	}
	st := h.TierStats()
	if st.Promotions == 0 || st.Demotions == 0 {
		t.Fatalf("stats %+v: want ≥1 promotion and ≥1 demotion", st)
	}
	// Promotion dequantizes the cold image: content is preserved exactly
	// (the hot copy is the dequantized view) and the version untouched.
	after := h.Snapshot(key)
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("promotion changed content[%d]: %v → %v", i, before[i], after[i])
		}
	}
	if h.Version(key) != 0 {
		t.Fatalf("tier move bumped version to %d", h.Version(key))
	}

	// The demoted victim must still read back within its quant bound.
	demoted := uint64(0xffff)
	for k := uint64(0); k < 6; k++ {
		if tr.tier[k].Load() == 0 {
			demoted = k
			break
		}
	}
	if demoted == 0xffff {
		t.Fatal("no head row was demoted")
	}
	want := make([]float32, dim)
	fillRow(demoted, want)
	got := h.Snapshot(demoted)
	bound := quantBound(want[0], want[dim-1])
	for i := range got {
		if err := math.Abs(float64(want[i] - got[i])); err > bound {
			t.Fatalf("demoted row[%d]: error %v > %v", i, err, bound)
		}
	}
}

func TestTieredScoreRows(t *testing.T) {
	const rows, dim = 50, 8
	h := newTieredTestHost(t, rows, dim, 0.2)
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(i%3) - 1
	}
	out := make([]float32, rows)
	h.ScoreRows(q, 0, out)
	row := make([]float32, dim)
	for k := 0; k < rows; k++ {
		h.ReadRow(uint64(k), row)
		var want float64
		for i := range q {
			want += float64(q[i]) * float64(row[i])
		}
		if err := math.Abs(float64(out[k]) - want); err > 1e-3 {
			t.Fatalf("score[%d]: %v vs %v", k, out[k], want)
		}
	}
}

func TestTieredCheckpointRoundtrip(t *testing.T) {
	const rows, dim = 120, 16
	h := newTieredTestHost(t, rows, dim, 0.1)
	h.EnableOptimizerState()
	h.ApplyDelta(3, make([]float32, dim), 1.25) // hot, with opt state
	h.ApplyDelta(90, make([]float32, dim), 2.5) // cold
	h.TierMaintain(60, false)                   // shuffle the tier map a bit
	h.TierMaintain(60, false)

	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	// LoadHost reproduces a tiered host bit-identically: same snapshots,
	// and — because the serialization is canonical — identical re-save.
	h2, err := LoadHost(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Tiered() {
		t.Fatal("v2 checkpoint should load as a tiered host")
	}
	for k := uint64(0); k < rows; k++ {
		a, b := h.Snapshot(k), h2.Snapshot(k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d[%d]: %v != %v", k, i, a[i], b[i])
			}
		}
	}
	if h2.OptState(3) != 1.25 || h2.OptState(90) != 2.5 {
		t.Fatal("optimizer state lost across tiered checkpoint")
	}
	var buf2 bytes.Buffer
	if err := h2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatal("re-saved tiered checkpoint differs: serialization is not canonical")
	}

	// v2 → untiered host: cold rows dequantize into the slab.
	flat, err := NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	flat.Load(bytes.NewReader(saved))
	for k := uint64(0); k < rows; k++ {
		a, b := h.Snapshot(k), flat.Snapshot(k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("flat-loaded row %d[%d]: %v != %v", k, i, a[i], b[i])
			}
		}
	}

	// v1 → tiered host: the cold tail quantizes on entry.
	var flatBuf bytes.Buffer
	if err := flat.Save(&flatBuf); err != nil {
		t.Fatal(err)
	}
	h3, err := NewTieredHost(rows, dim, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h3.Load(&flatBuf); err != nil {
		t.Fatal(err)
	}
	row := make([]float32, dim)
	for k := uint64(0); k < rows; k++ {
		want := flat.Snapshot(k)
		h3.ReadRow(k, row)
		bound := 0.0
		if k >= 12 {
			lo, hi := want[0], want[0]
			for _, v := range want {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			bound = quantBound(lo, hi)
		}
		for i := range want {
			if err := math.Abs(float64(want[i] - row[i])); err > bound {
				t.Fatalf("v1→tiered row %d[%d]: error %v > %v", k, i, err, bound)
			}
		}
	}
}

func TestCaptureRestoreRow(t *testing.T) {
	const rows, dim = 80, 8
	h := newTieredTestHost(t, rows, dim, 0.1)
	h.SetRow(50, []float32{1, 2, 3, 4, 5, 6, 7, 8}, 9, 0)

	img := RowImage{Row: make([]float32, dim), Q: make([]int8, dim)}
	h.CaptureRow(50, &img)
	if !img.Cold || img.Version != 9 {
		t.Fatalf("capture: cold=%v version=%d, want cold v9", img.Cold, img.Version)
	}

	// Restore onto a fresh tiered host: codes land verbatim.
	h2 := newTieredTestHost(t, rows, dim, 0.1)
	h2.RestoreRow(50, &img)
	img2 := RowImage{Row: make([]float32, dim), Q: make([]int8, dim)}
	h2.CaptureRow(50, &img2)
	if !img2.Cold || img2.Scale != img.Scale || img2.Zero != img.Zero || !bytes.Equal(int8Bytes(img.Q), int8Bytes(img2.Q)) {
		t.Fatal("cold restore is not bit-identical")
	}
	if img2.Version != 9 {
		t.Fatalf("restored version %d, want 9", img2.Version)
	}

	// A stale (older-version) image must not land or move the tier.
	stale := RowImage{Version: 3, Cold: false, Row: make([]float32, dim)}
	h2.RestoreRow(50, &stale)
	if h2.tier.tier[50].Load() != 0 || h2.Version(50) != 9 {
		t.Fatal("stale restore moved the row")
	}

	// A hot-tagged image promotes the row on restore.
	img.Cold = false
	img.Version = 10
	h2.RestoreRow(50, &img)
	if h2.tier.tier[50].Load() == 0 {
		t.Fatal("hot restore left the row cold")
	}
	got := h2.Snapshot(50)
	for i := range got {
		if got[i] != img.Row[i] {
			t.Fatalf("hot restore[%d]: %v != %v", i, got[i], img.Row[i])
		}
	}

	// Restore onto an untiered host dequantizes into the slab.
	img.Cold = true
	flat, _ := NewHost(rows, dim)
	flat.RestoreRow(50, &img)
	want := make([]float32, dim)
	h.ReadRow(50, want)
	got = flat.Snapshot(50)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("untiered restore[%d]: %v != %v", i, got[i], want[i])
		}
	}
}

func int8Bytes(q []int8) []byte {
	b := make([]byte, len(q))
	for i, c := range q {
		b[i] = byte(c)
	}
	return b
}

func TestTieredHostValidation(t *testing.T) {
	if _, err := NewTieredHost(10, 4, 0); err == nil {
		t.Fatal("hot fraction 0 should be rejected")
	}
	if _, err := NewTieredHost(10, 4, 1.5); err == nil {
		t.Fatal("hot fraction >1 should be rejected")
	}
	if _, err := NewTieredHost(0, 4, 0.5); err == nil {
		t.Fatal("zero rows should be rejected")
	}
	h, err := NewTieredHost(10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.HotFraction() != 1 {
		t.Fatalf("hot fraction %v, want 1", h.HotFraction())
	}
}

// TestTieredTrainingWithReaders is the tier-move consistency test: a real
// EngineFrugal job on a tiered slab with the gate invariant checked every
// step, while concurrent readers scan and read rows the whole run. Run
// under -race this exercises promotion/demotion racing flush applies and
// reads; any gate violation fails the job, and tier moves must actually
// happen for the run to count.
func TestTieredTrainingWithReaders(t *testing.T) {
	const (
		rows = 400
		dim  = 8
	)
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(17, rows, 0.9), 64, 60)
	job, err := NewMicro(Config{
		Engine: EngineFrugal, NumGPUs: 2, Rows: rows, Dim: dim,
		CacheRatio: 0.1, LR: 0.1, Seed: 17, CheckConsistency: true,
		FlushThreads: 4, ColdTier: true, HotFraction: 0.03,
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	host := job.Host()
	if !host.Tiered() {
		t.Fatal("ColdTier job should allocate a tiered host")
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			row := make([]float32, dim)
			scores := make([]float32, rows)
			query := make([]float32, dim)
			query[r] = 1
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				host.ReadRow(uint64((i*7+r)%rows), row)
				if i%16 == 0 {
					host.ScoreRowsLocked(query, 0, scores)
				}
			}
		}(r)
	}
	res, err := job.Run()
	close(stop)
	readers.Wait()
	if err != nil {
		t.Fatal(err) // a gate violation surfaces here via CheckConsistency
	}
	if res.Steps != 60 {
		t.Fatalf("completed %d steps, want 60", res.Steps)
	}
	st := host.TierStats()
	if st.Promotions == 0 || st.Demotions == 0 {
		t.Fatalf("no tier movement under a zipf trace: %+v", st)
	}
	if st.HotRows <= 0 || st.HotRows > rows {
		t.Fatalf("hot rows %d out of range", st.HotRows)
	}
}

func TestColdTierConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 10, Dim: 4, HotFraction: 0.5},                 // HotFraction without ColdTier
		{Rows: 10, Dim: 4, ColdTier: true, HotFraction: 1.5}, // out of range
		{Rows: 10, Dim: 4, ColdTier: true, HotFraction: -1},
	}
	for i, cfg := range bad {
		if err := cfg.normalize(); err == nil {
			t.Fatalf("config %d should be invalid: %+v", i, cfg)
		}
	}
	good := Config{Rows: 10, Dim: 4, ColdTier: true}
	if err := good.normalize(); err != nil {
		t.Fatal(err)
	}
	if good.HotFraction != 0.1 {
		t.Fatalf("HotFraction default %v, want 0.1", good.HotFraction)
	}
}
