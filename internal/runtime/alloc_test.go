package runtime

import (
	"context"
	goruntime "runtime"
	"testing"

	"frugal/internal/data"
)

// allocTestBatch keeps the driven jobs small enough for AllocsPerRun's
// GOMAXPROCS(1) regime while still exercising repeats, cache pressure and
// pool cycling.
const allocTestBatch = 128

// newDrivenJob builds a 1-GPU micro job whose step path the tests drive by
// hand (bypassing the dispatcher goroutine). For gate-less engines every
// payload is pre-generated, so the measured loop exercises ONLY the step
// path: gate → gather → compute → commit → bookkeeping.
func newDrivenJob(t testing.TB, cfg Config, steps int64, prepump bool) *Job {
	t.Helper()
	cfg.NumGPUs = 1
	cfg.Rows = 4096
	cfg.Dim = 32
	cfg.CacheRatio = 0.5
	cfg.Seed = 11
	trace := data.NewSyntheticTrace(
		data.NewScrambledZipf(11, uint64(cfg.Rows), 0.9), allocTestBatch, steps)
	j, err := NewMicro(cfg, trace, steps)
	if err != nil {
		t.Fatal(err)
	}
	j.losses = make([]float32, steps)
	if prepump {
		for i := int64(0); i < steps; i++ {
			if _, ok := j.trace.Next(); !ok {
				t.Fatal("trace exhausted during pre-pump")
			}
		}
	}
	return j
}

// TestStepPathZeroAlloc pins the tentpole invariant: after warm-up, one
// training step of the synchronous engines performs ZERO heap allocations
// — the keyTable, the row pool and the pinned-slab gather leave nothing to
// allocate per step. Any regression here is a bug, not noise: the assert
// is exact.
func TestStepPathZeroAlloc(t *testing.T) {
	for name, cfg := range map[string]Config{
		"frugal-sync-sgd":     {Engine: EngineFrugalSync},
		"frugal-sync-adagrad": {Engine: EngineFrugalSync, Optimizer: OptAdagrad},
		"direct-sgd":          {Engine: EngineDirect},
		"direct-adagrad":      {Engine: EngineDirect, Optimizer: OptAdagrad},
	} {
		t.Run(name, func(t *testing.T) {
			const warmup, runs = 8, 20
			steps := int64(warmup + 1 + runs) // AllocsPerRun adds 1 untimed call
			j := newDrivenJob(t, cfg, steps, true)
			ws := j.newWorkerState(0)
			var step int64
			one := func() {
				j.step(ws, stepMsg{step: step, payload: j.trace.Take(step)})
				step++
			}
			for i := 0; i < warmup; i++ {
				one()
			}
			if got := testing.AllocsPerRun(runs, one); got != 0 {
				t.Fatalf("steady-state step allocates %v times, want 0", got)
			}
		})
	}
}

// TestStepPathBoundedAllocFrugal bounds the asynchronous engine's residual.
// EngineFrugal cannot be strictly zero-alloc per step: every CommitStep
// enqueues g-entries into the lock-free queue index, which allocates one
// immutable node per enqueue (safe memory reclamation for lock-free lists
// is deliberately out of scope — see DESIGN.md §5d), and this harness also
// generates the sample stream live (the prefetcher owns the trace, so it
// cannot be pre-pumped). The bound asserts the residual stays O(distinct
// keys), nowhere near the old per-key-buffer churn.
func TestStepPathBoundedAllocFrugal(t *testing.T) {
	const warmup, runs = 8, 20
	steps := int64(warmup + 1 + runs)
	cfg := Config{Engine: EngineFrugal, Lookahead: int(steps) + 1}
	j := newDrivenJob(t, cfg, steps, false)
	ws := j.newWorkerState(0)
	j.ctrl.Start()
	defer j.ctrl.Stop()
	one := func() {
		b, ok := j.ctrl.NextBatchCtx(context.Background())
		if !ok {
			t.Fatal("controller stopped early")
		}
		j.step(ws, stepMsg{step: b.Step, payload: j.trace.Take(b.Step)})
		// Let the flushers drain so pooled delta buffers return before the
		// next step draws from the pool.
		for j.ctrl.Queue().Len() > 0 {
			goruntime.Gosched()
		}
	}
	for i := 0; i < warmup; i++ {
		one()
	}
	got := testing.AllocsPerRun(runs, one)
	// ~1 queue node per distinct key (≤ batch) plus sample generation and
	// cold-tail g-entry creation; 3×batch is far above steady state and far
	// below the old regime (≈5×batch at this shape).
	if limit := float64(3 * allocTestBatch); got > limit {
		t.Fatalf("frugal step allocates %v times, want ≤ %v", got, limit)
	}
}

// TestPooledBufferPoisoning is the aliasing safety net for the row pool:
// it NaN-poisons every buffer the pool hands out (simulating a stale
// reader's worst case: the buffer's previous content is garbage) and
// asserts training results are bit-identical to an unpoisoned run. If any
// consumer read a pooled buffer it no longer owns — or assumed pooled
// buffers arrive zeroed — NaNs would propagate into the parameters.
func TestPooledBufferPoisoning(t *testing.T) {
	for _, engine := range []Engine{EngineFrugal, EngineFrugalSync, EngineDirect} {
		t.Run(string(engine), func(t *testing.T) {
			run := func(poison bool) []float32 {
				const steps = 40
				cfg := Config{Engine: engine, Optimizer: OptAdagrad}
				j := newDrivenJob(t, cfg, steps, false)
				j.rowPool.poison = poison
				if _, err := j.Run(); err != nil {
					t.Fatal(err)
				}
				out := make([]float32, 64*j.cfg.Dim)
				for k := uint64(0); k < 64; k++ {
					j.host.ReadRow(k, out[int(k)*j.cfg.Dim:(int(k)+1)*j.cfg.Dim])
				}
				return out
			}
			clean, poisoned := run(false), run(true)
			for i := range clean {
				if clean[i] != poisoned[i] {
					t.Fatalf("param %d differs under pool poisoning: %v vs %v",
						i, clean[i], poisoned[i])
				}
			}
		})
	}
}
