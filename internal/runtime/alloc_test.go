package runtime

import (
	"context"
	goruntime "runtime"
	"testing"

	"frugal/internal/data"
)

// allocTestBatch keeps the driven jobs small enough for AllocsPerRun's
// GOMAXPROCS(1) regime while still exercising repeats, cache pressure and
// pool cycling.
const allocTestBatch = 128

// newDrivenJob builds a 1-GPU micro job whose step path the tests drive by
// hand (bypassing the dispatcher goroutine). For gate-less engines every
// payload is pre-generated, so the measured loop exercises ONLY the step
// path: gate → gather → compute → commit → bookkeeping.
func newDrivenJob(t testing.TB, cfg Config, steps int64, prepump bool) *Job {
	t.Helper()
	cfg.NumGPUs = 1
	cfg.Rows = 4096
	cfg.Dim = 32
	cfg.CacheRatio = 0.5
	cfg.Seed = 11
	trace := data.NewSyntheticTrace(
		data.NewScrambledZipf(11, uint64(cfg.Rows), 0.9), allocTestBatch, steps)
	j, err := NewMicro(cfg, trace, steps)
	if err != nil {
		t.Fatal(err)
	}
	j.losses = make([]float32, steps)
	if prepump {
		for i := int64(0); i < steps; i++ {
			if _, ok := j.trace.Next(); !ok {
				t.Fatal("trace exhausted during pre-pump")
			}
		}
	}
	return j
}

// TestStepPathZeroAlloc pins the tentpole invariant: after warm-up, one
// training step of the synchronous engines performs ZERO heap allocations
// — the keyTable, the row pool and the pinned-slab gather leave nothing to
// allocate per step. Any regression here is a bug, not noise: the assert
// is exact.
func TestStepPathZeroAlloc(t *testing.T) {
	for name, cfg := range map[string]Config{
		"frugal-sync-sgd":     {Engine: EngineFrugalSync},
		"frugal-sync-adagrad": {Engine: EngineFrugalSync, Optimizer: OptAdagrad},
		"direct-sgd":          {Engine: EngineDirect},
		"direct-adagrad":      {Engine: EngineDirect, Optimizer: OptAdagrad},
	} {
		t.Run(name, func(t *testing.T) {
			const warmup, runs = 8, 20
			steps := int64(warmup + 1 + runs) // AllocsPerRun adds 1 untimed call
			j := newDrivenJob(t, cfg, steps, true)
			ws := j.newWorkerState(0)
			var step int64
			one := func() {
				j.step(ws, stepMsg{step: step, payload: j.trace.Take(step)})
				step++
			}
			for i := 0; i < warmup; i++ {
				one()
			}
			if got := testing.AllocsPerRun(runs, one); got != 0 {
				t.Fatalf("steady-state step allocates %v times, want 0", got)
			}
		})
	}
}

// TestStepPathZeroAllocPrefetch extends the zero-alloc invariant to the
// lookahead prefetcher: with prefetch on, the step path AND the concurrent
// fill stage together still perform zero steady-state heap allocations
// (AllocsPerRun counts global mallocs, so the prefetch goroutine's work is
// inside the measurement). The harness plays dispatch's role: it feeds
// each future batch's keys to the prefetcher before stepping, exactly one
// feed per steady-state step.
func TestStepPathZeroAllocPrefetch(t *testing.T) {
	for name, cfg := range map[string]Config{
		"frugal-sync-sgd-prefetch":     {Engine: EngineFrugalSync, Prefetch: true},
		"frugal-sync-adagrad-prefetch": {Engine: EngineFrugalSync, Optimizer: OptAdagrad, Prefetch: true},
	} {
		t.Run(name, func(t *testing.T) {
			// Warm-up must cycle through every ring slot once so the per-slot
			// keys/pinned slices reach steady-state capacity before measuring.
			const ringWarm, runs = 28, 20
			steps := int64(ringWarm + 1 + runs)
			j := newDrivenJob(t, cfg, steps, false)
			if rs := len(j.prefetchers[0].ring); ringWarm < rs+2 {
				t.Fatalf("warmup %d too short for ring size %d", ringWarm, rs)
			}
			keys := make([][]uint64, 0, steps)
			for i := int64(0); i < steps; i++ {
				ks, ok := j.trace.Next()
				if !ok {
					t.Fatal("trace exhausted during pre-pump")
				}
				keys = append(keys, ks)
			}
			j.startPrefetchers()
			defer j.stopPrefetchers()
			ws := j.newWorkerState(0)
			depth := int64(j.cfg.PrefetchDepth)
			var step, fed int64
			one := func() {
				for fed <= step+depth && fed < steps {
					j.feedPrefetch(fed, keys[fed])
					fed++
				}
				j.step(ws, stepMsg{step: step, payload: j.trace.Take(step)})
				step++
			}
			for i := 0; i < ringWarm; i++ {
				one()
			}
			if got := testing.AllocsPerRun(runs, one); got != 0 {
				t.Fatalf("steady-state prefetched step allocates %v times, want 0", got)
			}
		})
	}
}

// TestStepPathBoundedAllocFrugal bounds the asynchronous engine's residual.
// EngineFrugal cannot be strictly zero-alloc per step: the lock-free queue
// index claims immutable nodes from a chunked arena (amortized one chunk
// allocation per chunkNodes enqueues — nodes are never recycled, see
// DESIGN.md §5d), and this harness also generates the sample stream live
// (the P²F lookahead loop owns the trace, so it cannot be pre-pumped). The
// bound asserts the residual stays well below one allocation per batch key,
// nowhere near the old per-key-buffer churn.
func TestStepPathBoundedAllocFrugal(t *testing.T) {
	for _, prefetch := range []bool{false, true} {
		name := "demand"
		if prefetch {
			name = "prefetch"
		}
		t.Run(name, func(t *testing.T) {
			const warmup, runs = 40, 20
			steps := int64(warmup + 1 + runs)
			cfg := Config{Engine: EngineFrugal, Lookahead: int(steps) + 1,
				Prefetch: prefetch}
			j := newDrivenJob(t, cfg, steps, false)
			ws := j.newWorkerState(0)
			j.ctrl.Start()
			defer j.ctrl.Stop()
			if prefetch {
				// The P²F lookahead loop feeds the prefetcher via OnPrefetch;
				// only the fill stage needs starting (RunContext normally
				// does both).
				j.startPrefetchers()
				defer j.stopPrefetchers()
			}
			one := func() {
				b, ok := j.ctrl.NextBatchCtx(context.Background())
				if !ok {
					t.Fatal("controller stopped early")
				}
				j.step(ws, stepMsg{step: b.Step, payload: j.trace.Take(b.Step)})
				// Let the flushers drain so pooled delta buffers return before
				// the next step draws from the pool.
				for j.ctrl.Queue().Len() > 0 {
					goruntime.Gosched()
				}
			}
			for i := 0; i < warmup; i++ {
				one()
			}
			got := testing.AllocsPerRun(runs, one)
			// The flush-queue index claims nodes from a chunked arena, so the
			// residual is sample generation, cold-tail g-entry creation and
			// amortized arena chunks — well under one alloc per batch key.
			if limit := float64(allocTestBatch); got > limit {
				t.Fatalf("frugal step allocates %v times, want ≤ %v", got, limit)
			}
		})
	}
}

// TestPooledBufferPoisoning is the aliasing safety net for the row pool:
// it NaN-poisons every buffer the pool hands out (simulating a stale
// reader's worst case: the buffer's previous content is garbage) and
// asserts training results are bit-identical to an unpoisoned run. If any
// consumer read a pooled buffer it no longer owns — or assumed pooled
// buffers arrive zeroed — NaNs would propagate into the parameters.
func TestPooledBufferPoisoning(t *testing.T) {
	for _, engine := range []Engine{EngineFrugal, EngineFrugalSync, EngineDirect} {
		t.Run(string(engine), func(t *testing.T) {
			run := func(poison bool) []float32 {
				const steps = 40
				cfg := Config{Engine: engine, Optimizer: OptAdagrad}
				j := newDrivenJob(t, cfg, steps, false)
				j.rowPool.poison = poison
				if _, err := j.Run(); err != nil {
					t.Fatal(err)
				}
				out := make([]float32, 64*j.cfg.Dim)
				for k := uint64(0); k < 64; k++ {
					j.host.ReadRow(k, out[int(k)*j.cfg.Dim:(int(k)+1)*j.cfg.Dim])
				}
				return out
			}
			clean, poisoned := run(false), run(true)
			for i := range clean {
				if clean[i] != poisoned[i] {
					t.Fatalf("param %d differs under pool poisoning: %v vs %v",
						i, clean[i], poisoned[i])
				}
			}
		})
	}
}
