package runtime

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"frugal/internal/data"
	"frugal/internal/obs"
)

// obsMicroJob runs a multi-GPU micro job with observability attached and
// returns the job plus its final result.
func obsMicroJob(t *testing.T, engine Engine, steps int64) (*Job, Result) {
	t.Helper()
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(9, 400, 0.9), 48, steps)
	job, err := NewMicro(Config{
		Engine: engine, NumGPUs: 2, Rows: 400, Dim: 4,
		CacheRatio: 0.2, Seed: 9, FlushThreads: 4,
		CheckConsistency: engine != EngineAsync,
		Observer:         obs.New(obs.Options{Shards: 4, TraceCapacity: 1 << 14}),
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	return job, res
}

// TestSnapshotInvariantsFrugal checks the cross-metric invariants the
// Snapshot documentation promises, on the engine that exercises every
// instrumented subsystem (cache, gate, priority queue, flusher pool).
func TestSnapshotInvariantsFrugal(t *testing.T) {
	const steps = 30
	job, res := obsMicroJob(t, EngineFrugal, steps)
	s := job.Snapshot()

	if s.CacheLookups != s.CacheHits+s.CacheMisses {
		t.Fatalf("lookups %d != hits %d + misses %d", s.CacheLookups, s.CacheHits, s.CacheMisses)
	}
	if s.CacheStaleHits > s.CacheMisses {
		t.Fatalf("stale hits %d > misses %d", s.CacheStaleHits, s.CacheMisses)
	}
	if s.CacheEvictions > s.CacheInserts {
		t.Fatalf("evictions %d > inserts %d", s.CacheEvictions, s.CacheInserts)
	}
	// The obs counters must agree with the independent Result accounting
	// kept by the caches themselves.
	if s.CacheHits != res.CacheStats.Hits || s.CacheMisses != res.CacheStats.Misses {
		t.Fatalf("obs cache counters (%d/%d) disagree with Result (%d/%d)",
			s.CacheHits, s.CacheMisses, res.CacheStats.Hits, res.CacheStats.Misses)
	}

	if s.GatePasses != steps*2 {
		t.Fatalf("gate passes %d != steps×gpus %d", s.GatePasses, steps*2)
	}
	if s.GateBlocks > s.GatePasses {
		t.Fatalf("gate blocks %d > passes %d", s.GateBlocks, s.GatePasses)
	}
	if (s.GateStallTime > 0) != (s.GateBlocks > 0) {
		t.Fatalf("stall time %v inconsistent with %d blocks", s.GateStallTime, s.GateBlocks)
	}

	// After the epilogue drain every staged update has been applied.
	if s.FlushEnqueued == 0 {
		t.Fatal("EngineFrugal run staged no updates")
	}
	if s.FlushApplied != s.FlushEnqueued {
		t.Fatalf("applied %d != enqueued %d after drain", s.FlushApplied, s.FlushEnqueued)
	}
	if s.FlushApplied != res.Flushed {
		t.Fatalf("obs applied %d disagrees with Result.Flushed %d", s.FlushApplied, res.Flushed)
	}
	if s.DeferredEntries+s.UrgentEntries != s.FlushedEntries {
		t.Fatalf("deferred %d + urgent %d != entries %d", s.DeferredEntries, s.UrgentEntries, s.FlushedEntries)
	}
	if s.FlushLatency.Count != s.FlushedEntries {
		t.Fatalf("latency observations %d != flushed entries %d", s.FlushLatency.Count, s.FlushedEntries)
	}
	if s.FlushBacklog != 0 {
		t.Fatalf("backlog %d after drain", s.FlushBacklog)
	}

	if s.PQEnqueues == 0 || s.PQDequeues == 0 {
		t.Fatalf("priority queue saw no traffic: %+v", s)
	}
	if s.PQDequeues > s.PQEnqueues {
		t.Fatalf("pq dequeues %d > enqueues %d", s.PQDequeues, s.PQEnqueues)
	}

	if s.StepsCompleted != steps {
		t.Fatalf("steps completed %d != %d", s.StepsCompleted, steps)
	}
	if s.StepWall.Count != steps*2 {
		t.Fatalf("step wall observations %d != steps×gpus %d", s.StepWall.Count, steps*2)
	}
	if s.TraceEvents == 0 {
		t.Fatal("tracer saw no events")
	}
}

// TestSnapshotDirectEngine verifies the engine-shape of the metrics: the
// no-cache, no-flush engine must report zero P²F and cache traffic while
// still counting steps.
func TestSnapshotDirectEngine(t *testing.T) {
	const steps = 20
	job, _ := obsMicroJob(t, EngineDirect, steps)
	s := job.Snapshot()
	if s.CacheLookups != 0 || s.FlushEnqueued != 0 || s.FlushApplied != 0 ||
		s.GatePasses != 0 || s.PQEnqueues != 0 {
		t.Fatalf("direct engine should have no cache/flush/gate traffic: %+v", s)
	}
	if s.StepsCompleted != steps || s.StepWall.Count != steps*2 {
		t.Fatalf("direct engine step accounting wrong: %+v", s)
	}
}

// TestWriteTrace checks the JSONL dump end-to-end on a real run: every
// line parses, carries the schema fields, and uses known event names.
func TestWriteTrace(t *testing.T) {
	job, _ := obsMicroJob(t, EngineFrugal, 10)
	var buf bytes.Buffer
	if err := job.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{
		"gate_pass": true, "gate_block": true,
		"flush_enqueue": true, "flush_dequeue": true, "flush_apply": true,
		"cache_hit": true, "cache_miss": true, "cache_evict": true,
		"collective_start": true, "collective_end": true, "step_done": true,
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		var ev struct {
			Ns    int64  `json:"ns"`
			Type  string `json:"type"`
			Src   *int   `json:"src"`
			Step  *int64 `json:"step"`
			Key   *int64 `json:"key"`
			Value *int64 `json:"value"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v (%s)", lines, err, sc.Text())
		}
		if !known[ev.Type] {
			t.Fatalf("line %d: unknown event type %q", lines, ev.Type)
		}
		if ev.Src == nil || ev.Step == nil || ev.Key == nil || ev.Value == nil {
			t.Fatalf("line %d: missing schema field: %s", lines, sc.Text())
		}
	}
	if lines == 0 {
		t.Fatal("trace dump is empty")
	}
}

// TestWriteTraceRequiresObserver pins the error path for jobs built
// without observability.
func TestWriteTraceRequiresObserver(t *testing.T) {
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(1, 100, 0.9), 16, 5)
	job, err := NewMicro(Config{Engine: EngineDirect, Rows: 100, Dim: 4, Seed: 1}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = job.WriteTrace(&buf)
	if err == nil || !strings.Contains(err.Error(), "observability") {
		t.Fatalf("WriteTrace without observer: %v", err)
	}
	// Snapshot stays usable: it reports the zero value.
	if s := job.Snapshot(); s.StepsCompleted != 0 || s.CacheLookups != 0 {
		t.Fatalf("nil-observer snapshot not zero: %+v", s)
	}
}
