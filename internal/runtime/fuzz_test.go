package runtime

import (
	"bytes"
	"testing"
)

// FuzzCheckpointLoad: arbitrary bytes must never panic the loader; they
// either parse (only for a byte-exact valid checkpoint) or error.
func FuzzCheckpointLoad(f *testing.F) {
	h, _ := NewHost(4, 2)
	var valid bytes.Buffer
	if err := h.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:8])
	f.Fuzz(func(t *testing.T, raw []byte) {
		target, _ := NewHost(4, 2)
		_ = target.Load(bytes.NewReader(raw)) // must not panic
	})
}
