package runtime

import "frugal/internal/pq"

// RowStore is the slab surface the training step loop reads and writes.
// *Host is the canonical implementation (in-process host memory); an
// external implementation — e.g. an adapter over a sharded remote store —
// lets the same step loop train against a table that lives elsewhere, via
// Config.Slab.
//
// The contract matches *Host exactly:
//
//   - ReadRowDirect is the unlocked fast read, safe only while the gate
//     (or the step barriers) guarantees no concurrent writer for the key.
//   - ReadRowLocked takes the row's lock stripe; ReadRow additionally
//     returns the row's version counter.
//   - Version is monotone per key and bumps by one per applied update.
//   - OptState returns the row's optimizer accumulator (0 when the store
//     keeps none).
//   - ApplyDelta adds delta (and stateDelta to the accumulator) under the
//     row lock and bumps the version once; ApplyUpdates applies a batch to
//     one key under a single lock acquisition, bumping once per update.
//     Neither may retain the delta slices.
//   - WriteRetries counts transient host-write failures retried (0 for
//     stores without fault injection).
type RowStore interface {
	Rows() int64
	Dim() int
	ReadRow(key uint64, dst []float32) uint64
	ReadRowDirect(key uint64, dst []float32)
	ReadRowLocked(key uint64, dst []float32)
	Version(key uint64) uint64
	OptState(key uint64) float32
	ApplyDelta(key uint64, delta []float32, stateDelta float32)
	ApplyUpdates(key uint64, updates []pq.Update)
	WriteRetries() int64
}

// *Host is the canonical RowStore.
var _ RowStore = (*Host)(nil)
