package runtime

import (
	"bytes"
	"testing"

	"frugal/internal/data"
)

func TestCheckpointRoundtrip(t *testing.T) {
	h, err := NewHost(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(k uint64, row []float32) {
		for i := range row {
			row[i] = float32(k)*10 + float32(i)
		}
	})
	h.EnableOptimizerState()
	h.ApplyDelta(7, make([]float32, 8), 3.5)

	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}

	h2, _ := NewHost(100, 8)
	if err := h2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		a, b := h.Snapshot(k), h2.Snapshot(k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d[%d]: %v != %v", k, i, a[i], b[i])
			}
		}
	}
	if h2.OptState(7) != 3.5 {
		t.Fatalf("optimizer state lost: %v", h2.OptState(7))
	}
}

func TestCheckpointNoState(t *testing.T) {
	h, _ := NewHost(10, 2)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h2, _ := NewHost(10, 2)
	if err := h2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if h2.state != nil {
		t.Fatal("state slab should stay disabled")
	}
}

func TestCheckpointValidation(t *testing.T) {
	h, _ := NewHost(10, 2)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Shape mismatch.
	wrong, _ := NewHost(10, 4)
	if err := wrong.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shape mismatch must error")
	}
	// Bad magic.
	bad := append([]byte{}, buf.Bytes()...)
	bad[0] ^= 0xFF
	if err := h.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must error")
	}
	// Truncated.
	if err := h.Load(bytes.NewReader(buf.Bytes()[:16])); err == nil {
		t.Fatal("truncated checkpoint must error")
	}
}

// TestCheckpointResume: train, checkpoint, resume into a fresh job, and
// confirm training continues from the saved parameters (warm-start loss ≈
// the pre-checkpoint loss, well below a cold start).
func TestCheckpointResume(t *testing.T) {
	mkJob := func(seedOffset int64) *Job {
		// lr stays small: a hot key can repeat within one batch, and the
		// per-occurrence gradients sum (effective lr × count must stay < 1
		// for the quadratic micro task to contract).
		trace := data.NewSyntheticTrace(data.NewScrambledZipf(23, 400, 0.9), 64, 60)
		job, err := NewMicro(Config{
			Engine: EngineFrugal, NumGPUs: 2, Rows: 400, Dim: 4,
			LR: 0.05, Seed: 23 + seedOffset, CheckConsistency: true,
		}, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	first := mkJob(0)
	res1, err := first.Run()
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := first.Host().Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	resumed := mkJob(100) // different init seed — must be overwritten by Load
	if err := resumed.Host().Load(&ckpt); err != nil {
		t.Fatal(err)
	}
	res2, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	coldFirst := res1.Losses[0]
	warmFirst := res2.Losses[0]
	if warmFirst > coldFirst*0.8 {
		t.Fatalf("warm start (%v) should be well below cold start (%v)", warmFirst, coldFirst)
	}
}
