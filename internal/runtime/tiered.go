package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"frugal/internal/obs"
	"frugal/internal/tensor"
)

// The frequency-aware tiered slab (ROADMAP: frequency-aware tiering /
// MixCache-style capacity multiplication). The Zipf skew of embedding
// access means most rows are touched rarely: the hot head earns
// full-precision float32 storage in a small slot pool, while the cold
// tail lives as per-row affine int8 (see internal/tensor/quant.go) at a
// quarter of the bytes. Reads dequantize; writes requantize; promotion
// and demotion ride the P²F flush boundary (Host.TierMaintain, called
// by the flusher sink), driven by decayed per-row access frequencies.
//
// Consistency: a row's storage tier is invisible to the gate. Tier
// moves copy content between representations without bumping the row
// version — versions still count applied updates and only ever grow —
// so the cache-freshness inequality (cached version ≥ flushed version ⇒
// fresh) holds across moves. The price of mobility is that direct
// (lock-free) reads are no longer safe when tiering is on: a demotion
// rewrites a row's authoritative bytes, so ReadRowDirect degrades to a
// locked read on a tiered host (the gate's no-pending-writes guarantee
// covers flusher writes, not tier moves).
const (
	// promoteFreq is the decayed access frequency at which a cold row
	// becomes a promotion candidate.
	promoteFreq = 3
	// tierSweepLen bounds the clock sweep that picks a demotion victim:
	// at most this many hot slots are examined per promotion.
	tierSweepLen = 16
	// freqCap saturates the per-row frequency counter.
	freqCap = 255
	// freqShiftCap bounds the lazy aging shift: after 8 unseen epochs a
	// counter has decayed to zero anyway.
	freqShiftCap = 8
)

// coldTier is the quantized half of a tiered Host. Locking discipline:
//   - tier[key] is atomic: readers load it under the key's stripe lock
//     (or with the slab quiescent); it is only stored while holding BOTH
//     mu and the key's stripe lock.
//   - q/qscale/qzero[key] and the hot slot a row owns are guarded by the
//     key's stripe lock, exactly like the untiered slab's row bytes.
//   - The slot free list, clock hand and owner map are guarded by mu.
//     Lock order is mu → stripe; no path acquires mu while holding a
//     stripe lock, and no two stripe locks are ever held together.
type coldTier struct {
	dim    int
	hotCap int

	tier   []atomic.Int32 // 0 = cold; n > 0 = hot, in slot n−1
	q      []int8         // rows×dim int8 codes (authoritative when cold)
	qscale []float32      // per-row quantization scale
	qzero  []float32      // per-row zero point

	hotSlab []float32 // hotCap×dim full-precision rows

	mu    sync.Mutex
	free  []int32  // unowned hot slots
	clock int      // demotion sweep hand over [0, hotCap)
	owner []uint64 // slot → owning row (valid when not on free)

	// freq packs a lazily-aged access counter per row:
	// (epoch byte << 8) | count. Bumps decay the stored count by the
	// epoch delta before incrementing, so frequencies fade without a
	// global sweep. Best-effort CAS: a lost race loses one count, which
	// a heuristic tolerates.
	freq     []atomic.Uint32
	epoch    atomic.Uint32
	accesses atomic.Int64
	// agePeriod is how many bumps advance the aging epoch (≈ one
	// turnover of the row space).
	agePeriod int64

	// scratch is a lazily-allocated per-stripe dequantization row for
	// read-modify-write on cold rows; index and contents are guarded by
	// that stripe's lock. mscratch is the maintain path's row, guarded
	// by mu.
	scratch  [lockStripes][]float32
	mscratch []float32

	promotions, demotions, declined atomic.Int64
	coldWrites, dequantReads        atomic.Int64

	onMove func(key uint64) // tier-move hook (ckpt dirtiness); set before training
	obs    *obs.TierObs
}

// NewTieredHost allocates a host whose cold tail is quantized: the first
// hotFraction of the ID space starts hot (full-precision slots) and the
// rest cold, with promotion/demotion adapting the split to the access
// distribution once training runs. hotFraction must be in (0, 1].
func NewTieredHost(rows int64, dim int, hotFraction float64) (*Host, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("runtime: invalid host shape rows=%d dim=%d", rows, dim)
	}
	if hotFraction <= 0 || hotFraction > 1 {
		return nil, fmt.Errorf("runtime: hot fraction must be in (0, 1], got %g", hotFraction)
	}
	hotCap := int(float64(rows) * hotFraction)
	if hotCap < 1 {
		hotCap = 1
	}
	if int64(hotCap) > rows {
		hotCap = int(rows)
	}
	return newTieredHost(rows, dim, hotCap)
}

// newTieredHost builds a tiered host with an exact hot-slot capacity —
// the checkpoint loader uses it to reproduce a saved host's split
// without hotFraction rounding drift.
func newTieredHost(rows int64, dim int, hotCap int) (*Host, error) {
	const maxSlab = 1 << 33 // same sanity bound as NewHost, in logical rows
	if rows*int64(dim) > maxSlab {
		return nil, fmt.Errorf("runtime: host slab %d floats exceeds bound; use a Scaled() spec", rows*int64(dim))
	}
	if hotCap < 1 || int64(hotCap) > rows {
		return nil, fmt.Errorf("runtime: hot capacity %d outside [1, %d]", hotCap, rows)
	}
	t := &coldTier{
		dim:       dim,
		hotCap:    hotCap,
		tier:      make([]atomic.Int32, rows),
		q:         make([]int8, rows*int64(dim)),
		qscale:    make([]float32, rows),
		qzero:     make([]float32, rows),
		hotSlab:   make([]float32, int64(hotCap)*int64(dim)),
		owner:     make([]uint64, hotCap),
		freq:      make([]atomic.Uint32, rows),
		agePeriod: rows,
		mscratch:  make([]float32, dim),
	}
	// The head of the ID space starts hot, slot i ← row i.
	for i := 0; i < hotCap; i++ {
		t.tier[i].Store(int32(i) + 1)
		t.owner[i] = uint64(i)
	}
	return &Host{
		rows:     rows,
		dim:      dim,
		tier:     t,
		versions: make([]atomic.Uint64, rows),
		locks:    make([]sync.Mutex, lockStripes),
	}, nil
}

// Tiered reports whether the cold tier is enabled.
func (h *Host) Tiered() bool { return h.tier != nil }

// HotFraction returns the hot slot pool's share of the row space (0 on
// an untiered host).
func (h *Host) HotFraction() float64 {
	if h.tier == nil {
		return 0
	}
	return float64(h.tier.hotCap) / float64(h.rows)
}

// SetTierMoveHook installs a callback invoked with the key of every row
// whose tier (and therefore authoritative byte representation) changes.
// The delta-checkpoint writer registers its dirty-mark here: a demotion
// requantizes a row without bumping its version, and without the hook
// the final log sweep would miss the new bytes and reconstruct a stale
// image. Must be set before training starts; called with the tier mutex
// and the row's stripe lock held, so it must stay cheap and never
// re-enter the Host.
func (h *Host) SetTierMoveHook(fn func(key uint64)) {
	if h.tier != nil {
		h.tier.onMove = fn
	}
}

// SetTierObserver attaches the tier counters' observability sink (nil
// detaches). Call before traffic.
func (h *Host) SetTierObserver(o *obs.TierObs) {
	if h.tier != nil {
		h.tier.obs = o
	}
}

// TierStats is a point-in-time snapshot of tier movement and cold-path
// traffic.
type TierStats struct {
	HotRows      int64 `json:"hotRows"`      // rows currently full-precision
	Promotions   int64 `json:"promotions"`   // cold → hot moves
	Demotions    int64 `json:"demotions"`    // hot → cold moves (requantized)
	Declined     int64 `json:"declined"`     // promotions dropped: no colder victim
	ColdWrites   int64 `json:"coldWrites"`   // read-modify-requantize applies
	DequantReads int64 `json:"dequantReads"` // row reads served by dequantization
}

// TierStats snapshots the tier counters (zero value on untiered hosts).
func (h *Host) TierStats() TierStats {
	t := h.tier
	if t == nil {
		return TierStats{}
	}
	t.mu.Lock()
	hot := int64(t.hotCap - len(t.free))
	t.mu.Unlock()
	return TierStats{
		HotRows:      hot,
		Promotions:   t.promotions.Load(),
		Demotions:    t.demotions.Load(),
		Declined:     t.declined.Load(),
		ColdWrites:   t.coldWrites.Load(),
		DequantReads: t.dequantReads.Load(),
	}
}

// resetCold empties the hot pool: every row cold, every slot free (in
// ascending pop order). Checkpoint-load only — the caller guarantees
// quiescence, and immediately reassigns slots from the file's tier tags.
func (t *coldTier) resetCold() {
	for i := range t.tier {
		t.tier[i].Store(0)
	}
	t.free = t.free[:0]
	for s := t.hotCap - 1; s >= 0; s-- {
		t.free = append(t.free, int32(s))
	}
	t.clock = 0
}

// qrow returns the key's code row.
func (t *coldTier) qrow(key uint64) []int8 {
	i := int64(key) * int64(t.dim)
	return t.q[i : i+int64(t.dim)]
}

// slotRow returns a hot slot's storage.
func (t *coldTier) slotRow(slot int32) []float32 {
	i := int64(slot) * int64(t.dim)
	return t.hotSlab[i : i+int64(t.dim)]
}

// stripeScratch returns the stripe's dequantization row, allocating it
// on first use. Caller holds the stripe lock.
func (t *coldTier) stripeScratch(key uint64) []float32 {
	s := t.scratch[key%lockStripes]
	if s == nil {
		s = make([]float32, t.dim)
		t.scratch[key%lockStripes] = s
	}
	return s
}

// readRow copies the row into dst, dequantizing when cold. Caller holds
// the stripe lock or guarantees quiescence.
func (t *coldTier) readRow(key uint64, dst []float32) {
	if slot := t.tier[key].Load(); slot > 0 {
		tensor.Copy(dst, t.slotRow(slot-1))
		return
	}
	tensor.DequantizeRow(t.qrow(key), t.qscale[key], t.qzero[key], dst)
	t.dequantReads.Add(1)
	t.obs.DequantRead(key)
}

// writeRow replaces the row's content in its current tier, requantizing
// when cold. Caller holds the stripe lock (or is single-threaded init).
func (t *coldTier) writeRow(key uint64, src []float32) {
	if slot := t.tier[key].Load(); slot > 0 {
		tensor.Copy(t.slotRow(slot-1), src)
		return
	}
	t.qscale[key], t.qzero[key] = tensor.QuantizeRow(src, t.qrow(key))
}

// score returns query · row without materializing cold rows. Caller
// holds the stripe lock or guarantees quiescence.
func (t *coldTier) score(query []float32, key uint64) float32 {
	if slot := t.tier[key].Load(); slot > 0 {
		return tensor.Dot(query, t.slotRow(slot-1))
	}
	return tensor.DotQ8(query, t.qrow(key), t.qscale[key], t.qzero[key])
}

// bump records an access of weight w and returns the row's decayed
// frequency. Lazy aging: the stored count is right-shifted by the
// number of epochs since it was last touched, then incremented.
func (t *coldTier) bump(key uint64, w uint32) uint32 {
	if t.accesses.Add(1)%t.agePeriod == 0 {
		t.epoch.Add(1)
	}
	e := t.epoch.Load() & 0xff
	old := t.freq[key].Load()
	f := decayCount(old, e)
	if f += w; f > freqCap {
		f = freqCap
	}
	// Best-effort: a lost race drops one bump, which the heuristic
	// tolerates; never loop under write contention.
	t.freq[key].CompareAndSwap(old, e<<8|f)
	return f
}

// decayedFreq reads the row's frequency as of the current epoch without
// recording an access.
func (t *coldTier) decayedFreq(key uint64) uint32 {
	return decayCount(t.freq[key].Load(), t.epoch.Load()&0xff)
}

// decayCount ages a packed (epoch<<8 | count) word to epoch e.
func decayCount(packed, e uint32) uint32 {
	shift := (e - packed>>8) & 0xff
	if shift > freqShiftCap {
		shift = freqShiftCap
	}
	return (packed & 0xff) >> shift
}

// TierMaintain records a flush-boundary access to key and, when the
// row's decayed frequency crosses the promotion threshold, moves it
// into the hot pool — demoting the coldest clock-sweep victim to make
// room. deferred marks a flush with no reader waiting inside the
// lookahead window (the P²F ∞-slot), which counts half: urgency is
// evidence of heat. No-op on untiered hosts. Never called with a stripe
// lock held.
func (h *Host) TierMaintain(key uint64, deferred bool) {
	t := h.tier
	if t == nil {
		return
	}
	w := uint32(2)
	if deferred {
		w = 1
	}
	f := t.bump(key, w)
	if f < promoteFreq || t.tier[key].Load() > 0 {
		return
	}
	t.promote(h, key, f)
}

// promote moves key into the hot pool if a slot is free or a strictly
// colder victim exists. Takes mu, then — one at a time — the victim's
// and the key's stripe locks.
func (t *coldTier) promote(h *Host, key uint64, f uint32) {
	t.mu.Lock()
	if t.tier[key].Load() > 0 { // raced with another maintainer
		t.mu.Unlock()
		return
	}
	var slot int32 = -1
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else if victim := t.sweepVictim(f); victim >= 0 {
		t.demoteLocked(h, victim)
		slot = victim
	}
	if slot < 0 {
		t.mu.Unlock()
		t.declined.Add(1)
		t.obs.TierDeclined(key)
		return
	}
	l := h.lock(key)
	l.Lock()
	tensor.DequantizeRow(t.qrow(key), t.qscale[key], t.qzero[key], t.slotRow(slot))
	t.tier[key].Store(slot + 1)
	if t.onMove != nil {
		t.onMove(key)
	}
	l.Unlock()
	t.owner[slot] = key
	t.mu.Unlock()
	t.promotions.Add(1)
	t.obs.TierPromotion(key)
}

// sweepVictim advances the clock hand over the hot pool and returns the
// slot of the coldest row seen whose decayed frequency is strictly
// below f, or -1. Caller holds mu; every examined slot is owned (the
// free list was empty).
func (t *coldTier) sweepVictim(f uint32) int32 {
	n := t.hotCap
	if n == 0 {
		return -1
	}
	sweep := tierSweepLen
	if sweep > n {
		sweep = n
	}
	best, bestFreq := int32(-1), f
	for i := 0; i < sweep; i++ {
		slot := t.clock
		t.clock = (t.clock + 1) % n
		if vf := t.decayedFreq(t.owner[slot]); vf < bestFreq {
			best, bestFreq = int32(slot), vf
		}
	}
	return best
}

// demoteLocked requantizes the slot's owner back into the cold tier and
// releases the slot. Caller holds mu; takes the victim's stripe lock.
func (t *coldTier) demoteLocked(h *Host, slot int32) {
	vk := t.owner[slot]
	l := h.lock(vk)
	l.Lock()
	t.qscale[vk], t.qzero[vk] = tensor.QuantizeRow(t.slotRow(slot), t.qrow(vk))
	t.tier[vk].Store(0)
	if t.onMove != nil {
		t.onMove(vk)
	}
	l.Unlock()
	t.demotions.Add(1)
	t.obs.TierDemotion(vk)
}

// mutableRow returns a float32 view the caller may accumulate into:
// the slot storage itself for a hot row, or the stripe scratch holding
// the dequantized image for a cold one. The caller applies its deltas
// and then calls commitRow — the "dequantize on read, requantize on
// flush" write path. Caller holds the stripe lock throughout.
func (t *coldTier) mutableRow(key uint64) (row []float32, cold bool) {
	if slot := t.tier[key].Load(); slot > 0 {
		return t.slotRow(slot - 1), false
	}
	s := t.stripeScratch(key)
	tensor.DequantizeRow(t.qrow(key), t.qscale[key], t.qzero[key], s)
	return s, true
}

// commitRow completes a mutableRow write: cold rows requantize back
// into their codes; hot rows were updated in place. Caller still holds
// the stripe lock.
func (t *coldTier) commitRow(key uint64, row []float32, cold bool) {
	if !cold {
		return
	}
	t.qscale[key], t.qzero[key] = tensor.QuantizeRow(row, t.qrow(key))
	t.coldWrites.Add(1)
	t.obs.ColdWrite(key)
}

// RowImage is a tier-tagged row capture: the full-precision image for a
// hot (or untiered) row, or the verbatim (codes, scale, zero) triple
// for a cold one. The delta-checkpoint log stores and restores cold
// rows through it without a dequantize→requantize round trip, which is
// what makes reconstruction bit-identical.
type RowImage struct {
	Version uint64
	State   float32
	Cold    bool
	Scale   float32
	Zero    float32
	Row     []float32 // hot payload; always len Dim() (dequantized view when Cold)
	Q       []int8    // cold payload; len Dim() when Cold, unused otherwise
}

// CaptureRow snapshots the row into img in one critical section. Both
// payload slices must be pre-sized to Dim(); Row is always filled (cold
// rows are dequantized into it for consumers that need float32), and Q,
// Scale, Zero carry the verbatim cold representation when Cold.
func (h *Host) CaptureRow(key uint64, img *RowImage) {
	l := h.lock(key)
	l.Lock()
	img.Version = h.versions[key].Load()
	img.State = 0
	if h.state != nil {
		img.State = h.state[key]
	}
	t := h.tier
	if t == nil {
		img.Cold = false
		tensor.Copy(img.Row, h.row(key))
		l.Unlock()
		return
	}
	if slot := t.tier[key].Load(); slot > 0 {
		img.Cold = false
		tensor.Copy(img.Row, t.slotRow(slot-1))
		l.Unlock()
		return
	}
	img.Cold = true
	img.Scale, img.Zero = t.qscale[key], t.qzero[key]
	copy(img.Q, t.qrow(key))
	tensor.DequantizeRow(img.Q, img.Scale, img.Zero, img.Row)
	l.Unlock()
}

// RestoreRow is the tier-aware SetRow: it installs a captured image at
// its version (idempotent, last-writer-wins like SetRow) in the image's
// tier. A cold image lands verbatim — codes, scale and zero untouched —
// so replaying a log reproduces the primary's bytes exactly; restoring
// it onto an untiered host dequantizes into the slab instead. A tier
// mismatch (hot image onto a currently-cold row or vice versa) moves
// the row, evicting a clock victim when the hot pool is full.
func (h *Host) RestoreRow(key uint64, img *RowImage) {
	t := h.tier
	if t == nil {
		h.SetRow(key, img.Row, img.Version, img.State)
		return
	}
	if h.versions[key].Load() > img.Version {
		return // a newer image already landed; don't move the tier either
	}
	if !img.Cold {
		// Hot image: make sure the row owns a slot, then overwrite. The
		// saturated frequency makes restored-hot rows sticky: replaying a
		// log samples each row's tier at a slightly different instant, so
		// the pool can transiently hold more hot-tagged rows than slots —
		// the sweep must then evict a stale resident (frequency 0 in a
		// replay shadow), never a row the log already placed.
		t.freq[key].Store((t.epoch.Load()&0xff)<<8 | freqCap)
		if t.tier[key].Load() == 0 {
			t.forcePromote(h, key)
		}
		h.SetRow(key, img.Row, img.Version, img.State)
		return
	}
	// Cold image: demote first if needed, then install verbatim.
	t.mu.Lock()
	if slot := t.tier[key].Load(); slot > 0 {
		t.demoteLocked(h, slot-1)
		t.free = append(t.free, slot-1)
	}
	t.mu.Unlock()
	l := h.lock(key)
	l.Lock()
	if h.versions[key].Load() <= img.Version {
		copy(t.qrow(key), img.Q)
		t.qscale[key], t.qzero[key] = img.Scale, img.Zero
		if h.state != nil {
			h.state[key] = img.State
		}
		h.versions[key].Store(img.Version)
	}
	l.Unlock()
}

// forcePromote gives key a hot slot unconditionally (replica replay of
// a hot-tagged record), demoting the coldest swept victim when the pool
// is full.
func (t *coldTier) forcePromote(h *Host, key uint64) {
	t.mu.Lock()
	if t.tier[key].Load() > 0 {
		t.mu.Unlock()
		return
	}
	var slot int32 = -1
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else if slot = t.sweepVictim(^uint32(0)); slot >= 0 {
		t.demoteLocked(h, slot)
	}
	if slot < 0 { // hotCap == 0 cannot happen (≥ 1), defensive
		t.mu.Unlock()
		return
	}
	l := h.lock(key)
	l.Lock()
	tensor.DequantizeRow(t.qrow(key), t.qscale[key], t.qzero[key], t.slotRow(slot))
	t.tier[key].Store(slot + 1)
	if t.onMove != nil {
		t.onMove(key)
	}
	l.Unlock()
	t.owner[slot] = key
	t.mu.Unlock()
	t.promotions.Add(1)
	t.obs.TierPromotion(key)
}
