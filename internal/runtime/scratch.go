package runtime

import (
	"math"
	"sync"

	"frugal/internal/pq"
)

// This file holds the zero-allocation machinery of the steady-state step
// path (DESIGN.md §5d): keyTable, the generation-stamped open-addressed
// scratch table that replaces the per-step Go maps in workerState, and
// rowPool, the free list that recycles per-key delta rows across steps.

// ktSlot is one keyTable entry: everything the step path needs to know
// about one distinct key of the current batch.
type ktSlot struct {
	key uint64
	gen uint32
	// ver is the host version observed at gather time; applyLocal uses it
	// to set the owner cache's freshness expectation after the commit.
	ver uint64
	// state is the per-key optimizer accumulator at gather time — the gate
	// guarantees it is stable while the step reads, and reading it here
	// (not at commit time) keeps the optimizer deterministic under
	// concurrent flushes of other workers' partials.
	state float32
	// row is the gathered row for this key, set at its first occurrence;
	// repeat occurrences alias it instead of re-reading.
	row []float32
	// delta is the pooled per-key delta row, attached at the key's first
	// commit occurrence and nil outside the commit phase.
	delta []float32
}

// keyTable is an open-addressed, uint64-keyed scratch table reused across
// steps. Clearing is O(1): reset bumps the generation, and a slot whose
// stamp is stale counts as free. Within one step, claimed slots never
// revert to free, so probe chains stay consistent; the table grows (and
// rehashes live entries) only during the gather phase, which claims all of
// a step's keys — the commit phase only looks up existing entries, so slot
// pointers taken during commit remain stable.
type keyTable struct {
	slots []ktSlot
	mask  uint64
	gen   uint32
	used  int
}

const ktMinSize = 1024 // power of two; comfortably holds a 512-key batch

func newKeyTable() *keyTable {
	return &keyTable{slots: make([]ktSlot, ktMinSize), mask: ktMinSize - 1}
}

// reset starts a new step: every slot becomes logically free.
func (t *keyTable) reset() {
	t.gen++
	t.used = 0
	if t.gen == 0 { // uint32 wrap: clear stamps once per 4B steps
		for i := range t.slots {
			t.slots[i].gen = 0
		}
		t.gen = 1
	}
}

// mix is the splitmix64 finalizer — full-avalanche so sequential key
// ranges spread across the table.
func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// get returns the slot for key, claiming a fresh one (fresh=true) when the
// key has not been seen this step. Claimed slots are valid until the next
// reset or grow; grow can only happen inside get itself, so callers may
// use the returned pointer until their next get call — and throughout the
// commit phase, which never claims.
func (t *keyTable) get(key uint64) (s *ktSlot, fresh bool) {
	if t.used >= len(t.slots)-len(t.slots)/4 {
		t.grow()
	}
	i := mix(key) & t.mask
	for {
		s = &t.slots[i]
		if s.gen == t.gen {
			if s.key == key {
				return s, false
			}
			i = (i + 1) & t.mask
			continue
		}
		// Free (stale generation): claim it.
		s.key = key
		s.gen = t.gen
		s.ver = 0
		s.state = 0
		s.row = nil
		s.delta = nil
		t.used++
		return s, true
	}
}

// grow doubles the table and rehashes the current generation's entries.
// Amortised: after warm-up the table is sized for the batch and grow never
// runs again, keeping the steady state allocation-free.
func (t *keyTable) grow() {
	old := t.slots
	t.slots = make([]ktSlot, len(old)*2)
	t.mask = uint64(len(t.slots)) - 1
	for i := range old {
		s := &old[i]
		if s.gen != t.gen {
			continue
		}
		j := mix(s.key) & t.mask
		for t.slots[j].gen == t.gen {
			j = (j + 1) & t.mask
		}
		t.slots[j] = *s
	}
}

// rowPool recycles dim-sized float32 rows. The step path draws per-key
// delta buffers from it at commit time; ownership follows the write path —
// the synchronous engines return buffers as soon as the host apply lands,
// while EngineFrugal's buffers travel through the P²F write set and come
// back from the flush sink after ApplyUpdates (the gate guarantees no
// reader needs them afterwards). Buffers are handed out dirty; consumers
// must fully overwrite them (tensor.CopyClear does). Safe for concurrent
// use: trainers Get while flusher threads Put.
type rowPool struct {
	mu   sync.Mutex
	dim  int
	free [][]float32
	// poison, when set (tests only, before the job runs), fills every
	// buffer handed out with NaN — any consumer that wrongly assumes
	// pooled buffers arrive zeroed poisons its parameters loudly instead
	// of training on silent garbage.
	poison bool
}

func newRowPool(dim int) *rowPool { return &rowPool{dim: dim} }

func (p *rowPool) Get() []float32 {
	p.mu.Lock()
	n := len(p.free)
	var buf []float32
	if n > 0 {
		buf = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if buf == nil {
		buf = make([]float32, p.dim)
	}
	if p.poison {
		nan := float32(math.NaN())
		for i := range buf {
			buf[i] = nan
		}
	}
	return buf
}

// Put returns one buffer to the pool. Foreign-sized buffers are dropped.
func (p *rowPool) Put(buf []float32) {
	if len(buf) != p.dim {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, buf)
	p.mu.Unlock()
}

// PutUpdates returns every delta buffer of a flushed write set under one
// lock acquisition (the flush-sink path).
func (p *rowPool) PutUpdates(updates []pq.Update) {
	p.mu.Lock()
	for i := range updates {
		if d := updates[i].Delta; len(d) == p.dim {
			p.free = append(p.free, d)
		}
	}
	p.mu.Unlock()
}
