package runtime

import (
	"context"
	"math"
	"time"

	"frugal/internal/comm"
	"frugal/internal/fault"
	"frugal/internal/obs"
	"frugal/internal/p2f"
	"frugal/internal/tensor"
)

// stepMsg is one step's work delivered to a worker.
type stepMsg struct {
	step    int64
	payload stepPayload
}

// dispatch pulls steps from the sample queue (through the controller for
// EngineFrugal, so prefetch and read-set registration stay L steps ahead)
// and broadcasts them to the workers. It is the job's single cancellation
// point: a step is either broadcast to every worker or to none, so the
// barriers stay balanced and workers simply drain their channels and exit
// once dispatch stops.
func (j *Job) dispatch(ctx context.Context, chans []chan stepMsg) {
	defer func() {
		for _, ch := range chans {
			close(ch)
		}
	}()
	for i := int64(0); i < j.steps; i++ {
		if ctx.Err() != nil {
			return
		}
		var step int64
		if j.ctrl != nil {
			b, ok := j.ctrl.NextBatchCtx(ctx)
			if !ok {
				return
			}
			step = b.Step
		} else {
			if _, ok := j.trace.Next(); !ok {
				return
			}
			step = i
		}
		payload := j.trace.Take(step)
		for _, ch := range chans {
			ch <- stepMsg{step: step, payload: payload}
		}
	}
}

// workerState is the per-GPU scratch reused across steps.
type workerState struct {
	id        int
	rows      [][]float32 // gathered row views, aligned with shard keys
	grads     [][]float32 // per-occurrence gradient buffers
	scratch   [][]float32 // backing buffers for host-read rows
	deltas    map[uint64][]float32
	gatherVer map[uint64]uint64 // owned keys' host version at gather time
	// gatherState is the per-key optimizer accumulator at gather time —
	// the gate guarantees it is stable while the step reads, and reading
	// it here (not at commit time) keeps the optimizer deterministic
	// under concurrent flushes of other workers' partials.
	gatherState map[uint64]float32
}

func (j *Job) newWorkerState(id int) *workerState {
	return &workerState{
		id:          id,
		deltas:      make(map[uint64][]float32),
		gatherVer:   make(map[uint64]uint64),
		gatherState: make(map[uint64]float32),
	}
}

func (ws *workerState) ensure(n, dim int) {
	for len(ws.rows) < n {
		ws.rows = append(ws.rows, nil)
		ws.grads = append(ws.grads, make([]float32, dim))
		ws.scratch = append(ws.scratch, make([]float32, dim))
	}
	for i := 0; i < n; i++ {
		tensor.Zero(ws.grads[i])
	}
	for k := range ws.gatherVer {
		delete(ws.gatherVer, k)
	}
	for k := range ws.gatherState {
		delete(ws.gatherState, k)
	}
}

// workerLoop is one trainer process (one GPU).
func (j *Job) workerLoop(w int, ch chan stepMsg) {
	ws := j.newWorkerState(w)
	for msg := range ch {
		j.step(ws, msg)
	}
}

// step runs one synchronous training step for one worker:
// gate → gather → read barrier → compute → commit → advance.
func (j *Job) step(ws *workerState, msg stepMsg) {
	shard := msg.payload.work[ws.id]
	n := len(shard.keys)
	ws.ensure(n, j.cfg.Dim)

	timed := j.stepObs != nil || j.cfg.OnStep != nil
	var stepStart time.Time
	if timed {
		stepStart = time.Now()
	}

	// 0. Injected straggler delay (fault plan): the trainer goes slow
	// before the gate, where a real GPU would hit preemption or a network
	// hiccup. The step barriers make every other trainer absorb it —
	// that's the synchronous-training cost the fault model exercises.
	if d := j.cfg.Faults.TrainerDelay(ws.id, msg.step); d > 0 {
		j.faultObs.Injected(ws.id, msg.step, int64(fault.KindTrainerDelay))
		time.Sleep(d)
	}

	// 1. Consistency gate (Frugal) — invariant (2) of §3.3.
	var stalled time.Duration
	if j.ctrl != nil {
		stalled = j.ctrl.WaitForStep(msg.step)
		j.gateObs.Wait(ws.id, msg.step, stalled)
		if j.cfg.CheckConsistency {
			if err := j.ctrl.CheckInvariant(msg.step, shard.keys); err != nil {
				// A violation is a bug in the P²F machinery, not a user
				// error; failing loudly (and unwinding the whole job)
				// beats training on stale parameters.
				panic(err)
			}
		}
	}

	// 2. Gather embedding rows.
	j.gather(ws, shard.keys)

	// 3. Read barrier: nobody commits step s until everyone has read it
	// (the synchronous-training contract CommitStep documents). The async
	// engine deliberately skips it — that is its inconsistency. In the
	// trace this is the collective phase of the step (the spot the
	// allgather/allreduce occupies on real hardware).
	if j.cfg.Engine != EngineAsync {
		j.tracer.Emit(obs.EvCollectiveStart, ws.id, msg.step, 0, 0)
		j.barrier.Wait()
		j.tracer.Emit(obs.EvCollectiveEnd, ws.id, msg.step, 0, 0)
	}

	// 4. Compute forward/backward on the gathered rows.
	loss := shard.compute(ws.rows[:n], ws.grads[:n])
	j.addLoss(msg.step, loss)

	// 5. Commit: aggregate per-key deltas and push them down the
	// engine-specific write path.
	j.commit(ws, msg.step, shard.keys)

	// 6. Step barrier for the synchronous engines (the Frugal gate already
	// serialises steps through the committed-step watermark).
	if j.ctrl == nil && j.cfg.Engine != EngineAsync {
		j.barrier.Wait()
	}

	var wall time.Duration
	if timed {
		wall = time.Since(stepStart)
	}
	j.finishStep(ws.id, msg.step, stalled, wall)
}

// gather fills ws.rows[i] for every shard key occurrence.
func (j *Job) gather(ws *workerState, keys []uint64) {
	for i, k := range keys {
		if j.cfg.Optimizer == OptAdagrad {
			if _, seen := ws.gatherState[k]; !seen {
				ws.gatherState[k] = j.host.OptState(k)
			}
		}
		switch j.cfg.Engine {
		case EngineDirect, EngineAsync:
			j.host.ReadRowLocked(k, ws.scratch[i])
			ws.rows[i] = ws.scratch[i]
		case EngineFrugalSync:
			j.gatherCached(ws, i, k, true)
		case EngineFrugal:
			j.gatherCached(ws, i, k, false)
		}
	}
}

// gatherCached reads one key through the sharded cache hierarchy: owned
// keys go through the local cache (version-checked against host), foreign
// keys are read straight from host memory (the UVA path of §3.1, safe
// without locks under the gate's no-pending-writes guarantee). locked
// selects the locked host read used by the write-through engine.
func (j *Job) gatherCached(ws *workerState, i int, k uint64, locked bool) {
	read := j.host.ReadRow
	if locked {
		read = j.host.ReadRowLocked
	}
	if comm.Owner(k, j.cfg.NumGPUs) != ws.id {
		read(k, ws.scratch[i])
		ws.rows[i] = ws.scratch[i]
		return
	}
	c := j.caches[ws.id]
	ver := j.host.Version(k)
	if _, seen := ws.gatherVer[k]; !seen {
		ws.gatherVer[k] = ver
	}
	// Rows are always copied out of the cache slab (the "transfer into GPU
	// registers"): a later insert in the same gather may evict the slot
	// and reuse its storage for a different key, so views must not alias.
	if row, hit := c.Lookup(k, ver); hit {
		tensor.Copy(ws.scratch[i], row)
		ws.rows[i] = ws.scratch[i]
		return
	}
	dst, _, _ := c.Insert(k, ver)
	read(k, dst)
	tensor.Copy(ws.scratch[i], dst)
	ws.rows[i] = ws.scratch[i]
}

// commit aggregates the per-occurrence gradients into one per-key
// gradient, runs the optimizer to produce a row delta (and, for Adagrad,
// an accumulator increment), and routes both down the engine's write
// path. The optimizer reads the gather-time host accumulator — stable
// under the gate's no-pending-writes guarantee — so every engine, at any
// GPU count, computes identical deltas for identical traces.
func (j *Job) commit(ws *workerState, step int64, keys []uint64) {
	for k := range ws.deltas {
		delete(ws.deltas, k)
	}
	for i, k := range keys {
		d, ok := ws.deltas[k]
		if !ok {
			d = make([]float32, j.cfg.Dim)
			ws.deltas[k] = d
		}
		tensor.Axpy(1, ws.grads[i], d) // raw gradient sum per key
	}

	switch j.cfg.Engine {
	case EngineDirect, EngineAsync:
		for k, g := range ws.deltas {
			d, dG := j.optimize(ws, k, g)
			j.host.ApplyDelta(k, d, dG)
		}
	case EngineFrugalSync:
		// Write-through (Frugal-Sync of §4.1): apply synchronously to
		// host; the owner's cached copy absorbs the delta in place.
		for k, g := range ws.deltas {
			d, dG := j.optimize(ws, k, g)
			j.applyLocal(ws, k, d)
			j.host.ApplyDelta(k, d, dG)
		}
	case EngineFrugal:
		upd := make([]p2f.KeyDelta, 0, len(ws.deltas))
		for k, g := range ws.deltas {
			d, dG := j.optimize(ws, k, g)
			j.applyLocal(ws, k, d)
			upd = append(upd, p2f.KeyDelta{Key: k, Delta: d, StateDelta: dG})
		}
		j.flObs.Enqueued(ws.id, step, len(upd))
		j.ctrl.CommitStep(step, upd)
	}
}

// optimize turns a per-key raw gradient into the row delta to apply and
// the optimizer-state increment, mutating the gradient buffer in place.
// Adagrad operates on each worker's partial gradient (squared partials are
// not additive), so results are deterministic per GPU count but differ
// across GPU counts — the standard data-parallel Adagrad semantics.
func (j *Job) optimize(ws *workerState, key uint64, g []float32) (delta []float32, stateDelta float32) {
	switch j.cfg.Optimizer {
	case OptAdagrad:
		var sq float32
		for _, v := range g {
			sq += v * v
		}
		sq /= float32(len(g)) // row-wise: mean squared gradient
		denom := float32(math.Sqrt(float64(ws.gatherState[key]+sq))) + j.cfg.AdagradEps
		tensor.Scale(-j.cfg.LR/denom, g)
		return g, sq
	default: // OptSGD
		tensor.Scale(-j.cfg.LR, g)
		return g, 0
	}
}

// applyLocal folds a delta into the worker's cached copy of an owned key
// (no-op for foreign or uncached keys) and sets its version expectation to
// gatherVersion+1: the cached copy is exactly as fresh as the host row
// will be after this worker's own delta lands — and provably staler
// whenever any other GPU's partial gradient for the same row lands too,
// in which case the next Lookup refreshes from (gate-protected) host
// memory. DESIGN.md §5 records this versioned-cache completion of the
// paper's design.
func (j *Job) applyLocal(ws *workerState, k uint64, d []float32) {
	if comm.Owner(k, j.cfg.NumGPUs) != ws.id {
		return
	}
	row, hit := j.caches[ws.id].Lookup(k, 0) // version-agnostic fetch
	if !hit {
		return
	}
	tensor.Axpy(1, d, row)
	j.caches[ws.id].Bump(k, ws.gatherVer[k]+1)
}
