package runtime

import (
	"context"
	"math"
	"time"

	"frugal/internal/comm"
	"frugal/internal/fault"
	"frugal/internal/obs"
	"frugal/internal/p2f"
	"frugal/internal/tensor"
)

// stepMsg is one step's work delivered to a worker.
type stepMsg struct {
	step    int64
	payload stepPayload
}

// dispatch pulls steps from the sample queue (through the controller for
// EngineFrugal, so prefetch and read-set registration stay L steps ahead)
// and broadcasts them to the workers. It is the job's single cancellation
// point: a step is either broadcast to every worker or to none, so the
// barriers stay balanced and workers simply drain their channels and exit
// once dispatch stops.
func (j *Job) dispatch(ctx context.Context, chans []chan stepMsg) {
	defer func() {
		for _, ch := range chans {
			close(ch)
		}
	}()
	// Controller-less engines with prefetch on (EngineFrugalSync) have no
	// P²F prefetch goroutine to feed the lookahead stage, so dispatch reads
	// the trace ahead itself: before handing out step i it has pulled steps
	// through i+depth, feeding each key set to the prefetchers. PayloadTrace
	// retains payloads until Take, so the read-ahead is free.
	readAhead := int64(0)
	if j.ctrl == nil && j.prefetchers != nil {
		readAhead = int64(j.cfg.PrefetchDepth)
	}
	primed := int64(0) // steps pulled from the trace so far
	for i := int64(0); i < j.steps; i++ {
		if ctx.Err() != nil {
			return
		}
		var step int64
		if j.ctrl != nil {
			b, ok := j.ctrl.NextBatchCtx(ctx)
			if !ok {
				return
			}
			step = b.Step
		} else {
			target := i + 1 + readAhead
			if target > j.steps {
				target = j.steps
			}
			for primed < target {
				keys, ok := j.trace.Next()
				if !ok {
					break
				}
				if readAhead > 0 {
					j.feedPrefetch(primed, keys)
				}
				primed++
			}
			if i >= primed {
				return // trace exhausted before this step
			}
			step = i
		}
		payload := j.trace.Take(step)
		for _, ch := range chans {
			ch <- stepMsg{step: step, payload: payload}
		}
	}
}

// workerState is the per-GPU scratch reused across steps. After a few
// warm-up steps every buffer here has reached its steady-state size and
// the step path stops allocating (the alloc_test.go regression tests pin
// this; DESIGN.md §5d records the ownership rules).
type workerState struct {
	id      int
	rows    [][]float32 // gathered row views, aligned with shard keys
	grads   [][]float32 // per-occurrence gradient buffers, zero outside compute→commit
	scratch [][]float32 // backing buffers for host-read rows
	// kt holds all per-key step state (gather version, optimizer
	// accumulator, gathered row, accumulated delta), replacing the three
	// per-step maps the hot path used to churn through.
	kt *keyTable
	// dirty lists the distinct keys of the current commit in first-
	// occurrence order. Slot pointers are stable throughout commit because
	// only the gather phase can grow the table.
	dirty []*ktSlot
	// upd is the reusable CommitStep batch (EngineFrugal); the controller
	// does not retain the slice, only the delta buffers inside it.
	upd []p2f.KeyDelta
}

func (j *Job) newWorkerState(id int) *workerState {
	return &workerState{id: id, kt: newKeyTable()}
}

// ensure sizes the per-occurrence buffers and opens a fresh keyTable
// generation. Gradient buffers are NOT zeroed here: they are allocated
// zeroed, and commit's fused CopyClear/AccumClear returns them to zero
// after consuming them, so they are always zero outside the
// compute→commit window — the O(batch·dim) per-step wipe the old code
// paid is gone.
func (ws *workerState) ensure(n, dim int) {
	for len(ws.rows) < n {
		ws.rows = append(ws.rows, nil)
		ws.grads = append(ws.grads, make([]float32, dim))
		ws.scratch = append(ws.scratch, make([]float32, dim))
	}
	ws.kt.reset()
}

// workerLoop is one trainer process (one GPU).
func (j *Job) workerLoop(w int, ch chan stepMsg) {
	ws := j.newWorkerState(w)
	for msg := range ch {
		j.step(ws, msg)
	}
}

// step runs one synchronous training step for one worker:
// gate → gather → read barrier → compute → commit → advance.
func (j *Job) step(ws *workerState, msg stepMsg) {
	shard := msg.payload.work[ws.id]
	n := len(shard.keys)
	ws.ensure(n, j.cfg.Dim)

	timed := j.stepObs != nil || j.cfg.OnStep != nil
	var stepStart time.Time
	if timed {
		stepStart = time.Now()
	}

	// 0. Injected straggler delay (fault plan): the trainer goes slow
	// before the gate, where a real GPU would hit preemption or a network
	// hiccup. The step barriers make every other trainer absorb it —
	// that's the synchronous-training cost the fault model exercises.
	if d := j.cfg.Faults.TrainerDelay(ws.id, msg.step); d > 0 {
		j.faultObs.Injected(ws.id, msg.step, int64(fault.KindTrainerDelay))
		time.Sleep(d)
	}

	// 1. Consistency gate (Frugal) — invariant (2) of §3.3.
	var stalled time.Duration
	if j.ctrl != nil {
		stalled = j.ctrl.WaitForStep(msg.step)
		j.gateObs.Wait(ws.id, msg.step, stalled)
		if j.cfg.CheckConsistency {
			if err := j.ctrl.CheckInvariant(msg.step, shard.keys); err != nil {
				// A violation is a bug in the P²F machinery, not a user
				// error; failing loudly (and unwinding the whole job)
				// beats training on stale parameters.
				panic(err)
			}
		}
	}

	// 2. Gather embedding rows. With prefetch on, first wait for the fill
	// pass covering this batch (it overlapped with the previous step's
	// compute, so this wait is normally already satisfied), then take the
	// cache guard: the prefetcher's fill stage and the gather phase share
	// the single-threaded cache directory.
	var pf *prefetcher
	if j.prefetchers != nil {
		pf = j.prefetchers[ws.id]
		pf.waitFor(msg.step)
		pf.mu.Lock()
	}
	j.gather(ws, shard.keys)
	if pf != nil {
		pf.mu.Unlock()
	}

	// 3. Read barrier: nobody commits step s until everyone has read it
	// (the synchronous-training contract CommitStep documents). The async
	// engine deliberately skips it — that is its inconsistency. In the
	// trace this is the collective phase of the step (the spot the
	// allgather/allreduce occupies on real hardware).
	if j.cfg.Engine != EngineAsync {
		j.tracer.Emit(obs.EvCollectiveStart, ws.id, msg.step, 0, 0)
		j.barrier.Wait()
		j.tracer.Emit(obs.EvCollectiveEnd, ws.id, msg.step, 0, 0)
	}

	// 4. Compute forward/backward on the gathered rows.
	loss := shard.compute(ws.rows[:n], ws.grads[:n])
	j.addLoss(msg.step, loss)

	// 5. Commit: aggregate per-key deltas and push them down the
	// engine-specific write path. Afterwards the batch retires from the
	// lookahead window: its window pins are released and the prefetcher may
	// advance one more batch.
	j.commit(ws, msg.step, shard.keys)
	if pf != nil {
		pf.retire(msg.step)
	}

	// 6. Step barrier for the synchronous engines (the Frugal gate already
	// serialises steps through the committed-step watermark).
	if j.ctrl == nil && j.cfg.Engine != EngineAsync {
		j.barrier.Wait()
	}

	var wall time.Duration
	if timed {
		wall = time.Since(stepStart)
	}
	j.finishStep(ws.id, msg.step, stalled, wall)
}

// gather fills ws.rows[i] for every shard key occurrence. Each distinct
// key is resolved once through its keyTable slot; repeat occurrences alias
// the first occurrence's row. This is safe because the step barriers
// keep host rows stable for the whole gather phase (commits of the
// previous step land before it, commits of this step after it), so every
// occurrence of a key reads the same bytes by construction.
func (j *Job) gather(ws *workerState, keys []uint64) {
	if j.caches != nil {
		// New pinning epoch: rows the cache hands out this step stay valid
		// until the next step even if later gathers fill the same set.
		j.caches[ws.id].BeginEpoch()
	}
	adagrad := j.cfg.Optimizer == OptAdagrad
	for i, k := range keys {
		s, fresh := ws.kt.get(k)
		if !fresh {
			ws.rows[i] = s.row
			continue
		}
		if adagrad {
			s.state = j.slab.OptState(k)
		}
		switch j.cfg.Engine {
		case EngineDirect, EngineAsync:
			j.slab.ReadRowLocked(k, ws.scratch[i])
			s.row = ws.scratch[i]
		case EngineFrugalSync:
			j.gatherCached(ws, s, i, k, true)
		case EngineFrugal:
			j.gatherCached(ws, s, i, k, false)
		}
		ws.rows[i] = s.row
	}
}

// gatherCached reads one key through the sharded cache hierarchy: owned
// keys go through the local cache (version-checked against host), foreign
// keys are read straight from host memory (the UVA path of §3.1, safe
// without locks under the gate's no-pending-writes guarantee). locked
// selects the locked host read used by the write-through engine.
//
// Cache rows are NOT copied out: the epoch pin taken by the hit (or fill)
// keeps the slot's storage untouched for the rest of the step, so the
// compute phase reads the slab directly — a hit costs zero copies and a
// miss exactly one (host → slab). Only when every way of the set is
// pinned by this step's earlier keys does the access fall back to the
// worker's private scratch row.
func (j *Job) gatherCached(ws *workerState, s *ktSlot, i int, k uint64, locked bool) {
	if comm.Owner(k, j.cfg.NumGPUs) != ws.id {
		j.readRow(k, ws.scratch[i], locked)
		s.row = ws.scratch[i]
		return
	}
	c := j.caches[ws.id]
	ver := j.slab.Version(k)
	s.ver = ver
	if row, hit := c.Lookup(k, ver); hit {
		s.row = row
		return
	}
	if dst, _, _ := c.Insert(k, ver); dst != nil {
		j.readRow(k, dst, locked)
		s.row = dst
		return
	}
	// Whole set pinned by this step's gathers: bypass the cache.
	j.readRow(k, ws.scratch[i], locked)
	s.row = ws.scratch[i]
}

// readRow is the gather read: direct (unlocked, gate-protected) by
// default, locked for the write-through engine. Explicit branches rather
// than a method value — bound methods of an interface-typed slab would
// allocate a closure per call in the 0-alloc step path.
func (j *Job) readRow(k uint64, dst []float32, locked bool) {
	if locked {
		j.slab.ReadRowLocked(k, dst)
	} else {
		j.slab.ReadRowDirect(k, dst)
	}
}

// commit aggregates the per-occurrence gradients into one per-key
// gradient, runs the optimizer to produce a row delta (and, for Adagrad,
// an accumulator increment), and routes both down the engine's write
// path. The optimizer reads the gather-time host accumulator — stable
// under the gate's no-pending-writes guarantee — so every engine, at any
// GPU count, computes identical deltas for identical traces.
func (j *Job) commit(ws *workerState, step int64, keys []uint64) {
	// Phase 1: fold per-occurrence gradients into one pooled delta row per
	// distinct key. The fused kernels zero each gradient buffer as they
	// consume it, restoring the grads-are-zero-between-steps invariant
	// without a separate wipe. Pooled buffers arrive dirty; CopyClear
	// fully overwrites them.
	ws.dirty = ws.dirty[:0]
	for i, k := range keys {
		s, _ := ws.kt.get(k) // claimed during gather; never fresh here
		if s.delta == nil {
			s.delta = j.rowPool.Get()
			tensor.CopyClear(s.delta, ws.grads[i])
			ws.dirty = append(ws.dirty, s)
		} else {
			tensor.AccumClear(ws.grads[i], s.delta)
		}
	}

	// Phase 2: optimize and route down the engine's write path, in
	// deterministic first-occurrence order (the old map iteration was
	// random; per-key results are order-independent either way).
	switch j.cfg.Engine {
	case EngineDirect, EngineAsync:
		for _, s := range ws.dirty {
			d, dG := j.optimize(s)
			j.slab.ApplyDelta(s.key, d, dG)
			j.rowPool.Put(s.delta)
			s.delta = nil
		}
	case EngineFrugalSync, EngineFrugal:
		// applyLocal walks the cache directory, so with prefetch on the
		// whole write-back loop runs under the worker's cache guard (the
		// fill stage holds the same lock; see prefetch.go).
		var pf *prefetcher
		if j.prefetchers != nil {
			pf = j.prefetchers[ws.id]
			pf.mu.Lock()
		}
		if j.cfg.Engine == EngineFrugalSync {
			// Write-through (Frugal-Sync of §4.1): apply synchronously to
			// host; the owner's cached copy absorbs the delta in place.
			for _, s := range ws.dirty {
				d, dG := j.optimize(s)
				j.applyLocal(ws, s.key, d, s.ver)
				j.slab.ApplyDelta(s.key, d, dG)
				j.rowPool.Put(s.delta)
				s.delta = nil
			}
			if pf != nil {
				pf.mu.Unlock()
			}
			return
		}
		ws.upd = ws.upd[:0]
		for _, s := range ws.dirty {
			d, dG := j.optimize(s)
			j.applyLocal(ws, s.key, d, s.ver)
			ws.upd = append(ws.upd, p2f.KeyDelta{Key: s.key, Delta: d, StateDelta: dG})
			// Ownership of the delta buffer moves to the P²F write set;
			// the flush sink pools it back after the host apply.
			s.delta = nil
		}
		if pf != nil {
			// CommitStep can block on queue work; release the cache guard
			// first so the fill stage keeps overlapping.
			pf.mu.Unlock()
		}
		j.flObs.Enqueued(ws.id, step, len(ws.upd))
		j.ctrl.CommitStep(step, ws.upd)
	}
}

// optimize turns a per-key raw gradient (accumulated in s.delta) into the
// row delta to apply and the optimizer-state increment, mutating the
// buffer in place. Adagrad operates on each worker's partial gradient
// (squared partials are not additive), so results are deterministic per
// GPU count but differ across GPU counts — the standard data-parallel
// Adagrad semantics.
func (j *Job) optimize(s *ktSlot) (delta []float32, stateDelta float32) {
	g := s.delta
	switch j.cfg.Optimizer {
	case OptAdagrad:
		var sq float32
		for _, v := range g {
			sq += v * v
		}
		sq /= float32(len(g)) // row-wise: mean squared gradient
		denom := float32(math.Sqrt(float64(s.state+sq))) + j.cfg.AdagradEps
		tensor.Scale(-j.cfg.LR/denom, g)
		return g, sq
	default: // OptSGD
		tensor.Scale(-j.cfg.LR, g)
		return g, 0
	}
}

// applyLocal folds a delta into the worker's cached copy of an owned key
// (no-op for foreign or uncached keys) and sets its version expectation to
// gatherVer+1: the cached copy is exactly as fresh as the host row
// will be after this worker's own delta lands — and provably staler
// whenever any other GPU's partial gradient for the same row lands too,
// in which case the next Lookup refreshes from (gate-protected) host
// memory. DESIGN.md §5 records this versioned-cache completion of the
// paper's design.
func (j *Job) applyLocal(ws *workerState, k uint64, d []float32, gatherVer uint64) {
	if comm.Owner(k, j.cfg.NumGPUs) != ws.id {
		return
	}
	row, hit := j.caches[ws.id].Lookup(k, 0) // version-agnostic fetch
	if !hit {
		return
	}
	tensor.Axpy(1, d, row)
	j.caches[ws.id].Bump(k, gatherVer+1)
}
