package runtime

import (
	"context"
	"errors"
	stdruntime "runtime"
	"testing"
	"time"

	"frugal/internal/data"
)

// waitGoroutines waits for the goroutine count to return to the pre-run
// level, tolerating the runtime's background workers a short settling
// time. Fails the test if goroutines leak.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := stdruntime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:stdruntime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before run, %d after\n%s", before, n, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertCanceled checks the error contract of RunContext: the returned
// error must satisfy both errors.Is(err, context.Canceled) and
// errors.As(err, **ErrCanceled).
func assertCanceled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("RunContext with canceled ctx returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var ce *ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As(err, *ErrCanceled) = false for %v", err)
	}
	if ce.Cause != context.Canceled {
		t.Fatalf("ErrCanceled.Cause = %v", ce.Cause)
	}
}

// TestRunContextAlreadyCanceled is the acceptance check: a 10k-step job
// handed an already-canceled context must return well under a second,
// before any training goroutine starts, with no goroutine left behind.
func TestRunContextAlreadyCanceled(t *testing.T) {
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(3, 500, 0.9), 64, 10_000)
	job, err := NewMicro(Config{
		Engine: EngineFrugal, NumGPUs: 2, Rows: 500, Dim: 4,
		CacheRatio: 0.2, Seed: 3, FlushThreads: 4,
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := stdruntime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := job.RunContext(ctx)
	if took := time.Since(start); took > time.Second {
		t.Fatalf("already-canceled RunContext took %v", took)
	}
	assertCanceled(t, err)
	if res.Steps != 0 || len(res.Losses) != 0 {
		t.Fatalf("already-canceled run reported progress: %+v", res)
	}
	waitGoroutines(t, before)
}

// TestRunContextCancelMidRun cancels each engine a few steps into a long
// job (via the OnStep callback, so the cancellation point is
// deterministic) and verifies the partial-result contract: the returned
// prefix of steps is consistent, the error is typed, and no trainer,
// dispatcher, prefetcher or flusher goroutine is left behind — in
// particular the gate and the step barriers must not deadlock.
func TestRunContextCancelMidRun(t *testing.T) {
	const total = 2000
	for _, engine := range []Engine{EngineFrugal, EngineFrugalSync, EngineDirect, EngineAsync} {
		engine := engine
		t.Run(string(engine), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			trace := data.NewSyntheticTrace(data.NewScrambledZipf(5, 500, 0.9), 32, total)
			job, err := NewMicro(Config{
				Engine: engine, NumGPUs: 2, Rows: 500, Dim: 4,
				CacheRatio: 0.2, Seed: 5, FlushThreads: 4,
				CheckConsistency: true,
				OnStep: func(s StepStats) {
					if s.Step == 5 {
						cancel()
					}
				},
			}, trace, 0)
			if err != nil {
				t.Fatal(err)
			}
			before := stdruntime.NumGoroutine()
			res, err := job.RunContext(ctx)
			assertCanceled(t, err)
			if res.Steps <= 0 || res.Steps >= total {
				t.Fatalf("partial result should cover (0, %d) steps, got %d", total, res.Steps)
			}
			if int64(len(res.Losses)) != res.Steps {
				t.Fatalf("Losses length %d != Steps %d", len(res.Losses), res.Steps)
			}
			for i, l := range res.Losses {
				if l == 0 {
					t.Fatalf("completed step %d has zero loss — prefix not fully committed", i)
				}
			}
			waitGoroutines(t, before)
		})
	}
}

// TestRunContextDeadline covers the DeadlineExceeded flavour of the same
// contract on the engine with the most background machinery.
func TestRunContextDeadline(t *testing.T) {
	trace := data.NewSyntheticTrace(data.NewScrambledZipf(7, 500, 0.9), 32, 100_000)
	job, err := NewMicro(Config{
		Engine: EngineFrugal, NumGPUs: 2, Rows: 500, Dim: 4,
		CacheRatio: 0.2, Seed: 7, FlushThreads: 4,
	}, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := stdruntime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := job.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	var ce *ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("want *ErrCanceled, got %T", err)
	}
	if res.Steps >= 100_000 {
		t.Fatalf("job ran to completion despite deadline: %d steps", res.Steps)
	}
	waitGoroutines(t, before)
}
