package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
)

// MetricsHandler renders the value produced by fn as `{"<name>": <json>}`
// — the expvar /debug/vars shape without expvar's process-global registry,
// which panics on a duplicate Publish (two jobs in one process, or a test
// running the binary twice). frugal-train and frugal-serve mount this on
// their muxes; fn is typically a Snapshot method and is evaluated on every
// request, so the page is always live.
func MetricsHandler(name string, fn func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{%q:", name)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fn()); err != nil {
			// Headers are gone; all we can do is not emit half a document.
			return
		}
		fmt.Fprintln(w, "}")
	})
}

// ServeMetrics serves MetricsHandler(name, fn) at GET /debug/vars on addr
// in a background goroutine — the `-metrics-addr` endpoint both CLIs
// share. Listen errors are reported to stderr; the process keeps running
// (a broken metrics port must not kill a training run).
func ServeMetrics(addr, name string, fn func() any) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", MetricsHandler(name, fn))
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "metrics endpoint:", err)
		}
	}()
}
