package obs

import "time"

// ServeObs observes the online serving read path (internal/serve): query
// counts, consistency outcomes, and client-visible latency. It is a
// standalone surface rather than part of Observer — a serving engine can
// outlive (or exist without) a training job, so its metrics are not folded
// into the job Snapshot. Like every other sub-observer, a nil *ServeObs is
// a valid no-op sink.
type ServeObs struct {
	lookups   Counter
	topks     Counter
	rejected  Counter // bounded reads refused for exceeding the staleness bound
	refreshed Counter // reads satisfied by force-flushing the pending write set
	shed      Counter // requests refused by admission control (overload)
	canceled  Counter // requests abandoned on context cancellation/deadline
	lookupLat Histogram
	topkLat   Histogram
}

// NewServeObs builds a ServeObs with n counter shards (use the expected
// concurrent client count).
func NewServeObs(n int) *ServeObs {
	return &ServeObs{
		lookups: newCounter(n), topks: newCounter(n),
		rejected: newCounter(n), refreshed: newCounter(n),
		shed: newCounter(n), canceled: newCounter(n),
		lookupLat: newHistogram(DurationBuckets),
		topkLat:   newHistogram(DurationBuckets),
	}
}

// Lookup records one completed single-row lookup.
func (s *ServeObs) Lookup(client int, took time.Duration) {
	if s == nil {
		return
	}
	s.lookups.Add(client, 1)
	s.lookupLat.Observe(int64(took))
}

// TopK records one completed top-K similarity query.
func (s *ServeObs) TopK(client int, took time.Duration) {
	if s == nil {
		return
	}
	s.topks.Add(client, 1)
	s.topkLat.Observe(int64(took))
}

// Rejected records a bounded read refused because the row's flush lag
// exceeded the staleness bound.
func (s *ServeObs) Rejected(client int) {
	if s == nil {
		return
	}
	s.rejected.Add(client, 1)
}

// Refreshed records a read that force-flushed the row's pending g-entry
// to meet its consistency level (the `fresh` path, or a bounded refresh).
func (s *ServeObs) Refreshed(client int) {
	if s == nil {
		return
	}
	s.refreshed.Add(client, 1)
}

// Shed records a request refused by admission control: the engine was at
// its inflight capacity and the bounded admission wait expired (or the
// wait queue itself was full). Shed requests answer 429 with Retry-After;
// a rising shed counter is the overload signal.
func (s *ServeObs) Shed(client int) {
	if s == nil {
		return
	}
	s.shed.Add(client, 1)
}

// Canceled records a request abandoned because its context was canceled
// or its deadline expired — during the admission wait or between top-K
// scan chunks.
func (s *ServeObs) Canceled(client int) {
	if s == nil {
		return
	}
	s.canceled.Add(client, 1)
}

// ServeSnapshot is a point-in-time copy of a ServeObs.
type ServeSnapshot struct {
	Lookups       int64        `json:"lookups"`
	TopKs         int64        `json:"topks"`
	Rejected      int64        `json:"rejected"`
	Refreshed     int64        `json:"refreshed"`
	Shed          int64        `json:"shed"`
	Canceled      int64        `json:"canceled"`
	LookupLatency HistSnapshot `json:"lookupLatency"`
	TopKLatency   HistSnapshot `json:"topkLatency"`
}

// Snapshot sums the counters; a nil ServeObs returns the zero snapshot.
func (s *ServeObs) Snapshot() ServeSnapshot {
	if s == nil {
		return ServeSnapshot{}
	}
	return ServeSnapshot{
		Lookups:       s.lookups.Total(),
		TopKs:         s.topks.Total(),
		Rejected:      s.rejected.Total(),
		Refreshed:     s.refreshed.Total(),
		Shed:          s.shed.Total(),
		Canceled:      s.canceled.Total(),
		LookupLatency: s.lookupLat.snapshot(),
		TopKLatency:   s.topkLat.snapshot(),
	}
}
