package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClockTracer returns a small tracer whose clock ticks 100ns per
// event, so dumps are deterministic.
func fixedClockTracer(capacity int) *Tracer {
	t := NewTracer(capacity)
	var ticks int64
	t.clock = func() int64 {
		ticks += 100
		return ticks
	}
	return t
}

// TestTraceGolden pins the JSONL trace schema: one event of every type,
// dumped and compared byte-for-byte against testdata/trace.golden.jsonl.
// Offline timeline tooling parses this format; changing it is a breaking
// change that must update the golden file deliberately (-update).
func TestTraceGolden(t *testing.T) {
	tr := fixedClockTracer(1024)
	tr.Emit(EvGatePass, 0, 5, 0, 0)
	tr.Emit(EvGateBlock, 1, 6, 0, 1500)
	tr.Emit(EvFlushEnqueue, 0, 5, 0, 32)
	tr.Emit(EvFlushDequeue, 2, -1, 42, 3)
	tr.Emit(EvFlushApply, 2, -1, 42, 2100)
	tr.Emit(EvCacheHit, 0, -1, 17, 0)
	tr.Emit(EvCacheMiss, 1, -1, 99, 0)
	tr.Emit(EvCacheEvict, 1, -1, 23, 0)
	tr.Emit(EvCollectiveStart, 3, 7, 0, 0)
	tr.Emit(EvCollectiveEnd, 3, 7, 0, 0)
	tr.Emit(EvStepDone, 0, 5, 0, 480000)

	var buf bytes.Buffer
	if err := tr.DumpJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace schema drifted from golden file\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTracerWrap verifies the ring keeps the newest events and accounts
// for the overwritten ones.
func TestTracerWrap(t *testing.T) {
	tr := fixedClockTracer(1024) // min capacity
	total := len(tr.buf) + 100
	for i := 0; i < total; i++ {
		tr.Emit(EvCacheHit, 0, -1, uint64(i), 0)
	}
	emitted, dropped := tr.Stats()
	if emitted != int64(total) || dropped != 100 {
		t.Fatalf("emitted/dropped = %d/%d, want %d/100", emitted, dropped, total)
	}
	ev := tr.Events()
	if len(ev) != len(tr.buf) {
		t.Fatalf("len(events) = %d, want %d", len(ev), len(tr.buf))
	}
	if ev[0].Key != 100 || ev[len(ev)-1].Key != uint64(total-1) {
		t.Fatalf("window = [%d, %d], want [100, %d]", ev[0].Key, ev[len(ev)-1].Key, total-1)
	}
}

// TestTracerConcurrentEmit exercises concurrent emitters under -race; the
// ring is far larger than the event volume, so no slot is shared.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(EvCacheHit, w, -1, uint64(i), 0)
			}
		}(w)
	}
	wg.Wait()
	if emitted, _ := tr.Stats(); emitted != 8000 {
		t.Fatalf("emitted = %d", emitted)
	}
	if got := len(tr.Events()); got != 8000 {
		t.Fatalf("buffered = %d", got)
	}
}
