package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// EventType names a step-trace event.
type EventType uint8

// The trace event vocabulary: the gate, the P²F flush path, the embedding
// cache, the collective phase of a step, and step completion.
const (
	evInvalid EventType = iota
	// EvGatePass: a trainer cleared the consistency gate for Step; Value
	// is the stall time in nanoseconds (0 when the gate was open).
	EvGatePass
	// EvGateBlock: the gate wait actually stalled; Value is the stall.
	EvGateBlock
	// EvFlushEnqueue: a trainer committed Value pending updates at Step.
	EvFlushEnqueue
	// EvFlushDequeue: a flusher claimed the g-entry for Key holding Value
	// pending updates.
	EvFlushDequeue
	// EvFlushApply: the claimed g-entry for Key reached host memory;
	// Value is the apply latency in nanoseconds.
	EvFlushApply
	// EvCacheHit / EvCacheMiss: one cache probe for Key on GPU Src.
	EvCacheHit
	EvCacheMiss
	// EvCacheEvict: Key (the victim) was evicted by a cache fill.
	EvCacheEvict
	// EvCollectiveStart / EvCollectiveEnd bracket the read barrier — the
	// stand-in for the collective (allgather/allreduce) phase of a step.
	EvCollectiveStart
	EvCollectiveEnd
	// EvStepDone: trainer Src finished Step; Value is its wall time.
	EvStepDone
	// EvFaultInject: a scheduled fault fired. Src is the target flusher
	// slot or GPU (-1 for host-write failures), Step the trigger ordinal
	// (dequeue batch, training step, or write ordinal), Value the fault
	// kind code.
	EvFaultInject
	// EvFlusherRespawn: the supervisor replaced dead/stalled flusher Src;
	// Value is the pool-wide respawn count so far.
	EvFlusherRespawn
	// EvDegrade: the gate watchdog degraded EngineFrugal to write-through;
	// Step is the committed watermark at the transition.
	EvDegrade
)

var eventNames = [...]string{
	evInvalid:         "invalid",
	EvGatePass:        "gate_pass",
	EvGateBlock:       "gate_block",
	EvFlushEnqueue:    "flush_enqueue",
	EvFlushDequeue:    "flush_dequeue",
	EvFlushApply:      "flush_apply",
	EvCacheHit:        "cache_hit",
	EvCacheMiss:       "cache_miss",
	EvCacheEvict:      "cache_evict",
	EvCollectiveStart: "collective_start",
	EvCollectiveEnd:   "collective_end",
	EvStepDone:        "step_done",
	EvFaultInject:     "fault_inject",
	EvFlusherRespawn:  "flusher_respawn",
	EvDegrade:         "degrade",
}

// String returns the JSONL type tag for the event.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "unknown"
}

// Event is one trace record. Src identifies the emitter (GPU id for
// trainer-side events, flusher id for flush events); Step is -1 when the
// event is not tied to a training step; the meaning of Key and Value is
// per-type (see the EventType constants).
type Event struct {
	Nanos int64     // since tracer creation
	Type  EventType //
	Src   int32     // GPU or flusher thread id
	Step  int64     // training step, or -1
	Key   uint64    // parameter key, or 0
	Value int64     // per-type payload (durations in nanoseconds, counts)
}

// Tracer is a fixed-capacity ring buffer of Events. Emit is lock-free
// (one atomic add plus a struct store) and safe for concurrent emitters;
// when the ring wraps, the oldest events are overwritten. Dump must only
// run when emitters are quiescent (after the run, or during a pause) —
// a dump concurrent with heavy emission can observe torn events.
type Tracer struct {
	start  time.Time
	buf    []Event
	mask   uint64
	cursor atomic.Uint64
	// clock returns nanoseconds since start; replaceable in tests for
	// deterministic golden files.
	clock func() int64
}

// DefaultTraceCapacity is the ring size NewTracer uses for capacity 0.
const DefaultTraceCapacity = 1 << 16

// NewTracer builds a tracer with capacity rounded up to a power of two
// (minimum 1024; 0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	size := 1024
	for size < capacity {
		size <<= 1
	}
	t := &Tracer{start: time.Now(), buf: make([]Event, size), mask: uint64(size - 1)}
	t.clock = func() int64 { return time.Since(t.start).Nanoseconds() }
	return t
}

// Emit appends one event. Nil-safe: a nil tracer drops it.
func (t *Tracer) Emit(typ EventType, src int, step int64, key uint64, value int64) {
	if t == nil {
		return
	}
	i := t.cursor.Add(1) - 1
	t.buf[i&t.mask] = Event{
		Nanos: t.clock(),
		Type:  typ,
		Src:   int32(src),
		Step:  step,
		Key:   key,
		Value: value,
	}
}

// Stats reports the number of events ever emitted and how many of them
// the ring has overwritten.
func (t *Tracer) Stats() (emitted, dropped int64) {
	if t == nil {
		return 0, 0
	}
	n := int64(t.cursor.Load())
	d := n - int64(len(t.buf))
	if d < 0 {
		d = 0
	}
	return n, d
}

// Events returns the buffered events, oldest first. Call only when
// emitters are quiescent.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.cursor.Load()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, min(n, uint64(len(t.buf))))
	lo := uint64(0)
	if n > uint64(len(t.buf)) {
		lo = n - uint64(len(t.buf))
	}
	for i := lo; i < n; i++ {
		out = append(out, t.buf[i&t.mask])
	}
	return out
}

// DumpJSONL writes the buffered events, oldest first, one JSON object per
// line. The schema is stable (a golden-file test pins it):
//
//	{"ns":1200,"type":"gate_pass","src":0,"step":5,"key":0,"value":200}
//
// Call only when emitters are quiescent (after Run returns).
func (t *Tracer) DumpJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(bw,
			`{"ns":%d,"type":%q,"src":%d,"step":%d,"key":%d,"value":%d}`+"\n",
			e.Nanos, e.Type.String(), e.Src, e.Step, e.Key, e.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}
