package obs

import "sync/atomic"

// ReplicaObs counts a serve follower's replication apply path. One
// goroutine applies (the tailer), many read — plain atomics suffice, no
// sharding needed.
type ReplicaObs struct {
	segments atomic.Int64
	records  atomic.Int64
	resyncs  atomic.Int64
	salvaged atomic.Int64
}

// NewReplicaObs builds the counters.
func NewReplicaObs() *ReplicaObs { return &ReplicaObs{} }

// Segment records one applied segment with n row images.
func (r *ReplicaObs) Segment(n int64) {
	if r == nil {
		return
	}
	r.segments.Add(1)
	r.records.Add(n)
}

// Resync records a full base reload (the tailer fell behind compaction).
func (r *ReplicaObs) Resync() {
	if r == nil {
		return
	}
	r.resyncs.Add(1)
}

// Salvage records n row images recovered from an unsealed segment at
// promotion.
func (r *ReplicaObs) Salvage(n int64) {
	if r == nil {
		return
	}
	r.salvaged.Add(n)
}

// ReplicaSnapshot is a point-in-time copy of the replication counters.
type ReplicaSnapshot struct {
	SegmentsApplied int64 `json:"segmentsApplied"`
	RecordsApplied  int64 `json:"recordsApplied"`
	Resyncs         int64 `json:"resyncs"`
	Salvaged        int64 `json:"salvaged"`
}

// Snapshot copies the counters (nil-safe: zero snapshot).
func (r *ReplicaObs) Snapshot() ReplicaSnapshot {
	if r == nil {
		return ReplicaSnapshot{}
	}
	return ReplicaSnapshot{
		SegmentsApplied: r.segments.Load(),
		RecordsApplied:  r.records.Load(),
		Resyncs:         r.resyncs.Load(),
		Salvaged:        r.salvaged.Load(),
	}
}
