// Package obs is Frugal's runtime observability layer: an
// allocation-conscious metrics registry (sharded counters, gauges, fixed-
// bucket histograms) plus a typed step-event tracer (ring buffer with a
// JSONL dump) that together expose where an iteration's time goes — the
// Fig 3c / Fig 12 breakdown of the paper — while a job is running.
//
// Everything is nil-safe: every instrumentation hook is a method on a
// pointer that may be nil, and a nil receiver is a no-op costing one
// predictable branch. The hot paths (cache probes, priority-queue
// operations, gate waits) are instrumented unconditionally in their
// packages and pay nothing when observability is disabled — the default.
//
// Counters are sharded so that concurrent trainers (one per simulated
// GPU) and flusher threads never contend on a cache line; Snapshot sums
// the shards. Histograms use fixed bucket layouts shared by the gate-
// stall, flush-latency and step-wall-time metrics so snapshots are
// directly comparable.
package obs

import (
	"sync/atomic"
	"time"
)

// ----------------------------------------------------------------------
// Primitives

// cacheLine keeps adjacent counter shards on distinct cache lines.
const cacheLine = 64

type shard struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing metric sharded across concurrent
// writers (trainers, flusher threads). The zero Counter (no shards) drops
// every Add — sub-observers are only built through New, which sizes them.
type Counter struct {
	shards []shard
}

func newCounter(n int) Counter {
	if n < 1 {
		n = 1
	}
	return Counter{shards: make([]shard, n)}
}

// Add increments the counter by n on the writer's shard. Any shard value
// is accepted; it is reduced modulo the shard count.
func (c *Counter) Add(writer int, n int64) {
	if len(c.shards) == 0 {
		return
	}
	if writer < 0 {
		writer = -writer
	}
	c.shards[writer%len(c.shards)].v.Add(n)
}

// Total sums the shards.
func (c *Counter) Total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is a last-value metric (queue depths, watermarks).
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// ----------------------------------------------------------------------
// Histograms

// DurationBuckets is the shared bucket layout for the time histograms
// (gate stall, flush latency, per-step wall time): a 1-2-5 ladder from
// 1µs to 10s. Values are inclusive upper bounds in nanoseconds.
var DurationBuckets = []int64{
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000,
	10_000_000_000,
}

// Histogram counts observations into fixed buckets. Buckets and sums are
// atomics, so concurrent Observe and Snapshot are safe.
type Histogram struct {
	bounds  []int64        // inclusive upper bounds, ascending
	buckets []atomic.Int64 // len(bounds)+1; the last is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) Histogram {
	return Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value (nanoseconds for the duration layouts).
func (h *Histogram) Observe(v int64) {
	if h == nil || len(h.buckets) == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistBucket is one bucket of a histogram snapshot. Le is the inclusive
// upper bound; the overflow bucket carries Le == math.MaxInt64.
type HistBucket struct {
	Le    time.Duration `json:"le"`
	Count int64         `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Buckets []HistBucket  `json:"buckets,omitempty"`
}

// Mean returns Sum/Count, or 0 before any observation.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q ≤ 1), a conservative (over-)estimate with the usual
// fixed-bucket resolution. Returns 0 before any observation. An
// observation in the overflow bucket reports the largest finite bound
// doubled — the layout has no upper edge to name.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	maxFinite := time.Duration(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if b.Le < time.Duration(int64(^uint64(0)>>1)) && b.Le > maxFinite {
			maxFinite = b.Le
		}
		if cum >= rank {
			if b.Le == time.Duration(int64(^uint64(0)>>1)) {
				return 2 * maxFinite
			}
			return b.Le
		}
	}
	return maxFinite
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: time.Duration(h.sum.Load())}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := time.Duration(int64(^uint64(0) >> 1)) // overflow bucket
		if i < len(h.bounds) {
			le = time.Duration(h.bounds[i])
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: n})
	}
	return s
}

// ----------------------------------------------------------------------
// Sub-observers (the instrumentation surfaces handed to each package)

// TierObs instruments the tiered slab: promotion/demotion traffic and
// the cold tier's quantized read/write paths. Callers shard by key (the
// events come from flusher threads and serve readers, not a fixed GPU).
type TierObs struct {
	promotions, demotions, declined Counter
	coldWrites, dequantReads        Counter
}

// TierPromotion records a cold→hot move.
func (t *TierObs) TierPromotion(key uint64) {
	if t == nil {
		return
	}
	t.promotions.Add(int(key), 1)
}

// TierDemotion records a hot→cold move (the row was requantized).
func (t *TierObs) TierDemotion(key uint64) {
	if t == nil {
		return
	}
	t.demotions.Add(int(key), 1)
}

// TierDeclined records a promotion dropped because no strictly colder
// victim was found in the sweep window.
func (t *TierObs) TierDeclined(key uint64) {
	if t == nil {
		return
	}
	t.declined.Add(int(key), 1)
}

// ColdWrite records a cold-row read-modify-requantize apply.
func (t *TierObs) ColdWrite(key uint64) {
	if t == nil {
		return
	}
	t.coldWrites.Add(int(key), 1)
}

// DequantRead records a row read served by dequantization.
func (t *TierObs) DequantRead(key uint64) {
	if t == nil {
		return
	}
	t.dequantReads.Add(int(key), 1)
}

// CacheObs counts per-GPU embedding-cache traffic. Hit/Miss/Insert are
// called on the cache probe path, so they must stay branch-cheap.
type CacheObs struct {
	lookups, hits, misses, stale, inserts, evictions Counter
	// Lookahead-prefetch fate counters (see cache.Stats for semantics).
	prefFills, prefHits, prefLate, prefWasted Counter
	tr                                        *Tracer
}

// Hit records a fresh cache hit.
func (c *CacheObs) Hit(gpu int, key uint64) {
	if c == nil {
		return
	}
	c.lookups.Add(gpu, 1)
	c.hits.Add(gpu, 1)
	c.tr.Emit(EvCacheHit, gpu, -1, key, 0)
}

// Miss records a cache miss; stale marks a present-but-outdated row that
// was invalidated (stale misses are a subset of misses).
func (c *CacheObs) Miss(gpu int, key uint64, stale bool) {
	if c == nil {
		return
	}
	c.lookups.Add(gpu, 1)
	c.misses.Add(gpu, 1)
	if stale {
		c.stale.Add(gpu, 1)
	}
	c.tr.Emit(EvCacheMiss, gpu, -1, key, 0)
}

// Insert records a cache fill and the eviction it may have caused.
func (c *CacheObs) Insert(gpu int, key, evicted uint64, wasEviction bool) {
	if c == nil {
		return
	}
	c.inserts.Add(gpu, 1)
	if wasEviction {
		c.evictions.Add(gpu, 1)
		c.tr.Emit(EvCacheEvict, gpu, -1, evicted, 0)
	}
}

// PrefetchFill records one row filled (or refilled) by the lookahead
// prefetcher.
func (c *CacheObs) PrefetchFill(gpu int) {
	if c == nil {
		return
	}
	c.prefFills.Add(gpu, 1)
}

// PrefetchHit records a demand lookup served from a prefetched row.
func (c *CacheObs) PrefetchHit(gpu int) {
	if c == nil {
		return
	}
	c.prefHits.Add(gpu, 1)
}

// PrefetchLate records a prefetched row invalidated or refilled before any
// demand use (the fill lost a race with a flush).
func (c *CacheObs) PrefetchLate(gpu int) {
	if c == nil {
		return
	}
	c.prefLate.Add(gpu, 1)
}

// PrefetchWasted records a prefetched row evicted before any demand use.
func (c *CacheObs) PrefetchWasted(gpu int) {
	if c == nil {
		return
	}
	c.prefWasted.Add(gpu, 1)
}

// GateObs observes the synchronous-consistency gate from the trainer side.
type GateObs struct {
	passes, blocks, stallNanos Counter
	stall                      Histogram
	tr                         *Tracer
}

// Wait records one completed gate wait: stalled is the time the trainer
// spent blocked (0 when the gate was already open).
func (g *GateObs) Wait(gpu int, step int64, stalled time.Duration) {
	if g == nil {
		return
	}
	g.passes.Add(gpu, 1)
	if stalled > 0 {
		g.blocks.Add(gpu, 1)
		g.stallNanos.Add(gpu, int64(stalled))
		g.stall.Observe(int64(stalled))
		g.tr.Emit(EvGateBlock, gpu, step, 0, int64(stalled))
	}
	g.tr.Emit(EvGatePass, gpu, step, 0, int64(stalled))
}

// FlushObs observes the P²F write path: updates staged by trainers
// (enqueue side, sharded per GPU) and g-entries drained by the flusher
// pool (apply side, sharded per flusher thread).
type FlushObs struct {
	enqueued        Counter // individual updates committed by trainers
	applied         Counter // individual updates applied through the sink
	entries         Counter // g-entries flushed
	deferredEntries Counter // flushed from the ∞ slot (off the critical path)
	urgentEntries   Counter // flushed with a finite priority
	latency         Histogram
	sampleDepth     Gauge
	tr              *Tracer
}

// Enqueued records one trainer's CommitStep of n updates.
func (f *FlushObs) Enqueued(gpu int, step int64, n int) {
	if f == nil {
		return
	}
	f.enqueued.Add(gpu, int64(n))
	f.tr.Emit(EvFlushEnqueue, gpu, step, 0, int64(n))
}

// Dequeued records a flusher claiming a g-entry holding n updates.
func (f *FlushObs) Dequeued(flusher int, key uint64, n int) {
	if f == nil {
		return
	}
	f.tr.Emit(EvFlushDequeue, flusher, -1, key, int64(n))
}

// Applied records a completed flush of one g-entry: n updates written to
// host memory in `took`, from the deferred (∞) or urgent (finite) slot.
func (f *FlushObs) Applied(flusher int, key uint64, n int, deferred bool, took time.Duration) {
	if f == nil {
		return
	}
	f.applied.Add(flusher, int64(n))
	f.entries.Add(flusher, 1)
	if deferred {
		f.deferredEntries.Add(flusher, 1)
	} else {
		f.urgentEntries.Add(flusher, 1)
	}
	f.latency.Observe(int64(took))
	f.tr.Emit(EvFlushApply, flusher, -1, key, int64(took))
}

// SampleDepth records the sample (lookahead) queue depth after a prefetch.
func (f *FlushObs) SampleDepth(depth int) {
	if f == nil {
		return
	}
	f.sampleDepth.Set(int64(depth))
}

// PQObs counts priority-queue operations. The callers (commit paths,
// flusher threads) carry no stable worker identity, so counters shard by
// key instead — same contention-avoidance, no plumbing.
type PQObs struct {
	enqueues, dequeues, adjusts, stalePops Counter
}

// Enqueue records one queue insert.
func (p *PQObs) Enqueue(key uint64) {
	if p == nil {
		return
	}
	p.enqueues.Add(int(key), 1)
}

// Dequeue records one successful claim.
func (p *PQObs) Dequeue(key uint64) {
	if p == nil {
		return
	}
	p.dequeues.Add(int(key), 1)
}

// Adjust records one priority move.
func (p *PQObs) Adjust(key uint64) {
	if p == nil {
		return
	}
	p.adjusts.Add(int(key), 1)
}

// StalePop records a residue node culled during dequeue validation.
func (p *PQObs) StalePop(key uint64) {
	if p == nil {
		return
	}
	p.stalePops.Add(int(key), 1)
}

// FaultObs observes the fault-injection and recovery machinery: faults
// fired by the injector, flusher respawns and batch redistributions by
// the self-healing pool, transient host-write retries, and watchdog
// degradations to write-through.
type FaultObs struct {
	injected      Counter
	respawns      Counter
	redistributed Counter
	writeRetries  Counter
	degradations  Counter
	tr            *Tracer
}

// Injected records one scheduled fault firing: src is the target flusher
// slot or GPU (-1 for host-write failures), at the trigger ordinal, kind
// the fault kind code.
func (f *FaultObs) Injected(src int, at int64, kind int64) {
	if f == nil {
		return
	}
	f.injected.Add(src, 1)
	f.tr.Emit(EvFaultInject, src, at, 0, kind)
}

// Respawned records the supervisor replacing a dead or stalled flusher;
// total is the pool-wide respawn count including this one.
func (f *FaultObs) Respawned(slot int, total int64) {
	if f == nil {
		return
	}
	f.respawns.Add(slot, 1)
	f.tr.Emit(EvFlusherRespawn, slot, -1, 0, total)
}

// Redistributed records a dying flusher re-enqueueing the n g-entries of
// its in-flight dequeue batch.
func (f *FaultObs) Redistributed(slot int, n int) {
	if f == nil || n == 0 {
		return
	}
	f.redistributed.Add(slot, int64(n))
}

// WriteRetry records one retried host-memory write attempt.
func (f *FaultObs) WriteRetry(writer int) {
	if f == nil {
		return
	}
	f.writeRetries.Add(writer, 1)
}

// Degraded records the gate watchdog switching the engine to
// write-through at committed watermark step.
func (f *FaultObs) Degraded(step int64) {
	if f == nil {
		return
	}
	f.degradations.Add(0, 1)
	f.tr.Emit(EvDegrade, -1, step, 0, 0)
}

// StepObs observes training-step completion.
type StepObs struct {
	completed Counter // global steps fully committed by all trainers
	wall      Histogram
	tr        *Tracer
}

// WorkerStep records one trainer finishing its shard of a step.
func (s *StepObs) WorkerStep(gpu int, step int64, took time.Duration) {
	if s == nil {
		return
	}
	s.wall.Observe(int64(took))
	s.tr.Emit(EvStepDone, gpu, step, 0, int64(took))
}

// Completed records a globally completed step (all trainers committed).
func (s *StepObs) Completed() {
	if s == nil {
		return
	}
	s.completed.Add(0, 1)
}

// ----------------------------------------------------------------------
// Observer

// Options sizes an Observer.
type Options struct {
	// Shards is the counter shard count — use max(trainers, flusher
	// threads) (default 8).
	Shards int
	// TraceCapacity is the event ring size, rounded up to a power of two
	// (default 65536; < 0 disables tracing entirely, keeping counters).
	TraceCapacity int
}

// Observer bundles the metric surfaces for one job. A nil *Observer (and
// every sub-observer it would hand out) is a valid no-op sink — the
// runtime's default.
type Observer struct {
	start  time.Time
	cache  CacheObs
	gate   GateObs
	flush  FlushObs
	pq     PQObs
	step   StepObs
	fault  FaultObs
	tier   TierObs
	tracer *Tracer
}

// New builds an Observer.
func New(opt Options) *Observer {
	n := opt.Shards
	if n <= 0 {
		n = 8
	}
	o := &Observer{start: time.Now()}
	if opt.TraceCapacity >= 0 {
		o.tracer = NewTracer(opt.TraceCapacity)
	}
	o.cache = CacheObs{
		lookups: newCounter(n), hits: newCounter(n), misses: newCounter(n),
		stale: newCounter(n), inserts: newCounter(n), evictions: newCounter(n),
		prefFills: newCounter(n), prefHits: newCounter(n),
		prefLate: newCounter(n), prefWasted: newCounter(n),
		tr: o.tracer,
	}
	o.gate = GateObs{
		passes: newCounter(n), blocks: newCounter(n), stallNanos: newCounter(n),
		stall: newHistogram(DurationBuckets), tr: o.tracer,
	}
	o.flush = FlushObs{
		enqueued: newCounter(n), applied: newCounter(n), entries: newCounter(n),
		deferredEntries: newCounter(n), urgentEntries: newCounter(n),
		latency: newHistogram(DurationBuckets), tr: o.tracer,
	}
	o.pq = PQObs{
		enqueues: newCounter(n), dequeues: newCounter(n),
		adjusts: newCounter(n), stalePops: newCounter(n),
	}
	o.step = StepObs{completed: newCounter(n), wall: newHistogram(DurationBuckets), tr: o.tracer}
	o.fault = FaultObs{
		injected: newCounter(n), respawns: newCounter(n), redistributed: newCounter(n),
		writeRetries: newCounter(n), degradations: newCounter(n), tr: o.tracer,
	}
	o.tier = TierObs{
		promotions: newCounter(n), demotions: newCounter(n), declined: newCounter(n),
		coldWrites: newCounter(n), dequantReads: newCounter(n),
	}
	return o
}

// CacheSink returns the cache instrumentation surface (nil for a nil
// Observer — the no-op default every package accepts).
func (o *Observer) CacheSink() *CacheObs {
	if o == nil {
		return nil
	}
	return &o.cache
}

// GateSink returns the gate instrumentation surface.
func (o *Observer) GateSink() *GateObs {
	if o == nil {
		return nil
	}
	return &o.gate
}

// FlushSink returns the flush instrumentation surface.
func (o *Observer) FlushSink() *FlushObs {
	if o == nil {
		return nil
	}
	return &o.flush
}

// PQSink returns the priority-queue instrumentation surface.
func (o *Observer) PQSink() *PQObs {
	if o == nil {
		return nil
	}
	return &o.pq
}

// StepSink returns the step instrumentation surface.
func (o *Observer) StepSink() *StepObs {
	if o == nil {
		return nil
	}
	return &o.step
}

// FaultSink returns the fault/recovery instrumentation surface.
func (o *Observer) FaultSink() *FaultObs {
	if o == nil {
		return nil
	}
	return &o.fault
}

// TierSink returns the tiered-slab instrumentation surface.
func (o *Observer) TierSink() *TierObs {
	if o == nil {
		return nil
	}
	return &o.tier
}

// TraceSink returns the event tracer (nil when tracing is disabled).
func (o *Observer) TraceSink() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// ----------------------------------------------------------------------
// Snapshot

// Snapshot is a point-in-time copy of every metric, safe to take while
// the job runs. The zero Snapshot is what a nil Observer reports.
type Snapshot struct {
	// Uptime is the time since the observer was created.
	Uptime time.Duration `json:"uptimeNanos"`

	// Cache traffic, summed across GPUs. CacheLookups ==
	// CacheHits + CacheMisses; stale hits are a subset of misses.
	CacheLookups   int64 `json:"cacheLookups"`
	CacheHits      int64 `json:"cacheHits"`
	CacheMisses    int64 `json:"cacheMisses"`
	CacheStaleHits int64 `json:"cacheStaleHits"`
	CacheInserts   int64 `json:"cacheInserts"`
	CacheEvictions int64 `json:"cacheEvictions"`

	// Lookahead prefetch: fills issued by the prefetcher and their fate.
	// CachePrefetchHits counts demand lookups served from prefetched rows
	// (a subset of CacheHits); Late went stale before use, Wasted were
	// evicted before use.
	CachePrefetchFills  int64 `json:"cachePrefetchFills"`
	CachePrefetchHits   int64 `json:"cachePrefetchHits"`
	CachePrefetchLate   int64 `json:"cachePrefetchLate"`
	CachePrefetchWasted int64 `json:"cachePrefetchWasted"`

	// Consistency gate: every gate wait is a pass; blocks are the waits
	// that actually stalled, accumulating GateStallTime.
	GatePasses    int64         `json:"gatePasses"`
	GateBlocks    int64         `json:"gateBlocks"`
	GateStallTime time.Duration `json:"gateStallNanos"`
	GateStall     HistSnapshot  `json:"gateStall"`

	// P²F write path. FlushApplied ≤ FlushEnqueued always; they are equal
	// once the epilogue has drained.
	FlushEnqueued   int64        `json:"flushEnqueued"`
	FlushApplied    int64        `json:"flushApplied"`
	FlushedEntries  int64        `json:"flushedEntries"`
	DeferredEntries int64        `json:"deferredEntries"`
	UrgentEntries   int64        `json:"urgentEntries"`
	FlushLatency    HistSnapshot `json:"flushLatency"`

	// Live queue depths (filled by the runtime at snapshot time).
	FlushBacklog     int64 `json:"flushBacklog"`
	SampleQueueDepth int64 `json:"sampleQueueDepth"`

	// Priority-queue operation counts.
	PQEnqueues  int64 `json:"pqEnqueues"`
	PQDequeues  int64 `json:"pqDequeues"`
	PQAdjusts   int64 `json:"pqAdjusts"`
	PQStalePops int64 `json:"pqStalePops"`

	// Steps.
	StepsCompleted int64        `json:"stepsCompleted"`
	StepWall       HistSnapshot `json:"stepWall"`

	// Fault injection and recovery. Zero throughout on fault-free runs.
	FaultsInjected       int64 `json:"faultsInjected"`
	FlusherRespawns      int64 `json:"flusherRespawns"`
	RedistributedEntries int64 `json:"redistributedEntries"`
	HostWriteRetries     int64 `json:"hostWriteRetries"`
	Degradations         int64 `json:"degradations"`

	// Tiered-slab traffic. Zero throughout when the cold tier is off.
	TierPromotions   int64 `json:"tierPromotions"`
	TierDemotions    int64 `json:"tierDemotions"`
	TierDeclined     int64 `json:"tierDeclined"`
	TierColdWrites   int64 `json:"tierColdWrites"`
	TierDequantReads int64 `json:"tierDequantReads"`

	// Tracer accounting: events ever emitted, and how many the ring has
	// overwritten.
	TraceEvents  int64 `json:"traceEvents"`
	TraceDropped int64 `json:"traceDropped"`
}

// Snapshot sums every counter. Safe to call concurrently with the job; a
// nil Observer returns the zero Snapshot.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Uptime:         time.Since(o.start),
		CacheLookups:   o.cache.lookups.Total(),
		CacheHits:      o.cache.hits.Total(),
		CacheMisses:    o.cache.misses.Total(),
		CacheStaleHits: o.cache.stale.Total(),
		CacheInserts:   o.cache.inserts.Total(),
		CacheEvictions: o.cache.evictions.Total(),

		CachePrefetchFills:  o.cache.prefFills.Total(),
		CachePrefetchHits:   o.cache.prefHits.Total(),
		CachePrefetchLate:   o.cache.prefLate.Total(),
		CachePrefetchWasted: o.cache.prefWasted.Total(),

		GatePasses:    o.gate.passes.Total(),
		GateBlocks:    o.gate.blocks.Total(),
		GateStallTime: time.Duration(o.gate.stallNanos.Total()),
		GateStall:     o.gate.stall.snapshot(),

		FlushEnqueued:    o.flush.enqueued.Total(),
		FlushApplied:     o.flush.applied.Total(),
		FlushedEntries:   o.flush.entries.Total(),
		DeferredEntries:  o.flush.deferredEntries.Total(),
		UrgentEntries:    o.flush.urgentEntries.Total(),
		FlushLatency:     o.flush.latency.snapshot(),
		SampleQueueDepth: o.flush.sampleDepth.Value(),

		PQEnqueues:  o.pq.enqueues.Total(),
		PQDequeues:  o.pq.dequeues.Total(),
		PQAdjusts:   o.pq.adjusts.Total(),
		PQStalePops: o.pq.stalePops.Total(),

		StepsCompleted: o.step.completed.Total(),
		StepWall:       o.step.wall.snapshot(),

		FaultsInjected:       o.fault.injected.Total(),
		FlusherRespawns:      o.fault.respawns.Total(),
		RedistributedEntries: o.fault.redistributed.Total(),
		HostWriteRetries:     o.fault.writeRetries.Total(),
		Degradations:         o.fault.degradations.Total(),

		TierPromotions:   o.tier.promotions.Total(),
		TierDemotions:    o.tier.demotions.Total(),
		TierDeclined:     o.tier.declined.Total(),
		TierColdWrites:   o.tier.coldWrites.Total(),
		TierDequantReads: o.tier.dequantReads.Total(),
	}
	if o.tracer != nil {
		s.TraceEvents, s.TraceDropped = o.tracer.Stats()
	}
	return s
}
