package obs

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestNilObserverIsNoOp drives every instrumentation hook through nil
// receivers — the runtime's default path must never dereference them.
func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	o.CacheSink().Hit(0, 1)
	o.CacheSink().Miss(0, 1, true)
	o.CacheSink().Insert(0, 1, 2, true)
	o.GateSink().Wait(0, 0, time.Millisecond)
	o.FlushSink().Enqueued(0, 0, 4)
	o.FlushSink().Dequeued(0, 1, 4)
	o.FlushSink().Applied(0, 1, 4, true, time.Microsecond)
	o.FlushSink().SampleDepth(3)
	o.PQSink().Enqueue(1)
	o.PQSink().Dequeue(1)
	o.PQSink().Adjust(1)
	o.PQSink().StalePop(1)
	o.StepSink().WorkerStep(0, 0, time.Millisecond)
	o.StepSink().Completed()
	o.TraceSink().Emit(EvGatePass, 0, 0, 0, 0)
	if s := o.Snapshot(); !reflect.DeepEqual(s, Snapshot{}) {
		t.Fatalf("nil observer snapshot not zero: %+v", s)
	}
	if ev := o.TraceSink().Events(); ev != nil {
		t.Fatalf("nil tracer returned events: %v", ev)
	}
}

// TestCounterSharding verifies concurrent sharded increments sum exactly.
func TestCounterSharding(t *testing.T) {
	c := newCounter(8)
	const writers, per = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Total(); got != writers*per {
		t.Fatalf("Total = %d, want %d", got, writers*per)
	}
	// Negative writer ids (keys cast through int) must not panic.
	c.Add(-3, 1)
	if got := c.Total(); got != writers*per+1 {
		t.Fatalf("Total after negative shard = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 || s.Sum != time.Duration(5+10+11+100+5000) {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	// 5,10 → ≤10; 11,100 → ≤100; nothing ≤1000; 5000 → overflow.
	want := map[time.Duration]int64{10: 2, 100: 2, time.Duration(int64(^uint64(0) >> 1)): 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	if got := s.Mean(); got != time.Duration(5126/5) {
		t.Fatalf("mean = %d", got)
	}
}

// TestSnapshotInvariants exercises a live observer the way the runtime
// does and checks the cross-metric invariants Snapshot documents.
func TestSnapshotInvariants(t *testing.T) {
	o := New(Options{Shards: 4, TraceCapacity: 1024})
	cs, fs := o.CacheSink(), o.FlushSink()
	for gpu := 0; gpu < 4; gpu++ {
		for i := 0; i < 100; i++ {
			if i%3 == 0 {
				cs.Miss(gpu, uint64(i), i%9 == 0)
			} else {
				cs.Hit(gpu, uint64(i))
			}
		}
		fs.Enqueued(gpu, int64(gpu), 25)
	}
	fs.Dequeued(0, 7, 25)
	fs.Applied(0, 7, 25, true, 40*time.Microsecond)
	fs.Applied(1, 9, 30, false, 2*time.Millisecond)

	s := o.Snapshot()
	if s.CacheLookups != s.CacheHits+s.CacheMisses {
		t.Fatalf("lookups %d != hits %d + misses %d", s.CacheLookups, s.CacheHits, s.CacheMisses)
	}
	if s.CacheLookups != 400 {
		t.Fatalf("lookups = %d, want 400", s.CacheLookups)
	}
	if s.CacheStaleHits > s.CacheMisses {
		t.Fatalf("stale %d > misses %d", s.CacheStaleHits, s.CacheMisses)
	}
	if s.FlushApplied > s.FlushEnqueued {
		t.Fatalf("applied %d > enqueued %d", s.FlushApplied, s.FlushEnqueued)
	}
	if s.DeferredEntries+s.UrgentEntries != s.FlushedEntries {
		t.Fatalf("deferred %d + urgent %d != entries %d",
			s.DeferredEntries, s.UrgentEntries, s.FlushedEntries)
	}
	if s.FlushLatency.Count != 2 {
		t.Fatalf("latency count = %d", s.FlushLatency.Count)
	}
	if s.TraceEvents == 0 || s.TraceDropped != 0 {
		t.Fatalf("trace events/dropped = %d/%d", s.TraceEvents, s.TraceDropped)
	}
}
