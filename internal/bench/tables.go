package bench

import (
	"fmt"
	"strings"

	"frugal/internal/data"
	"frugal/internal/hw"
)

func init() {
	register("table1", "Main characteristics: commodity vs datacenter GPUs", Table1)
	register("table2", "Datasets used in the real-world applications", Table2)
}

// Table1 renders the Table 1 comparison (A100 vs RTX 4090 headline, plus
// the evaluation parts A30 and RTX 3090).
func Table1(bool) string {
	var sb strings.Builder
	specs := hw.Specs()
	fmt.Fprintf(&sb, "%-24s", "")
	for _, g := range specs {
		fmt.Fprintf(&sb, "%14s", g.Name)
	}
	sb.WriteByte('\n')
	row := func(label string, f func(hw.GPUSpec) string) {
		fmt.Fprintf(&sb, "%-24s", label)
		for _, g := range specs {
			fmt.Fprintf(&sb, "%14s", f(g))
		}
		sb.WriteByte('\n')
	}
	row("Class", func(g hw.GPUSpec) string { return g.Class.String() })
	row("Tensor FP16 (TFLOPS)", func(g hw.GPUSpec) string { return fmt.Sprintf("%.0f", g.FP16TFLOPS) })
	row("Tensor FP32 (TFLOPS)", func(g hw.GPUSpec) string { return fmt.Sprintf("%.0f", g.FP32TFLOPS) })
	row("Memory capacity (GB)", func(g hw.GPUSpec) string { return fmt.Sprintf("%.0f", g.MemGB) })
	row("Link bandwidth (GB/s)", func(g hw.GPUSpec) string {
		link := "PCIe"
		if g.NVLink {
			link = "NVLink"
		}
		return fmt.Sprintf("%.0f (%s)", g.LinkGBps, link)
	})
	row("PCIe P2P", func(g hw.GPUSpec) string { return yesNo(g.PCIeP2P) })
	row("UVA to host / peers", func(g hw.GPUSpec) string {
		return yesNo(g.UVAToHost) + "/" + yesNo(g.UVAToPeer)
	})
	row("Price ($)", func(g hw.GPUSpec) string { return fmt.Sprintf("%.0f", g.PriceUSD) })
	row("$ per FP32-TFLOPS", func(g hw.GPUSpec) string {
		return fmt.Sprintf("%.0f", g.DollarPerFP32TFLOPS())
	})
	ratio := hw.A100.DollarPerFP32TFLOPS() / hw.RTX4090.DollarPerFP32TFLOPS()
	fmt.Fprintf(&sb, "  · RTX 4090 cost-performance is %.1fx the A100's ($/TFLOPS ratio; paper: 5.4x)\n", ratio)
	return sb.String()
}

// Table2 renders the dataset registry.
func Table2(bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-10s %12s %12s %11s %10s %13s %12s\n",
		"Kind", "Dataset", "#Vertexes", "#Edges", "#Relations", "#Features", "#IDs/#Samples", "Model size")
	for _, s := range data.Specs() {
		if s.Kind == data.KG {
			fmt.Fprintf(&sb, "%-4s %-10s %12s %12s %11s %10s %13s %12s\n",
				s.Kind, s.Name, human(s.Vertices), human(s.Edges), human(s.Relations), "-", "-",
				humanBytes(s.ModelSizeBytes))
		} else {
			fmt.Fprintf(&sb, "%-4s %-10s %12s %12s %11s %10d %13s %12s\n",
				s.Kind, s.Name, "-", "-", "-", s.Features,
				human(s.IDs)+"/"+human(s.Samples), humanBytes(s.ModelSizeBytes))
		}
	}
	sb.WriteString("  · KG: TransE, dim 400, neg batch 200, batch 1200 (FB15k) / 2000 (others)\n")
	sb.WriteString("  · REC: DLRM, dim 32, DNN 512-512-256-1, batch 1024\n")
	return sb.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func human(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fB", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.0fk", float64(v)/1e3)
	default:
		return fmt.Sprint(v)
	}
}

func humanBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(v)/float64(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.0f MB", float64(v)/float64(1<<20))
	default:
		return fmt.Sprintf("%d B", v)
	}
}
