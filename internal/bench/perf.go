package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	goruntime "runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"frugal/internal/ckpt"
	"frugal/internal/data"
	"frugal/internal/pq"
	"frugal/internal/runtime"
	"frugal/internal/serve"
	"frugal/internal/serve/loadgen"
	"frugal/internal/shard"
	"frugal/internal/store"
	"frugal/internal/tensor"
)

// This file implements the reproducible perf baseline (`frugal-bench
// -perf`, `make bench-baseline`): a fixed suite of wall-clock benchmarks —
// tensor kernels, the per-engine training step loop, and the priority
// queue's enqueue/drain cycle — executed through testing.Benchmark and
// serialised as a stable JSON report (BENCH_baseline.json). CI re-runs the
// suite and gates on allocs/op, which is deterministic across machines;
// ns/op is reported but advisory.

// PerfBench is one benchmark's measurement.
type PerfBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	// Recall is the quality figure of accuracy rows (recall@k against the
	// exhaustive scan); zero for pure latency rows. Unlike ns/op it is
	// deterministic — fixed seed, fixed query set — so CI gates on it.
	Recall float64 `json:"recall,omitempty"`
	// Speedup is the throughput ratio of scaling rows (multi-shard gather
	// against single-shard). It is a wall-clock figure, but as a ratio of
	// two measurements from the same run it cancels machine speed — what
	// it cannot cancel is core count, so ComparePerf gates on it only on
	// machines with enough CPUs to express the fan-out parallelism.
	Speedup float64 `json:"speedup,omitempty"`
	// MissRate is the demand miss rate of the training rows that report
	// cache behaviour (misses per demand lookup, prefetched fills excluded
	// from the numerator). Deterministic for the fixed-seed step loops, but
	// compared as an advisory figure: it moves whenever the cache geometry
	// or replacement policy legitimately changes.
	MissRate float64 `json:"missRate,omitempty"`
}

// PerfReport is the serialised baseline. GitSHA is supplied by the caller
// (the CLI shells out to git; tests leave it empty).
type PerfReport struct {
	GitSHA     string      `json:"gitSHA"`
	GoVersion  string      `json:"goVersion"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"numCPU"`
	Quick      bool        `json:"quick"`
	Benchmarks []PerfBench `json:"benchmarks"`
}

// perfEntry is one suite row. benchtime, when non-empty, overrides the
// default measurement window for this row. The step-loop rows pin a fixed
// iteration count ("200x") rather than a time window: their allocs/op
// includes a cold-start transient (g-entry directory creation, cache
// fills) that amortises over however many steps the window happens to
// fit, so a time-based count would make allocs/op depend on machine
// speed — exactly what the CI gate must not do.
type perfEntry struct {
	name      string
	benchtime string
	fn        func(b *testing.B)
	// miss, when non-nil, is read after the benchmark runs and published as
	// the row's MissRate (testing.B carries no side channel for it).
	miss *float64
}

// perfSuite returns the benchmark suite in report order.
func perfSuite() []perfEntry {
	const stepIters = "200x"
	return []perfEntry{
		{"kernel/axpy-512", "", benchKernel(512, func(x, y []float32) { tensor.Axpy(0.5, x, y) }), nil},
		{"kernel/dot-512", "", benchKernel(512, func(x, y []float32) { sinkPerf = tensor.Dot(x, y) }), nil},
		{"kernel/scale-512", "", benchKernel(512, func(x, _ []float32) { tensor.Scale(1.0001, x) }), nil},
		{"kernel/mulvec-256x512", "", benchMulVec(false), nil},
		{"kernel/mulvect-256x512", "", benchMulVec(true), nil},
		{"kernel/addouter-256x512", "", benchAddOuter(), nil},
		{"pq/enqueue-drain-64", "", benchPQCycle, nil},
		{"serve/lookup-zipf", "", benchServeLookup, nil},
		{"serve/topk-16", "", benchServeTopK, nil},
		{"serve/topk-ivf-16", "", benchServeTopKIVF, nil},
		{"serve/topk-quantized-rescore", "", benchServeTopKQuantized, nil},
		{"store/gather-1shard", "", benchShardGather(1), nil},
		{"store/gather-3shard", "", benchShardGather(3), nil},
		{"steploop/frugal-sgd-g1", stepIters, benchStepLoop(runtime.Config{Engine: runtime.EngineFrugal}, nil), nil},
		{"steploop/frugal-adagrad-g1", stepIters, benchStepLoop(runtime.Config{Engine: runtime.EngineFrugal, Optimizer: runtime.OptAdagrad}, nil), nil},
		{"steploop/frugal-sync-g1", stepIters, benchStepLoop(runtime.Config{Engine: runtime.EngineFrugalSync}, nil), nil},
		// The cold-tier row: the frugal step loop on a tiered slab (5% hot
		// head, int8 cold tail). Read against steploop/frugal-sgd-g1 — the
		// identical workload all-f32 — it prices the cold path's
		// dequantize-apply-requantize cycle and the flush-boundary tier
		// maintenance.
		{"train/step-cold-tier", stepIters, benchStepLoop(runtime.Config{Engine: runtime.EngineFrugal, ColdTier: true, HotFraction: 0.05}, nil), nil},
		{"steploop/direct-g1", stepIters, benchStepLoop(runtime.Config{Engine: runtime.EngineDirect}, nil), nil},
		// The prefetch pair: identical workload, prefetch off vs on. Read
		// together they show what the lookahead fill stage buys — the demand
		// miss rate collapses while ns/op improves (misses move off the
		// gather's critical path onto the overlap stage).
		{"train/miss-rate-zipf", stepIters, benchStepLoop(runtime.Config{Engine: runtime.EngineFrugal}, &missRateSink.off), &missRateSink.off},
		{"train/step-prefetch", stepIters, benchStepLoop(runtime.Config{Engine: runtime.EngineFrugal, Prefetch: true}, &missRateSink.on), &missRateSink.on},
		// The continuous-training pair: what the delta-checkpoint log costs
		// the step loop at steady state (read against steploop/frugal-sgd-g1,
		// the identical workload without the log), and how fast a serve
		// follower replays that log into its own slab.
		{"train/step-delta-log", stepIters, benchStepLoopDeltaLog, nil},
		{"ckpt/follower-apply-16k", "20x", benchFollowerApply, nil},
	}
}

// missRateSink receives the demand miss rates captured by the train rows.
var missRateSink struct{ off, on float64 }

// sinkPerf defeats dead-code elimination of pure kernels.
var sinkPerf float32

func benchKernel(dim int, f func(x, y []float32)) func(b *testing.B) {
	return func(b *testing.B) {
		x := make([]float32, dim)
		y := make([]float32, dim)
		for i := range x {
			x[i] = float32(i%7) * 0.25
			y[i] = float32(i%5) * 0.5
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f(x, y)
		}
	}
}

func benchMulVec(transpose bool) func(b *testing.B) {
	const rows, cols = 256, 512
	return func(b *testing.B) {
		m := tensor.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = float32(i%11) * 0.1
		}
		xn, dn := cols, rows
		if transpose {
			xn, dn = rows, cols
		}
		x := make([]float32, xn)
		dst := make([]float32, dn)
		for i := range x {
			x[i] = float32(i%3) * 0.5
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if transpose {
				m.MulVecT(x, dst)
			} else {
				m.MulVec(x, dst)
			}
		}
	}
}

func benchAddOuter() func(b *testing.B) {
	const rows, cols = 256, 512
	return func(b *testing.B) {
		m := tensor.NewMatrix(rows, cols)
		a := make([]float32, rows)
		x := make([]float32, cols)
		for i := range a {
			a[i] = float32(i%13) * 0.01
		}
		for i := range x {
			x[i] = float32(i%7) * 0.1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.AddOuter(0.01, a, x)
		}
	}
}

// benchPQCycle measures one enqueue+drain cycle of 64 g-entries through
// the two-level queue (the flusher pool's hot loop).
func benchPQCycle(b *testing.B) {
	const cycle = 64
	q, err := pq.NewTwoLevelPQ(pq.TwoLevelOptions{MaxStep: 4})
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]*pq.GEntry, cycle)
	for i := range entries {
		entries[i] = pq.NewGEntry(uint64(i))
	}
	claim := func(g *pq.GEntry, slotPriority int64) bool {
		if !g.InQueue || g.Priority != slotPriority {
			return false
		}
		g.InQueue = false
		return true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range entries {
			g.Mu.Lock()
			g.AddRead(1)
			g.AddWrite(1, nil)
			g.Priority = g.ComputePriority()
			g.InQueue = true
			q.Enqueue(g, g.Priority)
			g.Mu.Unlock()
		}
		drained := 0
		for drained < cycle {
			n := q.ProcessBatch(cycle, func(g *pq.GEntry, p int64) bool {
				ok := claim(g, p)
				if ok {
					// Mirror the production flusher's critical section:
					// TakeWrites hands the storage out, FlushedWrites hands it
					// back for reuse — discarding it would charge the row an
					// allocation per cycle the real flush loop never pays.
					w := g.TakeWrites()
					g.RemoveRead(1)
					g.FlushedWrites(w)
				}
				return ok
			})
			drained += n
		}
	}
}

// newServeHost builds the 50k×64 slab the serving rows read from.
func newServeHost() *runtime.Host {
	h, err := runtime.NewHost(50_000, 64)
	if err != nil {
		panic(err) // fixed valid geometry
	}
	h.Init(func(key uint64, row []float32) {
		for i := range row {
			row[i] = float32((int(key)+i)%7) * 0.1
		}
	})
	return h
}

// benchServeLookup measures one Zipf-keyed stale lookup on a live-mode
// engine — the stripe-locked read path, which must stay allocation-free.
func benchServeLookup(b *testing.B) {
	eng, err := serve.New(newServeHost(), nil, serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	keys := data.NewScrambledZipf(7, 50_000, 0.9)
	dst := make([]float32, eng.Dim())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(ctx, serve.Request{Key: keys.Next(), Dst: dst}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeTopK measures one k=16 similarity query over the static
// (checkpoint-mode) engine — the exhaustive batched MulVec scan. It runs
// on the same mixture slab and query set as the IVF row, so the pair is
// a like-for-like comparison: identical data, identical queries, only
// the index differs, and serve/topk-ivf-recall16 reports the accuracy
// cost of the sublinear path against exactly this ground truth.
func benchServeTopK(b *testing.B) {
	_, eng, queries := ivfBench()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(ctx, serve.Request{Vector: queries[i%len(queries)], K: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// The top-K rows run on a clusterable mixture slab: the lookup row's
// ramp pattern has only 7 distinct directions, which no inverted file
// can meaningfully partition. 100k×64 is sized so the exhaustive scan
// costs a few ms — the regime where a serving tier actually needs an
// index. Centroids deliberately over-partition the mixture (640
// centroids on 320 true clusters): boundary rows that straddle two
// clusters land in their own fine partitions, which the probe ranking
// then surfaces — that is what holds measured recall@16 at 0.987 with
// only nprobe=2, scanning 320 + 2·100k/320 ≈ 0.9k row-dots, a ~105×
// cut from the 100k exhaustive scan. (The 320/2 point came out of a
// (C, P) sweep: recall across C is not monotone — each centroid count
// converges to a different k-means solution — so the config is the
// measured best per dot, not the analytic cost optimum. The slab, the
// build and the queries are all fixed-seed, so the recall row is a
// deterministic constant, not a flaky measurement.)
const (
	ivfBenchRows      = 100_000
	ivfBenchDim       = 64
	ivfBenchClusters  = 320
	ivfBenchCentroids = 320
	ivfBenchNProbe    = 2
	ivfBenchQueries   = 64
)

// ivfBenchState memoizes the mixture slab and all three engines: the
// k-means build and the tiered conversion are one-time costs shared by
// the latency and recall rows.
var ivfBenchState struct {
	once    sync.Once
	ivf     *serve.Engine
	flat    *serve.Engine
	tiered  *serve.Engine
	queries [][]float32
}

func ivfBench() (ivf, flat *serve.Engine, queries [][]float32) {
	s := &ivfBenchState
	s.once.Do(func() {
		h, err := runtime.NewHost(ivfBenchRows, ivfBenchDim)
		if err != nil {
			panic(err) // fixed valid geometry
		}
		rng := rand.New(rand.NewSource(3))
		centers := make([][]float32, ivfBenchClusters)
		for c := range centers {
			centers[c] = make([]float32, ivfBenchDim)
			for d := range centers[c] {
				centers[c][d] = rng.Float32()*2 - 1
			}
		}
		h.Init(func(key uint64, row []float32) {
			center := centers[key%ivfBenchClusters]
			for d := range row {
				row[d] = center[d] + (rng.Float32()*2-1)*0.1
			}
		})
		if s.flat, err = serve.NewStatic(h, serve.Options{}); err != nil {
			panic(err)
		}
		s.ivf, err = serve.NewStatic(h, serve.Options{
			Index: serve.IndexIVF, Centroids: ivfBenchCentroids, NProbe: ivfBenchNProbe,
		})
		if err != nil {
			panic(err)
		}
		// The quantized rows serve the same slab through the cold tier:
		// checkpoint the flat host and reload it tiered (5% hot head) —
		// the exact conversion frugal-serve -cold-tier performs. Scans
		// score cold rows on their int8 codes; the winners are rescored
		// from full-precision dequantized reads.
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			panic(err)
		}
		ht, err := runtime.LoadHostTiered(&buf, 0.05)
		if err != nil {
			panic(err)
		}
		if s.tiered, err = serve.NewStatic(ht, serve.Options{}); err != nil {
			panic(err)
		}
		qrng := rand.New(rand.NewSource(9))
		s.queries = make([][]float32, ivfBenchQueries)
		for q := range s.queries {
			center := centers[qrng.Intn(ivfBenchClusters)]
			s.queries[q] = make([]float32, ivfBenchDim)
			for d := range s.queries[q] {
				s.queries[q][d] = center[d] + (qrng.Float32()*2-1)*0.2
			}
		}
	})
	return s.ivf, s.flat, s.queries
}

// benchServeTopKQuantized measures one k=16 exhaustive query over the
// tiered (95% int8) mixture slab — the quantized scan-then-rescore path.
// Its companion row serve/topk-quantized-recall16 reports the accuracy
// of exactly this configuration against the all-f32 scan.
func benchServeTopKQuantized(b *testing.B) {
	ivfBench()
	eng := ivfBenchState.tiered
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(ctx, serve.Request{Vector: ivfBenchState.queries[i%len(ivfBenchState.queries)], K: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeTopKIVF measures one k=16 query through the IVF index on the
// mixture slab — the sublinear path: nprobe partitions scanned instead of
// the whole table. Its companion row serve/topk-ivf-recall16 reports the
// accuracy of exactly this configuration.
func benchServeTopKIVF(b *testing.B) {
	eng, _, queries := ivfBench()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(ctx, serve.Request{Vector: queries[i%len(queries)], K: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// ivfRecallRow computes recall@16 of the IVF configuration the latency
// row measures, against the exhaustive scan on the same slab and query
// set. Fully deterministic, so ComparePerf gates on it: speed bought by
// skipping partitions only counts while the answers stay right.
func ivfRecallRow() PerfBench {
	ivf, flat, queries := ivfBench()
	return PerfBench{
		Name:   "serve/topk-ivf-recall16",
		Recall: recallAt16(ivf, flat, queries),
	}
}

// quantRecallRow computes recall@16 of the quantized scan-then-rescore
// path against the all-f32 exhaustive scan on the same slab and query
// set. Like the IVF recall row it is fully deterministic, so ComparePerf
// gates on it: the memory bought by quantizing the cold tail only counts
// while the answers stay right.
func quantRecallRow() PerfBench {
	_, flat, queries := ivfBench()
	return PerfBench{
		Name:   "serve/topk-quantized-recall16",
		Recall: recallAt16(ivfBenchState.tiered, flat, queries),
	}
}

// recallAt16 scores `got`'s k=16 answers against `truth`'s over the
// fixed query set.
func recallAt16(got, truth *serve.Engine, queries [][]float32) float64 {
	ctx := context.Background()
	var recall float64
	for _, q := range queries {
		exact, err := truth.Query(ctx, serve.Request{Vector: q, K: 16})
		if err != nil {
			panic(err)
		}
		approx, err := got.Query(ctx, serve.Request{Vector: q, K: 16})
		if err != nil {
			panic(err)
		}
		want := make(map[uint64]bool, len(exact.Results))
		for _, c := range exact.Results {
			want[c.Key] = true
		}
		hit := 0
		for _, c := range approx.Results {
			if want[c.Key] {
				hit++
			}
		}
		recall += float64(hit) / float64(len(exact.Results))
	}
	return recall / float64(len(queries))
}

// The shard gather rows measure one 4096-row batched gather through the
// full wire stack — sharded-store fan-out, framing, codec, loopback TCP,
// node-side slab reads — at 1 and 3 shards. The pair quantifies what the
// sharded deployment costs (protocol overhead vs the in-process slab)
// and what it buys (per-shard batches decode and read in parallel, so
// with cores to run them the 3-shard gather approaches a 3× cut in
// wall-clock per batch). RunPerf derives store/gather-speedup-3shard
// from the two rows.
const (
	shardBenchRows  = 30_000
	shardBenchDim   = 64
	shardBenchBatch = 4096
)

// benchShardGather builds an `of`-shard loopback cluster of
// uncoordinated nodes and measures one full batched gather per op.
func benchShardGather(of int) func(b *testing.B) {
	return func(b *testing.B) {
		shards := make([]store.Store, of)
		for i := 0; i < of; i++ {
			node, err := shard.NewNode(shard.NodeOptions{
				Rows: shardBenchRows, Dim: shardBenchDim, Shard: i, Of: of,
				Uncoordinated: true,
				Init: func(key uint64, row []float32) {
					for j := range row {
						row[j] = float32(key) + float32(j)
					}
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { node.Close() })
			srv, err := shard.NewServer("127.0.0.1:0", node)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			rs, err := shard.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			shards[i] = rs
		}
		st, err := store.NewSharded(shards)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { st.Close() })

		keys := make([]uint64, shardBenchBatch)
		for i := range keys {
			keys[i] = uint64(i*7) % shardBenchRows
		}
		dst := make([]float32, shardBenchBatch*shardBenchDim)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Gather(keys, dst, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// shardSpeedupRow derives the 3-shard gather scaling ratio from the two
// measured rows.
func shardSpeedupRow(benchmarks []PerfBench) (PerfBench, bool) {
	var single, multi float64
	for _, pb := range benchmarks {
		switch pb.Name {
		case "store/gather-1shard":
			single = pb.NsPerOp
		case "store/gather-3shard":
			multi = pb.NsPerOp
		}
	}
	if single <= 0 || multi <= 0 {
		return PerfBench{}, false
	}
	return PerfBench{Name: "store/gather-speedup-3shard", Speedup: single / multi}, true
}

// prefetchSpeedupRow derives the step-time ratio of the prefetch pair:
// prefetch-off ns/op over prefetch-on ns/op. Like the shard scaling row it
// is a same-run ratio, and like that row it needs cores: on one CPU the
// fill stage and the step path share the core, so the overlap that buys
// the step time back cannot express and the ratio sits at ~1. ComparePerf
// therefore gates it only on multi-CPU machines, with a floor that rejects
// regressions (prefetch making steps slower) rather than demanding a fixed
// win.
func prefetchSpeedupRow(benchmarks []PerfBench) (PerfBench, bool) {
	var off, on float64
	for _, pb := range benchmarks {
		switch pb.Name {
		case "train/miss-rate-zipf":
			off = pb.NsPerOp
		case "train/step-prefetch":
			on = pb.NsPerOp
		}
	}
	if off <= 0 || on <= 0 {
		return PerfBench{}, false
	}
	return PerfBench{Name: "train/prefetch-speedup", Speedup: off / on}, true
}

// benchStepLoop measures one global training step of the microbenchmark
// workload — the same shape as internal/runtime's BenchmarkStepLoop, so
// `go test -bench StepLoop ./internal/runtime` reproduces these rows. The
// train rows pass their missRateSink slot so the run's demand miss rate
// reaches the report; latency-only rows pass nil.
func benchStepLoop(cfg runtime.Config, miss *float64) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := cfg
		cfg.NumGPUs = 1
		cfg.Rows = 50_000
		cfg.Dim = 64
		cfg.CacheRatio = 0.1
		cfg.Seed = 7
		trace := data.NewSyntheticTrace(
			data.NewScrambledZipf(7, uint64(cfg.Rows), 0.9), 512, int64(b.N))
		job, err := runtime.NewMicro(cfg, trace, int64(b.N))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		res, err := job.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if res.Steps != int64(b.N) {
			b.Fatalf("ran %d steps, want %d", res.Steps, b.N)
		}
		if miss != nil {
			*miss = res.CacheStats.MissRate()
		}
	}
}

// benchStepLoopDeltaLog measures the frugal step loop with the
// delta-checkpoint log attached — the steady-state cost of continuous
// incremental checkpointing, read against steploop/frugal-sgd-g1 (the
// identical workload without the log). Sweeps are record-triggered, not
// timer-triggered, so the per-op work is workload-determined rather than
// wall-clock-determined and the allocs/op gate stays meaningful.
func benchStepLoopDeltaLog(b *testing.B) {
	cfg := runtime.Config{Engine: runtime.EngineFrugal}
	cfg.NumGPUs = 1
	cfg.Rows = 50_000
	cfg.Dim = 64
	cfg.CacheRatio = 0.1
	cfg.Seed = 7
	trace := data.NewSyntheticTrace(
		data.NewScrambledZipf(7, uint64(cfg.Rows), 0.9), 512, int64(b.N))
	job, err := runtime.NewMicro(cfg, trace, int64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	w, err := ckpt.NewWriter(job.Host(), job.Controller(), ckpt.Options{
		Dir:           b.TempDir() + "/log",
		SweepInterval: time.Hour,
		SweepRecords:  4096,
		CompactEvery:  16,
	})
	if err != nil {
		b.Fatal(err)
	}
	job.Controller().AddFlushHook(w.OnFlush)
	b.ReportAllocs()
	b.ResetTimer()
	res, err := job.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	// Shutdown (the final sweep) is outside the measurement: the row is
	// steady-state overhead, not wind-down cost.
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if res.Steps != int64(b.N) {
		b.Fatalf("ran %d steps, want %d", res.Steps, b.N)
	}
}

// benchProber stands in for the P²F controller when a benchmark drives
// the delta-log writer directly: a fixed watermark, no residual lag.
type benchProber struct{ wm int64 }

func (p *benchProber) Watermark() int64                   { return p.wm }
func (p *benchProber) RowStaleness(uint64) (int64, int64) { return 0, p.wm }

// The follower-apply fixture: a delta log of 64 sealed segments × 256
// row images over an 8192×64 table, built once and replayed per op.
const (
	followerBenchRows   = 8192
	followerBenchDim    = 64
	followerBenchSegs   = 64
	followerBenchPerSeg = 256
)

var followerBenchState struct {
	once sync.Once
	dir  string
	err  error
}

func followerBenchLog() (string, error) {
	s := &followerBenchState
	s.once.Do(func() {
		s.dir, s.err = os.MkdirTemp("", "frugal-follower-bench-")
		if s.err != nil {
			return
		}
		h, err := runtime.NewHost(followerBenchRows, followerBenchDim)
		if err != nil {
			s.err = err
			return
		}
		pr := &benchProber{}
		w, err := ckpt.NewWriter(h, pr, ckpt.Options{
			Dir: s.dir + "/log", SweepInterval: time.Hour,
		})
		if err != nil {
			s.err = err
			return
		}
		row := make([]float32, followerBenchDim)
		for seg := 0; seg < followerBenchSegs; seg++ {
			pr.wm = int64(seg + 1)
			for i := 0; i < followerBenchPerSeg; i++ {
				key := uint64((seg*followerBenchPerSeg + i*37) % followerBenchRows)
				for d := range row {
					row[d] = float32(key) + float32(seg)*0.01
				}
				h.SetRow(key, row, uint64(seg+1), 0)
				w.OnFlush(key)
			}
			if err := w.Sync(); err != nil {
				s.err = err
				return
			}
		}
		s.err = w.Close()
	})
	return s.dir + "/log", s.err
}

// benchFollowerApply measures one full follower bootstrap — base load
// plus replay of all 64 segments (16k row images) into a fresh slab —
// the recovery-side throughput of the delta log.
func benchFollowerApply(b *testing.B) {
	dir, err := followerBenchLog()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl, err := serve.NewFollower(dir, serve.FollowerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if st := fl.Stats(); st.AppliedSeq != followerBenchSegs ||
			st.Replication.RecordsApplied != followerBenchSegs*followerBenchPerSeg {
			b.Fatalf("follower applied seq %d (%d records), want %d (%d)",
				st.AppliedSeq, st.Replication.RecordsApplied,
				followerBenchSegs, followerBenchSegs*followerBenchPerSeg)
		}
	}
}

// perfInit registers the testing flags exactly once so RunPerf can set
// test.benchtime outside a `go test` binary (testing.Init is idempotent).
var perfInit sync.Once

// RunPerf executes the perf suite and returns the report. quick shortens
// the time-based measurement windows to 50ms (CI smoke — enough for the
// allocs/op gate, which needs no statistical power); full runs measure 1s
// per benchmark. Rows with a fixed iteration count (the step loops) run
// identically in both modes, so their allocs/op is comparable between a
// full-window baseline and a quick CI re-run.
func RunPerf(quick bool) PerfReport {
	perfInit.Do(testing.Init)
	window := "1s"
	if quick {
		window = "50ms"
	}
	rep := PerfReport{
		GoVersion: goruntime.Version(),
		GOARCH:    goruntime.GOARCH,
		NumCPU:    goruntime.NumCPU(),
		Quick:     quick,
	}
	for _, s := range perfSuite() {
		bt := s.benchtime
		if bt == "" {
			bt = window
		}
		if err := flag.Set("test.benchtime", bt); err != nil {
			panic(err) // testing.Init registers the flag; Set cannot fail
		}
		r := testing.Benchmark(s.fn)
		pb := PerfBench{
			Name:        s.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if s.miss != nil {
			pb.MissRate = *s.miss
		}
		rep.Benchmarks = append(rep.Benchmarks, pb)
	}
	rep.Benchmarks = append(rep.Benchmarks, ivfRecallRow(), quantRecallRow(), loadgenRow(quick), openLoopRow(quick))
	if row, ok := shardSpeedupRow(rep.Benchmarks); ok {
		rep.Benchmarks = append(rep.Benchmarks, row)
	}
	if row, ok := prefetchSpeedupRow(rep.Benchmarks); ok {
		rep.Benchmarks = append(rep.Benchmarks, row)
	}
	return rep
}

// loadgenRow reports the serving load generator's client-observed mean
// lookup latency as a suite row. It is latency-only: ns/op is advisory
// like every wall-clock figure, and allocs/bytes are pinned to zero —
// the lookup path is allocation-free (TestLookupAllocationFree), so the
// alloc gate has nothing to measure through a closed loop.
func loadgenRow(quick bool) PerfBench {
	d := time.Second
	if quick {
		d = 100 * time.Millisecond
	}
	eng, err := serve.NewStatic(newServeHost(), serve.Options{})
	if err != nil {
		panic(err) // fixed valid options
	}
	rep, err := loadgen.Run(eng, loadgen.Options{Workers: 4, Duration: d})
	if err != nil {
		panic(err) // fixed valid options
	}
	return PerfBench{
		Name:    "serve/loadgen-lookup-mean",
		NsPerOp: float64(rep.LookupLatency.Mean().Nanoseconds()),
	}
}

// openLoopRow reports admitted-lookup p99 under open-loop overload: a
// fixed 10k/s arrival rate against an admission-bounded engine, the
// configuration the overload tests exercise. Advisory like every
// wall-clock row — it exists so a perf run shows how shed-under-pressure
// latency moves, not to gate on it.
func openLoopRow(quick bool) PerfBench {
	d := time.Second
	if quick {
		d = 100 * time.Millisecond
	}
	eng, err := serve.NewStatic(newServeHost(), serve.Options{
		MaxInflight: 32, AdmitWait: time.Millisecond,
	})
	if err != nil {
		panic(err) // fixed valid options
	}
	rep, err := loadgen.Run(eng, loadgen.Options{
		Workers: 8, Duration: d, ArrivalRate: 10_000, MaxOutstanding: 256,
	})
	if err != nil {
		panic(err) // fixed valid options
	}
	return PerfBench{
		Name:    "serve/openloop-lookup-p99",
		NsPerOp: float64(rep.LookupLatency.Quantile(0.99).Nanoseconds()),
	}
}

// WritePerf serialises a report as indented JSON (stable field order).
func WritePerf(w io.Writer, rep PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadPerf parses a serialised report.
func ReadPerf(r io.Reader) (PerfReport, error) {
	var rep PerfReport
	err := json.NewDecoder(r).Decode(&rep)
	return rep, err
}

// recallFloor is the hard accuracy gate: any row that reports a recall
// figure below it fails the comparison, regardless of the baseline.
const recallFloor = 0.95

// speedupFloor is the multi-shard gather scaling gate: 3 shards must
// deliver at least this ratio over 1 shard. A parallel fan-out can only
// beat the single shard when there are cores to run the per-shard work
// on, so the gate applies from speedupMinCPUs up; below that the ratio
// is recorded and reported as a note (on a 1-CPU machine the 3-shard
// path is strictly extra framing with zero parallelism to pay for it).
const (
	speedupFloor   = 2.5
	speedupMinCPUs = 4
)

// speedupFloors maps each ratio row to its gate. The prefetch ratio's
// floor is a regression backstop (prefetch must not make steps materially
// slower where cores exist to overlap the fills), not a demanded win —
// the win itself is the miss-rate collapse the train rows record.
var speedupFloors = map[string]float64{
	"store/gather-speedup-3shard": speedupFloor,
	"train/prefetch-speedup":      0.9,
}

// ComparePerf diffs current against a baseline. Allocation regressions
// and recall rows under recallFloor are hard failures (both are
// deterministic for this suite); ns/op moves are advisory notes, since
// wall-clock varies across machines. A benchmark present in only one
// report is a note, not a failure.
func ComparePerf(current, baseline PerfReport) (failures, notes []string) {
	// Environment mismatches are warnings, not failures: the deterministic
	// gates (allocs, recall) hold across machines, but every wall-clock and
	// scaling note should be read knowing the runs are not like-for-like.
	if baseline.NumCPU > 0 && current.NumCPU != baseline.NumCPU {
		notes = append(notes, fmt.Sprintf(
			"environment: current run on %d CPUs, baseline on %d — wall-clock and scaling notes are not like-for-like",
			current.NumCPU, baseline.NumCPU))
	}
	if current.Quick != baseline.Quick {
		notes = append(notes, fmt.Sprintf(
			"environment: current quick=%v vs baseline quick=%v — time-windowed rows measured under different windows",
			current.Quick, baseline.Quick))
	}
	base := make(map[string]PerfBench, len(baseline.Benchmarks))
	for _, pb := range baseline.Benchmarks {
		base[pb.Name] = pb
	}
	seen := make(map[string]bool, len(current.Benchmarks))
	for _, cur := range current.Benchmarks {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new benchmark (no baseline)", cur.Name))
			continue
		}
		// Small absolute slack absorbs one-off warm-up allocations that
		// land inside short CI measurement windows.
		if limit := b.AllocsPerOp + b.AllocsPerOp/4 + 2; cur.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op regressed %d → %d (limit %d)",
				cur.Name, b.AllocsPerOp, cur.AllocsPerOp, limit))
		}
		// The recall gate is absolute: a quality row below the floor fails
		// even if the baseline had already slipped.
		if (cur.Recall > 0 || b.Recall > 0) && cur.Recall < recallFloor {
			failures = append(failures, fmt.Sprintf(
				"%s: recall %.4f under the %.2f floor (baseline %.4f)",
				cur.Name, cur.Recall, recallFloor, b.Recall))
		}
		// The scaling gate applies only where the machine can express the
		// parallelism the ratio measures.
		if cur.Speedup > 0 || b.Speedup > 0 {
			floor, gated := speedupFloors[cur.Name]
			if !gated {
				floor = speedupFloor
			}
			if current.NumCPU >= speedupMinCPUs && cur.Speedup < floor {
				failures = append(failures, fmt.Sprintf(
					"%s: speedup %.2fx under the %.1fx floor on %d CPUs (baseline %.2fx)",
					cur.Name, cur.Speedup, floor, current.NumCPU, b.Speedup))
			} else if current.NumCPU < speedupMinCPUs {
				notes = append(notes, fmt.Sprintf(
					"%s: %.2fx recorded on %d CPUs — gate needs ≥%d (advisory)",
					cur.Name, cur.Speedup, current.NumCPU, speedupMinCPUs))
			}
		}
		if b.NsPerOp > 0 {
			ratio := cur.NsPerOp / b.NsPerOp
			if ratio > 1.5 || ratio < 0.67 {
				notes = append(notes, fmt.Sprintf(
					"%s: ns/op %.0f → %.0f (%.2fx, advisory)", cur.Name, b.NsPerOp, cur.NsPerOp, ratio))
			}
		}
		// Miss-rate moves are advisory: the figure is deterministic, but it
		// legitimately shifts with cache geometry or policy changes.
		if (cur.MissRate > 0 || b.MissRate > 0) && cur.MissRate > b.MissRate*1.25+0.01 {
			notes = append(notes, fmt.Sprintf(
				"%s: demand miss rate %.4f → %.4f (advisory)", cur.Name, b.MissRate, cur.MissRate))
		}
	}
	var missing []string
	for name := range base {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		notes = append(notes, "missing from current run: "+strings.Join(missing, ", "))
	}
	return failures, notes
}
