package bench

import (
	"fmt"
	"strings"

	"frugal/internal/data"
	"frugal/internal/sim"
	"frugal/internal/stats"
)

func init() {
	register("exp10", "Sensitivity to the number of flushing threads (Fig 17)", Exp10)
	register("exp11", "Sensitivity to embedding models (Fig 18)", Exp11)
}

// Exp10 regenerates Fig 17: REC/Avazu throughput over the flushing-thread
// count, with the flat competitor baselines.
func Exp10(quick bool) string {
	threads := []int{2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 30}
	if quick {
		threads = []int{2, 8, 12, 24}
	}
	w := sim.RECWorkload(data.Avazu, 0, 0)
	tb := &stats.Table{
		Title:  "Fig 17 — sensitivity to flushing threads (REC/Avazu, 8x RTX 3090)",
		XLabel: "# of flushing threads", YLabel: "samples/s",
		XTicks: ticks(threads),
	}
	flat := func(kind sim.SystemKind) []float64 {
		t := runSim(sim.System{Kind: kind, NumGPUs: 8}, w, quick).Throughput
		out := make([]float64, len(threads))
		for i := range out {
			out[i] = t
		}
		return out
	}
	tb.AddSeries("PyTorch", flat(sim.SysPyTorch))
	tb.AddSeries("HugeCTR", flat(sim.SysHugeCTR))
	var syncPts, frugalPts []float64
	best, bestThreads := 0.0, 0
	for _, th := range threads {
		syncPts = append(syncPts, runSim(sim.System{Kind: sim.SysFrugalSync, NumGPUs: 8, FlushThreads: th}, w, quick).Throughput)
		t := runSim(sim.System{Kind: sim.SysFrugal, NumGPUs: 8, FlushThreads: th}, w, quick).Throughput
		frugalPts = append(frugalPts, t)
		if t > best {
			best, bestThreads = t, th
		}
	}
	tb.AddSeries("Frugal-Sync", syncPts)
	tb.AddSeries("Frugal", frugalPts)
	tb.Note("throughput peaks at %d flushing threads (paper: ~12, declining from 14)", bestThreads)
	return tb.Render()
}

// Exp11 regenerates Fig 18: sensitivity to the embedding model — the four
// KG scoring functions, and DLRM with a deepening DNN.
func Exp11(quick bool) string {
	var sb strings.Builder

	// (a) KG models on Freebase. Score-function arithmetic differs per
	// model (flops per dimension per candidate): DistMult 6, TransE 8,
	// SimplE 8, ComplEx 14.
	kgModels := []struct {
		name  string
		flops float64
	}{
		{"ComplEx", 14}, {"DistMult", 6}, {"SimplE", 8}, {"TransE", 8},
	}
	kg := &stats.Table{
		Title:  "Fig 18a — KG model sensitivity (Freebase, 8x RTX 3090)",
		XLabel: "model", YLabel: "samples/s",
		XTicks: func() []string {
			var out []string
			for _, m := range kgModels {
				out = append(out, m.name)
			}
			return out
		}(),
	}
	for _, kind := range []sim.SystemKind{sim.SysPyTorch, sim.SysHugeCTR, sim.SysFrugal} {
		var pts []float64
		for _, m := range kgModels {
			w := sim.KGWorkload(data.Freebase, 0, m.flops)
			pts = append(pts, runSim(sim.System{Kind: kind, NumGPUs: 8}, w, quick).Throughput)
		}
		kg.AddSeries(sim.KGLabel(kind), pts)
	}
	sb.WriteString(kg.Render())
	sb.WriteByte('\n')

	// (b) REC with deeper DNNs.
	layers := []int{2, 3, 4, 5, 6}
	rec := &stats.Table{
		Title:  "Fig 18b — REC DNN-depth sensitivity (Avazu, 8x RTX 3090)",
		XLabel: "# of NN layers", YLabel: "samples/s",
		XTicks: ticks(layers),
	}
	var frugalPts, ptPts []float64
	for _, kind := range []sim.SystemKind{sim.SysPyTorch, sim.SysHugeCTR, sim.SysFrugal} {
		var pts []float64
		for _, l := range layers {
			w := sim.RECWorkload(data.Avazu, 0, l)
			pts = append(pts, runSim(sim.System{Kind: kind, NumGPUs: 8}, w, quick).Throughput)
		}
		rec.AddSeries(string(kind), pts)
		switch kind {
		case sim.SysFrugal:
			frugalPts = pts
		case sim.SysPyTorch:
			ptPts = pts
		}
	}
	shallow := stats.Ratio(frugalPts[0], ptPts[0])
	deep := stats.Ratio(frugalPts[len(frugalPts)-1], ptPts[len(ptPts)-1])
	rec.Note("Frugal leads across all depths; the embedding-side gain dilutes as the DNN deepens (%.1fx → %.1fx vs PyTorch)",
		shallow, deep)
	sb.WriteString(rec.Render())
	fmt.Fprintf(&sb, "  · functional counterparts: the real runtime trains all four scorers (internal/model, examples/knowledgegraph)\n")
	return sb.String()
}
