package bench

import (
	"fmt"
	"strings"

	"frugal/internal/data"
	"frugal/internal/hw"
	"frugal/internal/sim"
	"frugal/internal/stats"
)

func init() {
	register("fig3a", "Motivation: HugeCTR throughput, 4xA30 vs 4xRTX 3090", Fig3a)
	register("fig3b", "Motivation: all_to_all bandwidth, A30 vs RTX 3090", Fig3b)
	register("fig3c", "Motivation: time breakdown of one training iteration", Fig3c)
}

// runSim builds and runs one simulator, panicking on configuration errors
// (experiment configs are static).
func runSim(sys sim.System, w sim.Workload, quick bool) sim.Summary {
	s, err := sim.NewSimulator(sys, w)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	warm, measure := simSteps(quick)
	return s.Run(warm, measure)
}

// avazuLike returns the Fig 3 / Exp #7 DLRM workload at a given batch.
func avazuLike(batch int) sim.Workload { return sim.RECWorkload(data.Avazu, batch, 0) }

// Fig3a sweeps batch size for HugeCTR on datacenter vs commodity GPUs.
func Fig3a(quick bool) string {
	batches := []int{128, 1024, 2048, 4096, 6144}
	if quick {
		batches = []int{128, 1024, 4096}
	}
	tb := &stats.Table{
		Title:  "Fig 3a — DLRM/Avazu training throughput (HugeCTR, 4 GPUs)",
		XLabel: "batch size", YLabel: "samples/s",
		XTicks: ticks(batches),
	}
	var a30, rtx []float64
	for _, b := range batches {
		a30 = append(a30, runSim(sim.System{Kind: sim.SysHugeCTR, GPU: hw.A30, NumGPUs: 4}, avazuLike(b), quick).Throughput)
		rtx = append(rtx, runSim(sim.System{Kind: sim.SysHugeCTR, GPU: hw.RTX3090, NumGPUs: 4}, avazuLike(b), quick).Throughput)
	}
	tb.AddSeries("A30 (datacenter)", a30)
	tb.AddSeries("RTX 3090 (commodity)", rtx)
	worst := 0.0
	for i := range a30 {
		if drop := 1 - rtx[i]/a30[i]; drop > worst {
			worst = drop
		}
	}
	tb.Note("max commodity throughput drop: %.0f%% (paper: up to 37%%)", worst*100)
	return tb.Render()
}

// Fig3b sweeps all_to_all transfer size on both GPU classes.
func Fig3b(bool) string {
	sizes := []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 100 << 20}
	labels := []string{"1M", "4M", "16M", "64M", "100M"}
	tb := &stats.Table{
		Title:  "Fig 3b — all_to_all collective bandwidth (4 GPUs)",
		XLabel: "transfer size (bytes)", YLabel: "GB/s",
		XTicks: labels,
	}
	dc := hw.MustTopology(hw.A30, 4, hw.DefaultParams())
	com := hw.MustTopology(hw.RTX3090, 4, hw.DefaultParams())
	var a30, rtx []float64
	for _, sz := range sizes {
		a30 = append(a30, dc.AllToAllBandwidth(sz))
		rtx = append(rtx, com.AllToAllBandwidth(sz))
	}
	tb.AddSeries("A30 (datacenter)", a30)
	tb.AddSeries("RTX 3090 (commodity)", rtx)
	tb.Note("commodity/datacenter at 100M: %.0f%% (paper: 54%%)", 100*rtx[len(rtx)-1]/a30[len(a30)-1])
	return tb.Render()
}

// Fig3c renders the per-iteration breakdown on both GPU classes.
func Fig3c(quick bool) string {
	batches := []int{128, 256, 512, 1024, 1536, 2048, 4096}
	if quick {
		batches = []int{128, 1024, 4096}
	}
	var sb strings.Builder
	for _, spec := range []hw.GPUSpec{hw.A30, hw.RTX3090} {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Fig 3c — iteration breakdown, HugeCTR on 4x %s", spec.Name),
			XLabel: "batch size", YLabel: "seconds per component",
			XTicks: ticks(batches),
		}
		series := map[stats.Component][]float64{}
		for _, b := range batches {
			sum := runSim(sim.System{Kind: sim.SysHugeCTR, GPU: spec, NumGPUs: 4}, avazuLike(b), quick)
			for _, c := range stats.Components() {
				series[c] = append(series[c], sum.Iter.Get(c))
			}
		}
		for _, c := range stats.Components() {
			tb.AddSeries(string(c), series[c])
		}
		sb.WriteString(tb.Render())
	}
	return sb.String()
}

func ticks(batches []int) []string {
	out := make([]string, len(batches))
	for i, b := range batches {
		out[i] = fmt.Sprint(b)
	}
	return out
}
