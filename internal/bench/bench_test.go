package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig3a", "fig3b", "fig3c",
		"exp1", "exp2", "exp3", "exp4", "exp5", "exp6",
		"exp7", "exp8", "exp9", "exp10", "exp11",
		"ext1", "ext2", "ext3",
	}
	got := Runners()
	if len(got) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("runner %d = %q, want %q (presentation order)", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Run == nil {
			t.Fatalf("runner %q incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	if r, ok := ByID("exp3"); !ok || r.ID != "exp3" {
		t.Fatal("ByID(exp3) failed")
	}
	if _, ok := ByID("exp99"); ok {
		t.Fatal("unknown id must miss")
	}
}

func TestTablesRender(t *testing.T) {
	// The static tables are cheap; run them fully.
	t1 := Table1(true)
	for _, want := range []string{"A100", "RTX 4090", "A30", "RTX 3090", "PCIe P2P", "5.3x"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2(true)
	for _, want := range []string{"FB15k", "CriteoTB", "110.3 GB", "882.0M"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("table2 missing %q:\n%s", want, t2)
		}
	}
}

func TestExp3Renders(t *testing.T) {
	// exp3 runs straight off the hardware model — fast enough for a unit
	// test and representative of the experiment plumbing.
	out := Exp3(true)
	for _, want := range []string{"CPU-involved", "UVA-enabled", "paper: 3.1-3.4x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exp3 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3bRenders(t *testing.T) {
	out := Fig3b(true)
	for _, want := range []string{"A30 (datacenter)", "RTX 3090 (commodity)", "100M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3b missing %q:\n%s", want, out)
		}
	}
}

func TestSimBackedExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sim-backed experiment is seconds-scale")
	}
	out := Exp2(true)
	for _, want := range []string{"SyncFlushing", "P2F", "stall reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exp2 missing %q:\n%s", want, out)
		}
	}
}

func TestTicks(t *testing.T) {
	got := ticks([]int{1, 20, 300})
	if len(got) != 3 || got[0] != "1" || got[2] != "300" {
		t.Fatalf("ticks = %v", got)
	}
}
