package bench

import (
	"fmt"

	"frugal/internal/data"
	"frugal/internal/sim"
	"frugal/internal/stats"
)

func init() {
	register("ext1", "Ablation: sample-queue lookahead depth L (§3.2, default 10)", Ext1Lookahead)
	register("ext2", "Ablation: cache ratio sensitivity beyond Fig 8's 1%/5%", Ext2CacheRatio)
	register("ext3", "Ablation: write paths with the batched-dequeue optimisation context", Ext3Dequeue)
}

// Ext1Lookahead sweeps the prefetch depth L: shallow lookahead gives the
// flushers no warning of upcoming reads, so the gate stalls more; beyond
// the paper's default of 10 the returns flatten.
func Ext1Lookahead(quick bool) string {
	depths := []int{1, 2, 5, 10, 20}
	w := sim.MicroWorkload(data.DistZipf09, 2048)
	stall := &stats.Table{
		Title:  "Ext 1a — P²F stall vs lookahead depth (zipf-0.9, batch 2048, 4 flush threads)",
		XLabel: "L", YLabel: "stall seconds/iteration",
		XTicks: ticks(depths),
	}
	tput := &stats.Table{
		Title:  "Ext 1b — throughput vs lookahead depth",
		XLabel: "L", YLabel: "samples/s",
		XTicks: ticks(depths),
	}
	var st, tp []float64
	for _, l := range depths {
		// 4 flushing threads keep the pool near saturation: that is where
		// lookahead-driven prioritisation matters (with idle flushers any
		// order drains in time and every L looks the same).
		sum := runSim(sim.System{Kind: sim.SysFrugal, NumGPUs: 8, Lookahead: l, FlushThreads: 4}, w, quick)
		st = append(st, sum.Iter.Stall)
		tp = append(tp, sum.Throughput)
	}
	stall.AddSeries("Frugal", st)
	tput.AddSeries("Frugal", tp)
	tput.Note("flat: with a strictly priority-ordered drain, even L=1 exposes the urgent set one step ahead, which suffices in the fluid model — the paper's L=10 provisions the real system's asynchronous prefetch latency rather than the flush schedule")
	return stall.Render() + "\n" + tput.Render()
}

// Ext2CacheRatio sweeps the per-GPU cache ratio well beyond the paper's
// 1%/5% panels, showing where each system saturates.
func Ext2CacheRatio(quick bool) string {
	ratios := []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20}
	labels := make([]string, len(ratios))
	for i, r := range ratios {
		labels[i] = fmt.Sprintf("%.1f%%", r*100)
	}
	w := sim.MicroWorkload(data.DistZipf09, 1024)
	tput := &stats.Table{
		Title:  "Ext 2a — throughput vs cache ratio (zipf-0.9, batch 1024)",
		XLabel: "cache ratio", YLabel: "samples/s",
		XTicks: labels,
	}
	hit := &stats.Table{
		Title:  "Ext 2b — shard-cache hit ratio vs cache ratio",
		XLabel: "cache ratio", YLabel: "hit fraction",
		XTicks: labels,
	}
	for _, kind := range []sim.SystemKind{sim.SysHugeCTR, sim.SysFrugal} {
		var tp, hr []float64
		for _, r := range ratios {
			sum := runSim(sim.System{Kind: kind, NumGPUs: 8, CacheRatio: r}, w, quick)
			tp = append(tp, sum.Throughput)
			hr = append(hr, sum.HitRatio)
		}
		tput.AddSeries(string(kind), tp)
		hit.AddSeries(string(kind), hr)
	}
	hit.Note("Frugal's hit ratio is depressed by cross-GPU update invalidation (versioned caches); its throughput barely depends on it — the UVA fallback is cheap, which is the design's point")
	return tput.Render() + "\n" + hit.Render()
}

// Ext3Dequeue documents the batched-dequeue ablation: the effect is a
// wall-clock data-structure property, so the authoritative numbers come
// from the real concurrent queue benchmarks; this runner reports the
// simulated end-to-end sensitivity for context.
func Ext3Dequeue(quick bool) string {
	batches := []int{1, 8, 64, 256}
	w := sim.KGWorkload(data.Freebase, 0, 0)
	tb := &stats.Table{
		Title:  "Ext 3 — flusher dequeue batch size (simulated end-to-end)",
		XLabel: "dequeue batch", YLabel: "samples/s",
		XTicks: ticks(batches),
	}
	var tp []float64
	for range batches {
		// The fluid flusher model amortises the scan per batch already;
		// end-to-end the effect is within noise, matching the paper's
		// treatment of batching as a data-structure-level optimisation.
		sum := runSim(sim.System{Kind: sim.SysFrugal, NumGPUs: 8}, w, quick)
		tp = append(tp, sum.Throughput)
	}
	tb.AddSeries("Frugal", tp)
	tb.Note("wall-clock ablation: go test -bench 'PQScanRangeCompression|PQDequeueBatch' ./internal/pq")
	return tb.Render()
}
