package bench

import (
	"fmt"
	"strings"

	"frugal/internal/data"
	"frugal/internal/hw"
	"frugal/internal/sim"
	"frugal/internal/stats"
)

func init() {
	register("exp1", "Microbenchmark: synthetic workloads (Fig 8)", Exp1)
	register("exp2", "Priority-based proactively flushing (Fig 9)", Exp2)
	register("exp3", "UVA-enabled host memory access (Fig 10)", Exp3)
	register("exp4", "Two-level priority queue (Fig 11)", Exp4)
	register("exp5", "Contributions of techniques to performance (Fig 12)", Exp5)
}

// microBatches is the Fig 8/9/12 batch sweep.
func microBatches(quick bool) []int {
	if quick {
		return []int{128, 1024, 2048}
	}
	return []int{128, 512, 1024, 1536, 2048}
}

// microSystems is the Fig 8 system set, in figure order.
var microSystems = []sim.SystemKind{sim.SysPyTorch, sim.SysHugeCTR, sim.SysFrugalSync, sim.SysFrugal}

// Exp1 regenerates Fig 8: throughput over batch size for every
// distribution × cache-ratio panel.
func Exp1(quick bool) string {
	batches := microBatches(quick)
	ratios := []float64{0.01, 0.05}
	var sb strings.Builder
	for _, dist := range data.Distributions() {
		for _, ratio := range ratios {
			tb := &stats.Table{
				Title:  fmt.Sprintf("Fig 8 — microbenchmark, %s, cache ratio %.0f%% (8x RTX 3090)", dist, ratio*100),
				XLabel: "batch size", YLabel: "samples/s",
				XTicks: ticks(batches),
			}
			frugalAt := map[int]float64{}
			for _, kind := range microSystems {
				var pts []float64
				for _, b := range batches {
					sum := runSim(sim.System{Kind: kind, NumGPUs: 8, CacheRatio: ratio},
						sim.MicroWorkload(dist, b), quick)
					pts = append(pts, sum.Throughput)
					if kind == sim.SysFrugal {
						frugalAt[b] = sum.Throughput
					}
				}
				tb.AddSeries(string(kind), pts)
			}
			// The PyTorch-UVM baseline is orders of magnitude slower (§4.2);
			// one point documents why it is omitted from the sweep.
			if dist == data.DistZipf09 && ratio == 0.05 {
				b := batches[len(batches)-1]
				uvm := runSim(sim.System{Kind: sim.SysUVM, NumGPUs: 8, CacheRatio: ratio},
					sim.MicroWorkload(dist, b), quick).Throughput
				tb.Note("PyTorch-UVM at batch %d: %s samples/s (%.0fx below Frugal; omitted from plots, as in the paper)",
					b, stats.FormatValue(uvm), frugalAt[b]/uvm)
			}
			sb.WriteString(tb.Render())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Exp2 regenerates Fig 9: stall time and throughput of the write-through
// policy (SyncFlushing) vs the P²F algorithm (zipf-0.9, 1% cache).
func Exp2(quick bool) string {
	batches := microBatches(quick)
	stall := &stats.Table{
		Title:  "Fig 9a — training stall time (zipf-0.9, cache 1%)",
		XLabel: "batch size", YLabel: "stall seconds/iteration (log axis in paper)",
		XTicks: ticks(batches),
	}
	tput := &stats.Table{
		Title:  "Fig 9b — training throughput (zipf-0.9, cache 1%)",
		XLabel: "batch size", YLabel: "samples/s",
		XTicks: ticks(batches),
	}
	var syncStalls, p2fStalls, syncT, p2fT []float64
	for _, b := range batches {
		w := sim.MicroWorkload(data.DistZipf09, b)
		sync := runSim(sim.System{Kind: sim.SysFrugalSync, NumGPUs: 8, CacheRatio: 0.01}, w, quick)
		p2f := runSim(sim.System{Kind: sim.SysFrugal, NumGPUs: 8, CacheRatio: 0.01}, w, quick)
		syncStalls = append(syncStalls, sync.Iter.Stall)
		p2fStalls = append(p2fStalls, p2f.Iter.Stall)
		syncT = append(syncT, sync.Throughput)
		p2fT = append(p2fT, p2f.Throughput)
	}
	stall.AddSeries("SyncFlushing", syncStalls)
	stall.AddSeries("P2F", p2fStalls)
	lo, hi := stallRatioRange(syncStalls, p2fStalls)
	stall.Note("stall reduction: %.0f-%.0fx (paper: 34-101x)", lo, hi)
	tput.AddSeries("SyncFlushing", syncT)
	tput.AddSeries("P2F", p2fT)
	lo, hi = stallRatioRange(p2fT, syncT)
	tput.Note("throughput gain: %.1f-%.1fx (paper: 3.5-5.3x)", lo, hi)
	return stall.Render() + "\n" + tput.Render()
}

func stallRatioRange(num, den []float64) (lo, hi float64) {
	var ratios []float64
	for i := range num {
		ratios = append(ratios, stats.Ratio(num[i], den[i]))
	}
	return stats.MinMax(ratios)
}

// Exp3 regenerates Fig 10: host-memory query latency of the CPU-involved
// path vs the UVA zero-copy path, straight from the hardware model.
func Exp3(bool) string {
	batches := []int{128, 512, 1024, 1536, 2048}
	tb := &stats.Table{
		Title:  "Fig 10 — host memory query latency per batch of keys (RTX 3090)",
		XLabel: "batch size (keys)", YLabel: "seconds",
		XTicks: ticks(batches),
	}
	topo := hw.MustTopology(hw.RTX3090, 4, hw.DefaultParams())
	const rowBytes = 128 // dim 32
	var cpu, uva []float64
	for _, b := range batches {
		cpu = append(cpu, topo.CPUGather(b, rowBytes, 1))
		u, err := topo.UVAGather(b, rowBytes, 1)
		if err != nil {
			panic(err)
		}
		uva = append(uva, u)
	}
	tb.AddSeries("CPU-involved", cpu)
	tb.AddSeries("UVA-enabled", uva)
	lo, hi := stallRatioRange(cpu, uva)
	tb.Note("UVA lowers latency by %.1f-%.1fx (paper: 3.1-3.4x)", lo, hi)
	return tb.Render()
}

// Exp4 regenerates Fig 11: TreeHeap vs two-level PQ inside Frugal on the
// Freebase-like KG workload.
func Exp4(quick bool) string {
	ratios := []float64{0.05, 0.10}
	gentry := &stats.Table{
		Title:  "Fig 11a — g-entry update time per batch (KG/Freebase)",
		XLabel: "cache ratio", YLabel: "seconds",
		XTicks: []string{"5%", "10%"},
	}
	stall := &stats.Table{
		Title:  "Fig 11b — training stall time (KG/Freebase)",
		XLabel: "cache ratio", YLabel: "seconds/iteration (log axis in paper)",
		XTicks: []string{"5%", "10%"},
	}
	tput := &stats.Table{
		Title:  "Fig 11c — training throughput (KG/Freebase)",
		XLabel: "cache ratio", YLabel: "samples/s",
		XTicks: []string{"5%", "10%"},
	}
	w := sim.KGWorkload(data.Freebase, 0, 0)
	var tg, tg2, ts, ts2, tt, tt2 []float64
	for _, r := range ratios {
		tree := runSim(sim.System{Kind: sim.SysFrugal, NumGPUs: 8, CacheRatio: r, TreeHeap: true}, w, quick)
		two := runSim(sim.System{Kind: sim.SysFrugal, NumGPUs: 8, CacheRatio: r}, w, quick)
		tg = append(tg, tree.GEntryBatchTime)
		tg2 = append(tg2, two.GEntryBatchTime)
		ts = append(ts, tree.Iter.Stall)
		ts2 = append(ts2, two.Iter.Stall)
		tt = append(tt, tree.Throughput)
		tt2 = append(tt2, two.Throughput)
	}
	gentry.AddSeries("TreeHeap", tg)
	gentry.AddSeries("Frugal (two-level)", tg2)
	lo, hi := stallRatioRange(tg, tg2)
	gentry.Note("two-level PQ is %.1f-%.1fx faster on g-entry updates (paper: 1.2-1.4x)", lo, hi)
	stall.AddSeries("TreeHeap", ts)
	stall.AddSeries("Frugal (two-level)", ts2)
	lo, hi = stallRatioRange(ts, ts2)
	stall.Note("stall reduction: %.0f-%.0fx (paper: 74.0-106.8x)", lo, hi)
	tput.AddSeries("TreeHeap", tt)
	tput.AddSeries("Frugal (two-level)", tt2)
	lo, hi = stallRatioRange(tt2, tt)
	tput.Note("throughput gain: %.1f-%.1fx (paper: 2.1-3.3x)", lo, hi)
	return gentry.Render() + "\n" + stall.Render() + "\n" + tput.Render() +
		"\n  · wall-clock counterparts: go test -bench 'TwoLevelPQMixed|TreeHeapMixed' ./internal/pq\n"
}

// Exp5 regenerates Fig 12: the per-system iteration breakdown (zipf-0.9).
func Exp5(quick bool) string {
	batches := microBatches(quick)
	var sb strings.Builder
	var frugalComm, hugeComm, frugalDram, syncDram []float64
	for _, kind := range microSystems {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Fig 12 — iteration breakdown, %s (zipf-0.9, cache 5%%)", kind),
			XLabel: "batch size", YLabel: "seconds per component",
			XTicks: ticks(batches),
		}
		series := map[stats.Component][]float64{}
		for _, b := range batches {
			sum := runSim(sim.System{Kind: kind, NumGPUs: 8, CacheRatio: 0.05},
				sim.MicroWorkload(data.DistZipf09, b), quick)
			for _, c := range stats.Components() {
				series[c] = append(series[c], sum.Iter.Get(c))
			}
		}
		for _, c := range stats.Components() {
			tb.AddSeries(string(c), series[c])
		}
		switch kind {
		case sim.SysHugeCTR:
			hugeComm = series[stats.Comm]
		case sim.SysFrugalSync:
			syncDram = series[stats.HostDRAM]
		case sim.SysFrugal:
			frugalComm = series[stats.Comm]
			frugalDram = series[stats.HostDRAM]
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	commLo, commHi := reductionRange(hugeComm, frugalComm)
	dramLo, dramHi := reductionRange(syncDram, frugalDram)
	fmt.Fprintf(&sb, "  · Frugal cuts collective communication by %.0f-%.0f%% vs HugeCTR (paper: 60-85%%)\n", commLo, commHi)
	fmt.Fprintf(&sb, "  · Frugal cuts host access time by %.0f-%.0f%% vs Frugal-Sync (paper: ~98%%)\n", dramLo, dramHi)
	return sb.String()
}

// reductionRange returns the min/max percentage reduction of new vs old.
func reductionRange(old, new []float64) (lo, hi float64) {
	var reds []float64
	for i := range old {
		if old[i] > 0 {
			reds = append(reds, 100*(1-new[i]/old[i]))
		}
	}
	return stats.MinMax(reds)
}
