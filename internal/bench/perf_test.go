package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestComparePerf(t *testing.T) {
	base := PerfReport{Benchmarks: []PerfBench{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "b", NsPerOp: 100, AllocsPerOp: 40},
		{Name: "gone", NsPerOp: 100, AllocsPerOp: 1},
	}}
	cur := PerfReport{Benchmarks: []PerfBench{
		{Name: "a", NsPerOp: 300, AllocsPerOp: 3},   // allocs 0→3 exceeds 0+0+2; ns note
		{Name: "b", NsPerOp: 100, AllocsPerOp: 50},  // within 40*1.25+2
		{Name: "new", NsPerOp: 50, AllocsPerOp: 10}, // no baseline: note only
	}}
	failures, notes := ComparePerf(cur, base)
	if len(failures) != 1 || !strings.Contains(failures[0], "a: allocs/op regressed 0 → 3") {
		t.Fatalf("failures = %v, want exactly the allocs regression on a", failures)
	}
	// The recall gate: a quality row under the floor is a hard failure
	// even when the baseline already was, and passing rows are silent.
	recallBase := PerfReport{Benchmarks: []PerfBench{{Name: "r", Recall: 0.90}}}
	recallCur := PerfReport{Benchmarks: []PerfBench{{Name: "r", Recall: 0.93}}}
	failures, _ = ComparePerf(recallCur, recallBase)
	if len(failures) != 1 || !strings.Contains(failures[0], "r: recall 0.9300 under the 0.95 floor") {
		t.Fatalf("recall failures = %v", failures)
	}
	recallCur.Benchmarks[0].Recall = 0.99
	if failures, _ = ComparePerf(recallCur, recallBase); len(failures) != 0 {
		t.Fatalf("passing recall flagged: %v", failures)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"a: ns/op", "new: new benchmark", "missing from current run: gone"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes %v missing %q", notes, want)
		}
	}
}

func TestPerfReportRoundTrip(t *testing.T) {
	rep := PerfReport{GitSHA: "abc123", GoVersion: "go1.x", GOARCH: "amd64", NumCPU: 4,
		Benchmarks: []PerfBench{{Name: "k", NsPerOp: 12.5, AllocsPerOp: 1, BytesPerOp: 64}}}
	var buf bytes.Buffer
	if err := WritePerf(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerf(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GitSHA != rep.GitSHA || len(got.Benchmarks) != 1 || got.Benchmarks[0] != rep.Benchmarks[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestRunPerfQuick smoke-runs the real suite: every benchmark must produce
// a positive ns/op, and the zero-alloc rows must hold even in the short
// measurement window (this is exactly what the CI gate relies on).
func TestRunPerfQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("perf suite in -short mode")
	}
	rep := RunPerf(true)
	// The suite rows plus the appended IVF-recall, quantized-recall,
	// loadgen latency, open-loop, shard-speedup and prefetch-speedup rows.
	if len(rep.Benchmarks) != len(perfSuite())+6 {
		t.Fatalf("got %d benchmarks, want %d", len(rep.Benchmarks), len(perfSuite())+6)
	}
	var missOff, missOn float64
	for _, pb := range rep.Benchmarks {
		switch pb.Name {
		case "train/miss-rate-zipf":
			missOff = pb.MissRate
		case "train/step-prefetch":
			missOn = pb.MissRate
		}
	}
	if missOff <= 0 {
		t.Fatal("train/miss-rate-zipf reported no demand miss rate")
	}
	if missOn > missOff/2 {
		t.Fatalf("prefetch miss rate %.4f not under half the demand rate %.4f", missOn, missOff)
	}
	for _, pb := range rep.Benchmarks {
		if pb.Recall > 0 {
			// Quality rows carry recall instead of a latency figure, and
			// must clear the CI floor on every run.
			if pb.Recall < recallFloor {
				t.Fatalf("%s: recall %.4f under the %.2f floor", pb.Name, pb.Recall, recallFloor)
			}
			continue
		}
		if pb.Speedup > 0 {
			// Ratio rows carry a speedup instead of a latency figure; the
			// ≥2.5× gate lives in ComparePerf and only arms on ≥4-CPU
			// machines, so here just require the ratio to be computable.
			continue
		}
		if pb.NsPerOp <= 0 {
			t.Fatalf("%s: ns/op = %v", pb.Name, pb.NsPerOp)
		}
		if strings.HasPrefix(pb.Name, "kernel/") && pb.AllocsPerOp != 0 {
			t.Fatalf("%s: allocs/op = %d, want 0", pb.Name, pb.AllocsPerOp)
		}
		if pb.Name == "serve/lookup-zipf" && pb.AllocsPerOp != 0 {
			t.Fatalf("%s: allocs/op = %d, want 0 (lookup path must stay allocation-free)", pb.Name, pb.AllocsPerOp)
		}
	}
}
