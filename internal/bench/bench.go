// Package bench contains one runner per table and figure of the paper's
// evaluation. Each runner re-executes the corresponding experiment on the
// virtual-time simulator (internal/sim) or directly on the hardware model
// (internal/hw) and renders the same rows/series the paper reports.
// EXPERIMENTS.md records the expected shapes next to a captured run.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Runner regenerates one table or figure. quick trades sweep resolution
// and simulated steps for speed (used by `go test` and -short runs).
type Runner struct {
	ID    string // e.g. "exp1", "fig3b", "table1"
	Title string
	Run   func(quick bool) string
}

var registry []Runner

func register(id, title string, run func(bool) string) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// Runners returns every registered experiment in presentation order.
func Runners() []Runner {
	out := append([]Runner{}, registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

// orderOf sorts table1, table2, fig3a…, exp1…exp11.
func orderOf(id string) int {
	switch {
	case strings.HasPrefix(id, "table"):
		return 0 + int(id[len(id)-1]-'0')
	case strings.HasPrefix(id, "fig3"):
		return 10 + int(id[len(id)-1]-'a')
	case strings.HasPrefix(id, "exp"):
		n := 0
		fmt.Sscanf(id[3:], "%d", &n)
		return 20 + n
	default:
		return 100
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// RunAll executes every experiment and writes the rendered output.
func RunAll(w io.Writer, quick bool) {
	for _, r := range Runners() {
		fmt.Fprintf(w, "\n######## %s — %s ########\n\n", r.ID, r.Title)
		fmt.Fprint(w, r.Run(quick))
	}
}

// simSteps returns (warmup, measure) iteration counts.
func simSteps(quick bool) (int, int) {
	if quick {
		return 6, 8
	}
	return 15, 25
}
