package bench

import (
	"fmt"
	"strings"

	"frugal/internal/data"
	"frugal/internal/hw"
	"frugal/internal/sim"
	"frugal/internal/stats"
)

func init() {
	register("exp6", "Knowledge graph models (Fig 13)", Exp6)
	register("exp7", "Recommendation models (Fig 14)", Exp7)
	register("exp8", "Scalability (Fig 15)", Exp8)
	register("exp9", "Cost efficiency vs datacenter GPUs (Fig 16)", Exp9)
}

// Exp6 regenerates Fig 13: KG training throughput across datasets, cache
// ratios and systems.
func Exp6(quick bool) string {
	var sb strings.Builder
	datasets := []data.Spec{data.FB15k, data.Freebase, data.WikiKG}
	var gains, cachedGains []float64
	for _, ds := range datasets {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Fig 13 — KG training throughput, %s (TransE, 8x RTX 3090)", ds.Name),
			XLabel: "cache ratio", YLabel: "samples/s",
			XTicks: []string{"5%", "10%"},
		}
		w := sim.KGWorkload(ds, 0, 0)
		series := map[sim.SystemKind][]float64{}
		for _, kind := range []sim.SystemKind{sim.SysPyTorch, sim.SysHugeCTR, sim.SysFrugal} {
			for _, r := range []float64{0.05, 0.10} {
				sum := runSim(sim.System{Kind: kind, NumGPUs: 8, CacheRatio: r}, w, quick)
				series[kind] = append(series[kind], sum.Throughput)
			}
			tb.AddSeries(sim.KGLabel(kind), series[kind])
		}
		for i := range series[sim.SysFrugal] {
			gains = append(gains, stats.Ratio(series[sim.SysFrugal][i], series[sim.SysPyTorch][i]))
			cachedGains = append(cachedGains, stats.Ratio(series[sim.SysFrugal][i], series[sim.SysHugeCTR][i]))
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	lo, hi := stats.MinMax(gains)
	clo, chi := stats.MinMax(cachedGains)
	fmt.Fprintf(&sb, "  · Frugal vs DGL-KE: %.1f-%.1fx (paper: 1.2-1.5x); vs DGL-KE-cached: %.1f-%.1fx (paper: 4.1-7.1x)\n",
		lo, hi, clo, chi)
	return sb.String()
}

// Exp7 regenerates Fig 14: REC training throughput across datasets, cache
// ratios and systems.
func Exp7(quick bool) string {
	var sb strings.Builder
	datasets := []data.Spec{data.Avazu, data.Criteo, data.CriteoTB}
	var vsPT, vsHC []float64
	for _, ds := range datasets {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Fig 14 — REC training throughput, %s (DLRM, 8x RTX 3090)", ds.Name),
			XLabel: "cache ratio", YLabel: "samples/s",
			XTicks: []string{"5%", "10%"},
		}
		w := sim.RECWorkload(ds, 0, 0)
		series := map[sim.SystemKind][]float64{}
		for _, kind := range []sim.SystemKind{sim.SysPyTorch, sim.SysHugeCTR, sim.SysFrugal} {
			for _, r := range []float64{0.05, 0.10} {
				sum := runSim(sim.System{Kind: kind, NumGPUs: 8, CacheRatio: r}, w, quick)
				series[kind] = append(series[kind], sum.Throughput)
			}
			tb.AddSeries(string(kind), series[kind])
		}
		for i := range series[sim.SysFrugal] {
			vsPT = append(vsPT, stats.Ratio(series[sim.SysFrugal][i], series[sim.SysPyTorch][i]))
			vsHC = append(vsHC, stats.Ratio(series[sim.SysFrugal][i], series[sim.SysHugeCTR][i]))
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	lo, hi := stats.MinMax(vsPT)
	clo, chi := stats.MinMax(vsHC)
	fmt.Fprintf(&sb, "  · Frugal vs PyTorch: %.1f-%.1fx (paper: 4.9-7.4x); vs HugeCTR: %.1f-%.1fx (paper: 6.1-8.7x)\n",
		lo, hi, clo, chi)
	return sb.String()
}

// Exp8 regenerates Fig 15: scalability over 2/4/6/8 GPUs for the KG
// (Freebase) and REC (Avazu) workloads.
func Exp8(quick bool) string {
	gpus := []int{2, 4, 6, 8}
	var sb strings.Builder
	for _, panel := range []struct {
		name string
		w    sim.Workload
		kg   bool
	}{
		{"KG (Freebase)", sim.KGWorkload(data.Freebase, 0, 0), true},
		{"REC (Avazu)", sim.RECWorkload(data.Avazu, 0, 0), false},
	} {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Fig 15 — scalability, %s (RTX 3090)", panel.name),
			XLabel: "# of GPUs", YLabel: "samples/s",
			XTicks: ticks(gpus),
		}
		for _, kind := range []sim.SystemKind{sim.SysPyTorch, sim.SysHugeCTR, sim.SysFrugalSync, sim.SysFrugal} {
			var pts []float64
			for _, n := range gpus {
				pts = append(pts, runSim(sim.System{Kind: kind, NumGPUs: n}, panel.w, quick).Throughput)
			}
			label := string(kind)
			if panel.kg {
				label = sim.KGLabel(kind)
			}
			tb.AddSeries(label, pts)
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	sb.WriteString("  · no-cache systems flatten past 4 GPUs (CPU root-complex bandwidth); Frugal keeps scaling\n")
	return sb.String()
}

// Exp9 regenerates Fig 16: Frugal on RTX 3090s vs the best existing system
// on A30s, with the cost-performance ratio.
func Exp9(quick bool) string {
	gpus := []int{2, 3, 4}
	var sb strings.Builder
	var perf, costPerf []float64
	for _, panel := range []struct {
		name string
		w    sim.Workload
		kg   bool
	}{
		{"KG / FB15k", sim.KGWorkload(data.FB15k, 0, 0), true},
		{"KG / Freebase", sim.KGWorkload(data.Freebase, 0, 0), true},
		{"REC / Avazu", sim.RECWorkload(data.Avazu, 0, 0), false},
		{"REC / Criteo", sim.RECWorkload(data.Criteo, 0, 0), false},
	} {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Fig 16 — cost efficiency, %s", panel.name),
			XLabel: "# of GPUs", YLabel: "samples/s",
			XTicks: ticks(gpus),
		}
		var dcBest, frugal []float64
		for _, n := range gpus {
			// Best existing system on datacenter GPUs — message-based
			// (PyTorch/HugeCTR) and unified-address (§5: WholeGraph-style,
			// possible only with the A30's full UVA/P2P support).
			best := 0.0
			for _, kind := range []sim.SystemKind{sim.SysPyTorch, sim.SysHugeCTR, sim.SysUnified} {
				if t := runSim(sim.System{Kind: kind, GPU: hw.A30, NumGPUs: n}, panel.w, quick).Throughput; t > best {
					best = t
				}
			}
			dcBest = append(dcBest, best)
			frugal = append(frugal, runSim(sim.System{Kind: sim.SysFrugal, GPU: hw.RTX3090, NumGPUs: n}, panel.w, quick).Throughput)
		}
		tb.AddSeries("Datacenter GPU (A30)", dcBest)
		tb.AddSeries("Commodity GPU (3090)", frugal)
		for i := range dcBest {
			rel := stats.Ratio(frugal[i], dcBest[i])
			perf = append(perf, rel)
			costPerf = append(costPerf, rel*hw.A30.PriceUSD/hw.RTX3090.PriceUSD)
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	lo, hi := stats.MinMax(perf)
	clo, chi := stats.MinMax(costPerf)
	fmt.Fprintf(&sb, "  · Frugal reaches %.0f-%.0f%% of A30 throughput (paper: 89-97%%)\n", lo*100, hi*100)
	fmt.Fprintf(&sb, "  · cost-performance gain at $%.0f/A30 vs $%.0f/3090: %.1f-%.1fx (paper: 4.0-4.3x)\n",
		hw.A30.PriceUSD, hw.RTX3090.PriceUSD, clo, chi)
	return sb.String()
}
