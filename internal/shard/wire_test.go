package shard

import (
	"bufio"
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := appendU64(nil, 42)
	payload = appendU32(payload, 7)
	payload = appendI64(payload, -3)
	payload = appendF32(payload, 1.5)
	payload = appendF32s(payload, []float32{0.25, -2, float32(math.Inf(1))})

	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, opGather, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	op, got, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if op != opGather {
		t.Fatalf("op = 0x%02x, want 0x%02x", op, opGather)
	}
	d := &decoder{b: got}
	if v := d.u64(); v != 42 {
		t.Fatalf("u64 = %d, want 42", v)
	}
	if v := d.u32(); v != 7 {
		t.Fatalf("u32 = %d, want 7", v)
	}
	if v := d.i64(); v != -3 {
		t.Fatalf("i64 = %d, want -3", v)
	}
	if v := d.f32(); v != 1.5 {
		t.Fatalf("f32 = %v, want 1.5", v)
	}
	fs := make([]float32, 3)
	d.f32s(fs)
	if fs[0] != 0.25 || fs[1] != -2 || !math.IsInf(float64(fs[2]), 1) {
		t.Fatalf("f32s = %v", fs)
	}
	if err := d.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, opPing, nil); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	op, payload, err := readFrame(bufio.NewReader(&buf))
	if err != nil || op != opPing || len(payload) != 0 {
		t.Fatalf("readFrame = (0x%02x, %v, %v)", op, payload, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A frame header announcing more than maxFrame must be rejected
	// before any allocation of that size happens.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // u32 length ≫ maxFrame
	buf.WriteByte(opPing)
	if _, _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame accepted")
	}

	var w bytes.Buffer
	bw := bufio.NewWriter(&w)
	if err := writeFrame(bw, opPing, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := &decoder{b: appendU32(nil, 5)}
	_ = d.u64() // needs 8 bytes, only 4 present
	if err := d.finish(); err == nil {
		t.Fatal("short read not reported")
	}
	// The error is latched: further reads return zero values, not panics.
	if v := d.u32(); v != 0 {
		t.Fatalf("read after error = %d, want 0", v)
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	d := &decoder{b: appendU64(nil, 1)}
	_ = d.u32()
	err := d.finish()
	if err == nil {
		t.Fatal("trailing bytes not reported")
	}
	if !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("error %q does not mention trailing bytes", err)
	}
}
