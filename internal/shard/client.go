package shard

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"frugal/internal/store"
)

// maxClientConns caps the lazily-grown per-store connection pool; excess
// concurrent operations dial short-lived extra connections that are
// closed instead of pooled.
const maxClientConns = 4

// dialTimeout bounds connection establishment.
const dialTimeout = 5 * time.Second

// clientConn is one pooled connection with its buffered endpoints and
// reusable frame buffers. reqBuf/respBuf live exactly as long as the
// connection is held by one operation — roundTrip decodes the response
// before the connection re-enters the pool, so the buffers never alias
// across concurrent callers. On steady workloads (a trainer gathering the
// same batch size every step) both settle at the high-water frame size
// and the per-operation allocations disappear.
type clientConn struct {
	net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	reqBuf  []byte
	respBuf []byte
}

// RemoteStore presents one shard node through the store.Store interface
// by speaking the wire protocol over pooled TCP connections. All methods
// are safe for concurrent use; each operation holds one connection for
// exactly one request/response exchange. Transport failures close the
// affected connection and surface as *store.ShardUnavailableError;
// application errors (unowned key, bad dimensions) arrive as plain
// errors on a connection that stays pooled.
type RemoteStore struct {
	addr        string
	rows        int64
	dim         int
	coordinated bool
	shard, of   int

	pool   chan *clientConn
	closed atomic.Bool
}

// Dial connects to a shard node, fetches its Info (global rows, dim,
// coordination, topology), and returns the store.
func Dial(addr string) (*RemoteStore, error) {
	s := &RemoteStore{addr: addr, pool: make(chan *clientConn, maxClientConns)}
	cc, err := s.dial()
	if err != nil {
		return nil, err
	}
	resp, err := s.exchange(cc, opInfo, nil)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: resp}
	s.rows = int64(d.u64())
	s.dim = int(d.u32())
	s.coordinated = d.u8() == 1
	s.shard = int(d.u32())
	s.of = int(d.u32())
	if err := d.finish(); err != nil {
		cc.Close()
		return nil, &store.ShardUnavailableError{Addr: addr, Err: err}
	}
	s.put(cc)
	return s, nil
}

// Addr returns the node's address.
func (s *RemoteStore) Addr() string { return s.addr }

// Shard returns the node's (shard, of) topology position.
func (s *RemoteStore) Shard() (shard, of int) { return s.shard, s.of }

func (s *RemoteStore) dial() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", s.addr, dialTimeout)
	if err != nil {
		return nil, &store.ShardUnavailableError{Addr: s.addr, Err: err}
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &clientConn{
		Conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// get pops a pooled connection or dials a fresh one.
func (s *RemoteStore) get() (*clientConn, error) {
	if s.closed.Load() {
		return nil, &store.ShardUnavailableError{Addr: s.addr, Err: fmt.Errorf("store closed")}
	}
	select {
	case cc := <-s.pool:
		return cc, nil
	default:
		return s.dial()
	}
}

// put returns a connection to the pool, or closes it when full.
func (s *RemoteStore) put(cc *clientConn) {
	if s.closed.Load() {
		cc.Close()
		return
	}
	select {
	case s.pool <- cc:
	default:
		cc.Close()
	}
}

// exchange runs one request/response on cc. The returned payload aliases
// cc's response buffer — it is valid only until cc is pooled or reused.
// Transport errors close the connection and come back wrapped; the caller
// must not reuse cc then.
func (s *RemoteStore) exchange(cc *clientConn, op byte, payload []byte) ([]byte, error) {
	if err := writeFrame(cc.bw, op, payload); err != nil {
		cc.Close()
		return nil, &store.ShardUnavailableError{Addr: s.addr, Err: err}
	}
	if err := cc.bw.Flush(); err != nil {
		cc.Close()
		return nil, &store.ShardUnavailableError{Addr: s.addr, Err: err}
	}
	status, resp, err := readFrameInto(cc.br, cc.respBuf)
	if cap(resp) > cap(cc.respBuf) {
		cc.respBuf = resp[:0]
	}
	if err != nil {
		cc.Close()
		return nil, &store.ShardUnavailableError{Addr: s.addr, Err: err}
	}
	if status == statusErr {
		return nil, fmt.Errorf("shard %s: %s", s.addr, string(resp))
	}
	if status != statusOK {
		cc.Close()
		return nil, &store.ShardUnavailableError{Addr: s.addr, Err: fmt.Errorf("bad status 0x%02x", status)}
	}
	return resp, nil
}

// roundTrip acquires a connection, builds the request payload into the
// connection's reusable buffer, runs one exchange, decodes the response
// (including the trailing-bytes check) while the connection is still
// held, and pools the connection back unless the transport broke. build
// and decode may be nil for empty payloads. A decode failure is protocol
// corruption: the connection is closed and the error surfaces as
// shard-unavailable.
func (s *RemoteStore) roundTrip(op byte, build func(b []byte) []byte, decode func(d *decoder)) error {
	cc, err := s.get()
	if err != nil {
		return err
	}
	var payload []byte
	if build != nil {
		payload = build(cc.reqBuf[:0])
		cc.reqBuf = payload[:0]
	}
	resp, err := s.exchange(cc, op, payload)
	if err != nil {
		if _, unavailable := err.(*store.ShardUnavailableError); !unavailable {
			s.put(cc) // application error: the stream is still aligned
		}
		return err
	}
	d := &decoder{b: resp}
	if decode != nil {
		decode(d)
	}
	if err := d.finish(); err != nil {
		cc.Close()
		return &store.ShardUnavailableError{Addr: s.addr, Err: err}
	}
	s.put(cc)
	return nil
}

// Rows returns the GLOBAL table height the node reported.
func (s *RemoteStore) Rows() int64 { return s.rows }

// Dim returns the embedding dimension.
func (s *RemoteStore) Dim() int { return s.dim }

// Coordinated reports whether the node runs a P²F gate.
func (s *RemoteStore) Coordinated() bool { return s.coordinated }

// ReadRow reads one row by global key.
func (s *RemoteStore) ReadRow(key uint64, dst []float32) (uint64, error) {
	if len(dst) != s.dim {
		return 0, fmt.Errorf("shard: dst length %d, want dim %d", len(dst), s.dim)
	}
	var v uint64
	err := s.roundTrip(opReadRow,
		func(b []byte) []byte { return appendU64(b, key) },
		func(d *decoder) {
			v = d.u64()
			d.f32s(dst)
		})
	if err != nil {
		return 0, err
	}
	return v, nil
}

// Gather batch-reads rows by global key in a single round trip.
func (s *RemoteStore) Gather(keys []uint64, dst []float32, versions []uint64) error {
	if len(dst) != len(keys)*s.dim {
		return fmt.Errorf("shard: gather dst %d floats, want %d", len(dst), len(keys)*s.dim)
	}
	if versions != nil && len(versions) != len(keys) {
		return fmt.Errorf("shard: gather versions %d, want %d", len(versions), len(keys))
	}
	return s.roundTrip(opGather,
		func(b []byte) []byte {
			b = appendU32(b, uint32(len(keys)))
			return appendU64s(b, keys)
		},
		func(d *decoder) {
			if versions != nil {
				d.u64s(versions)
			} else {
				d.take(8 * len(keys))
			}
			d.f32s(dst)
		})
}

// Scatter ships one step's updates (possibly empty — the pure commit
// signal) in a single round trip.
func (s *RemoteStore) Scatter(step int64, updates []store.KeyDelta) error {
	for _, u := range updates {
		if len(u.Delta) != s.dim {
			return fmt.Errorf("shard: delta length %d, want dim %d", len(u.Delta), s.dim)
		}
	}
	return s.roundTrip(opScatter,
		func(b []byte) []byte {
			b = appendI64(b, step)
			b = appendU32(b, uint32(len(updates)))
			for _, u := range updates {
				b = appendU64(b, u.Key)
				b = appendF32(b, u.StateDelta)
				b = appendF32s(b, u.Delta)
			}
			return b
		}, nil)
}

// Version returns a row's update counter.
func (s *RemoteStore) Version(key uint64) (uint64, error) {
	var v uint64
	err := s.roundTrip(opVersion,
		func(b []byte) []byte { return appendU64(b, key) },
		func(d *decoder) { v = d.u64() })
	if err != nil {
		return 0, err
	}
	return v, nil
}

// Watermark returns the node's committed-step watermark. The signature
// cannot carry an error, so an unreachable node reports -1 — the
// nothing-committed value, which composed stores treat as maximally
// conservative (bounded reads degrade rather than lie).
func (s *RemoteStore) Watermark() int64 {
	var wm int64
	err := s.roundTrip(opWatermark, nil,
		func(d *decoder) { wm = d.i64() })
	if err != nil {
		return -1
	}
	return wm
}

// RowStaleness reports the key's flush lag against the node's watermark.
func (s *RemoteStore) RowStaleness(key uint64) (lag, watermark int64, err error) {
	err = s.roundTrip(opStaleness,
		func(b []byte) []byte { return appendU64(b, key) },
		func(d *decoder) {
			lag = d.i64()
			watermark = d.i64()
		})
	if err != nil {
		return 0, 0, err
	}
	return lag, watermark, nil
}

// FlushKey drains the key's pending write set on the node.
func (s *RemoteStore) FlushKey(key uint64) (bool, error) {
	var flushed bool
	err := s.roundTrip(opFlushKey,
		func(b []byte) []byte { return appendU64(b, key) },
		func(d *decoder) { flushed = d.u8() == 1 })
	if err != nil {
		return false, err
	}
	return flushed, nil
}

// TopK asks the node for its best k owned rows.
func (s *RemoteStore) TopK(ctx context.Context, query []float32, k int) ([]store.ScoredRow, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []store.ScoredRow
	var countErr error
	err := s.roundTrip(opTopK,
		func(b []byte) []byte {
			b = appendU32(b, uint32(k))
			b = appendU32(b, uint32(len(query)))
			return appendF32s(b, query)
		},
		func(d *decoder) {
			count := int(d.u32())
			if count < 0 || count > k {
				countErr = fmt.Errorf("topk count %d > k %d", count, k)
				d.take(len(d.b) - d.off) // drain; the stream itself is aligned
				return
			}
			out = make([]store.ScoredRow, count)
			for i := range out {
				out[i].Key = d.u64()
				out[i].Version = d.u64()
				out[i].Score = d.f32()
			}
		})
	if err != nil {
		return nil, err
	}
	if countErr != nil {
		return nil, &store.ShardUnavailableError{Addr: s.addr, Err: countErr}
	}
	return out, nil
}

// Ping round-trips an empty frame (health checks, tests).
func (s *RemoteStore) Ping() error {
	return s.roundTrip(opPing, nil, nil)
}

// Close drains and closes the connection pool.
func (s *RemoteStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	for {
		select {
		case cc := <-s.pool:
			cc.Close()
		default:
			return nil
		}
	}
}
