package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire protocol (DESIGN §5h). Every message — request and response — is
// one frame:
//
//	request:  [u32 len][u8 op]    [payload, len-1 bytes]
//	response: [u32 len][u8 status][payload, len-1 bytes]
//
// len counts everything after itself (the op/status byte plus payload).
// All integers are little-endian; float32 travels as its IEEE-754 bits.
// status 0 is success; status 1 carries a UTF-8 error message as the
// payload (an application error — the connection stays usable).
const (
	opInfo      = 0x01 // () → rows u64, dim u32, coordinated u8, shard u32, of u32
	opReadRow   = 0x02 // key u64 → version u64, row dim·f32
	opGather    = 0x03 // count u32, keys count·u64 → versions count·u64, rows count·dim·f32
	opScatter   = 0x04 // step u64, count u32, {key u64, stateDelta f32, delta dim·f32}… → ()
	opVersion   = 0x05 // key u64 → version u64
	opWatermark = 0x06 // () → watermark u64 (two's-complement i64)
	opStaleness = 0x07 // key u64 → lag u64, watermark u64 (two's-complement i64s)
	opFlushKey  = 0x08 // key u64 → flushed u8
	opTopK      = 0x09 // k u32, dim u32, query dim·f32 → count u32, {key u64, version u64, score f32}…
	opPing      = 0x0a // () → ()

	statusOK  = 0x00
	statusErr = 0x01
)

// maxFrame bounds a single frame; anything larger is a protocol error.
// 64 MiB comfortably fits the largest legitimate message (a multi-
// thousand-row gather response) while keeping a corrupt length prefix
// from allocating unbounded memory.
const maxFrame = 64 << 20

// writeFrame sends one frame: the length prefix, the op/status byte, and
// the payload.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("shard: frame too large (%d bytes)", len(payload)+1)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame and returns its op/status byte and payload.
func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	return readFrameInto(r, nil)
}

// readFrameInto is readFrame with a reusable payload buffer: the frame is
// decoded into buf when its capacity suffices, else into a fresh
// allocation. Callers retain the returned payload's backing array as the
// next call's buf — on a connection that exchanges similarly-sized frames
// the allocation happens once, not per frame (gather responses are the
// protocol's largest and hottest payloads).
func readFrameInto(r io.Reader, buf []byte) (op byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, buf, fmt.Errorf("shard: bad frame length %d", n)
	}
	op = hdr[4]
	need := int(n) - 1
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	payload = buf[:need]
	if need > 0 {
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, payload, err
		}
	}
	return op, payload, nil
}

// ---------------------------------------------------------------------
// Payload encoding: an append-style encoder and a cursor decoder. The
// decoder latches its first error so call sites chain reads and check
// once at the end.

func appendU8(b []byte, v byte) []byte { return append(b, v) }
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }
func appendF32(b []byte, v float32) []byte {
	return appendU32(b, math.Float32bits(v))
}

// appendF32s bulk-encodes a float slice: one capacity reservation, then
// direct stores — the per-element append bookkeeping is measurable on
// gather-sized payloads (thousands of rows × dim floats).
func appendF32s(b []byte, vs []float32) []byte {
	off := len(b)
	b = growBytes(b, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[off+4*i:], math.Float32bits(v))
	}
	return b
}

// appendU64s bulk-encodes a u64 slice (gather version vectors).
func appendU64s(b []byte, vs []uint64) []byte {
	off := len(b)
	b = growBytes(b, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[off+8*i:], v)
	}
	return b
}

// growBytes extends b by n writable bytes, reallocating at most once.
func growBytes(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*(len(b)+n))
	copy(nb, b)
	return nb
}

// decoder walks a payload; the first short read poisons every later call.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("shard: truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.b))
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u8() byte {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *decoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *decoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) f32() float32 { return math.Float32frombits(d.u32()) }

// f32s decodes n float32s into dst (len n).
func (d *decoder) f32s(dst []float32) {
	s := d.take(4 * len(dst))
	if s == nil {
		return
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(s[4*i:]))
	}
}

// u64s decodes n uint64s into dst (len n).
func (d *decoder) u64s(dst []uint64) {
	s := d.take(8 * len(dst))
	if s == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(s[8*i:])
	}
}

// finish reports the latched error plus any trailing garbage.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("shard: %d trailing bytes in payload", len(d.b)-d.off)
	}
	return nil
}
