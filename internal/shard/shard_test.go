package shard_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"frugal/internal/comm"
	"frugal/internal/shard"
	"frugal/internal/store"
)

// testInit fills rows deterministically by global key so every shard of
// one table initialises identically.
func testInit(key uint64, row []float32) {
	for j := range row {
		row[j] = float32(key)*0.001 + float32(j)*0.01
	}
}

func TestKeyMapPartition(t *testing.T) {
	const rows, of = 1000, 3
	maps := make([]*shard.KeyMap, of)
	for i := range maps {
		km, err := shard.NewKeyMap(rows, i, of)
		if err != nil {
			t.Fatal(err)
		}
		maps[i] = km
	}
	var owned int64
	for _, km := range maps {
		owned += km.Owned()
	}
	if owned != rows {
		t.Fatalf("shards own %d rows in total, want %d", owned, rows)
	}
	for key := uint64(0); key < rows; key++ {
		want := comm.Owner(key, of)
		for i, km := range maps {
			local, ok := km.Local(key)
			if (i == want) != ok {
				t.Fatalf("key %d: shard %d Local ok=%v, owner is %d", key, i, ok, want)
			}
			if ok && km.Global(local) != key {
				t.Fatalf("key %d: Global(Local) = %d", key, km.Global(local))
			}
		}
	}
	if _, err := shard.NewKeyMap(rows, 3, 3); err == nil {
		t.Fatal("shard index == of accepted")
	}
	if _, err := shard.NewKeyMap(0, 0, 1); err == nil {
		t.Fatal("zero rows accepted")
	}
}

// newCluster builds `of` coordinated nodes, serves each over loopback
// TCP, dials them, and composes the sharded store.
func newCluster(t *testing.T, rows int64, dim, of, trainers int) *store.ShardedStore {
	t.Helper()
	shards := make([]store.Store, of)
	for i := 0; i < of; i++ {
		node, err := shard.NewNode(shard.NodeOptions{
			Rows: rows, Dim: dim, Shard: i, Of: of,
			Trainers: trainers, Init: testInit,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		srv, err := shard.NewServer("127.0.0.1:0", node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		rs, err := shard.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if got, total := rs.Shard(); got != i || total != of {
			t.Fatalf("shard %d reports topology %d/%d", i, got, total)
		}
		shards[i] = rs
	}
	st, err := store.NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestRemoteMatchesLocal drives the same operations through a local
// single-shard node and through the wire, and demands identical results —
// the conformance test for the whole client/server/codec stack.
func TestRemoteMatchesLocal(t *testing.T) {
	const rows, dim = 64, 8
	local, err := shard.NewNode(shard.NodeOptions{Rows: rows, Dim: dim, Trainers: 1, Init: testInit})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	remoteNode, err := shard.NewNode(shard.NodeOptions{Rows: rows, Dim: dim, Trainers: 1, Init: testInit})
	if err != nil {
		t.Fatal(err)
	}
	defer remoteNode.Close()
	srv, err := shard.NewServer("127.0.0.1:0", remoteNode)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := shard.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if remote.Rows() != rows || remote.Dim() != dim || !remote.Coordinated() {
		t.Fatalf("Info = %d×%d coordinated=%v", remote.Rows(), remote.Dim(), remote.Coordinated())
	}
	if err := remote.Ping(); err != nil {
		t.Fatal(err)
	}

	// Identical scatters on both sides.
	for step := int64(0); step < 3; step++ {
		for _, st := range []store.Store{local, remote} {
			upd := make([]store.KeyDelta, 0, 4)
			for i := 0; i < 4; i++ {
				delta := make([]float32, dim)
				delta[0] = float32(step+1) * 0.5
				upd = append(upd, store.KeyDelta{Key: uint64(step*4 + int64(i)), Delta: delta})
			}
			if err := st.Scatter(step, upd); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitWatermark(t, local, 2)
	waitWatermark(t, remote, 2)

	a, b := make([]float32, dim), make([]float32, dim)
	for key := uint64(0); key < rows; key++ {
		if _, err := local.FlushKey(key); err != nil {
			t.Fatal(err)
		}
		if _, err := remote.FlushKey(key); err != nil {
			t.Fatal(err)
		}
		va, err := local.ReadRow(key, a)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := remote.ReadRow(key, b)
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Fatalf("key %d: versions %d vs %d", key, va, vb)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %d: rows diverge at %d: %v vs %v", key, j, a[j], b[j])
			}
		}
		lagA, wmA, err := local.RowStaleness(key)
		if err != nil {
			t.Fatal(err)
		}
		lagB, wmB, err := remote.RowStaleness(key)
		if err != nil {
			t.Fatal(err)
		}
		if lagA != lagB || wmA != wmB {
			t.Fatalf("key %d: staleness (%d,%d) vs (%d,%d)", key, lagA, wmA, lagB, wmB)
		}
	}

	// Batched gather equals per-key reads.
	keys := []uint64{3, 1, 4, 1, 5, 9}
	gath := make([]float32, len(keys)*dim)
	vers := make([]uint64, len(keys))
	if err := remote.Gather(keys, gath, vers); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, err := local.ReadRow(k, a)
		if err != nil {
			t.Fatal(err)
		}
		if vers[i] != v {
			t.Fatalf("gather version[%d] = %d, want %d", i, vers[i], v)
		}
		for j := range a {
			if gath[i*dim+j] != a[j] {
				t.Fatalf("gather key %d diverges at %d", k, j)
			}
		}
	}

	// Top-K parity (same slab contents on both sides).
	query := make([]float32, dim)
	query[0] = 1
	top1, err := local.TopK(context.Background(), query, 5)
	if err != nil {
		t.Fatal(err)
	}
	top2, err := remote.TopK(context.Background(), query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != len(top2) {
		t.Fatalf("topk lengths %d vs %d", len(top1), len(top2))
	}
	for i := range top1 {
		if top1[i] != top2[i] {
			t.Fatalf("topk[%d] = %+v vs %+v", i, top1[i], top2[i])
		}
	}
}

// TestApplicationErrorKeepsConnection pins the error taxonomy: an
// application-level rejection comes back as a plain error and the
// connection keeps working; only transport failures are
// *store.ShardUnavailableError.
func TestApplicationErrorKeepsConnection(t *testing.T) {
	node, err := shard.NewNode(shard.NodeOptions{Rows: 10, Dim: 4, Shard: 0, Of: 2, Trainers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv, err := shard.NewServer("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rs, err := shard.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Find a key shard 0 of 2 does not own.
	foreign := uint64(0)
	for ; comm.Owner(foreign, 2) == 0; foreign++ {
	}
	dst := make([]float32, 4)
	_, err = rs.ReadRow(foreign, dst)
	if err == nil {
		t.Fatal("read of unowned key succeeded")
	}
	var down *store.ShardUnavailableError
	if errors.As(err, &down) {
		t.Fatalf("application error arrived as ShardUnavailableError: %v", err)
	}
	if !strings.Contains(err.Error(), "not owned") {
		t.Fatalf("error %q does not explain ownership", err)
	}
	// Same connection still serves owned keys.
	owned := uint64(0)
	for ; comm.Owner(owned, 2) != 0; owned++ {
	}
	if _, err := rs.ReadRow(owned, dst); err != nil {
		t.Fatalf("read after application error: %v", err)
	}
}

func TestServerDownIsShardUnavailable(t *testing.T) {
	node, err := shard.NewNode(shard.NodeOptions{Rows: 10, Dim: 4, Trainers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv, err := shard.NewServer("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := shard.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	srv.Close()

	dst := make([]float32, 4)
	_, err = rs.ReadRow(1, dst)
	var down *store.ShardUnavailableError
	if !errors.As(err, &down) {
		t.Fatalf("read against a closed server = %v, want *store.ShardUnavailableError", err)
	}
	if down.Addr != rs.Addr() {
		t.Fatalf("error names %q, want %q", down.Addr, rs.Addr())
	}
	// The watermark surface cannot error: it degrades to -1.
	if wm := rs.Watermark(); wm != -1 {
		t.Fatalf("watermark of unreachable shard = %d, want -1", wm)
	}
}

// TestShardedClusterGather proves routing: a cross-shard gather equals
// the per-key global expectation, and scatters land on the owning shard.
func TestShardedClusterGather(t *testing.T) {
	const rows, dim, of = 200, 6, 3
	st := newCluster(t, rows, dim, of, 1)

	keys := make([]uint64, 0, rows)
	for k := uint64(0); k < rows; k++ {
		keys = append(keys, k)
	}
	got := make([]float32, len(keys)*dim)
	if err := st.Gather(keys, got, nil); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, dim)
	for _, k := range keys {
		testInit(k, want)
		for j := 0; j < dim; j++ {
			if got[int(k)*dim+j] != want[j] {
				t.Fatalf("key %d dim %d = %v, want %v", k, j, got[int(k)*dim+j], want[j])
			}
		}
	}

	// A scatter through the composed store must reach the owner: bump one
	// key per shard and read back through the single-key path.
	upd := make([]store.KeyDelta, 3)
	for i := range upd {
		delta := make([]float32, dim)
		delta[0] = 100
		upd[i] = store.KeyDelta{Key: uint64(i), Delta: delta}
	}
	if err := st.Scatter(0, upd); err != nil {
		t.Fatal(err)
	}
	waitWatermark(t, st, 0)
	row := make([]float32, dim)
	for i := range upd {
		if _, err := st.FlushKey(uint64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ReadRow(uint64(i), row); err != nil {
			t.Fatal(err)
		}
		testInit(uint64(i), want)
		if math.Abs(float64(row[0]-(want[0]+100))) > 1e-6 {
			t.Fatalf("key %d row[0] = %v, want %v", i, row[0], want[0]+100)
		}
	}
}

// TestShardedWatermarkIsMin proves the composition rule: the global
// watermark is the minimum over shards, and the empty scatter is the
// commit signal that lets a shard without updates advance.
func TestShardedWatermarkIsMin(t *testing.T) {
	const rows, dim, of = 90, 4, 3
	nodes := make([]store.Store, of)
	for i := range nodes {
		n, err := shard.NewNode(shard.NodeOptions{Rows: rows, Dim: dim, Shard: i, Of: of, Trainers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	st, err := store.NewSharded(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Watermark() != -1 {
		t.Fatalf("initial watermark = %d, want -1", st.Watermark())
	}

	// Commit step 0 on shards 0 and 1 only: the composed minimum must
	// stay -1 because shard 2 has not committed.
	for i := 0; i < 2; i++ {
		if err := nodes[i].Scatter(0, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitWatermark(t, nodes[0], 0)
	waitWatermark(t, nodes[1], 0)
	time.Sleep(3 * wmTTL()) // let the compose cache expire
	if wm := st.Watermark(); wm != -1 {
		t.Fatalf("watermark with a lagging shard = %d, want -1", wm)
	}

	// The empty scatter through the composed store reaches every shard —
	// including shard 2, whose batch had no keys — and the minimum rises.
	if err := st.Scatter(0, nil); err != nil {
		t.Fatal(err)
	}
	waitWatermark(t, st, 0)
}

// wmTTL mirrors store.wmCacheTTL without exporting it.
func wmTTL() time.Duration { return 2 * time.Millisecond }

func waitWatermark(t *testing.T, st store.Store, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for st.Watermark() < want {
		if time.Now().After(deadline) {
			t.Fatalf("watermark stuck at %d, want ≥ %d", st.Watermark(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedTopKMergesShards checks the fan-out merge: the composed
// top-K over 3 shards equals a global scan's best k.
func TestShardedTopKMergesShards(t *testing.T) {
	const rows, dim, of = 120, 4, 3
	st := newCluster(t, rows, dim, of, 1)

	query := make([]float32, dim)
	query[0], query[1] = 1, 0.5
	got, err := st.TopK(context.Background(), query, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("topk returned %d results, want 7", len(got))
	}
	// Brute-force expectation over the init pattern.
	type kv struct {
		key   uint64
		score float32
	}
	all := make([]kv, rows)
	row := make([]float32, dim)
	for k := uint64(0); k < rows; k++ {
		testInit(k, row)
		var s float32
		for j := range row {
			s += row[j] * query[j]
		}
		all[k] = kv{k, s}
	}
	for i := range got {
		best := all[0]
		for _, c := range all[1:] {
			if c.score > best.score || (c.score == best.score && c.key < best.key) {
				best = c
			}
		}
		if got[i].Key != best.key {
			t.Fatalf("topk[%d] = key %d (%v), want key %d (%v)", i, got[i].Key, got[i].Score, best.key, best.score)
		}
		for j := range all {
			if all[j].key == best.key {
				all[j].score = float32(math.Inf(-1))
			}
		}
	}
}

// TestUncoordinatedNode covers the write-through mode training slabs
// use: no gate, immediate applies, degenerate watermark surface.
func TestUncoordinatedNode(t *testing.T) {
	node, err := shard.NewNode(shard.NodeOptions{Rows: 16, Dim: 4, Uncoordinated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.Coordinated() {
		t.Fatal("uncoordinated node reports coordinated")
	}
	delta := []float32{1, 2, 3, 4}
	if err := node.Scatter(0, []store.KeyDelta{{Key: 2, Delta: delta}}); err != nil {
		t.Fatal(err)
	}
	row := make([]float32, 4)
	v, err := node.ReadRow(2, row)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version after one write-through = %d, want 1", v)
	}
	for j := range row {
		if row[j] != delta[j] {
			t.Fatalf("row = %v, want %v", row, delta)
		}
	}
	if wm := node.Watermark(); wm != -1 {
		t.Fatalf("uncoordinated watermark = %d, want -1", wm)
	}
	lag, wm, err := node.RowStaleness(2)
	if err != nil || lag != 0 || wm != -1 {
		t.Fatalf("RowStaleness = (%d, %d, %v), want (0, -1, nil)", lag, wm, err)
	}
}

// TestTrainerOverCluster runs the store-level training loop against a
// wire-connected 3-shard cluster and checks convergence plus watermark
// progress — the end-to-end smoke test `frugal-shard -connect` scripts.
func TestTrainerOverCluster(t *testing.T) {
	const rows, dim, steps = 48, 4, 60
	st := newCluster(t, rows, dim, 1, 1)
	if err := store.RunTrainer(context.Background(), st, store.TrainerConfig{
		Steps: steps, LR: 0.5, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	waitWatermark(t, st, steps-1)
	// Full sweeps with lr 0.5 for 60 steps pull every row essentially
	// onto its attractor.
	row := make([]float32, dim)
	for k := uint64(0); k < rows; k++ {
		if _, err := st.FlushKey(k); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ReadRow(k, row); err != nil {
			t.Fatal(err)
		}
	}
	var fromZero float32
	for j := range row {
		fromZero += row[j] * row[j]
	}
	if fromZero < 0.5 {
		t.Fatalf("trained row is near zero (%v) — updates did not land", row)
	}
}
