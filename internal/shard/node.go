package shard

import (
	"context"
	"fmt"

	"frugal/internal/p2f"
	"frugal/internal/pq"
	"frugal/internal/runtime"
	"frugal/internal/store"
)

// NodeOptions configures one shard node.
type NodeOptions struct {
	// Rows is the GLOBAL table height; the node allocates only the rows
	// its shard owns. Required.
	Rows int64
	// Dim is the embedding dimension. Required.
	Dim int
	// Shard/Of place this node in the consistent-hash topology (shard
	// index in [0, Of)). Of defaults to 1.
	Shard, Of int
	// Flushers is the node's P²F flusher-pool size (default 4).
	Flushers int
	// Trainers is how many trainer clients scatter each step; the node's
	// watermark advances once all of them have committed it (default 1).
	Trainers int
	// MaxStep sizes the priority queue; Scatter rejects steps ≥ MaxStep
	// (default 1<<16).
	MaxStep int64
	// Uncoordinated skips the P²F controller: scatters apply write-through
	// and the watermark surface degenerates (-1, trivially fresh reads).
	Uncoordinated bool
	// Init fills owned rows at construction, addressed by GLOBAL key so
	// every shard of one table initialises identically (nil = zeros).
	Init func(key uint64, row []float32)
}

// Node is one shard of the parameter table: a compact host slab holding
// only the owned rows plus this shard's own P²F controller. It
// implements store.Store addressed by GLOBAL key — the same interface
// the coordinator composes and the TCP server exports — so local tests
// can exercise a node without the wire in between.
type Node struct {
	km   *KeyMap
	host *runtime.Host
	ctrl *p2f.Controller // nil when uncoordinated
	max  int64
}

// emptyTrace is the node controller's TraceSource: a shard node has no
// batch trace of its own (prefetch priorities come from trainer-side
// traces, which never reach the store tier), so the prefetch loop exits
// immediately and every pending write set sits at +Inf priority — pure
// deferred flushing, drained continuously by the flusher pool.
type emptyTrace struct{}

func (emptyTrace) Next() ([]uint64, bool) { return nil, false }

// NewNode builds the shard's key map, its compact slab, and (unless
// Uncoordinated) its controller, and starts the flusher pool.
func NewNode(opt NodeOptions) (*Node, error) {
	if opt.Of <= 0 {
		opt.Of = 1
	}
	km, err := NewKeyMap(opt.Rows, opt.Shard, opt.Of)
	if err != nil {
		return nil, err
	}
	if opt.Dim <= 0 {
		return nil, fmt.Errorf("shard: dim must be positive, got %d", opt.Dim)
	}
	// A shard that owns zero keys (tiny tables) still needs a non-empty
	// slab; the padding row is never read or written.
	slabRows := km.Owned()
	if slabRows == 0 {
		slabRows = 1
	}
	host, err := runtime.NewHost(slabRows, opt.Dim)
	if err != nil {
		return nil, err
	}
	if opt.Init != nil {
		host.Init(func(local uint64, row []float32) {
			if int64(local) < km.Owned() {
				opt.Init(km.Global(int64(local)), row)
			}
		})
	}
	n := &Node{km: km, host: host}
	if opt.Uncoordinated {
		return n, nil
	}
	maxStep := opt.MaxStep
	if maxStep <= 0 {
		maxStep = 1 << 16
	}
	flushers := opt.Flushers
	if flushers <= 0 {
		flushers = 4
	}
	ctrl, err := p2f.NewController(p2f.Options{
		MaxStep:      maxStep,
		FlushThreads: flushers,
		Trainers:     opt.Trainers,
		Source:       emptyTrace{},
		// The sink remaps the directory's global key onto the compact
		// slab. Unowned keys cannot reach it: Scatter validates ownership.
		Sink: p2f.FlushSinkFunc(func(key uint64, updates []pq.Update) {
			if local, ok := km.Local(key); ok {
				host.ApplyUpdates(uint64(local), updates)
			}
		}),
	})
	if err != nil {
		return nil, err
	}
	ctrl.Start()
	n.ctrl = ctrl
	n.max = maxStep
	return n, nil
}

// KeyMap exposes the node's placement (server Info, tests).
func (n *Node) KeyMap() *KeyMap { return n.km }

// Host exposes the compact slab (tests).
func (n *Node) Host() *runtime.Host { return n.host }

// Rows returns the GLOBAL table height.
func (n *Node) Rows() int64 { return n.km.GlobalRows() }

// Dim returns the embedding dimension.
func (n *Node) Dim() int { return n.host.Dim() }

// Coordinated reports whether the node runs a P²F gate.
func (n *Node) Coordinated() bool { return n.ctrl != nil }

// local resolves a global key to the owned slab index.
func (n *Node) local(key uint64) (int64, error) {
	local, ok := n.km.Local(key)
	if !ok {
		if key >= uint64(n.km.GlobalRows()) {
			return 0, fmt.Errorf("shard %d/%d: key %d out of range (rows %d)",
				n.km.Shard(), n.km.Of(), key, n.km.GlobalRows())
		}
		return 0, fmt.Errorf("shard %d/%d: key %d not owned here", n.km.Shard(), n.km.Of(), key)
	}
	return local, nil
}

// ReadRow reads an owned row by global key.
func (n *Node) ReadRow(key uint64, dst []float32) (uint64, error) {
	local, err := n.local(key)
	if err != nil {
		return 0, err
	}
	return n.host.ReadRow(uint64(local), dst), nil
}

// Gather batch-reads owned rows by global key.
func (n *Node) Gather(keys []uint64, dst []float32, versions []uint64) error {
	d := n.host.Dim()
	if len(dst) != len(keys)*d {
		return fmt.Errorf("shard: gather dst %d floats, want %d", len(dst), len(keys)*d)
	}
	if versions != nil && len(versions) != len(keys) {
		return fmt.Errorf("shard: gather versions %d, want %d", len(versions), len(keys))
	}
	for i, k := range keys {
		local, err := n.local(k)
		if err != nil {
			return err
		}
		v := n.host.ReadRow(uint64(local), dst[i*d:(i+1)*d])
		if versions != nil {
			versions[i] = v
		}
	}
	return nil
}

// Scatter commits one step's updates for this shard. Every key must be
// owned here. An empty updates slice is the pure commit signal that lets
// the shard's watermark advance on steps whose batch missed it.
func (n *Node) Scatter(step int64, updates []KeyDelta) error {
	return n.scatter(step, updates)
}

// KeyDelta aliases store.KeyDelta so the package reads naturally.
type KeyDelta = store.KeyDelta

func (n *Node) scatter(step int64, updates []KeyDelta) error {
	if n.ctrl != nil && step >= n.max {
		return fmt.Errorf("shard: step %d ≥ MaxStep %d", step, n.max)
	}
	locals := make([]int64, len(updates))
	for i, u := range updates {
		local, err := n.local(u.Key)
		if err != nil {
			return err
		}
		if len(u.Delta) != n.host.Dim() {
			return fmt.Errorf("shard: delta length %d, want dim %d", len(u.Delta), n.host.Dim())
		}
		locals[i] = local
	}
	if n.ctrl == nil {
		for i, u := range updates {
			n.host.ApplyDelta(uint64(locals[i]), u.Delta, u.StateDelta)
		}
		return nil
	}
	kd := make([]p2f.KeyDelta, len(updates))
	for i, u := range updates {
		// The directory is keyed by GLOBAL key (staleness probes and flush
		// hooks speak global keys); the sink remaps to the slab.
		kd[i] = p2f.KeyDelta{Key: u.Key, Delta: u.Delta, StateDelta: u.StateDelta}
	}
	n.ctrl.CommitStep(step, kd)
	return nil
}

// Version returns an owned row's update counter.
func (n *Node) Version(key uint64) (uint64, error) {
	local, err := n.local(key)
	if err != nil {
		return 0, err
	}
	return n.host.Version(uint64(local)), nil
}

// Watermark returns this shard's committed-step watermark.
func (n *Node) Watermark() int64 {
	if n.ctrl == nil {
		return -1
	}
	return n.ctrl.Watermark()
}

// RowStaleness reports an owned key's flush lag against this shard's
// watermark.
func (n *Node) RowStaleness(key uint64) (lag, watermark int64, err error) {
	if _, err := n.local(key); err != nil {
		return 0, 0, err
	}
	if n.ctrl == nil {
		return 0, -1, nil
	}
	lag, watermark = n.ctrl.RowStaleness(key)
	return lag, watermark, nil
}

// FlushKey drains an owned key's pending write set.
func (n *Node) FlushKey(key uint64) (bool, error) {
	if _, err := n.local(key); err != nil {
		return false, err
	}
	if n.ctrl == nil {
		return false, nil
	}
	return n.ctrl.FlushKeyShared(key), nil
}

// AddFlushHook registers an index-maintenance hook; hooks receive GLOBAL
// keys.
func (n *Node) AddFlushHook(fn func(key uint64)) {
	if n.ctrl != nil {
		n.ctrl.AddFlushHook(fn)
	}
}

// TopK scans only the rows this shard owns and returns the best k by dot
// product, keyed globally.
func (n *Node) TopK(ctx context.Context, query []float32, k int) ([]store.ScoredRow, error) {
	if n.km.Owned() == 0 {
		return nil, nil
	}
	return store.SlabTopK(ctx, n.host, query, k, n.km.Global)
}

// Close drains pending flushes and stops the controller.
func (n *Node) Close() error {
	if n.ctrl != nil {
		n.ctrl.DrainAll()
		n.ctrl.Stop()
	}
	return nil
}
