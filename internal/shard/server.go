package shard

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"frugal/internal/store"
)

// Server exports a store.Store (normally a *Node) over the wire
// protocol: one TCP listener, one goroutine per connection, one
// request/response frame pair per operation.
type Server struct {
	st     store.Store
	info   serverInfo
	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// serverInfo is the topology the server reports on opInfo.
type serverInfo struct {
	shard, of int
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and starts serving st.
func NewServer(addr string, st store.Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln, st), nil
}

// ServeListener starts serving st on an existing listener.
func ServeListener(ln net.Listener, st store.Store) *Server {
	s := &Server{st: st, ln: ln, conns: make(map[net.Conn]struct{})}
	if n, ok := st.(*Node); ok {
		s.info = serverInfo{shard: n.KeyMap().Shard(), of: n.KeyMap().Of()}
	} else {
		s.info = serverInfo{shard: 0, of: 1}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (resolves ":0" ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs open connections, and waits for the
// per-connection goroutines. The underlying store is not closed — it
// belongs to the caller.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	// Per-connection scratch, reused across requests: the response buffer,
	// the request frame buffer, and the gather working set all settle at
	// their high-water sizes instead of reallocating per frame.
	sc := &connScratch{row: make([]float32, s.st.Dim())}
	var (
		reqBuf  []byte
		payload []byte
	)
	for {
		op, req, err := readFrameInto(br, reqBuf)
		if cap(req) > cap(reqBuf) {
			reqBuf = req[:0]
		}
		if err != nil {
			return // EOF or torn frame: drop the connection
		}
		payload, err = s.handle(op, req, sc, payload[:0])
		if err != nil {
			if werr := writeFrame(bw, statusErr, []byte(err.Error())); werr != nil {
				return
			}
		} else {
			if werr := writeFrame(bw, statusOK, payload); werr != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// connScratch is one connection's reusable working set. Connections are
// served by a single goroutine, so the slices never alias across
// concurrent requests.
type connScratch struct {
	row  []float32 // one row (opReadRow)
	keys []uint64  // gather key batch
	rows []float32 // gather row batch / topk query
	vers []uint64  // gather version batch
}

// growKeys returns a length-n key slice backed by the scratch.
func (sc *connScratch) growKeys(n int) []uint64 {
	if cap(sc.keys) < n {
		sc.keys = make([]uint64, n)
	}
	return sc.keys[:n]
}

// growRows returns a length-n float slice backed by the scratch.
func (sc *connScratch) growRows(n int) []float32 {
	if cap(sc.rows) < n {
		sc.rows = make([]float32, n)
	}
	return sc.rows[:n]
}

// growVers returns a length-n version slice backed by the scratch.
func (sc *connScratch) growVers(n int) []uint64 {
	if cap(sc.vers) < n {
		sc.vers = make([]uint64, n)
	}
	return sc.vers[:n]
}

// handle dispatches one request and appends the response payload to out.
func (s *Server) handle(op byte, req []byte, sc *connScratch, out []byte) ([]byte, error) {
	d := &decoder{b: req}
	switch op {
	case opPing:
		if err := d.finish(); err != nil {
			return nil, err
		}
		return out, nil

	case opInfo:
		if err := d.finish(); err != nil {
			return nil, err
		}
		out = appendU64(out, uint64(s.st.Rows()))
		out = appendU32(out, uint32(s.st.Dim()))
		coord := byte(0)
		if s.st.Coordinated() {
			coord = 1
		}
		out = appendU8(out, coord)
		out = appendU32(out, uint32(s.info.shard))
		out = appendU32(out, uint32(s.info.of))
		return out, nil

	case opReadRow:
		key := d.u64()
		if err := d.finish(); err != nil {
			return nil, err
		}
		v, err := s.st.ReadRow(key, sc.row)
		if err != nil {
			return nil, err
		}
		out = appendU64(out, v)
		return appendF32s(out, sc.row), nil

	case opGather:
		count := int(d.u32())
		if count > maxFrame/8 {
			return nil, fmt.Errorf("shard: gather count %d too large", count)
		}
		keys := sc.growKeys(count)
		d.u64s(keys)
		if err := d.finish(); err != nil {
			return nil, err
		}
		dim := s.st.Dim()
		rows := sc.growRows(count * dim)
		vers := sc.growVers(count)
		if err := s.st.Gather(keys, rows, vers); err != nil {
			return nil, err
		}
		out = appendU64s(out, vers)
		return appendF32s(out, rows), nil

	case opScatter:
		step := d.i64()
		count := int(d.u32())
		dim := s.st.Dim()
		if count > maxFrame/(8+4+4*dim) {
			return nil, fmt.Errorf("shard: scatter count %d too large", count)
		}
		updates := make([]store.KeyDelta, count)
		for i := range updates {
			key := d.u64()
			sd := d.f32()
			delta := make([]float32, dim)
			d.f32s(delta)
			updates[i] = store.KeyDelta{Key: key, Delta: delta, StateDelta: sd}
		}
		if err := d.finish(); err != nil {
			return nil, err
		}
		if err := s.st.Scatter(step, updates); err != nil {
			return nil, err
		}
		return out, nil

	case opVersion:
		key := d.u64()
		if err := d.finish(); err != nil {
			return nil, err
		}
		v, err := s.st.Version(key)
		if err != nil {
			return nil, err
		}
		return appendU64(out, v), nil

	case opWatermark:
		if err := d.finish(); err != nil {
			return nil, err
		}
		return appendI64(out, s.st.Watermark()), nil

	case opStaleness:
		key := d.u64()
		if err := d.finish(); err != nil {
			return nil, err
		}
		lag, wm, err := s.st.RowStaleness(key)
		if err != nil {
			return nil, err
		}
		out = appendI64(out, lag)
		return appendI64(out, wm), nil

	case opFlushKey:
		key := d.u64()
		if err := d.finish(); err != nil {
			return nil, err
		}
		flushed, err := s.st.FlushKey(key)
		if err != nil {
			return nil, err
		}
		b := byte(0)
		if flushed {
			b = 1
		}
		return appendU8(out, b), nil

	case opTopK:
		k := int(d.u32())
		qdim := int(d.u32())
		if qdim != s.st.Dim() {
			d.finish() // drain for a clean error either way
			return nil, fmt.Errorf("shard: query dim %d, want %d", qdim, s.st.Dim())
		}
		query := sc.growRows(qdim)
		d.f32s(query)
		if err := d.finish(); err != nil {
			return nil, err
		}
		res, err := s.st.TopK(context.Background(), query, k)
		if err != nil {
			return nil, err
		}
		out = appendU32(out, uint32(len(res)))
		for _, r := range res {
			out = appendU64(out, r.Key)
			out = appendU64(out, r.Version)
			out = appendF32(out, r.Score)
		}
		return out, nil

	default:
		return nil, fmt.Errorf("shard: unknown op 0x%02x", op)
	}
}
