// Package shard implements the distributed side of the parameter store:
// a shard node that owns one consistent-hash partition of the embedding
// table (compact host slab + its own P²F controller), a TCP server
// speaking a length-prefixed binary protocol, and RemoteStore, the
// client that presents a remote node through the store.Store interface.
package shard

import (
	"fmt"

	"frugal/internal/comm"
)

// KeyMap is the dense placement of one shard's owned keys: global key k
// is owned by shard comm.Owner(k, of), and owned keys pack into local
// slab indices 0..Owned()-1 in ascending global-key order. Both
// directions are precomputed — the forward map costs 8 bytes per global
// row, which buys branch-free O(1) routing on the gather/scatter path.
type KeyMap struct {
	shard, of  int
	globalRows int64
	toLocal    []int64  // global key → local index, -1 when not owned
	toGlobal   []uint64 // local index → global key
}

// NewKeyMap enumerates the placement for shard `shard` of `of`.
func NewKeyMap(globalRows int64, shard, of int) (*KeyMap, error) {
	if of <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", of)
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("shard: index %d out of range for %d shards", shard, of)
	}
	if globalRows <= 0 {
		return nil, fmt.Errorf("shard: global rows must be positive, got %d", globalRows)
	}
	m := &KeyMap{
		shard:      shard,
		of:         of,
		globalRows: globalRows,
		toLocal:    make([]int64, globalRows),
	}
	for k := int64(0); k < globalRows; k++ {
		if comm.Owner(uint64(k), of) == shard {
			m.toLocal[k] = int64(len(m.toGlobal))
			m.toGlobal = append(m.toGlobal, uint64(k))
		} else {
			m.toLocal[k] = -1
		}
	}
	return m, nil
}

// Shard returns this shard's index.
func (m *KeyMap) Shard() int { return m.shard }

// Of returns the total shard count.
func (m *KeyMap) Of() int { return m.of }

// GlobalRows returns the global table height.
func (m *KeyMap) GlobalRows() int64 { return m.globalRows }

// Owned returns how many rows this shard holds.
func (m *KeyMap) Owned() int64 { return int64(len(m.toGlobal)) }

// Local maps a global key to its local slab index; ok=false when the key
// is out of range or owned by another shard.
func (m *KeyMap) Local(key uint64) (int64, bool) {
	if key >= uint64(m.globalRows) {
		return 0, false
	}
	l := m.toLocal[key]
	return l, l >= 0
}

// Global maps a local slab index back to its global key.
func (m *KeyMap) Global(local int64) uint64 { return m.toGlobal[local] }
