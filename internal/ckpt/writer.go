package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"frugal/internal/runtime"
)

// Prober is the slice of the P²F controller the writer needs: the
// committed-step watermark and the per-key one-sided staleness probe.
// *p2f.Controller implements it.
type Prober interface {
	Watermark() int64
	RowStaleness(key uint64) (lag, watermark int64)
}

// Options shapes a Writer.
type Options struct {
	// Dir is the log directory. It is created if missing and must not
	// already hold a log (resume is a reader-side operation: reconstruct,
	// then start a fresh log).
	Dir string
	// SweepInterval is the sweep cadence — how often dirty keys are
	// drained into a sealed segment (default 50ms). This, times the
	// primary's step rate, is the follower's steady-state staleness.
	SweepInterval time.Duration
	// SweepRecords triggers an early sweep when this many keys are dirty
	// (default 8192), bounding segment size under write bursts.
	SweepRecords int
	// CompactEvery folds the log into a fresh base after this many sealed
	// segments (default 16). 0 disables compaction (tests); folded
	// segments and superseded bases are deleted.
	CompactEvery int
}

func (o *Options) normalize() error {
	if o.Dir == "" {
		return fmt.Errorf("ckpt: Options.Dir is required")
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = 50 * time.Millisecond
	}
	if o.SweepRecords <= 0 {
		o.SweepRecords = 8192
	}
	if o.CompactEvery < 0 {
		return fmt.Errorf("ckpt: CompactEvery must be ≥ 0, got %d", o.CompactEvery)
	}
	return nil
}

// WriterStats is a point-in-time snapshot of the log's accounting.
type WriterStats struct {
	Segments    int64 `json:"segments"`    // sealed segments written
	Records     int64 `json:"records"`     // row images logged
	Compactions int64 `json:"compactions"` // bases folded
	BaseSeq     int64 `json:"baseSeq"`     // highest base's segment seq
	DirtyDepth  int64 `json:"dirtyDepth"`  // keys awaiting the next sweep
}

// Writer cuts the delta-checkpoint log off a live training job: OnFlush
// (registered as a p2f flush hook) marks keys dirty, and a background
// sweeper drains the dirty set into watermark-tagged segments, compacting
// periodically. The step loop never blocks on the log — the hook is one
// mutex-guarded map insert, and all IO happens on the sweeper goroutine.
type Writer struct {
	host *runtime.Host
	pr   Prober
	opt  Options

	mu    sync.Mutex
	dirty map[uint64]struct{}
	spare map[uint64]struct{} // swap target, so sweeps never block the hook for long

	kick chan struct{} // size-triggered early sweep

	seq         int64 // last sealed segment seq (sweeper goroutine only)
	baseSeq     int64
	lastWM      int64 // watermark of the last sealed segment
	sinceFold   int   // sealed segments since the last compaction
	segments    atomic.Int64
	records     atomic.Int64
	compactions atomic.Int64

	// Compaction state, built lazily at the first fold: a shadow replica
	// of the reconstructed slab plus its meta vectors.
	shadow *runtime.Host
	meta   Meta

	// Reusable sweep buffers: steady-state sweeps allocate only the
	// segment file machinery.
	keys     []uint64
	safeBuf  []int64
	deferBuf []uint64
	rowBuf   []float32
	recBuf   []byte
	img      runtime.RowImage // tiered capture target (aliases rowBuf)

	stop     chan struct{}
	done     chan struct{}
	syncOnce sync.Once
	syncC    chan chan struct{}

	errMu sync.Mutex
	err   error // first background IO error, surfaced by Close
}

// NewWriter starts a delta-checkpoint log for host: writes the initial
// base (base-0000000000) and launches the sweeper. Register OnFlush with
// the job's controller (p2f.Controller.AddFlushHook) before training
// starts, and Close the writer after the run's epilogue has drained —
// the final sweep then captures the exact final state.
func NewWriter(host *runtime.Host, pr Prober, opt Options) (*Writer, error) {
	if host == nil {
		return nil, fmt.Errorf("ckpt: nil host")
	}
	if pr == nil {
		return nil, fmt.Errorf("ckpt: nil prober (the log needs the P²F watermark surface)")
	}
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	ents, err := os.ReadDir(opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(ents) != 0 {
		return nil, fmt.Errorf("ckpt: %s is not empty — a log already lives there", opt.Dir)
	}
	w := &Writer{
		host:   host,
		pr:     pr,
		opt:    opt,
		dirty:  make(map[uint64]struct{}, opt.SweepRecords),
		spare:  make(map[uint64]struct{}, opt.SweepRecords),
		kick:   make(chan struct{}, 1),
		lastWM: -1,
		rowBuf: make([]float32, host.Dim()),
		recBuf: make([]byte, maxRecordSize(host.Dim(), host.HasOptState())),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	w.img = runtime.RowImage{Row: w.rowBuf, Q: make([]int8, host.Dim())}
	if host.Tiered() {
		// A demotion requantizes a row's authoritative bytes without
		// bumping its version, outside the flush hook's sight. The move
		// hook re-marks the key dirty so the next sweep re-captures it —
		// without this, the log's last image of a moved row would hold the
		// pre-move representation and reconstruction would drift.
		host.SetTierMoveHook(w.OnFlush)
	}
	if err := w.writeBase(0, host, Meta{Watermark: -1}); err != nil {
		return nil, err
	}
	go w.sweeper()
	return w, nil
}

// OnFlush marks a key dirty. It is the p2f flush-hook target: called with
// the g-entry mutex held, so it must stay this cheap (one map insert).
func (w *Writer) OnFlush(key uint64) {
	w.mu.Lock()
	w.dirty[key] = struct{}{}
	n := len(w.dirty)
	w.mu.Unlock()
	if n >= w.opt.SweepRecords {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.opt.Dir }

// Stats snapshots the log accounting.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	depth := int64(len(w.dirty))
	w.mu.Unlock()
	return WriterStats{
		Segments:    w.segments.Load(),
		Records:     w.records.Load(),
		Compactions: w.compactions.Load(),
		BaseSeq:     atomic.LoadInt64(&w.baseSeq),
		DirtyDepth:  depth,
	}
}

// Sync forces one sweep now (tests and demos; normal operation relies on
// the interval). It blocks until the segment — if any keys were dirty —
// is sealed.
func (w *Writer) Sync() error {
	select {
	case <-w.done:
		return w.firstErr()
	default:
	}
	ack := make(chan struct{})
	select {
	case w.syncReq() <- ack:
		<-ack
	case <-w.done:
	}
	return w.firstErr()
}

func (w *Writer) syncReq() chan chan struct{} {
	w.syncOnce.Do(func() { w.syncC = make(chan chan struct{}) })
	return w.syncC
}

// Close performs the final sweep (call it after training's epilogue has
// drained every pending update to host memory), seals the last segment,
// stops the sweeper, and returns the first background IO error, if any.
func (w *Writer) Close() error {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
	return w.firstErr()
}

func (w *Writer) firstErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

func (w *Writer) setErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// sweeper is the single background goroutine: interval- and
// size-triggered sweeps, inline compaction, and the final sweep at stop.
func (w *Writer) sweeper() {
	defer close(w.done)
	t := time.NewTicker(w.opt.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			w.sweep() // final: the epilogue's drain-flushed keys
			return
		case <-t.C:
			w.sweep()
		case <-w.kick:
			w.sweep()
		case ack := <-w.syncReq():
			w.sweep()
			close(ack)
		}
	}
}

// sweep drains the dirty set into one sealed segment. The watermark is
// loaded before any row is probed or copied — one-sided safe: everything
// the segment claims was flushed by `wm`, and rows read after can only
// be fresher.
func (w *Writer) sweep() {
	wm := w.pr.Watermark()
	w.mu.Lock()
	w.dirty, w.spare = w.spare, w.dirty
	swept := w.spare
	w.mu.Unlock()
	if len(swept) == 0 && wm == w.lastWM {
		return // nothing flushed, nothing committed: no segment
	}
	w.keys = w.keys[:0]
	for k := range swept {
		w.keys = append(w.keys, k)
	}
	clear(swept)

	deferred, err := w.writeSegment(w.seq+1, wm, w.keys)
	if err != nil {
		w.setErr(err)
		return
	}
	if len(deferred) > 0 {
		// Keys whose staleness probe could bound nothing yet (a committed
		// write still pending with the watermark barely started) carry to
		// the next sweep — by then the flush has landed and the record
		// gets an honest SafeStep.
		w.mu.Lock()
		for _, k := range deferred {
			w.dirty[k] = struct{}{}
		}
		w.mu.Unlock()
	}
	w.seq++
	w.lastWM = wm
	w.segments.Add(1)
	w.records.Add(int64(len(w.keys) - len(deferred)))
	w.sinceFold++
	if w.opt.CompactEvery > 0 && w.sinceFold >= w.opt.CompactEvery {
		if err := w.compact(); err != nil {
			w.setErr(err)
			return
		}
		w.sinceFold = 0
	}
}

// writeSegment captures one record per key and seals the segment via
// rename. Per record: the one-sided staleness probe first, then the
// locked (row, state, version) snapshot — the copy can only be fresher
// than the probe promised. Keys whose probe cannot bound anything yet
// are returned as deferred (the caller re-marks them dirty) rather than
// logged with a lying SafeStep; the returned slice is reused across
// sweeps.
func (w *Writer) writeSegment(seq, wm int64, keys []uint64) (deferred []uint64, err error) {
	// Partition before the header is written, so its record count is
	// exact. SafeStep = watermark − lag is the step through which the
	// image is guaranteed complete; early in a run residual lag can
	// exceed the watermark, driving it to −1 — which is exactly the
	// Meta sidecar's "never written" sentinel, so the logged row would
	// read back as never-logged. Two sub-cases:
	//   - watermark == −1: nothing is committed anywhere, so "every
	//     update committed at step ≤ 0 is present" is vacuously true —
	//     clamp to 0.
	//   - watermark ≥ 0: a committed write (step 0) is still pending,
	//     so *no* SafeStep ≥ 0 would be honest. Defer the key to the
	//     next sweep, which sees the flush land and bounds it properly.
	w.deferBuf = w.deferBuf[:0]
	w.safeBuf = w.safeBuf[:0]
	kept := keys[:0] // filtered in place: write index never passes read index
	for _, key := range keys {
		lag, kwm := w.pr.RowStaleness(key)
		safe := kwm - lag
		if safe < 0 {
			if kwm >= 0 {
				w.deferBuf = append(w.deferBuf, key)
				continue
			}
			safe = 0
		}
		kept = append(kept, key)
		w.safeBuf = append(w.safeBuf, safe)
	}

	open := filepath.Join(w.opt.Dir, fmt.Sprintf("seg-%010d.open", seq))
	f, err := os.Create(open)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	hasState := w.host.HasOptState()
	tiered := w.host.Tiered()
	hdr := segHeader{
		Magic: segMagic, Version: fmtVer,
		Dim: int32(w.host.Dim()), Records: int64(len(kept)), Watermark: wm,
	}
	if tiered {
		hdr.Version = fmtVerTiered
	}
	if hasState {
		hdr.HasState = 1
	}
	err = binary.Write(bw, binary.LittleEndian, hdr)
	rec := Record{Row: w.rowBuf, Q: w.img.Q}
	for i, key := range kept {
		if err != nil {
			break
		}
		rec.Key = key
		rec.SafeStep = w.safeBuf[i]
		if tiered {
			// One critical section captures version, state and the row in
			// its current tier — a cold row's codes verbatim.
			w.host.CaptureRow(key, &w.img)
			rec.Version, rec.State = w.img.Version, w.img.State
			rec.Cold, rec.Scale, rec.Zero = w.img.Cold, w.img.Scale, w.img.Zero
			n := encodeRecordTiered(w.recBuf, hasState, &rec)
			_, err = bw.Write(w.recBuf[:n])
			continue
		}
		rec.Version, rec.State = w.host.ReadRowState(key, rec.Row)
		encodeRecord(w.recBuf, hasState, &rec)
		_, err = bw.Write(w.recBuf[:recordSize(int(hdr.Dim), hasState)])
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(open)
		return nil, fmt.Errorf("ckpt: segment %d: %w", seq, err)
	}
	return w.deferBuf, os.Rename(open, filepath.Join(w.opt.Dir, fmt.Sprintf("seg-%010d.dlog", seq)))
}

// compact folds every sealed segment since the last base into a fresh
// base checkpoint, then deletes the folded segments and the superseded
// base. Runs inline on the sweeper goroutine — off the step loop, which
// never waits for it.
func (w *Writer) compact() error {
	if w.shadow == nil {
		f, err := os.Open(filepath.Join(w.opt.Dir, fmt.Sprintf("base-%010d.ckpt", w.baseSeq)))
		if err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		w.shadow, err = runtime.LoadHost(f)
		f.Close()
		if err != nil {
			return err
		}
		rows := w.shadow.Rows()
		w.meta = Meta{Watermark: -1, SafeStep: make([]int64, rows), Versions: make([]uint64, rows)}
		for i := range w.meta.SafeStep {
			w.meta.SafeStep[i] = -1
		}
	}
	from, to := w.baseSeq+1, w.seq
	for seq := from; seq <= to; seq++ {
		path := filepath.Join(w.opt.Dir, fmt.Sprintf("seg-%010d.dlog", seq))
		segWM, err := ReadSegment(path, w.shadow.Dim(), func(rec *Record) error {
			img := rec.Image()
			w.shadow.RestoreRow(rec.Key, &img)
			if rec.SafeStep > w.meta.SafeStep[rec.Key] {
				w.meta.SafeStep[rec.Key] = rec.SafeStep
			}
			if rec.Version > w.meta.Versions[rec.Key] {
				w.meta.Versions[rec.Key] = rec.Version
			}
			return nil
		})
		if err != nil {
			return err
		}
		if segWM > w.meta.Watermark {
			w.meta.Watermark = segWM
		}
	}
	if err := w.writeBase(to, w.shadow, w.meta); err != nil {
		return err
	}
	oldBase := w.baseSeq
	atomic.StoreInt64(&w.baseSeq, to)
	w.compactions.Add(1)
	// Cleanup is best-effort: stray files never confuse ListDir, which
	// keys on the highest base.
	os.Remove(filepath.Join(w.opt.Dir, fmt.Sprintf("base-%010d.ckpt", oldBase)))
	os.Remove(filepath.Join(w.opt.Dir, fmt.Sprintf("base-%010d.meta", oldBase)))
	for seq := from; seq <= to; seq++ {
		os.Remove(filepath.Join(w.opt.Dir, fmt.Sprintf("seg-%010d.dlog", seq)))
	}
	return nil
}

// writeBase writes a base checkpoint (slab via the runtime codec) and
// its sidecar, both sealed by rename.
func (w *Writer) writeBase(seq int64, host *runtime.Host, m Meta) error {
	base := filepath.Join(w.opt.Dir, fmt.Sprintf("base-%010d.ckpt", seq))
	tmp := base + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	err = host.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: base %d: %w", seq, err)
	}
	if m.SafeStep != nil {
		if err := WriteMeta(filepath.Join(w.opt.Dir, fmt.Sprintf("base-%010d.meta", seq)), m); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	return os.Rename(tmp, base)
}
