package ckpt_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"frugal/internal/ckpt"
	"frugal/internal/runtime"
)

// fakeProber stands in for the P²F controller: a settable watermark and
// per-key staleness, with the controller's (lag, watermark) contract.
type fakeProber struct {
	mu  sync.Mutex
	wm  int64
	lag map[uint64]int64
}

func (p *fakeProber) Watermark() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wm
}

func (p *fakeProber) RowStaleness(key uint64) (int64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lag[key], p.wm
}

func (p *fakeProber) set(wm int64, lag map[uint64]int64) {
	p.mu.Lock()
	p.wm = wm
	p.lag = lag
	p.mu.Unlock()
}

func newHost(t *testing.T, rows int64, dim int) *runtime.Host {
	t.Helper()
	h, err := runtime.NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// touch writes a distinguishable row image at the given version and
// marks it dirty in the log.
func touch(h *runtime.Host, w *ckpt.Writer, key, ver uint64) {
	row := make([]float32, h.Dim())
	for i := range row {
		row[i] = float32(key)*100 + float32(ver) + float32(i)
	}
	h.SetRow(key, row, ver, 0)
	w.OnFlush(key)
}

// newTestWriter opens a log with a sweep interval long enough that only
// explicit Sync calls cut segments.
func newTestWriter(t *testing.T, h *runtime.Host, pr ckpt.Prober, dir string, compactEvery int) *ckpt.Writer {
	t.Helper()
	w, err := ckpt.NewWriter(h, pr, ckpt.Options{
		Dir: dir, SweepInterval: time.Hour, CompactEvery: compactEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func reconstructEqual(t *testing.T, dir string, h *runtime.Host) {
	t.Helper()
	rec, err := ckpt.Reconstruct(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := h.Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("reconstructed slab differs from the live host")
	}
}

func TestWriterLogRoundtrip(t *testing.T) {
	dir := t.TempDir()
	h := newHost(t, 16, 4)
	pr := &fakeProber{}
	w := newTestWriter(t, h, pr, dir, 0)
	defer w.Close()

	st, err := ckpt.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseSeq != 0 || len(st.Segments) != 0 || st.MetaPath != "" {
		t.Fatalf("fresh log: %+v", st)
	}

	for k := uint64(1); k <= 5; k++ {
		touch(h, w, k, k+1)
	}
	pr.set(7, map[uint64]int64{3: 2})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	st, err = ckpt.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Segments) != 1 || st.Segments[0].Seq != 1 {
		t.Fatalf("after one sweep: %+v", st)
	}
	seen := map[uint64]ckpt.Record{}
	wm, err := ckpt.ReadSegment(st.Segments[0].Path, h.Dim(), func(rec *ckpt.Record) error {
		c := *rec
		c.Row = append([]float32(nil), rec.Row...)
		seen[rec.Key] = c
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wm != 7 {
		t.Fatalf("segment watermark %d, want 7", wm)
	}
	if len(seen) != 5 {
		t.Fatalf("segment holds %d records, want 5", len(seen))
	}
	for k := uint64(1); k <= 5; k++ {
		rec, ok := seen[k]
		if !ok {
			t.Fatalf("key %d missing from segment", k)
		}
		if rec.Version != k+1 {
			t.Fatalf("key %d version %d, want %d", k, rec.Version, k+1)
		}
		wantSafe := int64(7)
		if k == 3 {
			wantSafe = 5 // wm 7 − lag 2
		}
		if rec.SafeStep != wantSafe {
			t.Fatalf("key %d safe step %d, want %d", k, rec.SafeStep, wantSafe)
		}
	}

	// A second sweep only carries what changed since the first.
	touch(h, w, 2, 10)
	pr.set(9, nil)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	reconstructEqual(t, dir, h)

	ws := w.Stats()
	if ws.Segments != 2 || ws.Records != 6 || ws.Compactions != 0 || ws.BaseSeq != 0 {
		t.Fatalf("stats %+v", ws)
	}
}

func TestWriterCompaction(t *testing.T) {
	dir := t.TempDir()
	h := newHost(t, 8, 4)
	pr := &fakeProber{}
	w := newTestWriter(t, h, pr, dir, 2)
	defer w.Close()

	touch(h, w, 1, 4)
	pr.set(3, map[uint64]int64{1: 1})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	touch(h, w, 2, 6)
	pr.set(5, nil)
	if err := w.Sync(); err != nil { // second segment triggers the fold
		t.Fatal(err)
	}

	st, err := ckpt.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseSeq != 2 || len(st.Segments) != 0 {
		t.Fatalf("after compaction: %+v", st)
	}
	if st.MetaPath == "" {
		t.Fatal("compacted base has no sidecar")
	}
	if _, err := os.Stat(filepath.Join(dir, "base-0000000000.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("superseded base survives: %v", err)
	}
	m, err := ckpt.ReadMeta(st.MetaPath, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Watermark != 5 {
		t.Fatalf("sidecar watermark %d, want 5", m.Watermark)
	}
	if m.SafeStep[1] != 2 || m.SafeStep[2] != 5 {
		t.Fatalf("sidecar safe steps %v", m.SafeStep)
	}
	if m.Versions[1] != 4 || m.Versions[2] != 6 {
		t.Fatalf("sidecar versions %v", m.Versions)
	}
	reconstructEqual(t, dir, h)

	// The log keeps rolling on top of the new base.
	touch(h, w, 3, 2)
	pr.set(6, nil)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err = ckpt.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseSeq != 2 || len(st.Segments) != 1 || st.Segments[0].Seq != 3 {
		t.Fatalf("post-compaction tail: %+v", st)
	}
	reconstructEqual(t, dir, h)
	if ws := w.Stats(); ws.Compactions != 1 || ws.BaseSeq != 2 {
		t.Fatalf("stats %+v", ws)
	}
}

func TestSalvageTornTail(t *testing.T) {
	dir := t.TempDir()
	h := newHost(t, 8, 4)
	pr := &fakeProber{}
	w := newTestWriter(t, h, pr, dir, 0)
	for k := uint64(0); k < 5; k++ {
		touch(h, w, k, 3)
	}
	pr.set(2, nil)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay a crashed sweep: the sealed segment's bytes, torn
	// mid-record, under the .open temp name.
	sealed, err := os.ReadFile(filepath.Join(dir, "seg-0000000001.dlog"))
	if err != nil {
		t.Fatal(err)
	}
	open := filepath.Join(dir, "seg-0000000002.open")
	if err := os.WriteFile(open, sealed[:len(sealed)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ckpt.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.OpenPath != open {
		t.Fatalf("ListDir open path %q, want %q", st.OpenPath, open)
	}
	var got int64
	n, err := ckpt.Salvage(open, h.Dim(), func(*ckpt.Record) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || got != 4 {
		t.Fatalf("salvaged %d records (callback saw %d), want the 4-record complete prefix", n, got)
	}

	// Not even a full header: nothing to salvage, and no error — the
	// crash simply lost that sweep.
	if err := os.WriteFile(open, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := ckpt.Salvage(open, h.Dim(), func(*ckpt.Record) error { return nil }); err != nil || n != 0 {
		t.Fatalf("header-less salvage: %d records, err %v", n, err)
	}
}

func TestListDirRejectsSegmentGap(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"base-0000000000.ckpt", "seg-0000000002.dlog"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ckpt.ListDir(dir); err == nil {
		t.Fatal("segment gap (base 0, first segment 2) accepted")
	}
}

func TestNewWriterRefusesExistingLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "leftover"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	h := newHost(t, 4, 2)
	if _, err := ckpt.NewWriter(h, &fakeProber{}, ckpt.Options{Dir: dir}); err == nil {
		t.Fatal("writer opened over a non-empty directory")
	}
}

func TestMetaRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base-0000000004.meta")
	in := ckpt.Meta{
		Watermark: 42,
		SafeStep:  []int64{-1, 3, 42},
		Versions:  []uint64{0, 7, 99},
	}
	if err := ckpt.WriteMeta(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ckpt.ReadMeta(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Watermark != in.Watermark {
		t.Fatalf("watermark %d, want %d", out.Watermark, in.Watermark)
	}
	for i := range in.SafeStep {
		if out.SafeStep[i] != in.SafeStep[i] || out.Versions[i] != in.Versions[i] {
			t.Fatalf("row %d roundtrip: %+v", i, out)
		}
	}
	if _, err := ckpt.ReadMeta(path, 5); err == nil {
		t.Fatal("sidecar row-count mismatch accepted")
	}
}

// TestWriterEarlyRunHighLag covers the SafeStep corner at the start of a
// run, where residual lag can exceed the watermark and kwm − lag would
// reach −1 — the Meta sidecar's "never written" sentinel, making a
// logged row indistinguishable from one the log never captured.
func TestWriterEarlyRunHighLag(t *testing.T) {
	dir := t.TempDir()
	h := newHost(t, 8, 4)
	pr := &fakeProber{}
	w := newTestWriter(t, h, pr, dir, 0)
	defer w.Close()

	// Nothing committed anywhere (watermark −1): the record's claim
	// "every update committed at step ≤ 0 is present" is vacuously true,
	// so the writer clamps to 0 instead of emitting the sentinel.
	touch(h, w, 1, 1)
	pr.set(-1, nil)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	recs := readAllRecords(t, dir, h.Dim())
	rec, ok := recs[1]
	if !ok {
		t.Fatal("key 1 missing from the first segment")
	}
	if rec.SafeStep != 0 {
		t.Fatalf("key 1 SafeStep %d, want 0 (clamped)", rec.SafeStep)
	}

	// Watermark 2 with residual lag 5: a committed write is still
	// pending and no SafeStep ≥ 0 would be honest, so the key must be
	// deferred — absent from this segment, carried to the next sweep.
	touch(h, w, 2, 1)
	pr.set(2, map[uint64]int64{2: 5})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if recs = readAllRecords(t, dir, h.Dim()); len(recs) != 1 {
		t.Fatalf("deferred key was logged anyway: %d records on disk", len(recs))
	}

	// The flush lands (lag drops below the watermark): the carried-over
	// key is captured with an honest bound, with no further OnFlush.
	pr.set(3, map[uint64]int64{2: 1})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	recs = readAllRecords(t, dir, h.Dim())
	rec, ok = recs[2]
	if !ok {
		t.Fatal("deferred key never resurfaced on the next sweep")
	}
	if rec.SafeStep != 2 {
		t.Fatalf("key 2 SafeStep %d, want 2 (wm 3 − lag 1)", rec.SafeStep)
	}
	for _, r := range recs {
		if r.SafeStep < 0 {
			t.Fatalf("record with SafeStep %d escaped to disk", r.SafeStep)
		}
	}
}

// readAllRecords folds every sealed segment's records by key
// (last-writer-wins, like the follower).
func readAllRecords(t *testing.T, dir string, dim int) map[uint64]ckpt.Record {
	t.Helper()
	st, err := ckpt.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[uint64]ckpt.Record{}
	for _, seg := range st.Segments {
		_, err := ckpt.ReadSegment(seg.Path, dim, func(rec *ckpt.Record) error {
			c := *rec
			c.Row = append([]float32(nil), rec.Row...)
			out[rec.Key] = c
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// newTieredHost builds a small tiered host with a distinguishable fill.
func newTieredHost(t *testing.T, rows int64, dim int, hotFrac float64) *runtime.Host {
	t.Helper()
	h, err := runtime.NewTieredHost(rows, dim, hotFrac)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(k uint64, row []float32) {
		for i := range row {
			row[i] = float32(k)*0.5 + float32(i)*0.125
		}
	})
	return h
}

func TestTieredWriterLogRoundtrip(t *testing.T) {
	dir := t.TempDir()
	h := newTieredHost(t, 64, 8, 0.1) // 6 hot slots: rows 0–5
	pr := &fakeProber{}
	pr.set(5, nil)
	w := newTestWriter(t, h, pr, dir, 0)

	touch(h, w, 2, 1)  // hot row
	touch(h, w, 40, 1) // cold row: requantized by SetRow
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// Drive a tier move. The promotion (and the demotion it forces) must
	// re-mark the moved keys dirty via the tier-move hook — no explicit
	// OnFlush here — or the final images would hold pre-move bytes.
	for i := 0; i < 4 && h.TierStats().Promotions == 0; i++ {
		h.TierMaintain(40, false)
	}
	if h.TierStats().Promotions == 0 || h.TierStats().Demotions == 0 {
		t.Fatal("tier move did not happen; test drives nothing")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	reconstructEqual(t, dir, h)

	// The log must carry the cold tier natively: tier-tagged records with
	// verbatim codes, not blanket float32 images.
	var sawCold, sawHot bool
	st, err := ckpt.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range st.Segments {
		if _, err := ckpt.ReadSegment(seg.Path, h.Dim(), func(rec *ckpt.Record) error {
			if rec.Cold {
				sawCold = true
			} else {
				sawHot = true
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !sawCold || !sawHot {
		t.Fatalf("tiered log should hold both record flavors (cold=%v hot=%v)", sawCold, sawHot)
	}
}

func TestTieredWriterCompaction(t *testing.T) {
	dir := t.TempDir()
	h := newTieredHost(t, 48, 8, 0.125) // 6 hot slots
	pr := &fakeProber{}
	w := newTestWriter(t, h, pr, dir, 2)

	ver := uint64(0)
	for sweep := 0; sweep < 5; sweep++ {
		pr.set(int64(sweep+1), nil)
		ver++
		touch(h, w, uint64(sweep), ver)    // hot head keys
		touch(h, w, uint64(20+sweep), ver) // cold tail keys
		h.TierMaintain(uint64(20+sweep), false)
		h.TierMaintain(uint64(20+sweep), false)
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Compactions == 0 {
		t.Fatal("compaction never ran")
	}
	reconstructEqual(t, dir, h)
}
