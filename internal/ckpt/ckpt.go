// Package ckpt is Frugal's incremental (delta) checkpoint layer: a
// continuously written log of row images cut off the P²F flush stream,
// periodically compacted into the ordinary runtime checkpoint format.
// It removes the stop-the-world checkpoint: the step loop never pauses,
// because the log rides the flush hook (a cheap dirty-set insert) and a
// background sweeper does all the IO.
//
// # Log layout
//
// A log directory holds full checkpoints ("bases") and delta segments:
//
//	base-0000000000.ckpt    the initial slab (runtime checkpoint codec)
//	base-0000000000.meta    sidecar: per-row safe-step + version vectors
//	seg-0000000001.dlog     delta segment 1 (sealed)
//	seg-0000000002.dlog     delta segment 2 (sealed)
//	...
//	base-0000000016.ckpt    a compaction: bases 0..0 + segments 1..16 folded
//
// A reader reconstructs the slab by loading the highest-numbered base
// and replaying every higher-numbered segment in order. Segments are
// written to a .open temp name and renamed at seal, so a visible .dlog
// is always complete; a crash can leave at most one .open file, whose
// complete record prefix Salvage recovers (follower promotion).
//
// # Segments
//
// One segment is one sweep of the dirty set: every key flushed to host
// memory since the previous sweep, recorded as a full row image (key,
// version, safe step, optimizer state, row). Full images — not deltas —
// make replay idempotent and last-writer-wins, which is what lets
// compaction and tail-salvage be simple.
//
// Each record's safe step is the one-sided staleness guarantee
// transported from the primary: the image contains every update of that
// key committed at gate step ≤ SafeStep (p2f.Controller.RowStaleness
// semantics, probed in the same sweep that copies the row). Each
// segment's header carries the primary's committed-step watermark at
// sweep time; a follower that has applied through segment n reports that
// watermark, and per-key staleness = watermark − SafeStep.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"frugal/internal/runtime"
	"frugal/internal/tensor"
)

// Segment and sidecar magics. The base slab itself reuses the runtime
// checkpoint codec (and its own magic) unchanged.
//
// Segment format 2 is cut when the primary's host is tiered: each record
// carries a tier tag, and a cold row's payload is its verbatim quantized
// representation — (scale, zero) plus dim int8 codes, a quarter of the
// float32 image — with the dequantized Row still materialized on read so
// format-1 consumers of the Record see what they always saw. Verbatim
// codes are what make tiered reconstruction bit-identical: no
// dequantize→requantize round trip on either side of the log.
const (
	segMagic     = uint32(0xD17A5E60)
	metaMagic    = uint32(0xD17A5E61)
	fmtVer       = uint32(1)
	fmtVerTiered = uint32(2)
)

// Tier tags in a format-2 record.
const (
	recTagCold = byte(0)
	recTagHot  = byte(1)
)

// segHeader opens every delta segment. Records — the count is fixed at
// sweep time — follow immediately; there is no trailer, so a complete
// prefix of a crashed write is still parseable.
type segHeader struct {
	Magic     uint32
	Version   uint32
	Dim       int32
	HasState  int32
	Records   int64
	Watermark int64 // primary committed-step watermark at sweep time
}

// Record is one logged row image. Row always holds the full-precision
// view (dequantized for a cold record); Cold, Scale, Zero and Q carry
// the verbatim quantized representation when the record came from a
// tiered host's cold tier (format 2 only).
type Record struct {
	Key      uint64
	Version  uint64
	SafeStep int64 // image contains every update committed at step ≤ SafeStep
	State    float32
	Row      []float32
	Cold     bool
	Scale    float32
	Zero     float32
	Q        []int8
}

// Image adapts the record to the runtime's tier-aware restore surface.
// The returned image aliases the record's buffers, which ReadSegment
// reuses — consume it before the next record.
func (rec *Record) Image() runtime.RowImage {
	return runtime.RowImage{
		Version: rec.Version, State: rec.State,
		Cold: rec.Cold, Scale: rec.Scale, Zero: rec.Zero,
		Row: rec.Row, Q: rec.Q,
	}
}

// recordSize is the on-disk size of one format-1 record for dimension
// dim.
func recordSize(dim int, hasState bool) int {
	n := 8 + 8 + 8 + 4*dim
	if hasState {
		n += 4
	}
	return n
}

// recordFixed is the size of a record's tag-inclusive fixed prefix in
// format 2; the payload (4·dim hot, 8+dim cold) follows.
func recordFixed(hasState bool) int {
	if hasState {
		return 8 + 8 + 8 + 4 + 1
	}
	return 8 + 8 + 8 + 1
}

// maxRecordSize sizes a scratch buffer that fits any record of either
// format.
func maxRecordSize(dim int, hasState bool) int {
	payload := 4 * dim
	if 8+dim > payload {
		payload = 8 + dim
	}
	return recordFixed(hasState) + payload
}

// SegmentInfo describes one sealed segment found in a log directory.
type SegmentInfo struct {
	Seq  int64
	Path string
}

// DirState is what ListDir finds: the highest base and every sealed
// segment numbered above it, in replay order.
type DirState struct {
	BaseSeq  int64
	BasePath string
	MetaPath string // "" when the base has no sidecar
	Segments []SegmentInfo
	// OpenPath is the crashed sweep's temp file, if one exists ("" —
	// the common case — otherwise). Only Salvage reads it.
	OpenPath string
}

// ListDir scans a log directory: the highest-numbered base plus every
// sealed segment above it, sorted for replay.
func ListDir(dir string) (DirState, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return DirState{}, fmt.Errorf("ckpt: %w", err)
	}
	st := DirState{BaseSeq: -1}
	var segs []SegmentInfo
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "base-") && strings.HasSuffix(name, ".ckpt"):
			seq, err := parseSeq(name, "base-", ".ckpt")
			if err != nil {
				return DirState{}, err
			}
			if seq > st.BaseSeq {
				st.BaseSeq = seq
				st.BasePath = filepath.Join(dir, name)
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".dlog"):
			seq, err := parseSeq(name, "seg-", ".dlog")
			if err != nil {
				return DirState{}, err
			}
			segs = append(segs, SegmentInfo{Seq: seq, Path: filepath.Join(dir, name)})
		case strings.HasSuffix(name, ".open"):
			st.OpenPath = filepath.Join(dir, name)
		}
	}
	if st.BaseSeq < 0 {
		return DirState{}, fmt.Errorf("ckpt: no base checkpoint in %s", dir)
	}
	if meta := strings.TrimSuffix(st.BasePath, ".ckpt") + ".meta"; fileExists(meta) {
		st.MetaPath = meta
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	for _, s := range segs {
		if s.Seq > st.BaseSeq {
			st.Segments = append(st.Segments, s)
		}
	}
	// Replay needs a gapless run: a missing segment (compacted away under
	// a slow reader) means the reader must restart from the newer base.
	want := st.BaseSeq + 1
	for _, s := range st.Segments {
		if s.Seq != want {
			return DirState{}, fmt.Errorf("ckpt: segment gap in %s: have base %d, next segment %d (want %d)",
				dir, st.BaseSeq, s.Seq, want)
		}
		want++
	}
	return st, nil
}

func parseSeq(name, prefix, suffix string) (int64, error) {
	num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseInt(num, 10, 64)
	if err != nil || seq < 0 {
		return 0, fmt.Errorf("ckpt: bad log file name %q", name)
	}
	return seq, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// ReadSegment streams a sealed segment's records through fn (the Record
// and its Row buffer are reused between calls — copy what you keep) and
// returns the segment's watermark tag.
func ReadSegment(path string, dim int, fn func(*Record) error) (watermark int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr, err := readSegHeader(br, dim)
	if err != nil {
		return 0, fmt.Errorf("ckpt: segment %s: %w", filepath.Base(path), err)
	}
	rec := Record{Row: make([]float32, dim), Q: make([]int8, dim)}
	buf := make([]byte, maxRecordSize(dim, hdr.HasState == 1))
	for i := int64(0); i < hdr.Records; i++ {
		if err := readRecord(br, &hdr, buf, &rec); err != nil {
			return 0, fmt.Errorf("ckpt: segment %s: record %d/%d: %w",
				filepath.Base(path), i, hdr.Records, err)
		}
		if err := fn(&rec); err != nil {
			return 0, err
		}
	}
	return hdr.Watermark, nil
}

// Salvage reads the complete record prefix of an unsealed (.open)
// segment — the one file a crashed sweep can leave behind — through fn.
// Truncated trailing bytes are discarded; the count of complete records
// applied is returned. The segment's header watermark is NOT trusted
// (the sweep did not finish), so no watermark is returned.
func Salvage(path string, dim int, fn func(*Record) error) (records int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr, err := readSegHeader(br, dim)
	if err != nil {
		return 0, nil // not even a complete header: nothing to salvage
	}
	rec := Record{Row: make([]float32, dim), Q: make([]int8, dim)}
	buf := make([]byte, maxRecordSize(dim, hdr.HasState == 1))
	for i := int64(0); i < hdr.Records; i++ {
		if err := readRecord(br, &hdr, buf, &rec); err != nil {
			return records, nil // torn tail: keep the complete prefix
		}
		if err := fn(&rec); err != nil {
			return records, err
		}
		records++
	}
	return records, nil
}

func readSegHeader(r io.Reader, dim int) (segHeader, error) {
	var hdr segHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return hdr, fmt.Errorf("header: %w", err)
	}
	if hdr.Magic != segMagic {
		return hdr, fmt.Errorf("not a delta segment (magic %#x)", hdr.Magic)
	}
	if hdr.Version != fmtVer && hdr.Version != fmtVerTiered {
		return hdr, fmt.Errorf("unsupported segment version %d", hdr.Version)
	}
	if int(hdr.Dim) != dim {
		return hdr, fmt.Errorf("segment dim %d, want %d", hdr.Dim, dim)
	}
	if hdr.Records < 0 {
		return hdr, fmt.Errorf("negative record count %d", hdr.Records)
	}
	return hdr, nil
}

func encodeRecord(buf []byte, hasState bool, rec *Record) {
	binary.LittleEndian.PutUint64(buf[0:], rec.Key)
	binary.LittleEndian.PutUint64(buf[8:], rec.Version)
	binary.LittleEndian.PutUint64(buf[16:], uint64(rec.SafeStep))
	off := 24
	if hasState {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(rec.State))
		off += 4
	}
	for i, v := range rec.Row {
		binary.LittleEndian.PutUint32(buf[off+4*i:], math.Float32bits(v))
	}
}

func decodeRecord(buf []byte, hasState bool, rec *Record) {
	rec.Key = binary.LittleEndian.Uint64(buf[0:])
	rec.Version = binary.LittleEndian.Uint64(buf[8:])
	rec.SafeStep = int64(binary.LittleEndian.Uint64(buf[16:]))
	off := 24
	if hasState {
		rec.State = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	} else {
		rec.State = 0
	}
	for i := range rec.Row {
		rec.Row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4*i:]))
	}
}

// encodeRecordTiered lays out a format-2 record and returns its size.
func encodeRecordTiered(buf []byte, hasState bool, rec *Record) int {
	binary.LittleEndian.PutUint64(buf[0:], rec.Key)
	binary.LittleEndian.PutUint64(buf[8:], rec.Version)
	binary.LittleEndian.PutUint64(buf[16:], uint64(rec.SafeStep))
	off := 24
	if hasState {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(rec.State))
		off += 4
	}
	if rec.Cold {
		buf[off] = recTagCold
		off++
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(rec.Scale))
		binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(rec.Zero))
		off += 8
		for i, c := range rec.Q {
			buf[off+i] = byte(c)
		}
		return off + len(rec.Q)
	}
	buf[off] = recTagHot
	off++
	for i, v := range rec.Row {
		binary.LittleEndian.PutUint32(buf[off+4*i:], math.Float32bits(v))
	}
	return off + 4*len(rec.Row)
}

// readRecord streams one record of either format into rec. rec.Row (and,
// for format 2, rec.Q) must be pre-sized to the segment's dim; buf must
// hold maxRecordSize bytes. A short read — including a tear between the
// fixed prefix and the payload — surfaces as an io error.
func readRecord(r io.Reader, hdr *segHeader, buf []byte, rec *Record) error {
	hasState := hdr.HasState == 1
	if hdr.Version == fmtVer {
		n := recordSize(int(hdr.Dim), hasState)
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return err
		}
		decodeRecord(buf[:n], hasState, rec)
		rec.Cold = false
		return nil
	}
	fixed := recordFixed(hasState)
	if _, err := io.ReadFull(r, buf[:fixed]); err != nil {
		return err
	}
	rec.Key = binary.LittleEndian.Uint64(buf[0:])
	rec.Version = binary.LittleEndian.Uint64(buf[8:])
	rec.SafeStep = int64(binary.LittleEndian.Uint64(buf[16:]))
	rec.State = 0
	if hasState {
		rec.State = math.Float32frombits(binary.LittleEndian.Uint32(buf[24:]))
	}
	dim := int(hdr.Dim)
	switch buf[fixed-1] {
	case recTagHot:
		if _, err := io.ReadFull(r, buf[:4*dim]); err != nil {
			return err
		}
		rec.Cold, rec.Scale, rec.Zero = false, 0, 0
		for i := range rec.Row {
			rec.Row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case recTagCold:
		if _, err := io.ReadFull(r, buf[:8+dim]); err != nil {
			return err
		}
		rec.Cold = true
		rec.Scale = math.Float32frombits(binary.LittleEndian.Uint32(buf[0:]))
		rec.Zero = math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))
		for i := 0; i < dim; i++ {
			rec.Q[i] = int8(buf[8+i])
		}
		tensor.DequantizeRow(rec.Q, rec.Scale, rec.Zero, rec.Row)
	default:
		return fmt.Errorf("invalid tier tag %d", buf[fixed-1])
	}
	return nil
}

// Meta is a base checkpoint's sidecar: the per-row replication vectors a
// follower needs that the slab codec does not carry — each row's safe
// step and version, plus the watermark the base is complete through.
type Meta struct {
	Watermark int64
	SafeStep  []int64
	Versions  []uint64
}

// WriteMeta writes a sidecar for `rows` rows.
func WriteMeta(path string, m Meta) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	hdr := struct {
		Magic, Version uint32
		Rows           int64
		Watermark      int64
	}{metaMagic, fmtVer, int64(len(m.SafeStep)), m.Watermark}
	err = binary.Write(bw, binary.LittleEndian, hdr)
	if err == nil {
		err = binary.Write(bw, binary.LittleEndian, m.SafeStep)
	}
	if err == nil {
		err = binary.Write(bw, binary.LittleEndian, m.Versions)
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: meta %s: %w", filepath.Base(path), err)
	}
	return os.Rename(tmp, path)
}

// ReadMeta loads a sidecar written by WriteMeta.
func ReadMeta(path string, rows int64) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr struct {
		Magic, Version uint32
		Rows           int64
		Watermark      int64
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return Meta{}, fmt.Errorf("ckpt: meta header: %w", err)
	}
	if hdr.Magic != metaMagic || hdr.Version != fmtVer {
		return Meta{}, fmt.Errorf("ckpt: %s is not a ckpt sidecar", filepath.Base(path))
	}
	if hdr.Rows != rows {
		return Meta{}, fmt.Errorf("ckpt: sidecar covers %d rows, want %d", hdr.Rows, rows)
	}
	m := Meta{Watermark: hdr.Watermark, SafeStep: make([]int64, rows), Versions: make([]uint64, rows)}
	if err := binary.Read(br, binary.LittleEndian, m.SafeStep); err != nil {
		return Meta{}, fmt.Errorf("ckpt: meta body: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, m.Versions); err != nil {
		return Meta{}, fmt.Errorf("ckpt: meta body: %w", err)
	}
	return m, nil
}

// Reconstruct rebuilds the slab a log directory describes: the highest
// base, with every later sealed segment replayed over it in order. The
// result is bit-identical to Host.Save of the primary at the time of the
// last sweep (after a graceful shutdown: the final state).
func Reconstruct(dir string) (*runtime.Host, error) {
	st, err := ListDir(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(st.BasePath)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	host, err := runtime.LoadHost(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	for _, seg := range st.Segments {
		_, err := ReadSegment(seg.Path, host.Dim(), func(rec *Record) error {
			img := rec.Image()
			host.RestoreRow(rec.Key, &img)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return host, nil
}
