package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{FlusherThreads: 4, GPUs: 2, Steps: 50,
		Crashes: 2, Stalls: 2, Delays: 3, HostFails: 2}
	a := Generate(42, spec)
	b := Generate(42, spec)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\n%s", a, b)
	}
	if a.String() == "" {
		t.Fatal("generated plan rendered empty")
	}
	c := Generate(43, spec)
	if a.String() == c.String() {
		t.Fatalf("different seeds produced identical schedules: %s", a)
	}
}

func TestParseRoundTrip(t *testing.T) {
	plan := Generate(7, GenSpec{FlusherThreads: 3, GPUs: 4, Steps: 30,
		Crashes: 1, Stalls: 2, Delays: 2, HostFails: 1})
	parsed, err := Parse(plan.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Events, plan.Events) {
		t.Fatalf("round trip changed events:\n%v\n%v", plan.Events, parsed.Events)
	}
	if parsed.String() != plan.String() {
		t.Fatalf("round trip changed rendering: %q vs %q", parsed, plan)
	}
}

func TestParseHandWritten(t *testing.T) {
	p, err := Parse(" crash:flusher=0@batch=5; stall:flusher=1@batch=3,dur=2ms ;" +
		"delay:gpu=2@step=10,dur=1ms;hostfail@write=100,count=3;hostfail@write=7")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindFlusherCrash, Target: 0, At: 5},
		{Kind: KindFlusherStall, Target: 1, At: 3, Duration: 2 * time.Millisecond},
		{Kind: KindTrainerDelay, Target: 2, At: 10, Duration: time.Millisecond},
		{Kind: KindHostWriteFail, At: 7, Count: 1},
		{Kind: KindHostWriteFail, At: 100, Count: 3},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("parsed %v, want %v", p.Events, want)
	}
}

func TestParseErrorsAreTyped(t *testing.T) {
	bad := []string{
		"crash:flusher=0",         // no trigger
		"crash@batch=1",           // no target
		"crash:gpu=0@batch=1",     // wrong target name
		"stall:flusher=0@batch=1", // missing dur
		"stall:flusher=0@batch=1,dur=0",
		"delay:gpu=0@step=-1,dur=1ms", // negative step
		"hostfail:flusher=0@write=1",  // target on hostfail
		"hostfail@write=1,count=0",    // bad count
		"explode:flusher=0@batch=1",   // unknown kind
		"crash:flusher=0@batch=zero",  // non-integer
	}
	for _, spec := range bad {
		_, err := Parse(spec)
		if err == nil {
			t.Fatalf("Parse(%q) accepted a malformed spec", spec)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) returned %T, want *ParseError", spec, err)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || !p.Empty() {
		t.Fatalf("empty spec: plan %v, err %v", p, err)
	}
}

func TestInjectorFlusherAndTrainer(t *testing.T) {
	plan, err := Parse("crash:flusher=1@batch=4;stall:flusher=0@batch=2,dur=3ms;" +
		"delay:gpu=1@step=6,dur=500us")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan)
	if act, _ := inj.Flusher(1, 3); act != ActNone {
		t.Fatalf("unscheduled batch fired %v", act)
	}
	if act, _ := inj.Flusher(1, 4); act != ActCrash {
		t.Fatal("scheduled crash did not fire")
	}
	if act, dur := inj.Flusher(0, 2); act != ActStall || dur != 3*time.Millisecond {
		t.Fatalf("stall: got %v/%v", act, dur)
	}
	if d := inj.TrainerDelay(1, 6); d != 500*time.Microsecond {
		t.Fatalf("delay = %v", d)
	}
	if d := inj.TrainerDelay(0, 6); d != 0 {
		t.Fatalf("unscheduled gpu delayed %v", d)
	}
	st := inj.Stats()
	if st.Crashes != 1 || st.Stalls != 1 || st.Delays != 1 || st.Injected != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectorHostWriteWindow(t *testing.T) {
	plan, err := Parse("hostfail@write=2,count=3")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan)
	var fails int
	for i := 0; i < 10; i++ {
		if inj.HostWriteFail() {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("window of 3 failed %d attempts", fails)
	}
	if st := inj.Stats(); st.HostWriteFailures != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	if act, _ := inj.Flusher(0, 1); act != ActNone {
		t.Fatal("nil injector fired")
	}
	if inj.TrainerDelay(0, 0) != 0 || inj.HostWriteFail() {
		t.Fatal("nil injector fired")
	}
	if inj.Stats() != (Stats{}) {
		t.Fatal("nil injector has stats")
	}
}
