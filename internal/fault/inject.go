package fault

import (
	"sync/atomic"
	"time"
)

// Action is the injector's answer on the flusher path.
type Action uint8

// The flusher-path actions.
const (
	// ActNone: no fault fires here.
	ActNone Action = iota
	// ActCrash: the flushing thread must die after redistributing its
	// in-flight batch.
	ActCrash
	// ActStall: the flushing thread must sleep for the returned duration
	// without heartbeating.
	ActStall
)

// trigger keys a scheduled fault by target and ordinal.
type trigger struct {
	target int
	at     int64
}

// window is one [start, end) range of failing host-write ordinals.
type window struct {
	start, end int64
}

// Injector answers deterministic fault queries compiled from a Plan.
// All query methods are safe for concurrent use (the schedule maps are
// read-only after NewInjector; only counters mutate) and nil-safe: a nil
// *Injector injects nothing, which is the runtime's default.
type Injector struct {
	flusher  map[trigger]Event
	trainer  map[trigger]time.Duration
	windows  []window
	writeOrd atomic.Int64

	crashes, stalls, delays, hostFails atomic.Int64
}

// Stats counts faults the injector has fired so far.
type Stats struct {
	// Crashes, Stalls and Delays count fired scheduled events;
	// HostWriteFailures counts individual failed write attempts.
	Crashes, Stalls, Delays, HostWriteFailures int64
	// Injected is the sum of the per-kind counts.
	Injected int64
}

// NewInjector compiles a plan into query maps. An empty plan yields a
// valid injector that never fires; callers that have no plan at all
// should keep a nil *Injector instead.
func NewInjector(p Plan) *Injector {
	i := &Injector{
		flusher: make(map[trigger]Event),
		trainer: make(map[trigger]time.Duration),
	}
	for _, e := range p.Events {
		switch e.Kind {
		case KindFlusherCrash, KindFlusherStall:
			i.flusher[trigger{e.Target, e.At}] = e
		case KindTrainerDelay:
			i.trainer[trigger{e.Target, e.At}] = e.Duration
		case KindHostWriteFail:
			n := e.Count
			if n < 1 {
				n = 1
			}
			i.windows = append(i.windows, window{e.At, e.At + int64(n)})
		}
	}
	return i
}

// Flusher reports the fault, if any, scheduled for flusher slot at its
// batch-th dequeue batch (ordinals count loop iterations from 1 and
// survive respawns, so a plan can re-kill a respawned thread).
func (i *Injector) Flusher(slot int, batch int64) (Action, time.Duration) {
	if i == nil {
		return ActNone, 0
	}
	e, ok := i.flusher[trigger{slot, batch}]
	if !ok {
		return ActNone, 0
	}
	if e.Kind == KindFlusherCrash {
		i.crashes.Add(1)
		return ActCrash, 0
	}
	i.stalls.Add(1)
	return ActStall, e.Duration
}

// TrainerDelay reports the straggler delay, if any, scheduled for the
// GPU at the given training step.
func (i *Injector) TrainerDelay(gpu int, step int64) time.Duration {
	if i == nil {
		return 0
	}
	d, ok := i.trainer[trigger{gpu, step}]
	if !ok {
		return 0
	}
	i.delays.Add(1)
	return d
}

// HostWriteFail consumes one global host-write attempt ordinal and
// reports whether that attempt must fail transiently. The caller retries
// (each retry consumes the next ordinal), so a window of Count failures
// causes exactly Count retries across whichever writers hit it.
func (i *Injector) HostWriteFail() bool {
	if i == nil || len(i.windows) == 0 {
		return false
	}
	n := i.writeOrd.Add(1) - 1
	for _, w := range i.windows {
		if n >= w.start && n < w.end {
			i.hostFails.Add(1)
			return true
		}
	}
	return false
}

// Stats snapshots the fired-fault counters.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	s := Stats{
		Crashes:           i.crashes.Load(),
		Stalls:            i.stalls.Load(),
		Delays:            i.delays.Load(),
		HostWriteFailures: i.hostFails.Load(),
	}
	s.Injected = s.Crashes + s.Stalls + s.Delays + s.HostWriteFailures
	return s
}
