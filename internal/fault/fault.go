// Package fault is Frugal's deterministic fault-injection layer: a
// reproducible FaultPlan (hand-written or generated from a seed) names
// exactly which faults fire where — a flushing thread crashing or
// stalling at a given dequeue-batch ordinal, a trainer stalling at a
// given step, a window of transient host-write failures — and an
// Injector compiled from the plan answers the runtime's "does a fault
// fire here?" queries with pure map lookups, so the same plan produces
// the same fault schedule on every run.
//
// The package deliberately knows nothing about the P²F machinery it
// perturbs: internal/p2f consults the injector on the flusher and gate
// paths, internal/runtime on the trainer and host-write paths. Recovery
// (respawn, redistribution, degraded mode) lives with the components
// that own the failing resource.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names an injectable fault.
type Kind uint8

// The injectable fault kinds.
const (
	// KindFlusherCrash kills one background flushing thread at a given
	// dequeue-batch ordinal; its in-flight batch is redistributed.
	KindFlusherCrash Kind = iota + 1
	// KindFlusherStall puts one flushing thread to sleep for Duration at
	// a given dequeue-batch ordinal (heartbeats stop during the stall).
	KindFlusherStall
	// KindTrainerDelay makes one trainer a straggler: it sleeps for
	// Duration before entering the consistency gate at a given step.
	KindTrainerDelay
	// KindHostWriteFail fails Count consecutive host-memory write
	// attempts starting at a global write ordinal; writers retry with
	// exponential backoff until the window passes.
	KindHostWriteFail
)

var kindNames = map[Kind]string{
	KindFlusherCrash:  "crash",
	KindFlusherStall:  "stall",
	KindTrainerDelay:  "delay",
	KindHostWriteFail: "hostfail",
}

// String returns the plan-spec tag for the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault.
	Kind Kind
	// Target is the flusher slot (crash, stall) or GPU id (delay);
	// unused for host-write failures.
	Target int
	// At is the trigger ordinal: the flusher's dequeue-batch number
	// (crash, stall), the training step (delay), or the global
	// host-write attempt ordinal (hostfail). Ordinals count from 1 for
	// flusher batches and from 0 for steps and writes.
	At int64
	// Duration is the stall or delay length (stall, delay only).
	Duration time.Duration
	// Count is the number of consecutive failing write attempts
	// (hostfail only; default 1).
	Count int
}

// String renders the event as its canonical plan-spec clause.
func (e Event) String() string { return e.clause() }

// clause renders the event in canonical plan-spec form.
func (e Event) clause() string {
	switch e.Kind {
	case KindFlusherCrash:
		return fmt.Sprintf("crash:flusher=%d@batch=%d", e.Target, e.At)
	case KindFlusherStall:
		return fmt.Sprintf("stall:flusher=%d@batch=%d,dur=%s", e.Target, e.At, e.Duration)
	case KindTrainerDelay:
		return fmt.Sprintf("delay:gpu=%d@step=%d,dur=%s", e.Target, e.At, e.Duration)
	case KindHostWriteFail:
		return fmt.Sprintf("hostfail@write=%d,count=%d", e.At, e.Count)
	}
	return fmt.Sprintf("unknown(%d)", e.Kind)
}

// Plan is a reproducible fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Seed records the seed Generate used (0 for hand-written plans).
	// It is informational; the Events list is the schedule.
	Seed int64
	// Events are the scheduled faults, in canonical order.
	Events []Event
}

// Empty reports whether the plan schedules no faults.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// sortEvents orders events canonically: by kind, then target, then
// trigger ordinal — so String is byte-identical for equal schedules.
func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Duration != b.Duration {
			return a.Duration < b.Duration
		}
		return a.Count < b.Count
	})
}

// String renders the plan in the spec format Parse accepts. The output
// is canonical: two plans with the same events render byte-identically,
// which is what the schedule-determinism tests pin.
func (p Plan) String() string {
	ev := append([]Event(nil), p.Events...)
	sortEvents(ev)
	clauses := make([]string, len(ev))
	for i, e := range ev {
		clauses[i] = e.clause()
	}
	return strings.Join(clauses, ";")
}

// ParseError is the typed error Parse returns for a malformed plan spec.
type ParseError struct {
	// Clause is the offending clause text.
	Clause string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("fault: bad plan clause %q: %s", e.Clause, e.Reason)
}

// Parse reads a plan spec: semicolon-separated clauses of the forms
//
//	crash:flusher=<slot>@batch=<n>
//	stall:flusher=<slot>@batch=<n>,dur=<duration>
//	delay:gpu=<gpu>@step=<s>,dur=<duration>
//	hostfail@write=<n>[,count=<k>]
//
// Whitespace around clauses is ignored; an empty spec is the empty plan.
// Parse(p.String()) reproduces p's schedule exactly.
func Parse(spec string) (Plan, error) {
	var p Plan
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		e, err := parseClause(clause)
		if err != nil {
			return Plan{}, err
		}
		p.Events = append(p.Events, e)
	}
	sortEvents(p.Events)
	return p, nil
}

// parseClause reads one event clause.
func parseClause(clause string) (Event, error) {
	head, rest, found := strings.Cut(clause, "@")
	if !found {
		return Event{}, &ParseError{clause, "missing '@' trigger"}
	}
	kindStr, targetStr, hasTarget := strings.Cut(head, ":")
	fields, err := parseFields(clause, rest)
	if err != nil {
		return Event{}, err
	}
	var e Event
	switch kindStr {
	case "crash", "stall":
		e.Kind = KindFlusherCrash
		if kindStr == "stall" {
			e.Kind = KindFlusherStall
		}
		if e.Target, err = parseTarget(clause, targetStr, hasTarget, "flusher"); err != nil {
			return Event{}, err
		}
		if e.At, err = fields.ordinal(clause, "batch", 1); err != nil {
			return Event{}, err
		}
		if e.Kind == KindFlusherStall {
			if e.Duration, err = fields.duration(clause); err != nil {
				return Event{}, err
			}
		}
	case "delay":
		e.Kind = KindTrainerDelay
		if e.Target, err = parseTarget(clause, targetStr, hasTarget, "gpu"); err != nil {
			return Event{}, err
		}
		if e.At, err = fields.ordinal(clause, "step", 0); err != nil {
			return Event{}, err
		}
		if e.Duration, err = fields.duration(clause); err != nil {
			return Event{}, err
		}
	case "hostfail":
		e.Kind = KindHostWriteFail
		if hasTarget {
			return Event{}, &ParseError{clause, "hostfail takes no target"}
		}
		if e.At, err = fields.ordinal(clause, "write", 0); err != nil {
			return Event{}, err
		}
		e.Count = 1
		if v, ok := fields["count"]; ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return Event{}, &ParseError{clause, "count must be a positive integer"}
			}
			e.Count = n
		}
	default:
		return Event{}, &ParseError{clause, fmt.Sprintf("unknown fault kind %q", kindStr)}
	}
	return e, nil
}

// fieldMap holds the parsed k=v pairs after the '@'.
type fieldMap map[string]string

func parseFields(clause, rest string) (fieldMap, error) {
	m := fieldMap{}
	for _, f := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok || k == "" || v == "" {
			return nil, &ParseError{clause, fmt.Sprintf("malformed field %q", f)}
		}
		m[k] = v
	}
	return m, nil
}

// ordinal reads the required trigger field (batch/step/write) with a
// minimum value.
func (m fieldMap) ordinal(clause, name string, min int64) (int64, error) {
	v, ok := m[name]
	if !ok {
		return 0, &ParseError{clause, fmt.Sprintf("missing %s=<n>", name)}
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < min {
		return 0, &ParseError{clause, fmt.Sprintf("%s must be an integer ≥ %d", name, min)}
	}
	return n, nil
}

// duration reads the required dur field.
func (m fieldMap) duration(clause string) (time.Duration, error) {
	v, ok := m["dur"]
	if !ok {
		return 0, &ParseError{clause, "missing dur=<duration>"}
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, &ParseError{clause, "dur must be a positive duration"}
	}
	return d, nil
}

// parseTarget reads the "flusher=<n>" / "gpu=<n>" head target.
func parseTarget(clause, targetStr string, hasTarget bool, name string) (int, error) {
	if !hasTarget {
		return 0, &ParseError{clause, fmt.Sprintf("missing :%s=<n> target", name)}
	}
	k, v, ok := strings.Cut(targetStr, "=")
	if !ok || k != name {
		return 0, &ParseError{clause, fmt.Sprintf("target must be %s=<n>", name)}
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, &ParseError{clause, fmt.Sprintf("%s must be a non-negative integer", name)}
	}
	return n, nil
}
