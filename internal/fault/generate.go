package fault

import (
	"math/rand"
	"time"
)

// GenSpec bounds a generated plan: the shape of the runtime the plan
// targets and how many faults of each kind to schedule inside it.
type GenSpec struct {
	// FlusherThreads is the pool size crash/stall targets are drawn from
	// (default 8).
	FlusherThreads int
	// GPUs is the trainer count delay targets are drawn from (default 1).
	GPUs int
	// Steps is the run length; delay steps and the batch/write horizons
	// are drawn inside it (default 100).
	Steps int64
	// Crashes, Stalls, Delays and HostFails count the events to schedule
	// per kind.
	Crashes, Stalls, Delays, HostFails int
	// MaxStall and MaxDelay bound the drawn durations (defaults 5ms, 2ms).
	MaxStall, MaxDelay time.Duration
	// MaxFailCount bounds consecutive host-write failures per window
	// (default 3).
	MaxFailCount int
}

func (s *GenSpec) normalize() {
	if s.FlusherThreads <= 0 {
		s.FlusherThreads = 8
	}
	if s.GPUs <= 0 {
		s.GPUs = 1
	}
	if s.Steps <= 0 {
		s.Steps = 100
	}
	if s.MaxStall <= 0 {
		s.MaxStall = 5 * time.Millisecond
	}
	if s.MaxDelay <= 0 {
		s.MaxDelay = 2 * time.Millisecond
	}
	if s.MaxFailCount <= 0 {
		s.MaxFailCount = 3
	}
}

// Generate derives a fault schedule from a seed: the same (seed, spec)
// pair always yields a byte-identical plan (Plan.String pins this), so a
// chaos run is reproduced by its seed alone. Durations are quantised to
// microseconds to keep the rendered spec round-trippable.
func Generate(seed int64, spec GenSpec) Plan {
	spec.normalize()
	rng := rand.New(rand.NewSource(seed))
	drawDur := func(max time.Duration) time.Duration {
		us := int64(max / time.Microsecond)
		return time.Duration(1+rng.Int63n(us)) * time.Microsecond
	}
	p := Plan{Seed: seed}
	for i := 0; i < spec.Crashes; i++ {
		p.Events = append(p.Events, Event{
			Kind:   KindFlusherCrash,
			Target: rng.Intn(spec.FlusherThreads),
			At:     1 + rng.Int63n(spec.Steps),
		})
	}
	for i := 0; i < spec.Stalls; i++ {
		p.Events = append(p.Events, Event{
			Kind:     KindFlusherStall,
			Target:   rng.Intn(spec.FlusherThreads),
			At:       1 + rng.Int63n(spec.Steps),
			Duration: drawDur(spec.MaxStall),
		})
	}
	for i := 0; i < spec.Delays; i++ {
		p.Events = append(p.Events, Event{
			Kind:     KindTrainerDelay,
			Target:   rng.Intn(spec.GPUs),
			At:       rng.Int63n(spec.Steps),
			Duration: drawDur(spec.MaxDelay),
		})
	}
	for i := 0; i < spec.HostFails; i++ {
		p.Events = append(p.Events, Event{
			Kind:  KindHostWriteFail,
			At:    rng.Int63n(spec.Steps * 8), // writes outnumber steps
			Count: 1 + rng.Intn(spec.MaxFailCount),
		})
	}
	sortEvents(p.Events)
	return p
}
