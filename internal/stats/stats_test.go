package stats

import (
	"strings"
	"testing"
)

func TestBreakdown(t *testing.T) {
	b := Breakdown{Comm: 1, HostDRAM: 2, Cache: 3, Other: 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %v", b.Total())
	}
	sum := b.Add(Breakdown{Comm: 1})
	if sum.Comm != 2 || sum.Other != 4 {
		t.Fatalf("Add = %+v", sum)
	}
	half := b.Scale(0.5)
	if half.Cache != 1.5 {
		t.Fatalf("Scale = %+v", half)
	}
	for _, c := range Components() {
		if b.Get(c) == 0 {
			t.Fatalf("Get(%s) = 0", c)
		}
	}
}

func TestBreakdownGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Breakdown{}.Get(Component("bogus"))
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, 0.5); got != 2000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("zero-time Throughput = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Exp", XLabel: "batch", XTicks: []string{"128", "512"}, YLabel: "tput"}
	tb.AddSeries("Frugal", []float64{1e6, 2e6})
	tb.AddSeries("HugeCTR", []float64{2e5, 3e5})
	tb.Note("speedup %.1fx", 5.0)
	out := tb.Render()
	for _, want := range []string{"Exp", "Frugal", "HugeCTR", "128", "512", "speedup 5.0x", "1.00M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAddSeriesLengthPanics(t *testing.T) {
	tb := &Table{XTicks: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddSeries("bad", []float64{1})
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		2.5e9: "2.50G",
		1.5e6: "1.50M",
		2500:  "2.5k",
		3.14:  "3.14",
		2e-3:  "2.00m",
		5e-6:  "5.0µ",
		7e-9:  "7.0n",
	}
	for in, want := range cases {
		if got := FormatValue(in); got != want {
			t.Fatalf("FormatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRatioAndMinMax(t *testing.T) {
	if Ratio(10, 2) != 5 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax should be 0,0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []float64{0, 0, 1, 1}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Perfectly wrong.
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []float64{0, 0, 1, 1}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All ties → 0.5 via midranks.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []float64{0, 1, 0, 1}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Degenerate inputs.
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %v", got)
	}
	if got := AUC([]float64{0.1, 0.9}, []float64{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
	// A known partial ordering: pos {0.8, 0.4}, neg {0.6, 0.2}:
	// pairs won = (0.8>0.6)+(0.8>0.2)+(0.4>0.2) = 3 of 4 → 0.75.
	if got := AUC([]float64{0.8, 0.6, 0.4, 0.2}, []float64{1, 0, 1, 0}); got != 0.75 {
		t.Fatalf("partial AUC = %v, want 0.75", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "t,1", XTicks: []string{"a", "b"}}
	tb.AddSeries(`s"x`, []float64{1.5, 2})
	csv := tb.CSV()
	want := "\"t,1\",a,b\n\"s\"\"x\",1.5,2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
