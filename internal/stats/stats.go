// Package stats provides the measurement vocabulary of the evaluation:
// the per-iteration time breakdown of Fig 3c / Fig 12 (collective
// communication, host DRAM access, GPU cache access, other), throughput
// accounting in samples/second, and text rendering of the tables and
// series the paper reports.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Component is one bucket of the iteration-time breakdown.
type Component string

// The four breakdown buckets of §2.4.
const (
	Comm      Component = "comm"      // collective communication
	HostDRAM  Component = "host DRAM" // host-memory (cache miss) access
	CacheComp Component = "cache"     // local GPU cache access
	Other     Component = "other"     // DNN compute and everything else
)

// Components returns the buckets in presentation order.
func Components() []Component { return []Component{Comm, HostDRAM, CacheComp, Other} }

// Breakdown is a per-iteration time split in seconds.
type Breakdown struct {
	Comm     float64
	HostDRAM float64
	Cache    float64
	Other    float64
}

// Total returns the iteration time.
func (b Breakdown) Total() float64 { return b.Comm + b.HostDRAM + b.Cache + b.Other }

// Add returns the component-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Comm:     b.Comm + o.Comm,
		HostDRAM: b.HostDRAM + o.HostDRAM,
		Cache:    b.Cache + o.Cache,
		Other:    b.Other + o.Other,
	}
}

// Scale returns the breakdown with every component multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{Comm: b.Comm * f, HostDRAM: b.HostDRAM * f, Cache: b.Cache * f, Other: b.Other * f}
}

// Get returns one component's seconds.
func (b Breakdown) Get(c Component) float64 {
	switch c {
	case Comm:
		return b.Comm
	case HostDRAM:
		return b.HostDRAM
	case CacheComp:
		return b.Cache
	case Other:
		return b.Other
	default:
		panic(fmt.Sprintf("stats: unknown component %q", c))
	}
}

// Throughput converts an iteration time into samples/second.
func Throughput(samplesPerIter int, iterSeconds float64) float64 {
	if iterSeconds <= 0 {
		return 0
	}
	return float64(samplesPerIter) / iterSeconds
}

// ----------------------------------------------------------------------
// Result tables

// Series is one labelled line of a figure: y-values over the sweep points.
type Series struct {
	Label  string
	Points []float64
}

// Table renders figure data as aligned text: one column per sweep point,
// one row per series — the form EXPERIMENTS.md records.
type Table struct {
	Title  string
	XLabel string
	XTicks []string
	YLabel string
	Series []Series
	Notes  []string
}

// AddSeries appends a labelled series, validating its length.
func (t *Table) AddSeries(label string, points []float64) {
	if len(t.XTicks) != 0 && len(points) != len(t.XTicks) {
		panic(fmt.Sprintf("stats: series %q has %d points, want %d", label, len(points), len(t.XTicks)))
	}
	t.Series = append(t.Series, Series{Label: label, Points: points})
}

// Note attaches a free-form annotation rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render prints the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(&sb, "(y: %s; x: %s)\n", t.YLabel, t.XLabel)
	}
	width := 12
	for _, s := range t.Series {
		if len(s.Label)+2 > width {
			width = len(s.Label) + 2
		}
	}
	fmt.Fprintf(&sb, "%-*s", width, "")
	for _, x := range t.XTicks {
		fmt.Fprintf(&sb, "%12s", x)
	}
	sb.WriteByte('\n')
	for _, s := range t.Series {
		fmt.Fprintf(&sb, "%-*s", width, s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%12s", FormatValue(p))
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  · %s\n", n)
	}
	return sb.String()
}

// FormatValue renders a measurement compactly (SI suffixes for large
// values, 3 significant digits).
func FormatValue(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av == 0:
		return "0"
	case av >= 1e-3:
		return fmt.Sprintf("%.2fm", v*1e3)
	case av >= 1e-6:
		return fmt.Sprintf("%.1fµ", v*1e6)
	default:
		return fmt.Sprintf("%.1fn", v*1e9)
	}
}

// Ratio returns a/b, or 0 when b is 0 — for speedup reporting.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MinMax returns the smallest and largest of a non-empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// AUC computes the area under the ROC curve of binary classification
// scores by the rank statistic (Mann-Whitney U), with midrank handling of
// ties. Labels are {0, 1}; returns 0.5 when either class is absent.
func AUC(scores []float64, labels []float64) float64 {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0.5
	}
	type pair struct{ s, l float64 }
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	var rankSumPos, nPos, nNeg float64
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if ps[k].l > 0.5 {
				rankSumPos += midrank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSumPos - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}

// Percentile returns the p-th percentile (0-100) of xs by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// CSV renders the table as comma-separated values (one header row of
// x-ticks, one row per series), for plotting pipelines.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	sb.WriteString(esc(t.Title))
	for _, x := range t.XTicks {
		sb.WriteByte(',')
		sb.WriteString(esc(x))
	}
	sb.WriteByte('\n')
	for _, s := range t.Series {
		sb.WriteString(esc(s.Label))
		for _, p := range s.Points {
			fmt.Fprintf(&sb, ",%g", p)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
