package store

import (
	"context"
	"fmt"

	"frugal/internal/p2f"
	"frugal/internal/runtime"
	"frugal/internal/tensor"
)

// LocalStore is the in-process Store: a host-memory slab, optionally
// coordinated by a live P²F controller. Every method is a thin wrapper
// over the Host/Controller primitives the serving layer used to call
// directly — the single-machine fast path costs one interface dispatch
// and nothing else (no allocation, no copy beyond the row itself).
type LocalStore struct {
	host *runtime.Host
	ctrl *p2f.Controller // nil: uncoordinated (write-through or static slab)
}

// NewLocal wraps a host slab (and its controller, nil for uncoordinated
// engines and loaded checkpoints) as a Store.
func NewLocal(host *runtime.Host, ctrl *p2f.Controller) (*LocalStore, error) {
	if host == nil {
		return nil, fmt.Errorf("store: nil host")
	}
	return &LocalStore{host: host, ctrl: ctrl}, nil
}

// Host exposes the underlying slab. The serving engine uses it for the
// bulk-scan fast paths (batched MulVec, IVF build/repair) that only a
// local contiguous slab supports.
func (s *LocalStore) Host() *runtime.Host { return s.host }

// Controller exposes the attached P²F controller (nil when
// uncoordinated).
func (s *LocalStore) Controller() *p2f.Controller { return s.ctrl }

// Rows returns the table height.
func (s *LocalStore) Rows() int64 { return s.host.Rows() }

// Dim returns the embedding dimension.
func (s *LocalStore) Dim() int { return s.host.Dim() }

// Coordinated reports whether a P²F controller is attached.
func (s *LocalStore) Coordinated() bool { return s.ctrl != nil }

// ReadRow copies row key into dst under its stripe lock.
func (s *LocalStore) ReadRow(key uint64, dst []float32) (uint64, error) {
	if key >= uint64(s.host.Rows()) {
		return 0, keyRangeError(key, s.host.Rows())
	}
	return s.host.ReadRow(key, dst), nil
}

// Gather reads len(keys) rows into dst, each under its stripe lock.
func (s *LocalStore) Gather(keys []uint64, dst []float32, versions []uint64) error {
	d := s.host.Dim()
	if len(dst) != len(keys)*d {
		return fmt.Errorf("store: gather dst %d floats, want %d", len(dst), len(keys)*d)
	}
	if versions != nil && len(versions) != len(keys) {
		return fmt.Errorf("store: gather versions %d, want %d", len(versions), len(keys))
	}
	for i, k := range keys {
		if k >= uint64(s.host.Rows()) {
			return keyRangeError(k, s.host.Rows())
		}
		v := s.host.ReadRow(k, dst[i*d:(i+1)*d])
		if versions != nil {
			versions[i] = v
		}
	}
	return nil
}

// Scatter commits one step's updates: through the controller's P²F
// commit path when coordinated (the write sets drain asynchronously and
// the watermark advances), straight onto the slab otherwise.
func (s *LocalStore) Scatter(step int64, updates []KeyDelta) error {
	for _, u := range updates {
		if u.Key >= uint64(s.host.Rows()) {
			return keyRangeError(u.Key, s.host.Rows())
		}
	}
	if s.ctrl == nil {
		for _, u := range updates {
			s.host.ApplyDelta(u.Key, u.Delta, u.StateDelta)
		}
		return nil
	}
	kd := make([]p2f.KeyDelta, len(updates))
	for i, u := range updates {
		kd[i] = p2f.KeyDelta{Key: u.Key, Delta: u.Delta, StateDelta: u.StateDelta}
	}
	s.ctrl.CommitStep(step, kd)
	return nil
}

// Version returns the row's update counter.
func (s *LocalStore) Version(key uint64) (uint64, error) {
	if key >= uint64(s.host.Rows()) {
		return 0, keyRangeError(key, s.host.Rows())
	}
	return s.host.Version(key), nil
}

// Watermark returns the controller's committed-step watermark (-1 when
// uncoordinated).
func (s *LocalStore) Watermark() int64 {
	if s.ctrl == nil {
		return -1
	}
	return s.ctrl.Watermark()
}

// RowStaleness reports the key's flush lag against the watermark.
func (s *LocalStore) RowStaleness(key uint64) (lag, watermark int64, err error) {
	if key >= uint64(s.host.Rows()) {
		return 0, 0, keyRangeError(key, s.host.Rows())
	}
	if s.ctrl == nil {
		return 0, -1, nil
	}
	lag, watermark = s.ctrl.RowStaleness(key)
	return lag, watermark, nil
}

// FlushKey drains the key's pending write set (singleflight-coalesced).
func (s *LocalStore) FlushKey(key uint64) (bool, error) {
	if key >= uint64(s.host.Rows()) {
		return false, keyRangeError(key, s.host.Rows())
	}
	if s.ctrl == nil {
		return false, nil
	}
	return s.ctrl.FlushKeyShared(key), nil
}

// AddFlushHook registers an index-maintenance hook on the controller.
// No-op when uncoordinated (nothing ever flushes).
func (s *LocalStore) AddFlushHook(fn func(key uint64)) {
	if s.ctrl != nil {
		s.ctrl.AddFlushHook(fn)
	}
}

// localTopKChunk strides the scan so no stripe lock is held across more
// than one row (mirrors the serving engine's chunk size).
const localTopKChunk = 256

// TopK scans every row under its stripe lock and returns the k best by
// dot product (ties broken toward the smaller key), each winner re-read
// for an exact (version, score) pair.
func (s *LocalStore) TopK(ctx context.Context, query []float32, k int) ([]ScoredRow, error) {
	return SlabTopK(ctx, s.host, query, k, nil)
}

// SlabTopK is the shared slab-scan selection used by LocalStore and the
// shard node: score every row chunk by chunk under its stripe lock, keep
// the k best in a min-heap, then re-read each winner under its lock for
// an honest version+score pair. keyOf maps slab indices to global keys
// (nil = identity, for unsharded slabs).
func SlabTopK(ctx context.Context, host *runtime.Host, query []float32, k int,
	keyOf func(local int64) uint64) ([]ScoredRow, error) {

	if keyOf == nil {
		keyOf = func(i int64) uint64 { return uint64(i) }
	}
	if len(query) != host.Dim() {
		return nil, fmt.Errorf("store: query length %d, want dim %d", len(query), host.Dim())
	}
	rows := host.Rows()
	if k < 1 {
		return nil, fmt.Errorf("store: k must be ≥ 1, got %d", k)
	}
	if int64(k) > rows {
		k = int(rows)
	}
	scores := make([]float32, localTopKChunk)
	heap := make([]scoredHeapEntry, 0, k)
	for from := int64(0); from < rows; from += localTopKChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := rows - from
		if n > localTopKChunk {
			n = localTopKChunk
		}
		sc := scores[:n]
		host.ScoreRowsLocked(query, from, sc)
		for i, v := range sc {
			e := scoredHeapEntry{local: from + int64(i), key: keyOf(from + int64(i)), score: v}
			if len(heap) < k {
				heap = heapPushScored(heap, e)
			} else if scoredLess(heap[0], e) {
				heap[0] = e
				heapFixScored(heap)
			}
		}
	}
	// Winners: re-read under the row lock so score and version agree.
	row := make([]float32, host.Dim())
	out := make([]ScoredRow, len(heap))
	for i, e := range heap {
		v := host.ReadRow(uint64(e.local), row)
		out[i] = ScoredRow{Key: e.key, Score: tensor.Dot(query, row), Version: v}
	}
	sortScored(out)
	return out, nil
}

// scoredHeapEntry is one candidate during the scan: the local slab index
// (for the re-read) and the global key it maps to.
type scoredHeapEntry struct {
	local int64
	key   uint64
	score float32
}

// scoredLess orders the min-heap: smaller score first, ties by larger
// key so the final result is deterministic.
func scoredLess(a, b scoredHeapEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.key > b.key
}

func heapPushScored(h []scoredHeapEntry, e scoredHeapEntry) []scoredHeapEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !scoredLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func heapFixScored(h []scoredHeapEntry) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && scoredLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && scoredLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// sortScored orders candidates best first (descending score, ties toward
// the smaller key). Insertion sort: k is small.
func sortScored(out []ScoredRow) {
	for i := 1; i < len(out); i++ {
		c := out[i]
		j := i - 1
		for ; j >= 0 && (out[j].Score < c.Score || (out[j].Score == c.Score && out[j].Key > c.Key)); j-- {
			out[j+1] = out[j]
		}
		out[j+1] = c
	}
}

// Close is a no-op: the slab belongs to the training job or checkpoint
// loader that created it.
func (s *LocalStore) Close() error { return nil }
