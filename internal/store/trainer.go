package store

import (
	"context"
	"fmt"
	"math"
)

// TrainerConfig drives RunTrainer, the store-level synchronous training
// loop. It is deliberately tiny: the loop exists to exercise a Store —
// any Store, local, remote, or sharded — with a realistic
// gather→compute→scatter cadence, not to replace the full runtime job.
type TrainerConfig struct {
	// Steps is the number of training steps to run (required, > 0).
	Steps int64
	// BatchSize is the number of keys touched per step. 0 sweeps the full
	// table every step, which gives every key exactly one update per step
	// — the G=1 case of the serving version inequality.
	BatchSize int
	// LR scales the synthetic gradient (default 0.05).
	LR float32
	// Seed makes batch selection and gradients deterministic.
	Seed uint64
	// OnStep, when non-nil, observes each completed step (after Scatter
	// returns) with the step index just committed.
	OnStep func(step int64)
}

// RunTrainer drives a synchronous distributed step loop against st:
// every step selects a key batch, gathers the current rows, computes a
// deterministic SGD-style delta per key, and scatters the step's updates
// back (through the P²F commit path on coordinated stores, so the
// watermark — or the composed cross-shard minimum — advances behind the
// loop). It returns on completion, context cancellation, or the first
// store error.
func RunTrainer(ctx context.Context, st Store, cfg TrainerConfig) error {
	if cfg.Steps <= 0 {
		return fmt.Errorf("store: trainer needs Steps > 0, got %d", cfg.Steps)
	}
	rows, dim := st.Rows(), st.Dim()
	if rows == 0 || dim == 0 {
		return fmt.Errorf("store: trainer needs a non-empty store, got %d×%d", rows, dim)
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.05
	}
	batch := cfg.BatchSize
	if batch <= 0 || int64(batch) > rows {
		batch = int(rows)
	}

	keys := make([]uint64, batch)
	gathered := make([]float32, batch*dim)
	rng := cfg.Seed | 1
	for step := int64(0); step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if int64(batch) == rows {
			// Full sweep: every key, exactly once.
			for i := range keys {
				keys[i] = uint64(i)
			}
		} else {
			// Deterministic pseudo-random distinct-ish batch: stride
			// selection keyed on the step so runs replay exactly.
			rng = rng*6364136223846793005 + 1442695040888963407
			start := rng % uint64(rows)
			stride := (rng>>33)%uint64(rows-1) + 1
			for i := range keys {
				keys[i] = (start + uint64(i)*stride) % uint64(rows)
			}
		}
		if err := st.Gather(keys, gathered, nil); err != nil {
			return fmt.Errorf("store: trainer gather at step %d: %w", step, err)
		}
		updates := make([]KeyDelta, len(keys))
		for i, k := range keys {
			// Pull each row a fixed fraction toward a key-specific target:
			// delta = lr · (target − row). Fresh buffer per update —
			// Scatter takes ownership of Delta.
			target := rowTarget(k, dim)
			delta := make([]float32, dim)
			row := gathered[i*dim : (i+1)*dim]
			for j := 0; j < dim; j++ {
				delta[j] = lr * (target[j] - row[j])
			}
			updates[i] = KeyDelta{Key: k, Delta: delta}
		}
		if err := st.Scatter(step, updates); err != nil {
			return fmt.Errorf("store: trainer scatter at step %d: %w", step, err)
		}
		if cfg.OnStep != nil {
			cfg.OnStep(step)
		}
	}
	return nil
}

// rowTarget is the deterministic per-key attractor RunTrainer pulls rows
// toward — a unit-ish vector derived from the key, so converged tables
// are reproducible across stores and shard topologies.
func rowTarget(key uint64, dim int) []float32 {
	t := make([]float32, dim)
	h := key*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	for j := range t {
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		// Map to [-1, 1).
		t[j] = float32(int64(h%2048)-1024) / 1024
	}
	norm := float32(0)
	for _, v := range t {
		norm += v * v
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(float64(norm)))
		for j := range t {
			t[j] *= inv
		}
	}
	return t
}
