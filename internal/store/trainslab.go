package store

import (
	"fmt"

	"frugal/internal/pq"
	"frugal/internal/runtime"
)

// TrainSlab adapts a Store to runtime.RowStore, so a training job can run
// its step loop against a parameter table that lives elsewhere — most
// usefully a ShardedStore over uncoordinated frugal-shard nodes, which
// makes the store tier the disaggregated host memory of the paper's
// design. Set it as Config.Slab (or TrainOptions.Slab on the public
// surface).
//
// The store must be uncoordinated: the step loop's write path is
// write-through (ApplyDelta applies immediately), and routing it through
// a store-side P²F gate would double-coordinate every commit. Writes map
// to single-key Scatter calls and reads to single-key ReadRow calls — one
// round trip each on remote stores, so this path trades throughput for
// placement; the in-process engines remain the fast path.
//
// RowStore's read/write surface carries no errors (host memory cannot
// fail), so store errors — an unreachable shard mid-step, an unowned
// key — are surfaced by panicking. A training loop cannot make progress
// against a broken slab, and the job's panic unwinds the run loudly
// instead of training on garbage.
type TrainSlab struct {
	st Store
}

var _ runtime.RowStore = (*TrainSlab)(nil)

// NewTrainSlab wraps st. It refuses coordinated stores — the training
// gate and the store gate would fight over commit semantics.
func NewTrainSlab(st Store) (*TrainSlab, error) {
	if st.Coordinated() {
		return nil, fmt.Errorf("store: TrainSlab requires an uncoordinated store (write-through)")
	}
	return &TrainSlab{st: st}, nil
}

// Store returns the wrapped store.
func (t *TrainSlab) Store() Store { return t.st }

// Rows returns the global table height.
func (t *TrainSlab) Rows() int64 { return t.st.Rows() }

// Dim returns the embedding dimension.
func (t *TrainSlab) Dim() int { return t.st.Dim() }

// ReadRow reads one row and returns its version.
func (t *TrainSlab) ReadRow(key uint64, dst []float32) uint64 {
	v, err := t.st.ReadRow(key, dst)
	if err != nil {
		panic(fmt.Sprintf("store: slab read of key %d failed: %v", key, err))
	}
	return v
}

// ReadRowDirect reads one row. The underlying store decides its own
// locking; the gate-protection contract of the host fast path does not
// apply across a wire.
func (t *TrainSlab) ReadRowDirect(key uint64, dst []float32) { t.ReadRow(key, dst) }

// ReadRowLocked reads one row (stores serialise their own writes).
func (t *TrainSlab) ReadRowLocked(key uint64, dst []float32) { t.ReadRow(key, dst) }

// Version returns the row's update counter.
func (t *TrainSlab) Version(key uint64) uint64 {
	v, err := t.st.Version(key)
	if err != nil {
		panic(fmt.Sprintf("store: slab version of key %d failed: %v", key, err))
	}
	return v
}

// OptState returns 0: the Store surface carries no optimizer accumulator,
// which is why jobs reject OptAdagrad under a slab override.
func (t *TrainSlab) OptState(uint64) float32 { return 0 }

// ApplyDelta writes one key's delta through as a single-update scatter.
func (t *TrainSlab) ApplyDelta(key uint64, delta []float32, stateDelta float32) {
	err := t.st.Scatter(0, []KeyDelta{{Key: key, Delta: delta, StateDelta: stateDelta}})
	if err != nil {
		panic(fmt.Sprintf("store: slab write of key %d failed: %v", key, err))
	}
}

// ApplyUpdates writes one key's update batch through as one scatter,
// bumping the version once per update like the host slab does.
func (t *TrainSlab) ApplyUpdates(key uint64, updates []pq.Update) {
	kd := make([]KeyDelta, len(updates))
	for i, u := range updates {
		kd[i] = KeyDelta{Key: key, Delta: u.Delta, StateDelta: u.StateDelta}
	}
	if err := t.st.Scatter(0, kd); err != nil {
		panic(fmt.Sprintf("store: slab write of key %d failed: %v", key, err))
	}
}

// WriteRetries reports 0: fault injection lives in the host slab.
func (t *TrainSlab) WriteRetries() int64 { return 0 }
