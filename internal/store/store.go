// Package store defines the parameter-store abstraction the serving
// engine and the distributed training path program against: one narrow
// interface over the row-read/write/version/watermark surface that
// internal/runtime.Host plus the P²F controller expose in-process.
//
// Three implementations exist:
//
//   - LocalStore (this package): the in-process host slab, optionally
//     coordinated by a live P²F controller. Every method is a thin
//     zero-allocation wrapper — the single-machine fast path is
//     preserved verbatim.
//   - shard.RemoteStore (internal/shard): a client speaking a compact
//     length-prefixed binary protocol over TCP to a frugal-shard node
//     that owns one consistent-hash shard of the table.
//   - ShardedStore (this package): N stores composed behind the same
//     interface — gather/scatter fan out with per-shard batching, and
//     the per-shard P²F watermarks compose into a global consistency
//     gate (global watermark = min over shards), so the serving layer's
//     stale/bounded(k)/fresh semantics survive the wire unchanged.
//
// Row addressing is always by global key; sharded implementations route
// by comm.Owner (consistent hashing) internally.
package store

import (
	"context"
	"fmt"
)

// KeyDelta is one parameter update bound for a store: the row delta plus
// the optimizer-state increment (0 under plain SGD). Scatter takes
// ownership of the Delta buffer — a coordinated local store retains it in
// the key's pending write set until a flusher drains it, so callers must
// not reuse the slice after the call.
type KeyDelta struct {
	Key        uint64
	Delta      []float32
	StateDelta float32
}

// ScoredRow is one top-K candidate returned by Store.TopK: the global
// key, its dot-product score, and the row version the score was computed
// against (read in the same critical section as the scoring copy).
type ScoredRow struct {
	Key     uint64
	Score   float32
	Version uint64
}

// Store is the parameter-store surface. All methods are safe for
// concurrent use. Reads and writes address rows by global key in
// [0, Rows()).
type Store interface {
	// Rows is the global table height (the key space).
	Rows() int64
	// Dim is the embedding dimension.
	Dim() int
	// Coordinated reports whether a P²F gate (and therefore a meaningful
	// watermark/staleness surface) is attached. Uncoordinated stores
	// apply writes at commit time, so every read is trivially fresh.
	Coordinated() bool

	// ReadRow copies row key into dst (len == Dim()) and returns the row
	// version observed with the copy.
	ReadRow(key uint64, dst []float32) (uint64, error)
	// Gather batch-reads len(keys) rows into dst (len == len(keys)·Dim()),
	// row i at dst[i·Dim() : (i+1)·Dim()]. versions, when non-nil (len ==
	// len(keys)), receives each row's version. Sharded implementations
	// bucket the keys per shard and fan out one batched request per shard.
	Gather(keys []uint64, dst []float32, versions []uint64) error
	// Scatter stages the updates of training step `step`. A coordinated
	// store routes them through its P²F commit path (the watermark
	// advances once every configured trainer has scattered the step — an
	// empty updates slice is a pure commit signal); an uncoordinated
	// store applies them to the slab immediately.
	Scatter(step int64, updates []KeyDelta) error

	// Version returns the row's update counter.
	Version(key uint64) (uint64, error)
	// Watermark returns the committed-step watermark: every trainer has
	// committed all steps ≤ the returned value (-1 before the first
	// commit, and always -1 on uncoordinated stores). Composed stores
	// return the minimum over their shards, which is the one-sided-safe
	// direction: a row can only be fresher than the composed value
	// implies, never staler.
	Watermark() int64
	// RowStaleness reports how many gate steps the stored copy of key may
	// lag the returned watermark (see p2f.Controller.RowStaleness for the
	// one-sided guarantee).
	RowStaleness(key uint64) (lag, watermark int64, err error)
	// FlushKey synchronously drains the key's pending write set so the
	// stored row reflects every committed update; reports whether
	// anything was flushed. Implementations coalesce concurrent flushes
	// of one hot key (singleflight).
	FlushKey(key uint64) (bool, error)

	// TopK returns the k rows with the highest dot-product similarity to
	// query, best first. Scores and versions reflect live row state (each
	// winner read under its row lock). Sharded implementations scan every
	// shard's owned rows in parallel and merge.
	TopK(ctx context.Context, query []float32, k int) ([]ScoredRow, error)

	// Close releases the store's resources (network connections, pools).
	// The underlying slab of a LocalStore is not affected.
	Close() error
}

// FlushHooker is the optional index-maintenance feed: stores that can
// report every flushed key (local and per-shard stores) implement it so
// derived structures (the serving IVF index) can bound their staleness.
type FlushHooker interface {
	AddFlushHook(fn func(key uint64))
}

// ShardCounter is implemented by composed stores that know their shard
// topology (the serving layer reports it on /healthz).
type ShardCounter interface {
	NumShards() int
}

// ShardUnavailableError reports a shard RPC that could not complete: the
// connection failed, the node is down, or the protocol broke mid-frame.
// The serving layer maps it to HTTP 503 with code "shard_unavailable".
type ShardUnavailableError struct {
	Addr string // the shard's address ("" for in-process stores)
	Err  error
}

func (e *ShardUnavailableError) Error() string {
	if e.Addr == "" {
		return fmt.Sprintf("store: shard unavailable: %v", e.Err)
	}
	return fmt.Sprintf("store: shard %s unavailable: %v", e.Addr, e.Err)
}

// Unwrap exposes the transport error to errors.Is/As.
func (e *ShardUnavailableError) Unwrap() error { return e.Err }

// keyRangeError builds the canonical out-of-range error.
func keyRangeError(key uint64, rows int64) error {
	return fmt.Errorf("store: key %d out of range (rows %d)", key, rows)
}
