package store

import (
	"context"
	"fmt"
	"sync"
	"time"

	"frugal/internal/comm"
)

// ShardedStore composes N stores behind the single Store interface. Rows
// are routed by comm.Owner consistent hashing over the global key; batch
// operations bucket their keys per shard and fan out one request per
// shard concurrently. The per-shard P²F watermarks compose into a global
// gate as the minimum over shards — the one-sided-safe direction: the
// composed watermark never claims a step committed that some shard has
// not committed, so a bounded(k) read can only be fresher than the
// (lag, watermark) pair implies, never staler.
type ShardedStore struct {
	shards      []Store
	rows        int64
	dim         int
	coordinated bool

	// Watermark cache: querying N shards per read is too expensive on the
	// lookup hot path, so the composed minimum is cached for wmCacheTTL.
	// Serving an older (smaller) watermark is safe for the same one-sided
	// reason as the min composition itself.
	wmMu sync.Mutex
	wmAt time.Time
	wm   int64

	// gatherPool recycles the per-shard working buffers of Gather — a
	// trainer gathering every step would otherwise allocate (and the
	// runtime zero) shard-sized float batches on each call.
	gatherPool sync.Pool // *gatherScratch
}

// gatherScratch is one pooled per-shard gather working set.
type gatherScratch struct {
	buf  []float32
	vers []uint64
}

// wmCacheTTL bounds how stale the cached composed watermark may be.
const wmCacheTTL = 2 * time.Millisecond

// NewSharded composes the given stores. Every shard must report the same
// global Rows/Dim (each shard is addressed by global key and knows the
// full key space) and agree on coordination.
func NewSharded(shards []Store) (*ShardedStore, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("store: sharded store needs at least one shard")
	}
	rows, dim, coord := shards[0].Rows(), shards[0].Dim(), shards[0].Coordinated()
	for i, sh := range shards[1:] {
		if sh.Rows() != rows || sh.Dim() != dim {
			return nil, fmt.Errorf("store: shard %d reports %d×%d, shard 0 reports %d×%d",
				i+1, sh.Rows(), sh.Dim(), rows, dim)
		}
		if sh.Coordinated() != coord {
			return nil, fmt.Errorf("store: shard %d coordination disagrees with shard 0", i+1)
		}
	}
	return &ShardedStore{shards: shards, rows: rows, dim: dim, coordinated: coord, wm: -1}, nil
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// owner routes a global key to its shard.
func (s *ShardedStore) owner(key uint64) Store {
	return s.shards[comm.Owner(key, len(s.shards))]
}

// Rows returns the global table height.
func (s *ShardedStore) Rows() int64 { return s.rows }

// Dim returns the embedding dimension.
func (s *ShardedStore) Dim() int { return s.dim }

// Coordinated reports whether the shards run P²F gates.
func (s *ShardedStore) Coordinated() bool { return s.coordinated }

// ReadRow routes the read to the owning shard.
func (s *ShardedStore) ReadRow(key uint64, dst []float32) (uint64, error) {
	if key >= uint64(s.rows) {
		return 0, keyRangeError(key, s.rows)
	}
	return s.owner(key).ReadRow(key, dst)
}

// Gather buckets keys by owner and fans out one batched Gather per shard.
// Each shard goroutine gathers into a private contiguous buffer, then
// scatter-copies rows back to their original positions in dst — the
// positions are disjoint across shards, so the copies race with nothing.
func (s *ShardedStore) Gather(keys []uint64, dst []float32, versions []uint64) error {
	if len(dst) != len(keys)*s.dim {
		return fmt.Errorf("store: gather dst %d floats, want %d", len(dst), len(keys)*s.dim)
	}
	if versions != nil && len(versions) != len(keys) {
		return fmt.Errorf("store: gather versions %d, want %d", len(versions), len(keys))
	}
	for _, k := range keys {
		if k >= uint64(s.rows) {
			return keyRangeError(k, s.rows)
		}
	}
	n := len(s.shards)
	shardKeys := make([][]uint64, n)
	shardPos := make([][]int, n)
	for i, k := range keys {
		o := comm.Owner(k, n)
		shardKeys[o] = append(shardKeys[o], k)
		shardPos[o] = append(shardPos[o], i)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for sh := 0; sh < n; sh++ {
		if len(shardKeys[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			ks, pos := shardKeys[sh], shardPos[sh]
			sc, _ := s.gatherPool.Get().(*gatherScratch)
			if sc == nil {
				sc = &gatherScratch{}
			}
			if cap(sc.buf) < len(ks)*s.dim {
				sc.buf = make([]float32, len(ks)*s.dim)
			}
			buf := sc.buf[:len(ks)*s.dim]
			var vers []uint64
			if versions != nil {
				if cap(sc.vers) < len(ks) {
					sc.vers = make([]uint64, len(ks))
				}
				vers = sc.vers[:len(ks)]
			}
			if err := s.shards[sh].Gather(ks, buf, vers); err != nil {
				errs[sh] = err
				s.gatherPool.Put(sc)
				return
			}
			for j, p := range pos {
				copy(dst[p*s.dim:(p+1)*s.dim], buf[j*s.dim:(j+1)*s.dim])
				if versions != nil {
					versions[p] = vers[j]
				}
			}
			s.gatherPool.Put(sc)
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Scatter buckets the step's updates by owner and sends one batch per
// shard — including an empty batch to shards that own none of the
// touched keys, because a coordinated shard's watermark only advances
// when every configured trainer commits the step. The empty Scatter is
// that pure commit signal; without it the composed min-watermark would
// stall on whichever shard the batch happened to miss.
func (s *ShardedStore) Scatter(step int64, updates []KeyDelta) error {
	for _, u := range updates {
		if u.Key >= uint64(s.rows) {
			return keyRangeError(u.Key, s.rows)
		}
	}
	n := len(s.shards)
	buckets := make([][]KeyDelta, n)
	for _, u := range updates {
		o := comm.Owner(u.Key, n)
		buckets[o] = append(buckets[o], u)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for sh := 0; sh < n; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			errs[sh] = s.shards[sh].Scatter(step, buckets[sh])
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Version routes to the owning shard.
func (s *ShardedStore) Version(key uint64) (uint64, error) {
	if key >= uint64(s.rows) {
		return 0, keyRangeError(key, s.rows)
	}
	return s.owner(key).Version(key)
}

// Watermark returns the composed global watermark: the minimum over all
// shard watermarks, cached for wmCacheTTL. The cached value is kept
// monotone — per-shard watermarks never regress, so neither does the
// minimum, and refusing to regress keeps a slow shard response from
// un-committing steps the caller already observed.
func (s *ShardedStore) Watermark() int64 {
	s.wmMu.Lock()
	defer s.wmMu.Unlock()
	now := time.Now()
	if now.Sub(s.wmAt) < wmCacheTTL {
		return s.wm
	}
	m := s.shards[0].Watermark()
	for _, sh := range s.shards[1:] {
		if w := sh.Watermark(); w < m {
			m = w
		}
	}
	if m > s.wm {
		s.wm = m
	}
	s.wmAt = now
	return s.wm
}

// RowStaleness returns the owning shard's flush lag against the composed
// global watermark. Substituting the global minimum wm_g for the owner's
// wm_o (wm_g ≤ wm_o) is one-sided safe: the stored row misses at most
// `lag` of the steps committed at wm_o, so it misses at most `lag` of
// the steps committed at the smaller wm_g too.
func (s *ShardedStore) RowStaleness(key uint64) (lag, watermark int64, err error) {
	if key >= uint64(s.rows) {
		return 0, 0, keyRangeError(key, s.rows)
	}
	lag, _, err = s.owner(key).RowStaleness(key)
	if err != nil {
		return 0, 0, err
	}
	return lag, s.Watermark(), nil
}

// FlushKey routes the urgent flush to the owning shard.
func (s *ShardedStore) FlushKey(key uint64) (bool, error) {
	if key >= uint64(s.rows) {
		return false, keyRangeError(key, s.rows)
	}
	return s.owner(key).FlushKey(key)
}

// TopK fans the query out to every shard (each scans only the rows it
// owns) and merges the per-shard candidate lists into the global best k.
func (s *ShardedStore) TopK(ctx context.Context, query []float32, k int) ([]ScoredRow, error) {
	if len(query) != s.dim {
		return nil, fmt.Errorf("store: query length %d, want dim %d", len(query), s.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("store: k must be ≥ 1, got %d", k)
	}
	n := len(s.shards)
	results := make([][]ScoredRow, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for sh := 0; sh < n; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			results[sh], errs[sh] = s.shards[sh].TopK(ctx, query, k)
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var merged []ScoredRow
	for _, r := range results {
		merged = append(merged, r...)
	}
	sortScored(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}

// Close closes every shard and returns the first error.
func (s *ShardedStore) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
