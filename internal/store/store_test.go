package store_test

import (
	"context"
	"strings"
	"testing"

	"frugal/internal/runtime"
	"frugal/internal/store"
)

func newHost(t *testing.T, rows int64, dim int) *runtime.Host {
	t.Helper()
	h, err := runtime.NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) {
		for j := range row {
			row[j] = float32(key) + float32(j)*0.125
		}
	})
	return h
}

func TestLocalStoreUncoordinated(t *testing.T) {
	h := newHost(t, 16, 4)
	st, err := store.NewLocal(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Coordinated() {
		t.Fatal("uncoordinated local store reports coordinated")
	}
	if st.Rows() != 16 || st.Dim() != 4 {
		t.Fatalf("shape = %d×%d", st.Rows(), st.Dim())
	}

	dst := make([]float32, 4)
	if _, err := st.ReadRow(16, dst); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	v, err := st.ReadRow(3, dst)
	if err != nil || v != 0 {
		t.Fatalf("ReadRow = (%d, %v)", v, err)
	}
	if dst[1] != 3.125 {
		t.Fatalf("row = %v", dst)
	}

	// Write-through scatter: immediately visible, version bumped.
	if err := st.Scatter(0, []store.KeyDelta{{Key: 3, Delta: []float32{1, 1, 1, 1}}}); err != nil {
		t.Fatal(err)
	}
	v, _ = st.ReadRow(3, dst)
	if v != 1 || dst[1] != 4.125 {
		t.Fatalf("after scatter: version %d row %v", v, dst)
	}

	// Degenerate consistency surface.
	if wm := st.Watermark(); wm != -1 {
		t.Fatalf("watermark = %d, want -1", wm)
	}
	lag, wm, err := st.RowStaleness(3)
	if err != nil || lag != 0 || wm != -1 {
		t.Fatalf("RowStaleness = (%d, %d, %v)", lag, wm, err)
	}
	flushed, err := st.FlushKey(3)
	if err != nil || flushed {
		t.Fatalf("FlushKey = (%v, %v), want (false, nil)", flushed, err)
	}
}

func TestLocalStoreGatherAndTopK(t *testing.T) {
	h := newHost(t, 32, 4)
	st, err := store.NewLocal(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5, 0, 31, 5}
	dst := make([]float32, len(keys)*4)
	vers := make([]uint64, len(keys))
	if err := st.Gather(keys, dst, vers); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if dst[i*4] != float32(k) {
			t.Fatalf("gather[%d] key %d starts with %v", i, k, dst[i*4])
		}
	}
	if err := st.Gather(keys, dst[:3], nil); err == nil {
		t.Fatal("short dst accepted")
	}

	// Rows grow with the key, so the top scorer for a positive query is
	// the last row, descending from there.
	top, err := st.TopK(context.Background(), []float32{1, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || top[0].Key != 31 || top[1].Key != 30 || top[2].Key != 29 {
		t.Fatalf("topk = %+v", top)
	}
	if top[0].Score <= top[1].Score || top[1].Score <= top[2].Score {
		t.Fatalf("topk scores not descending: %+v", top)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.TopK(canceled, []float32{1, 1, 1, 1}, 3); err == nil {
		t.Fatal("canceled topk succeeded")
	}
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := store.NewSharded(nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
	a, _ := store.NewLocal(newHost(t, 16, 4), nil)
	b, _ := store.NewLocal(newHost(t, 16, 8), nil)
	if _, err := store.NewSharded([]store.Store{a, b}); err == nil {
		t.Fatal("mismatched dims accepted")
	}
}

// TestShardedOverLocalStores composes plain LocalStores (each holding
// the full key space — routing still sends each key to exactly one) and
// checks that scatters land only on the owner.
func TestShardedOverLocalStores(t *testing.T) {
	hosts := make([]*runtime.Host, 3)
	shards := make([]store.Store, 3)
	for i := range shards {
		hosts[i] = newHost(t, 30, 4)
		st, err := store.NewLocal(hosts[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = st
	}
	st, err := store.NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 3 {
		t.Fatalf("NumShards = %d", st.NumShards())
	}

	upd := make([]store.KeyDelta, 30)
	for k := range upd {
		upd[k] = store.KeyDelta{Key: uint64(k), Delta: []float32{100, 0, 0, 0}}
	}
	if err := st.Scatter(0, upd); err != nil {
		t.Fatal(err)
	}
	// Each host must carry exactly its owned keys' bumps: version 1 on
	// the owner, 0 elsewhere.
	for k := uint64(0); k < 30; k++ {
		bumped := 0
		for i := range hosts {
			if hosts[i].Version(k) == 1 {
				bumped++
			}
		}
		if bumped != 1 {
			t.Fatalf("key %d bumped on %d shards, want exactly 1", k, bumped)
		}
	}
	// And the composed read must see the write.
	row := make([]float32, 4)
	for k := uint64(0); k < 30; k++ {
		v, err := st.ReadRow(k, row)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1 || row[0] != float32(k)+100 {
			t.Fatalf("key %d: version %d row[0] %v", k, v, row[0])
		}
	}
}

func TestTrainSlabRejectsCoordinated(t *testing.T) {
	// A fake coordinated store: LocalStore cannot be coordinated without
	// a live controller, so use the interface directly.
	st := coordinatedFake{}
	if _, err := store.NewTrainSlab(st); err == nil {
		t.Fatal("coordinated store accepted as a training slab")
	} else if !strings.Contains(err.Error(), "uncoordinated") {
		t.Fatalf("error %q does not explain the constraint", err)
	}
}

type coordinatedFake struct{ store.Store }

func (coordinatedFake) Coordinated() bool { return true }

// TestTrainSlabWriteThrough checks the RowStore surface over an
// uncoordinated local store: reads, versioned writes, batch applies.
func TestTrainSlabWriteThrough(t *testing.T) {
	h := newHost(t, 16, 4)
	ls, err := store.NewLocal(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := store.NewTrainSlab(ls)
	if err != nil {
		t.Fatal(err)
	}
	var _ runtime.RowStore = slab

	if slab.Rows() != 16 || slab.Dim() != 4 {
		t.Fatalf("shape = %d×%d", slab.Rows(), slab.Dim())
	}
	dst := make([]float32, 4)
	if v := slab.ReadRow(2, dst); v != 0 || dst[0] != 2 {
		t.Fatalf("ReadRow = %d, %v", v, dst)
	}
	slab.ApplyDelta(2, []float32{1, 0, 0, 0}, 0)
	if v := slab.Version(2); v != 1 {
		t.Fatalf("version after ApplyDelta = %d", v)
	}
	slab.ReadRowDirect(2, dst)
	if dst[0] != 3 {
		t.Fatalf("row after ApplyDelta = %v", dst)
	}
	if s := slab.OptState(2); s != 0 {
		t.Fatalf("OptState = %v, want 0", s)
	}
	if r := slab.WriteRetries(); r != 0 {
		t.Fatalf("WriteRetries = %d, want 0", r)
	}
}

// TestJobTrainsAgainstSlabOverride runs a real EngineDirect job against
// a TrainSlab and checks it matches the identical job over its own host
// slab — the runtime seam end to end. The external slab is initialised
// with the job's own init so the trajectories are comparable.
func TestJobTrainsAgainstSlabOverride(t *testing.T) {
	const rows, dim, steps = 64, 8, 20

	// Reference: ordinary in-process job.
	ref, err := runtime.NewMicro(runtime.Config{
		Engine: runtime.EngineDirect, Rows: rows, Dim: dim, Seed: 3,
	}, syntheticTrace(rows, steps), steps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	// Override: same config, but the slab is an uncoordinated store
	// seeded with the reference job's initial state. Seed the host by
	// replaying the reference init (same Seed ⇒ same init stream).
	h, err := runtime.NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	initJob, err := runtime.NewMicro(runtime.Config{
		Engine: runtime.EngineDirect, Rows: rows, Dim: dim, Seed: 3,
	}, syntheticTrace(rows, steps), steps)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float32, dim)
	h.Init(func(key uint64, dst []float32) {
		initJob.Host().ReadRowLocked(key, row)
		copy(dst, row)
	})
	ls, err := store.NewLocal(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := store.NewTrainSlab(ls)
	if err != nil {
		t.Fatal(err)
	}
	job, err := runtime.NewMicro(runtime.Config{
		Engine: runtime.EngineDirect, Rows: rows, Dim: dim, Seed: 3, Slab: slab,
	}, syntheticTrace(rows, steps), steps)
	if err != nil {
		t.Fatal(err)
	}
	if job.Host() != nil {
		t.Fatal("slab-override job still owns a host")
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != steps {
		t.Fatalf("completed %d steps, want %d", res.Steps, steps)
	}

	// Same trace, same init, same optimizer ⇒ identical parameters.
	want := make([]float32, dim)
	got := make([]float32, dim)
	for k := uint64(0); k < rows; k++ {
		ref.Host().ReadRowLocked(k, want)
		h.ReadRowLocked(k, got)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("key %d dim %d: %v (host) vs %v (slab override)", k, j, want[j], got[j])
			}
		}
	}
}

// TestSlabOverrideRejectsAdagrad pins the validation: the accumulator
// lives in host memory, so Adagrad cannot ride an external slab.
func TestSlabOverrideRejectsAdagrad(t *testing.T) {
	h := newHost(t, 16, 4)
	ls, _ := store.NewLocal(h, nil)
	slab, _ := store.NewTrainSlab(ls)
	_, err := runtime.NewMicro(runtime.Config{
		Engine: runtime.EngineDirect, Rows: 16, Dim: 4,
		Optimizer: runtime.OptAdagrad, Slab: slab,
	}, syntheticTrace(16, 4), 4)
	if err == nil || !strings.Contains(err.Error(), "Adagrad") {
		t.Fatalf("Adagrad over external slab = %v, want rejection", err)
	}

	// Shape mismatch is rejected too.
	_, err = runtime.NewMicro(runtime.Config{
		Engine: runtime.EngineDirect, Rows: 32, Dim: 4, Slab: slab,
	}, syntheticTrace(32, 4), 4)
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape mismatch = %v, want rejection", err)
	}
}

// syntheticTrace is a minimal KeyTrace: `steps` rounds over the whole
// key space in order.
func syntheticTrace(rows int64, steps int64) runtime.KeyTrace {
	return &fullSweepTrace{rows: rows, steps: steps}
}

type fullSweepTrace struct {
	rows, steps, next int64
}

func (tr *fullSweepTrace) Next() ([]uint64, bool) {
	if tr.next >= tr.steps {
		return nil, false
	}
	tr.next++
	keys := make([]uint64, tr.rows)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys, true
}

func (tr *fullSweepTrace) Steps() int64 { return tr.steps }
func (tr *fullSweepTrace) Batch() int   { return int(tr.rows) }
