package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeRoundtripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		src := make([]float32, n)
		span := float32(math.Pow(10, float64(rng.Intn(5))-2)) // ranges 1e-2 … 1e2
		off := (rng.Float32() - 0.5) * 10
		for i := range src {
			src[i] = off + (rng.Float32()-0.5)*span
		}
		q := make([]int8, n)
		scale, zero := QuantizeRow(src, q)
		dst := make([]float32, n)
		DequantizeRow(q, scale, zero, dst)

		lo, hi := minMax(src)
		bound := float64(hi-lo)/510*(1+1e-4) + 1e-7
		for i := range src {
			if err := math.Abs(float64(src[i] - dst[i])); err > bound {
				t.Fatalf("trial %d elem %d: |%g − %g| = %g exceeds (max−min)/510 = %g",
					trial, i, src[i], dst[i], err, bound)
			}
			if dst[i] < lo-float32(bound) || dst[i] > hi+float32(bound) {
				t.Fatalf("trial %d elem %d: dequantized %g escapes the row range [%g, %g]",
					trial, i, dst[i], lo, hi)
			}
		}
	}
}

func TestQuantizeAllEqualRowExact(t *testing.T) {
	src := []float32{3.25, 3.25, 3.25, 3.25, 3.25}
	q := make([]int8, len(src))
	scale, zero := QuantizeRow(src, q)
	if scale != 0 || zero != 3.25 {
		t.Fatalf("scale %g zero %g, want 0, 3.25", scale, zero)
	}
	dst := make([]float32, len(src))
	DequantizeRow(q, scale, zero, dst)
	for i, v := range dst {
		if v != 3.25 {
			t.Fatalf("elem %d: %g, want exact 3.25", i, v)
		}
	}
}

// TestQuantizeContracts: repeated quantize→dequantize cycles must not
// walk a row away — every pass reconstructs within the *previous*
// pass's range, so the drift from the original stays inside the first
// pass's error bound at every depth.
func TestQuantizeContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		src := make([]float32, n)
		for i := range src {
			src[i] = (rng.Float32() - 0.5) * 4
		}
		lo, hi := minMax(src)
		bound := float64(hi-lo)/510*(1+1e-4) + 1e-7
		cur := append([]float32(nil), src...)
		q := make([]int8, n)
		for depth := 0; depth < 5; depth++ {
			prevLo, prevHi := minMax(cur)
			scale, zero := QuantizeRow(cur, q)
			DequantizeRow(q, scale, zero, cur)
			curLo, curHi := minMax(cur)
			eps := float32(1e-6) + (prevHi-prevLo)*1e-5
			if curLo < prevLo-eps || curHi > prevHi+eps {
				t.Fatalf("trial %d depth %d: range [%g, %g] escaped [%g, %g]",
					trial, depth, curLo, curHi, prevLo, prevHi)
			}
			for i := range cur {
				if err := math.Abs(float64(cur[i] - src[i])); err > 2*bound {
					t.Fatalf("trial %d depth %d elem %d: cumulative drift %g exceeds 2×first-pass bound %g",
						trial, depth, i, err, 2*bound)
				}
			}
		}
	}
}

func TestDotQ8MatchesDequantizedDot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		a := make([]float32, n)
		v := make([]float32, n)
		for i := range a {
			a[i] = (rng.Float32() - 0.5) * 2
			v[i] = (rng.Float32() - 0.5) * 2
		}
		q := make([]int8, n)
		scale, zero := QuantizeRow(v, q)
		dec := make([]float32, n)
		DequantizeRow(q, scale, zero, dec)
		want := float64(Dot(a, dec))
		got := float64(DotQ8(a, q, scale, zero))
		tol := 1e-4 * (1 + math.Abs(want)) * float64(n) / 64
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: DotQ8 %g vs Dot(dequant) %g (tol %g)", trial, got, want, tol)
		}
	}
}

func TestQuantKernelPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on length mismatch", name)
			}
		}()
		f()
	}
	assertPanics("QuantizeRow", func() { QuantizeRow(make([]float32, 3), make([]int8, 4)) })
	assertPanics("DequantizeRow", func() { DequantizeRow(make([]int8, 3), 1, 0, make([]float32, 4)) })
	assertPanics("DotQ8", func() { DotQ8(make([]float32, 3), make([]int8, 4), 1, 0) })
}
