package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float32) bool {
	return math.Abs(float64(a-b)) <= float64(eps)
}

func TestAxpy(t *testing.T) {
	dst := []float32{1, 2, 3}
	Axpy(2, []float32{10, 20, 30}, dst)
	want := []float32{21, 42, 63}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("axpy[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAxpyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Axpy(1, []float32{1}, []float32{1, 2})
}

func TestDot(t *testing.T) {
	got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6})
	if got != 32 {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestAddSub(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 5}
	dst := make([]float32, 2)
	Add(a, b, dst)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("add = %v", dst)
	}
	Sub(a, b, dst)
	if dst[0] != -2 || dst[1] != -3 {
		t.Fatalf("sub = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float32{3, 4}
	if got := L2Norm(x); !almostEqual(got, 5, 1e-6) {
		t.Fatalf("l2 = %v", got)
	}
	if got := L1Norm([]float32{-1, 2, -3}); got != 6 {
		t.Fatalf("l1 = %v", got)
	}
	if got := L2Norm(nil); got != 0 {
		t.Fatalf("l2(nil) = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float32{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("mean(nil) = %v", got)
	}
}

func TestZeroAndScale(t *testing.T) {
	x := []float32{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("scale = %v", x)
	}
	Zero(x)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("zero = %v", x)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 2)
	m.MulVec([]float32{1, 1, 1}, dst)
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("mulvec = %v", dst)
	}
}

func TestMatrixMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 3)
	m.MulVecT([]float32{1, 1}, dst)
	want := []float32{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("mulvecT = %v, want %v", dst, want)
		}
	}
}

func TestMatrixAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(1, []float32{1, 2}, []float32{3, 4})
	want := []float32{3, 4, 6, 8}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("addouter = %v, want %v", m.Data, want)
		}
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for name, f := range map[string]func(){
		"mulvec":   func() { m.MulVec(make([]float32, 3), make([]float32, 2)) },
		"mulvecT":  func() { m.MulVecT(make([]float32, 3), make([]float32, 2)) },
		"addouter": func() { m.AddOuter(1, make([]float32, 3), make([]float32, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected shape panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReLUForwardBackward(t *testing.T) {
	x := []float32{-1, 0, 2}
	mask := make([]float32, 3)
	ReLU(x, mask)
	if x[0] != 0 || x[1] != 0 || x[2] != 2 {
		t.Fatalf("relu = %v", x)
	}
	grad := []float32{5, 5, 5}
	ReLUBackward(grad, mask)
	if grad[0] != 0 || grad[1] != 0 || grad[2] != 5 {
		t.Fatalf("relu backward = %v", grad)
	}
}

func TestSigmoid(t *testing.T) {
	if got := SigmoidScalar(0); !almostEqual(got, 0.5, 1e-6) {
		t.Fatalf("sigmoid(0) = %v", got)
	}
	x := []float32{0, 100, -100}
	Sigmoid(x)
	if !almostEqual(x[0], 0.5, 1e-6) || x[1] < 0.999 || x[2] > 0.001 {
		t.Fatalf("sigmoid = %v", x)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, 1000)
	XavierInit(rng, x, 50, 50)
	bound := float32(math.Sqrt(6.0 / 100.0))
	for i, v := range x {
		if v < -bound || v > bound {
			t.Fatalf("xavier[%d] = %v outside ±%v", i, v, bound)
		}
	}
	// Not all zero.
	if L2Norm(x) == 0 {
		t.Fatal("xavier produced all zeros")
	}
}

func TestClipNorm(t *testing.T) {
	x := []float32{3, 4}
	if !ClipNorm(x, 1) {
		t.Fatal("expected clipping")
	}
	if !almostEqual(L2Norm(x), 1, 1e-5) {
		t.Fatalf("clipped norm = %v", L2Norm(x))
	}
	y := []float32{0.1, 0.1}
	if ClipNorm(y, 1) {
		t.Fatal("unexpected clipping")
	}
}

func TestSGDStep(t *testing.T) {
	p := []float32{1, 1}
	SGDStep(0.5, []float32{2, -2}, p)
	if p[0] != 0 || p[1] != 2 {
		t.Fatalf("sgd = %v", p)
	}
}

// Property: dot is symmetric and bilinear under scaling.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		d1, d2 := Dot(a, b), Dot(b, a)
		return d1 == d2 || (math.IsNaN(float64(d1)) && math.IsNaN(float64(d2)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: axpy with alpha=0 is identity.
func TestAxpyZeroAlphaProperty(t *testing.T) {
	f := func(x []float32) bool {
		dst := make([]float32, len(x))
		copy(dst, x)
		Axpy(0, x, dst)
		for i := range dst {
			if dst[i] != x[i] && !(math.IsNaN(float64(dst[i])) && math.IsNaN(float64(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVec followed by MulVecT of a one-hot vector recovers scaled rows.
func TestMatrixRowAliasProperty(t *testing.T) {
	m := NewMatrix(4, 3)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	for i := 0; i < 4; i++ {
		row := m.Row(i)
		for j := 0; j < 3; j++ {
			if row[j] != m.At(i, j) {
				t.Fatalf("row alias mismatch at (%d,%d)", i, j)
			}
		}
	}
	m.Set(2, 1, 99)
	if m.Row(2)[1] != 99 {
		t.Fatal("Set not visible through Row")
	}
}
