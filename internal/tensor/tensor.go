// Package tensor provides the minimal dense float32 linear-algebra
// primitives needed by embedding-model training: vector arithmetic,
// matrix-vector and matrix-matrix products, activation functions, and
// parameter initialisation. It depends only on the standard library.
//
// All operations are written against plain []float32 slices so that the
// same routines operate on host-memory slabs, simulated GPU cache lines,
// and gradient buffers without copies.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense float32 vector.
type Vec = []float32

// Axpy computes dst += alpha * x elementwise. dst and x must have equal
// length; it panics otherwise because a silent size mismatch corrupts
// embedding rows.
func Axpy(alpha float32, x, dst []float32) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d != %d", len(x), len(dst)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Add computes dst = a + b elementwise.
func Add(a, b, dst []float32) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(a, b, dst []float32) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Copy copies src into dst and panics on length mismatch.
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// L1Norm returns the sum of absolute values of x.
func L1Norm(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += math.Abs(float64(v))
	}
	return float32(s)
}

// Zero clears x.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float32) float32 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return float32(s / float64(len(x)))
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// MulVec computes dst = m * x where x has length Cols and dst length Rows.
func (m *Matrix) MulVec(x, dst []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: mulvec shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ * x where x has length Rows and dst length Cols.
// It is used for back-propagating through a fully connected layer.
func (m *Matrix) MulVecT(x, dst []float32) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: mulvecT shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuter accumulates m += alpha * a ⊗ b (outer product), with a of length
// Rows and b of length Cols. It is the weight-gradient update of a dense
// layer.
func (m *Matrix) AddOuter(alpha float32, a, b []float32) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: addouter shape mismatch m=%dx%d a=%d b=%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range b {
			row[j] += ai * v
		}
	}
}

// ReLU applies max(0, x) in place and returns a mask of activated units for
// use in the backward pass (1 where x > 0, else 0).
func ReLU(x []float32, mask []float32) {
	for i, v := range x {
		if v > 0 {
			mask[i] = 1
		} else {
			x[i] = 0
			mask[i] = 0
		}
	}
}

// ReLUBackward multiplies grad by the activation mask in place.
func ReLUBackward(grad, mask []float32) {
	for i := range grad {
		grad[i] *= mask[i]
	}
}

// Sigmoid computes the logistic function elementwise in place.
func Sigmoid(x []float32) {
	for i, v := range x {
		x[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// SigmoidScalar computes the logistic function of a single value.
func SigmoidScalar(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// XavierInit fills x with values uniform in ±sqrt(6/(fanIn+fanOut)),
// the Glorot initialisation used by DLRM's embedding and MLP layers.
func XavierInit(rng *rand.Rand, x []float32, fanIn, fanOut int) {
	if fanIn+fanOut <= 0 {
		panic("tensor: xavier init with non-positive fan sum")
	}
	bound := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	for i := range x {
		x[i] = (rng.Float32()*2 - 1) * bound
	}
}

// UniformInit fills x with values uniform in [-bound, +bound].
func UniformInit(rng *rand.Rand, x []float32, bound float32) {
	for i := range x {
		x[i] = (rng.Float32()*2 - 1) * bound
	}
}

// SGDStep applies params -= lr * grad.
func SGDStep(lr float32, grad, params []float32) {
	Axpy(-lr, grad, params)
}

// ClipNorm rescales x in place so that its L2 norm does not exceed maxNorm,
// and reports whether clipping occurred.
func ClipNorm(x []float32, maxNorm float32) bool {
	n := L2Norm(x)
	if n <= maxNorm || n == 0 {
		return false
	}
	Scale(maxNorm/n, x)
	return true
}
