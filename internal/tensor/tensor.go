// Package tensor provides the minimal dense float32 linear-algebra
// primitives needed by embedding-model training: vector arithmetic,
// matrix-vector and matrix-matrix products, activation functions, and
// parameter initialisation. It depends only on the standard library.
//
// All operations are written against plain []float32 slices so that the
// same routines operate on host-memory slabs, simulated GPU cache lines,
// and gradient buffers without copies.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense float32 vector.
type Vec = []float32

// Axpy computes dst += alpha * x elementwise. dst and x must have equal
// length; it panics otherwise because a silent size mismatch corrupts
// embedding rows. The 8-wide unrolled body keeps per-element order, so
// results are bitwise identical to the scalar loop.
func Axpy(alpha float32, x, dst []float32) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d != %d", len(x), len(dst)))
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		xs := x[i : i+8 : i+8]
		ds := dst[i : i+8 : i+8]
		ds[0] += alpha * xs[0]
		ds[1] += alpha * xs[1]
		ds[2] += alpha * xs[2]
		ds[3] += alpha * xs[3]
		ds[4] += alpha * xs[4]
		ds[5] += alpha * xs[5]
		ds[6] += alpha * xs[6]
		ds[7] += alpha * xs[7]
	}
	for ; i < n; i++ {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place (8-wide unrolled;
// elementwise, so bitwise identical to the scalar loop).
func Scale(alpha float32, x []float32) {
	n := len(x)
	i := 0
	for ; i+8 <= n; i += 8 {
		xs := x[i : i+8 : i+8]
		xs[0] *= alpha
		xs[1] *= alpha
		xs[2] *= alpha
		xs[3] *= alpha
		xs[4] *= alpha
		xs[5] *= alpha
		xs[6] *= alpha
		xs[7] *= alpha
	}
	for ; i < n; i++ {
		x[i] *= alpha
	}
}

// Dot returns the inner product of a and b. Four independent accumulators
// break the add dependency chain (≈3× on dim 512); the sum is reassociated
// relative to a scalar loop, but deterministically so — every caller sees
// the same value for the same inputs, which is what the engine-equivalence
// guarantee needs.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d != %d", len(a), len(b)))
	}
	n := len(a)
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		as := a[i : i+8 : i+8]
		bs := b[i : i+8 : i+8]
		s0 += as[0]*bs[0] + as[4]*bs[4]
		s1 += as[1]*bs[1] + as[5]*bs[5]
		s2 += as[2]*bs[2] + as[6]*bs[6]
		s3 += as[3]*bs[3] + as[7]*bs[7]
	}
	var t float32
	for ; i < n; i++ {
		t += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + t
}

// Add computes dst = a + b elementwise.
func Add(a, b, dst []float32) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(a, b, dst []float32) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Copy copies src into dst and panics on length mismatch.
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// L1Norm returns the sum of absolute values of x.
func L1Norm(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += math.Abs(float64(v))
	}
	return float32(s)
}

// Zero clears x. The range-assign form compiles to a runtime memclr, which
// already saturates store bandwidth — do not "unroll" it.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// CopyClear sets dst = src and zeroes src — the fused first-occurrence
// commit step: the (possibly recycled, dirty) delta buffer takes the raw
// gradient and the gradient buffer is returned to its all-zero resting
// state for the next step's compute. Both halves lower to runtime
// memmove/memclr calls. Panics on length mismatch.
func CopyClear(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: copyclear length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
	for i := range src {
		src[i] = 0
	}
}

// AccumClear adds src into dst and zeroes src — the fused repeat-occurrence
// commit step (duplicate keys in a batch sum their occurrence gradients).
// Panics on length mismatch.
func AccumClear(src, dst []float32) {
	Axpy(1, src, dst)
	for i := range src {
		src[i] = 0
	}
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float32) float32 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return float32(s / float64(len(x)))
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// MulVec computes dst = m * x where x has length Cols and dst length Rows.
// Rows are processed four at a time so each load of x[j] feeds four
// dot-products; within a row the accumulation order matches the scalar
// loop, so results are bitwise identical to the naive implementation.
func (m *Matrix) MulVec(x, dst []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: mulvec shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	cols := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		// Re-slicing each row to len(x) lets the compiler drop the r*[j]
		// bounds checks inside the fused loop.
		r0 := m.Data[i*cols:][:len(x)]
		r1 := m.Data[(i+1)*cols:][:len(x)]
		r2 := m.Data[(i+2)*cols:][:len(x)]
		r3 := m.Data[(i+3)*cols:][:len(x)]
		var s0, s1, s2, s3 float32
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < m.Rows; i++ {
		row := m.Row(i)
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ * x where x has length Rows and dst length Cols.
// It is used for back-propagating through a fully connected layer.
func (m *Matrix) MulVecT(x, dst []float32) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: mulvecT shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	Zero(dst)
	cols := m.Cols
	i := 0
	// Four rows at a time: each pass over dst applies four rank-1 partials,
	// quartering the dst read/write traffic. The per-element accumulation
	// order matches the row-sequential scalar loop exactly (s += r0·x0 then
	// r1·x1, …), so results are bitwise identical — including the xi == 0
	// row-skip, which the blocked path preserves by falling back to the
	// scalar loop for blocks containing a zero coefficient (skipping a row
	// is not the same as adding xi*v when v is ±Inf or NaN).
	for ; i+4 <= m.Rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
			// ReLU-masked gradients make zero coefficients common; handle
			// just this block row-sequentially and keep blocking the rest.
			for r := i; r < i+4; r++ {
				xi := x[r]
				if xi == 0 {
					continue
				}
				row := m.Row(r)
				for j, v := range row {
					dst[j] += v * xi
				}
			}
			continue
		}
		r0 := m.Data[i*cols:][:len(dst)]
		r1 := m.Data[(i+1)*cols:][:len(dst)]
		r2 := m.Data[(i+2)*cols:][:len(dst)]
		r3 := m.Data[(i+3)*cols:][:len(dst)]
		for j := range dst {
			s := dst[j]
			s += r0[j] * x0
			s += r1[j] * x1
			s += r2[j] * x2
			s += r3[j] * x3
			dst[j] = s
		}
	}
	for ; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuter accumulates m += alpha * a ⊗ b (outer product), with a of length
// Rows and b of length Cols. It is the weight-gradient update of a dense
// layer.
func (m *Matrix) AddOuter(alpha float32, a, b []float32) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: addouter shape mismatch m=%dx%d a=%d b=%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		// Per-row saxpy, 8-wide unrolled (elementwise — bitwise identical
		// to the scalar loop).
		row := m.Row(i)[:len(b)]
		n := len(b)
		j := 0
		for ; j+8 <= n; j += 8 {
			bs := b[j : j+8 : j+8]
			rs := row[j : j+8 : j+8]
			rs[0] += ai * bs[0]
			rs[1] += ai * bs[1]
			rs[2] += ai * bs[2]
			rs[3] += ai * bs[3]
			rs[4] += ai * bs[4]
			rs[5] += ai * bs[5]
			rs[6] += ai * bs[6]
			rs[7] += ai * bs[7]
		}
		for ; j < n; j++ {
			row[j] += ai * b[j]
		}
	}
}

// ArgMax returns the index of the largest element of x (the first one on
// ties), or -1 for an empty slice. It is the centroid-assignment primitive:
// nearest-by-L2 reduces to ArgMax over dot(c,x) - ||c||²/2, so assignment
// is one MulVec, one Axpy and one ArgMax.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	bv := x[0]
	for i := 1; i < len(x); i++ {
		if x[i] > bv {
			best, bv = i, x[i]
		}
	}
	return best
}

// TopIndices fills idx with the indices of the len(idx) largest elements
// of x, in descending score order (ties broken toward the lower index),
// and returns how many it wrote (min(len(idx), len(x))). It is the probe
// selector of the inverted-file index: pick the top-P centroids from a
// scored list of C without sorting all C. The selection is kept sorted
// in place and maintained by insertion: one branch-predictable compare
// against the current cutoff per element, plus O(P) shifting on the
// ~P·ln(C/P) expected improvements — cheaper in practice than a bounded
// heap, whose every operation chases parent/child links.
func TopIndices(x []float32, idx []int) int {
	p := len(idx)
	if p > len(x) {
		p = len(x)
	}
	if p == 0 {
		return 0
	}
	// beats reports whether element a outranks element b: larger score,
	// or equal score with the lower index.
	beats := func(a, b int) bool {
		return x[a] > x[b] || (x[a] == x[b] && a < b)
	}
	// insert v into the sorted prefix idx[:n], dropping the last element.
	insert := func(n, v int) {
		i := n - 1
		for ; i > 0 && beats(v, idx[i-1]); i-- {
			idx[i] = idx[i-1]
		}
		idx[i] = v
	}
	n := 0
	for v := range x {
		switch {
		case n < p:
			n++
			insert(n, v)
		case beats(v, idx[p-1]):
			insert(p, v)
		}
	}
	return p
}

// ReLU applies max(0, x) in place and returns a mask of activated units for
// use in the backward pass (1 where x > 0, else 0).
func ReLU(x []float32, mask []float32) {
	for i, v := range x {
		if v > 0 {
			mask[i] = 1
		} else {
			x[i] = 0
			mask[i] = 0
		}
	}
}

// ReLUBackward multiplies grad by the activation mask in place.
func ReLUBackward(grad, mask []float32) {
	for i := range grad {
		grad[i] *= mask[i]
	}
}

// Sigmoid computes the logistic function elementwise in place.
func Sigmoid(x []float32) {
	for i, v := range x {
		x[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// SigmoidScalar computes the logistic function of a single value.
func SigmoidScalar(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// XavierInit fills x with values uniform in ±sqrt(6/(fanIn+fanOut)),
// the Glorot initialisation used by DLRM's embedding and MLP layers.
func XavierInit(rng *rand.Rand, x []float32, fanIn, fanOut int) {
	if fanIn+fanOut <= 0 {
		panic("tensor: xavier init with non-positive fan sum")
	}
	bound := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	for i := range x {
		x[i] = (rng.Float32()*2 - 1) * bound
	}
}

// UniformInit fills x with values uniform in [-bound, +bound].
func UniformInit(rng *rand.Rand, x []float32, bound float32) {
	for i := range x {
		x[i] = (rng.Float32()*2 - 1) * bound
	}
}

// SGDStep applies params -= lr * grad.
func SGDStep(lr float32, grad, params []float32) {
	Axpy(-lr, grad, params)
}

// ClipNorm rescales x in place so that its L2 norm does not exceed maxNorm,
// and reports whether clipping occurred.
func ClipNorm(x []float32, maxNorm float32) bool {
	n := L2Norm(x)
	if n <= maxNorm || n == 0 {
		return false
	}
	Scale(maxNorm/n, x)
	return true
}
