package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The unrolled/blocked kernels must agree with the naive scalar loops.
// Elementwise kernels (Axpy, Scale, AddOuter, MulVec rows, CopyClear) and
// the row-sequential MulVecT must be bitwise identical; Dot reassociates
// across four accumulators, so it is compared within float32 ulp slack.

// kernelLengths covers the unrolled body, the scalar tail, and both
// degenerate ends.
var kernelLengths = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100, 512}

func fillRand(rng *rand.Rand, x []float32) {
	for i := range x {
		x[i] = rng.Float32()*4 - 2
	}
}

func TestAxpyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range kernelLengths {
		x := make([]float32, n)
		dst := make([]float32, n)
		want := make([]float32, n)
		fillRand(rng, x)
		fillRand(rng, dst)
		copy(want, dst)
		const alpha = float32(-0.37)
		for i := range want {
			want[i] += alpha * x[i]
		}
		Axpy(alpha, x, dst)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %v, want %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestScaleMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range kernelLengths {
		x := make([]float32, n)
		want := make([]float32, n)
		fillRand(rng, x)
		const alpha = float32(1.618)
		for i := range x {
			want[i] = x[i] * alpha
		}
		Scale(alpha, x)
		for i := range want {
			if x[i] != want[i] {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestDotMatchesScalarWithinUlp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range kernelLengths {
		a := make([]float32, n)
		b := make([]float32, n)
		fillRand(rng, a)
		fillRand(rng, b)
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		// The float64 reference bounds the scalar float32 result too; allow
		// accumulated rounding proportional to n.
		tol := 1e-4 * math.Max(1, math.Abs(want)) * math.Max(1, float64(n)/64)
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: Dot = %v, float64 reference %v (tol %v)", n, got, want, tol)
		}
	}
}

func TestDotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float32, 513)
	b := make([]float32, 513)
	fillRand(rng, a)
	fillRand(rng, b)
	first := Dot(a, b)
	for i := 0; i < 10; i++ {
		if got := Dot(a, b); got != first {
			t.Fatalf("Dot not deterministic: %v then %v", first, got)
		}
	}
}

func TestCopyClear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range kernelLengths {
		src := make([]float32, n)
		fillRand(rng, src)
		want := make([]float32, n)
		copy(want, src)
		dst := make([]float32, n)
		fillRand(rng, dst) // dirty recycled buffer
		CopyClear(dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %v, want %v", n, i, dst[i], want[i])
			}
			if src[i] != 0 {
				t.Fatalf("n=%d: src[%d] = %v after CopyClear, want 0", n, i, src[i])
			}
		}
	}
}

func TestAccumClear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range kernelLengths {
		src := make([]float32, n)
		dst := make([]float32, n)
		want := make([]float32, n)
		fillRand(rng, src)
		fillRand(rng, dst)
		for i := range want {
			want[i] = dst[i] + src[i]
		}
		AccumClear(src, dst)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %v, want %v", n, i, dst[i], want[i])
			}
			if src[i] != 0 {
				t.Fatalf("n=%d: src[%d] = %v after AccumClear, want 0", n, i, src[i])
			}
		}
	}
}

func TestMulVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {4, 8}, {5, 7}, {7, 16}, {64, 64}, {65, 33}} {
		rows, cols := shape[0], shape[1]
		m := NewMatrix(rows, cols)
		fillRand(rng, m.Data)
		x := make([]float32, cols)
		fillRand(rng, x)
		got := make([]float32, rows)
		m.MulVec(x, got)
		for i := 0; i < rows; i++ {
			var want float32
			for j, v := range m.Row(i) {
				want += v * x[j]
			}
			if got[i] != want {
				t.Fatalf("%dx%d: dst[%d] = %v, want %v (bitwise)", rows, cols, i, got[i], want)
			}
		}
	}
}

func TestMulVecTMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {4, 8}, {5, 7}, {16, 7}, {64, 64}, {65, 33}} {
		rows, cols := shape[0], shape[1]
		for _, withZeros := range []bool{false, true} {
			m := NewMatrix(rows, cols)
			fillRand(rng, m.Data)
			x := make([]float32, rows)
			fillRand(rng, x)
			if withZeros {
				// ReLU-masked upstream gradient: zero every third entry.
				for i := 0; i < rows; i += 3 {
					x[i] = 0
				}
			}
			want := make([]float32, cols)
			for i := 0; i < rows; i++ {
				xi := x[i]
				if xi == 0 {
					continue
				}
				for j, v := range m.Row(i) {
					want[j] += v * xi
				}
			}
			got := make([]float32, cols)
			m.MulVecT(x, got)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%dx%d zeros=%v: dst[%d] = %v, want %v (bitwise)",
						rows, cols, withZeros, j, got[j], want[j])
				}
			}
		}
	}
}

func TestAddOuterMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {4, 8}, {5, 7}, {16, 17}, {64, 64}} {
		rows, cols := shape[0], shape[1]
		m := NewMatrix(rows, cols)
		fillRand(rng, m.Data)
		want := NewMatrix(rows, cols)
		copy(want.Data, m.Data)
		a := make([]float32, rows)
		b := make([]float32, cols)
		fillRand(rng, a)
		fillRand(rng, b)
		a[rows/2] = 0 // exercise the zero-coefficient skip
		const alpha = float32(0.25)
		for i := 0; i < rows; i++ {
			ai := alpha * a[i]
			if ai == 0 {
				continue
			}
			row := want.Row(i)
			for j, v := range b {
				row[j] += ai * v
			}
		}
		m.AddOuter(alpha, a, b)
		for i := range m.Data {
			if m.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d: data[%d] = %v, want %v (bitwise)", rows, cols, i, m.Data[i], want.Data[i])
			}
		}
	}
}

func TestKernelPanicsPreserved(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on length mismatch", name)
			}
		}()
		f()
	}
	a3, a4 := make([]float32, 3), make([]float32, 4)
	mustPanic("Axpy", func() { Axpy(1, a3, a4) })
	mustPanic("Dot", func() { Dot(a3, a4) })
	mustPanic("CopyClear", func() { CopyClear(a3, a4) })
	mustPanic("AccumClear", func() { AccumClear(a3, a4) })
	m := NewMatrix(2, 3)
	mustPanic("MulVec", func() { m.MulVec(a4, a3) })
	mustPanic("MulVecT", func() { m.MulVecT(a3, a4) })
	mustPanic("AddOuter", func() { m.AddOuter(1, a3, a4) })
}

func TestArgMax(t *testing.T) {
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d, want -1", got)
	}
	cases := []struct {
		x    []float32
		want int
	}{
		{[]float32{3}, 0},
		{[]float32{1, 5, 2}, 1},
		{[]float32{-3, -1, -2}, 1},
		{[]float32{2, 7, 7, 1}, 1}, // first index wins ties
		{[]float32{0, 0, 0}, 0},
	}
	for _, tc := range cases {
		if got := ArgMax(tc.x); got != tc.want {
			t.Fatalf("ArgMax(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

// TestTopIndicesMatchesSort cross-checks the bounded-heap probe selector
// against a full sort for many shapes, including ties and P >= len(x).
func TestTopIndicesMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range kernelLengths {
		x := make([]float32, n)
		fillRand(rng, x)
		// Force ties so the lower-index tiebreak is exercised.
		for i := 3; i+4 < n; i += 4 {
			x[i+4] = x[i]
		}
		for _, p := range []int{0, 1, 2, 3, 8, n, n + 5} {
			idx := make([]int, p)
			got := TopIndices(x, idx)
			want := p
			if want > n {
				want = n
			}
			if got != want {
				t.Fatalf("n=%d p=%d: wrote %d, want %d", n, p, got, want)
			}
			// Reference: indices sorted by (score desc, index asc).
			ref := make([]int, n)
			for i := range ref {
				ref[i] = i
			}
			sort.SliceStable(ref, func(a, b int) bool {
				ia, ib := ref[a], ref[b]
				return x[ia] > x[ib] || (x[ia] == x[ib] && ia < ib)
			})
			for i := 0; i < got; i++ {
				if idx[i] != ref[i] {
					t.Fatalf("n=%d p=%d: idx[%d] = %d (score %v), want %d (score %v)",
						n, p, i, idx[i], x[idx[i]], ref[i], x[ref[i]])
				}
			}
		}
	}
}
