package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks at the embedding dimensions the runtime actually
// uses (64 is the datasets' default EmbDim; 512 exercises the MLP widths).
// cmd/frugal-bench -perf runs wall-clock equivalents of these through
// testing.Benchmark and records them in BENCH_baseline.json.

func benchVec(n int) ([]float32, []float32) {
	rng := rand.New(rand.NewSource(42))
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	return a, b
}

func BenchmarkAxpy(b *testing.B) {
	for _, dim := range []int{64, 512} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			x, dst := benchVec(dim)
			b.SetBytes(int64(8 * dim))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x, dst)
			}
		})
	}
}

func BenchmarkDot(b *testing.B) {
	for _, dim := range []int{64, 512} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			x, y := benchVec(dim)
			b.SetBytes(int64(8 * dim))
			b.ReportAllocs()
			var s float32
			for i := 0; i < b.N; i++ {
				s += Dot(x, y)
			}
			sinkF32 = s
		})
	}
}

func BenchmarkScale(b *testing.B) {
	for _, dim := range []int{64, 512} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			x, _ := benchVec(dim)
			b.SetBytes(int64(4 * dim))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Scale(1.0000001, x)
			}
		})
	}
}

func BenchmarkZero(b *testing.B) {
	for _, dim := range []int{64, 512} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			x, _ := benchVec(dim)
			b.SetBytes(int64(4 * dim))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Zero(x)
			}
		})
	}
}

func BenchmarkMulVec(b *testing.B) {
	for _, shape := range [][2]int{{64, 64}, {256, 512}} {
		rows, cols := shape[0], shape[1]
		b.Run(fmt.Sprintf("%dx%d", rows, cols), func(b *testing.B) {
			m := NewMatrix(rows, cols)
			rng := rand.New(rand.NewSource(7))
			for i := range m.Data {
				m.Data[i] = rng.Float32()
			}
			x, _ := benchVec(cols)
			dst := make([]float32, rows)
			b.SetBytes(int64(4 * rows * cols))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.MulVec(x, dst)
			}
		})
	}
}

func BenchmarkMulVecT(b *testing.B) {
	for _, shape := range [][2]int{{64, 64}, {256, 512}} {
		rows, cols := shape[0], shape[1]
		b.Run(fmt.Sprintf("%dx%d", rows, cols), func(b *testing.B) {
			m := NewMatrix(rows, cols)
			rng := rand.New(rand.NewSource(7))
			for i := range m.Data {
				m.Data[i] = rng.Float32()
			}
			x, _ := benchVec(rows)
			dst := make([]float32, cols)
			b.SetBytes(int64(4 * rows * cols))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.MulVecT(x, dst)
			}
		})
	}
}

func BenchmarkAddOuter(b *testing.B) {
	for _, shape := range [][2]int{{64, 64}, {256, 512}} {
		rows, cols := shape[0], shape[1]
		b.Run(fmt.Sprintf("%dx%d", rows, cols), func(b *testing.B) {
			m := NewMatrix(rows, cols)
			a, _ := benchVec(rows)
			x, _ := benchVec(cols)
			b.SetBytes(int64(4 * rows * cols))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.AddOuter(0.01, a, x)
			}
		})
	}
}

// sinkF32 defeats dead-code elimination in reduction benchmarks.
var sinkF32 float32
