package tensor

// Quantized-row kernels for the cold tier of the tiered slab: per-row
// affine int8 with a float32 (scale, zero) pair.
//
//	q_i  = round((v_i − zero)/scale) − 128 ∈ [−128, 127]
//	v̂_i = zero + scale·(q_i + 128)
//
// with zero = min(v) and scale = (max(v) − min(v))/255, so the codes
// span the row's full dynamic range and the reconstruction error is
// bounded by scale/2 = (max − min)/510 per element. An all-equal row
// (scale 0) encodes every element as −128 and dequantizes to `zero`
// exactly. Repeated quantize→dequantize cycles contract: each pass's
// range is a subset of the last, so the codes never walk away — and the
// checkpoint log sidesteps the question entirely by storing a cold
// row's (codes, scale, zero) verbatim and restoring them bit-identically
// without a requantize.
//
// Like the float kernels, the loops are unrolled 8-wide with full slice
// expressions so the compiler can eliminate bounds checks; the quantize
// pass multiplies by a precomputed 255/range instead of dividing per
// element.

// QuantizeRow encodes src into q (same length) and returns the row's
// (scale, zero) pair. Panics if the lengths differ.
func QuantizeRow(src []float32, q []int8) (scale, zero float32) {
	if len(src) != len(q) {
		panic("tensor: QuantizeRow length mismatch")
	}
	if len(src) == 0 {
		return 0, 0
	}
	lo, hi := minMax(src)
	scale, zero = (hi-lo)/255, lo
	if scale <= 0 {
		// All-equal (or pathological fp) row: one code, exact zero-point
		// reconstruction.
		for i := range q {
			q[i] = -128
		}
		return 0, lo
	}
	inv := 255 / (hi - lo)
	i := 0
	for ; i+8 <= len(src); i += 8 {
		s := src[i : i+8 : i+8]
		d := q[i : i+8 : i+8]
		d[0] = quantOne(s[0], zero, inv)
		d[1] = quantOne(s[1], zero, inv)
		d[2] = quantOne(s[2], zero, inv)
		d[3] = quantOne(s[3], zero, inv)
		d[4] = quantOne(s[4], zero, inv)
		d[5] = quantOne(s[5], zero, inv)
		d[6] = quantOne(s[6], zero, inv)
		d[7] = quantOne(s[7], zero, inv)
	}
	for ; i < len(src); i++ {
		q[i] = quantOne(src[i], zero, inv)
	}
	return scale, zero
}

// quantOne maps one element to its code with round-half-up in the
// non-negative normalized domain [0, 255]; the clamp absorbs the ulp of
// slack the normalization multiply can introduce at the range ends.
func quantOne(v, zero, inv float32) int8 {
	t := int32((v-zero)*inv + 0.5)
	if t < 0 {
		t = 0
	} else if t > 255 {
		t = 255
	}
	return int8(t - 128)
}

// DequantizeRow decodes q into dst. Panics if the lengths differ.
func DequantizeRow(q []int8, scale, zero float32, dst []float32) {
	if len(q) != len(dst) {
		panic("tensor: DequantizeRow length mismatch")
	}
	i := 0
	for ; i+8 <= len(q); i += 8 {
		s := q[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = zero + scale*float32(int32(s[0])+128)
		d[1] = zero + scale*float32(int32(s[1])+128)
		d[2] = zero + scale*float32(int32(s[2])+128)
		d[3] = zero + scale*float32(int32(s[3])+128)
		d[4] = zero + scale*float32(int32(s[4])+128)
		d[5] = zero + scale*float32(int32(s[5])+128)
		d[6] = zero + scale*float32(int32(s[6])+128)
		d[7] = zero + scale*float32(int32(s[7])+128)
	}
	for ; i < len(q); i++ {
		dst[i] = zero + scale*float32(int32(q[i])+128)
	}
}

// DotQ8 returns the dot product of a float32 query with a quantized
// row, without materializing the dequantized row:
//
//	⟨a, v̂⟩ = zero·Σa_i + scale·Σ a_i·(q_i + 128)
//
// Both sums run in one pass with 4 accumulators each (the float Dot
// kernel's shape). The result matches Dot(a, DequantizeRow(q)) up to
// float reassociation — the serving scan uses it for candidate ranking
// and re-reads winners at full precision, so the tiny drift never
// reaches a served score. Panics if the lengths differ.
func DotQ8(a []float32, q []int8, scale, zero float32) float32 {
	if len(a) != len(q) {
		panic("tensor: DotQ8 length mismatch")
	}
	var s0, s1, s2, s3 float32 // Σ a_i
	var p0, p1, p2, p3 float32 // Σ a_i·(q_i+128)
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := q[i : i+4 : i+4]
		s0 += x[0]
		s1 += x[1]
		s2 += x[2]
		s3 += x[3]
		p0 += x[0] * float32(int32(y[0])+128)
		p1 += x[1] * float32(int32(y[1])+128)
		p2 += x[2] * float32(int32(y[2])+128)
		p3 += x[3] * float32(int32(y[3])+128)
	}
	sum, prod := (s0+s1)+(s2+s3), (p0+p1)+(p2+p3)
	for ; i < len(a); i++ {
		sum += a[i]
		prod += a[i] * float32(int32(q[i])+128)
	}
	return zero*sum + scale*prod
}

// minMax returns the extrema of x in one 8-wide pass.
func minMax(x []float32) (lo, hi float32) {
	lo, hi = x[0], x[0]
	i := 0
	for ; i+8 <= len(x); i += 8 {
		s := x[i : i+8 : i+8]
		for j := 0; j < 8; j++ {
			v := s[j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	for ; i < len(x); i++ {
		v := x[i]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
