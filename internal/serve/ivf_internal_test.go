package serve

import (
	"math"
	"testing"

	"frugal/internal/runtime"
)

// twoClusterHost puts keys [0,32) at (10,…) and [32,64) at (…,10), with a
// per-key epsilon so rows stay distinct.
func twoClusterHost(t *testing.T) *runtime.Host {
	t.Helper()
	h, err := runtime.NewHost(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) {
		if key < 32 {
			row[0] = 10
		} else {
			row[7] = 10
		}
		row[3] = float32(key) * 1e-3
	})
	return h
}

func newTestScratch(c int) *topkScratch {
	return &topkScratch{
		scores: make([]float32, topkChunk),
		row:    make([]float32, 8),
		cent:   make([]float32, c),
		probes: make([]int, c),
	}
}

// TestIVFBuildPartitionsClusters checks that the k-means build separates
// an obviously clusterable slab and that probing one partition returns
// only its members.
func TestIVFBuildPartitionsClusters(t *testing.T) {
	h := twoClusterHost(t)
	idx := newIVFIndex(64, 8, 2, 1)
	idx.build(h)
	if got := len(idx.parts[0].keys) + len(idx.parts[1].keys); got != 64 {
		t.Fatalf("partitions hold %d keys, want 64", got)
	}
	// All keys < 32 must share a partition, and keys ≥ 32 the other.
	p0 := idx.part[0]
	for key := uint64(1); key < 64; key++ {
		same := idx.part[key] == p0
		if want := key < 32; same != want {
			t.Fatalf("key %d landed in partition %d (key 0 in %d)", key, idx.part[key], p0)
		}
	}
	// A query at cluster A's center with nprobe=1 only sees cluster A.
	query := []float32{1, 0, 0, 0, 0, 0, 0, 0}
	heap := idx.search(query, 5, 1, newTestScratch(2))
	if len(heap) != 5 {
		t.Fatalf("search returned %d candidates", len(heap))
	}
	for _, c := range heap {
		if c.Key >= 32 {
			t.Fatalf("nprobe=1 search leaked key %d from the far cluster", c.Key)
		}
	}
}

// TestIVFRepairQueue drives the watermark-bounded repair contract
// directly: dedupe keeps the first unrepaired watermark, repair(upTo)
// drains exactly the records at or below upTo, and a repaired row moves
// to its new partition.
func TestIVFRepairQueue(t *testing.T) {
	h := twoClusterHost(t)
	idx := newIVFIndex(64, 8, 2, 1)
	idx.build(h)

	// Rewrite key 5 to sit in cluster B, as a flush would.
	delta := make([]float32, 8)
	delta[0], delta[7] = -10, 10
	h.ApplyDelta(5, delta, 0)
	idx.markDirty(5, 3)
	idx.markDirty(5, 7) // dedupe: first watermark wins
	idx.markDirty(6, 9)

	st := idx.stats()
	if st.Pending != 2 || st.OldestPending != 3 {
		t.Fatalf("queue before repair: %+v", st)
	}

	oldPart := idx.part[5]
	idx.repair(h, 5, 0) // covers wm ≤ 5: key 5 only
	st = idx.stats()
	if st.Pending != 1 || st.OldestPending != 9 || st.Repairs != 1 {
		t.Fatalf("queue after bounded repair: %+v", st)
	}
	if idx.part[5] == oldPart {
		t.Fatal("repair did not move the rewritten row to its new partition")
	}
	if idx.part[5] != idx.part[40] {
		t.Fatalf("key 5 repaired into partition %d, want cluster B's %d", idx.part[5], idx.part[40])
	}
	// The moved row is findable through its new partition.
	query := []float32{0, 0, 0, 0, 0, 0, 0, 1}
	found := false
	for _, c := range idx.search(query, 33, 1, newTestScratch(2)) {
		if c.Key == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("repaired key not served from its new partition")
	}

	idx.repair(h, math.MaxInt64, 0) // fresh: drain everything
	st = idx.stats()
	if st.Pending != 0 || st.Repairs != 2 {
		t.Fatalf("queue after full repair: %+v", st)
	}

	// Opportunistic budget: a repair with no obligation still drains.
	idx.markDirty(6, 11)
	idx.repair(h, math.MinInt64, ivfRepairBudget)
	if st = idx.stats(); st.Pending != 0 {
		t.Fatalf("opportunistic repair left %d pending", st.Pending)
	}
}

// TestParseIndexKind pins the flag syntax.
func TestParseIndexKind(t *testing.T) {
	for in, want := range map[string]IndexKind{
		"": IndexAuto, "auto": IndexAuto, "flat": IndexFlat, "ivf": IndexIVF,
	} {
		got, err := ParseIndexKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseIndexKind(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("String() round trip: %q → %q", in, got.String())
		}
	}
	if _, err := ParseIndexKind("hnsw"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := IndexKind(9).Validate(); err == nil {
		t.Fatal("unknown kind validated")
	}
}
