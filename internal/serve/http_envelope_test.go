package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"frugal/internal/serve"
	"frugal/internal/shard"
	"frugal/internal/store"
)

// gateStore is a minimal store.Store for driving the HTTP error paths:
// reads optionally block on a gate channel (to pin the admission slot or
// outlive a request deadline), and the staleness surface is canned.
type gateStore struct {
	rows        int64
	dim         int
	coordinated bool
	gate        chan struct{} // when non-nil, ReadRow blocks until closed
	lag         int64         // RowStaleness lag
	wm          int64         // watermark
}

func (s *gateStore) Rows() int64       { return s.rows }
func (s *gateStore) Dim() int          { return s.dim }
func (s *gateStore) Coordinated() bool { return s.coordinated }

func (s *gateStore) ReadRow(key uint64, dst []float32) (uint64, error) {
	if s.gate != nil {
		<-s.gate
	}
	for j := range dst {
		dst[j] = float32(key)
	}
	return 1, nil
}

func (s *gateStore) Gather(keys []uint64, dst []float32, versions []uint64) error {
	for i, k := range keys {
		if _, err := s.ReadRow(k, dst[i*s.dim:(i+1)*s.dim]); err != nil {
			return err
		}
		if versions != nil {
			versions[i] = 1
		}
	}
	return nil
}

func (s *gateStore) Scatter(step int64, updates []store.KeyDelta) error { return nil }
func (s *gateStore) Version(key uint64) (uint64, error)                 { return 1, nil }
func (s *gateStore) Watermark() int64                                   { return s.wm }
func (s *gateStore) RowStaleness(key uint64) (int64, int64, error)      { return s.lag, s.wm, nil }
func (s *gateStore) FlushKey(key uint64) (bool, error)                  { return false, nil }

func (s *gateStore) TopK(ctx context.Context, query []float32, k int) ([]store.ScoredRow, error) {
	out := make([]store.ScoredRow, k)
	for i := range out {
		out[i] = store.ScoredRow{Key: uint64(i), Version: 1}
	}
	return out, nil
}

func (s *gateStore) Close() error { return nil }

// decodeEnvelope asserts the response is the one JSON error envelope and
// returns it.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) (envelope struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != wantCode || envelope.Error == "" {
		t.Fatalf("envelope = %+v, want code %q with a message", envelope, wantCode)
	}
	return envelope
}

// TestHTTPDeprecationHeaders pins the legacy-route sunset contract: the
// unversioned aliases advertise their deprecation on every response, and
// the /v1 routes never do.
func TestHTTPDeprecationHeaders(t *testing.T) {
	srv := testServer(t)
	for _, legacy := range []string{"/lookup?key=1", "/topk?q=1,0,0,0&k=2"} {
		resp, err := http.Get(srv.URL + legacy)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: no Deprecation header", legacy)
		}
		if resp.Header.Get("Sunset") == "" {
			t.Errorf("%s: no Sunset header", legacy)
		}
	}
	// The successor link names the v1 route.
	resp, err := http.Get(srv.URL + "/lookup?key=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if link := resp.Header.Get("Link"); link != `</v1/lookup>; rel="successor-version"` {
		t.Fatalf("Link = %q", link)
	}
	// Errors through the legacy route carry the headers too.
	resp, err = http.Get(srv.URL + "/lookup?key=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("legacy error response: status %d, Deprecation %q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
	// The canonical routes are clean.
	for _, v1 := range []string{"/v1/lookup?key=1", "/v1/topk?q=1,0,0,0&k=2"} {
		resp, err := http.Get(srv.URL + v1)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
			t.Errorf("%s: carries deprecation headers", v1)
		}
	}
}

// TestHTTPShedEnvelope drives admission control to a 429: a blocked read
// pins the engine's only inflight slot, so the next request waits out
// AdmitWait and is shed with the envelope and a Retry-After header.
func TestHTTPShedEnvelope(t *testing.T) {
	st := &gateStore{rows: 8, dim: 4, wm: -1, gate: make(chan struct{})}
	eng, err := serve.NewFromStore(st, serve.Options{
		MaxInflight: 1, TopKWeight: 1, AdmitWait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)

	// Pin the slot: this query blocks inside ReadRow until the gate opens.
	holderDone := make(chan error, 1)
	go func() {
		dst := make([]float32, 4)
		_, err := eng.Query(context.Background(), serve.Request{Key: 0, Dst: dst, Level: serve.Stale()})
		holderDone <- err
	}()
	waitInflight(t, eng, 1)

	resp, err := http.Get(srv.URL + "/v1/lookup?key=1")
	if err != nil {
		t.Fatal(err)
	}
	envelope := decodeEnvelope(t, resp, http.StatusTooManyRequests, "shed")
	if envelope.RetryAfterMS <= 0 {
		t.Fatalf("shed advertised retry_after_ms %d", envelope.RetryAfterMS)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(st.gate)
	if err := <-holderDone; err != nil {
		t.Fatalf("holder query: %v", err)
	}
}

// TestHTTPDeadlineEnvelope drives the per-request deadline to a 503: the
// slot is pinned and AdmitWait exceeds RequestTimeout, so the waiting
// request's context expires first.
func TestHTTPDeadlineEnvelope(t *testing.T) {
	st := &gateStore{rows: 8, dim: 4, wm: -1, gate: make(chan struct{})}
	eng, err := serve.NewFromStore(st, serve.Options{
		MaxInflight: 1, TopKWeight: 1,
		AdmitWait:      time.Second,
		RequestTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)

	holderDone := make(chan error, 1)
	go func() {
		dst := make([]float32, 4)
		_, err := eng.Query(context.Background(), serve.Request{Key: 0, Dst: dst, Level: serve.Stale()})
		holderDone <- err
	}()
	waitInflight(t, eng, 1)

	resp, err := http.Get(srv.URL + "/v1/lookup?key=1")
	if err != nil {
		t.Fatal(err)
	}
	envelope := decodeEnvelope(t, resp, http.StatusServiceUnavailable, "deadline")
	if envelope.RetryAfterMS <= 0 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("deadline response not retryable: %+v, Retry-After %q", envelope, resp.Header.Get("Retry-After"))
	}

	close(st.gate)
	<-holderDone
}

// TestHTTPTooStaleEnvelope drives a RejectStale bounded read to a 503:
// the store reports a lag beyond the bound and the engine refuses rather
// than force-flushing.
func TestHTTPTooStaleEnvelope(t *testing.T) {
	st := &gateStore{rows: 8, dim: 4, coordinated: true, lag: 99, wm: 10}
	eng, err := serve.NewFromStore(st, serve.Options{RejectStale: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/lookup?key=1&level=bounded(2)")
	if err != nil {
		t.Fatal(err)
	}
	envelope := decodeEnvelope(t, resp, http.StatusServiceUnavailable, "too_stale")
	if envelope.RetryAfterMS <= 0 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("too_stale response not retryable: %+v", envelope)
	}
}

// TestHTTPShardUnavailableEnvelope kills a real shard node mid-session:
// the serving layer must answer 503 shard_unavailable — retryable — not a
// 400 or a hung connection.
func TestHTTPShardUnavailableEnvelope(t *testing.T) {
	node, err := shard.NewNode(shard.NodeOptions{Rows: 16, Dim: 4, Trainers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	shardSrv, err := shard.NewServer("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := shard.Dial(shardSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.NewSharded([]store.Store{rs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng, err := serve.NewFromStore(st, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)

	// Healthy first: the route works while the shard is up.
	resp, err := http.Get(srv.URL + "/v1/lookup?key=3&level=stale")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy lookup status %d", resp.StatusCode)
	}

	shardSrv.Close()

	resp, err = http.Get(srv.URL + "/v1/lookup?key=3&level=stale")
	if err != nil {
		t.Fatal(err)
	}
	envelope := decodeEnvelope(t, resp, http.StatusServiceUnavailable, "shard_unavailable")
	if envelope.RetryAfterMS <= 0 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shard_unavailable response not retryable: %+v", envelope)
	}
}

// waitInflight polls until the engine reports n admitted units.
func waitInflight(t *testing.T, eng *serve.Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for eng.Inflight() != n {
		if time.Now().After(deadline) {
			t.Fatalf("inflight never reached %d (now %d)", n, eng.Inflight())
		}
		time.Sleep(time.Millisecond)
	}
}
