package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Query classes for admission accounting. A top-K query scans the whole
// slab and costs TopKWeight units of the shared capacity pool; a lookup
// costs one.
const (
	classLookup = "lookup"
	classTopK   = "topk"
)

// ErrShed reports a request refused by admission control: the engine was
// at its inflight capacity and either the bounded admission wait expired
// or the wait queue itself was full. Shed is the engine's overload valve —
// the HTTP layer answers 429 with a Retry-After of RetryAfter.
type ErrShed struct {
	Class      string        // query class that was refused
	Waited     time.Duration // how long the request waited before being shed
	RetryAfter time.Duration // suggested client backoff
}

func (e *ErrShed) Error() string {
	return fmt.Sprintf("serve: %s shed after %v: engine at capacity (retry after %v)",
		e.Class, e.Waited.Round(time.Microsecond), e.RetryAfter)
}

// admitWaiter is one queued admission request. ready is closed exactly
// once, by the releaser that grants the slot; abandoned marks a waiter
// that timed out (or was canceled) and must be skipped by the grant scan.
type admitWaiter struct {
	need      int64
	granted   bool
	abandoned bool
	ready     chan struct{}
}

// admission is a weighted semaphore with FIFO waiters, a bounded wait,
// and a bounded queue. The uncontended Acquire path takes one mutex and
// allocates nothing — it sits on the serving hot path, which must stay
// allocation-free (see TestLookupAllocationFree).
//
// Weights let one capacity pool admit both query classes while keeping
// their costs honest: MaxInflight=64, TopKWeight=8 means at most 64
// concurrent lookups, at most 8 concurrent slab scans, or any mix in
// between. A per-class pool would instead let top-K saturation starve
// lookups of CPU they nominally still had budget for.
//
// Waiters are granted strictly in FIFO order — a lookup arriving behind a
// queued top-K waits for it, rather than slipping past and starving wide
// queries forever (no barging).
type admission struct {
	mu         sync.Mutex
	capacity   int64
	used       int64
	waiters    []*admitWaiter
	maxWait    time.Duration
	maxWaiters int
}

func newAdmission(capacity int64, maxWait time.Duration, maxWaiters int) *admission {
	return &admission{capacity: capacity, maxWait: maxWait, maxWaiters: maxWaiters}
}

// Acquire claims need units, waiting at most maxWait. It returns nil on
// admission, *ErrShed when the wait expired or the queue was full, and
// ctx.Err() when the caller's context ended first. Every nil return must
// be paired with a Release(need).
func (a *admission) Acquire(ctx context.Context, need int64, class string) error {
	a.mu.Lock()
	if len(a.waiters) == 0 && a.used+need <= a.capacity {
		a.used += need
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxWaiters {
		a.mu.Unlock()
		// Queue full: shed instantly. Queuing deeper would only convert
		// overload into unbounded latency (see DESIGN §5f).
		return &ErrShed{Class: class, Waited: 0, RetryAfter: a.maxWait}
	}
	w := &admitWaiter{need: need, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return nil
	case <-timer.C:
	case <-ctx.Done():
	}

	a.mu.Lock()
	if w.granted {
		// The grant raced our wakeup: the slot is ours. Keep it unless the
		// context is dead — then hand it straight back.
		a.mu.Unlock()
		if err := ctx.Err(); err != nil {
			a.Release(need)
			return err
		}
		return nil
	}
	w.abandoned = true
	a.removeLocked(w)
	a.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	return &ErrShed{Class: class, Waited: time.Since(start), RetryAfter: a.maxWait}
}

// Release returns need units and grants as many queued waiters as the
// freed capacity covers, in arrival order.
func (a *admission) Release(need int64) {
	a.mu.Lock()
	a.used -= need
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if w.abandoned {
			a.waiters = a.waiters[1:]
			continue
		}
		if a.used+w.need > a.capacity {
			break
		}
		a.used += w.need
		w.granted = true
		close(w.ready)
		a.waiters = a.waiters[1:]
	}
	a.mu.Unlock()
}

// removeLocked drops w from the wait queue (mu held). The queue is
// bounded by maxWaiters, so the linear scan is cheap — and it only runs
// on the already-slow shed path.
func (a *admission) removeLocked(w *admitWaiter) {
	for i, q := range a.waiters {
		if q == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			return
		}
	}
}

// Inflight reports the units currently admitted (tests and /debug/vars).
func (a *admission) Inflight() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}
