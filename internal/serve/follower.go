package serve

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"frugal/internal/ckpt"
	"frugal/internal/obs"
	"frugal/internal/runtime"
	"frugal/internal/store"
)

// ErrReplica reports a consistency demand a follower cannot satisfy:
// fresh (or bounded, after catching the log up) needs updates that only
// the primary holds. Clients retry, lower the level, or go to the
// primary; after promotion the follower is authoritative and the error
// disappears.
type ErrReplica struct {
	Key       uint64
	Staleness int64
	Watermark int64
}

func (e *ErrReplica) Error() string {
	return fmt.Sprintf("serve: replica lags key %d by %d gate steps (watermark %d); only the primary can satisfy this read",
		e.Key, e.Staleness, e.Watermark)
}

// FollowerOptions shapes a Follower.
type FollowerOptions struct {
	// Poll is the log-tail interval of Run (default 50ms).
	Poll time.Duration
	// WaitForLog keeps NewFollower retrying while the log directory has
	// no base yet — a follower booted alongside its primary (default:
	// fail immediately).
	WaitForLog time.Duration
	// PromoteAfter makes Run self-promote once the log has not grown for
	// this long — the primary is presumed dead (default: never; call
	// Promote explicitly).
	PromoteAfter time.Duration
	// Engine configures the serving engine over the replica slab. The
	// IVF index is not supported on followers (its repair feed is the
	// primary's flush stream).
	Engine Options
}

// Follower is a serve replica that follows a delta-checkpoint log
// (internal/ckpt): it reconstructs the slab from the latest base, tails
// sealed segments into its own host memory, and serves reads through a
// standard Engine whose consistency gate reports replication lag as the
// staleness bound. When the primary dies, Promote makes the replica
// authoritative (salvaging the complete prefix of an unsealed segment).
type Follower struct {
	dir string
	opt FollowerOptions

	host *runtime.Host
	fs   *followerStore
	eng  *Engine
	robs *obs.ReplicaObs

	mu         sync.Mutex // serializes CatchUp/Promote/resync
	appliedSeq int64
	lastGrowth time.Time

	promoted atomic.Bool

	errMu sync.Mutex
	err   error // first tail error (Stats surfaces it)
}

// NewFollower opens the log directory, reconstructs the replica slab
// (latest base + sidecar + every sealed segment), and builds the serving
// engine over it.
func NewFollower(dir string, opt FollowerOptions) (*Follower, error) {
	if opt.Poll <= 0 {
		opt.Poll = 50 * time.Millisecond
	}
	deadline := time.Now().Add(opt.WaitForLog)
	var st ckpt.DirState
	for {
		var err error
		st, err = ckpt.ListDir(dir)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(opt.Poll)
	}
	f, err := os.Open(st.BasePath)
	if err != nil {
		return nil, fmt.Errorf("serve: follower: %w", err)
	}
	host, err := runtime.LoadHost(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	fl := &Follower{
		dir:        dir,
		opt:        opt,
		host:       host,
		robs:       obs.NewReplicaObs(),
		appliedSeq: st.BaseSeq,
		lastGrowth: time.Now(),
	}
	fl.fs = newFollowerStore(host, fl)
	if err := fl.loadMeta(st); err != nil {
		return nil, err
	}
	eng, err := NewFromStore(fl.fs, opt.Engine)
	if err != nil {
		return nil, err
	}
	fl.eng = eng
	if err := fl.CatchUp(); err != nil {
		return nil, err
	}
	return fl, nil
}

// loadMeta installs a base's sidecar vectors (safe steps + versions)
// into the replica store. Base 0 has no sidecar: everything starts at
// the -1/"nothing guaranteed beyond init" floor, which matches a slab
// nothing has been flushed to.
func (f *Follower) loadMeta(st ckpt.DirState) error {
	if st.MetaPath == "" {
		return nil
	}
	m, err := ckpt.ReadMeta(st.MetaPath, f.host.Rows())
	if err != nil {
		return err
	}
	for k := range m.SafeStep {
		f.fs.safe[k].Store(m.SafeStep[k])
		f.host.SetVersion(uint64(k), m.Versions[k])
	}
	f.fs.advanceWM(m.Watermark)
	return nil
}

// Engine returns the serving engine over the replica slab.
func (f *Follower) Engine() *Engine { return f.eng }

// Role reports "follower", or "primary" after promotion.
func (f *Follower) Role() string {
	if f.promoted.Load() {
		return "primary"
	}
	return "follower"
}

// Run tails the log until ctx is done: every Poll interval it applies
// newly sealed segments, and — when PromoteAfter is set — promotes
// itself once the log stops growing for that long. Tail errors are
// retried next tick and surfaced via Stats.
func (f *Follower) Run(ctx context.Context) error {
	t := time.NewTicker(f.opt.Poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if f.promoted.Load() {
				return nil
			}
			if err := f.CatchUp(); err != nil {
				f.setErr(err)
				continue
			}
			if f.opt.PromoteAfter > 0 {
				f.mu.Lock()
				idle := time.Since(f.lastGrowth)
				f.mu.Unlock()
				if idle >= f.opt.PromoteAfter {
					return f.Promote()
				}
			}
		}
	}
}

// CatchUp applies every sealed segment the replica has not seen. If the
// primary compacted past the replica's position, the replica resyncs
// from the newer base first. Safe to call concurrently (serialized
// internally); the read path calls it when a bounded read overruns its
// bound.
func (f *Follower) CatchUp() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.catchUpLocked()
}

func (f *Follower) catchUpLocked() error {
	err := f.tryCatchUp()
	if err != nil {
		// The primary's compactor may have deleted a segment between our
		// ListDir and the read. The re-list sees the post-compaction
		// state (a newer base), which the resync path handles.
		err = f.tryCatchUp()
	}
	return err
}

func (f *Follower) tryCatchUp() error {
	st, err := ckpt.ListDir(f.dir)
	if err != nil {
		return err
	}
	if st.BaseSeq > f.appliedSeq {
		if err := f.resyncLocked(st); err != nil {
			return err
		}
	}
	for _, seg := range st.Segments {
		if seg.Seq <= f.appliedSeq {
			continue
		}
		var n int64
		segWM, err := ckpt.ReadSegment(seg.Path, f.host.Dim(), func(rec *ckpt.Record) error {
			f.fs.apply(rec)
			n++
			return nil
		})
		if err != nil {
			return err
		}
		f.fs.advanceWM(segWM)
		f.appliedSeq = seg.Seq
		f.robs.Segment(n)
		f.lastGrowth = time.Now()
	}
	return nil
}

// resyncLocked reloads the replica from a newer base: the slab is folded
// in through the same last-writer-wins apply path the segments use (the
// engine keeps serving off the one host throughout), and the sidecar
// restores the per-row vectors.
func (f *Follower) resyncLocked(st ckpt.DirState) error {
	bf, err := os.Open(st.BasePath)
	if err != nil {
		return fmt.Errorf("serve: follower resync: %w", err)
	}
	fresh, err := runtime.LoadHost(bf)
	bf.Close()
	if err != nil {
		return err
	}
	if fresh.Rows() != f.host.Rows() || fresh.Dim() != f.host.Dim() {
		return fmt.Errorf("serve: follower resync: base shape %dx%d, replica %dx%d",
			fresh.Rows(), fresh.Dim(), f.host.Rows(), f.host.Dim())
	}
	var m ckpt.Meta
	if st.MetaPath != "" {
		if m, err = ckpt.ReadMeta(st.MetaPath, f.host.Rows()); err != nil {
			return err
		}
	}
	img := runtime.RowImage{Row: make([]float32, f.host.Dim()), Q: make([]int8, f.host.Dim())}
	for k := int64(0); k < f.host.Rows(); k++ {
		// CaptureRow carries the fresh base's tier tag along with the row
		// image, so a tiered replica folds the resync in without
		// reshuffling (or requantizing) its own hot pool row by row.
		fresh.CaptureRow(uint64(k), &img)
		var ver uint64
		var safe int64 = -1
		if m.Versions != nil {
			ver, safe = m.Versions[k], m.SafeStep[k]
		}
		f.fs.apply(&ckpt.Record{
			Key: uint64(k), Version: ver, SafeStep: safe,
			State: img.State, Row: img.Row,
			Cold: img.Cold, Scale: img.Scale, Zero: img.Zero, Q: img.Q,
		})
	}
	f.fs.advanceWM(m.Watermark)
	f.appliedSeq = st.BaseSeq
	f.robs.Resync()
	f.lastGrowth = time.Now()
	return nil
}

// Promote makes the replica authoritative: apply everything sealed,
// salvage the complete record prefix of an unsealed segment if the
// primary died mid-sweep, and flip the role. From then on reads are
// served at staleness 0 against the promoted watermark — the replica's
// copy defines the history (updates the log never captured are lost,
// the standard async-replication failover trade).
func (f *Follower) Promote() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted.Load() {
		return nil
	}
	if err := f.catchUpLocked(); err != nil {
		return err
	}
	st, err := ckpt.ListDir(f.dir)
	if err == nil && st.OpenPath != "" {
		n, serr := ckpt.Salvage(st.OpenPath, f.host.Dim(), func(rec *ckpt.Record) error {
			f.fs.apply(rec)
			return nil
		})
		if serr != nil {
			return serr
		}
		f.robs.Salvage(n)
	}
	f.promoted.Store(true)
	return nil
}

func (f *Follower) setErr(err error) {
	f.errMu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.errMu.Unlock()
}

// FollowerStats reports the replica's replication state.
type FollowerStats struct {
	Role             string              `json:"role"`
	AppliedSeq       int64               `json:"appliedSeq"`
	AppliedWatermark int64               `json:"appliedWatermark"`
	Replication      obs.ReplicaSnapshot `json:"replication"`
	TailError        string              `json:"tailError,omitempty"`
}

// Stats snapshots the replica state.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	seq := f.appliedSeq
	f.mu.Unlock()
	s := FollowerStats{
		Role:             f.Role(),
		AppliedSeq:       seq,
		AppliedWatermark: f.fs.Watermark(),
		Replication:      f.robs.Snapshot(),
	}
	f.errMu.Lock()
	if f.err != nil {
		s.TailError = f.err.Error()
	}
	f.errMu.Unlock()
	return s
}

// followerStore adapts the replica slab to the store.Store surface the
// engine programs against. The watermark is the tag of the last applied
// segment; per-key staleness is watermark − the key's recorded safe
// step. Both are one-sided: the slab can only be fresher than reported.
type followerStore struct {
	host *runtime.Host
	fl   *Follower
	safe []atomic.Int64 // per-key safe step (-1: nothing beyond the base guaranteed)
	wm   atomic.Int64
}

func newFollowerStore(host *runtime.Host, fl *Follower) *followerStore {
	fs := &followerStore{host: host, fl: fl, safe: make([]atomic.Int64, host.Rows())}
	for i := range fs.safe {
		fs.safe[i].Store(-1)
	}
	fs.wm.Store(-1)
	return fs
}

// apply installs one row image (idempotent, last-writer-wins — see
// Host.RestoreRow) and raises the key's safe step. Tier-tagged records
// land in their tier: a cold image's codes install verbatim, so the
// replica's cold tier stays byte-identical to the primary's.
func (fs *followerStore) apply(rec *ckpt.Record) {
	img := rec.Image()
	fs.host.RestoreRow(rec.Key, &img)
	for {
		cur := fs.safe[rec.Key].Load()
		if rec.SafeStep <= cur || fs.safe[rec.Key].CompareAndSwap(cur, rec.SafeStep) {
			return
		}
	}
}

func (fs *followerStore) advanceWM(wm int64) {
	for {
		cur := fs.wm.Load()
		if wm <= cur || fs.wm.CompareAndSwap(cur, wm) {
			return
		}
	}
}

// Host exposes the replica slab — the engine's zero-alloc fast paths key
// on it.
func (fs *followerStore) Host() *runtime.Host { return fs.host }

func (fs *followerStore) Rows() int64       { return fs.host.Rows() }
func (fs *followerStore) Dim() int          { return fs.host.Dim() }
func (fs *followerStore) Coordinated() bool { return true }

func (fs *followerStore) ReadRow(key uint64, dst []float32) (uint64, error) {
	if key >= uint64(fs.host.Rows()) {
		return 0, fmt.Errorf("serve: key %d out of range (rows %d)", key, fs.host.Rows())
	}
	return fs.host.ReadRow(key, dst), nil
}

func (fs *followerStore) Gather(keys []uint64, dst []float32, versions []uint64) error {
	d := fs.host.Dim()
	for i, k := range keys {
		v, err := fs.ReadRow(k, dst[i*d:(i+1)*d])
		if err != nil {
			return err
		}
		if versions != nil {
			versions[i] = v
		}
	}
	return nil
}

func (fs *followerStore) Scatter(int64, []store.KeyDelta) error {
	return fmt.Errorf("serve: follower replicas are read-only")
}

func (fs *followerStore) Version(key uint64) (uint64, error) {
	if key >= uint64(fs.host.Rows()) {
		return 0, fmt.Errorf("serve: key %d out of range (rows %d)", key, fs.host.Rows())
	}
	return fs.host.Version(key), nil
}

func (fs *followerStore) Watermark() int64 { return fs.wm.Load() }

// RowStaleness reports the replication lag: how many gate steps the
// replica's copy of key may trail the applied watermark. A promoted
// replica is authoritative — staleness 0 by definition (its copy IS the
// history).
func (fs *followerStore) RowStaleness(key uint64) (lag, watermark int64, err error) {
	if key >= uint64(fs.host.Rows()) {
		return 0, 0, fmt.Errorf("serve: key %d out of range (rows %d)", key, fs.host.Rows())
	}
	wm := fs.wm.Load()
	if fs.fl.promoted.Load() {
		return 0, wm, nil
	}
	lag = wm - fs.safe[key].Load()
	if lag < 0 {
		lag = 0
	}
	return lag, wm, nil
}

// FlushKey cannot make a replica row fresh — only the primary can drain
// a pending write set. The engine's replica-aware resolve path never
// calls it; external Store users get the honest error (or a trivial
// success after promotion, when nothing can be pending).
func (fs *followerStore) FlushKey(key uint64) (bool, error) {
	if fs.fl.promoted.Load() {
		return false, nil
	}
	lag, wm, err := fs.RowStaleness(key)
	if err != nil {
		return false, err
	}
	if lag == 0 {
		return false, nil
	}
	return false, &ErrReplica{Key: key, Staleness: lag, Watermark: wm}
}

func (fs *followerStore) TopK(context.Context, []float32, int) ([]store.ScoredRow, error) {
	return nil, fmt.Errorf("serve: follower store TopK is unused (the engine scans the replica slab)")
}

func (fs *followerStore) Close() error { return nil }

// CatchUp implements the engine's replica surface: apply everything the
// log has sealed.
func (fs *followerStore) CatchUp() error { return fs.fl.CatchUp() }

// ReplicaStats implements the healthz replica block.
func (fs *followerStore) ReplicaStats() FollowerStats { return fs.fl.Stats() }
