package serve_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frugal/internal/p2f"
	"frugal/internal/pq"
	"frugal/internal/runtime"
	"frugal/internal/serve"
)

// stepSource feeds `steps` batches, each updating the one hot key.
type stepSource struct {
	mu    sync.Mutex
	hot   uint64
	steps int
	next  int
}

func (s *stepSource) Next() ([]uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= s.steps {
		return nil, false
	}
	s.next++
	return []uint64{s.hot}, true
}

// TestRefreshStormCoalesces is the refresh-storm scenario of the overload
// layer: G readers at fresh/bounded(0) hammer one hot key while training
// commits an update to it every step. Two properties must hold at once:
//
//  1. Coalescing: the hot key's sink flushes stay bounded by the commit
//     count (≪ the read count) and CoalescedFlushes proves readers
//     actually piggybacked on each other's flushes rather than each
//     driving their own.
//  2. Consistency: every read still satisfies the PR-4 staleness
//     inequality version ≥ G·(watermark+1−staleness) with G = 1 trainer —
//     coalescing must not trade freshness for throughput.
func TestRefreshStormCoalesces(t *testing.T) {
	const (
		hot     = uint64(9)
		steps   = 200
		readers = 8
	)
	host, err := runtime.NewHost(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	var hotFlushes atomic.Int64
	sink := p2f.FlushSinkFunc(func(key uint64, updates []pq.Update) {
		if key == hot {
			hotFlushes.Add(1)
			// Stretch the flush so concurrent refreshers overlap it — the
			// window the singleflight layer exists for.
			time.Sleep(200 * time.Microsecond)
		}
		host.ApplyUpdates(key, updates)
	})
	ctrl, err := p2f.NewController(p2f.Options{
		MaxStep: steps, FlushThreads: 2, Lookahead: 4,
		Sink: sink, Source: &stepSource{hot: hot, steps: steps},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Stop()
	eng, err := serve.New(host, ctrl, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var hotReads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]float32, 4)
			lvl := serve.Fresh()
			if r%2 == 1 {
				lvl = serve.Bounded(0)
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				meta, err := lookupMeta(eng, hot, dst, lvl)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				hotReads.Add(1)
				if meta.Staleness != 0 {
					t.Errorf("reader %d: %v read staleness %d, want 0", r, lvl, meta.Staleness)
					return
				}
				if floor := meta.Watermark + 1 - meta.Staleness; floor > 0 && meta.Version < uint64(floor) {
					t.Errorf("reader %d: version %d < wm %d + 1 − lag %d: staler than admitted",
						r, meta.Version, meta.Watermark, meta.Staleness)
					return
				}
			}
		}(r)
	}

	// The training loop: gate → commit, one hot-key update per step.
	for {
		b, ok := ctrl.NextBatch()
		if !ok {
			break
		}
		ctrl.WaitForStep(b.Step)
		upd := make([]p2f.KeyDelta, len(b.Keys))
		for i, k := range b.Keys {
			upd[i] = p2f.KeyDelta{Key: k, Delta: []float32{1, 0, 0, 0}}
		}
		ctrl.CommitStep(b.Step, upd)
	}
	ctrl.DrainAll()
	close(done)
	wg.Wait()

	reads, flushes := hotReads.Load(), hotFlushes.Load()
	if reads == 0 {
		t.Fatal("no reads recorded")
	}
	// Each commit creates at most one flushable write set, so a working
	// singleflight keeps flushes bounded by commits no matter how many
	// readers demand freshness. Without coalescing this test's read rate
	// would demand far more.
	if flushes > steps {
		t.Fatalf("hot key flushed %d times for %d commits — refresh storm not coalesced", flushes, steps)
	}
	if reads < 4*flushes {
		t.Fatalf("reads (%d) not ≫ flushes (%d): the storm never formed, test is vacuous", reads, flushes)
	}
	if co := ctrl.Stats().CoalescedFlushes; co == 0 {
		t.Fatal("CoalescedFlushes = 0: no reader ever piggybacked")
	}
	// Post-drain, the hot row carries every committed update.
	dst := make([]float32, 4)
	meta, err := lookupMeta(eng, hot, dst, serve.Fresh())
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != steps {
		t.Fatalf("post-run version = %d, want %d", meta.Version, steps)
	}
	if dst[0] != steps {
		t.Fatalf("post-run value = %v, want %d (a coalesced flush lost updates)", dst[0], steps)
	}
}
