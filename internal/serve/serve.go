// Package serve is Frugal's online serving layer: a concurrent query
// engine that answers embedding lookups and top-K dot-product similarity
// queries straight from the host-memory parameter slab, while training is
// still running.
//
// Host memory is the natural serving store under P²F (§3): proactive
// flushing keeps it the freshest complete copy of every parameter, so no
// GPU cache needs to be consulted. What host memory does *not* promise is
// zero lag — a row's most recent committed updates may still sit in its
// g-entry's write set, waiting for a flushing thread. The engine exposes
// that lag as a consistency knob with three levels:
//
//   - Stale: read the host row as-is. No coordination with the
//     controller; the row may lag the training frontier by however much
//     the flusher pool is behind (in practice: very little, that is the
//     point of P²F).
//   - Bounded(k): admit the read only if the row's pending writes lag the
//     committed-step watermark by at most k gate steps (HET-style per-row
//     staleness bound). A violating row is force-flushed first — or, with
//     Options.RejectStale, the read is refused.
//   - Fresh: always force-flush the row's pending write set before
//     reading, so the returned row reflects every committed update. The
//     flush rides the controller's AdjustPriority path (see
//     p2f.Controller.FlushKey).
//
// Every read — including Stale — copies the row under its stripe lock
// (Host.ReadRow), the same lock the flusher write path takes, so a served
// row is never a torn mix of two updates and the engine is race-free
// beside any engine's writers. "Stale" spares the coordination metadata,
// not the memory safety.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"frugal/internal/obs"
	"frugal/internal/p2f"
	"frugal/internal/runtime"
	"frugal/internal/store"
	"frugal/internal/tensor"
)

// Kind enumerates the consistency levels.
type Kind int

const (
	// KindStale reads host memory with zero controller coordination.
	KindStale Kind = iota
	// KindBounded admits rows lagging the watermark by at most Bound steps.
	KindBounded
	// KindFresh force-flushes pending writes before every read.
	KindFresh
)

// Level is a consistency level: a kind plus, for KindBounded, the
// staleness bound in gate steps. The zero Level is Stale.
type Level struct {
	Kind  Kind
	Bound int64
}

// Stale returns the zero-coordination level.
func Stale() Level { return Level{Kind: KindStale} }

// Bounded returns the level admitting at most k gate steps of flush lag.
func Bounded(k int64) Level { return Level{Kind: KindBounded, Bound: k} }

// Fresh returns the force-flush-before-read level.
func Fresh() Level { return Level{Kind: KindFresh} }

// ParseLevel parses "stale", "fresh", "bounded" (= bounded(0)) or
// "bounded(k)" with k ≥ 0.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "stale":
		return Stale(), nil
	case "fresh":
		return Fresh(), nil
	case "bounded":
		return Bounded(0), nil
	}
	if rest, ok := strings.CutPrefix(s, "bounded("); ok {
		if num, ok := strings.CutSuffix(rest, ")"); ok {
			k, err := strconv.ParseInt(num, 10, 64)
			if err != nil || k < 0 {
				return Level{}, fmt.Errorf("serve: bad staleness bound %q (want an integer ≥ 0)", num)
			}
			return Bounded(k), nil
		}
	}
	return Level{}, fmt.Errorf("serve: unknown consistency level %q (want stale, bounded(k) or fresh)", s)
}

// String renders the level in ParseLevel's syntax.
func (l Level) String() string {
	switch l.Kind {
	case KindStale:
		return "stale"
	case KindBounded:
		return "bounded(" + strconv.FormatInt(l.Bound, 10) + ")"
	case KindFresh:
		return "fresh"
	}
	return fmt.Sprintf("level(%d)", int(l.Kind))
}

// Validate reports whether the level is well-formed.
func (l Level) Validate() error {
	switch l.Kind {
	case KindStale, KindFresh:
		return nil
	case KindBounded:
		if l.Bound < 0 {
			return fmt.Errorf("serve: staleness bound must be ≥ 0, got %d", l.Bound)
		}
		return nil
	}
	return fmt.Errorf("serve: unknown consistency level kind %d", int(l.Kind))
}

// Options configures an Engine.
type Options struct {
	// Default is the consistency level applied when a request does not
	// name one (the HTTP API's ?level= parameter). Zero value: Stale.
	Default Level
	// RejectStale makes Bounded lookups return *ErrTooStale instead of
	// force-flushing a row that exceeds the bound. Top-K queries always
	// refresh (dropping candidates would silently change the result set).
	RejectStale bool
	// MaxTopK caps the K of top-K queries (default 128).
	MaxTopK int
	// Shards sizes the metrics counters (default 8).
	Shards int

	// MaxInflight caps the engine's concurrent admitted work, in lookup
	// units: a lookup costs 1, a top-K query costs TopKWeight. 0 disables
	// admission control entirely (the pre-overload-control behaviour).
	MaxInflight int
	// TopKWeight is the admission cost of one top-K query relative to a
	// lookup (default 8). Must not exceed MaxInflight, or no top-K query
	// could ever be admitted.
	TopKWeight int
	// AdmitWait bounds how long a request may wait for admission before
	// being shed (default 5ms). Shed requests fail with *ErrShed — they
	// are never queued unboundedly.
	AdmitWait time.Duration
	// MaxWaiters caps the admission wait queue (default 4×MaxInflight).
	// Arrivals beyond it are shed immediately, without waiting.
	MaxWaiters int
	// RequestTimeout is the per-request deadline the HTTP handlers attach
	// to each request context (0: none). Direct Query callers manage
	// their own deadlines.
	RequestTimeout time.Duration

	// Index selects the top-K scan strategy: IndexFlat (or IndexAuto,
	// the zero value) scans the whole slab; IndexIVF builds the
	// inverted-file index at engine construction and scans only the
	// NProbe nearest of Centroids partitions (see ivf.go).
	Index IndexKind
	// Centroids is the IVF partition count C (default ≈ 4√rows, clamped
	// to [16, 65536]). Ignored unless Index is IndexIVF.
	Centroids int
	// NProbe is how many partitions an IVF query scans (default 8,
	// clamped to Centroids). Per-request override: Request.NProbe.
	NProbe int
}

func (o *Options) normalize() error {
	if err := o.Default.Validate(); err != nil {
		return err
	}
	if o.MaxTopK == 0 {
		o.MaxTopK = 128
	}
	if o.MaxTopK < 1 {
		return fmt.Errorf("serve: MaxTopK must be ≥ 1, got %d", o.MaxTopK)
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.MaxInflight < 0 {
		return fmt.Errorf("serve: MaxInflight must be ≥ 0, got %d", o.MaxInflight)
	}
	if o.MaxInflight > 0 {
		if o.TopKWeight == 0 {
			o.TopKWeight = 8
		}
		if o.TopKWeight < 1 {
			return fmt.Errorf("serve: TopKWeight must be ≥ 1, got %d", o.TopKWeight)
		}
		if o.TopKWeight > o.MaxInflight {
			return fmt.Errorf("serve: TopKWeight %d exceeds MaxInflight %d — no top-K query could ever be admitted",
				o.TopKWeight, o.MaxInflight)
		}
		if o.AdmitWait == 0 {
			o.AdmitWait = 5 * time.Millisecond
		}
		if o.AdmitWait < 0 {
			return fmt.Errorf("serve: AdmitWait must be ≥ 0, got %v", o.AdmitWait)
		}
		if o.MaxWaiters == 0 {
			o.MaxWaiters = 4 * o.MaxInflight
		}
		if o.MaxWaiters < 0 {
			return fmt.Errorf("serve: MaxWaiters must be ≥ 0, got %d", o.MaxWaiters)
		}
	}
	if o.RequestTimeout < 0 {
		return fmt.Errorf("serve: RequestTimeout must be ≥ 0, got %v", o.RequestTimeout)
	}
	if err := o.Index.Validate(); err != nil {
		return err
	}
	if o.Centroids < 0 {
		return fmt.Errorf("serve: Centroids must be ≥ 0, got %d", o.Centroids)
	}
	if o.NProbe < 0 {
		return fmt.Errorf("serve: NProbe must be ≥ 0, got %d", o.NProbe)
	}
	if o.Index != IndexIVF && (o.Centroids > 0 || o.NProbe > 0) {
		return fmt.Errorf("serve: Centroids/NProbe are IVF knobs; set Index: IndexIVF")
	}
	return nil
}

// replicaStore is the surface a serve-follower store adds to store.Store:
// applying more of the delta-checkpoint log is the replica's only freshness
// lever (the primary's pending write sets are out of reach).
type replicaStore interface {
	CatchUp() error
}

// ErrTooStale reports a Bounded read refused under Options.RejectStale:
// the row's pending writes lagged the watermark by Staleness > Bound.
type ErrTooStale struct {
	Key       uint64
	Staleness int64
	Bound     int64
	Watermark int64
}

func (e *ErrTooStale) Error() string {
	return fmt.Sprintf("serve: key %d is %d gate steps stale (bound %d, watermark %d)",
		e.Key, e.Staleness, e.Bound, e.Watermark)
}

// RowMeta describes the consistency state of one served row.
type RowMeta struct {
	// Version is the host row's update counter, read in the same critical
	// section as the row copy.
	Version uint64 `json:"version"`
	// Watermark is the committed-step watermark the consistency decision
	// used (-1 when no controller is attached — synchronous engines and
	// checkpoint serving, whose host copy is always authoritative).
	Watermark int64 `json:"watermark"`
	// Staleness bounds how many committed gate steps the row may lag the
	// watermark. 0 means every update committed at or before Watermark is
	// in the returned values.
	Staleness int64 `json:"staleness"`
	// Refreshed reports that a force-flush ran to satisfy the level.
	Refreshed bool `json:"refreshed,omitempty"`
}

// Candidate is one top-K result row.
type Candidate struct {
	Key   uint64  `json:"key"`
	Score float32 `json:"score"`
	Meta  RowMeta `json:"meta"`
}

// topkChunk is the slab stride of the top-K scan: large enough to amortise
// the batched kernel, small enough that the locked variant never holds a
// stripe lock across more than one row.
const topkChunk = 256

type topkScratch struct {
	scores []float32
	row    []float32
	heap   []Candidate
	// IVF engines only: centroid scores and probe selection.
	cent   []float32
	probes []int
}

// Engine serves reads from one parameter store — the in-process slab of
// a training job or checkpoint (LocalStore), or a sharded remote table
// composed behind the same interface. Safe for concurrent use by any
// number of goroutines, concurrently with trainers writing the store.
type Engine struct {
	st store.Store
	// host is the underlying slab when the store is slab-backed (every
	// local store), nil for remote/sharded stores. It gates the fast
	// paths: the allocation-free locked row read, the batched flat top-K
	// scan, and the IVF index. Remote stores answer top-K through
	// store.Store.TopK (per-shard scan + merge) instead.
	host        *runtime.Host
	coordinated bool // the store has a P²F gate (watermark is meaningful)
	// replica is non-nil when the store is a serve follower tailing a
	// delta-checkpoint log: it cannot flush the primary's pending writes,
	// only apply more of the log. The consistency paths then substitute
	// CatchUp for FlushKey (see resolve).
	replica replicaStore
	opt     Options
	static  bool // no live writers: top-K may scan the slab unlocked
	sobs    *obs.ServeObs
	adm     *admission // nil: admission control disabled
	idx     *ivfIndex  // nil: flat scans only

	scratch sync.Pool // *topkScratch
}

// New builds an engine over a live training job's host slab. ctrl is the
// job's P²F controller; pass nil for the synchronous engines (direct,
// frugal-sync), whose host copy never lags — every level is then trivially
// fresh.
func New(host *runtime.Host, ctrl *p2f.Controller, opt Options) (*Engine, error) {
	if host == nil {
		return nil, fmt.Errorf("serve: nil host")
	}
	st, err := store.NewLocal(host, ctrl)
	if err != nil {
		return nil, err
	}
	return newEngine(st, opt, false)
}

// NewStatic builds an engine over a quiescent slab — a loaded checkpoint,
// or a finished job. Top-K scans then use the unlocked batched kernel.
func NewStatic(host *runtime.Host, opt Options) (*Engine, error) {
	if host == nil {
		return nil, fmt.Errorf("serve: nil host")
	}
	st, err := store.NewLocal(host, nil)
	if err != nil {
		return nil, err
	}
	return newEngine(st, opt, true)
}

// NewFromStore builds an engine over any parameter store — including a
// sharded remote table. The store is assumed live (trainers may be
// writing); remote top-K queries fan out per shard through the store.
func NewFromStore(st store.Store, opt Options) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	return newEngine(st, opt, false)
}

func newEngine(st store.Store, opt Options, static bool) (*Engine, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	e := &Engine{st: st, coordinated: st.Coordinated(), opt: opt, static: static, sobs: obs.NewServeObs(opt.Shards)}
	if sb, ok := st.(interface{ Host() *runtime.Host }); ok {
		e.host = sb.Host()
	}
	if rs, ok := st.(replicaStore); ok {
		e.replica = rs
	}
	if opt.MaxInflight > 0 {
		e.adm = newAdmission(int64(opt.MaxInflight), opt.AdmitWait, opt.MaxWaiters)
	}
	dim := st.Dim()
	centroids := 0
	if opt.Index == IndexIVF {
		host := e.host
		if host == nil {
			return nil, fmt.Errorf("serve: the IVF index requires a slab-backed (local) store; sharded stores answer top-K per shard")
		}
		centroids = opt.Centroids
		if centroids == 0 {
			centroids = 4 * int(math.Sqrt(float64(host.Rows())))
			centroids = max(16, min(centroids, 65536))
		}
		if int64(centroids) > host.Rows() {
			centroids = int(host.Rows())
		}
		nprobe := opt.NProbe
		if nprobe == 0 {
			nprobe = 8
		}
		idx := newIVFIndex(host.Rows(), dim, centroids, nprobe)
		// The flush hook is installed before the build walks the slab:
		// a flush landing mid-build enqueues a repair, so nothing the
		// build misses goes unrecorded. The hook pairs the key with the
		// watermark current at flush time — the bound repair enforces.
		if e.coordinated {
			fh, ok := st.(store.FlushHooker)
			if !ok {
				return nil, fmt.Errorf("serve: coordinated store %T has no flush feed for the IVF index", st)
			}
			fh.AddFlushHook(func(key uint64) {
				idx.markDirty(key, st.Watermark())
			})
		}
		idx.build(host)
		e.idx = idx
		centroids = len(idx.parts)
	}
	e.scratch.New = func() any {
		sc := &topkScratch{scores: make([]float32, topkChunk), row: make([]float32, dim)}
		if centroids > 0 {
			sc.cent = make([]float32, centroids)
			sc.probes = make([]int, centroids)
		}
		return sc
	}
	return e, nil
}

// Rows returns the number of servable rows.
func (e *Engine) Rows() int64 { return e.st.Rows() }

// Dim returns the embedding dimension.
func (e *Engine) Dim() int { return e.st.Dim() }

// NumShards reports the store's shard count: >1 for sharded stores, 1
// otherwise.
func (e *Engine) NumShards() int {
	if sc, ok := e.st.(store.ShardCounter); ok {
		return sc.NumShards()
	}
	return 1
}

// Live reports whether the slab may have concurrent writers.
func (e *Engine) Live() bool { return !e.static }

// DefaultLevel returns the engine's default consistency level.
func (e *Engine) DefaultLevel() Level { return e.opt.Default }

// Metrics snapshots the engine's read-path counters and latency
// histograms.
func (e *Engine) Metrics() obs.ServeSnapshot { return e.sobs.Snapshot() }

// admitClass claims one admission slot of the class's weight, recording
// the shed/canceled outcome. The uncontended path allocates nothing.
func (e *Engine) admitClass(ctx context.Context, class string, shard int) (int64, error) {
	if e.adm == nil {
		return 0, nil
	}
	need := int64(1)
	if class == classTopK {
		need = int64(e.opt.TopKWeight)
	}
	if err := e.adm.Acquire(ctx, need, class); err != nil {
		var shed *ErrShed
		if errors.As(err, &shed) {
			e.sobs.Shed(shard)
		} else {
			e.sobs.Canceled(shard)
		}
		return 0, err
	}
	return need, nil
}

// exit releases an admitted request's slot (no-op when admission is off).
func (e *Engine) exit(need int64) {
	if e.adm != nil {
		e.adm.Release(need)
	}
}

// Inflight reports the admitted work units currently in the engine, in
// lookup units (0 when admission control is disabled).
func (e *Engine) Inflight() int64 {
	if e.adm == nil {
		return 0
	}
	return e.adm.Inflight()
}

// Request describes one query for Engine.Query — the single entrypoint
// both request shapes go through. A nil Vector makes it a point lookup
// of Key; a non-nil Vector makes it a top-K similarity query.
type Request struct {
	// Key is the row to read. Lookups only (Vector nil).
	Key uint64
	// Vector is the top-K query vector (len == Dim()); nil selects the
	// lookup shape.
	Vector []float32
	// K is the top-K result count, in [1, Options.MaxTopK]. Top-K only.
	K int
	// Dst, when non-nil, receives the looked-up row (len == Dim()) and
	// keeps the lookup allocation-free; when nil the engine allocates.
	// Lookups only.
	Dst []float32
	// Level is the consistency level. The zero Level is Stale; set
	// UseDefault to apply the engine's Options.Default instead.
	Level Level
	// UseDefault replaces Level with the engine's default level.
	UseDefault bool
	// Index picks the top-K scan strategy: IndexAuto (the zero value)
	// uses the engine's configuration, IndexFlat forces the exhaustive
	// scan (always available — the ground-truth fallback), IndexIVF
	// requires an engine built with Options.Index: IndexIVF.
	Index IndexKind
	// NProbe overrides the IVF probe width for this query (0: engine
	// default). IVF top-K only.
	NProbe int
}

// Response is Query's result. Lookups fill Values and Meta; top-K
// queries fill Results. Level and Index echo what was actually applied.
type Response struct {
	// Values is the looked-up row. It aliases Request.Dst when that was
	// provided.
	Values []float32
	// Meta is the looked-up row's consistency metadata.
	Meta RowMeta
	// Results are the top-K candidates, best first.
	Results []Candidate
	// Level is the effective consistency level.
	Level Level
	// Index is the effective scan strategy (top-K only; IndexAuto on
	// lookups).
	Index IndexKind
}

// Query answers one request — lookup or top-K, selected by Request's
// Vector field — at the requested consistency level and (for top-K) via
// the requested index. It subsumes the former Lookup/LookupCtx/TopK/
// TopKCtx matrix; those survive as deprecated wrappers.
//
// The lookup shape is allocation-free on the admitted path when
// Request.Dst is provided. Under admission control it may fail with
// *ErrShed; a canceled or expired ctx fails with the context's error,
// checked after the admission wait.
func (e *Engine) Query(ctx context.Context, req Request) (Response, error) {
	lvl := req.Level
	if req.UseDefault {
		lvl = e.opt.Default
	}
	if req.Vector == nil {
		if req.K != 0 {
			return Response{}, fmt.Errorf("serve: K is a top-K parameter; set Vector")
		}
		if req.Index != IndexAuto || req.NProbe != 0 {
			return Response{}, fmt.Errorf("serve: Index/NProbe are top-K parameters; set Vector")
		}
		dst := req.Dst
		if dst == nil {
			dst = make([]float32, e.st.Dim())
		}
		meta, err := e.lookup(ctx, req.Key, dst, lvl)
		if err != nil {
			return Response{}, err
		}
		return Response{Values: dst, Meta: meta, Level: lvl}, nil
	}
	if err := req.Index.Validate(); err != nil {
		return Response{}, err
	}
	kind := req.Index
	if kind == IndexAuto {
		kind = IndexFlat
		if e.idx != nil {
			kind = IndexIVF
		}
	}
	if kind == IndexIVF && e.idx == nil {
		return Response{}, fmt.Errorf("serve: no IVF index on this engine (build it with Options.Index: IndexIVF)")
	}
	if req.NProbe < 0 {
		return Response{}, fmt.Errorf("serve: NProbe must be ≥ 0, got %d", req.NProbe)
	}
	if req.NProbe > 0 && kind != IndexIVF {
		return Response{}, fmt.Errorf("serve: NProbe is an IVF parameter")
	}
	out, err := e.topK(ctx, req.Vector, req.K, lvl, kind, req.NProbe)
	if err != nil {
		return Response{}, err
	}
	return Response{Results: out, Level: lvl, Index: kind}, nil
}

// lookup is the point-read path: copy row `key` into dst (len(dst) ==
// Dim()) at the given consistency level and report the row's consistency
// metadata. Allocation-free on the admitted path — the serving hot path.
func (e *Engine) lookup(ctx context.Context, key uint64, dst []float32, lvl Level) (RowMeta, error) {
	start := time.Now()
	if key >= uint64(e.st.Rows()) {
		return RowMeta{}, fmt.Errorf("serve: key %d out of range (rows %d)", key, e.st.Rows())
	}
	if len(dst) != e.st.Dim() {
		return RowMeta{}, fmt.Errorf("serve: dst length %d, want dim %d", len(dst), e.st.Dim())
	}
	if err := lvl.Validate(); err != nil {
		return RowMeta{}, err
	}
	need, err := e.admitClass(ctx, classLookup, int(key))
	if err != nil {
		return RowMeta{}, err
	}
	defer e.exit(need)
	if err := ctx.Err(); err != nil {
		e.sobs.Canceled(int(key))
		return RowMeta{}, err
	}
	meta, err := e.resolve(key, lvl)
	if err != nil {
		e.sobs.Rejected(int(key))
		return RowMeta{}, err
	}
	// The version is read with the copy: everything the consistency
	// decision guaranteed is in dst, because rows only move forward.
	// Slab-backed stores read through the host directly — the branch keeps
	// the hot path identical to the pre-Store engine (no error plumbing).
	if e.host != nil {
		meta.Version = e.host.ReadRow(key, dst)
	} else {
		v, err := e.st.ReadRow(key, dst)
		if err != nil {
			e.sobs.Rejected(int(key))
			return RowMeta{}, err
		}
		meta.Version = v
	}
	e.sobs.Lookup(int(key), time.Since(start))
	return meta, nil
}

// resolve makes the consistency decision for one key and returns its
// metadata (Version is filled by the caller's subsequent read). The
// watermark is always loaded *before* the row's write set is inspected or
// flushed, so the guarantee it anchors can only be exceeded, never
// violated, by the time the row is read. On sharded stores the watermark
// is the cross-shard minimum, which bends the same direction: it can only
// understate what has committed, never overstate it.
func (e *Engine) resolve(key uint64, lvl Level) (RowMeta, error) {
	if !e.coordinated {
		// No P²F lag exists: writes reach the store at commit time.
		return RowMeta{Watermark: -1}, nil
	}
	switch lvl.Kind {
	case KindStale:
		return RowMeta{Watermark: e.st.Watermark(), Staleness: e.staleBound()}, nil
	case KindBounded:
		lag, wm, err := e.st.RowStaleness(key)
		if err != nil {
			return RowMeta{}, err
		}
		if lag <= lvl.Bound {
			return RowMeta{Watermark: wm, Staleness: lag}, nil
		}
		if e.replica != nil {
			// A replica cannot force-flush: catch the log up once and
			// re-probe. Still over the bound means the primary has not
			// sealed the needed segments — refuse (RejectStale or not,
			// there is nothing the replica can flush).
			if err := e.replica.CatchUp(); err != nil {
				return RowMeta{}, err
			}
			lag, wm, err = e.st.RowStaleness(key)
			if err != nil {
				return RowMeta{}, err
			}
			if lag > lvl.Bound {
				return RowMeta{}, &ErrTooStale{Key: key, Staleness: lag, Bound: lvl.Bound, Watermark: wm}
			}
			return RowMeta{Watermark: wm, Staleness: lag}, nil
		}
		if e.opt.RejectStale {
			return RowMeta{}, &ErrTooStale{Key: key, Staleness: lag, Bound: lvl.Bound, Watermark: wm}
		}
		// Coalesced: N concurrent readers of one hot stale key trigger one
		// urgent flush, not N storms on the controller mutex the trainers'
		// gate depends on.
		if _, err := e.st.FlushKey(key); err != nil {
			return RowMeta{}, err
		}
		e.sobs.Refreshed(int(key))
		return RowMeta{Watermark: wm, Staleness: 0, Refreshed: true}, nil
	default: // KindFresh
		if e.replica != nil {
			// Fresh on a replica: catch the log up; any residual lag only
			// the primary can close, so it is an honest refusal. A
			// promoted replica is authoritative — lag is 0 by definition.
			if err := e.replica.CatchUp(); err != nil {
				return RowMeta{}, err
			}
			lag, wm, err := e.st.RowStaleness(key)
			if err != nil {
				return RowMeta{}, err
			}
			if lag > 0 {
				return RowMeta{}, &ErrReplica{Key: key, Staleness: lag, Watermark: wm}
			}
			return RowMeta{Watermark: wm, Staleness: 0}, nil
		}
		wm := e.st.Watermark()
		refreshed, err := e.st.FlushKey(key)
		if err != nil {
			return RowMeta{}, err
		}
		if refreshed {
			e.sobs.Refreshed(int(key))
		}
		return RowMeta{Watermark: wm, Staleness: 0, Refreshed: refreshed}, nil
	}
}

// staleBound is the staleness reported for uncoordinated reads: the row
// may lag by every step committed so far.
func (e *Engine) staleBound() int64 {
	if wm := e.st.Watermark(); wm >= 0 {
		return wm + 1
	}
	return 0
}

// topK answers a top-K similarity query (len(query) == Dim(), k in
// [1, MaxTopK]), ordered by descending score. kind picks the candidate
// source: IndexFlat scans the whole slab (per-row stripe-locked on a
// live slab, one batched kernel per chunk on a static one), IndexIVF
// scans the nprobe partitions nearest to query after draining the repair
// queue as far as the level demands (see ivf.go). Candidate *selection*
// is where the two differ; on a live slab the winners' scores are always
// recomputed against committed host state, and the consistency level is
// enforced per candidate: under Bounded and Fresh each winning row is
// refreshed as a lookup would be and re-scored, so the returned scores
// meet the level even though non-candidates were scanned at host (or
// index) freshness. Bounded violations always refresh — RejectStale does
// not apply, since dropping a candidate would silently change the result
// set. The scan checks ctx between slab chunks and between candidate
// rescores, so a slow wide query stops burning CPU the moment its client
// gives up. Under admission control a top-K query costs TopKWeight
// lookup units and may fail with *ErrShed.
func (e *Engine) topK(ctx context.Context, query []float32, k int, lvl Level, kind IndexKind, nprobe int) ([]Candidate, error) {
	start := time.Now()
	if len(query) != e.st.Dim() {
		return nil, fmt.Errorf("serve: query length %d, want dim %d", len(query), e.st.Dim())
	}
	if k < 1 || k > e.opt.MaxTopK {
		return nil, fmt.Errorf("serve: k must be in [1, %d], got %d", e.opt.MaxTopK, k)
	}
	if err := lvl.Validate(); err != nil {
		return nil, err
	}
	need, err := e.admitClass(ctx, classTopK, k)
	if err != nil {
		return nil, err
	}
	defer e.exit(need)
	rows := e.st.Rows()
	if int64(k) > rows {
		k = int(rows)
	}
	if e.host == nil {
		out, err := e.topKRemote(ctx, query, k, lvl)
		if err != nil {
			e.sobs.Canceled(k)
			return nil, err
		}
		e.sobs.TopK(k, time.Since(start))
		return out, nil
	}
	sc := e.scratch.Get().(*topkScratch)
	var heap []Candidate
	if kind == IndexIVF {
		if e.coordinated {
			e.repairIndex(lvl)
		}
		if nprobe == 0 {
			nprobe = e.idx.nprobe
		}
		heap = e.idx.search(query, k, nprobe, sc)
	} else {
		heap, err = e.scanFlat(ctx, query, k, sc)
		if err != nil {
			sc.heap = heap[:0]
			e.scratch.Put(sc)
			e.sobs.Canceled(k)
			return nil, err
		}
	}
	out := make([]Candidate, len(heap))
	copy(out, heap)
	sc.heap = heap[:0]
	if e.coordinated && lvl.Kind != KindStale {
		for i := range out {
			if err := ctx.Err(); err != nil {
				// A rescore may force-flush, the expensive tail of the
				// query — stop as soon as its client gives up.
				e.scratch.Put(sc)
				e.sobs.Canceled(k)
				return nil, err
			}
			out[i], err = e.rescore(query, out[i], lvl, sc.row)
			if err != nil {
				e.scratch.Put(sc)
				e.sobs.Rejected(k)
				return nil, err
			}
		}
	} else if e.coordinated {
		wm, bound := e.st.Watermark(), e.staleBound()
		for i := range out {
			if kind == IndexIVF {
				// Selection came from the packed partition copies; the
				// returned score must still reflect committed host
				// state, so re-read each winner under its stripe lock.
				out[i].Meta = RowMeta{Version: e.host.ReadRow(out[i].Key, sc.row), Watermark: wm, Staleness: bound}
				out[i].Score = tensor.Dot(query, sc.row)
			} else {
				out[i].Meta = RowMeta{Version: e.host.Version(out[i].Key), Watermark: wm, Staleness: bound}
			}
		}
	} else {
		for i := range out {
			if kind == IndexIVF && !e.static {
				// A live slab without a controller (write-through
				// engines) has no flush feed to repair the index, but
				// the winners' scores stay honest: re-read live.
				out[i].Meta = RowMeta{Version: e.host.ReadRow(out[i].Key, sc.row), Watermark: -1}
				out[i].Score = tensor.Dot(query, sc.row)
			} else {
				out[i].Meta = RowMeta{Version: e.host.Version(out[i].Key), Watermark: -1}
			}
		}
	}
	e.scratch.Put(sc)
	sortCandidates(out)
	e.sobs.TopK(k, time.Since(start))
	return out, nil
}

// topKRemote answers a top-K query through the store: each shard scans
// the rows it owns and the results merge here. Selection freshness is
// whatever the shard slabs held at scan time; as on the local path, the
// consistency level is then enforced per candidate — bounded/fresh
// winners are refreshed and re-read through the store, so the returned
// scores meet the level even across the wire.
func (e *Engine) topKRemote(ctx context.Context, query []float32, k int, lvl Level) ([]Candidate, error) {
	rs, err := e.st.TopK(ctx, query, k)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, len(rs))
	if !e.coordinated {
		for i, r := range rs {
			out[i] = Candidate{Key: r.Key, Score: r.Score, Meta: RowMeta{Version: r.Version, Watermark: -1}}
		}
		return out, nil
	}
	if lvl.Kind == KindStale {
		wm, bound := e.st.Watermark(), e.staleBound()
		for i, r := range rs {
			out[i] = Candidate{Key: r.Key, Score: r.Score, Meta: RowMeta{Version: r.Version, Watermark: wm, Staleness: bound}}
		}
		return out, nil
	}
	row := make([]float32, e.st.Dim())
	for i, r := range rs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := e.rescore(query, Candidate{Key: r.Key, Score: r.Score}, lvl, row)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	sortCandidates(out) // rescoring can reorder
	return out, nil
}

// sortCandidates orders candidates best first (descending score, ties
// toward the smaller key). Insertion sort: out is k elements (small), and
// dodging sort.Slice's reflection keeps ~1.5µs off a hot path measured in
// tens of µs.
func sortCandidates(out []Candidate) {
	for i := 1; i < len(out); i++ {
		c := out[i]
		j := i - 1
		for ; j >= 0 && (out[j].Score < c.Score || (out[j].Score == c.Score && out[j].Key > c.Key)); j-- {
			out[j+1] = out[j]
		}
		out[j+1] = c
	}
}

// scanFlat is the exhaustive slab scan: every row scored, chunk by
// chunk, into a k-bounded min-heap built in sc.heap.
func (e *Engine) scanFlat(ctx context.Context, query []float32, k int, sc *topkScratch) ([]Candidate, error) {
	rows := e.host.Rows()
	heap := sc.heap[:0]
	for from := int64(0); from < rows; from += topkChunk {
		if err := ctx.Err(); err != nil {
			return heap, err
		}
		n := rows - from
		if n > topkChunk {
			n = topkChunk
		}
		scores := sc.scores[:n]
		if e.static {
			e.host.ScoreRows(query, from, scores)
		} else {
			e.host.ScoreRowsLocked(query, from, scores)
		}
		for i, s := range scores {
			if len(heap) < k {
				heap = heapPush(heap, Candidate{Key: uint64(from) + uint64(i), Score: s})
			} else if s > heap[0].Score {
				heap[0] = Candidate{Key: uint64(from) + uint64(i), Score: s}
				heapFix(heap)
			}
		}
	}
	return heap, nil
}

// repairIndex drains the IVF repair queue as far as lvl demands: stale
// pays only the opportunistic budget, bounded(k) everything recorded at
// watermark ≤ wm−k (the staleness invariant), fresh the whole queue.
func (e *Engine) repairIndex(lvl Level) {
	switch lvl.Kind {
	case KindStale:
		e.idx.repair(e.host, math.MinInt64, ivfRepairBudget)
	case KindBounded:
		e.idx.repair(e.host, e.st.Watermark()-lvl.Bound, ivfRepairBudget)
	default: // KindFresh
		e.idx.repair(e.host, math.MaxInt64, 0)
	}
}

// Index reports the engine's configured top-K scan strategy.
func (e *Engine) Index() IndexKind {
	if e.idx != nil {
		return IndexIVF
	}
	return IndexFlat
}

// IndexStats snapshots the IVF maintenance state. Kind is IndexFlat
// (with zero counters) when no IVF index is attached.
func (e *Engine) IndexStats() IndexStats {
	if e.idx == nil {
		return IndexStats{Kind: IndexFlat}
	}
	return e.idx.stats()
}

// rescore enforces the consistency level on one top-K candidate: refresh
// as needed, then re-read and re-score the row (under its stripe lock
// locally; one RPC per step remotely).
func (e *Engine) rescore(query []float32, c Candidate, lvl Level, row []float32) (Candidate, error) {
	switch lvl.Kind {
	case KindBounded:
		lag, wm, err := e.st.RowStaleness(c.Key)
		if err != nil {
			return c, err
		}
		if lag <= lvl.Bound {
			c.Meta = RowMeta{Watermark: wm, Staleness: lag}
		} else if e.replica != nil {
			// Candidates are never dropped (that would silently change the
			// result set): catch the log up and report the honest residual
			// lag instead of a flush the replica cannot perform.
			if err := e.replica.CatchUp(); err != nil {
				return c, err
			}
			if lag, wm, err = e.st.RowStaleness(c.Key); err != nil {
				return c, err
			}
			c.Meta = RowMeta{Watermark: wm, Staleness: lag}
		} else {
			if _, err := e.st.FlushKey(c.Key); err != nil {
				return c, err
			}
			e.sobs.Refreshed(int(c.Key))
			c.Meta = RowMeta{Watermark: wm, Staleness: 0, Refreshed: true}
		}
	default: // KindFresh
		if e.replica != nil {
			if err := e.replica.CatchUp(); err != nil {
				return c, err
			}
			lag, wm, err := e.st.RowStaleness(c.Key)
			if err != nil {
				return c, err
			}
			if lag > 0 {
				return c, &ErrReplica{Key: c.Key, Staleness: lag, Watermark: wm}
			}
			c.Meta = RowMeta{Watermark: wm, Staleness: 0}
			break
		}
		wm := e.st.Watermark()
		refreshed, err := e.st.FlushKey(c.Key)
		if err != nil {
			return c, err
		}
		if refreshed {
			e.sobs.Refreshed(int(c.Key))
		}
		c.Meta = RowMeta{Watermark: wm, Staleness: 0, Refreshed: refreshed}
	}
	if e.host != nil {
		c.Meta.Version = e.host.ReadRow(c.Key, row)
	} else {
		v, err := e.st.ReadRow(c.Key, row)
		if err != nil {
			return c, err
		}
		c.Meta.Version = v
	}
	c.Score = tensor.Dot(query, row)
	return c, nil
}

// heapPush appends c and sifts it up (min-heap by score, ties by key so
// results are deterministic).
func heapPush(h []Candidate, c Candidate) []Candidate {
	h = append(h, c)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// heapFix sifts the root down after a replacement.
func heapFix(h []Candidate) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && candLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && candLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func candLess(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Key > b.Key
}
