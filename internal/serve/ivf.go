// The inverted-file (IVF) top-K index.
//
// Exhaustive top-K costs one dot product per slab row — ~2.4 ms on a
// 100k×64 slab — which cannot carry a serving tier. The IVF index partitions the
// slab into C k-means clusters and answers a query by scoring the C
// centroids, scanning only the P nearest partitions, and re-scoring the
// survivors against live host rows. Cost drops from N row-dots to
// C + P·(N/C) + k, sublinear in N for C ≈ √(P·N).
//
// The index is a *derived* structure over host memory, so it inherits the
// staleness problem the consistency levels solve for reads — and it is
// bounded the same way. Every write set the P²F controller pushes through
// its sink also notifies the index (p2f.Controller.AddFlushHook) with the
// flushed key; the index records (key, watermark-at-flush) in a FIFO
// repair queue. At query time the level decides how much of the queue
// must drain before the scan may run:
//
//   - stale:      nothing (plus an opportunistic budget so the queue
//     never grows without bound under query load);
//   - bounded(k): every record with watermark ≤ wm−k, so the partitions
//     scanned reflect every host flush recorded more than k gate steps
//     ago — the index is provably at most k gate steps behind host
//     memory;
//   - fresh:      the whole queue, so every touched partition is repaired
//     before the scan.
//
// Selection is approximate (that is the speedup); scoring is not: on a
// live engine the winning candidates are always re-read and re-scored
// against the host slab under the row's stripe lock, so returned scores
// and RowMeta carry exactly the same guarantees the flat scan provides.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"frugal/internal/runtime"
	"frugal/internal/tensor"
)

// IndexKind selects the top-K scan strategy.
type IndexKind int

const (
	// IndexAuto defers the choice: on a Request it means "use the
	// engine's configured index"; in Options it means IndexFlat.
	IndexAuto IndexKind = iota
	// IndexFlat scans every slab row — exact, and the recall ground
	// truth for IndexIVF.
	IndexFlat
	// IndexIVF scans the NProbe nearest of Centroids k-means partitions —
	// sublinear, with recall governed by Centroids/NProbe.
	IndexIVF
)

// ParseIndexKind parses "auto" (or ""), "flat" or "ivf".
func ParseIndexKind(s string) (IndexKind, error) {
	switch s {
	case "", "auto":
		return IndexAuto, nil
	case "flat":
		return IndexFlat, nil
	case "ivf":
		return IndexIVF, nil
	}
	return IndexAuto, fmt.Errorf("serve: unknown index kind %q (want flat or ivf)", s)
}

// String renders the kind in ParseIndexKind's syntax.
func (k IndexKind) String() string {
	switch k {
	case IndexAuto:
		return "auto"
	case IndexFlat:
		return "flat"
	case IndexIVF:
		return "ivf"
	}
	return fmt.Sprintf("index(%d)", int(k))
}

// MarshalJSON renders the kind as its flag string, so /healthz and
// topk responses say "ivf", not an enum ordinal.
func (k IndexKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Validate reports whether the kind is one of the declared constants.
func (k IndexKind) Validate() error {
	switch k {
	case IndexAuto, IndexFlat, IndexIVF:
		return nil
	}
	return fmt.Errorf("serve: unknown index kind %d", int(k))
}

const (
	// ivfSampleRows caps the k-means training sample.
	ivfSampleRows = 8192
	// ivfKMeansIters is the fixed Lloyd iteration budget.
	ivfKMeansIters = 6
	// ivfBuildChunk is the ReadRows block size of the final full-slab
	// assignment pass.
	ivfBuildChunk = 256
	// ivfRepairBudget is the opportunistic per-query repair allowance:
	// even a stale query drains up to this many queue records, so steady
	// query traffic keeps the index converged without any level ever
	// paying an unbounded drain.
	ivfRepairBudget = 64
)

// IndexStats is a snapshot of the IVF maintenance state, exposed for
// tests, /healthz and operators. Zero value when the engine has no IVF
// index.
type IndexStats struct {
	Kind      IndexKind `json:"kind"`
	Centroids int       `json:"centroids,omitempty"`
	NProbe    int       `json:"nprobe,omitempty"`
	// Pending is the repair-queue depth: host flushes not yet reflected
	// in the index.
	Pending int `json:"pending"`
	// OldestPending is the watermark recorded with the oldest unrepaired
	// flush (only meaningful when Pending > 0). After a bounded(k) query
	// at watermark wm, OldestPending > wm−k — the staleness invariant.
	OldestPending int64 `json:"oldest_pending"`
	// Repairs counts cluster-assignment repairs applied since build.
	Repairs int64 `json:"repairs"`
}

// dirtyKey is one repair-queue record: key's host row was rewritten by a
// flush while the committed-step watermark read wm.
type dirtyKey struct {
	key uint64
	wm  int64
}

type ivfPart struct {
	keys []uint64
	vecs []float32 // packed rows: keys[i] ↔ vecs[i*dim:(i+1)*dim]
}

// ivfIndex is the inverted-file index over one host slab.
type ivfIndex struct {
	dim    int
	nprobe int

	// cents and centBias are immutable after build: centBias[j] =
	// −‖c_j‖²/2, so argmax(cents·x + centBias) is the nearest centroid
	// by L2 — one MulVec, one Axpy, one ArgMax per assignment.
	cents    *tensor.Matrix
	centBias []float32

	// mu guards the partition state. Queries scan under RLock; repair
	// and build mutate under Lock.
	mu    sync.RWMutex
	parts []ivfPart
	part  []int32 // key → partition id (-1 before build assigns it)
	slot  []int32 // key → slot within its partition

	// Assignment scratch, only touched under mu.Lock (build and repair).
	rowBuf  []float32
	centBuf []float32

	// The repair queue. Records are appended in watermark order (the
	// watermark is monotone), deduplicated by pending: one record per
	// key, keeping the *first* unrepaired watermark — the index has seen
	// none of that key's flushes since. head indexes the FIFO front.
	dirtyMu sync.Mutex
	dirty   []dirtyKey
	head    int
	pending map[uint64]struct{}

	repairs atomic.Int64
}

// newIVFIndex allocates the index shell: the repair queue is immediately
// usable (so the flush hook can be installed before build walks a live
// slab), the partitions are empty until build runs.
func newIVFIndex(rows int64, dim, centroids, nprobe int) *ivfIndex {
	c := centroids
	if int64(c) > rows {
		c = int(rows)
	}
	x := &ivfIndex{
		dim:      dim,
		nprobe:   min(nprobe, c),
		cents:    tensor.NewMatrix(c, dim),
		centBias: make([]float32, c),
		parts:    make([]ivfPart, c),
		part:     make([]int32, rows),
		slot:     make([]int32, rows),
		rowBuf:   make([]float32, dim),
		centBuf:  make([]float32, c),
		pending:  make(map[uint64]struct{}),
	}
	for i := range x.part {
		x.part[i] = -1
	}
	return x
}

// build clusters the slab and packs the partitions. Deterministic for a
// given slab content (fixed-seed sampling, fixed iteration budget). Safe
// to run against a live slab: rows are read under their stripe locks,
// and any flush that lands mid-build is already in the repair queue when
// the caller installed the flush hook before calling build.
func (x *ivfIndex) build(host *runtime.Host) {
	rows, dim := host.Rows(), host.Dim()
	c := len(x.parts)

	// Sample the slab for Lloyd iterations.
	sn := int64(ivfSampleRows)
	if sn > rows {
		sn = rows
	}
	rng := rand.New(rand.NewSource(1))
	sample := tensor.NewMatrix(int(sn), dim)
	stride := rows / sn
	for i := int64(0); i < sn; i++ {
		key := i * stride
		if stride > 1 {
			key += rng.Int63n(stride)
		}
		host.ReadRow(uint64(key), sample.Row(int(i)))
	}

	// Init: evenly spaced sample rows (deterministic, spread across the
	// slab since the sample preserves slab order).
	for j := 0; j < c; j++ {
		tensor.Copy(x.cents.Row(j), sample.Row(j*int(sn)/c))
	}
	x.refreshBias()

	assign := make([]int, sn)
	counts := make([]int, c)
	sums := tensor.NewMatrix(c, dim)
	for iter := 0; iter < ivfKMeansIters; iter++ {
		for i := range counts {
			counts[i] = 0
		}
		tensor.Zero(sums.Data)
		for i := 0; i < int(sn); i++ {
			j := x.nearest(sample.Row(i))
			assign[i] = j
			counts[j]++
			tensor.Axpy(1, sample.Row(i), sums.Row(j))
		}
		for j := 0; j < c; j++ {
			if counts[j] == 0 {
				// Dead centroid: reseed from a random sample row.
				tensor.Copy(x.cents.Row(j), sample.Row(rng.Intn(int(sn))))
				continue
			}
			cr := x.cents.Row(j)
			tensor.Copy(cr, sums.Row(j))
			tensor.Scale(1/float32(counts[j]), cr)
		}
		x.refreshBias()
	}

	// Pre-size the partitions from the sample distribution, then assign
	// every slab row in ReadRows blocks.
	for i := 0; i < int(sn); i++ {
		counts[assign[i]]++
	}
	for j := range x.parts {
		est := int(int64(counts[j]) * rows / (2 * sn))
		x.parts[j].keys = make([]uint64, 0, est)
		x.parts[j].vecs = make([]float32, 0, est*dim)
	}
	block := make([]float32, ivfBuildChunk*dim)
	x.mu.Lock()
	for from := int64(0); from < rows; from += ivfBuildChunk {
		n := rows - from
		if n > ivfBuildChunk {
			n = ivfBuildChunk
		}
		b := block[:n*int64(dim)]
		host.ReadRows(from, b)
		for i := int64(0); i < n; i++ {
			row := b[i*int64(dim) : (i+1)*int64(dim)]
			x.appendTo(x.nearest(row), uint64(from+i), row)
		}
	}
	x.mu.Unlock()
}

// refreshBias recomputes centBias after a centroid update.
func (x *ivfIndex) refreshBias() {
	for j := range x.centBias {
		cr := x.cents.Row(j)
		x.centBias[j] = -tensor.Dot(cr, cr) / 2
	}
}

// nearest returns the L2-nearest centroid of row. Caller holds mu.Lock
// (it uses the shared centBuf scratch) — except during the sample phase
// of build, before the index is published.
func (x *ivfIndex) nearest(row []float32) int {
	x.cents.MulVec(row, x.centBuf)
	tensor.Axpy(1, x.centBias, x.centBuf)
	return tensor.ArgMax(x.centBuf)
}

// appendTo adds key to partition j. Caller holds mu.Lock.
func (x *ivfIndex) appendTo(j int, key uint64, row []float32) {
	p := &x.parts[j]
	x.part[key] = int32(j)
	x.slot[key] = int32(len(p.keys))
	p.keys = append(p.keys, key)
	p.vecs = append(p.vecs, row...)
}

// removeFrom deletes key from partition j by swapping the last slot in.
// Caller holds mu.Lock.
func (x *ivfIndex) removeFrom(j int, key uint64) {
	p := &x.parts[j]
	s := int(x.slot[key])
	last := len(p.keys) - 1
	if s != last {
		moved := p.keys[last]
		p.keys[s] = moved
		copy(p.vecs[s*x.dim:(s+1)*x.dim], p.vecs[last*x.dim:(last+1)*x.dim])
		x.slot[moved] = int32(s)
	}
	p.keys = p.keys[:last]
	p.vecs = p.vecs[:last*x.dim]
}

// markDirty is the controller's flush-hook target: key's host row was
// rewritten while the watermark read wm. Runs on the flushing goroutine
// with the key's g-entry lock held — it only enqueues.
func (x *ivfIndex) markDirty(key uint64, wm int64) {
	x.dirtyMu.Lock()
	if _, ok := x.pending[key]; !ok {
		x.pending[key] = struct{}{}
		x.dirty = append(x.dirty, dirtyKey{key: key, wm: wm})
	}
	x.dirtyMu.Unlock()
}

// repair drains the repair queue: every record with watermark ≤ upTo
// (the level's obligation), plus up to extra more from the front (the
// opportunistic budget). A key is removed from the pending set *before*
// its host row is re-read, so a flush racing the repair either lands
// before the read (the repair picks it up) or re-enqueues the key —
// a repaired key is never left silently stale.
func (x *ivfIndex) repair(host *runtime.Host, upTo int64, extra int) {
	var batch [ivfRepairBudget]dirtyKey
	for {
		n := 0
		x.dirtyMu.Lock()
		for n < len(batch) && x.head < len(x.dirty) {
			e := x.dirty[x.head]
			if e.wm > upTo {
				// The FIFO is watermark-ordered: past upTo only the
				// opportunistic budget keeps draining.
				if extra <= 0 {
					break
				}
				extra--
			}
			delete(x.pending, e.key)
			batch[n] = e
			n++
			x.head++
		}
		if x.head == len(x.dirty) {
			x.dirty, x.head = x.dirty[:0], 0
		} else if x.head > 1024 && 2*x.head > len(x.dirty) {
			x.dirty = append(x.dirty[:0], x.dirty[x.head:]...)
			x.head = 0
		}
		x.dirtyMu.Unlock()
		if n == 0 {
			return
		}
		x.mu.Lock()
		for _, e := range batch[:n] {
			x.reassign(host, e.key)
		}
		x.mu.Unlock()
		x.repairs.Add(int64(n))
	}
}

// reassign re-reads key's live host row and moves it to (or refreshes it
// in) its nearest partition. Caller holds mu.Lock.
func (x *ivfIndex) reassign(host *runtime.Host, key uint64) {
	host.ReadRow(key, x.rowBuf)
	j := x.nearest(x.rowBuf)
	old := int(x.part[key])
	if old == j {
		s := int(x.slot[key])
		copy(x.parts[j].vecs[s*x.dim:(s+1)*x.dim], x.rowBuf)
		return
	}
	if old >= 0 {
		x.removeFrom(old, key)
	}
	x.appendTo(j, key, x.rowBuf)
}

// search scans the nprobe partitions nearest to query and returns the
// top-k candidate heap (scored against the packed partition copies; the
// engine re-scores against live rows as the level demands). The heap is
// built in sc.heap; centroid scoring uses sc.cent/sc.probes.
func (x *ivfIndex) search(query []float32, k, nprobe int, sc *topkScratch) []Candidate {
	x.cents.MulVec(query, sc.cent)
	p := nprobe
	if p <= 0 || p > len(x.parts) {
		p = len(x.parts)
	}
	probes := sc.probes[:p]
	tensor.TopIndices(sc.cent, probes)
	heap := sc.heap[:0]
	x.mu.RLock()
	for _, pi := range probes {
		part := &x.parts[pi]
		for from := 0; from < len(part.keys); from += topkChunk {
			n := len(part.keys) - from
			if n > topkChunk {
				n = topkChunk
			}
			scores := sc.scores[:n]
			m := tensor.Matrix{Rows: n, Cols: x.dim, Data: part.vecs[from*x.dim : (from+n)*x.dim]}
			m.MulVec(query, scores)
			for i, s := range scores {
				key := part.keys[from+i]
				if len(heap) < k {
					heap = heapPush(heap, Candidate{Key: key, Score: s})
				} else if s > heap[0].Score {
					heap[0] = Candidate{Key: key, Score: s}
					heapFix(heap)
				}
			}
		}
	}
	x.mu.RUnlock()
	return heap
}

// stats snapshots the maintenance state.
func (x *ivfIndex) stats() IndexStats {
	st := IndexStats{
		Kind:          IndexIVF,
		Centroids:     len(x.parts),
		NProbe:        x.nprobe,
		OldestPending: math.MaxInt64,
		Repairs:       x.repairs.Load(),
	}
	x.dirtyMu.Lock()
	st.Pending = len(x.dirty) - x.head
	if st.Pending > 0 {
		st.OldestPending = x.dirty[x.head].wm
	}
	x.dirtyMu.Unlock()
	return st
}
