package serve_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"frugal/internal/ckpt"
	"frugal/internal/runtime"
	"frugal/internal/serve"
)

// logProber drives a ckpt.Writer in tests the way the P²F controller
// does in production: a settable watermark and per-key staleness.
type logProber struct {
	mu  sync.Mutex
	wm  int64
	lag map[uint64]int64
}

func (p *logProber) Watermark() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wm
}

func (p *logProber) RowStaleness(key uint64) (int64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lag[key], p.wm
}

func (p *logProber) set(wm int64, lag map[uint64]int64) {
	p.mu.Lock()
	p.wm = wm
	p.lag = lag
	p.mu.Unlock()
}

// logFixture is a primary-side delta log under test control: mutate the
// host, seal segments with exact watermark/staleness, shut down.
type logFixture struct {
	dir  string
	host *runtime.Host
	pr   *logProber
	w    *ckpt.Writer
}

func newLogFixture(t *testing.T, rows int64, dim, compactEvery int) *logFixture {
	t.Helper()
	h, err := runtime.NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	f := &logFixture{dir: t.TempDir(), host: h, pr: &logProber{}}
	f.w, err = ckpt.NewWriter(h, f.pr, ckpt.Options{
		Dir: f.dir, SweepInterval: time.Hour, CompactEvery: compactEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.w.Close() })
	return f
}

// seal mutates one key and cuts a segment at the given watermark/lag.
func (f *logFixture) seal(t *testing.T, key, ver uint64, wm int64, lag map[uint64]int64) {
	t.Helper()
	row := make([]float32, f.host.Dim())
	for i := range row {
		row[i] = float32(key)*10 + float32(ver)
	}
	f.host.SetRow(key, row, ver, 0)
	f.w.OnFlush(key)
	f.pr.set(wm, lag)
	if err := f.w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func followerRead(t *testing.T, fl *serve.Follower, key uint64, lvl serve.Level) (serve.RowMeta, error) {
	t.Helper()
	dst := make([]float32, fl.Engine().Dim())
	resp, err := fl.Engine().Query(context.Background(), serve.Request{Key: key, Dst: dst, Level: lvl})
	return resp.Meta, err
}

// TestFollowerStalenessContract walks the replica through the
// consistency gate's three levels against a log with known lag: bounded
// admits with the honest residual staleness, fresh refuses with
// *ErrReplica while the replica lags, and promotion makes the replica
// authoritative (staleness 0 by definition).
func TestFollowerStalenessContract(t *testing.T) {
	f := newLogFixture(t, 8, 4, 0)
	// Key 2 flushed with one committed step still pending: safe step 4,
	// segment watermark 5 → replica lag 1.
	f.seal(t, 2, 3, 5, map[uint64]int64{2: 1})

	fl, err := serve.NewFollower(f.dir, serve.FollowerOptions{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Role() != "follower" {
		t.Fatalf("role %q, want follower", fl.Role())
	}
	st := fl.Stats()
	if st.AppliedSeq != 1 || st.AppliedWatermark != 5 {
		t.Fatalf("stats %+v", st)
	}

	m, err := followerRead(t, fl, 2, serve.Bounded(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Staleness != 1 || m.Watermark != 5 || m.Version != 3 {
		t.Fatalf("bounded(1) meta %+v, want staleness 1, watermark 5, version 3", m)
	}

	var tooStale *serve.ErrTooStale
	if _, err := followerRead(t, fl, 2, serve.Bounded(0)); !errors.As(err, &tooStale) {
		t.Fatalf("bounded(0) on a lagging replica: %v, want *ErrTooStale", err)
	}

	var replica *serve.ErrReplica
	if _, err := followerRead(t, fl, 2, serve.Fresh()); !errors.As(err, &replica) {
		t.Fatalf("fresh on a lagging replica: %v, want *ErrReplica", err)
	}
	if replica.Key != 2 || replica.Staleness != 1 {
		t.Fatalf("replica error %+v", replica)
	}

	if err := fl.Promote(); err != nil {
		t.Fatal(err)
	}
	if fl.Role() != "primary" {
		t.Fatalf("role %q after promotion, want primary", fl.Role())
	}
	m, err = followerRead(t, fl, 2, serve.Fresh())
	if err != nil {
		t.Fatalf("fresh on the promoted replica: %v", err)
	}
	if m.Staleness != 0 || m.Version != 3 {
		t.Fatalf("promoted fresh meta %+v, want staleness 0 version 3", m)
	}
	if err := fl.Promote(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestFollowerTailsAndSalvages covers the failover tail: segments sealed
// after the follower attached are picked up by CatchUp, and promotion
// recovers the complete prefix of a sweep the primary never sealed.
func TestFollowerTailsAndSalvages(t *testing.T) {
	f := newLogFixture(t, 8, 4, 0)
	f.seal(t, 1, 2, 1, nil)

	fl, err := serve.NewFollower(f.dir, serve.FollowerOptions{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Sealed after attach: CatchUp applies it.
	f.seal(t, 3, 4, 2, nil)
	if err := fl.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if m, err := followerRead(t, fl, 3, serve.Bounded(0)); err != nil || m.Version != 4 {
		t.Fatalf("tailed segment read: meta %+v, err %v", m, err)
	}

	// The primary dies mid-sweep: segment 3 exists only as a .open temp
	// file. (Seal it for real, then put its bytes back under the temp
	// name — the exact on-disk state an interrupted rename leaves.)
	f.seal(t, 5, 9, 3, nil)
	if err := f.w.Close(); err != nil {
		t.Fatal(err)
	}
	sealed := filepath.Join(f.dir, "seg-0000000003.dlog")
	if err := os.Rename(sealed, filepath.Join(f.dir, "seg-0000000003.open")); err != nil {
		t.Fatal(err)
	}

	if err := fl.Promote(); err != nil {
		t.Fatal(err)
	}
	st := fl.Stats()
	if st.Replication.Salvaged != 1 {
		t.Fatalf("salvaged %d records, want 1 (stats %+v)", st.Replication.Salvaged, st)
	}
	if m, err := followerRead(t, fl, 5, serve.Fresh()); err != nil || m.Version != 9 {
		t.Fatalf("salvaged read: meta %+v, err %v", m, err)
	}
}

// TestFollowerResyncsAcrossCompaction puts the replica behind a
// compaction: the sealed segments it was tailing are folded and deleted,
// so CatchUp must restart from the newer base (and count a resync).
func TestFollowerResyncsAcrossCompaction(t *testing.T) {
	f := newLogFixture(t, 8, 4, 2)
	f.seal(t, 1, 2, 1, nil)

	fl, err := serve.NewFollower(f.dir, serve.FollowerOptions{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Two more sweeps: the writer folds everything into base-3 and
	// deletes the segments the follower has (and has not) applied.
	f.seal(t, 2, 3, 2, nil)
	f.seal(t, 4, 5, 3, map[uint64]int64{4: 1})
	if err := fl.CatchUp(); err != nil {
		t.Fatal(err)
	}
	st := fl.Stats()
	if st.Replication.Resyncs < 1 {
		t.Fatalf("no resync recorded after compaction: %+v", st)
	}
	if st.AppliedSeq != 3 || st.AppliedWatermark != 3 {
		t.Fatalf("stats after resync %+v", st)
	}
	if m, err := followerRead(t, fl, 4, serve.Bounded(1)); err != nil || m.Version != 5 || m.Staleness != 1 {
		t.Fatalf("post-resync read: meta %+v, err %v", m, err)
	}
}

// TestFollowerRunPromotesOnIdle exercises the liveness path: with
// PromoteAfter set, Run notices the log has stopped growing and promotes
// on its own.
func TestFollowerRunPromotesOnIdle(t *testing.T) {
	f := newLogFixture(t, 8, 4, 0)
	f.seal(t, 1, 2, 1, nil)
	if err := f.w.Close(); err != nil {
		t.Fatal(err)
	}

	fl, err := serve.NewFollower(f.dir, serve.FollowerOptions{
		Poll: 5 * time.Millisecond, PromoteAfter: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := fl.Run(ctx); err != nil {
		t.Fatalf("Run: %v (promotion should end it cleanly)", err)
	}
	if fl.Role() != "primary" {
		t.Fatalf("role %q after idle window, want primary", fl.Role())
	}
}

// TestFollowerWaitForLog: without the grace option a follower on an
// empty directory fails fast; with it, it attaches once the primary's
// writer creates the base.
func TestFollowerWaitForLog(t *testing.T) {
	empty := t.TempDir()
	if _, err := serve.NewFollower(empty, serve.FollowerOptions{}); err == nil {
		t.Fatal("follower attached to an empty directory")
	}

	dir := t.TempDir()
	host, err := runtime.NewHost(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		w, err := ckpt.NewWriter(host, &logProber{}, ckpt.Options{Dir: dir, SweepInterval: time.Hour})
		if err == nil {
			w.Close()
		}
	}()
	fl, err := serve.NewFollower(dir, serve.FollowerOptions{
		Poll: 5 * time.Millisecond, WaitForLog: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Role() != "follower" {
		t.Fatalf("role %q", fl.Role())
	}
}

// newTieredLogFixture is newLogFixture over a tiered primary host.
func newTieredLogFixture(t *testing.T, rows int64, dim int, hotFrac float64, compactEvery int) *logFixture {
	t.Helper()
	h, err := runtime.NewTieredHost(rows, dim, hotFrac)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(k uint64, row []float32) {
		for i := range row {
			row[i] = float32(k)*0.25 + float32(i)*0.0625
		}
	})
	f := &logFixture{dir: t.TempDir(), host: h, pr: &logProber{}}
	f.w, err = ckpt.NewWriter(h, f.pr, ckpt.Options{
		Dir: f.dir, SweepInterval: time.Hour, CompactEvery: compactEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.w.Close() })
	return f
}

// TestFollowerTieredLog replays a tiered primary's log into a replica:
// the replica host must come up tiered, its bytes — hot pool, cold
// codes, tier map — identical to the primary's, and top-K over the
// mixed-precision slab must agree with the full-precision ranking on
// the re-scored winners.
func TestFollowerTieredLog(t *testing.T) {
	const rows, dim = 96, 16
	f := newTieredLogFixture(t, rows, dim, 0.125, 0) // 12 hot slots
	f.seal(t, 3, 1, 0, nil)                          // hot row
	f.seal(t, 70, 1, 1, nil)                         // cold row

	// Tier churn between segments: promote 70, demoting a head row; the
	// move hook marks both keys, the next seal captures the new tags.
	for i := 0; i < 4 && f.host.TierStats().Promotions == 0; i++ {
		f.host.TierMaintain(70, false)
	}
	if f.host.TierStats().Promotions == 0 {
		t.Fatal("no promotion: fixture drives nothing")
	}
	f.seal(t, 80, 1, 2, nil)

	fl, err := serve.NewFollower(f.dir, serve.FollowerOptions{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// Every replica row must equal the primary's exactly — cold rows
	// dequantize identical codes on both sides, so even the quantization
	// error is reproduced bit for bit.
	want := make([]float32, dim)
	for k := uint64(0); k < rows; k++ {
		f.host.ReadRow(k, want)
		got := make([]float32, dim)
		if _, err := fl.Engine().Query(context.Background(), serve.Request{Key: k, Dst: got, Level: serve.Stale()}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("row %d[%d]: replica %v, primary %v", k, i, got[i], want[i])
			}
		}
	}

	// Quantized scan, full-precision rescore: every returned winner's
	// score must match a direct dot product against the primary's row.
	query := make([]float32, dim)
	for i := range query {
		query[i] = float32(i%5) * 0.2
	}
	resp, err := fl.Engine().Query(context.Background(), serve.Request{Vector: query, K: 8, Level: serve.Stale()})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 8 {
		t.Fatalf("got %d candidates, want 8", len(resp.Results))
	}
	row := make([]float32, dim)
	for _, c := range resp.Results {
		f.host.ReadRow(c.Key, row)
		var exact float32
		for i := range row {
			exact += query[i] * row[i]
		}
		diff := float64(c.Score - exact)
		if diff < 0 {
			diff = -diff
		}
		tol := 1e-5 * float64(exact)
		if tol < 0 {
			tol = -tol
		}
		if tol < 1e-4 {
			tol = 1e-4
		}
		if diff > tol {
			t.Fatalf("key %d: served score %v, exact %v", c.Key, c.Score, exact)
		}
	}
}
